#include "cluster/autoscale.hh"

#include <algorithm>

#include "common/error.hh"

namespace ecosched {

SloAutoscaler::SloAutoscaler(AutoscaleConfig config)
    : cfg(config)
{
    fatalIf(cfg.targetP99 <= 0.0,
            "autoscaler targetP99 must be positive");
    fatalIf(cfg.lowWatermark <= 0.0 || cfg.lowWatermark >= 1.0,
            "autoscaler lowWatermark must be in (0,1), got ",
            cfg.lowWatermark);
    fatalIf(cfg.evalInterval <= 0.0,
            "autoscaler evalInterval must be positive");
    fatalIf(cfg.window <= 0.0, "autoscaler window must be positive");
    fatalIf(cfg.minLiveNodes == 0,
            "autoscaler minLiveNodes must be >= 1");
}

void
SloAutoscaler::observe(Seconds completed_at, Seconds latency)
{
    fatalIf(!samples.empty() && completed_at < samples.back().first,
            "autoscaler observations must be time-ordered");
    samples.emplace_back(completed_at, latency);
}

void
SloAutoscaler::prune(Seconds now)
{
    const Seconds horizon = now - cfg.window;
    while (!samples.empty() && samples.front().first < horizon)
        samples.pop_front();
}

Seconds
SloAutoscaler::windowedP99(Seconds now)
{
    prune(now);
    if (samples.empty())
        return 0.0;
    std::vector<Seconds> lat;
    lat.reserve(samples.size());
    for (const auto &s : samples)
        lat.push_back(s.second);
    // Nearest-rank p99 (1-based rank ceil(0.99 n)): exact, and free
    // of the interpolation ambiguity a histogram would add.
    const std::size_t rank =
        (lat.size() * 99 + 99) / 100; // ceil(0.99 n), n >= 1
    const std::size_t idx = std::min(rank, lat.size()) - 1;
    std::nth_element(lat.begin(), lat.begin() + idx, lat.end());
    return lat[idx];
}

SloAutoscaler::Decision
SloAutoscaler::evaluate(Seconds now, std::size_t schedulable_nodes)
{
    Decision d;
    const Seconds p99 = windowedP99(now);
    if (samples.empty())
        return d; // empty window: idle and stuck look alike — hold
    if (p99 > cfg.targetP99) {
        // Scale out by ~25% of current capacity, at least one node.
        d.unpark = std::min(cfg.maxUnparkPerEval,
                            std::max<std::size_t>(
                                1, schedulable_nodes / 4));
    } else if (p99 < cfg.lowWatermark * cfg.targetP99) {
        // Scale in by ~12.5%, bounded below by the live floor.
        if (schedulable_nodes > cfg.minLiveNodes) {
            const std::size_t step = std::max<std::size_t>(
                1, schedulable_nodes / 8);
            d.park = std::min(
                {cfg.maxParkPerEval, step,
                 schedulable_nodes - cfg.minLiveNodes});
        }
    }
    return d;
}

SloAutoscaler::State
SloAutoscaler::captureState() const
{
    State s;
    s.samples.assign(samples.begin(), samples.end());
    return s;
}

void
SloAutoscaler::restoreState(const State &s)
{
    samples.assign(s.samples.begin(), s.samples.end());
}

} // namespace ecosched
