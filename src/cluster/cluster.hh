/**
 * @file
 * The fleet simulation: many independent nodes, one open job stream,
 * one dispatcher — the production-scale layer above the paper's
 * single-node daemon.
 *
 * Execution model (lockstep epochs of `dispatchInterval`):
 *
 *   1. arrivals due in the epoch are routed by the Dispatcher using
 *      the previous epoch boundary's fleet view (serial, node order);
 *   2. every node steps through the epoch *in parallel* on the
 *      experiment ThreadPool — nodes share no state, and per-node
 *      results land in per-node slots, so the simulation is
 *      bit-identical for any `--jobs` worker count;
 *   3. completions are harvested serially in node order into the
 *      cluster-wide accounting (energy, latency histogram for
 *      p50/p95/p99, SLO violations, crash/SDC counts).
 *
 * Idle nodes park into standby between epochs (suspend-to-idle) and
 * pay a wake-up delay when the dispatcher routes work back to them —
 * consolidation-friendly policies therefore save real energy.
 */

#ifndef ECOSCHED_CLUSTER_CLUSTER_HH
#define ECOSCHED_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dispatch.hh"
#include "cluster/node.hh"
#include "cluster/traffic.hh"

namespace ecosched {

/// Fleet-simulation knobs.
struct ClusterConfig
{
    /// The fleet (required, non-empty).  Use uniformFleet() /
    /// mixedFleet() for the common shapes.
    std::vector<NodeConfig> nodes;

    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;
    TrafficConfig traffic;

    /// Dispatch-epoch length (also the park/wake granularity).
    Seconds dispatchInterval = 1.0;
    /// Abort when the drain exceeds traffic.duration * this factor.
    double drainBoundFactor = 5.0;

    /// Latency SLO: completions slower than this count as violations.
    Seconds sloLatency = 60.0;

    /// Park empty nodes into standby between epochs.
    bool idleSleep = true;
    /// Wake-up delay a job pays when routed to a parked node.
    Seconds wakeDelay = 0.2;

    /// Latency-histogram layout backing the percentiles.
    Seconds latencyHistogramMax = 600.0;
    std::size_t latencyHistogramBins = 6000;

    /// Node-stepping workers; 0 resolves via ECOSCHED_JOBS, then
    /// hardware concurrency (results identical for every count).
    unsigned jobs = 0;

    /// Fleet-wide fault-injection plan.  NodeCrash events are applied
    /// here at epoch boundaries (crash at the first epoch whose start
    /// covers the event, restart after the event's duration);
    /// machine-level events are routed to their target node's
    /// injector by eventsForNode().  Applied serially, so campaigns
    /// stay bit-identical for any `jobs` count.
    InjectionPlan injection;
    /// Downtime for NodeCrash events with a negative duration
    /// (negative here too: such nodes stay down forever).
    Seconds nodeRestartDelay = -1.0;
};

/// Per-node slice of a cluster result.
struct NodeSummary
{
    NodeId node = 0;
    std::string chip;
    double headroomMv = 0.0;
    std::uint64_t jobsCompleted = 0;
    Joule energy = 0.0;
    double utilization = 0.0; ///< busy-core fraction while awake
    Seconds parkedTime = 0.0;
    bool crashed = false;
    std::uint32_t restarts = 0; ///< crash recoveries so far
};

/// Fleet-wide result of one cluster run.
struct ClusterResult
{
    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;
    std::size_t numNodes = 0;

    std::uint64_t jobsSubmitted = 0;
    std::uint64_t jobsCompleted = 0;
    /// Jobs that could not be dispatched (whole fleet down).
    std::uint64_t jobsDropped = 0;
    /// Jobs stranded on nodes that crashed mid-run.
    std::uint64_t jobsLost = 0;
    /// Completions whose outcome was a failure (SDC & friends from
    /// the fail-safe/fault-injection path).
    std::uint64_t jobsFailed = 0;

    Seconds makespan = 0.0;   ///< epoch time when the fleet drained
    Joule totalEnergy = 0.0;  ///< across all nodes, standby included
    Watt averagePower = 0.0;  ///< totalEnergy / makespan

    Seconds latencyMean = 0.0;
    Seconds latencyP50 = 0.0;
    Seconds latencyP95 = 0.0;
    Seconds latencyP99 = 0.0;
    Seconds latencyMax = 0.0;

    Seconds sloLatency = 0.0;
    std::uint64_t sloViolations = 0;
    std::uint64_t nodeCrashes = 0;
    std::uint64_t nodeRestarts = 0;

    std::vector<NodeSummary> nodes;

    /// Energy per completed job (0 when nothing completed).
    Joule energyPerJob() const
    {
        return jobsCompleted == 0
            ? 0.0
            : totalEnergy / static_cast<double>(jobsCompleted);
    }

    /// Deterministic human-readable summary (cluster-wide metric
    /// table plus the per-node table).  Contains no worker-count or
    /// wall-clock data, so it is bit-identical for any `--jobs`.
    void printSummary(std::ostream &os) const;
};

/**
 * Runs one open-arrival traffic trace against a fleet.  Single-use:
 * construct, run(), read the result.
 */
class ClusterSim
{
  public:
    explicit ClusterSim(ClusterConfig config);
    ~ClusterSim();

    ClusterSim(const ClusterSim &) = delete;
    ClusterSim &operator=(const ClusterSim &) = delete;

    /// Resolved node-stepping worker count (>= 1).
    unsigned jobs() const { return workerCount; }

    /// Knobs in use.
    const ClusterConfig &config() const { return cfg; }

    /// Execute the trace to drain (or the drain bound).
    ClusterResult run();

  private:
    ClusterConfig cfg;
    unsigned workerCount;
    std::vector<std::unique_ptr<ClusterNode>> fleet;
    bool consumed = false;
};

/**
 * @p n identical nodes of one chip model.  Per-node machine and
 * daemon seeds are forked deterministically from @p seed, so every
 * node is a distinct chip sample (per-chip Vmin variation).
 */
std::vector<NodeConfig> uniformFleet(const ChipSpec &chip,
                                     std::size_t n,
                                     std::uint64_t seed,
                                     PolicyKind policy
                                     = PolicyKind::Optimal);

/**
 * Heterogeneous fleet: X-Gene 3 and X-Gene 2 nodes alternating
 * (even ids X-Gene 3), seeds forked from @p seed.
 */
std::vector<NodeConfig> mixedFleet(std::size_t n, std::uint64_t seed,
                                   PolicyKind policy
                                   = PolicyKind::Optimal);

} // namespace ecosched

#endif // ECOSCHED_CLUSTER_CLUSTER_HH
