/**
 * @file
 * The fleet simulation: many independent nodes, one open job stream,
 * one dispatcher — the production-scale layer above the paper's
 * single-node daemon.
 *
 * Execution model (sharded, pipelined epochs of `dispatchInterval`):
 *
 * Nodes interact only through the dispatcher, and the dispatcher only
 * acts at epoch boundaries.  The fleet is therefore split into
 * contiguous *shards*, and each advance() executes a *window* of
 * consecutive epochs chosen so that every boundary interior to the
 * window is inert — no arrival to route, no scheduled crash or
 * restart, no autoscaler evaluation due.  Within the window:
 *
 *   1. boundary reconcile (serial): scheduled restarts, due NodeCrash
 *      events, the SLO autoscaler's park/unpark step, then arrival
 *      routing against the epoch-boundary fleet view;
 *   2. every shard runs its node range through all window epochs *in
 *      parallel* on the experiment ThreadPool — still calling
 *      stepTo() once per epoch per node (parked-energy re-accounting
 *      telescopes per epoch, so coalescing spans would change bits) —
 *      and buffers completions per (shard, epoch);
 *   3. the buffers are folded serially in epoch-major, node-ascending
 *      order — exactly the order the one-epoch-at-a-time serial loop
 *      feeds the latency accumulators — so the result is
 *      bit-identical for any worker count and any shard count.
 *
 * On the event path (ECOSCHED_EVENT_PATH, default on) each shard
 * additionally keeps a *next-event frontier*: a lazy-deletion event
 * queue keyed on ClusterNode::nextActivity() over flat
 * structure-of-arrays hot state (nodeNext/nodeDirty + the
 * outstanding/suspended vectors).  A window's sweep is node-major:
 * nodes whose horizon falls inside the window get the full
 * harvesting path; nodes it proves inert get a lean clock-advance;
 * dead-and-counted nodes are skipped outright.  The lean and full
 * paths execute the identical per-epoch statements (the skipped
 * ones are provably no-ops), so results stay bit-identical to the
 * reference path — see DESIGN.md §13.
 *
 * Large fleets are stamped from one pristine prototype stack per
 * distinct node shape (SimStack's stamp constructor) instead of
 * re-deriving the calibrated models 10 000 times.
 *
 * Idle nodes park into standby between epochs (suspend-to-idle) and
 * pay a wake-up delay when the dispatcher routes work back to them —
 * consolidation-friendly policies therefore save real energy.  The
 * optional SLO autoscaler (autoscale.hh) additionally gates whole
 * nodes off the dispatcher when the windowed p99 latency runs far
 * below target, and re-opens them when it overshoots.
 */

#ifndef ECOSCHED_CLUSTER_CLUSTER_HH
#define ECOSCHED_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cluster/autoscale.hh"
#include "cluster/dispatch.hh"
#include "cluster/node.hh"
#include "cluster/traffic.hh"
#include "common/histogram.hh"
#include "common/stats.hh"

namespace ecosched {

/// Fleet-simulation knobs.
struct ClusterConfig
{
    /// The fleet (required, non-empty).  Use uniformFleet() /
    /// mixedFleet() for the common shapes.
    std::vector<NodeConfig> nodes;

    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;
    TrafficConfig traffic;

    /// Dispatch-epoch length (also the park/wake granularity).
    Seconds dispatchInterval = 1.0;
    /// Abort when the drain exceeds traffic.duration * this factor.
    double drainBoundFactor = 5.0;

    /// Latency SLO: completions slower than this count as violations.
    Seconds sloLatency = 60.0;

    /// Park empty nodes into standby between epochs.
    bool idleSleep = true;
    /// Wake-up delay a job pays when routed to a parked node.
    Seconds wakeDelay = 0.2;

    /// Latency-histogram layout backing the percentiles.
    Seconds latencyHistogramMax = 600.0;
    std::size_t latencyHistogramBins = 6000;

    /// Node-stepping workers; 0 resolves via ECOSCHED_JOBS, then
    /// hardware concurrency (results identical for every count).
    unsigned jobs = 0;

    /// Fleet shards (contiguous node ranges stepped as one pool task
    /// each); 0 picks min(jobs, nodes).  Results are identical for
    /// every shard count.
    std::size_t shards = 0;
    /// Upper bound on the pipelined epoch window (>= 1; 1 disables
    /// pipelining and reconciles every epoch).
    std::size_t maxPipelineWindow = 8;

    /// Rack layout for correlated failures: nodes
    /// [r*nodesPerRack, (r+1)*nodesPerRack) form rack r.  0 means no
    /// rack structure (rack-scoped fault events are dropped).
    std::uint32_t nodesPerRack = 0;

    /// SLO autoscaler (disabled by default: behavior is then
    /// identical to a build without the autoscaler).
    AutoscaleConfig autoscale;

    /// Fleet-wide fault-injection plan.  NodeCrash events are applied
    /// here at epoch boundaries (crash at the first epoch whose start
    /// covers the event, restart after the event's duration);
    /// rack-scoped NodeCrash events expand to every member node of
    /// the rack; machine-level events are routed to their target
    /// node's injector by eventsForNode().  Applied serially, so
    /// campaigns stay bit-identical for any `jobs` count.
    InjectionPlan injection;
    /// Downtime for NodeCrash events with a negative duration
    /// (negative here too: such nodes stay down forever).
    Seconds nodeRestartDelay = -1.0;
};

/// Per-node slice of a cluster result.
struct NodeSummary
{
    NodeId node = 0;
    std::string chip;
    double headroomMv = 0.0;
    std::uint64_t jobsCompleted = 0;
    Joule energy = 0.0;
    double utilization = 0.0; ///< busy-core fraction while awake
    Seconds parkedTime = 0.0;
    /// Thread-seconds the bandwidth reservation held work below its
    /// demand (0 on chips without a reservation).
    Seconds memThrottled = 0.0;
    /// Worst per-thread throttle factor seen (>= 1).
    double peakMemThrottle = 1.0;
    bool crashed = false;
    std::uint32_t restarts = 0; ///< crash recoveries so far
};

/// Fleet-wide result of one cluster run.
struct ClusterResult
{
    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;
    std::size_t numNodes = 0;

    std::uint64_t jobsSubmitted = 0;
    std::uint64_t jobsCompleted = 0;
    /// Jobs that could not be dispatched (whole fleet down).
    std::uint64_t jobsDropped = 0;
    /// Jobs stranded on nodes that crashed mid-run.
    std::uint64_t jobsLost = 0;
    /// Completions whose outcome was a failure (SDC & friends from
    /// the fail-safe/fault-injection path).
    std::uint64_t jobsFailed = 0;

    Seconds makespan = 0.0;   ///< epoch time when the fleet drained
    Joule totalEnergy = 0.0;  ///< across all nodes, standby included
    Watt averagePower = 0.0;  ///< totalEnergy / makespan (0 for a
                              ///< zero-makespan run)

    Seconds latencyMean = 0.0;
    Seconds latencyMin = 0.0;
    Seconds latencyP50 = 0.0;
    Seconds latencyP95 = 0.0;
    Seconds latencyP99 = 0.0;
    Seconds latencyMax = 0.0;

    Seconds sloLatency = 0.0;
    std::uint64_t sloViolations = 0;
    std::uint64_t nodeCrashes = 0;
    std::uint64_t nodeRestarts = 0;

    /// Autoscaler activity (0 when disabled).
    std::uint64_t autoscaleParks = 0;
    std::uint64_t autoscaleUnparks = 0;

    /// Whether any node's chip has a bandwidth reservation armed.
    /// Gates the membw summary rows, so reservation-free output
    /// stays byte-identical to builds without the subsystem.
    bool membwConfigured = false;
    /// Fleet-wide thread-seconds spent bandwidth-throttled.
    Seconds memThrottledSeconds = 0.0;
    /// Worst per-thread throttle factor across the fleet (>= 1).
    double peakMemThrottle = 1.0;

    std::vector<NodeSummary> nodes;

    /// Energy per completed job (0 when nothing completed, so
    /// degenerate runs report 0 rather than inf/nan).
    Joule energyPerJob() const
    {
        return jobsCompleted == 0
            ? 0.0
            : totalEnergy / static_cast<double>(jobsCompleted);
    }

    /// Deterministic human-readable summary (cluster-wide metric
    /// table plus the per-node table).  Contains no worker-count or
    /// wall-clock data, so it is bit-identical for any `--jobs` and
    /// any `--shards`.
    void printSummary(std::ostream &os) const;
};

/**
 * Runs one open-arrival traffic trace against a fleet.  Single-use:
 * construct, run(), read the result — or drive the run stepwise with
 * start() / advance() / finish() and capture()/restore() mid-run
 * snapshots (the snapshot carries the dispatcher cursor and the
 * autoscaler window alongside the node states, so a restored run
 * replays bit-identically).
 */
class ClusterSim
{
  public:
    explicit ClusterSim(ClusterConfig config);
    ~ClusterSim();

    ClusterSim(const ClusterSim &) = delete;
    ClusterSim &operator=(const ClusterSim &) = delete;

    /// Resolved node-stepping worker count (>= 1).
    unsigned jobs() const { return workerCount; }

    /// Resolved shard count (>= 1, <= fleet size).
    std::size_t shards() const { return shardCount; }

    /// Knobs in use.
    const ClusterConfig &config() const { return cfg; }

    /// Execute the trace to drain (or the drain bound).  Equivalent
    /// to start(); while (!finished()) advance(); finish().
    ClusterResult run();

    /// Begin a stepwise run (single-use, like run()).
    void start();

    /// Whether the trace is fully settled (every submitted job
    /// completed, dropped or lost).  Valid after start().
    bool finished() const;

    /// Execute the next pipelined epoch window.
    void advance();

    /// Finalize and return the result (valid once finished()).
    ClusterResult finish();

    /**
     * Full mid-run state: the per-node snapshots plus every piece of
     * cluster-layer bookkeeping a replay needs — dispatcher cursor,
     * autoscaler sample window, partial accounting, latency
     * accumulators and the epoch clock.  A same-config ClusterSim
     * that restore()s this snapshot continues bit-identically.
     */
    struct Snapshot
    {
        std::vector<ClusterNode::Snapshot> nodes;
        Dispatcher::State dispatcher;
        SloAutoscaler::State autoscaler;
        ClusterResult partial;
        Histogram latency = Histogram(0.0, 1.0, 1);
        RunningStats latencyStats;
        std::vector<std::uint32_t> outstanding;
        std::vector<char> suspended;
        std::vector<char> crashCounted;
        std::vector<char> schedulable;
        std::vector<Seconds> lastIssue;
        std::vector<Seconds> restartAt;
        std::vector<std::uint64_t> nodeCompleted;
        std::size_t nextArrival = 0;
        std::size_t nextCrash = 0;
        Seconds t = 0.0;
        std::size_t epochIndex = 0;
    };

    /// Capture the mid-run state (valid between start() and
    /// finish()).
    Snapshot capture() const;

    /// Rewind a started same-config sim to @p snapshot.
    void restore(const Snapshot &snapshot);

  private:
    struct Run; ///< live run state (cluster.cc)

    std::size_t planWindow() const;
    void reconcileBoundary();
    void autoscaleStep();
    void executeWindow(const std::vector<Seconds> &ends);

    ClusterConfig cfg;
    unsigned workerCount;
    std::size_t shardCount;
    std::vector<std::unique_ptr<ClusterNode>> fleet;
    std::unique_ptr<Run> live;
    bool consumed = false;
};

/**
 * @p n identical nodes of one chip model.  Per-node machine and
 * daemon seeds are forked deterministically from @p seed, so every
 * node is a distinct chip sample (per-chip Vmin variation).
 */
std::vector<NodeConfig> uniformFleet(const ChipSpec &chip,
                                     std::size_t n,
                                     std::uint64_t seed,
                                     PolicyKind policy
                                     = PolicyKind::Optimal);

/**
 * Heterogeneous fleet: X-Gene 3 and X-Gene 2 nodes alternating
 * (even ids X-Gene 3), seeds forked from @p seed.
 */
std::vector<NodeConfig> mixedFleet(std::size_t n, std::uint64_t seed,
                                   PolicyKind policy
                                   = PolicyKind::Optimal);

} // namespace ecosched

#endif // ECOSCHED_CLUSTER_CLUSTER_HH
