/**
 * @file
 * The fleet dispatcher: decides which node absorbs each arriving job.
 *
 * Three pluggable policies:
 *
 *  - round_robin:  rotate over live nodes, ignoring load — the
 *                  classic DNS/LVS baseline.  Keeps every node warm.
 *  - least_loaded: send the job to the node with the lowest relative
 *                  outstanding-thread load (join-the-shortest-queue).
 *  - energy_aware: consolidate.  Prefer nodes that are already awake
 *                  and have room, packing the deepest safe-Vmin
 *                  headroom first (per-chip variation: robust silicon
 *                  runs cheapest); wake the deepest idle node only
 *                  when no awake node has room; fall back to
 *                  least-loaded when the whole fleet is saturated.
 *                  Nodes left idle park into standby — that is where
 *                  the fleet-level energy saving comes from.
 *  - bandwidth_aware: co-locate by memory demand.  Route each job to
 *                  the node where its estimated DRAM bandwidth
 *                  oversubscribes the node's reservation ceiling the
 *                  least — compute-bound work stacks onto
 *                  memory-heavy nodes for free, while memory floods
 *                  spread out instead of saturating one node's
 *                  ceiling; ties (including the whole fleet when no
 *                  ceiling is configured) fall back to the
 *                  least-loaded order.
 *
 * The dispatcher sees only epoch-boundary snapshots (NodeView), so
 * its decisions are a pure function of the dispatch history — one
 * ingredient of the cluster's any-job-count determinism.
 */

#ifndef ECOSCHED_CLUSTER_DISPATCH_HH
#define ECOSCHED_CLUSTER_DISPATCH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/traffic.hh"
#include "common/units.hh"

namespace ecosched {

/// Dispatch policy selector.
enum class DispatchPolicy
{
    RoundRobin,
    LeastLoaded,
    EnergyAware,
    BandwidthAware,
};

/// Human-readable policy name (round_robin | least_loaded |
/// energy_aware | bandwidth_aware).
const char *dispatchPolicyName(DispatchPolicy policy);

/// Parse a policy name. @throws FatalError for unknown names.
DispatchPolicy dispatchPolicyByName(const std::string &name);

/// Epoch-boundary snapshot of one node, as the dispatcher sees it.
struct NodeView
{
    bool alive = true;
    /// Autoscaler gate: a scaled-in node is alive but should not
    /// receive new work (it drains, then parks).  Every policy
    /// prefers schedulable nodes and falls back to any live node
    /// only when nothing schedulable is up.
    bool schedulable = true;
    std::uint32_t cores = 0;
    /// Threads dispatched to the node and not yet completed
    /// (running + queued + still in its inbox).
    std::uint32_t outstandingThreads = 0;
    /// Static safe-Vmin headroom of the chip sample [mV].
    double headroomMv = 0.0;
    /// Estimated aggregate DRAM bandwidth demand of the node's
    /// outstanding work [B/s] (filled only for bandwidth_aware).
    BytesPerSecond bwDemand = 0.0;
    /// The node's reservation ceiling [B/s]; 0 when the chip has no
    /// bandwidth reservation configured.
    BytesPerSecond bwCeiling = 0.0;
    /// Estimated per-thread DRAM bandwidth an arriving job's threads
    /// would add on this node [B/s] (resolved per node: frequency
    /// and memory constants differ across a heterogeneous fleet).
    BytesPerSecond bwPerJobThread = 0.0;

    /// Bandwidth oversubscription in [0, inf) if @p extra B/s were
    /// added: demand beyond the ceiling, as a ceiling fraction.
    double bwOversubscription(BytesPerSecond extra) const
    {
        if (bwCeiling <= 0.0)
            return 0.0;
        const BytesPerSecond over = bwDemand + extra - bwCeiling;
        return over <= 0.0 ? 0.0 : over / bwCeiling;
    }

    /// Relative load in [0, inf): outstanding threads per core.
    double relativeLoad() const
    {
        return cores == 0
            ? 0.0
            : static_cast<double>(outstandingThreads)
                / static_cast<double>(cores);
    }
};

/**
 * Stateful node chooser (round-robin keeps a cursor).
 */
class Dispatcher
{
  public:
    /// Returned when no live node exists.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    explicit Dispatcher(DispatchPolicy policy);

    DispatchPolicy policy() const { return kind; }

    /**
     * Mutable policy state (the round-robin rotation).  It is part
     * of a cluster run's replay identity: a rewound/forked
     * ClusterSim must restore it alongside the node snapshots, or
     * round-robin routing silently restarts from node 0.
     */
    struct State
    {
        std::size_t cursor = 0;
    };

    State state() const { return State{cursor}; }
    void setState(const State &s) { cursor = s.cursor; }

    /**
     * Pick the node for @p job given the current fleet view, or npos
     * when every node is down.  The job's thread demand is resolved
     * per candidate node (heterogeneous fleets).
     */
    std::size_t choose(const std::vector<NodeView> &nodes,
                       const ClusterJob &job);

  private:
    /// Whether a policy may route to this node.  @p honor_gate skips
    /// scaled-in nodes; the caller drops the gate when nothing
    /// schedulable is alive (jobs are never dropped while any node
    /// is up).
    static bool eligible(const NodeView &node, bool honor_gate)
    {
        return node.alive && (!honor_gate || node.schedulable);
    }

    std::size_t chooseRoundRobin(const std::vector<NodeView> &nodes,
                                 bool honor_gate);
    std::size_t chooseLeastLoaded(const std::vector<NodeView> &nodes,
                                  bool honor_gate) const;
    std::size_t chooseEnergyAware(const std::vector<NodeView> &nodes,
                                  const ClusterJob &job,
                                  bool honor_gate) const;
    std::size_t chooseBandwidthAware(
        const std::vector<NodeView> &nodes, const ClusterJob &job,
        bool honor_gate) const;

    DispatchPolicy kind;
    std::size_t cursor = 0; ///< round-robin position
};

} // namespace ecosched

#endif // ECOSCHED_CLUSTER_DISPATCH_HH
