/**
 * @file
 * SLO-driven fleet autoscaler: parks and unparks whole nodes against
 * a windowed p99 completion latency under open (e.g. diurnal)
 * traffic.
 *
 * The controller is deliberately simple and fully deterministic —
 * integer step sizes derived from the current schedulable-node count,
 * evaluated at fixed epoch-aligned intervals:
 *
 *  - p99 above the target        → scale OUT: unpark ~25% more nodes
 *                                  (capped by maxUnparkPerEval and by
 *                                  how many parked nodes exist);
 *  - p99 below lowWatermark×target → scale IN: drain-and-park ~12.5%
 *                                  of the schedulable fleet (capped
 *                                  by maxParkPerEval, idle candidates
 *                                  and the minLiveNodes floor);
 *  - no completions in the window → hold (an empty window cannot
 *                                  distinguish "idle" from "stuck",
 *                                  so the controller never acts on
 *                                  it).
 *
 * The autoscaler only *counts*; ClusterSim picks which nodes to park
 * (schedulable, alive, idle — shallowest Vmin headroom first, so the
 * cheapest silicon keeps running) and which to unpark (deepest
 * headroom first).  A scaled-in node keeps draining its queue but
 * receives no new work (NodeView::schedulable gate) and parks into
 * standby once idle.
 *
 * All observations and decisions happen in the serial reconcile
 * phase, so runs stay bit-identical for any worker count.
 */

#ifndef ECOSCHED_CLUSTER_AUTOSCALE_HH
#define ECOSCHED_CLUSTER_AUTOSCALE_HH

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/units.hh"

namespace ecosched {

/// Autoscaler knobs.  Disabled by default: a default-constructed
/// ClusterConfig behaves exactly as before the autoscaler existed.
struct AutoscaleConfig
{
    bool enabled = false;

    /// The latency objective the controller regulates to: windowed
    /// p99 completion latency [s].
    Seconds targetP99 = 30.0;
    /// Scale in when p99 drops below lowWatermark * targetP99.  The
    /// dead band in between damps oscillation.
    double lowWatermark = 0.5;

    /// Evaluation cadence [s]; rounded up to whole dispatch epochs.
    Seconds evalInterval = 10.0;
    /// Sliding sample window the p99 is computed over [s].
    Seconds window = 120.0;

    /// Never scale in below this many schedulable nodes.
    std::size_t minLiveNodes = 1;
    /// Per-evaluation step caps (keep single decisions bounded on
    /// 10k-node fleets).
    std::size_t maxParkPerEval = 64;
    std::size_t maxUnparkPerEval = 256;
};

/**
 * The windowed-p99 controller.  Feed every job completion through
 * observe(); call evaluate() at the configured cadence.
 */
class SloAutoscaler
{
  public:
    explicit SloAutoscaler(AutoscaleConfig config);

    /// What evaluate() wants changed, as node *counts*.
    struct Decision
    {
        std::size_t park = 0;
        std::size_t unpark = 0;
    };

    /// Record one job completion (monotone non-decreasing
    /// completion times; the window is pruned lazily).
    void observe(Seconds completed_at, Seconds latency);

    /// Controller step at simulation time @p now, given the current
    /// number of schedulable (gate-open, alive) nodes.
    Decision evaluate(Seconds now, std::size_t schedulable_nodes);

    /// Windowed p99 at @p now (prunes expired samples); 0 when the
    /// window holds no completions.
    Seconds windowedP99(Seconds now);

    /// Samples currently inside the window (after the last prune).
    std::size_t sampleCount() const { return samples.size(); }

    /// Snapshot state for ClusterSim capture/restore: the sample
    /// window content as (completedAt, latency) pairs.
    struct State
    {
        std::vector<std::pair<Seconds, Seconds>> samples;
    };

    State captureState() const;
    void restoreState(const State &s);

  private:
    void prune(Seconds now);

    AutoscaleConfig cfg;
    /// (completedAt, latency), ascending by completedAt.
    std::deque<std::pair<Seconds, Seconds>> samples;
};

} // namespace ecosched

#endif // ECOSCHED_CLUSTER_AUTOSCALE_HH
