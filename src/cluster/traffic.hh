/**
 * @file
 * Open-arrival traffic model for the cluster layer.
 *
 * The paper's §VI.B workload generator is *closed*: it caps active
 * processes at one node's core count.  A fleet serves an *open*
 * request stream — jobs arrive whether or not capacity is free, and
 * the dispatcher decides which node absorbs each one.  This model
 * produces such a stream from the same 35-program catalog pool
 * (29 SPEC CPU2006 + 6 NPB):
 *
 *  - Poisson: memoryless arrivals at a constant mean rate, the
 *    classic open-system server-load model;
 *  - Diurnal: a Poisson process whose rate follows a day-shaped
 *    sinusoid (trough at t = 0, peak at half period), produced by
 *    thinning against the peak rate.
 *
 * Generation is a pure function of the config (deterministic seed),
 * so the same stream can be replayed against different fleet sizes
 * and dispatch policies.
 */

#ifndef ECOSCHED_CLUSTER_TRAFFIC_HH
#define ECOSCHED_CLUSTER_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/memory_system.hh"
#include "workloads/catalog.hh"

namespace ecosched {

/// Arrival process shape.
enum class ArrivalProcess
{
    Poisson, ///< constant mean rate
    Diurnal, ///< sinusoidally modulated rate (day curve)
};

/// Human-readable arrival-process name.
const char *arrivalProcessName(ArrivalProcess process);

/**
 * Benchmark pool the stream draws from.  The default (FullPool) is
 * the §VI.B 35-program pool and produces bit-identical streams to
 * builds without this knob; the other mixes are the MEMBW evaluation
 * scenarios, where the L3C-rate split alone under-describes the
 * workload (two memory-classified programs can differ 5x in DRAM
 * bandwidth).
 */
enum class TrafficMix
{
    FullPool,    ///< all 35 programs (default)
    /// Latency-critical compute (namd, EP) co-arriving with
    /// memory-bound batch work (milc, CG, FT): the co-location
    /// scenario a bandwidth-aware dispatcher should win.
    Colocation,
    /// Only the memory-intensive programs (milc, CG, FT): a flood
    /// that saturates any single node's DRAM ceiling.
    MemoryFlood,
};

/// Human-readable mix name.
const char *trafficMixName(TrafficMix mix);

/**
 * One job of the open stream.  Parallel jobs are sized relative to
 * whichever node they land on (the fleet is heterogeneous), so the
 * job carries a core *divisor* rather than a thread count; resolve it
 * with threadsForJob() once the target node is known.
 */
struct ClusterJob
{
    std::uint64_t id = 0;       ///< sequential, 1-based
    Seconds arrival = 0.0;      ///< cluster-clock arrival time
    std::string benchmark;      ///< catalog name
    bool parallel = false;      ///< parallel program (NPB)
    /// Core divisor for parallel jobs (1, 2 or 4: the paper's max /
    /// half / quarter threading configs); 0 for single-thread copies.
    std::uint32_t sizeDivisor = 0;
};

/// Threads the job occupies on a node with @p node_cores cores.
std::uint32_t threadsForJob(const ClusterJob &job,
                            std::uint32_t node_cores);

/// Traffic knobs.
struct TrafficConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    Seconds duration = 600.0;       ///< arrival window
    double arrivalsPerSecond = 0.5; ///< mean rate over the window

    /// Diurnal only: modulation depth in [0, 1) — rate swings between
    /// mean*(1-A) and mean*(1+A).
    double diurnalAmplitude = 0.8;
    /// Diurnal only: length of one day curve (defaults to the whole
    /// window when <= 0).
    Seconds diurnalPeriod = 0.0;

    std::uint64_t seed = 42; ///< replay seed

    /// Benchmark pool the stream draws from.
    TrafficMix mix = TrafficMix::FullPool;

    /// Chip whose memory parameters anchor runtime estimation (load
    /// planning; any catalog-known chip works).
    std::string chipName = "X-Gene 3";
    /// Reference frequency for runtime estimation.
    Hertz referenceFrequency = units::GHz(3.0);
};

/**
 * Deterministic open-arrival job stream generator.
 */
class TrafficModel
{
  public:
    explicit TrafficModel(TrafficConfig config);

    /// Configuration in use.
    const TrafficConfig &config() const { return cfg; }

    /// Instantaneous arrival rate at time @p t [jobs/s].
    double rateAt(Seconds t) const;

    /// Produce the job stream (ascending arrival, ids 1..n).
    std::vector<ClusterJob> generate() const;

    /**
     * Estimated uncontended runtime of one invocation at the
     * reference frequency (same capacity-planning estimate the §VI.B
     * generator uses).
     */
    Seconds estimateRuntime(const BenchmarkProfile &profile,
                            std::uint32_t threads) const;

    /**
     * Expected core-seconds one job of the pool occupies on a node
     * with @p reference_cores cores (averaged over the pool and the
     * parallel size classes).  Use it to translate a target fleet
     * occupancy into an arrival rate:
     * rate = occupancy * total_cores / meanCoreSecondsPerJob(...).
     */
    double meanCoreSecondsPerJob(std::uint32_t reference_cores) const;

  private:
    /// The configured mix's benchmark pool.
    std::vector<const BenchmarkProfile *> pool() const;

    TrafficConfig cfg;
    MemorySystem memory;
};

} // namespace ecosched

#endif // ECOSCHED_CLUSTER_TRAFFIC_HH
