#include "cluster/dispatch.hh"

#include "common/error.hh"

namespace ecosched {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:  return "round_robin";
      case DispatchPolicy::LeastLoaded: return "least_loaded";
      case DispatchPolicy::EnergyAware: return "energy_aware";
    }
    return "?";
}

DispatchPolicy
dispatchPolicyByName(const std::string &name)
{
    if (name == "round_robin")
        return DispatchPolicy::RoundRobin;
    if (name == "least_loaded")
        return DispatchPolicy::LeastLoaded;
    if (name == "energy_aware")
        return DispatchPolicy::EnergyAware;
    fatal("unknown dispatch policy '", name,
          "' (round_robin|least_loaded|energy_aware)");
}

Dispatcher::Dispatcher(DispatchPolicy policy) : kind(policy) {}

std::size_t
Dispatcher::choose(const std::vector<NodeView> &nodes,
                   const ClusterJob &job)
{
    fatalIf(nodes.empty(), "dispatcher needs at least one node");
    switch (kind) {
      case DispatchPolicy::RoundRobin:
        return chooseRoundRobin(nodes);
      case DispatchPolicy::LeastLoaded:
        return chooseLeastLoaded(nodes);
      case DispatchPolicy::EnergyAware:
        return chooseEnergyAware(nodes, job);
    }
    return npos;
}

std::size_t
Dispatcher::chooseRoundRobin(const std::vector<NodeView> &nodes)
{
    for (std::size_t tried = 0; tried < nodes.size(); ++tried) {
        const std::size_t i = cursor % nodes.size();
        cursor = (cursor + 1) % nodes.size();
        if (nodes[i].alive)
            return i;
    }
    return npos;
}

std::size_t
Dispatcher::chooseLeastLoaded(
    const std::vector<NodeView> &nodes) const
{
    std::size_t best = npos;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i].alive)
            continue;
        if (best == npos
            || nodes[i].relativeLoad()
                < nodes[best].relativeLoad()) {
            best = i;
        }
    }
    return best;
}

std::size_t
Dispatcher::chooseEnergyAware(const std::vector<NodeView> &nodes,
                              const ClusterJob &job) const
{
    // Pass 1: pack an already-awake node that still has room,
    // deepest Vmin headroom first; among equals prefer the fuller
    // node (tighter packing), then the lower id.
    std::size_t best = npos;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &n = nodes[i];
        if (!n.alive || n.outstandingThreads == 0)
            continue;
        const std::uint32_t need = threadsForJob(job, n.cores);
        if (n.outstandingThreads + need > n.cores)
            continue;
        if (best == npos
            || n.headroomMv > nodes[best].headroomMv
            || (n.headroomMv == nodes[best].headroomMv
                && n.relativeLoad() > nodes[best].relativeLoad())) {
            best = i;
        }
    }
    if (best != npos)
        return best;

    // Pass 2: wake the parked node with the deepest headroom.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &n = nodes[i];
        if (!n.alive || n.outstandingThreads != 0)
            continue;
        if (best == npos
            || n.headroomMv > nodes[best].headroomMv) {
            best = i;
        }
    }
    if (best != npos)
        return best;

    // Pass 3: the fleet is saturated — join the shortest queue.
    return chooseLeastLoaded(nodes);
}

} // namespace ecosched
