#include "cluster/dispatch.hh"

#include "common/error.hh"

namespace ecosched {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:  return "round_robin";
      case DispatchPolicy::LeastLoaded: return "least_loaded";
      case DispatchPolicy::EnergyAware: return "energy_aware";
    }
    return "?";
}

DispatchPolicy
dispatchPolicyByName(const std::string &name)
{
    if (name == "round_robin")
        return DispatchPolicy::RoundRobin;
    if (name == "least_loaded")
        return DispatchPolicy::LeastLoaded;
    if (name == "energy_aware")
        return DispatchPolicy::EnergyAware;
    fatal("unknown dispatch policy '", name,
          "' (round_robin|least_loaded|energy_aware)");
}

Dispatcher::Dispatcher(DispatchPolicy policy) : kind(policy) {}

std::size_t
Dispatcher::choose(const std::vector<NodeView> &nodes,
                   const ClusterJob &job)
{
    fatalIf(nodes.empty(), "dispatcher needs at least one node");
    // Honor the autoscaler's gate only while something schedulable
    // is up; otherwise any live node beats dropping the job.
    bool honor_gate = false;
    for (const NodeView &n : nodes) {
        if (n.alive && n.schedulable) {
            honor_gate = true;
            break;
        }
    }
    switch (kind) {
      case DispatchPolicy::RoundRobin:
        return chooseRoundRobin(nodes, honor_gate);
      case DispatchPolicy::LeastLoaded:
        return chooseLeastLoaded(nodes, honor_gate);
      case DispatchPolicy::EnergyAware:
        return chooseEnergyAware(nodes, job, honor_gate);
    }
    return npos;
}

std::size_t
Dispatcher::chooseRoundRobin(const std::vector<NodeView> &nodes,
                             bool honor_gate)
{
    for (std::size_t tried = 0; tried < nodes.size(); ++tried) {
        const std::size_t i = cursor % nodes.size();
        cursor = (cursor + 1) % nodes.size();
        if (eligible(nodes[i], honor_gate))
            return i;
    }
    return npos;
}

std::size_t
Dispatcher::chooseLeastLoaded(const std::vector<NodeView> &nodes,
                              bool honor_gate) const
{
    std::size_t best = npos;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!eligible(nodes[i], honor_gate))
            continue;
        if (best == npos
            || nodes[i].relativeLoad()
                < nodes[best].relativeLoad()) {
            best = i;
        }
    }
    return best;
}

std::size_t
Dispatcher::chooseEnergyAware(const std::vector<NodeView> &nodes,
                              const ClusterJob &job,
                              bool honor_gate) const
{
    // Pass 1: pack an already-awake node that still has room,
    // deepest Vmin headroom first; among equals prefer the fuller
    // node (tighter packing), then the lower id.
    std::size_t best = npos;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &n = nodes[i];
        if (!eligible(n, honor_gate) || n.outstandingThreads == 0)
            continue;
        const std::uint32_t need = threadsForJob(job, n.cores);
        if (n.outstandingThreads + need > n.cores)
            continue;
        if (best == npos
            || n.headroomMv > nodes[best].headroomMv
            || (n.headroomMv == nodes[best].headroomMv
                && n.relativeLoad() > nodes[best].relativeLoad())) {
            best = i;
        }
    }
    if (best != npos)
        return best;

    // Pass 2: wake the parked node with the deepest headroom.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &n = nodes[i];
        if (!eligible(n, honor_gate) || n.outstandingThreads != 0)
            continue;
        if (best == npos
            || n.headroomMv > nodes[best].headroomMv) {
            best = i;
        }
    }
    if (best != npos)
        return best;

    // Pass 3: the fleet is saturated — join the shortest queue.
    return chooseLeastLoaded(nodes, honor_gate);
}

} // namespace ecosched
