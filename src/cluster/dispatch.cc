#include "cluster/dispatch.hh"

#include "common/error.hh"

namespace ecosched {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:  return "round_robin";
      case DispatchPolicy::LeastLoaded: return "least_loaded";
      case DispatchPolicy::EnergyAware: return "energy_aware";
      case DispatchPolicy::BandwidthAware: return "bandwidth_aware";
    }
    return "?";
}

DispatchPolicy
dispatchPolicyByName(const std::string &name)
{
    if (name == "round_robin")
        return DispatchPolicy::RoundRobin;
    if (name == "least_loaded")
        return DispatchPolicy::LeastLoaded;
    if (name == "energy_aware")
        return DispatchPolicy::EnergyAware;
    if (name == "bandwidth_aware")
        return DispatchPolicy::BandwidthAware;
    fatal("unknown dispatch policy '", name,
          "' (round_robin|least_loaded|energy_aware|"
          "bandwidth_aware)");
}

Dispatcher::Dispatcher(DispatchPolicy policy) : kind(policy) {}

std::size_t
Dispatcher::choose(const std::vector<NodeView> &nodes,
                   const ClusterJob &job)
{
    fatalIf(nodes.empty(), "dispatcher needs at least one node");
    // Honor the autoscaler's gate only while something schedulable
    // is up; otherwise any live node beats dropping the job.
    bool honor_gate = false;
    for (const NodeView &n : nodes) {
        if (n.alive && n.schedulable) {
            honor_gate = true;
            break;
        }
    }
    switch (kind) {
      case DispatchPolicy::RoundRobin:
        return chooseRoundRobin(nodes, honor_gate);
      case DispatchPolicy::LeastLoaded:
        return chooseLeastLoaded(nodes, honor_gate);
      case DispatchPolicy::EnergyAware:
        return chooseEnergyAware(nodes, job, honor_gate);
      case DispatchPolicy::BandwidthAware:
        return chooseBandwidthAware(nodes, job, honor_gate);
    }
    return npos;
}

std::size_t
Dispatcher::chooseRoundRobin(const std::vector<NodeView> &nodes,
                             bool honor_gate)
{
    for (std::size_t tried = 0; tried < nodes.size(); ++tried) {
        const std::size_t i = cursor % nodes.size();
        cursor = (cursor + 1) % nodes.size();
        if (eligible(nodes[i], honor_gate))
            return i;
    }
    return npos;
}

std::size_t
Dispatcher::chooseLeastLoaded(const std::vector<NodeView> &nodes,
                              bool honor_gate) const
{
    std::size_t best = npos;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!eligible(nodes[i], honor_gate))
            continue;
        if (best == npos
            || nodes[i].relativeLoad()
                < nodes[best].relativeLoad()) {
            best = i;
        }
    }
    return best;
}

std::size_t
Dispatcher::chooseEnergyAware(const std::vector<NodeView> &nodes,
                              const ClusterJob &job,
                              bool honor_gate) const
{
    // Pass 1: pack an already-awake node that still has room,
    // deepest Vmin headroom first; among equals prefer the fuller
    // node (tighter packing), then the lower id.
    std::size_t best = npos;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &n = nodes[i];
        if (!eligible(n, honor_gate) || n.outstandingThreads == 0)
            continue;
        const std::uint32_t need = threadsForJob(job, n.cores);
        if (n.outstandingThreads + need > n.cores)
            continue;
        if (best == npos
            || n.headroomMv > nodes[best].headroomMv
            || (n.headroomMv == nodes[best].headroomMv
                && n.relativeLoad() > nodes[best].relativeLoad())) {
            best = i;
        }
    }
    if (best != npos)
        return best;

    // Pass 2: wake the parked node with the deepest headroom.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &n = nodes[i];
        if (!eligible(n, honor_gate) || n.outstandingThreads != 0)
            continue;
        if (best == npos
            || n.headroomMv > nodes[best].headroomMv) {
            best = i;
        }
    }
    if (best != npos)
        return best;

    // Pass 3: the fleet is saturated — join the shortest queue.
    return chooseLeastLoaded(nodes, honor_gate);
}

std::size_t
Dispatcher::chooseBandwidthAware(const std::vector<NodeView> &nodes,
                                 const ClusterJob &job,
                                 bool honor_gate) const
{
    // Route to the node where the job's estimated DRAM traffic
    // oversubscribes the reservation ceiling the least: a
    // compute-bound job scores 0 everywhere and packs like
    // least_loaded, while a memory flood is pushed away from nodes
    // whose ceiling its threads would saturate.  Ceiling-free nodes
    // (and fleets) score 0 as well, collapsing the whole policy to
    // the least-loaded order — contractually inert without a
    // reservation.
    std::size_t best = npos;
    double best_score = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &n = nodes[i];
        if (!eligible(n, honor_gate))
            continue;
        const std::uint32_t need = threadsForJob(job, n.cores);
        const BytesPerSecond extra =
            static_cast<double>(need) * n.bwPerJobThread;
        const double score = n.bwOversubscription(extra);
        if (best == npos || score < best_score
            || (score == best_score
                && n.relativeLoad() < nodes[best].relativeLoad())) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

} // namespace ecosched
