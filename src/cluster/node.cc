#include "cluster/node.hh"

#include <algorithm>
#include <utility>

#include "common/error.hh"
#include "inject/injector.hh"
#include "workloads/catalog.hh"

namespace ecosched {

namespace {

/// Static safe-Vmin headroom of one chip sample (see header).
double
computeHeadroomMv(const Machine &machine)
{
    const ChipSpec &spec = machine.spec();
    const VminModel &model = machine.vminModel();
    const double guardband_mv =
        units::toMilliVolts(spec.vNominal)
        - units::toMilliVolts(
              model.tableVmin(spec.fMax, spec.numPmds()));
    double offsets_mv = 0.0;
    for (PmdId p = 0; p < spec.numPmds(); ++p)
        offsets_mv -= units::toMilliVolts(model.pmdOffset(p));
    return guardband_mv
        + offsets_mv / static_cast<double>(spec.numPmds());
}

} // namespace

ClusterNode::ClusterNode(NodeId id, NodeConfig config)
    : nodeId(id), cfg(std::move(config))
{
    cfg.chip.validate();
    fatalIf(cfg.timestep <= 0.0, "node timestep must be positive");
    fatalIf(cfg.standbyPower < 0.0,
            "standby power must be non-negative");
    // The node owns job re-runs (the daemon's resubmissions would
    // not carry a cluster-job identity and would break harvesting).
    cfg.daemon.recovery.rerunFailedJobs = false;
    buildStack();
}

ClusterNode::ClusterNode(NodeId id, NodeConfig config,
                         const SimStack &prototype)
    : nodeId(id), cfg(std::move(config))
{
    cfg.chip.validate();
    fatalIf(cfg.timestep <= 0.0, "node timestep must be positive");
    fatalIf(cfg.standbyPower < 0.0,
            "standby power must be non-negative");
    cfg.daemon.recovery.rerunFailedJobs = false;
    buildStack(&prototype);
}

ClusterNode::~ClusterNode() = default;

SimStackConfig
ClusterNode::stackConfig(NodeConfig config)
{
    // Same normalization the node constructor applies.
    config.daemon.recovery.rerunFailedJobs = false;
    SimStackConfig scfg;
    scfg.chip = config.chip;
    scfg.policy = config.policy;
    scfg.machineSeed = config.machineSeed;
    scfg.timestep = config.timestep;
    scfg.daemon = config.daemon;
    scfg.injectFaults = config.injectFaults;
    return scfg;
}

void
ClusterNode::buildStack(const SimStack *prototype)
{
    if (stack == nullptr) {
        const SimStackConfig scfg = stackConfig(cfg);
        stack = prototype != nullptr
            ? std::make_unique<SimStack>(*prototype, scfg)
            : std::make_unique<SimStack>(scfg);
    } else {
        // Restart path: a pristine rewind is bit-identical to a
        // fresh construction (the snapshot round-trip guarantee)
        // and skips rebuilding the machine and its models.
        stack->restoreToPristine();
    }
    injector.reset();
    if (!cfg.injection.empty()) {
        // Re-base the plan tail onto the stack's local clock; the
        // injector stream is forked from the machine seed, so replays
        // are exact for the same (plan, seed).
        injector = std::make_unique<MachineInjector>(
            cfg.injection.after(timeBase),
            Rng(cfg.machineSeed).fork(0xfau).next());
        injector->attach(stack->machine(), stack->daemon());
    }
    headroomMv = computeHeadroomMv(stack->machine());
}

ClusterNode::Snapshot
ClusterNode::capture() const
{
    Snapshot s;
    s.stack = stack->capture();
    s.hasInjector = injector != nullptr;
    if (injector)
        s.injector = injector->capture();
    s.inbox = inbox;
    s.inFlight = inFlight;
    s.harvested = harvested;
    s.retriesSpent = retriesSpent;
    s.parkedSeconds = parkedSeconds;
    s.parkedMeterJoules = parkedMeterJoules;
    s.timeBase = timeBase;
    s.priorMeterJoules = priorMeterJoules;
    s.priorBusyCoreSeconds = priorBusyCoreSeconds;
    s.priorUpSeconds = priorUpSeconds;
    s.priorMemThrottledSeconds = priorMemThrottledSeconds;
    s.priorPeakMemThrottle = priorPeakMemThrottle;
    s.restartCount = restartCount;
    return s;
}

void
ClusterNode::restore(const Snapshot &s)
{
    stack->restore(s.stack);
    inbox = s.inbox;
    inFlight = s.inFlight;
    harvested = s.harvested;
    retriesSpent = s.retriesSpent;
    parkedSeconds = s.parkedSeconds;
    parkedMeterJoules = s.parkedMeterJoules;
    timeBase = s.timeBase;
    priorMeterJoules = s.priorMeterJoules;
    priorBusyCoreSeconds = s.priorBusyCoreSeconds;
    priorUpSeconds = s.priorUpSeconds;
    priorMemThrottledSeconds = s.priorMemThrottledSeconds;
    priorPeakMemThrottle = s.priorPeakMemThrottle;
    restartCount = s.restartCount;
    // Re-arm the injector at the captured time base and delivery
    // position (the stack restore dropped the old wiring).
    injector.reset();
    if (s.hasInjector) {
        fatalIf(cfg.injection.empty(),
                "snapshot carries an injector but node ", nodeId,
                " has no injection plan");
        injector = std::make_unique<MachineInjector>(
            cfg.injection.after(timeBase),
            Rng(cfg.machineSeed).fork(0xfau).next());
        injector->restore(s.injector);
        injector->attach(stack->machine(), stack->daemon());
    }
}

std::unique_ptr<ClusterNode>
ClusterNode::clone() const
{
    auto copy = std::make_unique<ClusterNode>(nodeId, cfg);
    copy->restore(capture());
    return copy;
}

void
ClusterNode::forceCrash()
{
    stack->machine().injectSystemCrash();
}

void
ClusterNode::restart(Seconds at)
{
    fatalIf(alive(), "restart() needs a crashed node");
    fatalIf(at + cfg.timestep * 0.5 < now(),
            "node ", nodeId, " cannot restart in its past");
    priorMeterJoules += stack->machine().energyMeter().energy();
    priorBusyCoreSeconds += stack->system().busyCoreTime();
    priorUpSeconds += stack->system().now();
    priorMemThrottledSeconds += stack->machine().memThrottledTime();
    priorPeakMemThrottle = std::max(
        priorPeakMemThrottle, stack->machine().peakMemThrottle());
    timeBase = at;
    inbox.clear();
    inFlight.clear();
    retriesSpent.clear();
    harvested = 0;
    ++restartCount;
    buildStack();
}

void
ClusterNode::enqueue(const ClusterJob &job, std::uint32_t threads,
                     Seconds arrival)
{
    fatalIf(threads == 0 || threads > cfg.chip.numCores,
            "job ", job.id, " needs ", threads, " threads but node ",
            nodeId, " (", cfg.chip.name, ") has ",
            cfg.chip.numCores, " cores");
    fatalIf(!inbox.empty() && arrival < inbox.back().arrival,
            "job ", job.id, " arrives out of order on node ", nodeId);
    fatalIf(arrival + cfg.timestep * 0.5 < now(),
            "job ", job.id, " arrives in node ", nodeId, "'s past");
    inbox.push_back({job, threads, arrival});
}

void
ClusterNode::stepTo(Seconds t, bool parked)
{
    const Catalog &catalog = Catalog::instance();
    Machine &machine = stack->machine();
    System &system = stack->system();
    const Joule meter_before = machine.energyMeter().energy();
    const Seconds time_before = system.now();
    const Seconds local_t = t - timeBase;

    const auto submitDue = [&] {
        while (!inbox.empty()
               && inbox.front().arrival - timeBase
                   <= system.now() + cfg.timestep * 0.5) {
            const Pending &p = inbox.front();
            const Pid pid = system.submit(
                catalog.byName(p.job.benchmark), p.threads);
            inFlight[pid] = {p.job, p.threads};
            inbox.pop_front();
        }
    };

    if (machine.macroEligible()) {
        // Fast path: run segment-wise between arrival boundaries and
        // let System::runUntil coalesce macro windows.  runUntil
        // stops exactly at the first step whose start time makes the
        // next arrival due — the same boundary the per-step loop's
        // submit check uses — so submissions are bit-identical.  An
        // armed injector bounds every macro window to its next fault
        // (Machine::FaultHook), so strikes land on the same step they
        // would in a per-step replay; a crash ends the span early.
        while (system.now() + cfg.timestep * 0.5 < local_t) {
            submitDue();
            const Seconds segment_end = inbox.empty()
                ? local_t
                : std::min(local_t, inbox.front().arrival - timeBase);
            system.runUntil(segment_end);
            if (segment_end >= local_t || !alive())
                break;
        }
    } else {
        while (alive() && system.now() + cfg.timestep * 0.5 < local_t) {
            submitDue();
            system.step();
        }
    }

    if (parked) {
        // Nothing ran: re-account the span's metered (awake-idle)
        // energy as the standby draw.
        parkedMeterJoules +=
            machine.energyMeter().energy() - meter_before;
        parkedSeconds += system.now() - time_before;
    }
}

std::vector<JobCompletion>
ClusterNode::harvest()
{
    const Catalog &catalog = Catalog::instance();
    System &system = stack->system();
    std::vector<JobCompletion> out;
    const auto &finished = system.finishedProcesses();
    for (; harvested < finished.size(); ++harvested) {
        const Process &proc = finished[harvested];
        const auto it = inFlight.find(proc.pid);
        ECOSCHED_ASSERT(it != inFlight.end(),
                        "finished process without a cluster job");
        const InFlightJob record = it->second;
        inFlight.erase(it);

        // Node-level re-run: a failed job (SDC, process crash, hang,
        // timeout — not a machine crash) goes back through the local
        // run queue under the same cluster identity.
        if (cfg.rerunFailedJobs && isFailure(proc.outcome)
            && proc.outcome != RunOutcome::SystemCrash && alive()
            && retriesSpent[record.job.id] < cfg.maxJobRetries) {
            ++retriesSpent[record.job.id];
            const Pid pid = system.submit(
                catalog.byName(record.job.benchmark),
                record.threads);
            inFlight[pid] = record;
            continue;
        }

        JobCompletion c;
        c.jobId = record.job.id;
        c.arrival = record.job.arrival;
        c.completed = timeBase + proc.completed;
        c.queueDelay = proc.queueDelay();
        c.threads = record.threads;
        c.outcome = proc.outcome;
        out.push_back(c);
        retriesSpent.erase(record.job.id);
    }
    return out;
}

std::size_t
ClusterNode::pendingJobs() const
{
    return inbox.size() + inFlight.size();
}

Seconds
ClusterNode::nextActivity() const
{
    if (!alive())
        return horizonNever; // only restart() revives the node
    if (!stack->machine().macroEligible())
        return now(); // per-step stochastic draws: no horizon
    if (!inFlight.empty())
        return now(); // queued or running work can finish any step
    Seconds next =
        inbox.empty() ? horizonNever : inbox.front().arrival;
    if (injector != nullptr) {
        // The machine-level hook horizon, rebased to cluster time.
        next = std::min(next, timeBase + injector->nextActivity(
                                             stack->system().now()));
    }
    return next;
}

Joule
ClusterNode::energy() const
{
    return priorMeterJoules + stack->machine().energyMeter().energy()
        - parkedMeterJoules + cfg.standbyPower * parkedSeconds;
}

BytesPerSecond
ClusterNode::perThreadBandwidth(const std::string &benchmark) const
{
    const BenchmarkProfile &profile =
        Catalog::instance().byName(benchmark);
    MemoryDemand demand;
    demand.profile = &profile.work;
    demand.coreFrequency = cfg.chip.fMax;
    return stack->machine().memorySystem().threadBandwidth(demand);
}

BytesPerSecond
ClusterNode::bandwidthDemand() const
{
    BytesPerSecond total = 0.0;
    for (const Pending &p : inbox) {
        total += static_cast<double>(p.threads)
            * perThreadBandwidth(p.job.benchmark);
    }
    for (const auto &entry : inFlight) {
        total += static_cast<double>(entry.second.threads)
            * perThreadBandwidth(entry.second.job.benchmark);
    }
    return total;
}

Seconds
ClusterNode::memThrottledTime() const
{
    return priorMemThrottledSeconds
        + stack->machine().memThrottledTime();
}

double
ClusterNode::peakMemThrottle() const
{
    return std::max(priorPeakMemThrottle,
                    stack->machine().peakMemThrottle());
}

double
ClusterNode::utilization() const
{
    const Seconds awake =
        priorUpSeconds + stack->system().now() - parkedSeconds;
    if (awake <= 0.0)
        return 0.0;
    return (priorBusyCoreSeconds + stack->system().busyCoreTime())
        / (static_cast<double>(cfg.chip.numCores) * awake);
}

} // namespace ecosched
