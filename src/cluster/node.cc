#include "cluster/node.hh"

#include <utility>

#include "common/error.hh"
#include "workloads/catalog.hh"

namespace ecosched {

namespace {

/// Static safe-Vmin headroom of one chip sample (see header).
double
computeHeadroomMv(const Machine &machine)
{
    const ChipSpec &spec = machine.spec();
    const VminModel &model = machine.vminModel();
    const double guardband_mv =
        units::toMilliVolts(spec.vNominal)
        - units::toMilliVolts(
              model.tableVmin(spec.fMax, spec.numPmds()));
    double offsets_mv = 0.0;
    for (PmdId p = 0; p < spec.numPmds(); ++p)
        offsets_mv -= units::toMilliVolts(model.pmdOffset(p));
    return guardband_mv
        + offsets_mv / static_cast<double>(spec.numPmds());
}

} // namespace

ClusterNode::ClusterNode(NodeId id, NodeConfig config)
    : nodeId(id), cfg(std::move(config))
{
    cfg.chip.validate();
    fatalIf(cfg.timestep <= 0.0, "node timestep must be positive");
    fatalIf(cfg.standbyPower < 0.0,
            "standby power must be non-negative");

    MachineConfig mcfg;
    mcfg.seed = cfg.machineSeed;
    mcfg.injectFaults = cfg.injectFaults;
    mach = std::make_unique<Machine>(cfg.chip, mcfg);
    sys = std::make_unique<System>(*mach, nullptr, nullptr,
                                   SystemConfig{cfg.timestep, 0.2});
    setup = configurePolicy(*sys, cfg.policy, cfg.daemon);
    headroomMv = computeHeadroomMv(*mach);
}

void
ClusterNode::enqueue(const ClusterJob &job, std::uint32_t threads,
                     Seconds arrival)
{
    fatalIf(threads == 0 || threads > cfg.chip.numCores,
            "job ", job.id, " needs ", threads, " threads but node ",
            nodeId, " (", cfg.chip.name, ") has ",
            cfg.chip.numCores, " cores");
    fatalIf(!inbox.empty() && arrival < inbox.back().arrival,
            "job ", job.id, " arrives out of order on node ", nodeId);
    fatalIf(arrival + cfg.timestep * 0.5 < sys->now(),
            "job ", job.id, " arrives in node ", nodeId, "'s past");
    inbox.push_back({job, threads, arrival});
}

void
ClusterNode::stepTo(Seconds t, bool parked)
{
    const Catalog &catalog = Catalog::instance();
    const Joule meter_before = mach->energyMeter().energy();
    const Seconds time_before = sys->now();

    if (mach->macroEligible()) {
        // Fast path (no fault injection, so the node cannot halt
        // mid-span): run segment-wise between arrival boundaries and
        // let System::runUntil coalesce macro windows.  runUntil
        // stops exactly at the first step whose start time makes the
        // next arrival due — the same boundary the per-step loop's
        // submit check uses — so submissions are bit-identical.
        while (sys->now() + cfg.timestep * 0.5 < t) {
            while (!inbox.empty()
                   && inbox.front().arrival
                       <= sys->now() + cfg.timestep * 0.5) {
                const Pending &p = inbox.front();
                const Pid pid = sys->submit(
                    catalog.byName(p.job.benchmark), p.threads);
                inFlight[pid] = {p.job.id, p.job.arrival, p.threads};
                inbox.pop_front();
            }
            const Seconds segment_end = inbox.empty()
                ? t : std::min(t, inbox.front().arrival);
            sys->runUntil(segment_end);
            if (segment_end >= t)
                break;
        }
    } else {
        while (alive() && sys->now() + cfg.timestep * 0.5 < t) {
            while (!inbox.empty()
                   && inbox.front().arrival
                       <= sys->now() + cfg.timestep * 0.5) {
                const Pending &p = inbox.front();
                const Pid pid = sys->submit(
                    catalog.byName(p.job.benchmark), p.threads);
                inFlight[pid] = {p.job.id, p.job.arrival, p.threads};
                inbox.pop_front();
            }
            sys->step();
        }
    }

    if (parked) {
        // Nothing ran: re-account the span's metered (awake-idle)
        // energy as the standby draw.
        parkedMeterJoules +=
            mach->energyMeter().energy() - meter_before;
        parkedSeconds += sys->now() - time_before;
    }
}

std::vector<JobCompletion>
ClusterNode::harvest()
{
    std::vector<JobCompletion> out;
    const auto &finished = sys->finishedProcesses();
    for (; harvested < finished.size(); ++harvested) {
        const Process &proc = finished[harvested];
        const auto it = inFlight.find(proc.pid);
        ECOSCHED_ASSERT(it != inFlight.end(),
                        "finished process without a cluster job");
        const auto &[job_id, arrival, threads] = it->second;
        JobCompletion c;
        c.jobId = job_id;
        c.arrival = arrival;
        c.completed = proc.completed;
        c.queueDelay = proc.queueDelay();
        c.threads = threads;
        c.outcome = proc.outcome;
        out.push_back(c);
        inFlight.erase(it);
    }
    return out;
}

std::size_t
ClusterNode::pendingJobs() const
{
    return inbox.size() + inFlight.size();
}

Joule
ClusterNode::energy() const
{
    return mach->energyMeter().energy() - parkedMeterJoules
        + cfg.standbyPower * parkedSeconds;
}

double
ClusterNode::utilization() const
{
    const Seconds awake = sys->now() - parkedSeconds;
    if (awake <= 0.0)
        return 0.0;
    return sys->busyCoreTime()
        / (static_cast<double>(cfg.chip.numCores) * awake);
}

} // namespace ecosched
