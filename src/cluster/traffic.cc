#include "cluster/traffic.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hh"
#include "common/rng.hh"

namespace ecosched {

namespace {

/// The paper's three parallel threading configs (§VI.B): max, half
/// and quarter of the cores.
constexpr std::uint32_t sizeDivisors[] = {1, 2, 4};

} // namespace

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Diurnal: return "diurnal";
    }
    return "?";
}

const char *
trafficMixName(TrafficMix mix)
{
    switch (mix) {
      case TrafficMix::FullPool:    return "full_pool";
      case TrafficMix::Colocation:  return "colocation";
      case TrafficMix::MemoryFlood: return "memory_flood";
    }
    return "?";
}

std::uint32_t
threadsForJob(const ClusterJob &job, std::uint32_t node_cores)
{
    fatalIf(node_cores == 0, "node must have at least one core");
    if (!job.parallel)
        return 1;
    fatalIf(job.sizeDivisor == 0,
            "parallel job ", job.id, " has no size divisor");
    return std::max<std::uint32_t>(1, node_cores / job.sizeDivisor);
}

TrafficModel::TrafficModel(TrafficConfig config)
    : cfg(std::move(config)),
      memory(MemoryParams::forChipName(cfg.chipName))
{
    fatalIf(cfg.duration <= 0.0, "traffic duration must be positive");
    fatalIf(cfg.arrivalsPerSecond <= 0.0,
            "arrival rate must be positive");
    fatalIf(cfg.diurnalAmplitude < 0.0 || cfg.diurnalAmplitude >= 1.0,
            "diurnal amplitude must be in [0, 1)");
    fatalIf(cfg.referenceFrequency <= 0.0,
            "referenceFrequency must be positive");
    if (cfg.diurnalPeriod <= 0.0)
        cfg.diurnalPeriod = cfg.duration;
}

double
TrafficModel::rateAt(Seconds t) const
{
    if (cfg.process == ArrivalProcess::Poisson)
        return cfg.arrivalsPerSecond;
    // Day curve: trough at t = 0, peak at half period, mean rate
    // preserved over a whole period.
    constexpr double pi = 3.14159265358979323846;
    const double phase = 2.0 * pi * t / cfg.diurnalPeriod;
    return cfg.arrivalsPerSecond
        * (1.0 - cfg.diurnalAmplitude * std::cos(phase));
}

std::vector<const BenchmarkProfile *>
TrafficModel::pool() const
{
    const Catalog &catalog = Catalog::instance();
    switch (cfg.mix) {
      case TrafficMix::FullPool:
        return catalog.generatorPool();
      case TrafficMix::Colocation:
        // namd, EP, milc, CG, FT: the Figure 11/12 spectrum —
        // latency-critical compute at one end, bandwidth-hungry
        // batch at the other.
        return catalog.figureBenchmarks();
      case TrafficMix::MemoryFlood:
        return {&catalog.byName("milc"), &catalog.byName("CG"),
                &catalog.byName("FT")};
    }
    return catalog.generatorPool();
}

std::vector<ClusterJob>
TrafficModel::generate() const
{
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + 29);
    const auto pool = this->pool();
    ECOSCHED_ASSERT(!pool.empty(), "generator pool is empty");

    // Thinning: draw candidate arrivals at the peak rate, accept each
    // with probability rate(t) / peak — an exact nonhomogeneous
    // Poisson sampler that stays deterministic under the seed.
    const double peak =
        cfg.arrivalsPerSecond * (1.0 + cfg.diurnalAmplitude);

    std::vector<ClusterJob> jobs;
    Seconds t = 0.0;
    while (true) {
        t += rng.exponential(1.0 / peak);
        if (t >= cfg.duration)
            break;
        if (!rng.bernoulli(rateAt(t) / peak))
            continue;

        const BenchmarkProfile &profile =
            *pool[rng.uniformInt(0, pool.size() - 1)];
        ClusterJob job;
        job.id = jobs.size() + 1;
        job.arrival = t;
        job.benchmark = profile.name;
        job.parallel = profile.parallel;
        if (profile.parallel)
            job.sizeDivisor = sizeDivisors[rng.uniformInt(0, 2)];
        jobs.push_back(std::move(job));
    }
    return jobs;
}

Seconds
TrafficModel::estimateRuntime(const BenchmarkProfile &profile,
                              std::uint32_t threads) const
{
    const Instructions per_thread = profile.perThreadWork(threads);
    const Seconds t_instr = memory.timePerInstruction(
        profile.work, cfg.referenceFrequency, 1.0);
    return static_cast<double>(per_thread) * t_instr;
}

double
TrafficModel::meanCoreSecondsPerJob(
    std::uint32_t reference_cores) const
{
    fatalIf(reference_cores == 0,
            "reference core count must be positive");
    const auto pool = this->pool();
    double total = 0.0;
    for (const BenchmarkProfile *profile : pool) {
        if (!profile->parallel) {
            total += estimateRuntime(*profile, 1);
            continue;
        }
        // Average over the three equally likely size classes.
        double per_profile = 0.0;
        for (std::uint32_t div : sizeDivisors) {
            const std::uint32_t threads =
                std::max<std::uint32_t>(1, reference_cores / div);
            per_profile += static_cast<double>(threads)
                * estimateRuntime(*profile, threads);
        }
        total += per_profile / 3.0;
    }
    return total / static_cast<double>(pool.size());
}

} // namespace ecosched
