/**
 * @file
 * One node of the fleet: a full simulated machine (Machine + System
 * + optional Daemon, exactly the single-node stack the paper
 * evaluates) plus the cluster-facing plumbing — a dispatch inbox,
 * incremental time-stepping, job completion harvesting and per-node
 * accounting.
 *
 * Nodes are completely independent once jobs are enqueued: stepTo()
 * touches only this node's state, which is what lets the cluster
 * simulation fan nodes across the experiment ThreadPool while
 * staying bit-identical for any worker count.
 *
 * Idle nodes can be *parked* by the fleet manager (suspend-to-idle):
 * a parked epoch still advances virtual time — the machine state is
 * frozen anyway since nothing runs — but its energy is re-accounted
 * as a small standby draw instead of the awake idle power.  This is
 * the consolidation payoff the energy-aware dispatcher exploits.
 */

#ifndef ECOSCHED_CLUSTER_NODE_HH
#define ECOSCHED_CLUSTER_NODE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cluster/traffic.hh"
#include "core/sim_stack.hh"
#include "inject/fault_plan.hh"
#include "inject/injector.hh"
#include "os/system.hh"
#include "sim/machine.hh"

namespace ecosched {

/// Fleet node identifier (0-based index into the fleet).
using NodeId = std::uint32_t;

/// Per-node construction knobs.
struct NodeConfig
{
    ChipSpec chip;                 ///< platform (required)
    /// Single-node policy each node runs locally (the paper's four
    /// configurations; Optimal = the full daemon).
    PolicyKind policy = PolicyKind::Optimal;
    /// Chip-sample identity: drives the per-chip Vmin variation
    /// (static PMD offsets) and all machine-internal randomness.
    std::uint64_t machineSeed = 1;
    Seconds timestep = 0.01;       ///< node simulation step
    bool injectFaults = false;     ///< undervolting fault injection
    DaemonConfig daemon;           ///< base daemon knobs
    /// Standby power drawn while parked (suspend-to-idle).
    Watt standbyPower = 0.5;

    /// Machine-level faults to arm on this node (NodeCrash entries
    /// are consumed by the cluster layer, not here).  Event times are
    /// cluster times; a restarted node re-arms the remaining tail.
    InjectionPlan injection;
    /// Re-submit jobs that complete with a failure outcome (SDC &
    /// friends; never system crashes) on this node, up to
    /// maxJobRetries attempts per job.  The daemon-level re-run is
    /// always disabled on cluster nodes — the node owns the retry so
    /// the job keeps its cluster identity.
    bool rerunFailedJobs = false;
    std::uint32_t maxJobRetries = 1;
};

/// One harvested job completion.
struct JobCompletion
{
    std::uint64_t jobId = 0;
    Seconds arrival = 0.0;    ///< cluster arrival time
    Seconds completed = 0.0;  ///< node completion time
    Seconds queueDelay = 0.0; ///< node-local run-queue wait
    std::uint32_t threads = 0;///< cores the job occupied
    RunOutcome outcome = RunOutcome::Ok;

    /// End-to-end sojourn time (dispatch latency the SLO sees).
    Seconds latency() const { return completed - arrival; }
};

/**
 * A fleet node.  Owns its machine/OS/daemon stack; noncopyable.
 */
class ClusterNode
{
  public:
    ClusterNode(NodeId id, NodeConfig config);

    /**
     * Stamp-construct: build the node's stack from @p prototype (a
     * pristine same-shape SimStack; see SimStack's stamp ctor)
     * instead of re-deriving the calibrated models.  Bit-identical
     * to the plain constructor — large fleets stamp one prototype
     * per distinct (chip, policy, knobs) shape.
     */
    ClusterNode(NodeId id, NodeConfig config,
                const SimStack &prototype);

    ~ClusterNode();

    ClusterNode(const ClusterNode &) = delete;
    ClusterNode &operator=(const ClusterNode &) = delete;

    NodeId id() const { return nodeId; }
    const NodeConfig &config() const { return cfg; }

    /**
     * The SimStackConfig a node built from @p config runs on (node-
     * level normalization applied).  Fleet construction groups nodes
     * by its shapeKey() and stamps each group from one prototype.
     */
    static SimStackConfig stackConfig(NodeConfig config);
    const ChipSpec &spec() const { return cfg.chip; }
    const Machine &machine() const { return stack->machine(); }
    const System &system() const { return stack->system(); }
    /// Node clock in cluster time (restarts rebase the local clock).
    Seconds now() const { return timeBase + stack->system().now(); }

    /// Whether the node is still up (fault injection can crash it).
    bool alive() const { return !stack->machine().halted(); }

    /// Times the node was brought back up after a crash.
    std::uint32_t restarts() const { return restartCount; }

    /**
     * Static safe-Vmin headroom of this chip sample, in millivolts:
     * how far below nominal the conservative all-PMD Table II value
     * sits (the guardband the daemon reclaims), plus the sample's
     * mean static PMD robustness (deeper offsets = more robust
     * silicon).  The energy-aware dispatcher packs the deepest nodes
     * first.
     */
    double vminHeadroomMv() const { return headroomMv; }

    /**
     * Accept a dispatched job.  @p arrival is the node-local issue
     * time (the cluster arrival plus any wake-up delay) and must be
     * non-decreasing across calls and not in this node's past.
     */
    void enqueue(const ClusterJob &job, std::uint32_t threads,
                 Seconds arrival);

    /**
     * Advance the node to cluster time @p t.  @p parked marks the
     * whole span as suspend-to-idle: virtual time still advances (the
     * node is empty, so no software state changes) but the span's
     * metered energy is replaced by the standby draw.  Stops early if
     * a fault-injection system crash halts the machine.
     */
    void stepTo(Seconds t, bool parked = false);

    /// Completions since the previous harvest, in completion order.
    std::vector<JobCompletion> harvest();

    /**
     * Earliest cluster time at which this node can next produce a
     * cluster-visible event — a job completion, a fault delivery or
     * a machine crash.  Obeys the DESIGN.md §13 horizon contract:
     * returns now() whenever the node is busy (work in flight can
     * finish on any step) or per-step stochastic behavior is armed,
     * the inbox head / next injector event otherwise, and
     * horizonNever for a crashed node (only the cluster layer's
     * boundary restart can revive it).  The fleet frontier keys its
     * per-shard event queue on this to classify nodes into full vs
     * lean epoch processing.
     */
    Seconds nextActivity() const;

    /// Jobs accepted but not yet finished (inbox + queued + running).
    std::size_t pendingJobs() const;

    /**
     * Node energy with parked spans re-accounted at standby power.
     * For a crashed node, the total up to the halt.
     */
    Joule energy() const;

    /// Mean fraction of cores busy over the node's awake lifetime.
    double utilization() const;

    /// Time spent parked so far.
    Seconds parkedTime() const { return parkedSeconds; }

    /**
     * Estimated aggregate DRAM bandwidth demand of the node's
     * outstanding work [B/s]: each inbox and in-flight thread's
     * solo-at-fMax bandwidth on this chip's calibrated memory
     * system.  A cheap epoch-boundary signal for the bandwidth-aware
     * dispatcher — it deliberately ignores contention and throttling,
     * which depend on the very placement the dispatcher is deciding.
     */
    BytesPerSecond bandwidthDemand() const;

    /// The chip's DRAM bandwidth reservation ceiling (0 = none).
    BytesPerSecond bandwidthCeiling() const
    {
        return cfg.chip.membw.ceiling;
    }

    /// Estimated solo-at-fMax bandwidth one thread of @p benchmark
    /// would demand on this node [B/s].
    BytesPerSecond perThreadBandwidth(
        const std::string &benchmark) const;

    /// Cumulative thread-seconds spent bandwidth-throttled (the
    /// reservation solver held a thread below its demand), carried
    /// across restarts.
    Seconds memThrottledTime() const;

    /// Worst per-thread throttle factor seen so far (>= 1), carried
    /// across restarts.
    double peakMemThrottle() const;

    /**
     * Crash the node immediately (cluster-level fault injection):
     * the machine halts, every in-flight and inbox job strands, and
     * stepTo() becomes a no-op until restart().  Idempotent.
     */
    void forceCrash();

    /**
     * Bring a crashed node back up at cluster time @p at >= now():
     * a fresh machine/OS/daemon stack on the same chip sample
     * (machineSeed is identity, not history), stranded jobs
     * discarded, energy/busy-time accounting carried over, and the
     * injection plan's remaining tail re-armed.  The downtime span
     * [crash, at) draws no energy.
     */
    void restart(Seconds at);

  private:
    struct Pending
    {
        ClusterJob job;
        std::uint32_t threads;
        Seconds arrival; ///< node-local issue time (cluster clock)
    };

    /// In-flight record: the cluster job and its core occupancy.
    struct InFlightJob
    {
        ClusterJob job;
        std::uint32_t threads = 0;
    };

    /// (Re)build the machine/OS/daemon stack — stamped from
    /// @p prototype when given, a pristine rewind of the owned
    /// SimStack after the first construction — and re-arm the
    /// injection-plan tail from timeBase onward.
    void buildStack(const SimStack *prototype = nullptr);

  public:
    /**
     * Deep copy of the node's full state: the simulation stack, the
     * injector's delivery position, the dispatch inbox, in-flight
     * and retry bookkeeping, and all cross-restart accounting.  The
     * job payloads reference only value types, so a restored node is
     * fully independent of the captured one.
     */
    struct Snapshot
    {
        SimSnapshot stack;
        bool hasInjector = false;
        MachineInjector::Snapshot injector; ///< valid when hasInjector
        std::deque<Pending> inbox;
        std::map<Pid, InFlightJob> inFlight;
        std::size_t harvested = 0;
        std::map<std::uint64_t, std::uint32_t> retriesSpent;
        Seconds parkedSeconds = 0.0;
        Joule parkedMeterJoules = 0.0;
        Seconds timeBase = 0.0;
        Joule priorMeterJoules = 0.0;
        Seconds priorBusyCoreSeconds = 0.0;
        Seconds priorUpSeconds = 0.0;
        Seconds priorMemThrottledSeconds = 0.0;
        double priorPeakMemThrottle = 1.0;
        std::uint32_t restartCount = 0;
    };

    /// Deep-copy the node's full state.
    Snapshot capture() const;

    /**
     * Rewind to @p snapshot.  Only valid for a node built with the
     * same NodeConfig (same chip sample, policy and injection plan).
     * The injector is reconstructed at the snapshot's time base and
     * rewound to its captured delivery position, so faults keep
     * landing exactly where the captured node would place them.
     */
    void restore(const Snapshot &snapshot);

    /// Fork: a fresh node with the same id/config carrying this
    /// node's current state.
    std::unique_ptr<ClusterNode> clone() const;

  private:
    NodeId nodeId;
    NodeConfig cfg;
    std::unique_ptr<SimStack> stack;
    std::unique_ptr<MachineInjector> injector;
    double headroomMv = 0.0;

    std::deque<Pending> inbox; ///< dispatched, not yet submitted
    std::map<Pid, InFlightJob> inFlight;
    std::size_t harvested = 0; ///< finishedProcesses() consumed
    /// Re-runs already spent per job id (node-level retry).
    std::map<std::uint64_t, std::uint32_t> retriesSpent;

    Seconds parkedSeconds = 0.0;
    Joule parkedMeterJoules = 0.0;

    /// Cluster time of the current stack's local t = 0.
    Seconds timeBase = 0.0;
    /// Accounting carried across restarts.
    Joule priorMeterJoules = 0.0;
    Seconds priorBusyCoreSeconds = 0.0;
    Seconds priorUpSeconds = 0.0;
    Seconds priorMemThrottledSeconds = 0.0;
    double priorPeakMemThrottle = 1.0;
    std::uint32_t restartCount = 0;
};

} // namespace ecosched

#endif // ECOSCHED_CLUSTER_NODE_HH
