#include "cluster/cluster.hh"

#include <algorithm>
#include <exception>
#include <ostream>
#include <utility>

#include "common/error.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "exp/engine.hh"
#include "exp/thread_pool.hh"
#include "vmin/failure_model.hh"

namespace ecosched {

ClusterSim::ClusterSim(ClusterConfig config)
    : cfg(std::move(config)), workerCount(resolveJobs(cfg.jobs))
{
    fatalIf(cfg.nodes.empty(), "cluster needs at least one node");
    fatalIf(cfg.dispatchInterval <= 0.0,
            "dispatch interval must be positive");
    fatalIf(cfg.drainBoundFactor < 1.0,
            "drain bound factor must be at least 1");
    fatalIf(cfg.sloLatency <= 0.0, "SLO latency must be positive");
    fatalIf(cfg.wakeDelay < 0.0, "wake delay must be non-negative");
    fatalIf(cfg.latencyHistogramMax <= 0.0
                || cfg.latencyHistogramBins == 0,
            "latency histogram needs a positive range and bins");

    fleet.reserve(cfg.nodes.size());
    for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
        NodeConfig node_cfg = cfg.nodes[i];
        // Route the fleet plan's machine-level events to their
        // target node (NodeCrash stays at this layer).
        const InjectionPlan mine = cfg.injection.eventsForNode(
            static_cast<NodeId>(i));
        if (!mine.empty()) {
            std::vector<FaultEvent> merged =
                node_cfg.injection.events();
            for (const FaultEvent &ev : mine.events()) {
                if (ev.kind != FaultKind::NodeCrash)
                    merged.push_back(ev);
            }
            node_cfg.injection =
                InjectionPlan::scripted(std::move(merged));
        }
        fleet.push_back(std::make_unique<ClusterNode>(
            static_cast<NodeId>(i), std::move(node_cfg)));
    }
}

ClusterSim::~ClusterSim() = default;

ClusterResult
ClusterSim::run()
{
    fatalIf(consumed, "ClusterSim::run() is single-use");
    consumed = true;

    const std::vector<ClusterJob> arrivals =
        TrafficModel(cfg.traffic).generate();

    ClusterResult res;
    res.dispatch = cfg.dispatch;
    res.numNodes = fleet.size();
    res.jobsSubmitted = arrivals.size();
    res.sloLatency = cfg.sloLatency;

    Dispatcher dispatcher(cfg.dispatch);
    Histogram latency(0.0, cfg.latencyHistogramMax,
                      cfg.latencyHistogramBins);
    RunningStats latencyStats;

    const std::size_t n = fleet.size();
    std::vector<std::uint32_t> outstanding(n, 0);
    // Every node starts empty, hence parked when idle-sleep is on.
    std::vector<char> suspended(n, cfg.idleSleep ? 1 : 0);
    std::vector<char> crashCounted(n, 0);
    std::vector<Seconds> lastIssue(n, 0.0);
    std::vector<std::uint64_t> nodeCompleted(n, 0);

    // One persistent pool for all epochs; serial when --jobs 1.
    std::unique_ptr<ThreadPool> pool;
    if (workerCount > 1 && n > 1)
        pool = std::make_unique<ThreadPool>(
            std::min<unsigned>(workerCount,
                               static_cast<unsigned>(n)));

    const Seconds bound =
        cfg.traffic.duration * cfg.drainBoundFactor;
    std::size_t nextArrival = 0;
    Seconds t = 0.0;

    // Scheduled NodeCrash events (the plan is time-sorted) and the
    // per-node restart deadline (negative: not scheduled).
    std::vector<FaultEvent> crashes;
    for (const FaultEvent &ev : cfg.injection.events()) {
        if (ev.kind == FaultKind::NodeCrash
            && ev.node < static_cast<NodeId>(n)) {
            crashes.push_back(ev);
        }
    }
    std::size_t nextCrash = 0;
    std::vector<Seconds> restartAt(n, -1.0);

    const auto settled = [&] {
        return res.jobsCompleted + res.jobsDropped + res.jobsLost
            == res.jobsSubmitted;
    };

    while (nextArrival < arrivals.size() || !settled()) {
        fatalIf(t >= bound, "cluster failed to drain within ",
                formatDouble(bound, 1), " s (offered load too high "
                "for the fleet, or every node crashed)");
        const Seconds epochEnd = t + cfg.dispatchInterval;

        // --- Phase 0 (serial): scheduled node restarts, then due
        // NodeCrash events.  Both land on epoch boundaries, so they
        // are independent of the node-stepping worker count.
        for (std::size_t i = 0; i < n; ++i) {
            if (restartAt[i] < 0.0 || restartAt[i] > t
                || fleet[i]->alive()) {
                continue;
            }
            fleet[i]->restart(t);
            restartAt[i] = -1.0;
            ++res.nodeRestarts;
            crashCounted[i] = 0;
            outstanding[i] = 0;
            lastIssue[i] = std::max(lastIssue[i], t);
            // A restarted node comes back empty, hence parked.
            suspended[i] = cfg.idleSleep ? 1 : 0;
        }
        while (nextCrash < crashes.size()
               && crashes[nextCrash].time <= t) {
            const FaultEvent &ev = crashes[nextCrash];
            ++nextCrash;
            if (!fleet[ev.node]->alive())
                continue; // already down
            fleet[ev.node]->forceCrash();
            const Seconds down = ev.duration >= 0.0
                ? ev.duration : cfg.nodeRestartDelay;
            restartAt[ev.node] =
                down >= 0.0 ? ev.time + down : -1.0;
        }

        // --- Phase 1 (serial): route this epoch's arrivals using
        // the epoch-boundary fleet view.
        std::vector<NodeView> views(n);
        for (std::size_t i = 0; i < n; ++i) {
            views[i].alive = fleet[i]->alive();
            views[i].cores = fleet[i]->spec().numCores;
            views[i].outstandingThreads = outstanding[i];
            views[i].headroomMv = fleet[i]->vminHeadroomMv();
        }
        while (nextArrival < arrivals.size()
               && arrivals[nextArrival].arrival < epochEnd) {
            const ClusterJob &job = arrivals[nextArrival];
            ++nextArrival;
            const std::size_t pick = dispatcher.choose(views, job);
            if (pick == Dispatcher::npos) {
                ++res.jobsDropped; // whole fleet down
                continue;
            }
            const std::uint32_t threads =
                threadsForJob(job, views[pick].cores);
            Seconds issue = job.arrival;
            if (suspended[pick]) {
                issue += cfg.wakeDelay; // pay the wake-up
                suspended[pick] = 0;
            }
            issue = std::max(issue, lastIssue[pick]);
            lastIssue[pick] = issue;
            fleet[pick]->enqueue(job, threads, issue);
            outstanding[pick] += threads;
            views[pick].outstandingThreads = outstanding[pick];
        }

        // --- Phase 2 (parallel): step every node to the epoch end.
        // Nodes share no state; per-node errors land in per-node
        // slots and are rethrown in node order below, so the result
        // is identical for any worker count.
        std::vector<std::exception_ptr> errors(n);
        const auto stepNode = [&](std::size_t i) {
            try {
                fleet[i]->stepTo(epochEnd, suspended[i] != 0);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        };
        if (pool) {
            for (std::size_t i = 0; i < n; ++i)
                pool->submit([&, i] { stepNode(i); });
            pool->wait();
        } else {
            for (std::size_t i = 0; i < n; ++i)
                stepNode(i);
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (errors[i])
                std::rethrow_exception(errors[i]);
        }

        // --- Phase 3 (serial, node order): harvest completions into
        // the cluster-wide accounting.
        for (std::size_t i = 0; i < n; ++i) {
            for (const JobCompletion &c : fleet[i]->harvest()) {
                ECOSCHED_ASSERT(outstanding[i] >= c.threads,
                                "outstanding-thread underflow");
                outstanding[i] -= c.threads;
                ++res.jobsCompleted;
                ++nodeCompleted[i];
                const Seconds lat = c.latency();
                latency.add(lat);
                latencyStats.add(lat);
                if (lat > cfg.sloLatency)
                    ++res.sloViolations;
                if (isFailure(c.outcome))
                    ++res.jobsFailed;
            }
            if (!fleet[i]->alive() && !crashCounted[i]) {
                // Fault injection took the node down: its remaining
                // jobs are stranded.
                crashCounted[i] = 1;
                ++res.nodeCrashes;
                res.jobsLost += fleet[i]->pendingJobs();
                outstanding[i] = 0;
            }
            if (cfg.idleSleep && outstanding[i] == 0
                && fleet[i]->alive()) {
                suspended[i] = 1;
            }
        }

        t = epochEnd;
    }

    res.makespan = t;
    for (std::size_t i = 0; i < n; ++i) {
        NodeSummary s;
        s.node = fleet[i]->id();
        s.chip = fleet[i]->spec().name;
        s.headroomMv = fleet[i]->vminHeadroomMv();
        s.jobsCompleted = nodeCompleted[i];
        s.energy = fleet[i]->energy();
        s.utilization = fleet[i]->utilization();
        s.parkedTime = fleet[i]->parkedTime();
        s.crashed = !fleet[i]->alive();
        s.restarts = fleet[i]->restarts();
        res.totalEnergy += s.energy;
        res.nodes.push_back(std::move(s));
    }
    if (res.makespan > 0.0)
        res.averagePower = res.totalEnergy / res.makespan;
    if (latencyStats.count() > 0) {
        res.latencyMean = latencyStats.mean();
        res.latencyMax = latencyStats.max();
        // In-bin interpolation can overshoot the true sample by up
        // to a bin width; clamp to the observed extremum.
        res.latencyP50 =
            std::min(latency.quantile(0.50), res.latencyMax);
        res.latencyP95 =
            std::min(latency.quantile(0.95), res.latencyMax);
        res.latencyP99 =
            std::min(latency.quantile(0.99), res.latencyMax);
    }
    return res;
}

void
ClusterResult::printSummary(std::ostream &os) const
{
    TextTable summary({"metric", "value"});
    summary.addRow({"dispatch policy", dispatchPolicyName(dispatch)});
    summary.addRow({"nodes", std::to_string(numNodes)});
    summary.addRow({"jobs submitted", std::to_string(jobsSubmitted)});
    summary.addRow({"jobs completed", std::to_string(jobsCompleted)});
    summary.addRow({"jobs lost", std::to_string(jobsLost)});
    summary.addRow({"jobs dropped", std::to_string(jobsDropped)});
    summary.addRow({"failed runs", std::to_string(jobsFailed)});
    summary.addRow({"node crashes", std::to_string(nodeCrashes)});
    summary.addRow({"node restarts", std::to_string(nodeRestarts)});
    summary.addRow({"makespan [s]", formatDouble(makespan, 1)});
    summary.addRow({"total energy [J]", formatDouble(totalEnergy, 1)});
    summary.addRow(
        {"average power [W]", formatDouble(averagePower, 2)});
    summary.addRow(
        {"energy per job [J]", formatDouble(energyPerJob(), 1)});
    summary.addRow({"latency mean [s]", formatDouble(latencyMean, 2)});
    summary.addRow({"latency p50 [s]", formatDouble(latencyP50, 2)});
    summary.addRow({"latency p95 [s]", formatDouble(latencyP95, 2)});
    summary.addRow({"latency p99 [s]", formatDouble(latencyP99, 2)});
    summary.addRow({"latency max [s]", formatDouble(latencyMax, 2)});
    summary.addRow({"SLO latency [s]", formatDouble(sloLatency, 1)});
    summary.addRow(
        {"SLO violations", std::to_string(sloViolations)});
    summary.print(os);

    os << "\n";
    TextTable perNode({"node", "chip", "headroom [mV]", "jobs",
                       "energy [J]", "util", "parked [s]", "state"});
    for (const NodeSummary &s : nodes) {
        perNode.addRow({std::to_string(s.node), s.chip,
                        formatDouble(s.headroomMv, 1),
                        std::to_string(s.jobsCompleted),
                        formatDouble(s.energy, 1),
                        formatPercent(s.utilization),
                        formatDouble(s.parkedTime, 1),
                        s.crashed
                            ? "crashed"
                            : (s.restarts > 0 ? "recovered" : "up")});
    }
    perNode.print(os);
}

std::vector<NodeConfig>
uniformFleet(const ChipSpec &chip, std::size_t n,
             std::uint64_t seed, PolicyKind policy)
{
    fatalIf(n == 0, "fleet needs at least one node");
    const Rng root(seed);
    std::vector<NodeConfig> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
        nodes[i].chip = chip;
        nodes[i].policy = policy;
        // Each node is a distinct chip sample: per-chip Vmin
        // variation comes from the machine seed.
        nodes[i].machineSeed = root.fork(i).next();
    }
    return nodes;
}

std::vector<NodeConfig>
mixedFleet(std::size_t n, std::uint64_t seed, PolicyKind policy)
{
    fatalIf(n == 0, "fleet needs at least one node");
    const ChipSpec xg3 = xGene3();
    const ChipSpec xg2 = xGene2();
    const Rng root(seed);
    std::vector<NodeConfig> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
        nodes[i].chip = (i % 2 == 0) ? xg3 : xg2;
        nodes[i].policy = policy;
        nodes[i].machineSeed = root.fork(i).next();
    }
    return nodes;
}

} // namespace ecosched
