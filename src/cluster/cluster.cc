#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <exception>
#include <map>
#include <ostream>
#include <tuple>
#include <utility>

#include "common/error.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "exp/engine.hh"
#include "exp/thread_pool.hh"
#include "sim/event_queue.hh"
#include "vmin/failure_model.hh"

namespace ecosched {

namespace {

/// Contiguous node range [begin, end) owned by one shard.
struct ShardRange
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

std::vector<ShardRange>
makeShards(std::size_t n, std::size_t count)
{
    std::vector<ShardRange> out;
    out.reserve(count);
    for (std::size_t s = 0; s < count; ++s)
        out.push_back({n * s / count, n * (s + 1) / count});
    return out;
}

} // namespace

/// Live state of one cluster run (start() .. finish()).
struct ClusterSim::Run
{
    Run(const ClusterConfig &cfg, unsigned workers,
        std::size_t shard_count, std::size_t n)
        : arrivals(TrafficModel(cfg.traffic).generate()),
          dispatcher(cfg.dispatch), autoscaler(cfg.autoscale),
          latency(0.0, cfg.latencyHistogramMax,
                  cfg.latencyHistogramBins),
          outstanding(n, 0),
          // Every node starts empty, hence parked when idle-sleep
          // is on.
          suspended(n, cfg.idleSleep ? char{1} : char{0}),
          crashCounted(n, 0), schedulable(n, 1), lastIssue(n, 0.0),
          restartAt(n, -1.0), nodeCompleted(n, 0), nodeNext(n, 0.0),
          nodeDirty(n, 1), fullMark(n, 0),
          bound(cfg.traffic.duration * cfg.drainBoundFactor),
          shards(makeShards(n, shard_count)),
          frontier(shards.size()), eventMode(eventPathEnabled())
    {
        res.dispatch = cfg.dispatch;
        res.numNodes = n;
        res.jobsSubmitted = arrivals.size();
        res.sloLatency = cfg.sloLatency;

        // Scheduled NodeCrash events, rack-scoped ones expanded to
        // their member nodes, re-sorted by (time, node).
        for (const FaultEvent &ev : cfg.injection.events()) {
            if (ev.kind != FaultKind::NodeCrash)
                continue;
            if (ev.rackScoped) {
                if (cfg.nodesPerRack == 0)
                    continue; // no rack layout: dropped, like
                              // eventsForNode()
                const std::size_t lo =
                    static_cast<std::size_t>(ev.node)
                    * cfg.nodesPerRack;
                const std::size_t hi =
                    std::min<std::size_t>(lo + cfg.nodesPerRack, n);
                for (std::size_t i = lo; i < hi; ++i) {
                    FaultEvent mine = ev;
                    mine.node = static_cast<NodeId>(i);
                    mine.rackScoped = false;
                    crashes.push_back(mine);
                }
            } else if (ev.node < n) {
                crashes.push_back(ev);
            }
        }
        std::stable_sort(crashes.begin(), crashes.end(),
                         [](const FaultEvent &a, const FaultEvent &b) {
                             return std::tie(a.time, a.node)
                                 < std::tie(b.time, b.node);
                         });

        evalEveryEpochs = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(cfg.autoscale.evalInterval
                             / cfg.dispatchInterval)));

        // One persistent pool for all windows; serial when --jobs 1
        // or a single shard.
        if (workers > 1 && shards.size() > 1)
            pool = std::make_unique<ThreadPool>(
                std::min<unsigned>(
                    workers, static_cast<unsigned>(shards.size())));
    }

    bool settled() const
    {
        return res.jobsCompleted + res.jobsDropped + res.jobsLost
            == res.jobsSubmitted;
    }

    std::vector<ClusterJob> arrivals;
    std::vector<FaultEvent> crashes; ///< expanded, (time, node)-sorted
    Dispatcher dispatcher;
    SloAutoscaler autoscaler;
    Histogram latency;
    RunningStats latencyStats;
    ClusterResult res;

    std::vector<std::uint32_t> outstanding;
    std::vector<char> suspended;
    std::vector<char> crashCounted;
    /// Autoscaler gate: 1 while the dispatcher may route new work to
    /// the node.
    std::vector<char> schedulable;
    std::vector<Seconds> lastIssue;
    std::vector<Seconds> restartAt; ///< negative: not scheduled
    std::vector<std::uint64_t> nodeCompleted;

    // --- per-shard next-event frontier (event path) ----------------
    // Flat structure-of-arrays hot state: one fleet epoch is a
    // batched sweep over these vectors, and the per-shard event
    // queues tell the sweep which nodes need the full harvesting
    // path this window.  All of it is *derived* state — rebuilt from
    // the nodes whenever a dirty flag is set — so snapshots never
    // carry it; restore() just marks everything dirty.
    std::vector<Seconds> nodeNext; ///< last keyed horizon, per node
    std::vector<char> nodeDirty;   ///< horizon may have moved
    std::vector<char> fullMark;    ///< per-window scratch (due set)

    std::size_t nextArrival = 0;
    std::size_t nextCrash = 0;
    Seconds t = 0.0;
    std::size_t epochIndex = 0;
    Seconds bound = 0.0;
    std::size_t evalEveryEpochs = 1;

    std::vector<ShardRange> shards;
    /// One lazy-deletion event queue per shard, keyed on
    /// ClusterNode::nextActivity(); stale entries (time !=
    /// nodeNext[id]) are dropped on pop.
    std::vector<EventQueue> frontier;
    /// Sampled once at start(): flipping ECOSCHED_EVENT_PATH
    /// mid-run would desynchronize the frontier bookkeeping.
    bool eventMode = false;
    std::unique_ptr<ThreadPool> pool;
};

ClusterSim::ClusterSim(ClusterConfig config)
    : cfg(std::move(config)), workerCount(resolveJobs(cfg.jobs)),
      shardCount(1)
{
    fatalIf(cfg.nodes.empty(), "cluster needs at least one node");
    fatalIf(cfg.dispatchInterval <= 0.0,
            "dispatch interval must be positive");
    fatalIf(cfg.drainBoundFactor < 1.0,
            "drain bound factor must be at least 1");
    fatalIf(cfg.sloLatency <= 0.0, "SLO latency must be positive");
    fatalIf(cfg.wakeDelay < 0.0, "wake delay must be non-negative");
    fatalIf(cfg.latencyHistogramMax <= 0.0
                || cfg.latencyHistogramBins == 0,
            "latency histogram needs a positive range and bins");
    fatalIf(cfg.maxPipelineWindow == 0,
            "maxPipelineWindow must be at least 1");

    const std::size_t n = cfg.nodes.size();
    shardCount = cfg.shards != 0
        ? std::min(cfg.shards, n)
        : std::min<std::size_t>(workerCount, n);

    // Per-node configs with the fleet plan's machine-level events
    // routed in (NodeCrash stays at this layer; rack-scoped events
    // expand through the rack layout).
    std::vector<NodeConfig> prepared;
    prepared.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        NodeConfig node_cfg = cfg.nodes[i];
        const InjectionPlan mine = cfg.injection.eventsForNode(
            static_cast<NodeId>(i), cfg.nodesPerRack);
        if (!mine.empty()) {
            std::vector<FaultEvent> merged =
                node_cfg.injection.events();
            for (const FaultEvent &ev : mine.events()) {
                if (ev.kind != FaultKind::NodeCrash)
                    merged.push_back(ev);
            }
            node_cfg.injection =
                InjectionPlan::scripted(std::move(merged));
        }
        prepared.push_back(std::move(node_cfg));
    }

    // One pristine prototype stack per distinct node shape; every
    // node is stamped from its shape's prototype (bit-identical to a
    // fresh build, without re-deriving the calibrated models 10 000
    // times).
    std::map<std::uint64_t, std::unique_ptr<SimStack>> prototypes;
    std::vector<const SimStack *> proto(n, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
        const SimStackConfig scfg =
            ClusterNode::stackConfig(prepared[i]);
        std::unique_ptr<SimStack> &slot = prototypes[scfg.shapeKey()];
        if (!slot)
            slot = std::make_unique<SimStack>(scfg);
        proto[i] = slot.get();
    }

    fleet.resize(n);
    const auto buildRange = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            fleet[i] = std::make_unique<ClusterNode>(
                static_cast<NodeId>(i), std::move(prepared[i]),
                *proto[i]);
        }
    };
    if (workerCount > 1 && n >= 64) {
        // Stamp the fleet in parallel (prototypes are only read).
        const std::vector<ShardRange> chunks = makeShards(
            n, std::min<std::size_t>(
                   n, static_cast<std::size_t>(workerCount) * 4));
        std::vector<std::exception_ptr> errors(chunks.size());
        ThreadPool pool(std::min<unsigned>(
            workerCount, static_cast<unsigned>(chunks.size())));
        for (std::size_t c = 0; c < chunks.size(); ++c) {
            pool.submit([&, c] {
                try {
                    buildRange(chunks[c].begin, chunks[c].end);
                } catch (...) {
                    errors[c] = std::current_exception();
                }
            });
        }
        pool.wait();
        for (const std::exception_ptr &e : errors) {
            if (e)
                std::rethrow_exception(e);
        }
    } else {
        buildRange(0, n);
    }
}

ClusterSim::~ClusterSim() = default;

void
ClusterSim::start()
{
    fatalIf(consumed, "a ClusterSim run is single-use");
    consumed = true;
    live = std::make_unique<Run>(cfg, workerCount, shardCount,
                                 fleet.size());
}

bool
ClusterSim::finished() const
{
    fatalIf(!live, "ClusterSim::finished() needs a started run");
    return live->nextArrival >= live->arrivals.size()
        && live->settled();
}

std::size_t
ClusterSim::planWindow() const
{
    const Run &r = *live;
    // Drain: the settle check runs at every epoch boundary, so the
    // final epoch — the makespan — must be found one epoch at a time.
    if (r.nextArrival >= r.arrivals.size())
        return 1;

    std::size_t cap = cfg.maxPipelineWindow;
    if (cfg.autoscale.enabled) {
        // No autoscaler evaluation boundary may fall inside the
        // window (boundary indices are multiples of evalEveryEpochs).
        cap = std::min(cap, r.evalEveryEpochs
                                - r.epochIndex % r.evalEveryEpochs);
    }

    Seconds min_restart = -1.0;
    for (const Seconds at : r.restartAt) {
        if (at >= 0.0 && (min_restart < 0.0 || at < min_restart))
            min_restart = at;
    }

    // Grow the window while the next boundary is inert.  Epoch ends
    // accumulate sequentially (t + dt + dt + ...) — the exact values
    // the one-epoch-at-a-time loop would compute — so every
    // comparison below matches the serial schedule bitwise.
    std::size_t window = 1;
    Seconds last_end = r.t + cfg.dispatchInterval;
    while (window < cap) {
        const Seconds next_end = last_end + cfg.dispatchInterval;
        if (r.arrivals[r.nextArrival].arrival < next_end)
            break; // an arrival routes at the next boundary
        if (r.nextCrash < r.crashes.size()
            && r.crashes[r.nextCrash].time <= last_end) {
            break; // a NodeCrash fires at the next boundary
        }
        if (min_restart >= 0.0 && min_restart <= last_end)
            break; // a node restart is due at the next boundary
        if (last_end >= r.bound)
            break; // the drain-bound check must run there
        last_end = next_end;
        ++window;
    }
    return window;
}

void
ClusterSim::autoscaleStep()
{
    Run &r = *live;
    const std::size_t n = fleet.size();
    std::size_t open = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (fleet[i]->alive() && r.schedulable[i])
            ++open;
    }
    const SloAutoscaler::Decision d = r.autoscaler.evaluate(r.t, open);

    if (d.park > 0) {
        // Drain-and-park the shallowest-headroom idle nodes first:
        // the deepest (cheapest-running) silicon stays schedulable.
        std::vector<std::size_t> cand;
        for (std::size_t i = 0; i < n; ++i) {
            if (fleet[i]->alive() && r.schedulable[i]
                && r.outstanding[i] == 0) {
                cand.push_back(i);
            }
        }
        std::sort(cand.begin(), cand.end(),
                  [&](std::size_t a, std::size_t b) {
                      const double ha = fleet[a]->vminHeadroomMv();
                      const double hb = fleet[b]->vminHeadroomMv();
                      return std::tie(ha, a) < std::tie(hb, b);
                  });
        const std::size_t take = std::min(d.park, cand.size());
        for (std::size_t j = 0; j < take; ++j) {
            r.schedulable[cand[j]] = 0;
            ++r.res.autoscaleParks;
        }
    }
    if (d.unpark > 0) {
        // Re-open the deepest-headroom parked nodes first.
        std::vector<std::size_t> cand;
        for (std::size_t i = 0; i < n; ++i) {
            if (fleet[i]->alive() && !r.schedulable[i])
                cand.push_back(i);
        }
        std::sort(cand.begin(), cand.end(),
                  [&](std::size_t a, std::size_t b) {
                      const double ha = fleet[a]->vminHeadroomMv();
                      const double hb = fleet[b]->vminHeadroomMv();
                      return ha != hb ? ha > hb : a < b;
                  });
        const std::size_t take = std::min(d.unpark, cand.size());
        for (std::size_t j = 0; j < take; ++j) {
            r.schedulable[cand[j]] = 1;
            ++r.res.autoscaleUnparks;
        }
    }
}

void
ClusterSim::reconcileBoundary()
{
    Run &r = *live;
    const std::size_t n = fleet.size();
    const Seconds t = r.t;
    const Seconds epochEnd = t + cfg.dispatchInterval;

    // Scheduled node restarts, then due NodeCrash events.  Both land
    // on epoch boundaries, so they are independent of the worker and
    // shard counts.
    for (std::size_t i = 0; i < n; ++i) {
        if (r.restartAt[i] < 0.0 || r.restartAt[i] > t
            || fleet[i]->alive()) {
            continue;
        }
        fleet[i]->restart(t);
        r.restartAt[i] = -1.0;
        ++r.res.nodeRestarts;
        r.crashCounted[i] = 0;
        r.outstanding[i] = 0;
        r.lastIssue[i] = std::max(r.lastIssue[i], t);
        // A restarted node comes back empty, hence parked — and it
        // rejoins the schedulable pool.
        r.suspended[i] = cfg.idleSleep ? 1 : 0;
        r.schedulable[i] = 1;
        r.nodeDirty[i] = 1; // fresh stack: re-key its horizon
    }
    while (r.nextCrash < r.crashes.size()
           && r.crashes[r.nextCrash].time <= t) {
        const FaultEvent &ev = r.crashes[r.nextCrash];
        ++r.nextCrash;
        if (!fleet[ev.node]->alive())
            continue; // already down
        fleet[ev.node]->forceCrash();
        const Seconds down = ev.duration >= 0.0
            ? ev.duration : cfg.nodeRestartDelay;
        r.restartAt[ev.node] = down >= 0.0 ? ev.time + down : -1.0;
        r.nodeDirty[ev.node] = 1; // the crash must be counted
    }

    // The autoscaler's park/unpark step, on its epoch-aligned
    // cadence (before routing, so this boundary's arrivals already
    // see the updated gates).
    if (cfg.autoscale.enabled && r.epochIndex > 0
        && r.epochIndex % r.evalEveryEpochs == 0) {
        autoscaleStep();
    }

    // Route this epoch's arrivals using the epoch-boundary fleet
    // view.  The bandwidth signals are only computed for the
    // bandwidth_aware policy — they walk every node's inbox against
    // the catalog, which the other policies never look at.
    const bool bw_aware =
        cfg.dispatch == DispatchPolicy::BandwidthAware;
    std::vector<NodeView> views(n);
    for (std::size_t i = 0; i < n; ++i) {
        views[i].alive = fleet[i]->alive();
        views[i].schedulable = r.schedulable[i] != 0;
        views[i].cores = fleet[i]->spec().numCores;
        views[i].outstandingThreads = r.outstanding[i];
        views[i].headroomMv = fleet[i]->vminHeadroomMv();
        if (bw_aware) {
            views[i].bwDemand = fleet[i]->bandwidthDemand();
            views[i].bwCeiling = fleet[i]->bandwidthCeiling();
        }
    }
    while (r.nextArrival < r.arrivals.size()
           && r.arrivals[r.nextArrival].arrival < epochEnd) {
        const ClusterJob &job = r.arrivals[r.nextArrival];
        ++r.nextArrival;
        if (bw_aware) {
            // The job's per-thread bandwidth is resolved per node:
            // frequency and memory constants differ across a
            // heterogeneous fleet.
            for (std::size_t i = 0; i < n; ++i) {
                views[i].bwPerJobThread =
                    fleet[i]->perThreadBandwidth(job.benchmark);
            }
        }
        const std::size_t pick = r.dispatcher.choose(views, job);
        if (pick == Dispatcher::npos) {
            ++r.res.jobsDropped; // whole fleet down
            continue;
        }
        const std::uint32_t threads =
            threadsForJob(job, views[pick].cores);
        Seconds issue = job.arrival;
        if (r.suspended[pick]) {
            issue += cfg.wakeDelay; // pay the wake-up
            r.suspended[pick] = 0;
        }
        issue = std::max(issue, r.lastIssue[pick]);
        r.lastIssue[pick] = issue;
        fleet[pick]->enqueue(job, threads, issue);
        r.outstanding[pick] += threads;
        r.nodeDirty[pick] = 1; // inbox head may have moved earlier
        views[pick].outstandingThreads = r.outstanding[pick];
        if (bw_aware) {
            views[pick].bwDemand +=
                static_cast<double>(threads)
                * views[pick].bwPerJobThread;
        }
    }
}

void
ClusterSim::executeWindow(const std::vector<Seconds> &ends)
{
    Run &r = *live;
    const std::size_t window = ends.size();
    const std::size_t nshards = r.shards.size();

    // Per-(shard, epoch) completion/crash buffers.  Each shard owns
    // its slots exclusively; the serial fold below replays them in
    // epoch-major, node-ascending order — exactly the order the
    // one-epoch serial loop feeds the latency accumulators.
    struct EpochBuf
    {
        std::vector<std::pair<std::size_t, std::vector<JobCompletion>>>
            completions; ///< node-ascending
        /// (node, stranded jobs) for crashes detected this epoch.
        std::vector<std::pair<std::size_t, std::uint64_t>> crashed;
    };
    std::vector<EpochBuf> buf(nshards * window);

    struct ShardError
    {
        std::size_t epoch = 0;
        std::size_t node = 0;
        std::exception_ptr error;
    };
    std::vector<ShardError> errors(nshards);

    // One node, one epoch, full bookkeeping.  Everything it mutates
    // is indexed by i, so running it node-major (all epochs of node
    // i, then node i+1 — the event path) produces the same state and
    // the same per-(shard, epoch) buffer contents as the reference
    // epoch-major order: within each buffer slot, nodes still append
    // in ascending order.
    const auto processEpoch = [&](std::size_t s, std::size_t i,
                                  std::size_t k) {
        EpochBuf &out = buf[s * window + k];
        // Always one stepTo() per epoch: the parked-energy
        // re-accounting telescopes per span, so coalescing a
        // multi-epoch window into one call would change the
        // floating-point sums.
        fleet[i]->stepTo(ends[k], r.suspended[i] != 0);
        std::vector<JobCompletion> comps = fleet[i]->harvest();
        for (const JobCompletion &c : comps) {
            ECOSCHED_ASSERT(r.outstanding[i] >= c.threads,
                            "outstanding-thread underflow");
            r.outstanding[i] -= c.threads;
            ++r.nodeCompleted[i];
        }
        if (!comps.empty())
            out.completions.emplace_back(i, std::move(comps));
        if (!fleet[i]->alive() && !r.crashCounted[i]) {
            // Fault injection took the node down: its remaining
            // jobs are stranded.
            r.crashCounted[i] = 1;
            out.crashed.emplace_back(i, fleet[i]->pendingJobs());
            r.outstanding[i] = 0;
        }
        // Autoscaler-parked nodes must draw the deep standby floor
        // even when idleSleep is off — a drained, unschedulable
        // node left at awake-idle power would overstate fleet
        // energy.
        if ((cfg.idleSleep || !r.schedulable[i])
            && r.outstanding[i] == 0 && fleet[i]->alive()) {
            r.suspended[i] = 1;
        }
    };

    const auto runShard = [&](std::size_t s) {
        const ShardRange range = r.shards[s];
        if (!r.eventMode) {
            // Reference path (ECOSCHED_EVENT_PATH=0): epoch-major,
            // every node through the full bookkeeping.
            for (std::size_t k = 0; k < window; ++k) {
                for (std::size_t i = range.begin; i < range.end;
                     ++i) {
                    try {
                        processEpoch(s, i, k);
                    } catch (...) {
                        errors[s] = {k, i,
                                     std::current_exception()};
                        return;
                    }
                }
            }
            return;
        }

        // Event path: key the frontier, pop the due set, then sweep
        // the shard node-major.
        EventQueue &due = r.frontier[s];
        const Seconds horizon = ends.back();
        try {
            for (std::size_t i = range.begin; i < range.end; ++i) {
                if (!r.nodeDirty[i])
                    continue;
                r.nodeDirty[i] = 0;
                const Seconds next = fleet[i]->nextActivity();
                ECOSCHED_DEBUG_ASSERT(
                    !(next < ends[0] - cfg.dispatchInterval
                                 - fleet[i]->config().timestep),
                    "node " + std::to_string(i)
                        + " nextActivity() returned a horizon more "
                          "than one step before the window start");
                r.nodeNext[i] = next;
                if (next < horizonNever)
                    due.push(next, i);
            }
            while (!due.empty() && due.top().time < horizon) {
                const std::size_t i =
                    static_cast<std::size_t>(due.top().id);
                const Seconds time = due.top().time;
                due.pop();
                if (time == r.nodeNext[i])
                    r.fullMark[i] = 1; // else stale: lazy deletion
            }
        } catch (...) {
            errors[s] = {0, range.begin, std::current_exception()};
            return;
        }

        for (std::size_t i = range.begin; i < range.end; ++i) {
            const bool full = r.fullMark[i] != 0
                || (!fleet[i]->alive() && !r.crashCounted[i]);
            r.fullMark[i] = 0;
            if (!full && !fleet[i]->alive())
                continue; // dead and counted: provably all no-ops
            for (std::size_t k = 0; k < window; ++k) {
                try {
                    if (full) {
                        processEpoch(s, i, k);
                    } else {
                        // Lean: the horizon proves nothing can
                        // finish, fault or crash before the window
                        // end — advance the clock and keep only the
                        // park/suspend bookkeeping live (its inputs
                        // cannot change either, but the reference
                        // path evaluates it per epoch, so mirror
                        // that exactly).
                        fleet[i]->stepTo(ends[k],
                                         r.suspended[i] != 0);
                        if ((cfg.idleSleep || !r.schedulable[i])
                            && r.outstanding[i] == 0) {
                            r.suspended[i] = 1;
                        }
                    }
                } catch (...) {
                    errors[s] = {k, i, std::current_exception()};
                    return;
                }
            }
            if (full) {
                // Re-key for the next window; entries left behind
                // in the heap go stale and drop on pop.
                const Seconds next = fleet[i]->nextActivity();
                r.nodeNext[i] = next;
                if (next < horizonNever)
                    due.push(next, i);
            }
        }
    };

    if (r.pool) {
        for (std::size_t s = 0; s < nshards; ++s)
            r.pool->submit([&, s] { runShard(s); });
        r.pool->wait();
    } else {
        for (std::size_t s = 0; s < nshards; ++s)
            runShard(s);
    }

    // Rethrow the earliest (epoch, node) error — a shard stops at
    // its first failure and shards cover ascending node ranges, so
    // this is the error the serial loop would have hit first.
    const ShardError *first = nullptr;
    for (const ShardError &e : errors) {
        if (e.error
            && (first == nullptr
                || std::tie(e.epoch, e.node)
                    < std::tie(first->epoch, first->node))) {
            first = &e;
        }
    }
    if (first != nullptr)
        std::rethrow_exception(first->error);

    // Serial fold into the cluster-wide accounting.
    for (std::size_t k = 0; k < window; ++k) {
        for (std::size_t s = 0; s < nshards; ++s) {
            const EpochBuf &b = buf[s * window + k];
            for (const auto &[node, comps] : b.completions) {
                (void)node;
                for (const JobCompletion &c : comps) {
                    ++r.res.jobsCompleted;
                    const Seconds lat = c.latency();
                    r.latency.add(lat);
                    r.latencyStats.add(lat);
                    if (lat > cfg.sloLatency)
                        ++r.res.sloViolations;
                    if (isFailure(c.outcome))
                        ++r.res.jobsFailed;
                    if (cfg.autoscale.enabled) {
                        // Timestamped at the epoch end: monotone, and
                        // identical for every shard/worker count.
                        r.autoscaler.observe(ends[k], lat);
                    }
                }
            }
            for (const auto &[node, lost] : b.crashed) {
                (void)node;
                ++r.res.nodeCrashes;
                r.res.jobsLost += lost;
            }
        }
    }
}

void
ClusterSim::advance()
{
    fatalIf(!live, "ClusterSim::advance() needs a started run");
    fatalIf(finished(), "ClusterSim::advance() past the drain");
    Run &r = *live;
    fatalIf(r.t >= r.bound, "cluster failed to drain within ",
            formatDouble(r.bound, 1), " s (offered load too high "
            "for the fleet, or every node crashed)");

    reconcileBoundary();
    const std::size_t window = planWindow();
    std::vector<Seconds> ends(window);
    Seconds end = r.t;
    for (std::size_t k = 0; k < window; ++k) {
        end += cfg.dispatchInterval;
        ends[k] = end;
    }
    executeWindow(ends);
    r.t = ends.back();
    r.epochIndex += window;
}

ClusterResult
ClusterSim::finish()
{
    fatalIf(!live, "ClusterSim::finish() needs a started run");
    fatalIf(!finished(),
            "ClusterSim::finish() before the fleet drained");
    Run &r = *live;
    ClusterResult res = std::move(r.res);

    res.makespan = r.t;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        NodeSummary s;
        s.node = fleet[i]->id();
        s.chip = fleet[i]->spec().name;
        s.headroomMv = fleet[i]->vminHeadroomMv();
        s.jobsCompleted = r.nodeCompleted[i];
        s.energy = fleet[i]->energy();
        s.utilization = fleet[i]->utilization();
        s.parkedTime = fleet[i]->parkedTime();
        s.memThrottled = fleet[i]->memThrottledTime();
        s.peakMemThrottle = fleet[i]->peakMemThrottle();
        s.crashed = !fleet[i]->alive();
        s.restarts = fleet[i]->restarts();
        res.totalEnergy += s.energy;
        if (fleet[i]->spec().hasMemBw())
            res.membwConfigured = true;
        res.memThrottledSeconds += s.memThrottled;
        res.peakMemThrottle =
            std::max(res.peakMemThrottle, s.peakMemThrottle);
        res.nodes.push_back(std::move(s));
    }
    if (res.makespan > 0.0)
        res.averagePower = res.totalEnergy / res.makespan;
    if (r.latencyStats.count() > 0) {
        res.latencyMean = r.latencyStats.mean();
        res.latencyMin = r.latencyStats.min();
        res.latencyMax = r.latencyStats.max();
        // In-bin interpolation can miss the true sample by up to a
        // bin width on either side; clamp to the observed extrema.
        res.latencyP50 = std::clamp(r.latency.quantile(0.50),
                                    res.latencyMin, res.latencyMax);
        res.latencyP95 = std::clamp(r.latency.quantile(0.95),
                                    res.latencyMin, res.latencyMax);
        res.latencyP99 = std::clamp(r.latency.quantile(0.99),
                                    res.latencyMin, res.latencyMax);
    }
    live.reset();
    return res;
}

ClusterResult
ClusterSim::run()
{
    start();
    while (!finished())
        advance();
    return finish();
}

ClusterSim::Snapshot
ClusterSim::capture() const
{
    fatalIf(!live,
            "ClusterSim::capture() needs a live run (between "
            "start() and finish())");
    const Run &r = *live;
    Snapshot s;
    s.nodes.reserve(fleet.size());
    for (const auto &node : fleet)
        s.nodes.push_back(node->capture());
    s.dispatcher = r.dispatcher.state();
    s.autoscaler = r.autoscaler.captureState();
    s.partial = r.res;
    s.latency = r.latency;
    s.latencyStats = r.latencyStats;
    s.outstanding = r.outstanding;
    s.suspended = r.suspended;
    s.crashCounted = r.crashCounted;
    s.schedulable = r.schedulable;
    s.lastIssue = r.lastIssue;
    s.restartAt = r.restartAt;
    s.nodeCompleted = r.nodeCompleted;
    s.nextArrival = r.nextArrival;
    s.nextCrash = r.nextCrash;
    s.t = r.t;
    s.epochIndex = r.epochIndex;
    return s;
}

void
ClusterSim::restore(const Snapshot &snapshot)
{
    fatalIf(!live,
            "ClusterSim::restore() needs a live run (call start() "
            "first)");
    fatalIf(snapshot.nodes.size() != fleet.size(),
            "cluster snapshot is for a ", snapshot.nodes.size(),
            "-node fleet, this one has ", fleet.size());
    Run &r = *live;
    for (std::size_t i = 0; i < fleet.size(); ++i)
        fleet[i]->restore(snapshot.nodes[i]);
    r.dispatcher.setState(snapshot.dispatcher);
    r.autoscaler.restoreState(snapshot.autoscaler);
    r.res = snapshot.partial;
    r.latency = snapshot.latency;
    r.latencyStats = snapshot.latencyStats;
    r.outstanding = snapshot.outstanding;
    r.suspended = snapshot.suspended;
    r.crashCounted = snapshot.crashCounted;
    r.schedulable = snapshot.schedulable;
    r.lastIssue = snapshot.lastIssue;
    r.restartAt = snapshot.restartAt;
    r.nodeCompleted = snapshot.nodeCompleted;
    r.nextArrival = snapshot.nextArrival;
    r.nextCrash = snapshot.nextCrash;
    r.t = snapshot.t;
    r.epochIndex = snapshot.epochIndex;
    // The frontier is derived state: invalidate it wholesale and
    // let the next window re-key every node from the restored
    // fleet.
    std::fill(r.nodeDirty.begin(), r.nodeDirty.end(), char{1});
    std::fill(r.fullMark.begin(), r.fullMark.end(), char{0});
    for (EventQueue &q : r.frontier)
        q.clear();
}

void
ClusterResult::printSummary(std::ostream &os) const
{
    TextTable summary({"metric", "value"});
    summary.addRow({"dispatch policy", dispatchPolicyName(dispatch)});
    summary.addRow({"nodes", std::to_string(numNodes)});
    summary.addRow({"jobs submitted", std::to_string(jobsSubmitted)});
    summary.addRow({"jobs completed", std::to_string(jobsCompleted)});
    summary.addRow({"jobs lost", std::to_string(jobsLost)});
    summary.addRow({"jobs dropped", std::to_string(jobsDropped)});
    summary.addRow({"failed runs", std::to_string(jobsFailed)});
    summary.addRow({"node crashes", std::to_string(nodeCrashes)});
    summary.addRow({"node restarts", std::to_string(nodeRestarts)});
    summary.addRow(
        {"autoscale parks", std::to_string(autoscaleParks)});
    summary.addRow(
        {"autoscale unparks", std::to_string(autoscaleUnparks)});
    summary.addRow({"makespan [s]", formatDouble(makespan, 1)});
    summary.addRow({"total energy [J]", formatDouble(totalEnergy, 1)});
    summary.addRow(
        {"average power [W]", formatDouble(averagePower, 2)});
    summary.addRow(
        {"energy per job [J]", formatDouble(energyPerJob(), 1)});
    summary.addRow({"latency mean [s]", formatDouble(latencyMean, 2)});
    summary.addRow({"latency min [s]", formatDouble(latencyMin, 2)});
    summary.addRow({"latency p50 [s]", formatDouble(latencyP50, 2)});
    summary.addRow({"latency p95 [s]", formatDouble(latencyP95, 2)});
    summary.addRow({"latency p99 [s]", formatDouble(latencyP99, 2)});
    summary.addRow({"latency max [s]", formatDouble(latencyMax, 2)});
    summary.addRow({"SLO latency [s]", formatDouble(sloLatency, 1)});
    summary.addRow(
        {"SLO violations", std::to_string(sloViolations)});
    if (membwConfigured) {
        // Only armed fleets print these rows: reservation-free
        // output stays byte-identical to pre-MEMBW builds (pinned by
        // the *_membw_off goldens).
        summary.addRow({"mem throttled [thread-s]",
                        formatDouble(memThrottledSeconds, 1)});
        summary.addRow({"peak mem throttle",
                        formatDouble(peakMemThrottle, 3)});
    }
    summary.print(os);

    os << "\n";
    TextTable perNode({"node", "chip", "headroom [mV]", "jobs",
                       "energy [J]", "util", "parked [s]", "state"});
    for (const NodeSummary &s : nodes) {
        perNode.addRow({std::to_string(s.node), s.chip,
                        formatDouble(s.headroomMv, 1),
                        std::to_string(s.jobsCompleted),
                        formatDouble(s.energy, 1),
                        formatPercent(s.utilization),
                        formatDouble(s.parkedTime, 1),
                        s.crashed
                            ? "crashed"
                            : (s.restarts > 0 ? "recovered" : "up")});
    }
    perNode.print(os);
}

std::vector<NodeConfig>
uniformFleet(const ChipSpec &chip, std::size_t n,
             std::uint64_t seed, PolicyKind policy)
{
    fatalIf(n == 0, "fleet needs at least one node");
    const Rng root(seed);
    std::vector<NodeConfig> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
        nodes[i].chip = chip;
        nodes[i].policy = policy;
        // Each node is a distinct chip sample: per-chip Vmin
        // variation comes from the machine seed.
        nodes[i].machineSeed = root.fork(i).next();
    }
    return nodes;
}

std::vector<NodeConfig>
mixedFleet(std::size_t n, std::uint64_t seed, PolicyKind policy)
{
    fatalIf(n == 0, "fleet needs at least one node");
    const ChipSpec xg3 = xGene3();
    const ChipSpec xg2 = xGene2();
    const Rng root(seed);
    std::vector<NodeConfig> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
        nodes[i].chip = (i % 2 == 0) ? xg3 : xg2;
        nodes[i].policy = policy;
        nodes[i].machineSeed = root.fork(i).next();
    }
    return nodes;
}

} // namespace ecosched
