/**
 * @file
 * Occupancy-driven hardware idle-state tracker (c-state mechanism).
 *
 * The Machine owns one IdleStateTracker and reports every core
 * busy/idle transition to it.  The tracker promotes cores into the
 * chip's per-core c-state (c1 analog) and whole PMDs into the
 * per-PMD c-state (c6 analog) after their break-even residency plus
 * entry latency have elapsed, and charges the exit latency as a wake
 * stall when a promoted core is occupied again.  Its IdlePowerView
 * feeds the power model: c1 residency stops the idle clock of the
 * core, c6 residency gates the PMD's share of chip leakage.
 *
 * Determinism contract (the same one the fault hook obeys):
 *  - promotions fire only in poll(), with the half-step convention
 *    `promoteAt <= now + dt/2` — the same grid test the stepping
 *    loop uses for stalls and horizons;
 *  - nextTransition() reports the earliest pending promotion so
 *    macroAdvance() can clamp its horizon: a macro window never
 *    spans a promotion, keeping fixed-vs-macro bit-identity;
 *  - every transition bumps epoch(), the power-cache key that pins
 *    the view's contents;
 *  - the whole mutable state is a flat State blob that snapshots,
 *    restores and clones bit-identically (mid-wake capture included:
 *    the pending wake stall lives in the thread's stallUntil, the
 *    pending promotion timers in idleSince).
 *
 * A tracker built for a chip without c-states is inert: every call
 * is a cheap no-op, powerView() is null, and all pre-existing
 * results stay byte-identical.
 */

#ifndef ECOSCHED_IDLE_IDLE_TRACKER_HH
#define ECOSCHED_IDLE_IDLE_TRACKER_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "platform/chip_spec.hh"
#include "power/power_model.hh"

namespace ecosched {

class IdleStateTracker
{
  public:
    /// Full mutable state (snapshot-and-branch).
    struct State
    {
        std::vector<std::uint8_t> coreIdle;
        std::vector<Seconds> idleSince;
        std::vector<std::uint8_t> coreInC1;
        std::vector<Seconds> c1Since;
        std::vector<Seconds> c1Seconds;
        std::vector<std::uint64_t> c1Entries;
        std::vector<std::uint8_t> pmdInC6;
        std::vector<Seconds> c6Since;
        std::vector<Seconds> c6Seconds;
        std::vector<std::uint64_t> c6Entries;
        std::uint64_t transitionEpoch = 0;
    };

    /// Build for a chip spec; inert when the spec has no c-states.
    explicit IdleStateTracker(const ChipSpec &spec);

    /// Whether the chip models c-states at all.
    bool enabled() const { return tracking; }

    /**
     * A thread was bound to @p core at time @p now.  Demotes the
     * core (and its PMD, if power-gated) back to active and returns
     * the wake stall the first slice must pay (0 when the core was
     * not in a c-state).
     */
    Seconds occupy(CoreId core, Seconds now);

    /// The thread on @p core left at time @p now; the core starts
    /// accruing idle residency.
    void release(CoreId core, Seconds now);

    /**
     * Fire every promotion due on the step starting at @p now with
     * length @p dt (half-step convention: due means
     * promoteAt <= now + dt/2).  Called once at the top of every
     * plain step.
     */
    void poll(Seconds now, Seconds dt);

    /// Earliest pending promotion time (infinity when none).
    /// macroAdvance() clamps its horizon to this.
    Seconds nextTransition() const;

    /// Bumped on every c-state entry/exit; power-cache key.
    std::uint64_t epoch() const { return transitionEpoch; }

    /// Power-model view (null when the tracker is inert).
    const IdlePowerView *powerView() const
    {
        return tracking ? &view : nullptr;
    }

    // --- residency telemetry -------------------------------------------
    /// Whether @p core is resident in the per-core c-state.
    bool coreInC1(CoreId core) const
    {
        return tracking && inC1[core] != 0;
    }

    /// Whether @p pmd is resident in the per-PMD c-state.
    bool pmdInC6(PmdId pmd) const
    {
        return tracking && inC6[pmd] != 0;
    }

    /// Cumulative c1 residency of @p core up to time @p now.
    Seconds coreC1Seconds(CoreId core, Seconds now) const;

    /// Cumulative c6 residency of @p pmd up to time @p now.
    Seconds pmdC6Seconds(PmdId pmd, Seconds now) const;

    /// Times @p core entered the per-core c-state.
    std::uint64_t coreC1Entries(CoreId core) const
    {
        return tracking ? c1EntryCount[core] : 0;
    }

    /// Times @p pmd entered the per-PMD c-state.
    std::uint64_t pmdC6Entries(PmdId pmd) const
    {
        return tracking ? c6EntryCount[pmd] : 0;
    }

    // --- snapshot ------------------------------------------------------
    State captureState() const;
    void restoreState(const State &state);

  private:
    void enterC6(PmdId pmd, Seconds now);
    /// Deterministic function of the gated-PMD count (no FP drift).
    void refreshLeakageScale();

    bool tracking = false;
    bool hasC1 = false;
    bool hasC6 = false;
    CStateSpec c1;
    CStateSpec c6;
    std::uint32_t numCores = 0;
    std::uint32_t numPmds = 0;

    std::vector<std::uint8_t> coreIdle; ///< 1 = no thread bound
    std::vector<Seconds> idleSince;     ///< valid while idle
    std::vector<std::uint8_t> inC1;     ///< the view's deep-idle flags
    std::vector<Seconds> c1Since;       ///< open-span start while in c1
    std::vector<Seconds> c1Acc;         ///< closed c1 residency
    std::vector<std::uint64_t> c1EntryCount;
    std::vector<std::uint8_t> inC6;
    std::vector<Seconds> c6Since;
    std::vector<Seconds> c6Acc;
    std::vector<std::uint64_t> c6EntryCount;
    std::uint32_t gatedPmds = 0;        ///< PMDs currently in c6
    std::uint64_t transitionEpoch = 0;

    IdlePowerView view;
};

} // namespace ecosched

#endif // ECOSCHED_IDLE_IDLE_TRACKER_HH
