#include "idle/coreidle.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace ecosched {

std::vector<CoreId>
CoreIdleMaskPlacer::place(const System &system, const Process &,
                          std::uint32_t threads)
{
    const auto free = system.freeCores();
    if (free.size() < threads)
        return {};

    const auto &spec = system.spec();
    const std::uint32_t num_pmds = spec.numPmds();
    // Never mask the whole chip; the mask is advisory.
    const std::uint32_t masked = std::min(
        maskCount, num_pmds > 0 ? num_pmds - 1 : 0);
    const PmdId first_masked = num_pmds - masked;

    // Soft mask: honour it only when the unmasked free cores can
    // host the whole process — never queue work behind idle
    // hardware the governor parked.
    bool honor_mask = masked > 0;
    if (honor_mask) {
        std::uint32_t unmasked_free = 0;
        for (CoreId c : free)
            if (pmdOfCore(c) < first_masked)
                ++unmasked_free;
        honor_mask = unmasked_free >= threads;
    }

    // The stock CFS-domain-style greedy (LinuxSpreadPlacer), with
    // masked cores excluded.  With an empty mask the loop below is
    // the exact same iteration and comparison sequence, so the
    // choices are byte-identical to linux-spread.
    std::vector<int> busy_per_pmd(spec.numPmds(), 0);
    for (CoreId c = 0; c < spec.numCores; ++c)
        if (system.machine().coreBusy(c))
            ++busy_per_pmd[pmdOfCore(c)];

    std::vector<CoreId> chosen;
    std::vector<bool> taken(spec.numCores, false);
    for (std::uint32_t i = 0; i < threads; ++i) {
        CoreId best = spec.numCores;
        for (CoreId c : free) {
            if (taken[c])
                continue;
            if (honor_mask && pmdOfCore(c) >= first_masked)
                continue;
            if (best == spec.numCores ||
                busy_per_pmd[pmdOfCore(c)]
                    < busy_per_pmd[pmdOfCore(best)]) {
                best = c;
            }
        }
        ECOSCHED_ASSERT(best < spec.numCores,
                        "ran out of free cores mid-placement");
        taken[best] = true;
        ++busy_per_pmd[pmdOfCore(best)];
        chosen.push_back(best);
    }
    return chosen;
}

CoreIdleGovernor::CoreIdleGovernor(Config config,
                                   CoreIdleMaskPlacer *mask_placer)
    : cfg(config), placer(mask_placer)
{
    fatalIf(placer == nullptr,
            "coreidle governor needs the mask placer it steers");
    fatalIf(cfg.samplingPeriod <= 0.0,
            "coreidle sampling period must be positive");
    fatalIf(cfg.upThreshold <= 0.0 || cfg.upThreshold > 1.0,
            "coreidle up-threshold must be in (0, 1]");
    fatalIf(cfg.shrinkThreshold >= cfg.growThreshold,
            "coreidle shrink threshold must sit below grow");
    fatalIf(cfg.shrinkHold < 0.0,
            "coreidle shrink hold must be non-negative");
    fatalIf(cfg.minActivePmds == 0,
            "coreidle needs at least one active PMD");
}

void
CoreIdleGovernor::consolidate(System &system, std::uint32_t num_pmds)
{
    const std::uint32_t masked = placer->maskedPmds();
    if (masked == 0)
        return;
    const PmdId first_masked = num_pmds - masked;

    // Free unmasked cores, ascending — filling from the bottom packs
    // the migrated threads onto the lowest active modules.
    std::vector<CoreId> spare;
    for (CoreId c : system.freeCores())
        if (pmdOfCore(c) < first_masked)
            spare.push_back(c);

    for (Pid pid : system.runningProcesses()) {
        const Process &proc = system.process(pid);
        bool straggler = false;
        for (CoreId c : proc.cores)
            if (pmdOfCore(c) >= first_masked)
                straggler = true;
        if (!straggler)
            continue;
        std::vector<CoreId> target = proc.cores;
        bool fits = true;
        std::size_t next = 0;
        for (CoreId &c : target) {
            if (pmdOfCore(c) < first_masked)
                continue;
            if (next >= spare.size()) {
                fits = false;
                break;
            }
            c = spare[next++];
        }
        if (!fits)
            continue; // not enough room; the soft mask covers it
        spare.erase(spare.begin(),
                    spare.begin() + static_cast<std::ptrdiff_t>(next));
        system.migrateProcess(pid, target);
    }
}

void
CoreIdleGovernor::tick(System &system)
{
    const Seconds now = system.now();
    if (lastRun >= 0.0 && now - lastRun < cfg.samplingPeriod)
        return;
    lastRun = now;

    const ChipSpec &spec = system.spec();
    const std::uint32_t num_pmds = spec.numPmds();
    if (activePmds == 0 || activePmds > num_pmds)
        activePmds = num_pmds; // first tick: size to the chip

    // --- hysteresis: size the active set ------------------------------
    // Core-granularity occupancy of the active set.  (pmdUtilization
    // is the max of the module's two cores — right for the frequency
    // decision, but it would read 100% for a half-empty module and
    // the mask would never shrink under spread placement.)
    const std::uint32_t busy = system.machine().numBusyCores();
    double util_sum = 0.0;
    for (CoreId c = 0; c < activePmds * coresPerPmd; ++c)
        util_sum += system.coreUtilization(c);
    const double load =
        util_sum / static_cast<double>(activePmds * coresPerPmd);
    const bool queued = !system.queuedProcesses().empty();

    if (queued) {
        // Queue pressure: unmask everything immediately.
        activePmds = num_pmds;
        lowSince = -1.0;
    } else if (load > cfg.growThreshold && activePmds < num_pmds) {
        ++activePmds;
        lowSince = -1.0;
    } else if (load < cfg.shrinkThreshold
               && activePmds > cfg.minActivePmds
               && busy <= coresPerPmd * (activePmds - 1)) {
        if (lowSince < 0.0) {
            lowSince = now;
        } else if (now - lowSince >= cfg.shrinkHold) {
            --activePmds;
            lowSince = now; // re-arm for the next shrink step
        }
    } else {
        lowSince = -1.0;
    }

    placer->setMaskedPmds(num_pmds - activePmds);
    if (cfg.consolidate)
        consolidate(system, num_pmds);

    // --- frequencies ---------------------------------------------------
    Machine &machine = system.machine();
    for (PmdId p = 0; p < num_pmds; ++p) {
        const bool occupied =
            machine.coreBusy(firstCoreOfPmd(p))
            || machine.coreBusy(secondCoreOfPmd(p));
        Hertz target;
        if (p >= activePmds && !occupied) {
            // Empty masked module: park at the ladder floor (it is
            // clock-gated outright while idle anyway).  A masked
            // module still hosting soft-mask-fallback threads keeps
            // its demand-driven frequency — stranding live work at
            // the floor would wreck tail latency for no energy win.
            target = spec.freqStep();
        } else if (cfg.raceToIdle) {
            target = spec.fMax;
        } else {
            const double util = system.pmdUtilization(p);
            if (util >= cfg.upThreshold) {
                target = spec.fMax;
            } else {
                const Hertz raw =
                    spec.fMax * util / cfg.upThreshold;
                target = std::max(
                    spec.freqStep(),
                    spec.snapToLadder(
                        std::max(raw, spec.freqStep())));
            }
        }
        machine.slimPro().requestPmdFrequency(now, p, target);
    }
}

bool
CoreIdleGovernor::wouldAct(const System &system) const
{
    return !(lastRun >= 0.0
             && system.now() - lastRun < cfg.samplingPeriod);
}

Seconds
CoreIdleGovernor::nextActivity(const System &system) const
{
    if (lastRun < 0.0)
        return system.now(); // first tick sizes the active set
    return lastRun + cfg.samplingPeriod - system.timestep();
}

std::vector<double>
CoreIdleGovernor::captureState() const
{
    return {lastRun, static_cast<double>(activePmds), lowSince,
            static_cast<double>(placer->maskedPmds())};
}

void
CoreIdleGovernor::restoreState(const std::vector<double> &state)
{
    lastRun = state.at(0);
    activePmds = static_cast<std::uint32_t>(state.at(1));
    lowSince = state.at(2);
    // The mask lives in the placer, which the System snapshot does
    // not carry — re-sync it from the governor's state.
    placer->setMaskedPmds(static_cast<std::uint32_t>(state.at(3)));
}

} // namespace ecosched
