#include "idle/idle_tracker.hh"

#include <algorithm>
#include <limits>

#include "common/error.hh"

namespace ecosched {

IdleStateTracker::IdleStateTracker(const ChipSpec &spec)
{
    spec.validate();
    if (!spec.hasCStates())
        return; // inert: every call below no-ops
    tracking = true;
    numCores = spec.numCores;
    numPmds = spec.numPmds();
    if (const CStateSpec *cs = spec.coreCState()) {
        hasC1 = true;
        c1 = *cs;
    }
    if (const CStateSpec *cs = spec.pmdCState()) {
        hasC6 = true;
        c6 = *cs;
    }
    // Every core starts idle at t = 0 and accrues residency from
    // there, exactly as if its thread had just left.
    coreIdle.assign(numCores, 1);
    idleSince.assign(numCores, 0.0);
    inC1.assign(numCores, 0);
    c1Since.assign(numCores, 0.0);
    c1Acc.assign(numCores, 0.0);
    c1EntryCount.assign(numCores, 0);
    inC6.assign(numPmds, 0);
    c6Since.assign(numPmds, 0.0);
    c6Acc.assign(numPmds, 0.0);
    c6EntryCount.assign(numPmds, 0);
    view.coreDeepIdle = inC1.data();
    view.coreIdleClockScale = hasC1 ? c1.idleClockScale : 0.0;
    refreshLeakageScale();
}

void
IdleStateTracker::refreshLeakageScale()
{
    view.leakageScale = gatedPmds == 0
        ? 1.0
        : 1.0 - c6.leakageShare * static_cast<double>(gatedPmds);
}

Seconds
IdleStateTracker::occupy(CoreId core, Seconds now)
{
    if (!tracking)
        return 0.0;
    ECOSCHED_ASSERT(coreIdle[core] != 0,
                    "occupying a core the tracker thinks is busy");
    Seconds stall = 0.0;
    const PmdId pmd = pmdOfCore(core);
    if (inC6[pmd] != 0) {
        stall = std::max(stall, c6.exitLatency);
        c6Acc[pmd] += now - c6Since[pmd];
        inC6[pmd] = 0;
        ECOSCHED_ASSERT(gatedPmds > 0, "c6 count out of sync");
        --gatedPmds;
        refreshLeakageScale();
        ++transitionEpoch;
    }
    if (inC1[core] != 0) {
        stall = std::max(stall, c1.exitLatency);
        c1Acc[core] += now - c1Since[core];
        inC1[core] = 0;
        ++transitionEpoch;
    }
    coreIdle[core] = 0;
    return stall;
}

void
IdleStateTracker::release(CoreId core, Seconds now)
{
    if (!tracking)
        return;
    ECOSCHED_ASSERT(coreIdle[core] == 0,
                    "releasing a core the tracker thinks is idle");
    coreIdle[core] = 1;
    idleSince[core] = now;
}

void
IdleStateTracker::enterC6(PmdId pmd, Seconds now)
{
    inC6[pmd] = 1;
    c6Since[pmd] = now;
    ++c6EntryCount[pmd];
    ++gatedPmds;
    refreshLeakageScale();
    ++transitionEpoch;
}

void
IdleStateTracker::poll(Seconds now, Seconds dt)
{
    if (!tracking)
        return;
    const Seconds due = now + dt * 0.5;
    if (hasC1) {
        const Seconds lead = c1.residency + c1.entryLatency;
        for (CoreId c = 0; c < numCores; ++c) {
            if (coreIdle[c] != 0 && inC1[c] == 0
                    && idleSince[c] + lead <= due) {
                inC1[c] = 1;
                c1Since[c] = now;
                ++c1EntryCount[c];
                ++transitionEpoch;
            }
        }
    }
    if (hasC6) {
        const Seconds lead = c6.residency + c6.entryLatency;
        for (PmdId p = 0; p < numPmds; ++p) {
            if (inC6[p] != 0)
                continue;
            const CoreId a = firstCoreOfPmd(p);
            const CoreId b = secondCoreOfPmd(p);
            if (coreIdle[a] == 0 || coreIdle[b] == 0)
                continue;
            const Seconds since =
                std::max(idleSince[a], idleSince[b]);
            if (since + lead <= due)
                enterC6(p, now);
        }
    }
}

Seconds
IdleStateTracker::nextTransition() const
{
    Seconds next = std::numeric_limits<Seconds>::infinity();
    if (!tracking)
        return next;
    if (hasC1) {
        const Seconds lead = c1.residency + c1.entryLatency;
        for (CoreId c = 0; c < numCores; ++c)
            if (coreIdle[c] != 0 && inC1[c] == 0)
                next = std::min(next, idleSince[c] + lead);
    }
    if (hasC6) {
        const Seconds lead = c6.residency + c6.entryLatency;
        for (PmdId p = 0; p < numPmds; ++p) {
            if (inC6[p] != 0)
                continue;
            const CoreId a = firstCoreOfPmd(p);
            const CoreId b = secondCoreOfPmd(p);
            if (coreIdle[a] == 0 || coreIdle[b] == 0)
                continue;
            next = std::min(
                next, std::max(idleSince[a], idleSince[b]) + lead);
        }
    }
    return next;
}

Seconds
IdleStateTracker::coreC1Seconds(CoreId core, Seconds now) const
{
    if (!tracking)
        return 0.0;
    Seconds total = c1Acc[core];
    if (inC1[core] != 0)
        total += now - c1Since[core];
    return total;
}

Seconds
IdleStateTracker::pmdC6Seconds(PmdId pmd, Seconds now) const
{
    if (!tracking)
        return 0.0;
    Seconds total = c6Acc[pmd];
    if (inC6[pmd] != 0)
        total += now - c6Since[pmd];
    return total;
}

IdleStateTracker::State
IdleStateTracker::captureState() const
{
    State s;
    s.coreIdle = coreIdle;
    s.idleSince = idleSince;
    s.coreInC1 = inC1;
    s.c1Since = c1Since;
    s.c1Seconds = c1Acc;
    s.c1Entries = c1EntryCount;
    s.pmdInC6 = inC6;
    s.c6Since = c6Since;
    s.c6Seconds = c6Acc;
    s.c6Entries = c6EntryCount;
    s.transitionEpoch = transitionEpoch;
    return s;
}

void
IdleStateTracker::restoreState(const State &s)
{
    if (!tracking) {
        fatalIf(!s.coreIdle.empty(),
                "restoring c-state residency into a tracker built"
                " without c-states");
        return;
    }
    fatalIf(s.coreIdle.size() != numCores
                || s.pmdInC6.size() != numPmds,
            "idle-tracker snapshot shape mismatch");
    coreIdle = s.coreIdle;
    idleSince = s.idleSince;
    inC1 = s.coreInC1;
    c1Since = s.c1Since;
    c1Acc = s.c1Seconds;
    c1EntryCount = s.c1Entries;
    inC6 = s.pmdInC6;
    c6Since = s.c6Since;
    c6Acc = s.c6Seconds;
    c6EntryCount = s.c6Entries;
    transitionEpoch = s.transitionEpoch;
    gatedPmds = 0;
    for (PmdId p = 0; p < numPmds; ++p)
        gatedPmds += inC6[p] != 0 ? 1u : 0u;
    // The vectors were assigned (not swapped), but assignment can
    // reallocate only on growth; sizes are fixed, so the view's data
    // pointer stays valid.  Refresh it anyway to stay safe.
    view.coreDeepIdle = inC1.data();
    refreshLeakageScale();
}

} // namespace ecosched
