/**
 * @file
 * COREIDLE-style consolidation: policy/mechanism split.
 *
 * The *mechanism* is CoreIdleMaskPlacer: a placement policy that
 * runs the stock CFS-like spread greedy but excludes cores whose PMD
 * is in the idle mask, so light load packs onto the fewest whole
 * PMDs and the masked modules can sink into deep c-states.  With an
 * empty mask it is byte-identical to LinuxSpreadPlacer.  The mask is
 * soft: when the unmasked cores cannot host a process, the full core
 * set is used rather than queueing work behind idle hardware.
 *
 * The *policy* is CoreIdleGovernor: a hysteresis governor that sizes
 * the mask (grow the active set immediately on queue pressure or
 * high load, shrink only after sustained low load), migrates
 * straggler threads off newly masked PMDs, and drives frequencies —
 * ondemand-style proportional scaling by default, or pinned at fmax
 * in the race-to-idle variant (finish sooner, idle deeper), with
 * masked PMDs parked at the lowest ladder step.
 */

#ifndef ECOSCHED_IDLE_COREIDLE_HH
#define ECOSCHED_IDLE_COREIDLE_HH

#include <cstdint>

#include "common/units.hh"
#include "os/system.hh"

namespace ecosched {

/**
 * Mask-aware spread placer (the COREIDLE mechanism).  PMDs are
 * masked from the top of the chip: maskedPmds() == k masks the k
 * highest-numbered PMDs.
 */
class CoreIdleMaskPlacer : public PlacementPolicy
{
  public:
    const char *name() const override { return "coreidle-mask"; }

    std::vector<CoreId> place(const System &system,
                              const Process &process,
                              std::uint32_t threads) override;

    /// Mask the @p count highest-numbered PMDs (governor interface).
    void setMaskedPmds(std::uint32_t count) { maskCount = count; }

    /// Number of PMDs currently masked.
    std::uint32_t maskedPmds() const { return maskCount; }

  private:
    std::uint32_t maskCount = 0;
};

/**
 * Hysteresis consolidation governor (the COREIDLE policy).  Holds a
 * non-owning pointer to the mask placer it steers; both must be
 * installed on the same System and the placer must stay installed
 * for the governor's lifetime.
 */
class CoreIdleGovernor : public Governor
{
  public:
    struct Config
    {
        /// Tick throttle (matches ondemand's default period).
        Seconds samplingPeriod = units::ms(100);
        /// Ondemand-style up-threshold for active-PMD frequency.
        double upThreshold = 0.80;
        /// Active-set core occupancy above which the set grows by
        /// one PMD (queue pressure unmasks everything).
        double growThreshold = 0.75;
        /// Active-set core occupancy below which shrinking arms.
        double shrinkThreshold = 0.45;
        /// Sustained low-load time before one PMD is masked.
        Seconds shrinkHold = 1.0;
        /// Floor of the active set.
        std::uint32_t minActivePmds = 1;
        /// Migrate straggler threads off masked PMDs each tick.
        bool consolidate = true;
        /// Race to idle: pin active PMDs at fmax so work finishes
        /// sooner and the masked modules idle deeper/longer.
        bool raceToIdle = false;
    };

    CoreIdleGovernor(Config config, CoreIdleMaskPlacer *placer);

    const char *name() const override
    {
        return cfg.raceToIdle ? "race-to-idle" : "coreidle";
    }

    void tick(System &system) override;
    /// Quiescent while the sampling-period throttle holds.
    bool wouldAct(const System &system) const override;
    /// Next tick time, one timestep early (safety margin).
    Seconds nextActivity(const System &system) const override;
    std::vector<double> captureState() const override;
    void restoreState(const std::vector<double> &state) override;

    /// Current size of the active (unmasked) PMD set; 0 until the
    /// first tick sizes it to the chip.
    std::uint32_t activePmdCount() const { return activePmds; }

  private:
    void consolidate(System &system, std::uint32_t num_pmds);

    Config cfg;
    CoreIdleMaskPlacer *placer; ///< non-owning (see class docs)
    Seconds lastRun = -1.0;
    std::uint32_t activePmds = 0; ///< 0: not yet sized to the chip
    Seconds lowSince = -1.0;      ///< shrink-hysteresis arm time
};

} // namespace ecosched

#endif // ECOSCHED_IDLE_COREIDLE_HH
