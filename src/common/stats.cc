#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace ecosched {

void
RunningStats::add(double x)
{
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    minV = std::min(minV, x);
    maxV = std::max(maxV, x);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    *this = RunningStats{};
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.mu - mu;
    const double combined = na + nb;
    mu += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    n += other.n;
    total += other.total;
    minV = std::min(minV, other.minV);
    maxV = std::max(maxV, other.maxV);
}

MovingAverage::MovingAverage(double window_seconds)
    : window(window_seconds)
{
    fatalIf(window_seconds <= 0.0,
            "MovingAverage window must be positive, got ",
            window_seconds);
}

void
MovingAverage::add(double timestamp, double value)
{
    ECOSCHED_ASSERT(samples.empty() || timestamp >= samples.back().first,
                    "MovingAverage timestamps must be non-decreasing");
    samples.emplace_back(timestamp, value);
    runningSum += value;
    while (!samples.empty() &&
           samples.front().first < timestamp - window) {
        runningSum -= samples.front().second;
        samples.pop_front();
    }
}

double
MovingAverage::value() const
{
    if (samples.empty())
        return 0.0;
    return runningSum / static_cast<double>(samples.size());
}

Ewma::Ewma(double alpha)
    : weight(alpha)
{
    fatalIf(alpha <= 0.0 || alpha > 1.0,
            "Ewma alpha must be in (0, 1], got ", alpha);
}

void
Ewma::add(double x)
{
    if (!hasSample) {
        current = x;
        hasSample = true;
    } else {
        current = weight * x + (1.0 - weight) * current;
    }
}

void
Ewma::reset()
{
    current = 0.0;
    hasSample = false;
}

} // namespace ecosched
