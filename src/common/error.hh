/**
 * @file
 * Error-handling primitives for the ecosched library.
 *
 * Follows the gem5 fatal()/panic() distinction:
 *  - fatal():  the *user* did something wrong (bad configuration,
 *              invalid arguments).  Throws ecosched::FatalError so
 *              embedding applications can recover or report.
 *  - panic():  an internal invariant was violated (a library bug).
 *              Prints and aborts.
 */

#ifndef ECOSCHED_COMMON_ERROR_HH
#define ECOSCHED_COMMON_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ecosched {

/**
 * Exception thrown on unrecoverable *user* errors (bad configuration,
 * out-of-range knob values, malformed workload descriptions).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Abort the process after printing an internal-invariant violation.
 * Never returns.
 *
 * @param file Source file of the violated invariant.
 * @param line Source line of the violated invariant.
 * @param msg  Human-readable description.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

namespace detail {

/** Build a message string from a stream expression. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Throw FatalError with a message composed from the arguments.
 * Use for user-facing configuration errors.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concatMessage(std::forward<Args>(args)...));
}

/**
 * Require a user-supplied condition to hold; throws FatalError
 * otherwise.  Use at API boundaries to validate arguments.
 */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace ecosched

/** Abort on violated internal invariant (library bug). */
#define ECOSCHED_PANIC(msg) \
    ::ecosched::panicImpl(__FILE__, __LINE__, (msg))

/** Assert an internal invariant with a message; active in all builds. */
#define ECOSCHED_ASSERT(cond, msg)                                        \
    do {                                                                  \
        if (!(cond))                                                      \
            ::ecosched::panicImpl(__FILE__, __LINE__,                     \
                                  std::string("assertion failed: ")       \
                                      + #cond + ": " + (msg));            \
    } while (0)

/**
 * Assert an *expensive* internal invariant: compiled out under NDEBUG
 * (Release/RelWithDebInfo) so hot-path verification — recomputing a
 * cached value, rebuilding an incrementally maintained count — costs
 * nothing in optimized builds while the Debug/sanitizer CI jobs still
 * exercise it on every step.
 */
#ifdef NDEBUG
#define ECOSCHED_DEBUG_ASSERT(cond, msg) ((void)0)
#else
#define ECOSCHED_DEBUG_ASSERT(cond, msg) ECOSCHED_ASSERT(cond, msg)
#endif

#endif // ECOSCHED_COMMON_ERROR_HH
