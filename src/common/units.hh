/**
 * @file
 * Physical-unit aliases and conversion helpers.
 *
 * The library models voltages, frequencies, times, energies and powers
 * as plain doubles in SI base units (volts, hertz, seconds, joules,
 * watts).  The aliases below document intent at API boundaries, and
 * the helper functions/literals make call sites read like the paper
 * ("980 mV", "2.4 GHz", "500 ms").
 */

#ifndef ECOSCHED_COMMON_UNITS_HH
#define ECOSCHED_COMMON_UNITS_HH

#include <cstdint>

namespace ecosched {

/// Supply voltage in volts.
using Volt = double;
/// Clock frequency in hertz.
using Hertz = double;
/// Time duration or timestamp in seconds.
using Seconds = double;
/// Energy in joules.
using Joule = double;
/// Power in watts.
using Watt = double;
/// Memory bandwidth in bytes per second.
using BytesPerSecond = double;

/// Count of clock cycles.
using Cycles = std::uint64_t;
/// Count of retired instructions.
using Instructions = std::uint64_t;

namespace units {

/// Convert millivolts to volts.
constexpr Volt
mV(double millivolts)
{
    return millivolts * 1e-3;
}

/// Convert volts to millivolts (for reporting).
constexpr double
toMilliVolts(Volt v)
{
    return v * 1e3;
}

/// Convert gigahertz to hertz.
constexpr Hertz
GHz(double gigahertz)
{
    return gigahertz * 1e9;
}

/// Convert megahertz to hertz.
constexpr Hertz
MHz(double megahertz)
{
    return megahertz * 1e6;
}

/// Convert hertz to gigahertz (for reporting).
constexpr double
toGHz(Hertz f)
{
    return f * 1e-9;
}

/// Convert milliseconds to seconds.
constexpr Seconds
ms(double milliseconds)
{
    return milliseconds * 1e-3;
}

/// Convert microseconds to seconds.
constexpr Seconds
us(double microseconds)
{
    return microseconds * 1e-6;
}

/// Convert nanoseconds to seconds.
constexpr Seconds
ns(double nanoseconds)
{
    return nanoseconds * 1e-9;
}

/// Convert gibibytes-per-second to bytes-per-second.
constexpr BytesPerSecond
GiBps(double gibps)
{
    return gibps * 1024.0 * 1024.0 * 1024.0;
}

} // namespace units
} // namespace ecosched

#endif // ECOSCHED_COMMON_UNITS_HH
