#include "common/logging.hh"

#include <iostream>

namespace ecosched {

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Info:  return "info";
      case LogLevel::Debug: return "debug";
      case LogLevel::Trace: return "trace";
    }
    return "?";
}

Logger::Logger()
    : maxLevel(LogLevel::Warn), sink(&std::cerr)
{
}

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::write(LogLevel level, const std::string &msg)
{
    if (!enabled(level))
        return;
    (*sink) << "[" << logLevelName(level) << "] " << msg << "\n";
}

} // namespace ecosched
