#include "common/error.hh"

#include <cstdio>
#include <cstdlib>

namespace ecosched {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::abort();
}

} // namespace ecosched
