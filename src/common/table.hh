/**
 * @file
 * Plain-text table and CSV emission for the benchmark harness.
 *
 * Every reproduction binary prints its figure/table both as an
 * aligned console table (human comparison against the paper) and,
 * optionally, as CSV (machine post-processing / plotting).
 */

#ifndef ECOSCHED_COMMON_TABLE_HH
#define ECOSCHED_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ecosched {

/**
 * Column-aligned text table builder.
 *
 * Usage:
 * @code
 *   TextTable t({"benchmark", "Vmin (mV)"});
 *   t.addRow({"CG", "910"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /// Construct with header labels (fixes the column count).
    explicit TextTable(std::vector<std::string> header);

    /// Append a data row; must match the column count.
    void addRow(std::vector<std::string> row);

    /// Number of data rows.
    std::size_t numRows() const { return rows.size(); }

    /// Number of columns.
    std::size_t numCols() const { return columns.size(); }

    /// Render with aligned columns to the stream.
    void print(std::ostream &os) const;

    /// Render as RFC-4180-ish CSV (quoting fields with commas/quotes).
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

/// Format a double with the given number of decimals.
std::string formatDouble(double v, int decimals = 2);

/// Format a fraction (0.252 -> "25.2%").
std::string formatPercent(double fraction, int decimals = 1);

/**
 * Format a value in engineering style with an SI suffix, e.g.
 * 25578.3 -> "25.6k" (used for compact figure axes).
 */
std::string formatSi(double v, int decimals = 1);

} // namespace ecosched

#endif // ECOSCHED_COMMON_TABLE_HH
