/**
 * @file
 * Streaming statistics helpers used throughout the measurement and
 * reporting code: running mean/variance accumulators and the 1-minute
 * moving average the paper uses for the "average system load" plot
 * (Figure 15).
 */

#ifndef ECOSCHED_COMMON_STATS_HH
#define ECOSCHED_COMMON_STATS_HH

#include <cstddef>
#include <deque>
#include <limits>
#include <utility>

namespace ecosched {

/**
 * Welford running mean / variance / min / max accumulator.
 */
class RunningStats
{
  public:
    /// Add one sample.
    void add(double x);

    /// Number of samples seen so far.
    std::size_t count() const { return n; }

    /// Mean of the samples (0 when empty).
    double mean() const { return n ? mu : 0.0; }

    /// Unbiased sample variance (0 with fewer than two samples).
    double variance() const;

    /// Sample standard deviation.
    double stddev() const;

    /// Smallest sample (+inf when empty).
    double min() const { return minV; }

    /// Largest sample (-inf when empty).
    double max() const { return maxV; }

    /// Sum of all samples.
    double sum() const { return total; }

    /// Forget everything.
    void reset();

    /// Merge another accumulator into this one.
    void merge(const RunningStats &other);

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
};

/**
 * Time-windowed moving average over (timestamp, value) samples.
 *
 * Mirrors the presentation in the paper's Figure 15: "a moving average
 * of 1 minute with samples of 1 second".  Samples older than the
 * window relative to the newest sample are evicted.
 */
class MovingAverage
{
  public:
    /// @param window_seconds Width of the averaging window (> 0).
    explicit MovingAverage(double window_seconds);

    /// Add a sample taken at the given (non-decreasing) timestamp.
    void add(double timestamp, double value);

    /// Current windowed average (0 when empty).
    double value() const;

    /// Number of samples currently inside the window.
    std::size_t size() const { return samples.size(); }

  private:
    double window;
    double runningSum = 0.0;
    std::deque<std::pair<double, double>> samples;
};

/**
 * Exponentially weighted moving average with configurable smoothing.
 * Used by the daemon's classifier to de-noise L3C access-rate samples.
 */
class Ewma
{
  public:
    /// @param alpha Weight of the newest sample, in (0, 1].
    explicit Ewma(double alpha);

    /// Fold in one sample.
    void add(double x);

    /// Current smoothed value (0 before any sample).
    double value() const { return current; }

    /// Whether at least one sample has been folded in.
    bool seeded() const { return hasSample; }

    /// Forget everything.
    void reset();

  private:
    double weight;
    double current = 0.0;
    bool hasSample = false;
};

} // namespace ecosched

#endif // ECOSCHED_COMMON_STATS_HH
