#include "common/histogram.hh"

#include <cmath>
#include <sstream>

#include "common/error.hh"

namespace ecosched {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : rangeLo(lo), rangeHi(hi),
      width((hi - lo) / static_cast<double>(bins)),
      counts(bins, 0)
{
    fatalIf(!(hi > lo), "Histogram range must satisfy hi > lo");
    fatalIf(bins == 0, "Histogram needs at least one bin");
}

void
Histogram::add(double x, std::uint64_t weight)
{
    totalCount += weight;
    if (std::isnan(x)) {
        // NaN compares false against both range bounds and would
        // otherwise reach binIndex() — an out-of-bounds cast once
        // the inRange assert compiles out under NDEBUG.  Count it
        // as overflow so it is not silently dropped; quantile()
        // then pins it to the range top like any oversized sample.
        overflowCount += weight;
    } else if (x < rangeLo) {
        underflowCount += weight;
    } else if (x >= rangeHi) {
        overflowCount += weight;
    } else {
        counts[binIndex(x)] += weight;
    }
}

std::uint64_t
Histogram::binCount(std::size_t index) const
{
    ECOSCHED_ASSERT(index < counts.size(), "bin index out of range");
    return counts[index];
}

double
Histogram::binLo(std::size_t index) const
{
    ECOSCHED_ASSERT(index < counts.size(), "bin index out of range");
    return rangeLo + width * static_cast<double>(index);
}

double
Histogram::binHi(std::size_t index) const
{
    return binLo(index) + width;
}

std::size_t
Histogram::binIndex(double x) const
{
    ECOSCHED_ASSERT(inRange(x), "binIndex() on out-of-range value");
    auto idx = static_cast<std::size_t>((x - rangeLo) / width);
    // Guard against floating-point edge effects at the top boundary.
    if (idx >= counts.size())
        idx = counts.size() - 1;
    return idx;
}

std::uint64_t
Histogram::countInRange(double a, double b) const
{
    fatalIf(a < rangeLo || b > rangeHi || a > b,
            "countInRange() interval outside histogram range");
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (binLo(i) >= a - 1e-12 && binHi(i) <= b + 1e-12)
            sum += counts[i];
    }
    return sum;
}

double
Histogram::quantile(double q) const
{
    fatalIf(q < 0.0 || q > 1.0, "quantile fraction must be in [0, 1]");
    if (totalCount == 0)
        return 0.0;

    // Target rank in [0, total]; walk the cumulative counts.
    const double target = q * static_cast<double>(totalCount);
    double cumulative = static_cast<double>(underflowCount);
    if (target <= cumulative && underflowCount > 0)
        return rangeLo;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const auto c = static_cast<double>(counts[i]);
        if (c > 0.0 && target <= cumulative + c) {
            // Interpolate linearly within the bin.
            const double frac = (target - cumulative) / c;
            return binLo(i) + width * frac;
        }
        cumulative += c;
    }
    return rangeHi;
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    underflowCount = overflowCount = totalCount = 0;
}

std::string
Histogram::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        oss << "[" << binLo(i) << ", " << binHi(i) << "): "
            << counts[i] << "\n";
    }
    if (underflowCount)
        oss << "underflow: " << underflowCount << "\n";
    if (overflowCount)
        oss << "overflow: " << overflowCount << "\n";
    return oss.str();
}

} // namespace ecosched
