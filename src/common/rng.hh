/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulation (failure sampling,
 * workload generation, droop-event arrival) draw from Rng instances
 * seeded explicitly, so every experiment is exactly replayable — the
 * property the paper's workload generator relies on ("the generated
 * workload can be then invoked multiple times ... using different
 * policies", §VI.B).
 *
 * The core generator is xoshiro256**, seeded through SplitMix64.
 */

#ifndef ECOSCHED_COMMON_RNG_HH
#define ECOSCHED_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace ecosched {

/**
 * Deterministic random-number generator (xoshiro256**).
 *
 * Cheap to copy; forking a child stream with fork() produces an
 * independent generator so that adding draws in one component does not
 * perturb another component's sequence.
 */
class Rng
{
  public:
    /// Construct from a 64-bit seed (expanded via SplitMix64).
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /// Next raw 64-bit value.
    std::uint64_t next();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive).
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p);

    /// Normally distributed value (Box-Muller).
    double normal(double mean, double stddev);

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean);

    /**
     * Derive an independent child generator.  The child's seed is a
     * pure counter hash of this generator's current state and the
     * supplied stream id: forking consumes no draw from the parent,
     * so fork(i) is independent of how many siblings were forked
     * before it and in which order — distinct ids give distinct,
     * order-free streams.  (The experiment engine's determinism
     * guarantee relies on this: task i always sees the same stream
     * no matter which worker forks first.)
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::array<std::uint64_t, 4> state;
    /// Cached second Box-Muller variate (NaN when empty).
    double cachedNormal;
    bool hasCachedNormal = false;
};

} // namespace ecosched

#endif // ECOSCHED_COMMON_RNG_HH
