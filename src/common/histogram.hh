/**
 * @file
 * Fixed-width-bin histogram, used for droop-magnitude binning
 * (Figure 6 / Table II report droop detections per 10 mV magnitude
 * bin) and for distribution summaries in the evaluation harness.
 */

#ifndef ECOSCHED_COMMON_HISTOGRAM_HH
#define ECOSCHED_COMMON_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ecosched {

/**
 * Histogram over [lo, hi) with uniform bin width.  Samples outside the
 * range are counted in dedicated underflow/overflow buckets so no
 * sample is silently dropped.
 */
class Histogram
{
  public:
    /**
     * @param lo    Inclusive lower bound of the binned range.
     * @param hi    Exclusive upper bound of the binned range (> lo).
     * @param bins  Number of uniform bins (> 0).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /// Add one sample with unit weight.
    void add(double x) { add(x, 1); }

    /// Add one sample with the given weight.
    void add(double x, std::uint64_t weight);

    /// Count in bin @p index (0-based).
    std::uint64_t binCount(std::size_t index) const;

    /// Inclusive lower edge of bin @p index.
    double binLo(std::size_t index) const;

    /// Exclusive upper edge of bin @p index.
    double binHi(std::size_t index) const;

    /// Index of the bin containing @p x; valid only if inRange(x).
    std::size_t binIndex(double x) const;

    /// Whether @p x falls inside [lo, hi).
    bool inRange(double x) const { return x >= rangeLo && x < rangeHi; }

    /// Total count over a half-open value interval [a, b) — the
    /// interval must align with bin edges.
    std::uint64_t countInRange(double a, double b) const;

    /**
     * Estimate the @p q quantile (q in [0, 1]) of the recorded
     * distribution, interpolating linearly inside the bin that the
     * target rank falls into.  Underflow samples pin to the range's
     * lower bound, overflow samples to its upper bound — a quantile
     * landing there means the histogram range was too narrow.
     * Returns 0 for an empty histogram.
     */
    double quantile(double q) const;

    std::size_t numBins() const { return counts.size(); }
    std::uint64_t underflow() const { return underflowCount; }
    std::uint64_t overflow() const { return overflowCount; }
    std::uint64_t total() const { return totalCount; }

    /// Forget all samples (bin layout is kept).
    void reset();

    /// Render a compact one-line-per-bin textual summary.
    std::string toString() const;

  private:
    double rangeLo;
    double rangeHi;
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflowCount = 0;
    std::uint64_t overflowCount = 0;
    std::uint64_t totalCount = 0;
};

} // namespace ecosched

#endif // ECOSCHED_COMMON_HISTOGRAM_HH
