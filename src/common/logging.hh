/**
 * @file
 * Minimal leveled logging.
 *
 * The simulator and the daemon log through a process-global Logger so
 * test binaries can silence output and the scenario benches can
 * selectively surface daemon decisions (placement changes, V/F
 * transitions) when debugging a policy.
 */

#ifndef ECOSCHED_COMMON_LOGGING_HH
#define ECOSCHED_COMMON_LOGGING_HH

#include <ostream>
#include <sstream>
#include <string>

namespace ecosched {

/// Severity levels, increasing verbosity from Error to Trace.
enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

/// Human-readable name of a level ("warn", "info", ...).
const char *logLevelName(LogLevel level);

/**
 * Process-global logger.  Defaults to Warn level on std::cerr, which
 * keeps test and bench output clean.
 */
class Logger
{
  public:
    /// The process-global instance.
    static Logger &instance();

    /// Set the maximum level that will be emitted.
    void setLevel(LogLevel level) { maxLevel = level; }

    /// Current maximum level.
    LogLevel level() const { return maxLevel; }

    /// Redirect output (pass nullptr to silence entirely).
    void setStream(std::ostream *os) { sink = os; }

    /// Whether a message at @p level would be emitted.
    bool enabled(LogLevel level) const
    {
        return sink != nullptr && level <= maxLevel;
    }

    /// Emit one message (already formatted) at the given level.
    void write(LogLevel level, const std::string &msg);

  private:
    Logger();
    LogLevel maxLevel;
    std::ostream *sink;
};

namespace detail {

template <typename... Args>
void
logAt(LogLevel level, Args &&...args)
{
    Logger &logger = Logger::instance();
    if (!logger.enabled(level))
        return;
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    logger.write(level, oss.str());
}

} // namespace detail

/// Log at Error level.
template <typename... Args>
void logError(Args &&...args)
{ detail::logAt(LogLevel::Error, std::forward<Args>(args)...); }

/// Log at Warn level.
template <typename... Args>
void logWarn(Args &&...args)
{ detail::logAt(LogLevel::Warn, std::forward<Args>(args)...); }

/// Log at Info level.
template <typename... Args>
void logInfo(Args &&...args)
{ detail::logAt(LogLevel::Info, std::forward<Args>(args)...); }

/// Log at Debug level.
template <typename... Args>
void logDebug(Args &&...args)
{ detail::logAt(LogLevel::Debug, std::forward<Args>(args)...); }

/// Log at Trace level (very chatty: per-tick daemon decisions).
template <typename... Args>
void logTrace(Args &&...args)
{ detail::logAt(LogLevel::Trace, std::forward<Args>(args)...); }

} // namespace ecosched

#endif // ECOSCHED_COMMON_LOGGING_HH
