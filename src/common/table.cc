#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/error.hh"

namespace ecosched {

TextTable::TextTable(std::vector<std::string> header)
    : columns(std::move(header))
{
    fatalIf(columns.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    fatalIf(row.size() != columns.size(),
            "TextTable row has ", row.size(), " fields, expected ",
            columns.size());
    rows.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    emit_row(columns);
    std::string rule;
    for (std::size_t c = 0; c < columns.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 < columns.size())
            rule.append(2, '-');
    }
    os << rule << "\n";
    for (const auto &row : rows)
        emit_row(row);
}

namespace {

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << csvEscape(row[c]);
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    emit_row(columns);
    for (const auto &row : rows)
        emit_row(row);
}

std::string
formatDouble(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatDouble(fraction * 100.0, decimals) + "%";
}

std::string
formatSi(double v, int decimals)
{
    static const struct { double scale; const char *suffix; } steps[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
    };
    const double mag = std::fabs(v);
    for (const auto &step : steps) {
        if (mag >= step.scale)
            return formatDouble(v / step.scale, decimals) + step.suffix;
    }
    return formatDouble(v, decimals);
}

} // namespace ecosched
