#include "common/rng.hh"

#include <cmath>

#include "common/error.hh"

namespace ecosched {

namespace {

/// SplitMix64 step, used for seeding and stream derivation.
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitMix64(s);
    cachedNormal = 0.0;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    ECOSCHED_ASSERT(lo <= hi, "uniform() range inverted");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    ECOSCHED_ASSERT(lo <= hi, "uniformInt() range inverted");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + v % span;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal(double mean, double stddev)
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return mean + stddev * cachedNormal;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return mean + stddev * r * std::cos(theta);
}

double
Rng::exponential(double mean)
{
    ECOSCHED_ASSERT(mean > 0.0, "exponential() needs positive mean");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Pure counter hash of (state, stream id) — no parent draw, so
    // sibling forks cannot perturb each other's streams.
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const std::uint64_t word : state) {
        std::uint64_t s = h ^ word;
        h = splitMix64(s);
    }
    std::uint64_t s = h ^ (stream_id * 0xd1342543de82ef95ull + 1);
    return Rng(splitMix64(s));
}

} // namespace ecosched
