#include "exp/engine.hh"

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace ecosched {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("ECOSCHED_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
stripJobsFlag(int &argc, char **argv)
{
    unsigned jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
            const long v = std::atol(argv[++i]);
            if (v > 0)
                jobs = static_cast<unsigned>(v);
            continue;
        }
        if (std::strncmp(arg, "--jobs=", 7) == 0) {
            const long v = std::atol(arg + 7);
            if (v > 0)
                jobs = static_cast<unsigned>(v);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return jobs;
}

ExperimentEngine::ExperimentEngine(EngineConfig config)
    : cfg(config), jobCount(resolveJobs(config.jobs))
{
}

} // namespace ecosched
