/**
 * @file
 * ExperimentEngine: deterministic parallel fan-out of experiment
 * specs.
 *
 * The paper's evaluation is embarrassingly parallel — 1000 runs per
 * voltage level (§III), four policies x many workloads (Tables
 * III/IV) — and every run is a pure function of its spec.  The
 * engine exploits that: it fans a vector of specs across a fixed
 * ThreadPool while guaranteeing the results are **bit-identical
 * regardless of thread count or completion order**:
 *
 *  - every task index i draws its randomness from an independent
 *    stream Rng(baseSeed).fork(i) (fork is a pure counter hash, so
 *    sibling streams never perturb each other);
 *  - results are collected into a vector slot per task index, so
 *    output order equals spec order, not completion order;
 *  - `jobs == 1` runs the tasks inline on the calling thread through
 *    the same seeding path, preserving serial behaviour exactly.
 *
 * Job-count resolution: an explicit count wins, else the
 * ECOSCHED_JOBS environment variable, else the hardware concurrency.
 */

#ifndef ECOSCHED_EXP_ENGINE_HH
#define ECOSCHED_EXP_ENGINE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "common/rng.hh"
#include "exp/thread_pool.hh"

namespace ecosched {

/// Engine knobs.
struct EngineConfig
{
    /// Worker count; 0 resolves via ECOSCHED_JOBS, then hardware
    /// concurrency.
    unsigned jobs = 0;
    /// Root of the per-task seed tree.
    std::uint64_t baseSeed = 1;
};

/**
 * Resolve a requested job count: @p requested if positive, else
 * ECOSCHED_JOBS if set and positive, else hardware concurrency
 * (at least 1).
 */
unsigned resolveJobs(unsigned requested);

/**
 * Strip a `--jobs N` / `--jobs=N` option from an argv vector and
 * return the parsed count (0 when absent).  Lets every bench accept
 * the knob without disturbing its positional arguments.
 */
unsigned stripJobsFlag(int &argc, char **argv);

class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineConfig config = EngineConfig{});

    /// Resolved worker count (>= 1).
    unsigned jobs() const { return jobCount; }

    std::uint64_t baseSeed() const { return cfg.baseSeed; }

    /// Independent, order-free random stream for task @p index.
    Rng taskRng(std::uint64_t index) const
    {
        return Rng(cfg.baseSeed).fork(index);
    }

    /**
     * Evaluate fn(i, rng_i) for i in [0, n) and return the results in
     * index order.  rng_i is the task's private stream (taskRng(i)),
     * so the output is a pure function of (baseSeed, n, fn) — the
     * job count only changes wall-clock time.  The first exception
     * (in task order) is rethrown after all tasks settle.
     */
    template <typename R>
    std::vector<R> map(std::size_t n,
                       const std::function<R(std::size_t, Rng &)> &fn)
        const
    {
        std::vector<R> out(n);
        if (n == 0)
            return out;
        if (jobCount == 1 || n == 1) {
            for (std::size_t i = 0; i < n; ++i) {
                Rng rng = taskRng(i);
                out[i] = fn(i, rng);
            }
            return out;
        }
        std::vector<std::exception_ptr> errors(n);
        ThreadPool pool(std::min<std::size_t>(jobCount, n));
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&, i] {
                Rng rng = taskRng(i);
                try {
                    out[i] = fn(i, rng);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
        for (const auto &e : errors) {
            if (e)
                std::rethrow_exception(e);
        }
        return out;
    }

    /**
     * Convenience overload: map over a spec vector.  fn receives the
     * task index, the spec and the task's private random stream.
     */
    template <typename R, typename Spec>
    std::vector<R> mapSpecs(
        const std::vector<Spec> &specs,
        const std::function<R(std::size_t, const Spec &, Rng &)> &fn)
        const
    {
        return map<R>(specs.size(),
                      [&](std::size_t i, Rng &rng) {
                          return fn(i, specs[i], rng);
                      });
    }

  private:
    EngineConfig cfg;
    unsigned jobCount;
};

} // namespace ecosched

#endif // ECOSCHED_EXP_ENGINE_HH
