/**
 * @file
 * Keyed arena pool for snapshot-and-branch sweep execution.
 *
 * Large sweeps re-run near-identical stacks thousands of times; the
 * expensive shared prefix (construction, characterization, any
 * configured warm-up) is a pure function of a prototype key.  The
 * pool keeps fully built arenas per key: the first acquisition of a
 * key builds the arena (simulating the prefix once), every later
 * acquisition reuses an idle arena after a caller-supplied reset —
 * for simulation stacks, restoring the pristine snapshot captured at
 * the divergence point.  Steady-state sweep execution therefore does
 * zero stack construction and near-zero allocation.
 *
 * Concurrency: at most one lease owns an arena at a time, so workers
 * on the experiment ThreadPool each hold their own arena — the pool
 * converges on ~jobs arenas per hot key.  Determinism is untouched:
 * a reset arena is bit-identical to a fresh build (pinned by the
 * snapshot round-trip tests), so results stay pure functions of the
 * spec no matter which worker reuses which arena.
 */

#ifndef ECOSCHED_EXP_PROTOTYPE_CACHE_HH
#define ECOSCHED_EXP_PROTOTYPE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ecosched {

/**
 * Pool of reusable arenas of type T, keyed by a 64-bit prototype
 * key.  T is opaque to the pool; building and resetting are supplied
 * per acquisition.
 */
template <typename T>
class ArenaPool
{
  public:
    /// Build/reuse counters (one build per arena ever constructed).
    struct Stats
    {
        std::size_t builds = 0;  ///< arenas constructed
        std::size_t reuses = 0;  ///< acquisitions served by reset
    };

    /**
     * Exclusive ownership of one arena for the duration of a unit of
     * work; returns the arena to the pool's idle list on
     * destruction.  Movable, not copyable.
     */
    class Lease
    {
      public:
        Lease() = default;
        Lease(ArenaPool *pool, std::uint64_t key,
              std::unique_ptr<T> arena)
            : owner(pool), arenaKey(key), held(std::move(arena))
        {
        }

        Lease(Lease &&other) noexcept
            : owner(other.owner), arenaKey(other.arenaKey),
              held(std::move(other.held))
        {
            other.owner = nullptr;
        }

        Lease &operator=(Lease &&other) noexcept
        {
            if (this != &other) {
                release();
                owner = other.owner;
                arenaKey = other.arenaKey;
                held = std::move(other.held);
                other.owner = nullptr;
            }
            return *this;
        }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        ~Lease() { release(); }

        explicit operator bool() const { return held != nullptr; }
        T &operator*() { return *held; }
        T *operator->() { return held.get(); }
        T *get() { return held.get(); }

      private:
        void release()
        {
            if (owner != nullptr && held != nullptr)
                owner->put(arenaKey, std::move(held));
            owner = nullptr;
            held.reset();
        }

        ArenaPool *owner = nullptr;
        std::uint64_t arenaKey = 0;
        std::unique_ptr<T> held;
    };

    /**
     * Acquire an arena for @p key: reuse an idle one (after
     * @p reset(arena)) or construct via @p build().  Both callbacks
     * run outside the pool lock, so arena construction and restore
     * never serialize the workers.
     */
    Lease acquire(std::uint64_t key,
                  const std::function<std::unique_ptr<T>()> &build,
                  const std::function<void(T &)> &reset)
    {
        std::unique_ptr<T> arena;
        {
            std::lock_guard<std::mutex> lock(mtx);
            auto it = idle.find(key);
            if (it != idle.end() && !it->second.empty()) {
                arena = std::move(it->second.back());
                it->second.pop_back();
                ++counters.reuses;
            } else {
                ++counters.builds;
            }
        }
        if (arena != nullptr)
            reset(*arena);
        else
            arena = build();
        return Lease(this, key, std::move(arena));
    }

    Stats stats() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return counters;
    }

    /// Idle arenas currently parked for @p key.
    std::size_t idleCount(std::uint64_t key) const
    {
        std::lock_guard<std::mutex> lock(mtx);
        const auto it = idle.find(key);
        return it == idle.end() ? 0 : it->second.size();
    }

    /// Idle arenas currently parked, all keys together.
    std::size_t idleCount() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        std::size_t n = 0;
        for (const auto &[key, arenas] : idle)
            n += arenas.size();
        return n;
    }

  private:
    void put(std::uint64_t key, std::unique_ptr<T> arena)
    {
        std::lock_guard<std::mutex> lock(mtx);
        idle[key].push_back(std::move(arena));
    }

    mutable std::mutex mtx;
    std::unordered_map<std::uint64_t,
                       std::vector<std::unique_ptr<T>>>
        idle;
    Stats counters;
};

} // namespace ecosched

#endif // ECOSCHED_EXP_PROTOTYPE_CACHE_HH
