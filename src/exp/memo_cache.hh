/**
 * @file
 * Config-hash-keyed memoization cache for experiment results.
 *
 * Several figures sample the same (chip, frequency, allocation,
 * threads, benchmark) point — e.g. Figures 11 and 12 share their
 * whole configuration grid.  Because every experiment is a pure
 * function of its spec (all randomness is seeded from the spec), a
 * result computed once can be replayed from the cache bit-identically
 * no matter which figure, thread or job count asks first.
 */

#ifndef ECOSCHED_EXP_MEMO_CACHE_HH
#define ECOSCHED_EXP_MEMO_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace ecosched {

/**
 * Incremental 64-bit hash for experiment-spec keys (FNV-1a over the
 * mixed-in fields).  Mix in every field that influences the result;
 * two specs with equal keys are assumed interchangeable.
 */
class ConfigKey
{
  public:
    ConfigKey &mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 0x100000001b3ull;
        }
        return *this;
    }

    ConfigKey &mix(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        __builtin_memcpy(&bits, &v, sizeof bits);
        return mix(bits);
    }

    ConfigKey &mix(std::string_view s)
    {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
        return mix(static_cast<std::uint64_t>(s.size()));
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
};

/**
 * Thread-safe memoization cache keyed by ConfigKey hashes.
 *
 * Values are computed outside the lock, so two threads racing on the
 * same fresh key may both compute it; the first insert wins and both
 * callers observe the same stored value.  That duplicate work is
 * harmless precisely because experiments are deterministic functions
 * of their key.
 */
template <typename V>
class MemoCache
{
  public:
    /// Return the cached value for @p key, computing it via @p fn on
    /// a miss.
    V getOrCompute(std::uint64_t key, const std::function<V()> &fn)
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            auto it = values.find(key);
            if (it != values.end()) {
                ++hitCount;
                return it->second;
            }
        }
        V fresh = fn();
        std::lock_guard<std::mutex> lock(mtx);
        auto [it, inserted] = values.emplace(key, std::move(fresh));
        if (inserted)
            ++missCount;
        else
            ++hitCount; // lost the race; surface the winner's value
        return it->second;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return values.size();
    }

    std::size_t hits() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return hitCount;
    }

    std::size_t misses() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return missCount;
    }

  private:
    mutable std::mutex mtx;
    std::unordered_map<std::uint64_t, V> values;
    std::size_t hitCount = 0;
    std::size_t missCount = 0;
};

} // namespace ecosched

#endif // ECOSCHED_EXP_MEMO_CACHE_HH
