/**
 * @file
 * Config-hash-keyed memoization cache for experiment results.
 *
 * Several figures sample the same (chip, frequency, allocation,
 * threads, benchmark) point — e.g. Figures 11 and 12 share their
 * whole configuration grid.  Because every experiment is a pure
 * function of its spec (all randomness is seeded from the spec), a
 * result computed once can be replayed from the cache bit-identically
 * no matter which figure, thread or job count asks first.
 *
 * The cache is bounded: long campaigns sweep far more distinct specs
 * than they revisit, so entries are evicted least-recently-used once
 * the cap is reached (default from ECOSCHED_MEMO_CAP).
 */

#ifndef ECOSCHED_EXP_MEMO_CACHE_HH
#define ECOSCHED_EXP_MEMO_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <list>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace ecosched {

/**
 * Incremental 64-bit hash for experiment-spec keys (FNV-1a over the
 * mixed-in fields).  Mix in every field that influences the result;
 * two specs with equal keys are assumed interchangeable.
 *
 * Every field is framed so the byte stream decodes unambiguously: a
 * type-tag byte starts each field and strings announce their length
 * before their contents.  Without the framing, adjacent fields could
 * collide across their boundary — e.g. mix("A").mix(uint64{9}) fed
 * exactly the same bytes as mix() of the single 9-byte string
 * "A\x01\0\0\0\0\0\0\0" (the old content-then-size string encoding),
 * so two different specs shared one key.
 */
class ConfigKey
{
  public:
    ConfigKey &mix(std::uint64_t v)
    {
        mixByte(tagU64);
        mixRaw(v);
        return *this;
    }

    ConfigKey &mix(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        __builtin_memcpy(&bits, &v, sizeof bits);
        mixByte(tagDouble);
        mixRaw(bits);
        return *this;
    }

    ConfigKey &mix(std::string_view s)
    {
        mixByte(tagString);
        mixRaw(static_cast<std::uint64_t>(s.size()));
        for (const char c : s)
            mixByte(static_cast<unsigned char>(c));
        return *this;
    }

    std::uint64_t value() const { return h; }

  private:
    // Field framing: one tag byte per field; strings are
    // length-prefixed so their extent is known before their bytes.
    static constexpr unsigned char tagU64 = 0x01;
    static constexpr unsigned char tagDouble = 0x02;
    static constexpr unsigned char tagString = 0x03;

    void mixByte(unsigned char b)
    {
        h ^= b;
        h *= 0x100000001b3ull;
    }

    void mixRaw(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            mixByte(static_cast<unsigned char>((v >> (8 * i))
                                               & 0xffu));
    }

    std::uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
};

/**
 * Thread-safe, bounded memoization cache keyed by ConfigKey hashes.
 *
 * Values are computed outside the lock, so two threads racing on the
 * same fresh key may both compute it; the first insert wins and both
 * callers observe the same stored value.  That duplicate work is
 * harmless precisely because experiments are deterministic functions
 * of their key.
 *
 * Growth is bounded by an LRU entry cap: the default comes from the
 * ECOSCHED_MEMO_CAP environment variable (entries; falls back to
 * 4096), and an explicit constructor argument overrides both.
 * Evicting only ever costs a recompute, never correctness.
 */
template <typename V>
class MemoCache
{
  public:
    /// @param max_entries Entry cap; 0 resolves ECOSCHED_MEMO_CAP,
    ///        then the built-in default.
    explicit MemoCache(std::size_t max_entries = 0)
        : cap(max_entries > 0 ? max_entries : defaultCapacity())
    {
    }

    /// Return the cached value for @p key, computing it via @p fn on
    /// a miss.
    V getOrCompute(std::uint64_t key, const std::function<V()> &fn)
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            auto it = index.find(key);
            if (it != index.end()) {
                ++hitCount;
                lru.splice(lru.begin(), lru, it->second);
                return it->second->second;
            }
        }
        V fresh = fn();
        std::lock_guard<std::mutex> lock(mtx);
        auto it = index.find(key);
        if (it != index.end()) {
            // Lost the race; surface the winner's value.
            ++hitCount;
            lru.splice(lru.begin(), lru, it->second);
            return it->second->second;
        }
        ++missCount;
        lru.emplace_front(key, std::move(fresh));
        index.emplace(key, lru.begin());
        while (lru.size() > cap) {
            index.erase(lru.back().first);
            lru.pop_back();
            ++evictionCount;
        }
        return lru.front().second;
    }

    /// Entry cap in force.
    std::size_t capacity() const { return cap; }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return lru.size();
    }

    std::size_t hits() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return hitCount;
    }

    std::size_t misses() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return missCount;
    }

    std::size_t evictions() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return evictionCount;
    }

  private:
    static std::size_t defaultCapacity()
    {
        if (const char *env = std::getenv("ECOSCHED_MEMO_CAP")) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(env, &end, 10);
            if (end != env && *end == '\0' && v > 0)
                return static_cast<std::size_t>(v);
        }
        return 4096;
    }

    mutable std::mutex mtx;
    /// Front = most recently used; entries own the values.
    std::list<std::pair<std::uint64_t, V>> lru;
    std::unordered_map<std::uint64_t,
                       typename std::list<
                           std::pair<std::uint64_t, V>>::iterator>
        index;
    std::size_t cap;
    std::size_t hitCount = 0;
    std::size_t missCount = 0;
    std::size_t evictionCount = 0;
};

} // namespace ecosched

#endif // ECOSCHED_EXP_MEMO_CACHE_HH
