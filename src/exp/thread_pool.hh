/**
 * @file
 * Fixed-size worker pool for the experiment engine.
 *
 * Deliberately minimal: one shared FIFO queue, a fixed number of
 * workers, no work stealing.  Experiment tasks are coarse (whole
 * simulation runs), so a single locked queue is nowhere near
 * contention and keeps the scheduling order easy to reason about.
 */

#ifndef ECOSCHED_EXP_THREAD_POOL_HH
#define ECOSCHED_EXP_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecosched {

/**
 * Fixed-size thread pool.  Tasks submitted with submit() run on the
 * workers in FIFO order; wait() blocks until every submitted task has
 * finished.  The destructor drains the queue and joins the workers.
 *
 * Tasks must not throw — the engine wraps user callables and captures
 * their exceptions per task (see ExperimentEngine::map).
 */
class ThreadPool
{
  public:
    /// Spawn @p threads workers (at least one).
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Waits for all pending tasks, then joins the workers.
    ~ThreadPool();

    /// Enqueue one task.
    void submit(std::function<void()> task);

    /// Block until every task submitted so far has completed.
    void wait();

    /// Number of worker threads.
    unsigned size() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable wakeWorker; ///< queue became non-empty
    std::condition_variable allDone;    ///< inFlight + queue hit zero
    std::deque<std::function<void()>> queue;
    std::size_t inFlight = 0; ///< tasks popped but not yet finished
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace ecosched

#endif // ECOSCHED_EXP_THREAD_POOL_HH
