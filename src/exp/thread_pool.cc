#include "exp/thread_pool.hh"

#include <algorithm>
#include <utility>

namespace ecosched {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::max(1u, threads);
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    wakeWorker.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        queue.push_back(std::move(task));
    }
    wakeWorker.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    allDone.wait(lock,
                 [this] { return queue.empty() && inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wakeWorker.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mtx);
            --inFlight;
            if (queue.empty() && inFlight == 0)
                allDone.notify_all();
        }
    }
}

} // namespace ecosched
