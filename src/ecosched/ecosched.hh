/**
 * @file
 * Umbrella header: the full EcoSched public API.
 *
 * EcoSched reproduces "Adaptive Voltage/Frequency Scaling and Core
 * Allocation for Balanced Energy and Performance on Multicore CPUs"
 * (HPCA 2019): a simulated X-Gene-class platform (chip topology,
 * power, voltage margins, droops, execution) plus the paper's online
 * monitoring daemon and its evaluation harness.
 *
 * Typical entry points:
 *  - xGene2() / xGene3():   chip presets (Table I)
 *  - Machine:               a simulated node
 *  - System:                OS layer (scheduler + governors)
 *  - Daemon:                the paper's monitoring/placement daemon
 *  - configurePolicy():     Baseline / SafeVmin / Placement / Optimal
 *  - WorkloadGenerator:     §VI.B random server workloads
 *  - ScenarioRunner:        Tables III/IV & Figures 14/15 quantities
 *  - VminCharacterizer:     §III Vmin sweeps (Figures 3-5)
 *  - ClusterSim:            multi-node fleet with open arrivals and
 *                           pluggable dispatch (production scale-out)
 */

#ifndef ECOSCHED_ECOSCHED_HH
#define ECOSCHED_ECOSCHED_HH

#include "cluster/cluster.hh"
#include "cluster/dispatch.hh"
#include "cluster/node.hh"
#include "cluster/traffic.hh"
#include "common/error.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "core/classifier.hh"
#include "core/daemon.hh"
#include "core/droop_table.hh"
#include "core/placement.hh"
#include "core/policy.hh"
#include "core/scenario.hh"
#include "core/sim_stack.hh"
#include "exp/engine.hh"
#include "exp/memo_cache.hh"
#include "exp/prototype_cache.hh"
#include "exp/thread_pool.hh"
#include "idle/coreidle.hh"
#include "idle/idle_tracker.hh"
#include "inject/campaign.hh"
#include "inject/fault_plan.hh"
#include "inject/injector.hh"
#include "os/governor.hh"
#include "os/perf_reader.hh"
#include "os/process.hh"
#include "os/system.hh"
#include "platform/chip.hh"
#include "platform/chip_spec.hh"
#include "platform/slimpro.hh"
#include "platform/topology.hh"
#include "power/energy_meter.hh"
#include "power/power_model.hh"
#include "search/analytic_model.hh"
#include "search/config_space.hh"
#include "search/sweep_search.hh"
#include "sim/machine.hh"
#include "sim/memory_system.hh"
#include "sim/perf_counters.hh"
#include "sim/work_profile.hh"
#include "vmin/characterizer.hh"
#include "vmin/droop_model.hh"
#include "vmin/failure_model.hh"
#include "vmin/vmin_model.hh"
#include "workloads/benchmark.hh"
#include "workloads/catalog.hh"
#include "workloads/generator.hh"

#endif // ECOSCHED_ECOSCHED_HH
