/**
 * @file
 * Energy integration over a simulation run.
 *
 * Accumulates the PowerModel's instantaneous decomposition over time
 * and reports totals, averages and peaks — the quantities the paper's
 * Tables III/IV report per configuration (time, average power,
 * energy) plus EDP/ED2P helpers (§V.B).
 */

#ifndef ECOSCHED_POWER_ENERGY_METER_HH
#define ECOSCHED_POWER_ENERGY_METER_HH

#include "common/units.hh"
#include "power/power_model.hh"

namespace ecosched {

/**
 * Left-rectangle energy integrator with per-component breakdown.
 */
class EnergyMeter
{
  public:
    /// Integrate @p power held constant over an interval @p dt.
    void add(Seconds dt, const PowerBreakdown &power);

    /// Total integrated energy.
    Joule energy() const { return totalJ; }

    /// Integrated energy of the core-dynamic component.
    Joule coreDynamicEnergy() const { return coreJ; }

    /// Integrated energy of the PMD-overhead component.
    Joule pmdOverheadEnergy() const { return pmdJ; }

    /// Integrated energy of the uncore component.
    Joule uncoreEnergy() const { return uncoreJ; }

    /// Integrated leakage energy.
    Joule leakageEnergy() const { return leakJ; }

    /// Total integration time.
    Seconds elapsed() const { return elapsedS; }

    /// Average power over the integrated interval (0 when empty).
    Watt averagePower() const;

    /// Highest instantaneous total power seen.
    Watt peakPower() const { return peakW; }

    /// Energy-delay product  E * D  over the integrated interval.
    double edp() const { return totalJ * elapsedS; }

    /// Energy-delay-squared product  E * D^2  (the paper's metric).
    double ed2p() const { return totalJ * elapsedS * elapsedS; }

    /// Forget everything.
    void reset();

  private:
    Joule totalJ = 0.0;
    Joule coreJ = 0.0;
    Joule pmdJ = 0.0;
    Joule uncoreJ = 0.0;
    Joule leakJ = 0.0;
    Seconds elapsedS = 0.0;
    Watt peakW = 0.0;
};

/// Energy-delay product for externally measured quantities.
double energyDelayProduct(Joule energy, Seconds delay);

/// Energy-delay-squared product for externally measured quantities.
double energyDelaySquaredProduct(Joule energy, Seconds delay);

} // namespace ecosched

#endif // ECOSCHED_POWER_ENERGY_METER_HH
