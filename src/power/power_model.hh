/**
 * @file
 * Physical power model of the PCP (Processor ComPlex) power domain.
 *
 * The paper measures chip power on real hardware; we substitute a
 * standard CMOS decomposition, calibrated per chip so the evaluation
 * scenario lands near the paper's measured averages (6.9 W X-Gene 2 /
 * 36.5 W X-Gene 3 baseline):
 *
 *   P = sum_cores  Cdyn_core * V^2 * f * act      (core switching)
 *     + sum_pmds   Cdyn_pmd  * V^2 * f            (L2 + clock tree)
 *     + Cdyn_unc * V^2 * f_unc                    (L3 + MC clocks)
 *     + E_l3  * V^2/Vnom^2 * l3_rate              (L3 access energy)
 *     + E_dram* V^2/Vnom^2 * dram_rate            (MC access energy)
 *     + Ileak0 * V * exp(kL * (V - Vnom))         (leakage)
 *
 * Clock-gated PMDs contribute no dynamic power but still leak —
 * exactly the asymmetry the clustered allocation exploits (fewer
 * utilized PMDs -> less clock/L2 power and a lower safe Vmin).
 */

#ifndef ECOSCHED_POWER_POWER_MODEL_HH
#define ECOSCHED_POWER_POWER_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "platform/chip.hh"

namespace ecosched {

/// Per-core activity inputs for one evaluation instant.
struct CoreActivity
{
    /// Fraction of the interval the core was busy, in [0, 1].
    double utilization = 0.0;
    /**
     * Workload switching-activity factor relative to a typical
     * integer workload (1.0).  CPU-intensive FP code runs hotter
     * (~1.1-1.3); stall-heavy memory-bound code lower (~0.6-0.8).
     */
    double switchingFactor = 1.0;

    friend bool operator==(const CoreActivity &,
                           const CoreActivity &) = default;
};

/// Chip-wide uncore activity inputs for one evaluation instant.
struct UncoreActivity
{
    double l3AccessesPerSec = 0.0;   ///< L3 lookups per second
    double dramAccessesPerSec = 0.0; ///< memory-controller accesses/s

    friend bool operator==(const UncoreActivity &,
                           const UncoreActivity &) = default;
};

/**
 * Occupancy-derived idle-state residency inputs for one evaluation
 * instant (filled by the sim layer's IdleStateTracker).  Replaces
 * the flat idle floor: a core resident in the per-core c-state stops
 * its idle clock (@c coreIdleClockScale on top of idleClockFactor),
 * and every PMD resident in the per-PMD c-state gates its share of
 * chip leakage (@c leakageScale < 1).  A null view means the
 * platform has no c-states; the arithmetic then stays byte-for-byte
 * the pre-idle-subsystem model.
 */
struct IdlePowerView
{
    /// Per-core flag (numCores entries): core is in the per-core
    /// deep-idle state (its idle clock is stopped/scaled).
    const std::uint8_t *coreDeepIdle = nullptr;
    /// idleClockFactor multiplier for deep-idle cores.
    double coreIdleClockScale = 0.0;
    /// Chip-leakage multiplier from PMD-level power gating, in
    /// (0, 1]; 1 when no PMD is gated down.
    double leakageScale = 1.0;
};

/// Decomposed power result.
struct PowerBreakdown
{
    Watt coreDynamic = 0.0;   ///< all cores' switching power
    Watt pmdOverhead = 0.0;   ///< per-PMD L2/clock-tree power
    Watt uncoreDynamic = 0.0; ///< L3/MC clocks + access energy
    Watt leakage = 0.0;       ///< static power of the PCP domain

    Watt total() const
    {
        return coreDynamic + pmdOverhead + uncoreDynamic + leakage;
    }
};

/// Calibration constants of the power model.
struct PowerParams
{
    double cdynCore;        ///< effective core capacitance [F]
    double cdynPmd;         ///< per-PMD overhead capacitance [F]
    double cdynUncore;      ///< uncore clock capacitance [F]
    Hertz uncoreClock;      ///< fixed uncore clock frequency
    double idleClockFactor; ///< idle-but-ungated core activity
    Joule l3AccessEnergy;   ///< per-L3-access energy at Vnom
    Joule dramAccessEnergy; ///< per-MC-access energy at Vnom
    double leakageAmps;     ///< Ileak0: leakage current at Vnom [A]
    double leakageExpPerVolt; ///< kL: leakage voltage sensitivity

    /// Calibrated constants for a known chip (matched by name).
    static PowerParams forChip(const ChipSpec &spec);

    /// Sanity-check the constants. @throws FatalError when invalid.
    void validate() const;
};

/**
 * Evaluates the decomposition above against a Chip's current V/F
 * state.  Stateless: integrate with EnergyMeter.
 */
class PowerModel
{
  public:
    /// Build for a chip spec with explicit constants.
    PowerModel(ChipSpec spec, PowerParams params);

    /// Build with the calibrated per-chip default constants.
    explicit PowerModel(const ChipSpec &spec)
        : PowerModel(spec, PowerParams::forChip(spec))
    {}

    /// Calibration constants in use.
    const PowerParams &params() const { return modelParams; }

    /// Dynamic power of one core given its activity.  @p idle (may
    /// be null) scales the idle clock of deep-idle cores.
    Watt corePower(const Chip &chip, CoreId core,
                   const CoreActivity &activity,
                   const IdlePowerView *idle = nullptr) const;

    /// Clock/L2 overhead power of one PMD (0 when gated).
    Watt pmdOverheadPower(const Chip &chip, PmdId pmd) const;

    /// Uncore power: fixed clocks plus access energy.
    Watt uncorePower(const Chip &chip,
                     const UncoreActivity &activity) const;

    /// Static leakage power at the chip's current voltage.  @p idle
    /// (may be null) applies PMD power-gating (c6 residency).
    Watt leakagePower(const Chip &chip,
                      const IdlePowerView *idle = nullptr) const;

    /**
     * Full decomposition.  @p core_activity must have one entry per
     * core of the chip.  @p idle (may be null) carries the
     * occupancy-derived idle-state residency.
     */
    PowerBreakdown totalPower(const Chip &chip,
                              const std::vector<CoreActivity>
                                  &core_activity,
                              const UncoreActivity &uncore,
                              const IdlePowerView *idle
                                  = nullptr) const;

  private:
    ChipSpec chipSpec;
    PowerParams modelParams;
};

/**
 * Memoizes PowerModel::totalPower behind an O(1) step key: the
 * chip's state epoch (bumped only when voltage, a PMD frequency, or
 * a gate actually changes), the machine's thread-set version sampled
 * both *before and after* the step's execute phase, the stalled
 * count, and the step length.  Those values pin the per-core
 * activity and uncore access rates exactly:
 *
 *  - steady steps of one version run share (V, V) and retire
 *    identical per-step work, hence identical activity;
 *  - a step that hits a finish or phase boundary — and hence
 *    produces a different utilization — bumps the version during
 *    execute, giving it the unique pair (V, V') with V' > V (only
 *    one step can ever depart version V);
 *  - the stalled subset is a threshold family determined by its
 *    count, and all rates divide by dt.
 *
 * In steady state the per-step power evaluation collapses to five
 * scalar compares.  Debug builds verify the pinned inputs on every
 * hit (ECOSCHED_DEBUG_ASSERT).
 *
 * The cached value is the raw model output — callers that post-scale
 * (e.g. thermal leakage) must copy, not mutate in place.
 */
class PowerCache
{
  public:
    /**
     * Evaluate (or replay) the breakdown for the given inputs.
     * @p version_pre / @p version_post are the thread-set version
     * before and after the caller's execute phase; @p stalled is
     * sampled pre-execute; @p dt is the step length whose rates
     * @p core_activity and @p uncore reflect.  @p idle is the
     * idle-state residency view (null when the platform has no
     * c-states) and @p idle_epoch its transition epoch — it pins the
     * view's contents the same way the chip epoch pins V/F state.
     */
    const PowerBreakdown &evaluate(
        const PowerModel &model, const Chip &chip,
        const std::vector<CoreActivity> &core_activity,
        const UncoreActivity &uncore,
        std::uint64_t version_pre, std::uint64_t version_post,
        std::uint32_t stalled, Seconds dt,
        const IdlePowerView *idle = nullptr,
        std::uint64_t idle_epoch = 0);

    /// Drop the cached breakdown.
    void invalidate() { valid = false; }

  private:
    std::vector<CoreActivity> keyActivity; ///< hit verification only
    UncoreActivity keyUncore;              ///< hit verification only
    std::uint64_t keyEpoch = 0;
    std::uint64_t keyVersionPre = 0;
    std::uint64_t keyVersionPost = 0;
    std::uint32_t keyStalled = 0;
    Seconds keyDt = 0.0;
    std::uint64_t keyIdleEpoch = 0;
    PowerBreakdown value;
    bool valid = false;
};

} // namespace ecosched

#endif // ECOSCHED_POWER_POWER_MODEL_HH
