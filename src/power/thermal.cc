#include "power/thermal.hh"

#include <cmath>

#include "common/error.hh"

namespace ecosched {

ThermalParams
ThermalParams::forChipName(const std::string &name)
{
    ThermalParams p;
    if (name == "X-Gene 2") {
        // Small package, modest heatsink: ~7 W typical -> ~56 C.
        p.thermalResistance = 4.0;
        p.timeConstant = 10.0;
    } else if (name == "X-Gene 3") {
        // Server heatsink: ~36 W typical -> ~55 C.
        p.thermalResistance = 0.75;
        p.timeConstant = 18.0;
    }
    p.validate();
    return p;
}

void
ThermalParams::validate() const
{
    fatalIf(thermalResistance <= 0.0,
            "thermal resistance must be positive");
    fatalIf(timeConstant <= 0.0,
            "thermal time constant must be positive");
    fatalIf(leakageTempExp < 0.0,
            "leakage temperature exponent must be non-negative");
    fatalIf(referenceCelsius < ambientCelsius,
            "reference temperature below ambient");
}

ThermalModel::ThermalModel(ThermalParams params)
    : thermalParams(params), tempCelsius(params.ambientCelsius)
{
    thermalParams.validate();
}

double
ThermalModel::steadyState(Watt power) const
{
    fatalIf(power < 0.0, "negative power");
    return thermalParams.ambientCelsius
        + power * thermalParams.thermalResistance;
}

void
ThermalModel::step(Seconds dt, Watt power)
{
    fatalIf(dt < 0.0, "negative time step");
    stepWithAlpha(stepAlpha(dt), power);
}

double
ThermalModel::stepAlpha(Seconds dt) const
{
    // Exact first-order response over the step (stable for any dt).
    if (dt != alphaDt) {
        alphaValue = 1.0 - std::exp(-dt / thermalParams.timeConstant);
        alphaDt = dt;
    }
    return alphaValue;
}

void
ThermalModel::stepWithAlpha(double alpha, Watt power)
{
    const double target = steadyState(power);
    tempCelsius += (target - tempCelsius) * alpha;
}

double
ThermalModel::leakageMultiplier() const
{
    if (tempCelsius != leakTemp) {
        leakValue = std::exp(
            thermalParams.leakageTempExp
            * (tempCelsius - thermalParams.referenceCelsius));
        leakTemp = tempCelsius;
    }
    return leakValue;
}

void
ThermalModel::reset()
{
    tempCelsius = thermalParams.ambientCelsius;
}

} // namespace ecosched
