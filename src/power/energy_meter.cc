#include "power/energy_meter.hh"

#include <algorithm>

#include "common/error.hh"

namespace ecosched {

void
EnergyMeter::add(Seconds dt, const PowerBreakdown &power)
{
    fatalIf(dt < 0.0, "cannot integrate over negative time");
    coreJ += power.coreDynamic * dt;
    pmdJ += power.pmdOverhead * dt;
    uncoreJ += power.uncoreDynamic * dt;
    leakJ += power.leakage * dt;
    totalJ += power.total() * dt;
    elapsedS += dt;
    peakW = std::max(peakW, power.total());
}

Watt
EnergyMeter::averagePower() const
{
    if (elapsedS <= 0.0)
        return 0.0;
    return totalJ / elapsedS;
}

void
EnergyMeter::reset()
{
    *this = EnergyMeter{};
}

double
energyDelayProduct(Joule energy, Seconds delay)
{
    return energy * delay;
}

double
energyDelaySquaredProduct(Joule energy, Seconds delay)
{
    return energy * delay * delay;
}

} // namespace ecosched
