#include "power/power_model.hh"

#include <cmath>
#include <utility>

#include "common/error.hh"

namespace ecosched {

PowerParams
PowerParams::forChip(const ChipSpec &spec)
{
    PowerParams p{};
    if (spec.name == "X-Gene 2") {
        // 28 nm bulk CMOS, 8 cores.  Calibrated so the 1-hour mixed
        // scenario averages close to the paper's measured 6.9 W and
        // the Table III savings ratios hold.
        p.cdynCore = 3.3e-10;
        p.cdynPmd = 8.5e-11;
        p.cdynUncore = 4.2e-10;
        p.uncoreClock = spec.fMax / 2.0;
        p.idleClockFactor = 0.06;
        p.l3AccessEnergy = 1.1e-9;
        p.dramAccessEnergy = 1.6e-8;
        p.leakageAmps = 0.85;
        p.leakageExpPerVolt = 2.0;
    } else if (spec.name == "X-Gene 3") {
        // 16 nm FinFET, 32 cores.  Calibrated so the 1-hour mixed
        // scenario averages close to the paper's measured 36.5 W and
        // the Table IV savings ratios hold.
        p.cdynCore = 3.6e-10;
        p.cdynPmd = 8.4e-11;
        p.cdynUncore = 4.3e-9;
        p.uncoreClock = spec.fMax / 2.0;
        p.idleClockFactor = 0.06;
        p.l3AccessEnergy = 1.6e-9;
        p.dramAccessEnergy = 1.6e-8;
        p.leakageAmps = 6.5;
        p.leakageExpPerVolt = 3.0;
    } else {
        // Generic fallback: scale a mid-size part by core count so
        // custom chips still get physically plausible numbers.
        const double cores = static_cast<double>(spec.numCores);
        p.cdynCore = 6.0e-10;
        p.cdynPmd = 1.0e-10;
        p.cdynUncore = 1.0e-10 * cores;
        p.uncoreClock = spec.fMax / 2.0;
        p.idleClockFactor = 0.06;
        p.l3AccessEnergy = 2.0e-9;
        p.dramAccessEnergy = 2.8e-8;
        p.leakageAmps = 0.25 * cores;
        p.leakageExpPerVolt = 3.5;
    }
    p.validate();
    return p;
}

void
PowerParams::validate() const
{
    fatalIf(cdynCore <= 0.0, "cdynCore must be positive");
    fatalIf(cdynPmd < 0.0, "cdynPmd must be non-negative");
    fatalIf(cdynUncore < 0.0, "cdynUncore must be non-negative");
    fatalIf(uncoreClock <= 0.0, "uncoreClock must be positive");
    fatalIf(idleClockFactor < 0.0 || idleClockFactor > 1.0,
            "idleClockFactor must be in [0, 1]");
    fatalIf(l3AccessEnergy < 0.0, "l3AccessEnergy must be non-negative");
    fatalIf(dramAccessEnergy < 0.0,
            "dramAccessEnergy must be non-negative");
    fatalIf(leakageAmps < 0.0, "leakageAmps must be non-negative");
}

PowerModel::PowerModel(ChipSpec spec, PowerParams params)
    : chipSpec(std::move(spec)), modelParams(params)
{
    chipSpec.validate();
    modelParams.validate();
}

Watt
PowerModel::corePower(const Chip &chip, CoreId core,
                      const CoreActivity &activity,
                      const IdlePowerView *idle) const
{
    ECOSCHED_ASSERT(activity.utilization >= 0.0 &&
                        activity.utilization <= 1.0 + 1e-9,
                    "core utilization outside [0, 1]");
    const Hertz f = chip.coreFrequency(core);
    if (f <= 0.0)
        return 0.0; // PMD clock-gated
    const Volt v = chip.voltage();
    // A core resident in the per-core c-state stops (or scales) its
    // idle clock toggling; the branch keeps the no-c-state
    // arithmetic bit-for-bit unchanged.
    double idle_factor = modelParams.idleClockFactor;
    if (idle != nullptr && idle->coreDeepIdle[core])
        idle_factor *= idle->coreIdleClockScale;
    const double act = activity.utilization * activity.switchingFactor
        + (1.0 - activity.utilization) * idle_factor;
    return modelParams.cdynCore * v * v * f * act;
}

Watt
PowerModel::pmdOverheadPower(const Chip &chip, PmdId pmd) const
{
    if (chip.pmdClockGated(pmd))
        return 0.0;
    const Volt v = chip.voltage();
    return modelParams.cdynPmd * v * v * chip.pmdFrequency(pmd);
}

Watt
PowerModel::uncorePower(const Chip &chip,
                        const UncoreActivity &activity) const
{
    const Volt v = chip.voltage();
    const double vscale =
        (v * v) / (chipSpec.vNominal * chipSpec.vNominal);
    const Watt clocks =
        modelParams.cdynUncore * v * v * modelParams.uncoreClock;
    const Watt access = vscale
        * (modelParams.l3AccessEnergy * activity.l3AccessesPerSec
           + modelParams.dramAccessEnergy
               * activity.dramAccessesPerSec);
    return clocks + access;
}

Watt
PowerModel::leakagePower(const Chip &chip,
                         const IdlePowerView *idle) const
{
    const Volt v = chip.voltage();
    const Watt leak = modelParams.leakageAmps * v
        * std::exp(modelParams.leakageExpPerVolt
                   * (v - chipSpec.vNominal));
    // PMDs resident in the per-PMD c-state have power-gated their
    // leakage share; the branch keeps the no-c-state value
    // bit-identical.
    if (idle != nullptr && idle->leakageScale != 1.0)
        return leak * idle->leakageScale;
    return leak;
}

PowerBreakdown
PowerModel::totalPower(const Chip &chip,
                       const std::vector<CoreActivity> &core_activity,
                       const UncoreActivity &uncore,
                       const IdlePowerView *idle) const
{
    fatalIf(core_activity.size() != chipSpec.numCores,
            "expected ", chipSpec.numCores, " core-activity entries, got ",
            core_activity.size());
    PowerBreakdown pb;
    for (CoreId c = 0; c < chipSpec.numCores; ++c)
        pb.coreDynamic += corePower(chip, c, core_activity[c], idle);
    for (PmdId p = 0; p < chipSpec.numPmds(); ++p)
        pb.pmdOverhead += pmdOverheadPower(chip, p);
    pb.uncoreDynamic = uncorePower(chip, uncore);
    pb.leakage = leakagePower(chip, idle);
    return pb;
}

const PowerBreakdown &
PowerCache::evaluate(const PowerModel &model, const Chip &chip,
                     const std::vector<CoreActivity> &core_activity,
                     const UncoreActivity &uncore,
                     std::uint64_t version_pre,
                     std::uint64_t version_post,
                     std::uint32_t stalled, Seconds dt,
                     const IdlePowerView *idle,
                     std::uint64_t idle_epoch)
{
    if (valid && keyEpoch == chip.stateEpoch()
            && keyVersionPre == version_pre
            && keyVersionPost == version_post
            && keyStalled == stalled && keyDt == dt
            && keyIdleEpoch == idle_epoch) {
        ECOSCHED_DEBUG_ASSERT(
            keyUncore == uncore && keyActivity == core_activity,
            "power step key matched a different activity set");
        return value;
    }
    value = model.totalPower(chip, core_activity, uncore, idle);
    keyEpoch = chip.stateEpoch();
    keyVersionPre = version_pre;
    keyVersionPost = version_post;
    keyStalled = stalled;
    keyDt = dt;
    keyIdleEpoch = idle_epoch;
    keyUncore = uncore;
    keyActivity = core_activity;
    valid = true;
    return value;
}

} // namespace ecosched
