/**
 * @file
 * First-order package thermal model.
 *
 * The paper notes that the safe Vmin depends on "manufacturing and
 * environmental factors"; leakage power is strongly temperature-
 * dependent on both process nodes.  This model closes that loop in
 * the simulation: die temperature follows chip power through a
 * first-order RC response, and the leakage term is scaled by an
 * exponential temperature factor normalised to 1 at the calibration
 * temperature (so the Tables III/IV calibration is preserved at
 * typical load, while idle phases leak less and hot phases more).
 */

#ifndef ECOSCHED_POWER_THERMAL_HH
#define ECOSCHED_POWER_THERMAL_HH

#include <string>

#include "common/units.hh"

namespace ecosched {

/// Thermal constants of one package + heatsink.
struct ThermalParams
{
    double ambientCelsius = 28.0;

    /// Junction-to-ambient thermal resistance [°C / W].
    double thermalResistance = 1.0;

    /// First-order response time constant [s].
    Seconds timeConstant = 12.0;

    /// Temperature at which the leakage multiplier equals 1
    /// (the power model's calibration point).
    double referenceCelsius = 55.0;

    /// Exponential leakage sensitivity [1/°C] (~2x per 50 °C).
    double leakageTempExp = 0.014;

    /// Calibrated constants for a known chip (matched by name).
    static ThermalParams forChipName(const std::string &name);

    /// Sanity-check. @throws FatalError when invalid.
    void validate() const;
};

/**
 * Die-temperature state:  dT/dt = (Tamb + P*Rth - T) / tau.
 */
class ThermalModel
{
  public:
    explicit ThermalModel(ThermalParams params);

    /// Constants in use.
    const ThermalParams &params() const { return thermalParams; }

    /// Current die temperature [°C].
    double temperature() const { return tempCelsius; }

    /// Steady-state temperature at constant power [°C].
    double steadyState(Watt power) const;

    /// Advance by @p dt under dissipated power @p power.
    void step(Seconds dt, Watt power);

    /// Leakage scale factor exp(k * (T - Tref)) at the current
    /// temperature (1 at the reference temperature).
    double leakageMultiplier() const;

    /// Return to the ambient-temperature initial state.
    void reset();

  private:
    ThermalParams thermalParams;
    double tempCelsius;
};

} // namespace ecosched

#endif // ECOSCHED_POWER_THERMAL_HH
