/**
 * @file
 * First-order package thermal model.
 *
 * The paper notes that the safe Vmin depends on "manufacturing and
 * environmental factors"; leakage power is strongly temperature-
 * dependent on both process nodes.  This model closes that loop in
 * the simulation: die temperature follows chip power through a
 * first-order RC response, and the leakage term is scaled by an
 * exponential temperature factor normalised to 1 at the calibration
 * temperature (so the Tables III/IV calibration is preserved at
 * typical load, while idle phases leak less and hot phases more).
 */

#ifndef ECOSCHED_POWER_THERMAL_HH
#define ECOSCHED_POWER_THERMAL_HH

#include <limits>
#include <string>

#include "common/units.hh"

namespace ecosched {

/// Thermal constants of one package + heatsink.
struct ThermalParams
{
    double ambientCelsius = 28.0;

    /// Junction-to-ambient thermal resistance [°C / W].
    double thermalResistance = 1.0;

    /// First-order response time constant [s].
    Seconds timeConstant = 12.0;

    /// Temperature at which the leakage multiplier equals 1
    /// (the power model's calibration point).
    double referenceCelsius = 55.0;

    /// Exponential leakage sensitivity [1/°C] (~2x per 50 °C).
    double leakageTempExp = 0.014;

    /// Calibrated constants for a known chip (matched by name).
    static ThermalParams forChipName(const std::string &name);

    /// Sanity-check. @throws FatalError when invalid.
    void validate() const;
};

/**
 * Die-temperature state:  dT/dt = (Tamb + P*Rth - T) / tau.
 */
class ThermalModel
{
  public:
    explicit ThermalModel(ThermalParams params);

    /// Constants in use.
    const ThermalParams &params() const { return thermalParams; }

    /// Current die temperature [°C].
    double temperature() const { return tempCelsius; }

    /// Steady-state temperature at constant power [°C].
    double steadyState(Watt power) const;

    /// Advance by @p dt under dissipated power @p power.
    void step(Seconds dt, Watt power);

    /**
     * The exact first-order blend factor step() applies for @p dt.
     * Constant for a fixed dt — macro-stepped replay precomputes it
     * once per window and advances with stepWithAlpha(), reproducing
     * step(dt, p) bit for bit without the per-step exp.  Memoized on
     * @p dt (a pure function of it), so fixed-dt stepping also pays
     * the exp only once.
     */
    double stepAlpha(Seconds dt) const;

    /// Advance one step using a precomputed stepAlpha(dt) factor.
    void stepWithAlpha(double alpha, Watt power);

    /**
     * Event horizon of the thermal RC state: *never* (infinity).
     * The first-order response advances every step regardless, but
     * macro windows replay stepWithAlpha() bit-exactly, so the
     * thermal model — unlike governor ticks or fault events — never
     * forces the engine out of a window.  Declared here so every
     * time-driven component answers the same nextActivity() query
     * (DESIGN.md §13), even when the answer is a constant.
     */
    Seconds nextActivity(Seconds now) const
    {
        (void)now;
        return std::numeric_limits<Seconds>::infinity();
    }

    /// Leakage scale factor exp(k * (T - Tref)) at the current
    /// temperature (1 at the reference temperature).  Memoized on
    /// the temperature: once the first-order response reaches its
    /// floating-point fixed point under constant power, the per-step
    /// exp collapses to one compare.
    double leakageMultiplier() const;

    /// Return to the ambient-temperature initial state.
    void reset();

    /**
     * Restore a previously captured temperature (snapshot support).
     * The memo slots are pure-function caches keyed on their inputs,
     * so they stay valid across a restore.
     */
    void restoreTemperature(double t_celsius)
    {
        tempCelsius = t_celsius;
    }

  private:
    ThermalParams thermalParams;
    double tempCelsius;

    // Memo slots (logically const: pure-function caching only).
    // Sentinels are unreachable inputs, so first use computes.
    mutable double alphaDt = -1.0;  ///< dt of the cached stepAlpha
    mutable double alphaValue = 0.0;
    mutable double leakTemp = -1.0e300; ///< T of the cached multiplier
    mutable double leakValue = 1.0;
};

} // namespace ecosched

#endif // ECOSCHED_POWER_THERMAL_HH
