/**
 * @file
 * The four evaluated system configurations of §VI.B:
 *
 *  - Baseline:  default scheduler + ondemand governor, nominal
 *               voltage.
 *  - SafeVmin:  ondemand governor, supply statically lowered to the
 *               most conservative characterized safe Vmin (Table II,
 *               fmax with all PMDs) — quantifies the pure guardband.
 *  - Placement: the monitoring daemon drives core allocation and
 *               per-PMD frequency; voltage stays nominal.
 *  - Optimal:   the full daemon: placement + frequency + adaptive
 *               safe-Vmin voltage with fail-safe ordering.
 *
 * Plus two consolidation configurations the paper never explored
 * (COREIDLE-style policy/mechanism split, src/idle):
 *
 *  - CoreIdle:   mask-aware spread placer + hysteresis governor that
 *                packs light load onto the fewest whole PMDs so the
 *                masked modules reach deep c-states.
 *  - RaceToIdle: same, with active PMDs pinned at fmax so work
 *                finishes sooner and idle residency lengthens.
 *
 * And the MODELSEARCH closing-the-loop configuration (DESIGN.md §16):
 *
 *  - Predictive: the Optimal daemon with the predictive governor on
 *                top — per-process CPI(f) fits refit online from the
 *                monitor's own counters, and each utilized PMD jumps
 *                straight to its predicted ED2P-optimal ladder
 *                frequency instead of the engine's binary clock
 *                choice.
 *
 * Setting ECOSCHED_COREIDLE_SHADOW=1 makes Baseline/SafeVmin install
 * the coreidle mask placer with an empty mask instead of
 * LinuxSpreadPlacer — an inertness proof: the goldens must stay
 * byte-identical.
 */

#ifndef ECOSCHED_CORE_POLICY_HH
#define ECOSCHED_CORE_POLICY_HH

#include <memory>

#include "core/daemon.hh"
#include "os/system.hh"

namespace ecosched {

/// The named configurations (four from §VI.B plus the two
/// consolidation variants).
enum class PolicyKind
{
    Baseline,
    SafeVmin,
    Placement,
    Optimal,
    CoreIdle,
    RaceToIdle,
    Predictive,
};

/// Human-readable configuration name.
const char *policyKindName(PolicyKind kind);

/// Live policy objects owned by the caller.
struct PolicySetup
{
    /// Daemon instance (Placement / Optimal only).
    std::unique_ptr<Daemon> daemon;
};

/**
 * Configure a freshly built System for one of the four named
 * configurations.  For SafeVmin the supply is programmed once, before
 * any work arrives.
 *
 * @param daemon_base  Base daemon knobs; control flags are forced
 *                     per configuration (e.g. Placement clears
 *                     controlVoltage).
 */
PolicySetup configurePolicy(System &system, PolicyKind kind,
                            DaemonConfig daemon_base = DaemonConfig{});

} // namespace ecosched

#endif // ECOSCHED_CORE_POLICY_HH
