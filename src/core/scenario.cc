#include "core/scenario.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "common/error.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace ecosched {

bool
profileIsMemoryIntensive(const BenchmarkProfile &profile,
                         const ChipSpec &spec)
{
    const MemorySystem memory(MemoryParams::forChipName(spec.name));
    return memory.l3PerMCycles(profile.work, spec.fMax) > 3000.0;
}

void
ScenarioResult::writeTimelineCsv(std::ostream &os) const
{
    TextTable t({"time_s", "power_w", "load_avg", "running",
                 "cpu_intensive", "mem_intensive", "voltage_mv",
                 "utilized_pmds", "temperature_c"});
    for (const auto &s : timeline) {
        t.addRow({formatDouble(s.time, 2), formatDouble(s.power, 3),
                  formatDouble(s.loadAverage, 2),
                  std::to_string(s.runningProcs),
                  std::to_string(s.cpuProcs),
                  std::to_string(s.memProcs),
                  formatDouble(units::toMilliVolts(s.voltage), 1),
                  std::to_string(s.utilizedPmds),
                  formatDouble(s.temperature, 2)});
    }
    t.printCsv(os);
}

ScenarioRunner::ScenarioRunner(ScenarioConfig config)
    : cfg(std::move(config))
{
    cfg.chip.validate();
    fatalIf(cfg.timestep <= 0.0, "scenario timestep must be positive");
    fatalIf(cfg.sampleInterval < cfg.timestep,
            "sample interval must be >= the timestep");
    fatalIf(cfg.drainBoundFactor <= 1.0,
            "drain bound factor must exceed 1");
}

ScenarioResult
ScenarioRunner::run(const GeneratedWorkload &workload) const
{
    fatalIf(workload.items.empty(), "workload has no items");
    fatalIf(workload.maxCores > cfg.chip.numCores,
            "workload was generated for ", workload.maxCores,
            " cores but ", cfg.chip.name, " has ",
            cfg.chip.numCores);

    SimStackConfig scfg;
    scfg.chip = cfg.chip;
    scfg.policy = cfg.policy;
    scfg.machineSeed = cfg.machineSeed;
    scfg.timestep = cfg.timestep;
    scfg.daemon = cfg.daemon;
    scfg.injectFaults = cfg.injectFaults;
    scfg.migrationCost = cfg.migrationCost;

    // Leased from the pool (rewound to pristine) or run-local; both
    // paths are bit-identical by the snapshot round-trip guarantee.
    SimStackPool::Lease lease;
    std::unique_ptr<SimStack> local;
    if (cfg.stackPool != nullptr)
        lease = cfg.stackPool->acquire(scfg);
    else
        local = std::make_unique<SimStack>(scfg);
    SimStack &stack = lease ? *lease : *local;
    Machine &machine = stack.machine();
    System &system = stack.system();
    if (cfg.instrument)
        cfg.instrument(machine, system, stack.daemon());

    const Catalog &catalog = Catalog::instance();

    // Pre-resolve profiles and their ground-truth class.
    struct Item
    {
        const WorkItem *work;
        const BenchmarkProfile *profile;
    };
    std::vector<Item> items;
    items.reserve(workload.items.size());
    for (const auto &w : workload.items)
        items.push_back({&w, &catalog.byName(w.benchmark)});

    std::vector<bool> mem_class(catalog.all().size(), false);
    for (std::size_t i = 0; i < catalog.all().size(); ++i) {
        mem_class[i] =
            profileIsMemoryIntensive(catalog.all()[i], cfg.chip);
    }
    auto profile_index = [&](const BenchmarkProfile *p) {
        return static_cast<std::size_t>(p - catalog.all().data());
    };

    std::map<Pid, bool> pid_is_mem;

    ScenarioResult result;
    result.policy = cfg.policy;

    MovingAverage load_avg(60.0);
    Seconds next_sample = 0.0;
    Seconds last_completion = 0.0;
    std::size_t next_item = 0;
    const Seconds bound = workload.duration * cfg.drainBoundFactor;

    auto take_sample = [&] {
        const auto busy = static_cast<double>(
            machine.busyCores().size());
        load_avg.add(system.now(), busy);

        TimelineSample s;
        s.time = system.now();
        s.power = machine.lastPower().total();
        s.loadAverage = load_avg.value();
        const auto running = system.runningProcesses();
        s.runningProcs =
            static_cast<std::uint32_t>(running.size());
        for (Pid pid : running) {
            if (pid_is_mem[pid])
                ++s.memProcs;
            else
                ++s.cpuProcs;
        }
        s.voltage = machine.chip().voltage();
        s.utilizedPmds = machine.utilizedPmds();
        s.temperature = machine.temperature();
        result.timeline.push_back(s);
    };

    // Event-driven main loop (ECOSCHED_EVENT_PATH=0 falls back to
    // one step() per iteration): between boundaries the only
    // per-iteration work below is the arrival submit, the sample
    // check and the drain-bound check, so the next boundary of each
    // stream — merged through a small event queue — bounds a
    // runEvents() span that coalesces macro windows across it.
    // runEvents() stops on the same half-step comparisons this
    // loop's own predicates use (and returns at halt/idle steps), so
    // every submit, sample, halt and drain check lands on the exact
    // step the per-step loop gives it — outputs are bit-identical.
    const bool event_mode = eventPathEnabled();
    EventQueue boundaries;

    bool crashed = false;
    while (next_item < items.size() || !system.idle()) {
        fatalIf(system.now() > bound,
                policyKindName(cfg.policy),
                " scenario exceeded its drain bound at ",
                system.now(), " s");

        // Submit due arrivals.
        while (next_item < items.size() &&
               items[next_item].work->arrival
                   <= system.now() + cfg.timestep * 0.5) {
            const Item &item = items[next_item];
            const Pid pid = system.submit(*item.profile,
                                          item.work->threads);
            pid_is_mem[pid] =
                mem_class[profile_index(item.profile)];
            ++next_item;
        }

        bool plain_step = true;
        if (event_mode && machine.macroEligible()) {
            boundaries.clear();
            if (next_item < items.size())
                boundaries.push(items[next_item].work->arrival, 0);
            boundaries.push(next_sample, 1);
            // One step past the bound so the fatalIf above fires on
            // the same iteration it would in the per-step loop.
            boundaries.push(bound + cfg.timestep, 2);
            const Seconds stop = boundaries.top().time;
            if (system.now() + cfg.timestep * 0.5 < stop) {
                // Exiting the loop requires going idle with no
                // arrivals left; watch for it only then, so a busy
                // system still coalesces across completions the
                // loop condition would not look at.
                system.runEvents(stop,
                                 next_item >= items.size());
                plain_step = false;
            }
        }
        if (plain_step)
            system.step();

        if (machine.halted()) {
            // Undervolting system crash (fault injection): the node
            // is down; emit a terminal sample at the halt time, then
            // stop the replay and report what happened.
            result.worstOutcome = RunOutcome::SystemCrash;
            crashed = true;
            take_sample();
            break;
        }

        // Timeline sampling.
        if (system.now() + cfg.timestep * 0.5 >= next_sample) {
            take_sample();
            // Advance past the current time so a step overshooting
            // several sample boundaries does not leave next_sample
            // in the past (which would bunch up later samples).
            do {
                next_sample += cfg.sampleInterval;
            } while (next_sample <= system.now()
                     + cfg.timestep * 0.5);
        }
    }

    std::vector<Seconds> sojourns;
    sojourns.reserve(system.finishedProcesses().size());
    for (const Process &proc : system.finishedProcesses()) {
        last_completion = std::max(last_completion, proc.completed);
        result.migrations += proc.migrations;
        sojourns.push_back(proc.turnaround());
        if (isFailure(proc.outcome))
            ++result.processesFailed;
        if (outcomeSeverity(proc.outcome)
                > outcomeSeverity(result.worstOutcome)) {
            result.worstOutcome = proc.outcome;
        }
    }
    result.processesCompleted = static_cast<std::uint32_t>(
        system.finishedProcesses().size());
    if (!sojourns.empty()) {
        std::sort(sojourns.begin(), sojourns.end());
        auto rank = [&](double p) {
            const auto n = static_cast<double>(sojourns.size());
            const auto idx = static_cast<std::size_t>(
                std::ceil(p * n)) - 1;
            return sojourns[std::min(idx, sojourns.size() - 1)];
        };
        result.latencyP50 = rank(0.50);
        result.latencyP95 = rank(0.95);
        result.latencyMax = sojourns.back();
    }
    const IdleStateTracker &idle = machine.idleTracker();
    if (idle.enabled()) {
        const Seconds now = system.now();
        for (CoreId c = 0; c < cfg.chip.numCores; ++c) {
            result.idleC1Seconds += idle.coreC1Seconds(c, now);
            result.idleC1Entries += idle.coreC1Entries(c);
        }
        for (PmdId p = 0; p < cfg.chip.numPmds(); ++p) {
            result.idleC6Seconds += idle.pmdC6Seconds(p, now);
            result.idleC6Entries += idle.pmdC6Entries(p);
        }
    }
    // For a run that ended in a system crash the energy covers the
    // whole execution up to the halt, so the power/ED2P denominator
    // must be the elapsed time, not the last completed process
    // (which may be 0 and would zero or wildly inflate averagePower).
    result.completionTime = crashed ? system.now() : last_completion;
    result.energy = machine.energyMeter().energy();
    result.averagePower = result.completionTime > 0.0
        ? result.energy / result.completionTime : 0.0;
    result.ed2p = result.energy * result.completionTime
        * result.completionTime;
    result.unsafeExposure = machine.unsafeExposure();
    result.maxUnsafeDeficit = machine.maxUnsafeDeficit();
    result.memThrottledSeconds = machine.memThrottledTime();
    result.peakMemThrottle = machine.peakMemThrottle();
    result.voltageTransitions =
        machine.slimPro().voltageTransitions();
    result.frequencyTransitions =
        machine.slimPro().frequencyTransitions();
    if (const Daemon *daemon = stack.daemon()) {
        result.hasDaemon = true;
        result.daemonStats = daemon->stats();
        result.recoveryStats = daemon->recoveryStats();
    }
    return result;
}

} // namespace ecosched
