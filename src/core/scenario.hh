/**
 * @file
 * Scenario runner: replays a generated server workload (§VI.B) under
 * one of the four configurations and reports the paper's evaluation
 * quantities — completion time, average power, energy, ED2P
 * (Tables III/IV) plus the power/load timelines (Figures 14/15).
 */

#ifndef ECOSCHED_CORE_SCENARIO_HH
#define ECOSCHED_CORE_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "core/policy.hh"
#include "core/sim_stack.hh"
#include "workloads/generator.hh"

namespace ecosched {

/// One 1-second telemetry sample of a scenario run.
struct TimelineSample
{
    Seconds time = 0.0;
    Watt power = 0.0;          ///< instantaneous chip power
    double loadAverage = 0.0;  ///< 1-minute moving average of busy cores
    std::uint32_t runningProcs = 0;
    std::uint32_t cpuProcs = 0; ///< ground-truth CPU-intensive count
    std::uint32_t memProcs = 0; ///< ground-truth memory-intensive count
    Volt voltage = 0.0;
    std::uint32_t utilizedPmds = 0;
    double temperature = 0.0; ///< die temperature [°C]
};

/// Result of one scenario run.
struct ScenarioResult
{
    PolicyKind policy = PolicyKind::Baseline;
    /// Last process completion; for a run that ended in a system
    /// crash, the elapsed time up to the halt (so averagePower and
    /// ed2p stay meaningful for crashed runs).
    Seconds completionTime = 0.0;
    Joule energy = 0.0;           ///< total over the run
    Watt averagePower = 0.0;      ///< energy / completionTime
    double ed2p = 0.0;            ///< energy * completionTime^2

    std::uint32_t processesCompleted = 0;
    /// Processes that ended with a failure outcome (fault injection).
    std::uint32_t processesFailed = 0;

    /// Process sojourn latency (completed - submitted), nearest-rank
    /// percentiles over the completed set; 0 when nothing completed.
    Seconds latencyP50 = 0.0;
    Seconds latencyP95 = 0.0;
    Seconds latencyMax = 0.0;

    /// Idle-state residency aggregates (all 0 when the chip has no
    /// c-state table): summed per-core c1 residency, summed per-PMD
    /// c6 residency, and the respective entry counts.
    Seconds idleC1Seconds = 0.0;
    Seconds idleC6Seconds = 0.0;
    std::uint64_t idleC1Entries = 0;
    std::uint64_t idleC6Entries = 0;
    /// Bandwidth-reservation telemetry (0 / 1.0 on chips without a
    /// reservation armed): thread-seconds the MEMBW solver held a
    /// thread below its demand, and the worst throttle factor seen.
    Seconds memThrottledSeconds = 0.0;
    double peakMemThrottle = 1.0;

    std::uint64_t migrations = 0;
    std::uint64_t voltageTransitions = 0;
    std::uint64_t frequencyTransitions = 0;
    RunOutcome worstOutcome = RunOutcome::Ok;

    /// Time executed below the true Vmin (fault injection runs).
    Seconds unsafeExposure = 0.0;
    /// Deepest supply deficit below the true Vmin.
    Volt maxUnsafeDeficit = 0.0;

    bool hasDaemon = false;
    DaemonStats daemonStats; ///< valid when hasDaemon
    RecoveryStats recoveryStats; ///< valid when hasDaemon

    std::vector<TimelineSample> timeline;

    /// Dump the timeline as CSV (one row per sample).
    void writeTimelineCsv(std::ostream &os) const;
};

/// Runner knobs.
struct ScenarioConfig
{
    ChipSpec chip;                    ///< platform (required)
    PolicyKind policy = PolicyKind::Baseline;
    Seconds timestep = 0.01;          ///< simulation step
    Seconds sampleInterval = 1.0;     ///< timeline granularity
    std::uint64_t machineSeed = 1;    ///< chip-sample identity
    DaemonConfig daemon;              ///< base daemon knobs
    /// Enable undervolting fault injection in the machine: unsafe
    /// (voltage, frequency, allocation) combinations strike threads.
    bool injectFaults = false;

    /// Cache-warmup stall per thread migration (negative: keep the
    /// machine default of 200 µs).  The paper argues daemon
    /// migrations cost no more than ordinary kernel migrations;
    /// sweeping this knob tests how robust the savings are to that
    /// assumption.
    Seconds migrationCost = -1.0;
    /// Abort if the run exceeds workload.duration * this factor.
    double drainBoundFactor = 3.0;

    /// Called once per run after the policy stack is wired and
    /// before the first arrival (the fault-injection campaign
    /// attaches its injector here; the daemon pointer is null for
    /// daemon-less policies).  The callees only live for the run.
    std::function<void(Machine &, System &, Daemon *)> instrument;

    /**
     * Reusable-stack pool (sweep engines share one across a grid).
     * Null: each run constructs its own stack, as before.  A leased
     * stack is rewound to pristine before the run, so results are
     * byte-identical either way; instrument hooks are re-armed after
     * the rewind.  Non-owning — the pool must outlive the runner.
     */
    SimStackPool *stackPool = nullptr;
};

/**
 * Replays workloads under a configuration.  Stateless across run()
 * calls; each run builds a fresh Machine/System.
 */
class ScenarioRunner
{
  public:
    explicit ScenarioRunner(ScenarioConfig config);

    /// Knobs in use.
    const ScenarioConfig &config() const { return cfg; }

    /// Execute one workload to completion.
    ScenarioResult run(const GeneratedWorkload &workload) const;

  private:
    ScenarioConfig cfg;
};

/**
 * Ground-truth classification of a profile on a chip: analytic L3C
 * rate at fmax (uncontended) against the 3K/1M-cycles threshold.
 */
bool profileIsMemoryIntensive(const BenchmarkProfile &profile,
                              const ChipSpec &spec);

} // namespace ecosched

#endif // ECOSCHED_CORE_SCENARIO_HH
