#include "core/sim_stack.hh"

#include "common/error.hh"

namespace ecosched {

std::uint64_t
SimStackConfig::key() const
{
    ConfigKey k;
    // Chip identity: the name picks the calibrated models and the
    // topology/ladder fields guard against hand-modified specs.
    k.mix(chip.name)
        .mix(std::uint64_t{chip.numCores})
        .mix(chip.fMax)
        .mix(static_cast<std::uint64_t>(policy))
        .mix(machineSeed)
        .mix(timestep)
        .mix(utilizationAlpha)
        .mix(std::uint64_t{injectFaults})
        .mix(migrationCost);
    // The c-state table changes machine behaviour but not the chip
    // name (the calibrated models match on the literal name), so a
    // c-state-enabled spec must not alias the plain one in the
    // prototype/arena caches.
    k.mix(std::uint64_t{chip.cstates.size()});
    for (const CStateSpec &cs : chip.cstates) {
        k.mix(cs.name)
            .mix(std::uint64_t{cs.perPmd})
            .mix(cs.entryLatency)
            .mix(cs.exitLatency)
            .mix(cs.residency)
            .mix(cs.idleClockScale)
            .mix(cs.leakageShare);
    }
    // Every daemon knob, nested configs included: the daemon's
    // Table II copy, engine and predictor derive from these.
    const DaemonConfig &d = daemon;
    k.mix(std::uint64_t{d.controlPlacement})
        .mix(std::uint64_t{d.controlFrequency})
        .mix(std::uint64_t{d.controlVoltage})
        .mix(std::uint64_t{d.failSafeOrdering})
        .mix(d.samplingInterval)
        .mix(std::uint64_t{d.minSampleCycles})
        .mix(d.classifier.thresholdPerMCycles)
        .mix(d.classifier.hysteresis)
        .mix(static_cast<std::uint64_t>(d.classifier.initialClass))
        .mix(d.placement.cpuFrequency)
        .mix(d.placement.memFrequency)
        .mix(d.placement.idleFrequency)
        .mix(d.guardband)
        .mix(std::uint64_t{d.usePerfToolReader})
        .mix(std::uint64_t{d.useVminPredictor})
        .mix(d.predictor.aggressiveness)
        .mix(d.predictor.assumedSpreadMv)
        .mix(d.predictor.attenExponent)
        .mix(d.predictor.saturationRate)
        .mix(std::uint64_t{d.recovery.enabled})
        .mix(d.recovery.hold)
        .mix(d.recovery.quarantineMargin)
        .mix(d.recovery.quarantineWindow)
        .mix(std::uint64_t{d.recovery.rerunFailedJobs})
        .mix(std::uint64_t{d.recovery.maxRetries})
        .mix(d.seed);
    return k.value();
}

SimStack::SimStack(const SimStackConfig &config) : cfg(config)
{
    cfg.chip.validate();
    fatalIf(cfg.timestep <= 0.0, "stack timestep must be positive");

    MachineConfig mcfg;
    mcfg.seed = cfg.machineSeed;
    mcfg.injectFaults = cfg.injectFaults;
    if (cfg.migrationCost >= 0.0)
        mcfg.migrationCost = cfg.migrationCost;
    mach = std::make_unique<Machine>(cfg.chip, mcfg);
    sys = std::make_unique<System>(
        *mach, nullptr, nullptr,
        SystemConfig{cfg.timestep, cfg.utilizationAlpha});
    setup = configurePolicy(*sys, cfg.policy, cfg.daemon);
    pristineState = std::make_unique<SimSnapshot>(capture());
}

SimStack::SimStack(const SimStack &prototype,
                   const SimStackConfig &config)
    : cfg(config)
{
    fatalIf(prototype.cfg.shapeKey() != cfg.shapeKey(),
            "stack stamping needs a same-shape prototype (configs "
            "may differ only in machineSeed)");
    MachineConfig mcfg;
    mcfg.seed = cfg.machineSeed;
    mcfg.injectFaults = cfg.injectFaults;
    if (cfg.migrationCost >= 0.0)
        mcfg.migrationCost = cfg.migrationCost;
    mach = std::make_unique<Machine>(*prototype.mach, mcfg);
    sys = std::make_unique<System>(
        *mach, nullptr, nullptr,
        SystemConfig{cfg.timestep, cfg.utilizationAlpha});
    setup = configurePolicy(*sys, cfg.policy, cfg.daemon);
    pristineState = std::make_unique<SimSnapshot>(capture());
}

SimSnapshot
SimStack::capture() const
{
    SimSnapshot s;
    s.machine = mach->capture();
    s.system = sys->capture();
    s.hasDaemon = setup.daemon != nullptr;
    if (setup.daemon)
        s.daemon = setup.daemon->capture();
    return s;
}

void
SimStack::restore(const SimSnapshot &s)
{
    fatalIf(s.hasDaemon != (setup.daemon != nullptr),
            "snapshot/stack daemon mismatch — snapshots only apply "
            "to stacks built from the same SimStackConfig");
    mach->restore(s.machine);
    sys->restore(s.system);
    if (setup.daemon)
        setup.daemon->restore(s.daemon);
}

std::unique_ptr<SimStack>
SimStack::clone() const
{
    auto copy = std::make_unique<SimStack>(cfg);
    copy->restore(capture());
    return copy;
}

} // namespace ecosched
