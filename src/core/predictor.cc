#include "core/predictor.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hh"

namespace ecosched {

CounterVminPredictor::CounterVminPredictor(Config config)
    : cfg(config)
{
    fatalIf(cfg.aggressiveness < 0.0 || cfg.aggressiveness > 1.0,
            "predictor aggressiveness must be in [0, 1]");
    fatalIf(cfg.assumedSpreadMv < 0.0,
            "assumed spread must be non-negative");
    fatalIf(cfg.attenExponent <= 0.0,
            "attenuation exponent must be positive");
    fatalIf(cfg.saturationRate <= 0.0,
            "saturation rate must be positive");
}

Volt
CounterVminPredictor::predictedMargin(
    std::uint32_t active_cores, double max_l3_per_mcycles) const
{
    fatalIf(active_cores == 0,
            "predicted margin of an idle configuration");
    fatalIf(max_l3_per_mcycles < 0.0, "negative L3C rate");

    // Estimated workload sensitivity from the cache-rate proxy.
    const double sens_est = std::clamp(
        max_l3_per_mcycles / cfg.saturationRate, 0.0, 1.0);
    const double atten = std::pow(
        static_cast<double>(active_cores), -cfg.attenExponent);
    const double margin_mv = cfg.assumedSpreadMv
        * (1.0 - sens_est) * atten * cfg.aggressiveness;
    return units::mV(margin_mv);
}

Volt
CounterVminPredictor::predictSafeVoltage(
    const DroopClassTable &table, Hertz f,
    std::uint32_t utilized_pmds, std::uint32_t active_cores,
    double max_l3_per_mcycles) const
{
    const Volt base = table.safeVoltage(f, utilized_pmds);
    const Volt margin =
        predictedMargin(active_cores, max_l3_per_mcycles);
    return std::max(base - margin, table.spec().vFloor);
}

} // namespace ecosched
