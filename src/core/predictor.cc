#include "core/predictor.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hh"

namespace ecosched {

CounterVminPredictor::CounterVminPredictor(Config config)
    : cfg(config)
{
    fatalIf(cfg.aggressiveness < 0.0 || cfg.aggressiveness > 1.0,
            "predictor aggressiveness must be in [0, 1]");
    fatalIf(cfg.assumedSpreadMv < 0.0,
            "assumed spread must be non-negative");
    fatalIf(cfg.attenExponent <= 0.0,
            "attenuation exponent must be positive");
    fatalIf(cfg.saturationRate <= 0.0,
            "saturation rate must be positive");
}

Volt
CounterVminPredictor::predictedMargin(
    std::uint32_t active_cores, double max_l3_per_mcycles) const
{
    fatalIf(active_cores == 0,
            "predicted margin of an idle configuration");
    fatalIf(max_l3_per_mcycles < 0.0, "negative L3C rate");

    // Estimated workload sensitivity from the cache-rate proxy.
    const double sens_est = std::clamp(
        max_l3_per_mcycles / cfg.saturationRate, 0.0, 1.0);
    const double atten = std::pow(
        static_cast<double>(active_cores), -cfg.attenExponent);
    const double margin_mv = cfg.assumedSpreadMv
        * (1.0 - sens_est) * atten * cfg.aggressiveness;
    return units::mV(margin_mv);
}

Volt
CounterVminPredictor::predictSafeVoltage(
    const DroopClassTable &table, Hertz f,
    std::uint32_t utilized_pmds, std::uint32_t active_cores,
    double max_l3_per_mcycles) const
{
    const Volt base = table.safeVoltage(f, utilized_pmds);
    const Volt margin =
        predictedMargin(active_cores, max_l3_per_mcycles);
    return std::max(base - margin, table.spec().vFloor);
}

void
CpiFrequencyModel::addSample(Hertz f, double cpi)
{
    fatalIf(f <= 0.0, "CPI sample needs a positive frequency");
    fatalIf(cpi <= 0.0, "CPI sample must be positive");
    for (auto &[freq, value] : points) {
        if (std::fabs(freq - f) <= 1.0) {
            value = cpi;
            refit();
            return;
        }
    }
    points.emplace_back(f, cpi);
    refit();
}

Hertz
CpiFrequencyModel::soleFrequency() const
{
    fatalIf(points.size() != 1,
            "soleFrequency wants exactly one sample");
    return points.front().first;
}

void
CpiFrequencyModel::refit()
{
    ok = false;
    if (points.size() < 2)
        return;

    // Ordinary least squares over the per-frequency points.
    double sf = 0.0, scpi = 0.0, sff = 0.0, sfcpi = 0.0;
    const double n = static_cast<double>(points.size());
    for (const auto &[f, cpi] : points) {
        sf += f;
        scpi += cpi;
        sff += f * f;
        sfcpi += f * cpi;
    }
    const double det = n * sff - sf * sf;
    if (det <= 0.0)
        return; // numerically coincident frequencies
    s = (n * sfcpi - sf * scpi) / det;
    c = (scpi - s * sf) / n;

    // Physical clamps: core CPI and stall time are non-negative.  A
    // violated clamp means counter noise outweighed the trend; fall
    // back to the frequency-invariant (resp. fully memory-bound)
    // interpretation of the same samples.
    if (s < 0.0) {
        s = 0.0;
        c = scpi / n;
    } else if (c < 0.0) {
        c = 0.0;
        s = sfcpi / sff;
    }
    ok = true;
}

double
predictiveEd2pScore(const DroopClassTable &table,
                    const CpiFrequencyModel &model, Hertz f,
                    std::uint32_t utilized_pmds,
                    const PredictiveGovernorConfig &cfg)
{
    fatalIf(!model.fitted(), "ED2P score wants a fitted CPI model");
    fatalIf(utilized_pmds == 0,
            "ED2P score of an idle configuration");
    const ChipSpec &spec = table.spec();
    const double w =
        std::clamp(cfg.leakageFraction, 0.0, 1.0);
    const double v_rel =
        table.safeVoltage(f, utilized_pmds) / spec.vNominal;
    const double power = (1.0 - w) * v_rel * v_rel * (f / spec.fMax)
        + w * v_rel;
    const double delay = model.cpiAt(f) / f; // seconds/instruction
    return power * delay * delay * delay;
}

Hertz
predictiveEd2pOptimum(const DroopClassTable &table,
                      const CpiFrequencyModel &model,
                      std::uint32_t utilized_pmds,
                      const PredictiveGovernorConfig &cfg)
{
    const auto ladder = table.spec().frequencyLadder();
    Hertz best = ladder.front();
    double best_score = predictiveEd2pScore(table, model, best,
                                            utilized_pmds, cfg);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
        const double score = predictiveEd2pScore(
            table, model, ladder[i], utilized_pmds, cfg);
        if (score < best_score) {
            best = ladder[i];
            best_score = score;
        }
    }
    return best;
}

Hertz
predictiveProbeFrequency(const ChipSpec &spec, Hertz sampled)
{
    const Hertz snapped = spec.snapToLadder(sampled);
    const auto ladder = spec.frequencyLadder();
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        if (std::fabs(ladder[i] - snapped) <= 1.0)
            return i > 0 ? ladder[i - 1] : ladder[i + 1];
    }
    ECOSCHED_PANIC("sampled frequency off the ladder");
}

} // namespace ecosched
