/**
 * @file
 * The daemon's Table II: correlation of voltage-droop magnitude with
 * utilized PMDs and the safe Vmin per frequency class.
 *
 * The paper's daemon deliberately avoids Vmin *prediction* ("the
 * prediction schemes ... are error-prone and can lead to system
 * failures"); it uses the measured characterization table plus a
 * fail-safe ordering.  This class is that table, materialised from a
 * VminModel the way the authors materialised it from measurements,
 * with an optional extra guardband.
 */

#ifndef ECOSCHED_CORE_DROOP_TABLE_HH
#define ECOSCHED_CORE_DROOP_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "common/units.hh"
#include "vmin/vmin_model.hh"

namespace ecosched {

/// One row of the daemon's table (one droop-magnitude class).
struct DroopTableRow
{
    std::uint32_t maxPmds = 0; ///< largest PMD count of the class
    double binLoMv = 0.0;      ///< droop magnitude bin lower bound
    double binHiMv = 0.0;      ///< droop magnitude bin upper bound
    /// Safe Vmin per frequency class (guardband already applied).
    std::map<VminFreqClass, Volt> safeVmin;
};

/**
 * Materialised characterization table used by the daemon.
 */
class DroopClassTable
{
  public:
    /**
     * Build from a characterized Vmin model.
     * @param guardband Extra safety margin added on every entry.
     */
    explicit DroopClassTable(const VminModel &model,
                             Volt guardband = 0.0);

    /// The chip this table describes.
    const ChipSpec &spec() const { return chipSpec; }

    /// Guardband baked into the entries.
    Volt guardband() const { return extraGuardband; }

    /// All rows, ascending PMD count.
    const std::vector<DroopTableRow> &rows() const { return entries; }

    /**
     * Safe supply voltage (guardband included, clamped to nominal)
     * for running @p utilized_pmds PMDs with the highest clock at
     * ladder frequency @p f.
     */
    Volt safeVoltage(Hertz f, std::uint32_t utilized_pmds) const;

    /**
     * Safe voltage for a whole-chip configuration: per-PMD
     * frequencies and the set of utilized PMDs.  Uses the most
     * restrictive frequency class among utilized PMDs.
     */
    Volt safeVoltageFor(const std::vector<Hertz> &pmd_freqs,
                        const std::vector<bool> &pmd_utilized) const;

    /**
     * Persist the table in a human-readable text format, so a chip
     * can be characterized once and the daemon deployed from the
     * stored result (the paper's offline-characterization
     * workflow).
     */
    void save(std::ostream &os) const;

    /**
     * Load a table previously written by save() for the given chip.
     * @throws FatalError on malformed input or a chip mismatch.
     */
    static DroopClassTable load(std::istream &is,
                                const ChipSpec &spec);

  private:
    DroopClassTable() = default; ///< for load()

    ChipSpec chipSpec;
    Volt extraGuardband = 0.0;
    std::vector<DroopTableRow> entries;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_DROOP_TABLE_HH
