#include "core/droop_table.hh"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "common/error.hh"

namespace ecosched {

DroopClassTable::DroopClassTable(const VminModel &model, Volt guardband)
    : chipSpec(model.spec()), extraGuardband(guardband)
{
    fatalIf(guardband < 0.0, "guardband must be non-negative");

    for (const auto &dc : chipSpec.droopClasses) {
        DroopTableRow row;
        row.maxPmds = dc.maxPmds;
        row.binLoMv = dc.binLoMv;
        row.binHiMv = dc.binHiMv;
        for (const auto &[cls, values] :
             model.params().tableMv) {
            (void)values;
            // Pick any ladder frequency of this class to query the
            // model uniformly through its public interface.
            Hertz representative = 0.0;
            for (Hertz f : chipSpec.frequencyLadder()) {
                if (chipSpec.vminFreqClass(f) == cls)
                    representative = f;
            }
            if (representative == 0.0)
                continue; // class absent on this chip
            const Volt v =
                model.tableVmin(representative, dc.maxPmds)
                + extraGuardband;
            row.safeVmin[cls] = std::min(v, chipSpec.vNominal);
        }
        entries.push_back(std::move(row));
    }
}

Volt
DroopClassTable::safeVoltage(Hertz f,
                             std::uint32_t utilized_pmds) const
{
    if (utilized_pmds == 0)
        return entries.front().safeVmin.begin()->second;
    const std::size_t idx = chipSpec.droopClassIndex(utilized_pmds);
    const VminFreqClass cls =
        chipSpec.vminFreqClass(chipSpec.snapToLadder(f));
    const auto &row = entries[idx];
    const auto it = row.safeVmin.find(cls);
    ECOSCHED_ASSERT(it != row.safeVmin.end(),
                    "table missing a frequency class");
    return it->second;
}

Volt
DroopClassTable::safeVoltageFor(
    const std::vector<Hertz> &pmd_freqs,
    const std::vector<bool> &pmd_utilized) const
{
    fatalIf(pmd_freqs.size() != chipSpec.numPmds() ||
                pmd_utilized.size() != chipSpec.numPmds(),
            "expected one frequency/flag per PMD");
    std::uint32_t utilized = 0;
    Hertz max_f = 0.0;
    for (PmdId p = 0; p < chipSpec.numPmds(); ++p) {
        if (!pmd_utilized[p])
            continue;
        ++utilized;
        max_f = std::max(max_f, pmd_freqs[p]);
    }
    if (utilized == 0)
        return entries.front().safeVmin.begin()->second;
    return safeVoltage(max_f, utilized);
}

namespace {

const char *const tableMagic = "ecosched-droop-table";
const int tableVersion = 1;

VminFreqClass
freqClassFromName(const std::string &name)
{
    if (name == "high")
        return VminFreqClass::High;
    if (name == "half")
        return VminFreqClass::Half;
    if (name == "deep")
        return VminFreqClass::Deep;
    fatal("unknown Vmin frequency class '", name, "'");
}

} // namespace

void
DroopClassTable::save(std::ostream &os) const
{
    os << tableMagic << " v" << tableVersion << "\n";
    os << "chip " << chipSpec.name << "\n";
    os << "guardband_mv " << units::toMilliVolts(extraGuardband)
       << "\n";
    os << "rows " << entries.size() << "\n";
    for (const auto &row : entries) {
        os << "row " << row.maxPmds << " " << row.binLoMv << " "
           << row.binHiMv;
        for (const auto &[cls, v] : row.safeVmin) {
            os << " " << vminFreqClassName(cls) << " "
               << units::toMilliVolts(v);
        }
        os << "\n";
    }
}

DroopClassTable
DroopClassTable::load(std::istream &is, const ChipSpec &spec)
{
    spec.validate();
    DroopClassTable table;
    table.chipSpec = spec;

    std::string magic;
    std::string version;
    fatalIf(!(is >> magic >> version) || magic != tableMagic,
            "not an ecosched droop table");
    std::string expected_version = "v";
    expected_version += std::to_string(tableVersion);
    fatalIf(version != expected_version,
            "unsupported droop-table version '", version, "'");

    std::string key;
    fatalIf(!(is >> key) || key != "chip",
            "droop table missing the chip record");
    std::string chip_name;
    std::getline(is, chip_name);
    // Trim the leading separator space.
    if (!chip_name.empty() && chip_name.front() == ' ')
        chip_name.erase(0, 1);
    fatalIf(chip_name != spec.name,
            "droop table was characterized for '", chip_name,
            "', not '", spec.name, "'");

    double guardband_mv = 0.0;
    fatalIf(!(is >> key >> guardband_mv) || key != "guardband_mv",
            "droop table missing the guardband record");
    fatalIf(guardband_mv < 0.0, "negative guardband in table");
    table.extraGuardband = units::mV(guardband_mv);

    std::size_t rows = 0;
    fatalIf(!(is >> key >> rows) || key != "rows",
            "droop table missing the row count");
    fatalIf(rows == 0, "droop table has no rows");

    is >> std::ws;
    for (std::size_t i = 0; i < rows; ++i) {
        std::string line;
        fatalIf(!std::getline(is, line),
                "droop table truncated at row ", i);
        std::istringstream row_is(line);
        DroopTableRow row;
        fatalIf(!(row_is >> key >> row.maxPmds >> row.binLoMv
                  >> row.binHiMv) ||
                    key != "row",
                "malformed droop-table row ", i);
        std::string cls_name;
        double mv = 0.0;
        while (row_is >> cls_name >> mv) {
            fatalIf(mv <= 0.0, "non-positive Vmin in table");
            row.safeVmin[freqClassFromName(cls_name)] =
                units::mV(mv);
        }
        fatalIf(row.safeVmin.empty(),
                "droop-table row ", i, " has no Vmin entries");
        table.entries.push_back(std::move(row));
    }

    // Structural consistency with the chip.
    fatalIf(table.entries.size() != spec.droopClasses.size(),
            "droop table has ", table.entries.size(),
            " rows but ", spec.name, " has ",
            spec.droopClasses.size(), " droop classes");
    std::uint32_t prev = 0;
    for (const auto &row : table.entries) {
        fatalIf(row.maxPmds <= prev,
                "droop-table rows must have increasing PMD counts");
        prev = row.maxPmds;
    }
    fatalIf(prev < spec.numPmds(),
            "droop table does not cover all ", spec.numPmds(),
            " PMDs");
    return table;
}

} // namespace ecosched
