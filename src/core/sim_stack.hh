/**
 * @file
 * One-config simulation stack bundle with snapshot-and-branch
 * support.
 *
 * A SimStack owns the Machine + System + policy objects that one
 * scenario or sweep point runs on, captures a pristine snapshot the
 * moment the stack is wired, and can rewind to it (or to any later
 * capture) bit-identically.  Sweep engines use this in two ways:
 *
 *  - *Arena reuse*: a SimStackPool hands out leased stacks keyed by
 *    the full construction config; returning a lease parks the stack
 *    and the next acquire for the same config rewinds it to pristine
 *    instead of constructing a new one.  Steady-state sweep
 *    execution therefore does zero stack construction and only the
 *    container churn of the restore.
 *
 *  - *Prefix forking*: simulate a shared warmup prefix once, then
 *    capture() and restore the snapshot into one leased stack per
 *    grid point at the divergence (see bench/run_common.hh and the
 *    campaign/cluster layers).
 *
 * Ownership and lifetime: the pool owns parked stacks; a Lease owns
 * a checked-out stack and returns it on destruction.  Hooks wired
 * into a stack (fault injectors, SlimPro observers, instrument
 * callbacks) are NOT owned and NOT captured — every restore clears
 * them and the caller re-arms its own, exactly as it would after
 * fresh construction.
 */

#ifndef ECOSCHED_CORE_SIM_STACK_HH
#define ECOSCHED_CORE_SIM_STACK_HH

#include <cstdint>
#include <memory>

#include "core/policy.hh"
#include "exp/memo_cache.hh"
#include "exp/prototype_cache.hh"
#include "os/system.hh"
#include "sim/machine.hh"

namespace ecosched {

/**
 * Everything that determines a stack's construction identity.  Two
 * configs with equal key() are interchangeable: same chip sample
 * (machineSeed feeds the VminModel calibration), same policy stack,
 * same knobs.
 */
struct SimStackConfig
{
    ChipSpec chip;                    ///< platform (required)
    PolicyKind policy = PolicyKind::Baseline;
    std::uint64_t machineSeed = 1;    ///< chip-sample identity
    Seconds timestep = 0.01;
    double utilizationAlpha = 0.2;
    DaemonConfig daemon;              ///< base daemon knobs
    bool injectFaults = false;
    /// Negative: keep the machine default.
    Seconds migrationCost = -1.0;

    /// Injective-per-field key over every construction knob (the
    /// pool's arena key).  Distinct configs collide only if the
    /// 64-bit hash does.
    std::uint64_t key() const;

    /// key() with the chip-sample seed masked out: two configs with
    /// equal shapeKey() differ only in machineSeed, so either stack
    /// can stamp the other's chip sample (see the stamp ctor).
    std::uint64_t shapeKey() const
    {
        SimStackConfig shape = *this;
        shape.machineSeed = 0;
        return shape.key();
    }
};

/// Deep copy of a full stack's mutable state.  Pairs with
/// SimStack::capture()/restore(); layers restore bottom-up
/// (machine, then OS, then daemon).
struct SimSnapshot
{
    MachineSnapshot machine;
    SystemSnapshot system;
    bool hasDaemon = false;
    Daemon::Snapshot daemon; ///< valid when hasDaemon
};

/**
 * The bundle.  Construction wires the full stack (machine, system,
 * configurePolicy) and immediately captures the pristine snapshot.
 */
class SimStack
{
  public:
    explicit SimStack(const SimStackConfig &config);

    /**
     * Stamp a stack for @p config out of @p prototype — a stack
     * whose config matches in everything but the chip-sample seed
     * (shapeKey() equality, enforced).  The machine is stamped (see
     * Machine's stamp ctor), the OS/policy layers are wired fresh,
     * and the result is bit-identical to SimStack(config).  The
     * prototype must be unstepped; it is only read.
     */
    SimStack(const SimStack &prototype, const SimStackConfig &config);

    const SimStackConfig &config() const { return cfg; }
    Machine &machine() { return *mach; }
    System &system() { return *sys; }
    /// Daemon of the Placement/Optimal stacks (null otherwise).
    Daemon *daemon() { return setup.daemon.get(); }
    const Daemon *daemon() const { return setup.daemon.get(); }

    /// Deep-copy the whole stack's mutable state.
    SimSnapshot capture() const;

    /**
     * Rewind the stack to @p snapshot.  All non-owned hooks (fault
     * injectors, observers installed after setup) are dropped; the
     * caller re-arms its own afterwards.
     */
    void restore(const SimSnapshot &snapshot);

    /// The snapshot captured right after construction.
    const SimSnapshot &pristine() const { return *pristineState; }

    /// Rewind to the as-constructed state (arena reuse).
    void restoreToPristine() { restore(*pristineState); }

    /// Fork: build a fresh stack with the same config and copy this
    /// stack's current state into it (prefix-and-branch execution).
    std::unique_ptr<SimStack> clone() const;

  private:
    SimStackConfig cfg;
    std::unique_ptr<Machine> mach;
    std::unique_ptr<System> sys;
    PolicySetup setup;
    std::unique_ptr<SimSnapshot> pristineState;
};

/**
 * Pool of reusable stacks keyed by SimStackConfig::key().  Thread-
 * safe; the sweep engines keep one pool per sweep so each worker
 * thread converges on its own arena per hot config (~jobs arenas per
 * key in steady state).
 */
class SimStackPool
{
  public:
    using Lease = ArenaPool<SimStack>::Lease;

    /// Check out a stack for @p config — a parked arena rewound to
    /// pristine when one exists, a fresh construction otherwise.
    Lease acquire(const SimStackConfig &config)
    {
        return pool.acquire(
            config.key(),
            [&config] {
                return std::make_unique<SimStack>(config);
            },
            [](SimStack &stack) { stack.restoreToPristine(); });
    }

    ArenaPool<SimStack>::Stats stats() const { return pool.stats(); }

    /// Stacks currently parked across all keys.
    std::size_t idleCount() const { return pool.idleCount(); }

  private:
    ArenaPool<SimStack> pool;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_SIM_STACK_HH
