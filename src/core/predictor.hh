/**
 * @file
 * Counter-feature safe-Vmin predictor — the class of schemes the
 * paper evaluates and *rejects*:
 *
 *   "we do not use any sophisticated mechanism for predicting the
 *    safe Vmin because the prediction schemes for Vmin that have
 *    been proposed in the literature are error-prone and can lead
 *    to system failures in real microprocessors" (§VI.A).
 *
 * This implementation exists to quantify that argument
 * (bench/ablation_predictor): it estimates how far below the
 * characterized Table II value the *current* workload could run,
 * from the same PMU features the daemon already samples (the L3C
 * access rate), and exposes the aggressiveness / misprediction
 * trade-off.  Because the proxy is imperfect — a program's cache
 * behaviour does not fully determine its Vmin sensitivity — an
 * aggressive predictor occasionally lands below the true Vmin and
 * the fault injector shows the resulting SDCs and crashes.
 *
 * The file also hosts the MODELSEARCH predictive-governor fit
 * (DESIGN.md §16): an online CPI(f) = base + slope·f regression per
 * process, refit from the counters the daemon already samples, and
 * the ED2P frequency planner that jumps straight to the predicted
 * optimal ladder step instead of stepping the ondemand ladder.
 * Unlike the Vmin predictor above, a CPI misfit costs performance or
 * energy but never safety — the chosen frequency always runs at its
 * characterized safe voltage.
 */

#ifndef ECOSCHED_CORE_PREDICTOR_HH
#define ECOSCHED_CORE_PREDICTOR_HH

#include "common/units.hh"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/droop_table.hh"

namespace ecosched {

/**
 * Predicts a per-workload margin below the characterized table
 * entry.  Stateless; deterministic for identical inputs.
 */
class CounterVminPredictor
{
  public:
    /// Predictor knobs.
    struct Config
    {
        /**
         * Fraction of the predicted margin actually exploited, in
         * [0, 1].  0 degenerates to the table (always safe); 1
         * trusts the proxy fully.
         */
        double aggressiveness = 1.0;

        /// Assumed workload-to-workload Vmin spread in a
        /// single-core run [mV] (the regression's dynamic range).
        double assumedSpreadMv = 30.0;

        /// Variation fade-out exponent (matches VminModel's).
        double attenExponent = 0.75;

        /// L3C rate [per 1M cycles] the proxy maps to "most
        /// sensitive workload" (zero predicted margin).
        double saturationRate = 12000.0;
    };

    explicit CounterVminPredictor(Config config);

    /// Predictor with the default knobs.
    CounterVminPredictor() : CounterVminPredictor(Config{}) {}

    /// Knobs in use.
    const Config &config() const { return cfg; }

    /**
     * Predicted exploitable margin below the table entry [V] for a
     * configuration running @p active_cores cores whose most
     * memory-intensive process exhibits @p max_l3_per_mcycles.
     *
     * Rationale of the proxy: high-L3C programs stress the supply
     * with long-latency bursts (assumed Vmin-sensitive, small
     * margin); low-L3C programs are assumed tolerant (large
     * margin).  The assumption is only statistically true — which
     * is exactly the failure mode the paper warns about.
     */
    Volt predictedMargin(std::uint32_t active_cores,
                         double max_l3_per_mcycles) const;

    /**
     * Predicted safe supply for a configuration: the table value
     * minus the predicted margin, floored at the chip's regulator
     * minimum.
     */
    Volt predictSafeVoltage(const DroopClassTable &table, Hertz f,
                            std::uint32_t utilized_pmds,
                            std::uint32_t active_cores,
                            double max_l3_per_mcycles) const;

  private:
    Config cfg;
};

/**
 * Online linear CPI-versus-frequency fit for one process:
 *
 *     CPI(f) = base + slope · f
 *
 * The analytic form follows from the machine model: the core-bound
 * cycles per instruction are frequency-invariant (base) while the
 * memory-stall time is fixed in *seconds*, so its cycle cost scales
 * linearly with the clock (slope = stall seconds per instruction).
 * Two samples at distinct ladder frequencies pin both coefficients;
 * further samples refine them by least squares.
 *
 * Samples are keyed by snapped ladder frequency — a re-observation
 * at a known frequency replaces the old point (the fit tracks the
 * program's current phase, not its history).  Value-copyable, so a
 * daemon snapshot carries the fit.
 */
class CpiFrequencyModel
{
  public:
    /// Record an observed (frequency, cycles-per-instruction) pair.
    void addSample(Hertz f, double cpi);

    /// Whether both coefficients are pinned (>= 2 distinct
    /// frequencies observed).
    bool fitted() const { return ok; }

    /// Distinct frequencies observed so far.
    std::size_t samples() const { return points.size(); }

    /// Frequency-invariant CPI component (fitted() only).
    double base() const { return c; }

    /// Memory-stall cycles per instruction per Hz (fitted() only).
    double slope() const { return s; }

    /// Predicted CPI at @p f (fitted() only).
    double cpiAt(Hertz f) const { return c + s * f; }

    /// The single frequency observed so far (samples() == 1 only;
    /// the probe planner picks its neighbour).
    Hertz soleFrequency() const;

  private:
    void refit();

    /// Latest CPI per distinct snapped frequency, insertion order.
    std::vector<std::pair<Hertz, double>> points;
    double c = 0.0;
    double s = 0.0;
    bool ok = false;
};

/// Predictive-governor knobs (MODELSEARCH, DESIGN.md §16).
struct PredictiveGovernorConfig
{
    /**
     * Master switch.  Off (the default) keeps the daemon bit-inert:
     * no fit state is populated, no probe or jump is ever issued,
     * and every control sequence matches a build without the
     * governor.
     */
    bool enabled = false;

    /// Leakage share of total chip power at (fMax, vNominal) in the
    /// relative power proxy the ED2P score uses.
    double leakageFraction = 0.3;

    /// Minimum relative ED2P gain, score(current)/score(best) - 1,
    /// before the governor moves off the current frequency
    /// (hysteresis against fit jitter).
    double minGain = 0.02;
};

/**
 * Relative ED2P score of running the fitted workload at ladder
 * frequency @p f with @p utilized_pmds PMDs utilized:
 *
 *     score(f) = P(f, V(f)) · (CPI(f) / f)^3
 *
 * with V(f) the characterized safe voltage and P the normalized
 * power proxy (1-w)·(V/Vnom)²·(f/fmax) + w·(V/Vnom), w the
 * configured leakage fraction.  Only ratios between scores are
 * meaningful.  Requires model.fitted().
 */
double predictiveEd2pScore(const DroopClassTable &table,
                           const CpiFrequencyModel &model, Hertz f,
                           std::uint32_t utilized_pmds,
                           const PredictiveGovernorConfig &cfg);

/**
 * The ladder frequency minimizing predictiveEd2pScore (ascending
 * scan, strict `<`: ties keep the lower clock and its lower safe
 * voltage).  Requires model.fitted() and utilized_pmds >= 1.
 */
Hertz predictiveEd2pOptimum(const DroopClassTable &table,
                            const CpiFrequencyModel &model,
                            std::uint32_t utilized_pmds,
                            const PredictiveGovernorConfig &cfg);

/**
 * The probe frequency that pins a one-sample fit's second
 * coefficient: the ladder step below the sampled frequency, or the
 * step above when the sample sits at the ladder bottom.
 */
Hertz predictiveProbeFrequency(const ChipSpec &spec, Hertz sampled);

} // namespace ecosched

#endif // ECOSCHED_CORE_PREDICTOR_HH
