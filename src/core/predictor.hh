/**
 * @file
 * Counter-feature safe-Vmin predictor — the class of schemes the
 * paper evaluates and *rejects*:
 *
 *   "we do not use any sophisticated mechanism for predicting the
 *    safe Vmin because the prediction schemes for Vmin that have
 *    been proposed in the literature are error-prone and can lead
 *    to system failures in real microprocessors" (§VI.A).
 *
 * This implementation exists to quantify that argument
 * (bench/ablation_predictor): it estimates how far below the
 * characterized Table II value the *current* workload could run,
 * from the same PMU features the daemon already samples (the L3C
 * access rate), and exposes the aggressiveness / misprediction
 * trade-off.  Because the proxy is imperfect — a program's cache
 * behaviour does not fully determine its Vmin sensitivity — an
 * aggressive predictor occasionally lands below the true Vmin and
 * the fault injector shows the resulting SDCs and crashes.
 */

#ifndef ECOSCHED_CORE_PREDICTOR_HH
#define ECOSCHED_CORE_PREDICTOR_HH

#include "common/units.hh"

#include <cstdint>
#include "core/droop_table.hh"

namespace ecosched {

/**
 * Predicts a per-workload margin below the characterized table
 * entry.  Stateless; deterministic for identical inputs.
 */
class CounterVminPredictor
{
  public:
    /// Predictor knobs.
    struct Config
    {
        /**
         * Fraction of the predicted margin actually exploited, in
         * [0, 1].  0 degenerates to the table (always safe); 1
         * trusts the proxy fully.
         */
        double aggressiveness = 1.0;

        /// Assumed workload-to-workload Vmin spread in a
        /// single-core run [mV] (the regression's dynamic range).
        double assumedSpreadMv = 30.0;

        /// Variation fade-out exponent (matches VminModel's).
        double attenExponent = 0.75;

        /// L3C rate [per 1M cycles] the proxy maps to "most
        /// sensitive workload" (zero predicted margin).
        double saturationRate = 12000.0;
    };

    explicit CounterVminPredictor(Config config);

    /// Predictor with the default knobs.
    CounterVminPredictor() : CounterVminPredictor(Config{}) {}

    /// Knobs in use.
    const Config &config() const { return cfg; }

    /**
     * Predicted exploitable margin below the table entry [V] for a
     * configuration running @p active_cores cores whose most
     * memory-intensive process exhibits @p max_l3_per_mcycles.
     *
     * Rationale of the proxy: high-L3C programs stress the supply
     * with long-latency bursts (assumed Vmin-sensitive, small
     * margin); low-L3C programs are assumed tolerant (large
     * margin).  The assumption is only statistically true — which
     * is exactly the failure mode the paper warns about.
     */
    Volt predictedMargin(std::uint32_t active_cores,
                         double max_l3_per_mcycles) const;

    /**
     * Predicted safe supply for a configuration: the table value
     * minus the predicted margin, floored at the chip's regulator
     * minimum.
     */
    Volt predictSafeVoltage(const DroopClassTable &table, Hertz f,
                            std::uint32_t utilized_pmds,
                            std::uint32_t active_cores,
                            double max_l3_per_mcycles) const;

  private:
    Config cfg;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_PREDICTOR_HH
