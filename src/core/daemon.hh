/**
 * @file
 * The online monitoring daemon — the paper's primary contribution
 * (§VI.A, Figure 13).
 *
 * Two cooperating parts:
 *
 *  - *Monitoring*: a watchdog that periodically reads each running
 *    process's L3C access count over ~1M-cycle windows (through the
 *    kernel-module counter path) and classifies it as CPU- or
 *    memory-intensive against the 3K/1M-cycles threshold; it also
 *    tracks the utilized PMDs, which determine the droop class and
 *    hence the current safe Vmin (Table II).
 *
 *  - *Placement*: invoked on every process-list or classification
 *    change; computes the target core allocation and per-PMD
 *    frequencies (PlacementEngine) and applies them with the
 *    fail-safe ordering: the voltage is first *raised* to the safe
 *    Vmin of the most demanding configuration touched during the
 *    transition, then frequencies/placements change, then the
 *    voltage is *lowered* to the new configuration's safe Vmin.
 *
 * The daemon plugs into the System as its PlacementPolicy and
 * Governor, exactly like the real daemon guides the Linux scheduler
 * and replaces the ondemand governor.
 */

#ifndef ECOSCHED_CORE_DAEMON_HH
#define ECOSCHED_CORE_DAEMON_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "core/classifier.hh"
#include "core/droop_table.hh"
#include "core/placement.hh"
#include "core/predictor.hh"
#include "os/perf_reader.hh"
#include "os/system.hh"

namespace ecosched {

/**
 * Fail-safe recovery knobs (§VI.A).  When a process completes with a
 * failure outcome (SDC, crash, hang) the daemon first restores the
 * nominal supply, then quarantines the V/F point that was live when
 * the failure surfaced (its table entry is evidently optimistic for
 * this workload) behind an extra guard margin, and finally re-runs
 * or writes off the victim job.
 */
struct RecoveryConfig
{
    /// React to failed completions at all.  Recovery is part of the
    /// fail-safe protocol: it also requires failSafeOrdering.
    bool enabled = true;

    /// Hold the supply at nominal after a detection before any
    /// voltage lowering resumes.
    Seconds hold = 1.0;

    /// Extra margin added onto a quarantined point's table entry.
    Volt quarantineMargin = units::mV(20.0);

    /// How long a quarantined point keeps the extra margin.
    Seconds quarantineWindow = 120.0;

    /// Re-submit the victim job after a failure.
    bool rerunFailedJobs = true;

    /// Re-submissions per original job before it is written off.
    std::uint32_t maxRetries = 1;
};

/// Fail-safe recovery bookkeeping.
struct RecoveryStats
{
    std::uint64_t detections = 0;  ///< failed completions observed
    std::uint64_t recoveries = 0;  ///< raise-to-nominal sequences
    std::uint64_t retries = 0;     ///< victim jobs re-submitted
    std::uint64_t quarantinedPoints = 0; ///< distinct points penalised
    std::uint64_t jobsLost = 0;    ///< failures not re-run
};

/// Daemon knobs.
struct DaemonConfig
{
    /// Guide thread placement (core allocation + migration).
    bool controlPlacement = true;

    /// Drive per-PMD frequencies (ondemand governor disabled).
    bool controlFrequency = true;

    /// Drive the supply voltage (false in the paper's "Placement"
    /// configuration, which keeps the voltage nominal).
    bool controlVoltage = true;

    /// Use the fail-safe raise-voltage-first ordering.  Disabling
    /// this models a naive daemon (ablation only — unsafe).
    bool failSafeOrdering = true;

    /// Monitoring period (the paper's 1M-cycle count takes
    /// 300-500 ms depending on IPC).
    Seconds samplingInterval = 0.4;

    /// Minimum cycle window before a sample is classified.
    Cycles minSampleCycles = 1000000;

    /// Classifier knobs (threshold, hysteresis).
    Classifier::Config classifier;

    /// Placement-engine clock choices.
    PlacementEngine::Config placement;

    /// Extra guardband baked into the daemon's Table II copy.  The
    /// paper programs the measured table values directly (its
    /// fail-safe is the ordering, not an extra margin), so the
    /// default is 0; raise it to model distrustful deployments.
    Volt guardband = 0.0;

    /// Read counters through the noisy Perf path instead of the
    /// kernel module (ablation).
    bool usePerfToolReader = false;

    /**
     * Undervolt below Table II using the counter-feature predictor
     * (ablation only — the paper rejects prediction as error-prone;
     * with fault injection on, aggressive settings fail).
     */
    bool useVminPredictor = false;

    /// Predictor knobs (when useVminPredictor is set).
    CounterVminPredictor::Config predictor;

    /**
     * MODELSEARCH predictive governor (DESIGN.md §16): fit
     * CPI(f) = base + slope·f per process from the counters the
     * monitor already samples and jump each utilized PMD straight to
     * the predicted ED2P-optimal ladder frequency, instead of the
     * engine's binary CPU/memory clock choice.  Off by default —
     * the daemon is then bit-inert with respect to builds without
     * the governor (no fit state, no probes, identical control
     * sequences).
     */
    PredictiveGovernorConfig predictive;

    /// Fail-safe recovery knobs.
    RecoveryConfig recovery;

    /// Seed for measurement-noise sampling.
    std::uint64_t seed = 99;
};

/// Daemon bookkeeping for reports and tests.
struct DaemonStats
{
    std::uint64_t samplesTaken = 0;
    std::uint64_t classificationChanges = 0;
    std::uint64_t plansComputed = 0;
    std::uint64_t placementsApplied = 0;
    std::uint64_t voltageRaises = 0;
    std::uint64_t voltageDrops = 0;
    Seconds monitorCpuTime = 0.0; ///< modelled counter-read overhead
    /// Predictive governor only: ladder probes programmed to pin a
    /// one-sample CPI fit, and direct jumps to a predicted optimum.
    std::uint64_t predictiveProbes = 0;
    std::uint64_t predictiveJumps = 0;
};

/**
 * The daemon.  Construct over a System; it installs itself as the
 * system's placement policy (when controlPlacement) and governor.
 */
class Daemon
{
  public:
    /**
     * @param system Target system (must outlive the daemon).
     * @param config Knobs.
     *
     * The daemon builds its Table II copy from the machine's
     * VminModel, mirroring the authors' offline characterization.
     */
    Daemon(System &system, DaemonConfig config = DaemonConfig{});

    /// Knobs in use.
    const DaemonConfig &config() const { return cfg; }

    /// The daemon's materialised Table II.
    const DroopClassTable &table() const { return droopTable; }

    /// Bookkeeping counters.
    const DaemonStats &stats() const { return statistics; }

    /// Placement engine (resolved clock choices).
    const PlacementEngine &placementEngine() const { return engine; }

    /// Current classification of a running process.
    WorkloadClass classOf(Pid pid) const;

    /// Counter-read path in use.
    const PerfReader &perfReader() const { return *reader; }

    /// Fail-safe recovery bookkeeping.
    const RecoveryStats &recoveryStats() const { return recStats; }

    /// Whether a recovery hold window is active (the supply stays at
    /// nominal; no voltage lowering until it expires).
    bool inRecovery() const;

    /// Whether the table point for running @p utilized_pmds PMDs
    /// with the highest clock at @p f currently carries a quarantine
    /// margin.
    bool isQuarantined(Hertz f, std::uint32_t utilized_pmds) const;

    /// Wraps the counter-read path (fault injection installs sensor
    /// noise here; the wrapper must return a non-null reader).
    using PerfReaderDecorator = std::function<
        std::unique_ptr<PerfReader>(std::unique_ptr<PerfReader>)>;

    /// Replace the counter-read path with a wrapper around the
    /// current one.
    void decoratePerfReader(const PerfReaderDecorator &wrap);

    // --- hooks driven by the System adapters (public so the
    // adapters can reach them; not intended for direct use) ---------
    /// Governor-tick hook: runs the monitoring part.
    void tick();

    /// Whether the next tick() would pass the sampling-interval
    /// throttle (the governor adapter's quiescence predicate for
    /// macro-stepped execution).
    bool wouldTick() const;

    /// Event horizon of the monitoring loop: the next time tick()
    /// passes the throttle, one timestep early (the governor-horizon
    /// safety margin; see Governor::nextActivity).
    Seconds nextTickTime() const;

    /// Placement-policy hook: admit a new process.
    std::vector<CoreId> placeNewProcess(const Process &process,
                                        std::uint32_t threads);

    /// Process-lifecycle hook.
    void onProcessEvent(const ProcessEvent &event);

  private:
    struct MonitorEntry
    {
        ThreadCounters snapshot;
        Seconds lastSample = 0.0;
        Classifier classifier;
        double lastRate = -1.0; ///< last observed L3C/1M cycles
        /// Last observed DRAM accesses/1M cycles; only sampled (and
        /// only costing a perf read) when the placement engine is
        /// bandwidth-aware.  Negative until the first sample.
        double lastDramRate = -1.0;
        /// Predictive governor only: the per-process CPI(f) fit,
        /// refit from the cycle/instruction counters of each
        /// monitoring window (no extra counter reads).  Empty when
        /// the governor is disabled.
        CpiFrequencyModel cpiFit = {};
    };

    /// One quarantined table point: a (frequency class, droop class)
    /// pair, penalised until a deadline.
    struct QuarantineEntry
    {
        VminFreqClass cls;
        std::size_t droopClass;
        Seconds until;
    };

  public:
    /**
     * Deep copy of the daemon's mutable state (snapshot-and-branch
     * sweep execution): monitoring entries with their classifier
     * hysteresis and predictive CPI fits, the RNG position,
     * bookkeeping counters, and the
     * full fail-safe recovery state — hold window, quarantined
     * points, retry generations and the live V/F point.  A clone
     * taken inside a recovery window carries the window.  The Table
     * II copy, the placement engine and the predictor are pure
     * functions of (machine, config) — construction identity, not
     * state.  Only valid for a daemon built over the same machine
     * with the same DaemonConfig; the SimStack layer enforces this.
     */
    struct Snapshot
    {
        Rng rng;
        Seconds lastMonitorRun = -1.0;
        std::map<Pid, MonitorEntry> monitored;
        DaemonStats statistics;
        Volt pendingVoltage = -1.0;
        RecoveryStats recStats;
        std::vector<QuarantineEntry> quarantine;
        Seconds recoveryHoldUntil = -1.0;
        std::map<Pid, std::uint32_t> retryGeneration;
        bool pointValid = false;
        VminFreqClass pointCls = VminFreqClass::High;
        std::size_t pointDroopClass = 0;
    };

    /// Deep-copy the daemon's mutable state.
    Snapshot capture() const;

    /**
     * Restore previously captured state.  The counter-read path is
     * rebuilt from the config, which drops any decorators installed
     * after construction (fault-injection sensor noise) — restored
     * state matches a freshly constructed daemon, and callers re-arm
     * their decorators exactly as they do after construction.
     */
    void restore(const Snapshot &snapshot);

    /**
     * Build a new daemon over @p target carrying this daemon's
     * state.  The new daemon installs its own adapters into
     * @p target (exactly like construction); @p target must mirror
     * this daemon's system state (System::capture()/restore()).
     */
    std::unique_ptr<Daemon> clone(System &target) const;

  private:
    PlacementRequest snapshotRequest(bool restrict_pmds) const;
    void applyPlan(const PlacementPlan &plan, Pid admit_pid);
    Volt requiredVoltage(const PlacementPlan &plan) const;
    Volt currentRequiredVoltage() const;
    void lowerVoltageIfPossible();
    /// Predictor margin for the live configuration (0 when the
    /// predictor is disabled or nothing runs).
    Volt predictorMargin() const;
    /// Quarantine margin owed by the (f, utilized) table point (0
    /// when it is not quarantined).
    Volt quarantineExtra(Hertz f, std::uint32_t utilized_pmds) const;
    /// Record the live V/F point (the one a later failure would
    /// incriminate).
    void noteActivePoint();
    /// Predictive governor: refit, probe unfitted processes, jump
    /// fitted ones to their predicted ED2P-optimal PMD frequency
    /// (fail-safe ordering).  No-op unless cfg.predictive.enabled.
    void predictiveTick();
    /// Fail-safe recovery for a process that completed failed.
    void handleFailure(const Process &proc);

    System &sys;
    DaemonConfig cfg;
    DroopClassTable droopTable;
    PlacementEngine engine;
    CounterVminPredictor vminPredictor;
    std::unique_ptr<PerfReader> reader;
    Rng rng;
    Seconds lastMonitorRun = -1.0;
    std::map<Pid, MonitorEntry> monitored;
    DaemonStats statistics;
    /// Naive-ordering mode only: voltage target deferred to the
    /// next monitoring period (models the lazy daemon the paper's
    /// fail-safe ordering exists to avoid).  Negative when unset.
    Volt pendingVoltage = -1.0;

    // --- fail-safe recovery state ----------------------------------
    RecoveryStats recStats;
    std::vector<QuarantineEntry> quarantine;
    /// End of the active recovery hold window (negative when none).
    Seconds recoveryHoldUntil = -1.0;
    /// Retries already consumed per re-submitted pid's job chain.
    std::map<Pid, std::uint32_t> retryGeneration;
    /// Last busy V/F point observed after a daemon action.
    bool pointValid = false;
    VminFreqClass pointCls = VminFreqClass::High;
    std::size_t pointDroopClass = 0;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_DAEMON_HH
