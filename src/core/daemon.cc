#include "core/daemon.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"

namespace ecosched {

namespace {

/// Forwards the System's placement queries to the daemon.
class DaemonPlacer : public PlacementPolicy
{
  public:
    explicit DaemonPlacer(Daemon &daemon) : owner(daemon) {}
    const char *name() const override { return "ecosched-daemon"; }
    std::vector<CoreId>
    place(const System &, const Process &process,
          std::uint32_t threads) override
    {
        return owner.placeNewProcess(process, threads);
    }

  private:
    Daemon &owner;
};

/// Forwards the System's governor tick to the daemon's monitor.
class DaemonGovernor : public Governor
{
  public:
    explicit DaemonGovernor(Daemon &daemon) : owner(daemon) {}
    const char *name() const override { return "ecosched-daemon"; }
    void tick(System &) override { owner.tick(); }
    bool wouldAct(const System &) const override
    {
        return owner.wouldTick();
    }
    Seconds nextActivity(const System &) const override
    {
        return owner.nextTickTime();
    }

  private:
    Daemon &owner;
};

constexpr Volt voltEps = 1e-6;

} // namespace

Daemon::Daemon(System &system, DaemonConfig config)
    : sys(system),
      cfg(config),
      droopTable(system.machine().vminModel(), config.guardband),
      engine(system.spec(), config.placement),
      vminPredictor(config.predictor),
      rng(config.seed * 0x9e3779b97f4a7c15ull + 11)
{
    fatalIf(cfg.samplingInterval <= 0.0,
            "daemon sampling interval must be positive");
    fatalIf(cfg.minSampleCycles == 0,
            "daemon needs a positive cycle window");
    if (cfg.usePerfToolReader)
        reader = std::make_unique<PerfToolReader>();
    else
        reader = std::make_unique<KernelModuleReader>();

    if (cfg.controlPlacement)
        sys.setPlacementPolicy(std::make_unique<DaemonPlacer>(*this));
    sys.setGovernor(std::make_unique<DaemonGovernor>(*this));
    sys.addProcessObserver(
        [this](const ProcessEvent &ev) { onProcessEvent(ev); });
}

WorkloadClass
Daemon::classOf(Pid pid) const
{
    const auto it = monitored.find(pid);
    if (it == monitored.end())
        return cfg.classifier.initialClass;
    return it->second.classifier.current();
}

PlacementRequest
Daemon::snapshotRequest(bool restrict_pmds) const
{
    PlacementRequest req;
    req.restrictToCurrentPmds = restrict_pmds;
    for (Pid pid : sys.runningProcesses()) {
        const Process &proc = sys.process(pid);
        PlacementProc p;
        p.pid = pid;
        p.threads =
            static_cast<std::uint32_t>(proc.liveThreads.size());
        p.cls = classOf(pid);
        p.currentCores = proc.cores;
        if (cfg.placement.bandwidthAware) {
            const auto mit = monitored.find(pid);
            if (mit != monitored.end()
                && mit->second.lastDramRate > 0.0) {
                p.bwDemand = mit->second.lastDramRate;
            }
        }
        if (p.threads > 0)
            req.procs.push_back(std::move(p));
    }
    return req;
}

Volt
Daemon::predictorMargin() const
{
    if (!cfg.useVminPredictor)
        return 0.0;
    const auto running = sys.runningProcesses();
    if (running.empty())
        return 0.0;
    std::uint32_t active_cores = 0;
    // The binding process is the one the proxy deems most
    // sensitive: the highest observed L3C rate.  Processes without
    // a sample yet are treated as fully sensitive (zero margin).
    double max_rate = 0.0;
    bool any_unsampled = false;
    for (Pid pid : running) {
        active_cores += static_cast<std::uint32_t>(
            sys.process(pid).liveThreads.size());
        const auto it = monitored.find(pid);
        if (it == monitored.end() || it->second.lastRate < 0.0)
            any_unsampled = true;
        else
            max_rate = std::max(max_rate, it->second.lastRate);
    }
    if (active_cores == 0)
        return 0.0;
    if (any_unsampled)
        max_rate = vminPredictor.config().saturationRate;
    return vminPredictor.predictedMargin(active_cores, max_rate);
}

Volt
Daemon::quarantineExtra(Hertz f, std::uint32_t utilized_pmds) const
{
    if (utilized_pmds == 0 || quarantine.empty() || f <= 0.0)
        return 0.0;
    const ChipSpec &spec = sys.spec();
    const VminFreqClass cls =
        spec.vminFreqClass(spec.snapToLadder(f));
    const std::size_t idx = spec.droopClassIndex(utilized_pmds);
    const Seconds now = sys.now();
    for (const QuarantineEntry &q : quarantine)
        if (q.until > now && q.cls == cls && q.droopClass == idx)
            return cfg.recovery.quarantineMargin;
    return 0.0;
}

bool
Daemon::isQuarantined(Hertz f, std::uint32_t utilized_pmds) const
{
    return quarantineExtra(f, utilized_pmds) > 0.0;
}

bool
Daemon::inRecovery() const
{
    return recoveryHoldUntil >= 0.0 && sys.now() < recoveryHoldUntil;
}

Volt
Daemon::requiredVoltage(const PlacementPlan &plan) const
{
    const Volt table = droopTable.safeVoltageFor(
        plan.pmdFrequencies, plan.pmdUtilized);
    if (plan.utilizedPmds == 0)
        return table;
    Volt v = std::max(table - predictorMargin(),
                      sys.spec().vFloor);
    Hertz fmax = 0.0;
    for (PmdId p = 0; p < sys.spec().numPmds(); ++p)
        if (plan.pmdUtilized[p])
            fmax = std::max(fmax, plan.pmdFrequencies[p]);
    const Volt extra = quarantineExtra(fmax, plan.utilizedPmds);
    if (extra > 0.0)
        v = std::min(sys.spec().vNominal, std::max(v, table + extra));
    return v;
}

Volt
Daemon::currentRequiredVoltage() const
{
    const Machine &machine = sys.machine();
    const ChipSpec &spec = sys.spec();
    std::vector<Hertz> freqs(spec.numPmds());
    std::vector<bool> util(spec.numPmds(), false);
    bool any_busy = false;
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        freqs[p] = machine.chip().pmdFrequency(p);
        util[p] = machine.coreBusy(firstCoreOfPmd(p))
            || machine.coreBusy(secondCoreOfPmd(p));
        any_busy |= util[p];
    }
    const Volt table = droopTable.safeVoltageFor(freqs, util);
    if (!any_busy)
        return table;
    Volt v = std::max(table - predictorMargin(), spec.vFloor);
    Hertz fmax = 0.0;
    std::uint32_t utilized = 0;
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        if (!util[p])
            continue;
        ++utilized;
        fmax = std::max(fmax, freqs[p]);
    }
    const Volt extra = quarantineExtra(fmax, utilized);
    if (extra > 0.0)
        v = std::min(spec.vNominal, std::max(v, table + extra));
    return v;
}

void
Daemon::lowerVoltageIfPossible()
{
    if (!cfg.controlVoltage || inRecovery())
        return;
    Machine &machine = sys.machine();
    const Volt v_req = currentRequiredVoltage();
    if (machine.chip().voltage() > v_req + voltEps) {
        machine.slimPro().requestVoltage(sys.now(), v_req);
        ++statistics.voltageDrops;
    }
}

void
Daemon::applyPlan(const PlacementPlan &plan, Pid admit_pid)
{
    Machine &machine = sys.machine();
    const ChipSpec &spec = sys.spec();
    const Seconds now = sys.now();

    // --- fail-safe phase 1: raise the voltage to cover both the
    // current configuration and every transient of the transition --
    const Volt v_new = requiredVoltage(plan);
    if (cfg.controlVoltage && cfg.failSafeOrdering) {
        std::vector<Hertz> freqs = plan.pmdFrequencies;
        std::vector<bool> util = plan.pmdUtilized;
        for (PmdId p = 0; p < spec.numPmds(); ++p) {
            const bool busy = machine.coreBusy(firstCoreOfPmd(p))
                || machine.coreBusy(secondCoreOfPmd(p));
            if (busy) {
                util[p] = true;
                freqs[p] = std::max(freqs[p],
                                    machine.chip().pmdFrequency(p));
            }
        }
        const Volt v_pre = std::max(
            v_new, droopTable.safeVoltageFor(freqs, util));
        if (machine.chip().voltage() < v_pre - voltEps) {
            machine.slimPro().requestVoltage(now, v_pre);
            ++statistics.voltageRaises;
        }
    }

    // --- phase 2: program frequencies -------------------------------
    if (cfg.controlFrequency) {
        for (PmdId p = 0; p < spec.numPmds(); ++p) {
            machine.slimPro().requestPmdFrequency(
                now, p, plan.pmdFrequencies[p]);
        }
    }

    // --- phase 3: migrate already-running processes ----------------
    std::map<Pid, std::vector<CoreId>> moves;
    for (const auto &[pid, cores] : plan.assignment) {
        if (pid == admit_pid)
            continue;
        const Process &proc = sys.process(pid);
        if (proc.cores != cores)
            moves.emplace(pid, cores);
    }
    if (!moves.empty()) {
        sys.applyPlacement(moves);
        ++statistics.placementsApplied;
    }

    // --- phase 4: settle the voltage --------------------------------
    if (cfg.controlVoltage) {
        if (!cfg.failSafeOrdering) {
            // Naive ordering (ablation): the voltage follows the
            // configuration change only at the daemon's next
            // monitoring period — until then the chip runs the new
            // configuration on the old supply, transiently unsafe.
            pendingVoltage = v_new;
        } else if (admit_pid == invalidPid) {
            // No admission in flight: safe to settle down now.
            lowerVoltageIfPossible();
        }
        // Admissions settle on the Started event, once the new
        // process's threads actually occupy their cores.
    }

    noteActivePoint();
}

std::vector<CoreId>
Daemon::placeNewProcess(const Process &process, std::uint32_t threads)
{
    PlacementRequest req = snapshotRequest(false);
    PlacementProc np;
    np.pid = process.pid;
    np.threads = threads;
    np.cls = cfg.classifier.initialClass;
    req.procs.push_back(np);

    const PlacementPlan plan = engine.plan(req);
    ++statistics.plansComputed;
    if (!plan.feasible)
        return {};
    applyPlan(plan, process.pid);

    const auto it = plan.assignment.find(process.pid);
    ECOSCHED_ASSERT(it != plan.assignment.end(),
                    "plan is missing the admitted process");
    logDebug("daemon: admit pid ", process.pid, " (",
             workloadClassName(np.cls), ", ", threads, "T)");
    return it->second;
}

bool
Daemon::wouldTick() const
{
    return !(lastMonitorRun >= 0.0 &&
             sys.now() - lastMonitorRun < cfg.samplingInterval);
}

Seconds
Daemon::nextTickTime() const
{
    if (lastMonitorRun < 0.0)
        return sys.now(); // first monitoring pass is imminent
    return lastMonitorRun + cfg.samplingInterval - sys.timestep();
}

void
Daemon::tick()
{
    const Seconds now = sys.now();
    if (lastMonitorRun >= 0.0 &&
        now - lastMonitorRun < cfg.samplingInterval) {
        return;
    }
    lastMonitorRun = now;

    if (!cfg.failSafeOrdering && cfg.controlVoltage &&
        pendingVoltage > 0.0) {
        if (std::fabs(sys.machine().chip().voltage()
                      - pendingVoltage) > voltEps) {
            sys.machine().slimPro().requestVoltage(now,
                                                   pendingVoltage);
        }
        pendingVoltage = -1.0;
    }

    bool any_change = false;
    for (Pid pid : sys.runningProcesses()) {
        auto it = monitored.find(pid);
        if (it == monitored.end()) {
            it = monitored
                     .emplace(pid,
                              MonitorEntry{ThreadCounters{}, now,
                                           Classifier(cfg.classifier)})
                     .first;
        }
        MonitorEntry &entry = it->second;
        const ThreadCounters current = sys.processCounters(pid);
        const ThreadCounters delta = current.since(entry.snapshot);
        if (delta.cycles < cfg.minSampleCycles)
            continue;
        const double rate = reader->readL3PerMCycles(delta, rng);
        statistics.monitorCpuTime += reader->readCost() * 2.0;
        ++statistics.samplesTaken;
        entry.snapshot = current;
        entry.lastSample = now;
        entry.lastRate = rate;
        if (cfg.placement.bandwidthAware) {
            // Extra register pair for the bandwidth ranking; gated so
            // a stock daemon's read costs and RNG stream (perf-tool
            // noise draws) stay untouched.
            entry.lastDramRate =
                reader->readDramPerMCycles(delta, rng);
            statistics.monitorCpuTime += reader->readCost() * 2.0;
        }
        if (cfg.predictive.enabled && delta.instructions > 0
            && !sys.process(pid).cores.empty()) {
            // The CPI fit rides the cycle/instruction registers of
            // the window just read — no extra counter cost, no RNG
            // draw.  The window is attributed to the clock its PMD
            // runs now; a window spanning a frequency change smears
            // the fit, which the next window at the settled clock
            // corrects.
            const Hertz f = sys.machine().chip().pmdFrequency(
                pmdOfCore(sys.process(pid).cores.front()));
            entry.cpiFit.addSample(
                sys.spec().snapToLadder(f),
                static_cast<double>(delta.cycles)
                    / static_cast<double>(delta.instructions));
        }
        if (entry.classifier.update(rate)) {
            ++statistics.classificationChanges;
            any_change = true;
            logDebug("daemon: pid ", pid, " reclassified ",
                     workloadClassName(entry.classifier.current()),
                     " (", rate, " L3C/Mcycle)");
        }
    }

    if (any_change && cfg.controlPlacement) {
        // Classification change: re-place within the current
        // utilized-PMD set (§VI.A: "the utilized PMDs cannot be
        // changed" by this trigger).
        const PlacementPlan plan =
            engine.plan(snapshotRequest(true));
        ++statistics.plansComputed;
        if (plan.feasible)
            applyPlan(plan, invalidPid);
    }

    // MODELSEARCH predictive governor: runs after any replan so its
    // frequency choices override the engine's binary clocks, and
    // before the settling block so a jump's voltage lowers in the
    // same monitoring period.
    predictiveTick();

    // Periodic voltage settling: fresh counter samples can move the
    // requirement (predictor mode) even without a placement change.
    if (cfg.controlVoltage && cfg.failSafeOrdering) {
        Machine &machine = sys.machine();
        const Volt v_req = currentRequiredVoltage();
        if (machine.chip().voltage() < v_req - voltEps) {
            machine.slimPro().requestVoltage(now, v_req);
            ++statistics.voltageRaises;
        } else if (!inRecovery()
                   && machine.chip().voltage() > v_req + voltEps) {
            machine.slimPro().requestVoltage(now, v_req);
            ++statistics.voltageDrops;
        }
    }

    // Drop expired quarantine entries (their margin no longer
    // applies; keeping them would only grow the scan).
    std::erase_if(quarantine, [now](const QuarantineEntry &q) {
        return q.until <= now;
    });
    noteActivePoint();
}

void
Daemon::predictiveTick()
{
    if (!cfg.predictive.enabled || !cfg.controlFrequency)
        return;
    Machine &machine = sys.machine();
    const ChipSpec &spec = sys.spec();

    // Hosted pids per PMD and the utilized-PMD count, from the
    // process table (the droop class the planner scores against).
    std::vector<std::vector<Pid>> hosts(spec.numPmds());
    for (Pid pid : sys.runningProcesses()) {
        for (CoreId core : sys.process(pid).cores) {
            auto &list = hosts[pmdOfCore(core)];
            if (list.empty() || list.back() != pid)
                list.push_back(pid);
        }
    }
    std::uint32_t utilized = 0;
    for (PmdId p = 0; p < spec.numPmds(); ++p)
        utilized += hosts[p].empty() ? 0 : 1;
    if (utilized == 0)
        return;

    // Target clock per PMD.  A fitted process asks for its predicted
    // ED2P optimum (with hysteresis against the current clock); an
    // unfitted one with a sample asks for the probe neighbour that
    // pins its second coefficient.  PMDs shared by several processes
    // serve the most demanding request.
    std::vector<Hertz> target(spec.numPmds());
    bool any_jump = false;
    bool any_probe = false;
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        const Hertz current =
            spec.snapToLadder(machine.chip().pmdFrequency(p));
        target[p] = current;
        if (hosts[p].empty())
            continue;
        Hertz want = 0.0;
        bool probing = false;
        for (Pid pid : hosts[p]) {
            const auto it = monitored.find(pid);
            if (it == monitored.end())
                continue;
            const CpiFrequencyModel &fit = it->second.cpiFit;
            if (fit.fitted()) {
                Hertz f = predictiveEd2pOptimum(
                    droopTable, fit, utilized, cfg.predictive);
                if (f != current) {
                    const double cur_score = predictiveEd2pScore(
                        droopTable, fit, current, utilized,
                        cfg.predictive);
                    const double new_score = predictiveEd2pScore(
                        droopTable, fit, f, utilized,
                        cfg.predictive);
                    if (cur_score
                        < new_score * (1.0 + cfg.predictive.minGain))
                        f = current; // gain below the hysteresis bar
                }
                want = std::max(want, f);
            } else if (fit.samples() == 1) {
                const Hertz probe = predictiveProbeFrequency(
                    spec, fit.soleFrequency());
                if (probe != current) {
                    want = std::max(want, probe);
                    probing = true;
                }
            }
        }
        if (want > 0.0 && want != current) {
            target[p] = want;
            if (probing)
                any_probe = true;
            else
                any_jump = true;
        }
    }
    if (!any_jump && !any_probe)
        return;

    // Fail-safe ordering, mirroring applyPlan: raise the supply to
    // cover both the current and the target configuration, program
    // the clocks, and let the settling block that follows in tick()
    // bring the voltage down to the new requirement.
    const Seconds now = sys.now();
    if (cfg.controlVoltage && cfg.failSafeOrdering) {
        std::vector<Hertz> cover(spec.numPmds());
        std::vector<bool> util(spec.numPmds());
        for (PmdId p = 0; p < spec.numPmds(); ++p) {
            cover[p] = std::max(target[p],
                                machine.chip().pmdFrequency(p));
            util[p] = !hosts[p].empty()
                || machine.coreBusy(firstCoreOfPmd(p))
                || machine.coreBusy(secondCoreOfPmd(p));
        }
        const Volt v_pre = droopTable.safeVoltageFor(cover, util);
        if (machine.chip().voltage() < v_pre - voltEps) {
            machine.slimPro().requestVoltage(now, v_pre);
            ++statistics.voltageRaises;
        }
    }
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        if (target[p]
            != spec.snapToLadder(machine.chip().pmdFrequency(p)))
            machine.slimPro().requestPmdFrequency(now, p, target[p]);
    }
    if (cfg.controlVoltage && !cfg.failSafeOrdering) {
        // Naive ordering (ablation): the supply follows at the next
        // monitoring period, exactly like applyPlan.
        std::vector<bool> util(spec.numPmds());
        for (PmdId p = 0; p < spec.numPmds(); ++p)
            util[p] = !hosts[p].empty();
        pendingVoltage = droopTable.safeVoltageFor(target, util);
    }
    if (any_probe)
        ++statistics.predictiveProbes;
    if (any_jump)
        ++statistics.predictiveJumps;
    noteActivePoint();
}

void
Daemon::noteActivePoint()
{
    const Machine &machine = sys.machine();
    const ChipSpec &spec = sys.spec();
    Hertz fmax = 0.0;
    std::uint32_t utilized = 0;
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        const bool busy = machine.coreBusy(firstCoreOfPmd(p))
            || machine.coreBusy(secondCoreOfPmd(p));
        if (!busy)
            continue;
        ++utilized;
        fmax = std::max(fmax, machine.chip().pmdFrequency(p));
    }
    if (utilized == 0 || fmax <= 0.0)
        return; // idle: a failure cannot surface from this state
    pointCls = spec.vminFreqClass(spec.snapToLadder(fmax));
    pointDroopClass = spec.droopClassIndex(utilized);
    pointValid = true;
}

void
Daemon::handleFailure(const Process &proc)
{
    ++recStats.detections;
    Machine &machine = sys.machine();
    const ChipSpec &spec = sys.spec();
    const Seconds now = sys.now();

    // Recovery phase 1 (§VI.A): restore the known-good nominal
    // supply before any other control action touches the chip.
    if (cfg.controlVoltage
        && machine.chip().voltage() < spec.vNominal - voltEps) {
        machine.slimPro().requestVoltage(now, spec.vNominal);
        ++statistics.voltageRaises;
    }
    ++recStats.recoveries;
    recoveryHoldUntil = now + cfg.recovery.hold;

    // Phase 2: quarantine the V/F point that was live when the
    // failure surfaced — its table entry is evidently optimistic
    // for this workload.
    if (pointValid) {
        bool fresh = true;
        for (QuarantineEntry &q : quarantine) {
            if (q.cls == pointCls
                && q.droopClass == pointDroopClass) {
                q.until = now + cfg.recovery.quarantineWindow;
                fresh = false;
                break;
            }
        }
        if (fresh) {
            quarantine.push_back(
                {pointCls, pointDroopClass,
                 now + cfg.recovery.quarantineWindow});
            ++recStats.quarantinedPoints;
        }
    }

    // Phase 3: re-run or write off the victim job.
    const auto gen_it = retryGeneration.find(proc.pid);
    const std::uint32_t gen =
        gen_it == retryGeneration.end() ? 0 : gen_it->second;
    if (gen_it != retryGeneration.end())
        retryGeneration.erase(gen_it);
    if (cfg.recovery.rerunFailedJobs && proc.profile != nullptr
        && gen < cfg.recovery.maxRetries) {
        ++recStats.retries;
        logDebug("daemon: re-running failed pid ", proc.pid,
                 " (attempt ", gen + 1, ")");
        const Pid retry = sys.submit(*proc.profile, proc.threads);
        retryGeneration[retry] = gen + 1;
    } else {
        ++recStats.jobsLost;
    }
}

void
Daemon::decoratePerfReader(const PerfReaderDecorator &wrap)
{
    fatalIf(!wrap, "perf-reader decorator must not be null");
    reader = wrap(std::move(reader));
    fatalIf(!reader, "perf-reader decorator returned no reader");
}

Daemon::Snapshot
Daemon::capture() const
{
    Snapshot s;
    s.rng = rng;
    s.lastMonitorRun = lastMonitorRun;
    s.monitored = monitored;
    s.statistics = statistics;
    s.pendingVoltage = pendingVoltage;
    s.recStats = recStats;
    s.quarantine = quarantine;
    s.recoveryHoldUntil = recoveryHoldUntil;
    s.retryGeneration = retryGeneration;
    s.pointValid = pointValid;
    s.pointCls = pointCls;
    s.pointDroopClass = pointDroopClass;
    return s;
}

void
Daemon::restore(const Snapshot &s)
{
    rng = s.rng;
    lastMonitorRun = s.lastMonitorRun;
    monitored = s.monitored;
    statistics = s.statistics;
    pendingVoltage = s.pendingVoltage;
    recStats = s.recStats;
    quarantine = s.quarantine;
    recoveryHoldUntil = s.recoveryHoldUntil;
    retryGeneration = s.retryGeneration;
    pointValid = s.pointValid;
    pointCls = s.pointCls;
    pointDroopClass = s.pointDroopClass;
    // Rebuild the counter-read path from the config.  Decorators
    // (fault-injection sensor noise) wrap the reader with pointers
    // into injector state; carrying them across a restore would both
    // stack wrappers on arena reuse and dangle once the old injector
    // dies.  They are wiring — callers re-install them afterwards.
    if (cfg.usePerfToolReader)
        reader = std::make_unique<PerfToolReader>();
    else
        reader = std::make_unique<KernelModuleReader>();
}

std::unique_ptr<Daemon>
Daemon::clone(System &target) const
{
    auto copy = std::make_unique<Daemon>(target, cfg);
    copy->restore(capture());
    return copy;
}

void
Daemon::onProcessEvent(const ProcessEvent &event)
{
    if (event.kind == ProcessEventKind::Started) {
        if (!monitored.count(event.pid)) {
            monitored.emplace(event.pid,
                              MonitorEntry{ThreadCounters{},
                                           event.time,
                                           Classifier(cfg.classifier)});
        }
        if (cfg.failSafeOrdering)
            lowerVoltageIfPossible();
        noteActivePoint();
        return;
    }

    // Completed: drop monitoring state and consolidate.
    monitored.erase(event.pid);
    const Process &proc = sys.process(event.pid);
    if (cfg.recovery.enabled && cfg.failSafeOrdering
        && isFailure(proc.outcome) && !sys.machine().halted()) {
        // Fail-safe recovery runs before the consolidation below, so
        // the first command after a detection is the nominal raise.
        handleFailure(proc);
    } else {
        retryGeneration.erase(event.pid);
    }
    if (cfg.controlPlacement) {
        const PlacementPlan plan =
            engine.plan(snapshotRequest(false));
        ++statistics.plansComputed;
        if (plan.feasible)
            applyPlan(plan, invalidPid);
    } else if (cfg.controlVoltage) {
        lowerVoltageIfPossible();
    }
}

} // namespace ecosched
