/**
 * @file
 * Workload classification (§IV.B / Figure 9).
 *
 * The paper separates CPU-intensive from memory-intensive processes
 * by their L3-cache access rate: "the threshold which defines the
 * high memory activity is 3K accesses per 10^6 cycles".  The daemon
 * samples each process's L3C counter over ~1M-cycle windows and
 * classifies it; the classifier below adds hysteresis so that noise
 * near the threshold does not cause placement thrashing.
 */

#ifndef ECOSCHED_CORE_CLASSIFIER_HH
#define ECOSCHED_CORE_CLASSIFIER_HH

#include "common/units.hh"

#include <cstdint>

namespace ecosched {

/// The two coarse-grain workload classes of the paper.
enum class WorkloadClass
{
    CpuIntensive,
    MemoryIntensive,
};

/// Human-readable class name.
const char *workloadClassName(WorkloadClass cls);

/**
 * Threshold classifier with hysteresis over the L3C-accesses-per-
 * million-cycles metric.
 */
class Classifier
{
  public:
    /// Classifier knobs.
    struct Config
    {
        /// The paper's threshold: 3000 L3C accesses per 1M cycles.
        double thresholdPerMCycles = 3000.0;

        /**
         * Relative hysteresis band: a process flips to memory-
         * intensive above threshold*(1+h) and back to CPU-intensive
         * below threshold*(1-h).
         */
        double hysteresis = 0.10;

        /// Class every process starts in before its first sample.
        WorkloadClass initialClass = WorkloadClass::CpuIntensive;
    };

    Classifier() : Classifier(Config{}) {}
    explicit Classifier(Config config);

    /// Knobs in use.
    const Config &config() const { return cfg; }

    /// Current class.
    WorkloadClass current() const { return cls; }

    /// Whether at least one sample has been folded in.
    bool sampled() const { return nSamples > 0; }

    /// Number of samples folded in.
    std::uint64_t samples() const { return nSamples; }

    /// Number of class flips so far.
    std::uint64_t transitions() const { return nTransitions; }

    /**
     * Fold in one observed rate; returns true when the class
     * changed.
     */
    bool update(double l3_per_mcycles);

    /// Reset to the initial class with no samples.
    void reset();

  private:
    Config cfg;
    WorkloadClass cls;
    std::uint64_t nSamples = 0;
    std::uint64_t nTransitions = 0;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_CLASSIFIER_HH
