#include "core/placement.hh"

#include <algorithm>
#include <set>

#include "common/error.hh"

namespace ecosched {

PlacementEngine::PlacementEngine(const ChipSpec &spec, Config config)
    : chipSpec(spec)
{
    chipSpec.validate();
    cpuFreq = config.cpuFrequency > 0.0
        ? chipSpec.snapToLadder(config.cpuFrequency)
        : chipSpec.fMax;
    memFreq = config.memFrequency > 0.0
        ? chipSpec.snapToLadder(config.memFrequency)
        : (chipSpec.deepClassMaxFreq > 0.0
               ? chipSpec.deepClassMaxFreq
               : chipSpec.halfClassMaxFreq);
    idleFreq = config.idleFrequency > 0.0
        ? chipSpec.snapToLadder(config.idleFrequency)
        : chipSpec.freqStep();
    bwAware = config.bandwidthAware;
}

namespace {

/// Per-thread planning record.
struct Slot
{
    const PlacementProc *proc;
    std::size_t threadIndex;
    CoreId currentCore;
    bool hasCurrent;
};

/**
 * Stable assignment of threads to candidate cores: keep a thread on
 * its current core when that core is among the candidates, then fill
 * the remaining threads into the remaining candidates in order.
 */
void
assignStable(std::vector<Slot> &threads,
             const std::vector<CoreId> &candidates,
             std::map<Pid, std::vector<CoreId>> &assignment)
{
    ECOSCHED_ASSERT(threads.size() <= candidates.size(),
                    "more threads than candidate cores");
    std::set<CoreId> pool(candidates.begin(),
                          candidates.begin()
                              + static_cast<long>(threads.size()));
    // But prefer current cores anywhere within the *full* candidate
    // list, not only its prefix: rebuild the pool from candidates,
    // keeping capacity = threads.size() while prioritising matches.
    pool.clear();

    std::vector<bool> done(threads.size(), false);
    std::set<CoreId> available(candidates.begin(), candidates.end());

    // Pass 1: keep threads already sitting on a candidate core.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const Slot &s = threads[i];
        if (s.hasCurrent && available.count(s.currentCore)) {
            assignment[s.proc->pid][s.threadIndex] = s.currentCore;
            available.erase(s.currentCore);
            done[i] = true;
            ++kept;
        }
    }
    (void)kept;

    // Pass 2: place the rest in candidate order.
    auto next = candidates.begin();
    for (std::size_t i = 0; i < threads.size(); ++i) {
        if (done[i])
            continue;
        while (next != candidates.end() && !available.count(*next))
            ++next;
        ECOSCHED_ASSERT(next != candidates.end(),
                        "ran out of candidate cores");
        assignment[threads[i].proc->pid][threads[i].threadIndex] =
            *next;
        available.erase(*next);
    }
}

} // namespace

PlacementPlan
PlacementEngine::plan(const PlacementRequest &request) const
{
    PlacementPlan out;
    out.pmdFrequencies.assign(chipSpec.numPmds(), idleFreq);
    out.pmdUtilized.assign(chipSpec.numPmds(), false);

    // --- totals and feasibility ------------------------------------
    std::uint32_t cpu_threads = 0;
    std::uint32_t mem_threads = 0;
    for (const auto &p : request.procs) {
        fatalIf(p.threads == 0, "process with zero threads in plan");
        fatalIf(!p.currentCores.empty() &&
                    p.currentCores.size() != p.threads,
                "currentCores must match the thread count");
        if (p.cls == WorkloadClass::CpuIntensive)
            cpu_threads += p.threads;
        else
            mem_threads += p.threads;
    }
    const std::uint32_t total = cpu_threads + mem_threads;
    if (total > chipSpec.numCores)
        return out; // infeasible
    out.feasible = true;
    if (total == 0)
        return out;

    // --- PMD pool ------------------------------------------------------
    std::vector<PmdId> pool;
    if (request.restrictToCurrentPmds) {
        std::set<PmdId> used;
        for (const auto &p : request.procs) {
            fatalIf(p.currentCores.empty(),
                    "restrictToCurrentPmds requires placed processes");
            for (CoreId c : p.currentCores)
                used.insert(pmdOfCore(c));
        }
        pool.assign(used.begin(), used.end());
        fatalIf(total > pool.size() * coresPerPmd,
                "current PMD set cannot hold all threads");
    } else {
        for (PmdId p = 0; p < chipSpec.numPmds(); ++p)
            pool.push_back(p);
    }

    // --- how many PMDs per class ------------------------------------
    const std::uint32_t cpu_pmds =
        (cpu_threads + coresPerPmd - 1) / coresPerPmd;
    const auto pool_size = static_cast<std::uint32_t>(pool.size());
    const std::uint32_t mem_min =
        (mem_threads + coresPerPmd - 1) / coresPerPmd;
    std::uint32_t mem_pmds = 0;
    if (mem_threads > 0) {
        // Ideal: one thread per PMD (spreaded); shrink toward the
        // clustered minimum when the pool is tight.
        const std::uint32_t room =
            pool_size > cpu_pmds ? pool_size - cpu_pmds : 0;
        mem_pmds = std::min(mem_threads, room);
        mem_pmds = std::max(mem_pmds, mem_min);
    }

    // When cpu_pmds + mem_pmds exceeds the pool (odd counts, tight
    // pool), spill memory threads into the CPU PMDs' free slots.
    std::uint32_t spill = 0;
    if (cpu_pmds + mem_pmds > pool_size) {
        ECOSCHED_ASSERT(mem_pmds > 0, "pool accounting is broken");
        const std::uint32_t over = cpu_pmds + mem_pmds - pool_size;
        ECOSCHED_ASSERT(over <= 1, "PMD demand exceeds pool by > 1");
        mem_pmds -= over;
        const std::uint32_t mem_capacity = mem_pmds * coresPerPmd;
        spill = mem_threads > mem_capacity
            ? mem_threads - mem_capacity : 0;
    }

    // --- choose physical PMDs for each group -------------------------
    // Stability scoring: prefer PMDs already hosting threads of the
    // same class.
    std::vector<std::uint32_t> cpu_here(chipSpec.numPmds(), 0);
    std::vector<std::uint32_t> mem_here(chipSpec.numPmds(), 0);
    for (const auto &p : request.procs) {
        for (CoreId c : p.currentCores) {
            if (p.cls == WorkloadClass::CpuIntensive)
                ++cpu_here[pmdOfCore(c)];
            else
                ++mem_here[pmdOfCore(c)];
        }
    }

    std::vector<PmdId> cpu_group;
    {
        std::vector<PmdId> sorted = pool;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [&](PmdId a, PmdId b) {
                             if (cpu_here[a] != cpu_here[b])
                                 return cpu_here[a] > cpu_here[b];
                             return a < b;
                         });
        cpu_group.assign(sorted.begin(), sorted.begin() + cpu_pmds);
    }
    std::vector<PmdId> mem_group;
    {
        std::vector<PmdId> rest;
        for (PmdId p : pool)
            if (std::find(cpu_group.begin(), cpu_group.end(), p)
                    == cpu_group.end())
                rest.push_back(p);
        std::stable_sort(rest.begin(), rest.end(),
                         [&](PmdId a, PmdId b) {
                             if (mem_here[a] != mem_here[b])
                                 return mem_here[a] > mem_here[b];
                             return a < b;
                         });
        ECOSCHED_ASSERT(mem_pmds <= rest.size(),
                        "memory PMD group does not fit the pool");
        mem_group.assign(rest.begin(), rest.begin() + mem_pmds);
    }

    // --- candidate core lists ------------------------------------------
    // CPU group: clustered fill (both cores of each PMD in order).
    std::vector<CoreId> cpu_slots;
    for (PmdId p : cpu_group) {
        cpu_slots.push_back(firstCoreOfPmd(p));
        cpu_slots.push_back(secondCoreOfPmd(p));
    }
    // Spilled memory threads take the tail of the CPU slots; CPU
    // threads use the head.
    std::vector<CoreId> spill_slots;
    for (std::uint32_t s = 0; s < spill; ++s) {
        ECOSCHED_ASSERT(!cpu_slots.empty(), "no slot to spill into");
        spill_slots.push_back(cpu_slots.back());
        cpu_slots.pop_back();
    }
    // Memory group: spreaded fill (first cores, then second cores).
    std::vector<CoreId> mem_slots;
    for (PmdId p : mem_group)
        mem_slots.push_back(firstCoreOfPmd(p));
    for (PmdId p : mem_group)
        mem_slots.push_back(secondCoreOfPmd(p));
    mem_slots.insert(mem_slots.end(), spill_slots.begin(),
                     spill_slots.end());

    // --- stable thread assignment -------------------------------------
    std::vector<Slot> cpu_list;
    std::vector<Slot> mem_list;
    for (const auto &p : request.procs) {
        out.assignment[p.pid].assign(p.threads, 0);
        for (std::uint32_t i = 0; i < p.threads; ++i) {
            Slot s{&p, i,
                   p.currentCores.empty() ? 0 : p.currentCores[i],
                   !p.currentCores.empty()};
            if (p.cls == WorkloadClass::CpuIntensive)
                cpu_list.push_back(s);
            else
                mem_list.push_back(s);
        }
    }
    if (bwAware) {
        // The spread slots are ordered first-cores-then-second-cores:
        // placing the heaviest bandwidth demanders first gives each
        // of them a PMD to itself while the light demanders double
        // up.  Stable sort: equal demands keep the submit order.
        std::stable_sort(mem_list.begin(), mem_list.end(),
                         [](const Slot &a, const Slot &b) {
                             return a.proc->bwDemand
                                 > b.proc->bwDemand;
                         });
    }
    assignStable(cpu_list, cpu_slots, out.assignment);
    assignStable(mem_list, mem_slots, out.assignment);

    // --- frequencies and utilization ------------------------------------
    // A PMD hosting any CPU-intensive thread runs the CPU clock;
    // all-memory PMDs run the reduced clock.
    std::vector<bool> has_cpu(chipSpec.numPmds(), false);
    std::vector<bool> has_any(chipSpec.numPmds(), false);
    for (const Slot &s : cpu_list)
        has_cpu[pmdOfCore(out.assignment[s.proc->pid]
                              [s.threadIndex])] = true;
    for (const auto &[pid, cores] : out.assignment)
        for (CoreId c : cores)
            has_any[pmdOfCore(c)] = true;

    for (PmdId p = 0; p < chipSpec.numPmds(); ++p) {
        if (!has_any[p])
            continue;
        out.pmdUtilized[p] = true;
        ++out.utilizedPmds;
        out.pmdFrequencies[p] = has_cpu[p] ? cpuFreq : memFreq;
    }
    return out;
}

} // namespace ecosched
