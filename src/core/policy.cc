#include "core/policy.hh"

#include "common/error.hh"
#include "core/droop_table.hh"
#include "os/governor.hh"

namespace ecosched {

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Baseline:  return "Baseline";
      case PolicyKind::SafeVmin:  return "Safe Vmin";
      case PolicyKind::Placement: return "Placement";
      case PolicyKind::Optimal:   return "Optimal";
    }
    return "?";
}

PolicySetup
configurePolicy(System &system, PolicyKind kind,
                DaemonConfig daemon_base)
{
    PolicySetup setup;
    Machine &machine = system.machine();

    switch (kind) {
      case PolicyKind::Baseline:
        system.setPlacementPolicy(
            std::make_unique<LinuxSpreadPlacer>());
        system.setGovernor(std::make_unique<OndemandGovernor>());
        break;

      case PolicyKind::SafeVmin: {
        system.setPlacementPolicy(
            std::make_unique<LinuxSpreadPlacer>());
        system.setGovernor(std::make_unique<OndemandGovernor>());
        // Static undervolt to the most conservative characterized
        // level: fmax with every PMD utilized.
        const DroopClassTable table(machine.vminModel(),
                                    daemon_base.guardband);
        const Volt v = table.safeVoltage(machine.spec().fMax,
                                         machine.spec().numPmds());
        machine.slimPro().requestVoltage(system.now(), v);
        break;
      }

      case PolicyKind::Placement:
        daemon_base.controlPlacement = true;
        daemon_base.controlFrequency = true;
        daemon_base.controlVoltage = false;
        setup.daemon = std::make_unique<Daemon>(system, daemon_base);
        break;

      case PolicyKind::Optimal:
        daemon_base.controlPlacement = true;
        daemon_base.controlFrequency = true;
        daemon_base.controlVoltage = true;
        setup.daemon = std::make_unique<Daemon>(system, daemon_base);
        break;
    }
    return setup;
}

} // namespace ecosched
