#include "core/policy.hh"

#include <cstdlib>

#include "common/error.hh"
#include "core/droop_table.hh"
#include "idle/coreidle.hh"
#include "os/governor.hh"

namespace ecosched {

namespace {

/// ECOSCHED_COREIDLE_SHADOW=1: Baseline/SafeVmin run the coreidle
/// mask placer with an empty mask instead of LinuxSpreadPlacer.
/// Used by the inertness goldens — outputs must stay byte-identical.
bool
coreidleShadow()
{
    const char *env = std::getenv("ECOSCHED_COREIDLE_SHADOW");
    return env != nullptr && *env != '\0' && *env != '0';
}

/// The stock spread placer, or its mask-aware twin in shadow mode.
std::unique_ptr<PlacementPolicy>
defaultSpreadPlacer()
{
    if (coreidleShadow())
        return std::make_unique<CoreIdleMaskPlacer>();
    return std::make_unique<LinuxSpreadPlacer>();
}

/// Install the COREIDLE policy/mechanism pair.
void
installCoreIdle(System &system, bool race_to_idle)
{
    auto placer = std::make_unique<CoreIdleMaskPlacer>();
    CoreIdleGovernor::Config gcfg;
    gcfg.raceToIdle = race_to_idle;
    auto governor =
        std::make_unique<CoreIdleGovernor>(gcfg, placer.get());
    system.setPlacementPolicy(std::move(placer));
    system.setGovernor(std::move(governor));
}

} // namespace

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Baseline:   return "Baseline";
      case PolicyKind::SafeVmin:   return "Safe Vmin";
      case PolicyKind::Placement:  return "Placement";
      case PolicyKind::Optimal:    return "Optimal";
      case PolicyKind::CoreIdle:   return "CoreIdle";
      case PolicyKind::RaceToIdle: return "RaceToIdle";
      case PolicyKind::Predictive: return "Predictive";
    }
    return "?";
}

PolicySetup
configurePolicy(System &system, PolicyKind kind,
                DaemonConfig daemon_base)
{
    PolicySetup setup;
    Machine &machine = system.machine();

    switch (kind) {
      case PolicyKind::Baseline:
        system.setPlacementPolicy(defaultSpreadPlacer());
        system.setGovernor(std::make_unique<OndemandGovernor>());
        break;

      case PolicyKind::SafeVmin: {
        system.setPlacementPolicy(defaultSpreadPlacer());
        system.setGovernor(std::make_unique<OndemandGovernor>());
        // Static undervolt to the most conservative characterized
        // level: fmax with every PMD utilized.
        const DroopClassTable table(machine.vminModel(),
                                    daemon_base.guardband);
        const Volt v = table.safeVoltage(machine.spec().fMax,
                                         machine.spec().numPmds());
        machine.slimPro().requestVoltage(system.now(), v);
        break;
      }

      case PolicyKind::Placement:
        daemon_base.controlPlacement = true;
        daemon_base.controlFrequency = true;
        daemon_base.controlVoltage = false;
        setup.daemon = std::make_unique<Daemon>(system, daemon_base);
        break;

      case PolicyKind::Optimal:
        daemon_base.controlPlacement = true;
        daemon_base.controlFrequency = true;
        daemon_base.controlVoltage = true;
        setup.daemon = std::make_unique<Daemon>(system, daemon_base);
        break;

      case PolicyKind::CoreIdle:
        installCoreIdle(system, false);
        break;

      case PolicyKind::RaceToIdle:
        installCoreIdle(system, true);
        break;

      case PolicyKind::Predictive:
        daemon_base.controlPlacement = true;
        daemon_base.controlFrequency = true;
        daemon_base.controlVoltage = true;
        daemon_base.predictive.enabled = true;
        setup.daemon = std::make_unique<Daemon>(system, daemon_base);
        break;
    }
    return setup;
}

} // namespace ecosched
