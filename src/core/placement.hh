/**
 * @file
 * The daemon's placement engine (§VI.A, Figure 13).
 *
 * Encodes the paper's placement rules:
 *
 *  - CPU-intensive processes run *clustered* (both cores of a PMD
 *    occupied before the next PMD is touched) on PMDs at the high
 *    clock — they lose performance proportionally to frequency, so
 *    they keep fmax, and clustering minimises utilized PMDs (lower
 *    droop class, lower safe Vmin, fewer clocked modules);
 *  - memory-intensive processes run *spreaded* (one thread per PMD
 *    when room permits, avoiding shared-L2 contention) on PMDs at a
 *    reduced clock — their stalls hide the slower core, and the
 *    lower frequency class allows a lower safe Vmin;
 *  - on a classification change the utilized-PMD set is kept fixed
 *    ("utilized PMDs can only be changed when a new process is
 *    invoked, or when a process finishes its execution").
 *
 * The engine is a pure function from system snapshot to target plan;
 * the Daemon applies plans with the fail-safe voltage ordering.
 */

#ifndef ECOSCHED_CORE_PLACEMENT_HH
#define ECOSCHED_CORE_PLACEMENT_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hh"
#include "core/classifier.hh"
#include "os/process.hh"
#include "platform/chip_spec.hh"

namespace ecosched {

/// Snapshot of one process for planning.
struct PlacementProc
{
    Pid pid = invalidPid;
    std::uint32_t threads = 0;       ///< live thread count
    WorkloadClass cls = WorkloadClass::CpuIntensive;
    /// Current core of each thread; empty for a process not yet
    /// placed (being admitted right now).
    std::vector<CoreId> currentCores;
    /// Estimated per-thread DRAM bandwidth demand, in any consistent
    /// unit (the daemon feeds DRAM accesses/1M cycles; only the
    /// relative order matters).  Consulted when
    /// Config::bandwidthAware is set: the heaviest demanders take
    /// the one-thread-per-PMD spread slots first.
    double bwDemand = 0.0;
};

/// Planning input.
struct PlacementRequest
{
    std::vector<PlacementProc> procs;

    /// Keep the currently utilized PMD set (classification-change
    /// trigger).  Requires every process to be already placed.
    bool restrictToCurrentPmds = false;
};

/// Planning output.
struct PlacementPlan
{
    /// Whether the request fits on the chip at all.
    bool feasible = false;

    /// One core per thread, per process (thread order preserved).
    std::map<Pid, std::vector<CoreId>> assignment;

    /// Target frequency per PMD.
    std::vector<Hertz> pmdFrequencies;

    /// Whether each PMD hosts at least one thread under the plan.
    std::vector<bool> pmdUtilized;

    /// Number of utilized PMDs.
    std::uint32_t utilizedPmds = 0;
};

/**
 * Pure planning component.
 */
class PlacementEngine
{
  public:
    /// Frequency choices of the engine (0 = chip-derived default).
    struct Config
    {
        /// Clock for PMDs hosting CPU-intensive threads (0 = fmax).
        Hertz cpuFrequency = 0.0;

        /**
         * Clock for PMDs hosting only memory-intensive threads
         * (0 = the chip's deepest Vmin-relevant reduced clock:
         * 0.9 GHz on X-Gene 2, 1.5 GHz on X-Gene 3).
         */
        Hertz memFrequency = 0.0;

        /// Clock parked on idle PMDs (0 = lowest ladder step).
        Hertz idleFrequency = 0.0;

        /// Order memory-intensive threads by descending
        /// PlacementProc::bwDemand before filling the spread slots,
        /// so the heaviest bandwidth demanders land one-per-PMD and
        /// the light ones absorb the shared-L2 doubling.  Off by
        /// default: plans are then bit-identical to builds without
        /// the knob.
        bool bandwidthAware = false;
    };

    PlacementEngine(const ChipSpec &spec, Config config);

    /// Engine with the chip-derived default clocks.
    explicit PlacementEngine(const ChipSpec &spec)
        : PlacementEngine(spec, Config{})
    {}

    /// Resolved clock for CPU-intensive PMDs.
    Hertz cpuFrequency() const { return cpuFreq; }

    /// Resolved clock for memory-intensive PMDs.
    Hertz memFrequency() const { return memFreq; }

    /// Resolved clock for idle PMDs.
    Hertz idleFrequency() const { return idleFreq; }

    /// Compute the target plan for a snapshot.
    PlacementPlan plan(const PlacementRequest &request) const;

  private:
    ChipSpec chipSpec;
    Hertz cpuFreq;
    Hertz memFreq;
    Hertz idleFreq;
    bool bwAware = false;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_PLACEMENT_HH
