#include "core/classifier.hh"

#include "common/error.hh"

namespace ecosched {

const char *
workloadClassName(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::CpuIntensive:    return "cpu-intensive";
      case WorkloadClass::MemoryIntensive: return "memory-intensive";
    }
    return "?";
}

Classifier::Classifier(Config config)
    : cfg(config), cls(config.initialClass)
{
    fatalIf(cfg.thresholdPerMCycles <= 0.0,
            "classifier threshold must be positive");
    fatalIf(cfg.hysteresis < 0.0 || cfg.hysteresis >= 1.0,
            "classifier hysteresis must be in [0, 1)");
}

bool
Classifier::update(double l3_per_mcycles)
{
    fatalIf(l3_per_mcycles < 0.0, "negative L3C rate");
    ++nSamples;

    const double up =
        cfg.thresholdPerMCycles * (1.0 + cfg.hysteresis);
    const double down =
        cfg.thresholdPerMCycles * (1.0 - cfg.hysteresis);

    WorkloadClass next = cls;
    if (cls == WorkloadClass::CpuIntensive && l3_per_mcycles > up)
        next = WorkloadClass::MemoryIntensive;
    else if (cls == WorkloadClass::MemoryIntensive &&
             l3_per_mcycles < down)
        next = WorkloadClass::CpuIntensive;

    if (next != cls) {
        cls = next;
        ++nTransitions;
        return true;
    }
    return false;
}

void
Classifier::reset()
{
    cls = cfg.initialClass;
    nSamples = 0;
    nTransitions = 0;
}

} // namespace ecosched
