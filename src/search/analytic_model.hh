/**
 * @file
 * Online analytic energy/CPI model for configuration-space search
 * (DESIGN.md §16).
 *
 * The model evaluates one characterization point — (benchmark,
 * threads, allocation, frequency, undervolt) on a chip — without
 * constructing a Machine.  It exploits the structure a figure-sweep
 * run actually has:
 *
 *  - the V/f state is programmed once at t = 0 and never changes;
 *  - droop sampling, fault injection, c-states and bandwidth
 *    reservations are off on the plain presets, so a run consumes no
 *    randomness and the step loop is a pure recurrence;
 *  - every thread retires the same per-thread work with the same
 *    profile, and the L2-sharing scale of a core never changes
 *    mid-run (partners finish together), so the threads collapse
 *    into at most two *scale classes* (sibling idle / sibling busy)
 *    that stay in lockstep.
 *
 * The evaluator replays the Machine's 10 ms step recurrence over the
 * collapsed classes — same contention solve, same per-step retire
 * arithmetic, the real PowerModel/ThermalModel/EnergyMeter — at
 * O(classes) instead of O(cores) work per step and without any
 * machine construction.  On the plain chip presets the result is
 * bit-identical to the simulation (pinned by tests/search); the
 * admissible lower bound below deflates it by a relative epsilon so
 * pruning stays safe even across compiler re-association.
 *
 * On decorated chips (c-states or a bandwidth reservation armed) the
 * replica is no longer exact; the evaluator then degrades to a
 * provable underestimate: idle-state residency is assumed maximal
 * (power never below the truth is dropped to its floor) and the
 * reservation throttle is ignored (throttling only ever lengthens
 * runs and adds energy).  `ModelEval::exact` reports which regime
 * produced the value.
 */

#ifndef ECOSCHED_SEARCH_ANALYTIC_MODEL_HH
#define ECOSCHED_SEARCH_ANALYTIC_MODEL_HH

#include <cstdint>

#include "power/power_model.hh"
#include "power/thermal.hh"
#include "search/config_space.hh"
#include "sim/memory_system.hh"
#include "vmin/vmin_model.hh"

namespace ecosched {
namespace search {

/// Model evaluation of one configuration point.
struct ModelEval
{
    RunStats stats;     ///< predicted run statistics
    bool exact = false; ///< bit-replica regime (plain chip preset)
};

/**
 * The analytic evaluator.  Stateless per evaluation; cheap to build
 * (one VminModel table per chip) and safe to share across threads
 * for concurrent const evaluations.
 */
class AnalyticModel
{
  public:
    explicit AnalyticModel(const ChipSpec &spec);

    /// Chip the model was built for.
    const ChipSpec &spec() const { return chipSpec; }

    /// Whether evaluations run in the bit-replica regime (no
    /// c-states, no bandwidth reservation on the chip).
    bool exactRegime() const
    {
        return !chipSpec.hasCStates() && !chipSpec.hasMemBw();
    }

    /// Evaluate one configuration point.
    ModelEval evaluate(const BenchmarkProfile &bench,
                       std::uint32_t threads, Allocation alloc,
                       Hertz freq, bool undervolt) const;

    /// Evaluate a grid point (seed does not influence the model: the
    /// table Vmin a sweep programs is seed-independent).
    ModelEval evaluate(const ConfigPoint &point) const
    {
        return evaluate(*point.bench, point.threads, point.alloc,
                        point.freq, point.undervolt);
    }

    /**
     * Admissible lower bounds: never exceed the simulated value of
     * the point (tests/search fuzzes this contract across random
     * profiles, chips and decorations).  The deflation epsilon
     * covers floating-point re-association between the replica and
     * the Machine step loop; in the degraded regimes the evaluation
     * itself is already an underestimate.
     */
    double lowerBoundEnergy(const ModelEval &eval) const
    {
        return deflate(eval.stats.energyNormalized);
    }

    /// Admissible lower bound on the point's ED2P.
    double lowerBoundEd2p(const ModelEval &eval) const
    {
        return deflate(eval.stats.ed2p);
    }

  private:
    static double deflate(double v) { return v * (1.0 - 1e-9); }

    ChipSpec chipSpec;
    PowerModel power;
    MemorySystem memory;
    ThermalParams thermalParams;
    VminModel vmin;
};

} // namespace search
} // namespace ecosched

#endif // ECOSCHED_SEARCH_ANALYTIC_MODEL_HH
