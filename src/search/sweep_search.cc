#include "search/sweep_search.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/error.hh"

namespace ecosched {
namespace search {

const char *
objectiveName(Objective objective)
{
    switch (objective) {
    case Objective::Energy:
        return "energy";
    case Objective::Ed2p:
        return "ed2p";
    }
    return "?";
}

double
objectiveValue(Objective objective, const RunStats &stats)
{
    return objective == Objective::Energy ? stats.energyNormalized
                                          : stats.ed2p;
}

bool
searchAuditEnabled()
{
    const char *v = std::getenv("ECOSCHED_SEARCH_AUDIT");
    return v != nullptr && v[0] == '1';
}

bool
stripSearchFlag(int &argc, char **argv)
{
    bool found = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--search") == 0) {
            found = true;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    return found;
}

SweepSearch::SweepSearch(const ExperimentEngine &engine,
                         const ChipSpec &chip, Config config)
    : engine(engine), chipSpec(chip), cfg(config), analytic(chip)
{
    ECOSCHED_ASSERT(cfg.waveSize > 0,
                    "search wave size must be positive");
}

const ModelEval &
SweepSearch::cachedEval(const ConfigPoint &point)
{
    const std::uint64_t key = configPointKey(chipSpec, point);
    auto it = modelMemo.find(key);
    if (it == modelMemo.end()) {
        it = modelMemo.emplace(key, analytic.evaluate(point)).first;
    }
    return it->second;
}

void
SweepSearch::simulate(const std::vector<ConfigPoint> &points,
                      const std::vector<std::size_t> &indices,
                      GroupResult &out)
{
    std::vector<std::size_t> fresh;
    std::vector<ConfigPoint> batch;
    for (std::size_t i : indices) {
        if (out.simulated[i])
            continue;
        fresh.push_back(i);
        batch.push_back(points[i]);
    }
    if (batch.empty())
        return;
    const auto stats =
        runConfigurations(engine, chipSpec, batch, &cache, &pool);
    for (std::size_t k = 0; k < fresh.size(); ++k) {
        out.results[fresh[k]] = stats[k];
        out.simulated[fresh[k]] = 1;
    }
}

GroupResult
SweepSearch::searchGroup(const std::vector<ConfigPoint> &points)
{
    const std::size_t n = points.size();
    GroupResult out;
    out.simulated.assign(n, 0);
    out.results.resize(n);
    out.stats.totalPoints = n;
    if (n == 0) {
        totalStats.accumulate(out.stats);
        return out;
    }

    // Model pass: predicted objective value and admissible lower
    // bound per point.
    std::vector<double> lb(n);
    std::vector<double> pred(n);
    for (std::size_t i = 0; i < n; ++i) {
        const ModelEval &eval = cachedEval(points[i]);
        pred[i] = objectiveValue(cfg.objective, eval.stats);
        lb[i] = cfg.objective == Objective::Energy
            ? analytic.lowerBoundEnergy(eval)
            : analytic.lowerBoundEd2p(eval);
    }

    // Seed simulations: the grid corners anchor the fit at the
    // extremes; the model's predicted optimum is where the true
    // optimum most likely is, which makes the incumbent tight
    // immediately.
    std::size_t pred_best = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (pred[i] < pred[pred_best])
            pred_best = i;
    }
    std::vector<std::size_t> seeds = {0, n - 1, pred_best};
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()),
                seeds.end());
    simulate(points, seeds, out);
    out.stats.seedPoints = seeds.size();

    double incumbent = 0.0;
    bool have_incumbent = false;
    for (std::size_t i = 0; i < n; ++i) {
        if (!out.simulated[i])
            continue;
        const double v = objectiveValue(cfg.objective,
                                        out.results[i]);
        if (!have_incumbent || v < incumbent) {
            incumbent = v;
            have_incumbent = true;
        }
    }

    // Fit kappa, the geometric-mean observed/predicted ratio over
    // the seeds.  kappa only *orders* the candidate waves (best
    // predicted first); correctness never depends on it.  In the
    // bit-replica regime kappa == 1 exactly.
    double log_sum = 0.0;
    std::uint32_t fitted = 0;
    for (std::size_t i : seeds) {
        const double observed =
            objectiveValue(cfg.objective, out.results[i]);
        if (pred[i] > 0.0 && observed > 0.0) {
            log_sum += std::log(observed / pred[i]);
            ++fitted;
        }
    }
    const double kappa =
        fitted > 0 ? std::exp(log_sum / fitted) : 1.0;

    // Branch and bound: simulate the best-predicted wave of points
    // the bound cannot exclude, tighten the incumbent, repeat.
    // Pruning is strict (lb > incumbent), so a point whose true
    // value ties the optimum is always simulated.
    while (true) {
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < n; ++i) {
            if (!out.simulated[i] && lb[i] <= incumbent)
                candidates.push_back(i);
        }
        if (candidates.empty())
            break;
        std::sort(candidates.begin(), candidates.end(),
                  [&](std::size_t a, std::size_t b) {
                      const double ka = kappa * pred[a];
                      const double kb = kappa * pred[b];
                      return ka != kb ? ka < kb : a < b;
                  });
        if (candidates.size() > cfg.waveSize)
            candidates.resize(cfg.waveSize);
        simulate(points, candidates, out);
        for (std::size_t i : candidates) {
            const double v = objectiveValue(cfg.objective,
                                            out.results[i]);
            if (v < incumbent)
                incumbent = v;
        }
        ++out.stats.waves;
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (out.simulated[i])
            ++out.stats.simulatedPoints;
    }
    out.stats.prunedPoints = n - out.stats.simulatedPoints;

    // Final argmin: grid order, strict `<` over the simulated
    // points — exactly the exhaustive scan's tie-breaking, over a
    // set guaranteed to contain its argmin.
    std::size_t best = n;
    double best_value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!out.simulated[i])
            continue;
        const double v = objectiveValue(cfg.objective,
                                        out.results[i]);
        if (best == n || v < best_value) {
            best = i;
            best_value = v;
        }
    }
    ECOSCHED_ASSERT(best < n, "search simulated at least the seeds");
    out.bestIndex = best;
    out.best = out.results[best];

    if (cfg.audit) {
        // Exact-fallback audit: simulate *everything* (cache makes
        // the already-simulated points free), re-run the exhaustive
        // scan, and byte-check the pruned answer.
        std::vector<std::size_t> all(n);
        for (std::size_t i = 0; i < n; ++i)
            all[i] = i;
        simulate(points, all, out);
        std::size_t exhaustive = 0;
        for (std::size_t i = 1; i < n; ++i) {
            if (objectiveValue(cfg.objective, out.results[i])
                < objectiveValue(cfg.objective,
                                 out.results[exhaustive])) {
                exhaustive = i;
            }
        }
        ECOSCHED_ASSERT(exhaustive == out.bestIndex,
                        "audit: pruning changed the optimum index");
        ECOSCHED_ASSERT(
            std::memcmp(&out.results[exhaustive], &out.best,
                        sizeof(RunStats)) == 0,
            "audit: pruning changed the optimum's bytes");
        out.stats.audited = true;
        out.stats.auditMatched = true;
    }

    totalStats.accumulate(out.stats);
    return out;
}

} // namespace search
} // namespace ecosched
