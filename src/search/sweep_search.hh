/**
 * @file
 * Branch-and-bound sweep executor (DESIGN.md §16).
 *
 * A characterization sweep asks for the argmin of one objective
 * (normalised energy, or ED2P) over a grid of configuration points.
 * Exhaustive execution simulates every point; this executor instead
 *
 *  1. evaluates the analytic model on every point (cheap — no
 *     Machine), producing an *admissible lower bound* per point;
 *  2. simulates a small seed set (the grid corners plus the model's
 *     predicted optimum) through the shared arena/memo layer to
 *     establish an incumbent, and fits a correction factor kappa
 *     (geometric mean of observed/predicted over the seeds) that
 *     orders the remaining candidates best-first;
 *  3. repeatedly simulates the best-predicted wave of points whose
 *     lower bound does not exceed the incumbent, tightening the
 *     incumbent, until every unsimulated point is excluded.
 *
 * Because the bound is admissible (never exceeds the simulated value
 * of its point — fuzzed in tests/search) and pruning is strict
 * (`lb > incumbent`), every point whose true value ties or beats the
 * final incumbent is simulated; the final re-scan of simulated points
 * in grid order with strict `<` therefore reproduces the exhaustive
 * scan's argmin bit-for-bit, from the same memoised RunStats bytes.
 * The model's quality only affects how *much* is pruned, never the
 * answer.
 *
 * Audit mode (ECOSCHED_SEARCH_AUDIT=1, or Config::audit) simulates
 * everything through the same cache after the pruned pass and
 * fatally asserts the pruned argmin and its RunStats bytes match the
 * exhaustive scan — the exact-fallback proof the committed
 * BENCH_modelsearch.json and the fig11 audit golden rest on.
 */

#ifndef ECOSCHED_SEARCH_SWEEP_SEARCH_HH
#define ECOSCHED_SEARCH_SWEEP_SEARCH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "search/analytic_model.hh"
#include "search/config_space.hh"

namespace ecosched {
namespace search {

/// Sweep objective to minimise.
enum class Objective
{
    Energy, ///< normalised energy (fig. 11)
    Ed2p,   ///< normalised energy * delay^2 (fig. 12)
};

/// Human-readable objective name ("energy" / "ed2p").
const char *objectiveName(Objective objective);

/// The objective's value of one run.
double objectiveValue(Objective objective, const RunStats &stats);

/// Whether ECOSCHED_SEARCH_AUDIT=1 is set in the environment.
bool searchAuditEnabled();

/// Strip a literal `--search` flag from an argv vector, returning
/// whether it was present (the fig11/fig12 opt-in).
bool stripSearchFlag(int &argc, char **argv);

/// Execution counters of one search (or an accumulation of many).
struct SearchStats
{
    std::uint64_t totalPoints = 0;
    std::uint64_t simulatedPoints = 0; ///< pruned-pass simulations
    std::uint64_t prunedPoints = 0;    ///< excluded by the bound
    std::uint64_t seedPoints = 0;      ///< incumbent/fit seeds
    std::uint64_t waves = 0;           ///< candidate waves simulated
    bool audited = false;              ///< audit pass ran
    bool auditMatched = false;         ///< audit byte-check passed

    void accumulate(const SearchStats &other)
    {
        totalPoints += other.totalPoints;
        simulatedPoints += other.simulatedPoints;
        prunedPoints += other.prunedPoints;
        seedPoints += other.seedPoints;
        waves += other.waves;
        audited = audited || other.audited;
        auditMatched = auditMatched || other.auditMatched;
    }
};

/// Result of searching one group of points.
struct GroupResult
{
    std::size_t bestIndex = 0; ///< grid index of the optimum
    RunStats best;             ///< its simulated statistics
    /// Per-point: was the point simulated (1) or pruned (0)?  After
    /// an audit pass every point is simulated.
    std::vector<std::uint8_t> simulated;
    /// Per-point RunStats; valid where simulated[i] != 0.
    std::vector<RunStats> results;
    SearchStats stats;
};

/**
 * The executor.  Owns the RunStats memo cache and the machine arena
 * pool, so several groups (e.g. fig12's per-(benchmark, threads)
 * rows) share simulations and machines.  Deterministic for any
 * engine job count: candidate selection depends only on the model,
 * and simulation batches run through ExperimentEngine::mapSpecs.
 */
class SweepSearch
{
  public:
    struct Config
    {
        Objective objective = Objective::Ed2p;
        /// Simulate everything after the pruned pass and fatally
        /// verify the pruned optimum byte-identical.
        bool audit = false;
        /// Candidates simulated per branch-and-bound wave.
        std::uint32_t waveSize = 8;
    };

    SweepSearch(const ExperimentEngine &engine, const ChipSpec &chip,
                Config config);
    SweepSearch(const ExperimentEngine &engine, const ChipSpec &chip)
        : SweepSearch(engine, chip, Config())
    {
    }

    /// Search one group of grid points for the objective's argmin.
    GroupResult searchGroup(const std::vector<ConfigPoint> &points);

    /// Counters accumulated over every group searched so far.
    const SearchStats &totals() const { return totalStats; }

    const AnalyticModel &model() const { return analytic; }
    const ChipSpec &chip() const { return chipSpec; }
    const Config &config() const { return cfg; }

  private:
    const ModelEval &cachedEval(const ConfigPoint &point);
    void simulate(const std::vector<ConfigPoint> &points,
                  const std::vector<std::size_t> &indices,
                  GroupResult &out);

    const ExperimentEngine &engine;
    ChipSpec chipSpec;
    Config cfg;
    AnalyticModel analytic;
    MemoCache<RunStats> cache;
    MachinePool pool;
    std::unordered_map<std::uint64_t, ModelEval> modelMemo;
    SearchStats totalStats;
};

} // namespace search
} // namespace ecosched

#endif // ECOSCHED_SEARCH_SWEEP_SEARCH_HH
