/**
 * @file
 * The configuration space of a characterization sweep: one point per
 * (benchmark, threads, allocation, frequency, undervolt, seed), the
 * machinery to execute points on pooled machine arenas, and the
 * single-machine runner the figure benches share.
 *
 * Grown out of bench/run_common.hh (which now re-exports this header)
 * so that the MODELSEARCH subsystem — the analytic model and the
 * branch-and-bound sweep executor — can consume the same point/runner
 * vocabulary from library code instead of reaching into bench/.
 *
 * Work semantics follow §II.B: a parallel program's N threads share
 * one unit of work; N copies of a single-thread program execute the
 * work N times, so their energy is normalised by N for fair
 * comparison.
 */

#ifndef ECOSCHED_SEARCH_CONFIG_SPACE_HH
#define ECOSCHED_SEARCH_CONFIG_SPACE_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "exp/engine.hh"
#include "exp/memo_cache.hh"
#include "exp/prototype_cache.hh"
#include "platform/topology.hh"
#include "sim/machine.hh"
#include "workloads/benchmark.hh"

namespace ecosched {
namespace search {

/// Result of one configuration run.
struct RunStats
{
    Seconds runtime = 0.0;
    Joule energy = 0.0;           ///< raw chip energy
    Joule energyNormalized = 0.0; ///< per unit of work (SPEC: /N)
    double ed2p = 0.0;            ///< normalised energy * D^2
    double meanL3PerMCycles = 0.0;
    double meanIpc = 0.0;
};

/**
 * Execute @p bench with @p threads threads/copies on @p machine,
 * which must sit in its as-constructed state at t = 0 (fresh or
 * rewound to a pristine snapshot).  Execution is macro-stepped —
 * bit-identical to the plain 10 ms step loop by the PR 3 guarantee,
 * pinned by the sweep-equality tests.
 *
 * @param freq       Ladder frequency programmed on every PMD.
 * @param undervolt  Program the configuration's safe Vmin (else
 *                   nominal voltage).
 */
inline RunStats
runConfigurationOn(Machine &machine, const BenchmarkProfile &bench,
                   std::uint32_t threads, Allocation alloc,
                   Hertz freq, bool undervolt)
{
    const ChipSpec &chip = machine.spec();
    const auto cores = allocateCores(chip.numCores, threads, alloc);
    machine.slimPro().requestAllFrequencies(0.0, freq);
    if (undervolt) {
        machine.slimPro().requestVoltage(
            0.0, machine.vminModel().tableVmin(
                     freq, countUtilizedPmds(cores)));
    }

    const Instructions per_thread = bench.perThreadWork(threads);
    std::vector<SimThreadId> tids;
    for (CoreId c : cores) {
        tids.push_back(machine.startThread(
            bench.work, per_thread, c, bench.vminSensitivity));
    }
    // Run to completion: coalesce uniform spans into macro windows,
    // falling back to a single full step at every boundary a window
    // must not cross (thread finish, phase change, stall edge).
    const Seconds horizon =
        std::numeric_limits<Seconds>::infinity();
    while (machine.numBusyCores() > 0) {
        if (machine.macroAdvance(horizon, units::ms(10)) == 0)
            machine.step(units::ms(10));
    }

    RunStats out;
    out.runtime = machine.now();
    out.energy = machine.energyMeter().energy();
    // Parallel programs execute the work once; N copies of a
    // single-thread program execute it N times (§II.B).
    const double units_of_work =
        bench.parallel ? 1.0 : static_cast<double>(threads);
    out.energyNormalized = out.energy / units_of_work;
    out.ed2p = out.energyNormalized * out.runtime * out.runtime;

    RunningStats l3;
    RunningStats ipc;
    for (const SimThread &t : machine.collectFinished()) {
        l3.add(t.counters.l3AccessesPerMCycles());
        ipc.add(t.counters.ipc());
    }
    out.meanL3PerMCycles = l3.mean();
    out.meanIpc = ipc.mean();
    return out;
}

/**
 * Legacy single-shot runner: construct a fresh machine, run with the
 * plain per-step loop.  Kept as the pre-arena reference — the
 * sweep-setup micro-benchmark measures the arena path against it,
 * and the equality tests pin that both produce identical bytes.
 */
inline RunStats
runConfiguration(const ChipSpec &chip, const BenchmarkProfile &bench,
                 std::uint32_t threads, Allocation alloc, Hertz freq,
                 bool undervolt, std::uint64_t seed = 1)
{
    MachineConfig mc;
    mc.seed = seed;
    Machine machine(chip, mc);

    const auto cores = allocateCores(chip.numCores, threads, alloc);
    machine.slimPro().requestAllFrequencies(0.0, freq);
    if (undervolt) {
        machine.slimPro().requestVoltage(
            0.0, machine.vminModel().tableVmin(
                     freq, countUtilizedPmds(cores)));
    }

    const Instructions per_thread = bench.perThreadWork(threads);
    std::vector<SimThreadId> tids;
    for (CoreId c : cores) {
        tids.push_back(machine.startThread(
            bench.work, per_thread, c, bench.vminSensitivity));
    }
    while (!machine.runningThreads().empty())
        machine.step(units::ms(10));

    RunStats out;
    out.runtime = machine.now();
    out.energy = machine.energyMeter().energy();
    const double units_of_work =
        bench.parallel ? 1.0 : static_cast<double>(threads);
    out.energyNormalized = out.energy / units_of_work;
    out.ed2p = out.energyNormalized * out.runtime * out.runtime;

    RunningStats l3;
    RunningStats ipc;
    for (const SimThread &t : machine.collectFinished()) {
        l3.add(t.counters.l3AccessesPerMCycles());
        ipc.add(t.counters.ipc());
    }
    out.meanL3PerMCycles = l3.mean();
    out.meanIpc = ipc.mean();
    return out;
}

/**
 * Reusable machine arena for characterization sweeps: one machine
 * plus the pristine snapshot captured right after construction.
 * Rewinding is ~10^4x cheaper than re-running the Vmin
 * characterization a fresh construction pays.
 */
struct MachineArena
{
    Machine machine;
    MachineSnapshot pristine;

    MachineArena(const ChipSpec &chip, const MachineConfig &config)
        : machine(chip, config), pristine(machine.capture())
    {
    }
};

/// Pool of machine arenas keyed by (chip, seed) — the machine's
/// construction identity within one characterization sweep.
using MachinePool = ArenaPool<MachineArena>;

/// Arena key of one grid point's machine.
inline std::uint64_t
machineArenaKey(const ChipSpec &chip, std::uint64_t seed)
{
    ConfigKey key;
    key.mix(chip.name).mix(seed);
    return key.value();
}

/// One point of a characterization grid (the spec runConfiguration
/// takes, minus the chip, which is shared by a whole sweep).
struct ConfigPoint
{
    const BenchmarkProfile *bench = nullptr;
    std::uint32_t threads = 0;
    Allocation alloc = Allocation::Spreaded;
    Hertz freq = 0.0;
    bool undervolt = true;
    std::uint64_t seed = 1;
};

/// Memoization key: every field that influences a RunStats result.
inline std::uint64_t
configPointKey(const ChipSpec &chip, const ConfigPoint &p)
{
    ConfigKey key;
    key.mix(chip.name)
        .mix(p.bench->name)
        .mix(static_cast<std::uint64_t>(p.threads))
        .mix(static_cast<std::uint64_t>(p.alloc))
        .mix(p.freq)
        .mix(static_cast<std::uint64_t>(p.undervolt))
        .mix(p.seed);
    return key.value();
}

/**
 * Run a whole grid of configuration points on the engine's workers,
 * returning RunStats in point order.  Each point is a pure function
 * of (chip, point), so the output is bit-identical for any job
 * count.  When @p cache is given, points whose key was already
 * computed (by this sweep or an earlier one sharing the cache) are
 * served from it.
 *
 * Execution is snapshot-and-branch: points sharing a chip sample
 * (same seed) fork off one prototype machine rewound to its pristine
 * snapshot instead of constructing a stack per point, and run
 * macro-stepped.  Both are bit-identical to the legacy fresh-
 * machine per-step path (pinned by the sweep-equality tests), so
 * all committed goldens are unchanged.  Pass @p pool to share
 * arenas across several sweeps in one process.
 */
inline std::vector<RunStats>
runConfigurations(const ExperimentEngine &engine, const ChipSpec &chip,
                  const std::vector<ConfigPoint> &points,
                  MemoCache<RunStats> *cache = nullptr,
                  MachinePool *pool = nullptr)
{
    MachinePool local_pool;
    MachinePool &arenas = pool != nullptr ? *pool : local_pool;
    return engine.mapSpecs<RunStats, ConfigPoint>(
        points,
        [&chip, cache, &arenas](std::size_t, const ConfigPoint &p,
                                Rng &) {
            auto compute = [&] {
                MachineConfig mc;
                mc.seed = p.seed;
                auto lease = arenas.acquire(
                    machineArenaKey(chip, p.seed),
                    [&] {
                        return std::make_unique<MachineArena>(chip,
                                                              mc);
                    },
                    [](MachineArena &arena) {
                        arena.machine.restore(arena.pristine);
                    });
                return runConfigurationOn(lease->machine, *p.bench,
                                          p.threads, p.alloc, p.freq,
                                          p.undervolt);
            };
            if (cache) {
                return cache->getOrCompute(configPointKey(chip, p),
                                           compute);
            }
            return compute();
        });
}

} // namespace search
} // namespace ecosched

#endif // ECOSCHED_SEARCH_CONFIG_SPACE_HH
