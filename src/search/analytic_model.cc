#include "search/analytic_model.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hh"
#include "common/stats.hh"
#include "platform/chip.hh"
#include "power/energy_meter.hh"
#include "sim/perf_counters.hh"

namespace ecosched {
namespace search {

namespace {

/**
 * One scale class: the threads whose sibling-core occupancy (and
 * hence L2-sharing APKI scale) is identical.  All members run the
 * same profile with the same per-thread work, so they stay in
 * lockstep for the whole run and one set of per-step quantities
 * covers every member.
 */
struct ScaleClass
{
    double scale = 1.0;          ///< APKI inflation (sibling busy)
    Instructions remaining = 0;  ///< per-thread work left
    std::vector<CoreId> cores;   ///< member cores, ascending
    ThreadCounters counters;     ///< per-member counters (identical)
    long long finishStep = -1;   ///< step index the members retired

    // Per-segment kinematics (valid while `segValid` in the loop).
    Seconds tInstr = 0.0;
    double target = 0.0;   ///< instructions a full step retires
    Seconds busyFull = 0.0;
    double utilFull = 0.0;
    double l3AccFull = 0.0;
    double dramAccFull = 0.0;

    bool alive() const { return remaining > 0; }
};

} // namespace

AnalyticModel::AnalyticModel(const ChipSpec &spec)
    : chipSpec(spec),
      power(spec),
      memory(MemoryParams::forChipName(spec.name)),
      thermalParams(ThermalParams::forChipName(spec.name)),
      vmin(spec)
{
}

ModelEval
AnalyticModel::evaluate(const BenchmarkProfile &bench,
                        std::uint32_t threads, Allocation alloc,
                        Hertz freq, bool undervolt) const
{
    const std::uint32_t num_cores = chipSpec.numCores;
    const auto cores = allocateCores(num_cores, threads, alloc);
    const Hertz f = chipSpec.snapToLadder(freq);
    const Seconds dt = units::ms(10);
    const bool exact = exactRegime();

    // --- programmed V/f state (applied at t = 0, never changed) -----
    Chip chip(chipSpec);
    chip.setAllFrequencies(f);
    if (undervolt) {
        chip.setVoltage(
            vmin.tableVmin(f, countUtilizedPmds(cores)));
    }

    // --- collapse threads into scale classes ------------------------
    std::vector<std::uint8_t> busy(num_cores, 0);
    for (CoreId c : cores)
        busy[c] = 1;
    const Instructions per_thread = bench.perThreadWork(threads);
    std::vector<ScaleClass> classes;
    // memberOrder drives every per-thread summation: ascending core
    // id, exactly the order Machine::step() gathers running threads.
    std::vector<std::pair<CoreId, std::size_t>> memberOrder;
    for (CoreId c = 0; c < num_cores; ++c) {
        if (!busy[c])
            continue;
        const CoreId sibling =
            (c % coresPerPmd == 0) ? c + 1 : c - 1;
        const bool partner_busy =
            sibling < num_cores && busy[sibling] != 0;
        const double scale =
            partner_busy ? bench.work.l2SharingPenalty : 1.0;
        std::size_t idx = classes.size();
        for (std::size_t k = 0; k < classes.size(); ++k) {
            if (classes[k].scale == scale) {
                idx = k;
                break;
            }
        }
        if (idx == classes.size()) {
            ScaleClass sc;
            sc.scale = scale;
            sc.remaining = per_thread;
            classes.push_back(std::move(sc));
        }
        classes[idx].cores.push_back(c);
        memberOrder.emplace_back(c, idx);
    }
    ECOSCHED_ASSERT(classes.size() <= 2,
                    "sibling occupancy admits at most two classes");

    // --- degraded-regime idle floor (admissible underestimate) ------
    // C-states only ever *remove* power (idle clocks stop, gated
    // PMDs shed leakage); assuming maximal residency every step can
    // never overshoot the simulated energy.
    std::vector<std::uint8_t> deepIdle;
    IdlePowerView idleFloor;
    const IdlePowerView *idleView = nullptr;
    if (chipSpec.hasCStates()) {
        const CStateSpec *core_state = chipSpec.coreCState();
        const CStateSpec *pmd_state = chipSpec.pmdCState();
        deepIdle.assign(num_cores,
                        core_state != nullptr ? 1 : 0);
        idleFloor.coreDeepIdle = deepIdle.data();
        idleFloor.coreIdleClockScale =
            core_state != nullptr ? core_state->idleClockScale : 1.0;
        idleFloor.leakageScale = pmd_state != nullptr
            ? std::max(0.0,
                       1.0 - pmd_state->leakageShare
                           * static_cast<double>(chipSpec.numPmds()))
            : 1.0;
        idleView = &idleFloor;
    }

    // --- the step recurrence ---------------------------------------
    ThermalModel thermal(thermalParams);
    EnergyMeter meter;
    Seconds sim_time = 0.0;
    long long step_index = 0;

    std::vector<bool> pmdGatedWant(chipSpec.numPmds(), false);
    std::vector<CoreActivity> activityFull;
    std::vector<MemoryDemand> demands;
    UncoreActivity uncoreFull;
    PowerBreakdown rawPowerFull;
    double contention = 1.0;
    bool segValid = false;

    std::vector<CoreActivity> activityStep; // boundary-step scratch
    std::uint32_t liveClasses =
        static_cast<std::uint32_t>(classes.size());

    while (liveClasses > 0) {
        if (!segValid) {
            // Segment rebuild: membership changed (first step, or a
            // class retired last step).  Mirrors the work the
            // Machine's epoch/version-keyed caches re-do at exactly
            // these boundaries.
            // 1. Auto clock gating: idle PMDs gate at step start.
            std::vector<std::uint8_t> pmd_busy(chipSpec.numPmds(),
                                               0);
            for (const ScaleClass &sc : classes) {
                if (!sc.alive())
                    continue;
                for (CoreId c : sc.cores)
                    pmd_busy[pmdOfCore(c)] = 1;
            }
            for (PmdId p = 0; p < chipSpec.numPmds(); ++p) {
                const bool want = pmd_busy[p] == 0;
                if (chip.pmdClockGated(p) != want)
                    chip.setPmdClockGated(p, want);
            }
            // 2. Demand gather (core order) + contention solve.
            demands.clear();
            for (const auto &[core, idx] : memberOrder) {
                if (!classes[idx].alive())
                    continue;
                demands.push_back({&bench.work, f,
                                   classes[idx].scale});
            }
            contention = memory.solveContention(demands);
            // 3. Full-step kinematics per class.
            for (ScaleClass &sc : classes) {
                if (!sc.alive())
                    continue;
                sc.tInstr = memory.timePerInstruction(
                    bench.work, f, contention, sc.scale);
                const double rate = 1.0 / sc.tInstr;
                sc.target = rate * dt;
                const double retired_d = sc.target;
                sc.busyFull = retired_d * sc.tInstr;
                sc.utilFull =
                    std::clamp(sc.busyFull / dt, 0.0, 1.0);
                sc.l3AccFull = retired_d * bench.work.l3Apki
                    * sc.scale * 1e-3;
                sc.dramAccFull = retired_d * bench.work.dramApki
                    * sc.scale * 1e-3;
            }
            // 4. Activity + uncore rates (core-order summation) and
            //    the raw power of a full steady step.
            activityFull.assign(num_cores, CoreActivity{});
            uncoreFull = UncoreActivity{};
            for (const auto &[core, idx] : memberOrder) {
                const ScaleClass &sc = classes[idx];
                if (!sc.alive())
                    continue;
                activityFull[core].utilization = sc.utilFull;
                activityFull[core].switchingFactor =
                    bench.work.switchingFactor;
                uncoreFull.l3AccessesPerSec += sc.l3AccFull / dt;
                uncoreFull.dramAccessesPerSec +=
                    sc.dramAccFull / dt;
            }
            rawPowerFull = power.totalPower(chip, activityFull,
                                            uncoreFull, idleView);
            segValid = true;
        }

        // Boundary detection: a class whose remaining work no longer
        // covers a full step retires its members *this* step with a
        // partial utilization.
        bool boundary = false;
        for (const ScaleClass &sc : classes) {
            if (sc.alive()
                && static_cast<double>(sc.remaining) <= sc.target) {
                boundary = true;
                break;
            }
        }

        PowerBreakdown step_power;
        if (!boundary) {
            step_power = rawPowerFull;
        } else {
            activityStep = activityFull;
            UncoreActivity uncore{};
            for (const auto &[core, idx] : memberOrder) {
                const ScaleClass &sc = classes[idx];
                if (!sc.alive())
                    continue;
                const double rem_d =
                    static_cast<double>(sc.remaining);
                if (rem_d <= sc.target) {
                    const double retired_d =
                        std::min({rem_d, rem_d, sc.target});
                    const Seconds busy_t = retired_d * sc.tInstr;
                    activityStep[core].utilization =
                        std::clamp(busy_t / dt, 0.0, 1.0);
                    uncore.l3AccessesPerSec +=
                        retired_d * bench.work.l3Apki * sc.scale
                        * 1e-3 / dt;
                    uncore.dramAccessesPerSec +=
                        retired_d * bench.work.dramApki * sc.scale
                        * 1e-3 / dt;
                } else {
                    uncore.l3AccessesPerSec += sc.l3AccFull / dt;
                    uncore.dramAccessesPerSec +=
                        sc.dramAccFull / dt;
                }
            }
            step_power = power.totalPower(chip, activityStep, uncore,
                                          idleView);
        }

        // Counter updates + integer retire (mirrors the execute
        // phase: all members of a class advance identically).
        for (ScaleClass &sc : classes) {
            if (!sc.alive())
                continue;
            const double rem_d = static_cast<double>(sc.remaining);
            const double retired_d =
                std::min({rem_d, rem_d, sc.target});
            const auto retired = static_cast<Instructions>(
                std::llround(retired_d));
            const Seconds busy_t = retired_d * sc.tInstr;
            sc.counters.instructions += retired;
            sc.counters.cycles +=
                static_cast<Cycles>(std::llround(busy_t * f));
            sc.counters.l3Accesses +=
                static_cast<std::uint64_t>(std::llround(
                    retired_d * bench.work.l3Apki * sc.scale
                    * 1e-3));
            sc.counters.dramAccesses +=
                static_cast<std::uint64_t>(std::llround(
                    retired_d * bench.work.dramApki * sc.scale
                    * 1e-3));
            sc.counters.busyTime += busy_t;
            sc.remaining = (retired >= sc.remaining)
                ? 0 : sc.remaining - retired;
            if (!sc.alive()) {
                sc.finishStep = step_index;
                --liveClasses;
                segValid = false; // membership changes next step
            }
        }

        // Power integration (leakage responds to the temperature
        // reached so far; thermal advances under this step's power).
        step_power.leakage *= thermal.leakageMultiplier();
        thermal.step(dt, step_power.total());
        meter.add(dt, step_power);
        sim_time += dt;
        ++step_index;
    }

    // --- fold into RunStats ----------------------------------------
    ModelEval out;
    out.exact = exact;
    out.stats.runtime = sim_time;
    out.stats.energy = meter.energy();
    const double units_of_work =
        bench.parallel ? 1.0 : static_cast<double>(threads);
    out.stats.energyNormalized = out.stats.energy / units_of_work;
    out.stats.ed2p = out.stats.energyNormalized * out.stats.runtime
        * out.stats.runtime;

    // Per-thread counter means, in retire order: finish step first,
    // ascending core id within a step (the order the Machine's
    // finished queue delivers).
    std::vector<std::pair<long long, std::size_t>> finished;
    for (const auto &[core, idx] : memberOrder) {
        finished.emplace_back(
            classes[idx].finishStep * static_cast<long long>(
                num_cores) + static_cast<long long>(core),
            idx);
    }
    std::sort(finished.begin(), finished.end());
    RunningStats l3;
    RunningStats ipc;
    for (const auto &[order_key, idx] : finished) {
        l3.add(classes[idx].counters.l3AccessesPerMCycles());
        ipc.add(classes[idx].counters.ipc());
    }
    out.stats.meanL3PerMCycles = l3.mean();
    out.stats.meanIpc = ipc.mean();
    return out;
}

} // namespace search
} // namespace ecosched
