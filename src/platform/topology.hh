/**
 * @file
 * Core/PMD topology identifiers and core-allocation shapes.
 *
 * Both X-Gene chips group cores into PMDs (Processor MoDules): pairs
 * of cores sharing an L2 cache and a clock domain.  The paper's two
 * canonical allocation shapes (Figure 2) are:
 *
 *  - clustered: threads fill consecutive cores, occupying both cores
 *    of each PMD before touching the next PMD (fewest utilized PMDs);
 *  - spreaded:  threads take the first core of each PMD before any
 *    second core (most utilized PMDs).
 */

#ifndef ECOSCHED_PLATFORM_TOPOLOGY_HH
#define ECOSCHED_PLATFORM_TOPOLOGY_HH

#include <cstdint>
#include <vector>

namespace ecosched {

/// Index of a CPU core within a chip, 0-based.
using CoreId = std::uint32_t;

/// Index of a PMD (core pair) within a chip, 0-based.
using PmdId = std::uint32_t;

/// Number of cores per PMD on the X-Gene family.
inline constexpr std::uint32_t coresPerPmd = 2;

/// PMD that owns the given core.
constexpr PmdId
pmdOfCore(CoreId core)
{
    return core / coresPerPmd;
}

/// First core of a PMD.
constexpr CoreId
firstCoreOfPmd(PmdId pmd)
{
    return pmd * coresPerPmd;
}

/// Second core of a PMD.
constexpr CoreId
secondCoreOfPmd(PmdId pmd)
{
    return pmd * coresPerPmd + 1;
}

/// The two canonical core-allocation shapes of the paper (Figure 2).
enum class Allocation
{
    Clustered, ///< consecutive cores, both cores of each PMD occupied
    Spreaded,  ///< one core per PMD first (threads in separate PMDs)
};

/// Human-readable name ("clustered" / "spreaded").
const char *allocationName(Allocation alloc);

/**
 * Compute the cores used by @p threads threads on a chip with
 * @p num_cores cores under the given allocation shape.
 *
 * @throws FatalError if threads == 0 or threads > num_cores.
 */
std::vector<CoreId> allocateCores(std::uint32_t num_cores,
                                  std::uint32_t threads,
                                  Allocation alloc);

/// Number of distinct PMDs covered by a set of cores.
std::uint32_t countUtilizedPmds(const std::vector<CoreId> &cores);

} // namespace ecosched

#endif // ECOSCHED_PLATFORM_TOPOLOGY_HH
