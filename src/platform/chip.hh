/**
 * @file
 * Runtime voltage/frequency state of a chip.
 *
 * Mirrors the X-Gene control surface: one supply voltage for the
 * whole PCP power domain (all cores + caches + memory controllers),
 * an independent clock frequency per PMD (pair of cores), and
 * per-PMD clock gating for idle modules.
 */

#ifndef ECOSCHED_PLATFORM_CHIP_HH
#define ECOSCHED_PLATFORM_CHIP_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "platform/chip_spec.hh"
#include "platform/topology.hh"

namespace ecosched {

/**
 * Mutable chip state: supply voltage, per-PMD frequency, per-PMD
 * clock gating.  All mutations are validated against the ChipSpec.
 */
class Chip
{
  public:
    /// Construct at nominal voltage and fMax on every PMD, ungated.
    explicit Chip(ChipSpec chip_spec);

    /// Static description of this chip.
    const ChipSpec &spec() const { return chipSpec; }

    /// Current supply voltage of the PCP domain.
    Volt voltage() const { return supplyVoltage; }

    /**
     * Set the supply voltage.
     * @throws FatalError when outside [vFloor, vNominal].
     */
    void setVoltage(Volt v);

    /// Current clock frequency of a PMD.
    Hertz pmdFrequency(PmdId pmd) const;

    /**
     * Set the clock frequency of a PMD.  The value must lie on the
     * chip's frequency ladder (use ChipSpec::snapToLadder first for
     * continuous CPPC-style requests).
     */
    void setPmdFrequency(PmdId pmd, Hertz f);

    /// Set every PMD to the same ladder frequency.
    void setAllFrequencies(Hertz f);

    /// Whether a PMD's clock is gated (idle module).
    bool pmdClockGated(PmdId pmd) const;

    /// Gate / ungate a PMD's clock.
    void setPmdClockGated(PmdId pmd, bool gated);

    /// Frequency seen by a core (its PMD's frequency; 0 when gated).
    Hertz coreFrequency(CoreId core) const;

    /**
     * State-version counter: bumped whenever the voltage, a PMD
     * frequency, or a gating flag actually changes (no-op writes do
     * not count).  Hot-path caches key derived quantities (power,
     * safe Vmin) on this epoch instead of re-reading the whole
     * V/F state.
     */
    std::uint64_t stateEpoch() const { return epoch; }

    /// Number of PMDs whose clock is currently running (not gated).
    std::uint32_t numActivePmds() const;

    /// Highest frequency among non-gated PMDs (0 if all gated).
    Hertz maxActiveFrequency() const;

    /// Reset to nominal voltage, fMax everywhere, no gating.
    void reset();

    // --- snapshot support ------------------------------------------------
    /// Full mutable V/F state (snapshot-and-branch execution).  The
    /// spec is construction identity, not state, and is not carried.
    struct State
    {
        Volt voltage = 0.0;
        std::vector<Hertz> pmdFreq;
        std::vector<bool> pmdGated;
        std::uint64_t epoch = 0;
    };

    /// Capture the mutable state.
    State captureState() const;

    /**
     * Restore previously captured state, including the epoch, so a
     * restored chip replays exactly like the captured one.  Callers
     * holding epoch-keyed caches over this chip must invalidate them
     * (the epoch may move backwards).
     * @throws FatalError when the state belongs to another topology.
     */
    void restoreState(const State &state);

  private:
    void checkPmd(PmdId pmd) const;

    ChipSpec chipSpec;
    Volt supplyVoltage;
    std::vector<Hertz> pmdFreq;
    std::vector<bool> pmdGated;
    std::uint64_t epoch = 0;
};

} // namespace ecosched

#endif // ECOSCHED_PLATFORM_CHIP_HH
