/**
 * @file
 * Static chip description (Table I of the paper) plus the clocking
 * quirks of §II.B: the frequency ladder at 1/8 steps of fmax, the
 * clock-division vs clock-skipping distinction, and the X-Gene 2
 * CPPC frequency-interleaving behaviour that moves the clock-division
 * benefit one ladder step below the half clock.
 */

#ifndef ECOSCHED_PLATFORM_CHIP_SPEC_HH
#define ECOSCHED_PLATFORM_CHIP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "platform/topology.hh"

namespace ecosched {

/**
 * How a requested clock ratio is realised relative to the PMD clock
 * source (§II.B).  Ratios other than 1/2 use clock *skipping* on the
 * input clock; the 1/2 ratio uses clock *division*.  Division relaxes
 * the timing-critical path and therefore enables a much lower safe
 * Vmin; skipping keeps the input clock's timing properties.
 */
enum class ClockMode
{
    Nominal,   ///< full input clock (fmax)
    Skipping,  ///< clock skipping: Vmin behaves like the input clock
    Division,  ///< clock division: significantly relaxed Vmin
};

/// Human-readable name of a ClockMode.
const char *clockModeName(ClockMode mode);

/**
 * Frequency classes that matter for the safe Vmin (§II.B): every
 * frequency above the half clock shares the Vmin of fmax; every
 * frequency at/below the half clock shares the Vmin of the half
 * clock; on X-Gene 2 only, frequencies at/below 0.9 GHz reach the
 * full clock-division benefit (~15 % below the fmax Vmin).
 */
enum class VminFreqClass
{
    High,  ///< f above the half clock: fmax-like Vmin
    Half,  ///< half clock (and below, where no Deep class exists)
    Deep,  ///< X-Gene 2 at/below 0.9 GHz: full division benefit
};

/// Human-readable name of a VminFreqClass.
const char *vminFreqClassName(VminFreqClass cls);

/**
 * One voltage-droop magnitude class (Table II row): running up to
 * @c maxPmds PMDs at the high clock produces droop events whose
 * magnitude falls in [binLo, binHi) millivolts.
 */
struct DroopClass
{
    std::uint32_t maxPmds; ///< largest PMD count in this class
    double binLoMv;        ///< inclusive magnitude lower bound [mV]
    double binHiMv;        ///< exclusive magnitude upper bound [mV]
};

/**
 * One hardware idle state (c-state analog).  Two scopes exist: a
 * per-core state (c1 analog: the core clock stops but the PMD stays
 * up) and a per-PMD state (c6 analog: the whole PMD power-gates,
 * dropping its share of chip leakage).  A core/PMD is promoted into
 * the state only after sitting idle for @c residency (the break-even
 * time) plus @c entryLatency; waking out of it stalls the first
 * slice of the waking thread by @c exitLatency.
 */
struct CStateSpec
{
    std::string name;     ///< e.g. "c1", "c6"
    bool perPmd = false;  ///< false: per-core state; true: per-PMD
    Seconds entryLatency = 0.0; ///< time the entry transition takes
    Seconds exitLatency = 0.0;  ///< wake stall paid by the first run
    Seconds residency = 0.0;    ///< break-even idle time before entry
    /**
     * Per-core states: multiplier on the power model's
     * idleClockFactor while resident (0 = the idle clock fully
     * stops).  Ignored for per-PMD states.
     */
    double idleClockScale = 0.0;
    /**
     * Per-PMD states: fraction of total chip leakage gated off while
     * this PMD is resident (the PMD's leakage share).  Must satisfy
     * leakageShare * numPmds <= 1.  Ignored for per-core states.
     */
    double leakageShare = 0.0;
};

/**
 * Chip-level DRAM bandwidth reservation table (memsched analog).  A
 * zero ceiling (the presets' default) means the platform enforces no
 * bandwidth budget and the MEMBW subsystem is inert — every
 * pre-existing result stays byte-identical.  With a ceiling armed,
 * each running thread receives a per-core slice of the ceiling
 * (ceiling / numCores), unused slices are reclaimed and redistributed
 * to unsatisfied threads, and no single thread's grant may exceed
 * maxThreadShare of the ceiling.  Use withMemBw() for the calibrated
 * tables.
 */
struct MemBwSpec
{
    /// Enforced aggregate DRAM bandwidth [B/s]; 0 = no reservation.
    BytesPerSecond ceiling = 0.0;
    /// Cap on any one thread's grant as a fraction of the ceiling.
    double maxThreadShare = 0.5;
};

/**
 * Immutable description of a chip model.  Use the xGene2() / xGene3()
 * presets for the paper's platforms or build a custom spec (validated
 * by validate()).
 */
struct ChipSpec
{
    std::string name;          ///< e.g. "X-Gene 2"
    std::uint32_t numCores;    ///< total cores (multiple of 2)
    Hertz fMax;                ///< maximum core clock
    std::uint32_t freqSteps;   ///< ladder resolution (fmax / freqSteps)
    Volt vNominal;             ///< nominal supply voltage
    Volt vFloor;               ///< lowest voltage the regulator accepts
    Watt tdp;                  ///< thermal design power
    std::uint64_t l3Bytes;     ///< L3 capacity
    std::uint32_t technologyNm;///< process node (28 / 16)

    /// Frequency at/below which Vmin behaves like the half clock.
    Hertz halfClassMaxFreq;
    /// Frequency at/below which the Deep (division) class applies;
    /// 0 when the chip never reaches the Deep class (X-Gene 3).
    Hertz deepClassMaxFreq;

    /// Droop-magnitude classes ordered by increasing PMD count.
    std::vector<DroopClass> droopClasses;

    /**
     * Idle-state table: at most one per-core entry (listed first)
     * and one per-PMD entry.  Empty (the presets' default) means the
     * platform has no c-states and the idle subsystem is inert —
     * every pre-existing result stays byte-identical.  Use
     * withCStates() for the calibrated tables.
     */
    std::vector<CStateSpec> cstates;

    /// Whether the chip models hardware idle states at all.
    bool hasCStates() const { return !cstates.empty(); }

    /**
     * Bandwidth reservation table; ceiling == 0 (the presets'
     * default) leaves the MEMBW subsystem inert.  Use withMemBw()
     * for the calibrated tables.
     */
    MemBwSpec membw;

    /// Whether the chip enforces a DRAM bandwidth reservation.
    bool hasMemBw() const { return membw.ceiling > 0.0; }

    /// Per-core idle state (c1 analog), or nullptr when absent.
    const CStateSpec *coreCState() const;

    /// Per-PMD idle state (c6 analog), or nullptr when absent.
    const CStateSpec *pmdCState() const;

    /// Number of PMDs (numCores / 2).
    std::uint32_t numPmds() const { return numCores / coresPerPmd; }

    /// Ladder step size (fMax / freqSteps).
    Hertz freqStep() const
    {
        return fMax / static_cast<double>(freqSteps);
    }

    /// All ladder frequencies, ascending (step, 2*step, ..., fMax).
    std::vector<Hertz> frequencyLadder() const;

    /// Nearest ladder frequency to @p f (ties round up).
    Hertz snapToLadder(Hertz f) const;

    /// Whether @p f lies (within tolerance) on the ladder.
    bool onLadder(Hertz f) const;

    /**
     * Clocking mode used to realise ladder frequency @p f
     * (Nominal at fMax, Division at fMax/2, Skipping elsewhere).
     */
    ClockMode clockMode(Hertz f) const;

    /// Vmin frequency class of ladder frequency @p f (see enum docs).
    VminFreqClass vminFreqClass(Hertz f) const;

    /**
     * Droop class index (0-based row of droopClasses) for a number of
     * utilized PMDs.  @throws FatalError if pmds is 0 or exceeds the
     * chip's PMD count.
     */
    std::size_t droopClassIndex(std::uint32_t utilized_pmds) const;

    /// Droop class record for a number of utilized PMDs.
    const DroopClass &droopClass(std::uint32_t utilized_pmds) const;

    /// Sanity-check all fields. @throws FatalError on inconsistency.
    void validate() const;
};

/// Preset for Applied Micro X-Gene 2 (Table I).
ChipSpec xGene2();

/// Preset for Applied Micro X-Gene 3 (Table I).
ChipSpec xGene3();

/**
 * Copy of @p spec with a calibrated idle-state table attached (c1 +
 * c6 analogs scaled to the chip's PMD count).  The chip name is kept
 * unchanged — the calibrated power/memory models match on it — so
 * only the cstates field differs from the input.
 */
ChipSpec withCStates(ChipSpec spec);

/**
 * Copy of @p spec with a calibrated DRAM bandwidth reservation
 * attached (the ceiling matches the chip's memory-model peak so the
 * reservation binds exactly where uncontrolled contention would).
 * The chip name is kept unchanged — the calibrated power/memory
 * models match on it — so only the membw field differs from the
 * input.
 *
 * @p ceiling overrides the calibrated per-chip default when positive;
 * @p max_share caps any one thread's grant as a ceiling fraction.
 */
ChipSpec withMemBw(ChipSpec spec, BytesPerSecond ceiling = 0.0,
                   double max_share = 0.5);

} // namespace ecosched

#endif // ECOSCHED_PLATFORM_CHIP_SPEC_HH
