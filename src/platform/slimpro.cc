#include "platform/slimpro.hh"

#include <cmath>
#include <utility>

#include "common/error.hh"

namespace ecosched {

SlimPro::SlimPro(Chip &target, Timing timing)
    : managed(target), timingModel(timing)
{
    fatalIf(timingModel.voltageSlewVoltsPerSec <= 0.0,
            "voltage slew rate must be positive");
}

Seconds
SlimPro::requestVoltage(Seconds now, Volt v)
{
    const Volt before = managed.voltage();
    if (std::fabs(before - v) < 1e-9)
        return 0.0;
    Seconds extra = 0.0;
    if (faults != nullptr
        && faults->intercept(now, VfEventKind::VoltageChange, extra)) {
        ++nDropped;
        return 0.0;
    }
    managed.setVoltage(v);
    const Seconds latency = std::fabs(v - before)
        / timingModel.voltageSlewVoltsPerSec
        + timingModel.voltageSettle + extra;
    ++nVoltage;
    latencySum += latency;
    record({now, VfEventKind::VoltageChange, 0, before, v, latency});
    return latency;
}

Seconds
SlimPro::requestPmdFrequency(Seconds now, PmdId pmd, Hertz f)
{
    const Hertz snapped = managed.spec().snapToLadder(f);
    const Hertz before = managed.pmdFrequency(pmd);
    if (std::fabs(before - snapped) < 1e-3)
        return 0.0;
    Seconds extra = 0.0;
    if (faults != nullptr
        && faults->intercept(now, VfEventKind::FrequencyChange,
                             extra)) {
        ++nDropped;
        return 0.0;
    }
    managed.setPmdFrequency(pmd, snapped);
    const Seconds latency = timingModel.frequencySettle + extra;
    ++nFrequency;
    latencySum += latency;
    record({now, VfEventKind::FrequencyChange, pmd, before, snapped,
            latency});
    return latency;
}

Seconds
SlimPro::requestAllFrequencies(Seconds now, Hertz f)
{
    Seconds total = 0.0;
    for (PmdId p = 0; p < managed.spec().numPmds(); ++p)
        total += requestPmdFrequency(now, p, f);
    return total;
}

Seconds
SlimPro::requestClockGate(Seconds now, PmdId pmd, bool gated)
{
    const bool before = managed.pmdClockGated(pmd);
    if (before == gated)
        return 0.0;
    managed.setPmdClockGated(pmd, gated);
    const Seconds latency = timingModel.frequencySettle;
    latencySum += latency;
    record({now, VfEventKind::ClockGateChange, pmd,
            before ? 1.0 : 0.0, gated ? 1.0 : 0.0, latency});
    return latency;
}

void
SlimPro::setObserver(VfObserver new_observer)
{
    observer = std::move(new_observer);
}

void
SlimPro::clearLog()
{
    events.clear();
}

SlimPro::State
SlimPro::captureState() const
{
    State s;
    s.events = events;
    s.nVoltage = nVoltage;
    s.nFrequency = nFrequency;
    s.nDropped = nDropped;
    s.latencySum = latencySum;
    return s;
}

void
SlimPro::restoreState(const State &state)
{
    events = state.events;
    nVoltage = state.nVoltage;
    nFrequency = state.nFrequency;
    nDropped = state.nDropped;
    latencySum = state.latencySum;
    observer = VfObserver{};
    faults = nullptr;
}

void
SlimPro::record(const VfEvent &ev)
{
    events.push_back(ev);
    if (observer)
        observer(managed, ev);
}

} // namespace ecosched
