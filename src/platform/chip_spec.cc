#include "platform/chip_spec.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace ecosched {

const char *
clockModeName(ClockMode mode)
{
    switch (mode) {
      case ClockMode::Nominal:  return "nominal";
      case ClockMode::Skipping: return "skipping";
      case ClockMode::Division: return "division";
    }
    return "?";
}

const char *
vminFreqClassName(VminFreqClass cls)
{
    switch (cls) {
      case VminFreqClass::High: return "high";
      case VminFreqClass::Half: return "half";
      case VminFreqClass::Deep: return "deep";
    }
    return "?";
}

const CStateSpec *
ChipSpec::coreCState() const
{
    for (const CStateSpec &cs : cstates)
        if (!cs.perPmd)
            return &cs;
    return nullptr;
}

const CStateSpec *
ChipSpec::pmdCState() const
{
    for (const CStateSpec &cs : cstates)
        if (cs.perPmd)
            return &cs;
    return nullptr;
}

std::vector<Hertz>
ChipSpec::frequencyLadder() const
{
    std::vector<Hertz> ladder;
    ladder.reserve(freqSteps);
    for (std::uint32_t k = 1; k <= freqSteps; ++k)
        ladder.push_back(freqStep() * static_cast<double>(k));
    return ladder;
}

Hertz
ChipSpec::snapToLadder(Hertz f) const
{
    fatalIf(f <= 0.0, "frequency must be positive, got ", f);
    const double step = freqStep();
    double k = std::round(f / step);
    k = std::clamp(k, 1.0, static_cast<double>(freqSteps));
    return step * k;
}

bool
ChipSpec::onLadder(Hertz f) const
{
    if (f <= 0.0 || f > fMax * (1.0 + 1e-9))
        return false;
    const double step = freqStep();
    const double k = f / step;
    return std::fabs(k - std::round(k)) < 1e-6 && std::round(k) >= 1.0;
}

ClockMode
ChipSpec::clockMode(Hertz f) const
{
    fatalIf(!onLadder(f), name, ": ", f,
            " Hz is not on the frequency ladder");
    const double rel = f / fMax;
    if (std::fabs(rel - 1.0) < 1e-9)
        return ClockMode::Nominal;
    if (std::fabs(rel - 0.5) < 1e-9)
        return ClockMode::Division;
    return ClockMode::Skipping;
}

VminFreqClass
ChipSpec::vminFreqClass(Hertz f) const
{
    fatalIf(!onLadder(f), name, ": ", f,
            " Hz is not on the frequency ladder");
    const double eps = freqStep() * 1e-6;
    if (deepClassMaxFreq > 0.0 && f <= deepClassMaxFreq + eps)
        return VminFreqClass::Deep;
    if (f <= halfClassMaxFreq + eps)
        return VminFreqClass::Half;
    return VminFreqClass::High;
}

std::size_t
ChipSpec::droopClassIndex(std::uint32_t utilized_pmds) const
{
    fatalIf(utilized_pmds == 0, "droop class of zero PMDs is undefined");
    fatalIf(utilized_pmds > numPmds(), name, " has only ", numPmds(),
            " PMDs, got ", utilized_pmds);
    for (std::size_t i = 0; i < droopClasses.size(); ++i) {
        if (utilized_pmds <= droopClasses[i].maxPmds)
            return i;
    }
    ECOSCHED_PANIC("droop classes do not cover the chip's PMD count");
}

const DroopClass &
ChipSpec::droopClass(std::uint32_t utilized_pmds) const
{
    return droopClasses[droopClassIndex(utilized_pmds)];
}

void
ChipSpec::validate() const
{
    fatalIf(name.empty(), "chip spec needs a name");
    fatalIf(numCores == 0 || numCores % coresPerPmd != 0,
            name, ": core count must be a positive multiple of ",
            coresPerPmd);
    fatalIf(fMax <= 0.0, name, ": fMax must be positive");
    fatalIf(freqSteps == 0, name, ": freqSteps must be positive");
    fatalIf(vNominal <= 0.0, name, ": nominal voltage must be positive");
    fatalIf(vFloor <= 0.0 || vFloor >= vNominal,
            name, ": vFloor must be in (0, vNominal)");
    fatalIf(tdp <= 0.0, name, ": TDP must be positive");
    fatalIf(!onLadder(halfClassMaxFreq),
            name, ": halfClassMaxFreq must be a ladder frequency");
    fatalIf(deepClassMaxFreq != 0.0 && !onLadder(deepClassMaxFreq),
            name, ": deepClassMaxFreq must be 0 or a ladder frequency");
    fatalIf(deepClassMaxFreq >= halfClassMaxFreq &&
                deepClassMaxFreq != 0.0,
            name, ": deep class must sit below the half class");
    fatalIf(droopClasses.empty(), name, ": needs droop classes");
    std::uint32_t prev = 0;
    for (const auto &dc : droopClasses) {
        fatalIf(dc.maxPmds <= prev,
                name, ": droop classes must have increasing maxPmds");
        fatalIf(dc.binHiMv <= dc.binLoMv,
                name, ": droop magnitude bin must have binHi > binLo");
        prev = dc.maxPmds;
    }
    fatalIf(droopClasses.back().maxPmds < numPmds(),
            name, ": droop classes must cover all ", numPmds(), " PMDs");
    bool saw_core = false;
    bool saw_pmd = false;
    for (const CStateSpec &cs : cstates) {
        fatalIf(cs.name.empty(), name, ": c-state needs a name");
        fatalIf(cs.entryLatency < 0.0 || cs.exitLatency < 0.0
                    || cs.residency < 0.0,
                name, ": c-state ", cs.name,
                " latencies/residency must be non-negative");
        if (cs.perPmd) {
            fatalIf(saw_pmd, name, ": at most one per-PMD c-state");
            fatalIf(cs.leakageShare < 0.0
                        || cs.leakageShare * numPmds() > 1.0 + 1e-9,
                    name, ": c-state ", cs.name,
                    " leakage share must satisfy share*numPmds <= 1");
            saw_pmd = true;
        } else {
            fatalIf(saw_core, name, ": at most one per-core c-state");
            fatalIf(saw_pmd, name,
                    ": the per-core c-state must precede the per-PMD"
                    " one");
            fatalIf(cs.idleClockScale < 0.0 || cs.idleClockScale > 1.0,
                    name, ": c-state ", cs.name,
                    " idleClockScale must be in [0, 1]");
            saw_core = true;
        }
    }
    fatalIf(membw.ceiling < 0.0,
            name, ": membw ceiling must be non-negative");
    if (membw.ceiling > 0.0) {
        fatalIf(membw.maxThreadShare <= 0.0
                    || membw.maxThreadShare > 1.0,
                name, ": membw maxThreadShare must be in (0, 1]");
        // Every running thread is owed a non-zero grant: the cap must
        // not undercut the per-core fair slice, or reclaim could be
        // forced to starve a demanding thread.
        fatalIf(membw.maxThreadShare
                    < 1.0 / static_cast<double>(numCores) - 1e-12,
                name, ": membw maxThreadShare must cover at least the"
                " per-core slice 1/numCores");
    }
}

ChipSpec
xGene2()
{
    using namespace units;
    ChipSpec spec;
    spec.name = "X-Gene 2";
    spec.numCores = 8;
    spec.fMax = GHz(2.4);
    spec.freqSteps = 8;             // 300 MHz ladder
    spec.vNominal = mV(980);
    spec.vFloor = mV(700);
    spec.tdp = 35.0;
    spec.l3Bytes = 8ull * 1024 * 1024;
    spec.technologyNm = 28;
    // CPPC frequency interleaving (§II.B): a 1.2 GHz request is
    // realised by interleaving ladder points above/below, so its Vmin
    // is limited by the highest point used (skipping class).  The
    // full division benefit only appears from 0.9 GHz downwards.
    spec.halfClassMaxFreq = GHz(1.2);
    spec.deepClassMaxFreq = GHz(0.9);
    spec.droopClasses = {
        {1, 25.0, 35.0},
        {2, 35.0, 45.0},
        {4, 45.0, 55.0},
    };
    spec.validate();
    return spec;
}

ChipSpec
xGene3()
{
    using namespace units;
    ChipSpec spec;
    spec.name = "X-Gene 3";
    spec.numCores = 32;
    spec.fMax = GHz(3.0);
    spec.freqSteps = 8;             // 375 MHz ladder
    spec.vNominal = mV(870);
    spec.vFloor = mV(650);
    spec.tdp = 125.0;
    spec.l3Bytes = 32ull * 1024 * 1024;
    spec.technologyNm = 16;
    // No Deep class: below 1.5 GHz the Vmin does not improve further
    // (§II.B: "we did not observe the same behavior below the 1.5GHz
    // as in X-Gene 2").
    spec.halfClassMaxFreq = GHz(1.5);
    spec.deepClassMaxFreq = 0.0;
    // Table II droop magnitude classes.
    spec.droopClasses = {
        {2, 25.0, 35.0},
        {4, 35.0, 45.0},
        {8, 45.0, 55.0},
        {16, 55.0, 65.0},
    };
    spec.validate();
    return spec;
}

ChipSpec
withCStates(ChipSpec spec)
{
    using namespace units;
    spec.validate();
    // c1 analog: the core clock stops (no idle-clock toggling) but
    // the PMD stays powered.  Cheap to enter/exit, so the break-even
    // residency is short.
    CStateSpec c1;
    c1.name = "c1";
    c1.perPmd = false;
    c1.entryLatency = us(10);
    c1.exitLatency = us(20);
    c1.residency = us(200);
    c1.idleClockScale = 0.0;
    // c6 analog: the whole PMD power-gates, dropping its share of
    // chip leakage (cores + L2 dominate the static power; the uncore
    // keeps leaking).  Expensive transition, long break-even.
    CStateSpec c6;
    c6.name = "c6";
    c6.perPmd = true;
    c6.entryLatency = us(200);
    c6.exitLatency = us(600);
    c6.residency = ms(4);
    c6.leakageShare =
        0.75 / static_cast<double>(spec.numPmds());
    spec.cstates = {c1, c6};
    spec.validate();
    return spec;
}

ChipSpec
withMemBw(ChipSpec spec, BytesPerSecond ceiling, double max_share)
{
    using namespace units;
    spec.validate();
    if (ceiling <= 0.0) {
        // Calibrated defaults match the memory model's DRAM peaks
        // (MemoryParams::forChipName), so the reservation binds
        // exactly where uncontrolled contention would saturate.
        if (spec.name == "X-Gene 2")
            ceiling = GiBps(10);
        else
            ceiling = GiBps(20);
    }
    spec.membw.ceiling = ceiling;
    spec.membw.maxThreadShare = max_share;
    spec.validate();
    return spec;
}

} // namespace ecosched
