/**
 * @file
 * SLIMpro management-processor façade.
 *
 * On the real X-Gene chips, the Scalable Lightweight Intelligent
 * Management processor (SLIMpro) is the only agent that can regulate
 * the PCP supply voltage and per-PMD clocks; the Linux kernel talks
 * to it through a mailbox.  This class is the equivalent control
 * plane for the simulated chip: it applies requests, models their
 * transition latency, keeps an audit log, and can notify a safety
 * monitor (used by tests to prove the daemon's fail-safe ordering:
 * the voltage is always raised *before* a frequency increase or a
 * PMD un-gating makes the old voltage unsafe).
 */

#ifndef ECOSCHED_PLATFORM_SLIMPRO_HH
#define ECOSCHED_PLATFORM_SLIMPRO_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hh"
#include "platform/chip.hh"

namespace ecosched {

/// Kinds of control-plane transitions the SLIMpro performs.
enum class VfEventKind
{
    VoltageChange,
    FrequencyChange,
    ClockGateChange,
};

/// One entry of the SLIMpro audit log.
struct VfEvent
{
    Seconds time;        ///< request timestamp
    VfEventKind kind;    ///< what changed
    PmdId pmd;           ///< affected PMD (0 for voltage changes)
    double before;       ///< previous value (V, Hz, or gated flag)
    double after;        ///< new value
    Seconds latency;     ///< modelled transition latency
};

/**
 * Callback invoked after every applied transition; receives the chip
 * (post-change) and the event.  Tests install a checker here.
 */
using VfObserver = std::function<void(const Chip &, const VfEvent &)>;

/**
 * Fault model for the mailbox between the kernel and the SLIMpro
 * (src/inject).  Voltage and frequency requests pass through it: the
 * model may add extra latency (a congested mailbox) or drop the
 * request outright (a lost command — the chip state is unchanged and
 * no event is logged).  Clock-gate requests are not intercepted;
 * they are the machine's own idle management, not daemon commands.
 */
class SlimProFaultModel
{
  public:
    virtual ~SlimProFaultModel() = default;
    /**
     * Intercept one request at time @p now.  May add to
     * @p extra_latency.
     * @return true to drop the request entirely.
     */
    virtual bool intercept(Seconds now, VfEventKind kind,
                           Seconds &extra_latency) = 0;
};

/**
 * Control plane for one Chip.  All voltage/frequency changes in the
 * library flow through this class so that transition counts and
 * latencies are accounted uniformly.
 */
class SlimPro
{
  public:
    /// Transition-latency model parameters.
    struct Timing
    {
        /// Regulator slew rate [V/s]; X-Gene-class VRMs manage ~mV/us.
        double voltageSlewVoltsPerSec = 1000.0;
        /// Fixed settle time added to every voltage change.
        Seconds voltageSettle = units::us(50);
        /// PLL/divider re-lock time per frequency change.
        Seconds frequencySettle = units::us(20);
    };

    /// Wrap a chip; the chip must outlive the SlimPro.
    explicit SlimPro(Chip &target, Timing timing);

    /// Wrap a chip with the default transition-latency model.
    explicit SlimPro(Chip &target) : SlimPro(target, Timing{}) {}

    /// The managed chip (read-only view for clients).
    const Chip &chip() const { return managed; }

    /**
     * Request a supply-voltage change at simulated time @p now.
     * @return modelled transition latency.
     */
    Seconds requestVoltage(Seconds now, Volt v);

    /**
     * Request a PMD frequency change at simulated time @p now.  The
     * request is CPPC-style continuous: it is snapped to the ladder.
     * @return modelled transition latency.
     */
    Seconds requestPmdFrequency(Seconds now, PmdId pmd, Hertz f);

    /// Request all PMDs to the same (snapped) frequency.
    Seconds requestAllFrequencies(Seconds now, Hertz f);

    /// Gate or un-gate a PMD clock at simulated time @p now.
    Seconds requestClockGate(Seconds now, PmdId pmd, bool gated);

    /// Install an observer (replaces any previous one).
    void setObserver(VfObserver observer);

    /// Install (or clear, with nullptr) the mailbox fault model.
    /// Non-owning; the model must outlive the SlimPro or be cleared.
    void setFaultModel(SlimProFaultModel *model) { faults = model; }

    /// Number of requests the fault model dropped.
    std::uint64_t droppedRequests() const { return nDropped; }

    /// Full audit log since construction (or clearLog()).
    const std::vector<VfEvent> &log() const { return events; }

    /// Drop the audit log (counters are kept).
    void clearLog();

    /// Total number of voltage transitions performed.
    std::uint64_t voltageTransitions() const { return nVoltage; }

    /// Total number of frequency transitions performed.
    std::uint64_t frequencyTransitions() const { return nFrequency; }

    /// Sum of all modelled transition latencies.
    Seconds totalTransitionLatency() const { return latencySum; }

    // --- snapshot support ------------------------------------------------
    /// Mutable control-plane state: audit log + counters.  The
    /// managed chip, the timing model, the observer and the fault
    /// model are wiring, not state, and are not carried.
    struct State
    {
        std::vector<VfEvent> events;
        std::uint64_t nVoltage = 0;
        std::uint64_t nFrequency = 0;
        std::uint64_t nDropped = 0;
        Seconds latencySum = 0.0;
    };

    /// Capture the audit log and counters.
    State captureState() const;

    /**
     * Restore previously captured state.  Also clears the observer
     * and the fault model, so a restored control plane matches a
     * freshly constructed one — callers re-install their hooks after
     * restoring, exactly as they do after construction.
     */
    void restoreState(const State &state);

  private:
    void record(const VfEvent &ev);

    Chip &managed;
    Timing timingModel;
    VfObserver observer;
    SlimProFaultModel *faults = nullptr;
    std::vector<VfEvent> events;
    std::uint64_t nVoltage = 0;
    std::uint64_t nFrequency = 0;
    std::uint64_t nDropped = 0;
    Seconds latencySum = 0.0;
};

} // namespace ecosched

#endif // ECOSCHED_PLATFORM_SLIMPRO_HH
