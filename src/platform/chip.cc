#include "platform/chip.hh"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/error.hh"

namespace ecosched {

Chip::Chip(ChipSpec chip_spec)
    : chipSpec(std::move(chip_spec))
{
    chipSpec.validate();
    supplyVoltage = chipSpec.vNominal;
    pmdFreq.assign(chipSpec.numPmds(), chipSpec.fMax);
    pmdGated.assign(chipSpec.numPmds(), false);
}

void
Chip::setVoltage(Volt v)
{
    fatalIf(v < chipSpec.vFloor - 1e-9 || v > chipSpec.vNominal + 1e-9,
            chipSpec.name, ": voltage ", units::toMilliVolts(v),
            " mV outside [", units::toMilliVolts(chipSpec.vFloor),
            ", ", units::toMilliVolts(chipSpec.vNominal), "] mV");
    if (supplyVoltage != v)
        ++epoch;
    supplyVoltage = v;
}

Hertz
Chip::pmdFrequency(PmdId pmd) const
{
    checkPmd(pmd);
    return pmdFreq[pmd];
}

void
Chip::setPmdFrequency(PmdId pmd, Hertz f)
{
    checkPmd(pmd);
    fatalIf(!chipSpec.onLadder(f),
            chipSpec.name, ": ", units::toGHz(f),
            " GHz is not a ladder frequency");
    if (pmdFreq[pmd] != f)
        ++epoch;
    pmdFreq[pmd] = f;
}

void
Chip::setAllFrequencies(Hertz f)
{
    for (PmdId p = 0; p < chipSpec.numPmds(); ++p)
        setPmdFrequency(p, f);
}

bool
Chip::pmdClockGated(PmdId pmd) const
{
    checkPmd(pmd);
    return pmdGated[pmd];
}

void
Chip::setPmdClockGated(PmdId pmd, bool gated)
{
    checkPmd(pmd);
    if (pmdGated[pmd] != gated)
        ++epoch;
    pmdGated[pmd] = gated;
}

Hertz
Chip::coreFrequency(CoreId core) const
{
    const PmdId pmd = pmdOfCore(core);
    checkPmd(pmd);
    return pmdGated[pmd] ? 0.0 : pmdFreq[pmd];
}

std::uint32_t
Chip::numActivePmds() const
{
    std::uint32_t n = 0;
    for (bool gated : pmdGated)
        if (!gated)
            ++n;
    return n;
}

Hertz
Chip::maxActiveFrequency() const
{
    Hertz f = 0.0;
    for (PmdId p = 0; p < chipSpec.numPmds(); ++p)
        if (!pmdGated[p])
            f = std::max(f, pmdFreq[p]);
    return f;
}

void
Chip::reset()
{
    supplyVoltage = chipSpec.vNominal;
    std::fill(pmdFreq.begin(), pmdFreq.end(), chipSpec.fMax);
    std::fill(pmdGated.begin(), pmdGated.end(), false);
    ++epoch; // conservative: invalidate epoch-keyed caches
}

Chip::State
Chip::captureState() const
{
    State s;
    s.voltage = supplyVoltage;
    s.pmdFreq = pmdFreq;
    s.pmdGated = pmdGated;
    s.epoch = epoch;
    return s;
}

void
Chip::restoreState(const State &state)
{
    fatalIf(state.pmdFreq.size() != chipSpec.numPmds()
                || state.pmdGated.size() != chipSpec.numPmds(),
            chipSpec.name, ": restoring chip state captured from a ",
            state.pmdFreq.size(), "-PMD topology");
    supplyVoltage = state.voltage;
    pmdFreq = state.pmdFreq;
    pmdGated = state.pmdGated;
    epoch = state.epoch;
}

void
Chip::checkPmd(PmdId pmd) const
{
    fatalIf(pmd >= chipSpec.numPmds(),
            chipSpec.name, ": PMD ", pmd, " out of range (",
            chipSpec.numPmds(), " PMDs)");
}

} // namespace ecosched
