#include "platform/topology.hh"

#include <set>

#include "common/error.hh"

namespace ecosched {

const char *
allocationName(Allocation alloc)
{
    switch (alloc) {
      case Allocation::Clustered: return "clustered";
      case Allocation::Spreaded:  return "spreaded";
    }
    return "?";
}

std::vector<CoreId>
allocateCores(std::uint32_t num_cores, std::uint32_t threads,
              Allocation alloc)
{
    fatalIf(num_cores == 0 || num_cores % coresPerPmd != 0,
            "core count must be a positive multiple of ", coresPerPmd,
            ", got ", num_cores);
    fatalIf(threads == 0, "cannot allocate zero threads");
    fatalIf(threads > num_cores, "cannot allocate ", threads,
            " threads on ", num_cores, " cores");

    std::vector<CoreId> cores;
    cores.reserve(threads);

    if (alloc == Allocation::Clustered) {
        for (CoreId c = 0; c < threads; ++c)
            cores.push_back(c);
    } else {
        const std::uint32_t num_pmds = num_cores / coresPerPmd;
        // First cores of each PMD, then second cores.
        for (PmdId p = 0; p < num_pmds && cores.size() < threads; ++p)
            cores.push_back(firstCoreOfPmd(p));
        for (PmdId p = 0; p < num_pmds && cores.size() < threads; ++p)
            cores.push_back(secondCoreOfPmd(p));
    }
    return cores;
}

std::uint32_t
countUtilizedPmds(const std::vector<CoreId> &cores)
{
    std::set<PmdId> pmds;
    for (CoreId c : cores)
        pmds.insert(pmdOfCore(c));
    return static_cast<std::uint32_t>(pmds.size());
}

} // namespace ecosched
