#include "inject/fault_plan.hh"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "common/error.hh"
#include "common/rng.hh"

namespace ecosched {

namespace {

constexpr const char *traceHeader = "ecosched-injection-plan v1";

/// Per-category fork ids for randomCampaign(): each category owns
/// its own child stream so changing one rate never perturbs the
/// arrivals of another.
enum CampaignStream : std::uint64_t
{
    StreamThreadFaults = 1,
    StreamDroopSpikes = 2,
    StreamSensorNoise = 3,
    StreamSlimPro = 4,
    StreamNodeCrashes = 5,
    StreamRackCrashes = 6,
};

bool
isWindowKind(FaultKind kind)
{
    return kind == FaultKind::DroopSpike
        || kind == FaultKind::SensorNoise
        || kind == FaultKind::SlimProDelay;
}

void
validateEvent(const FaultEvent &ev)
{
    fatalIf(ev.time < 0.0, "fault event time must be >= 0, got ",
            ev.time);
    fatalIf(isWindowKind(ev.kind) && ev.duration < 0.0,
            faultKindName(ev.kind),
            " window duration must be >= 0, got ", ev.duration);
    fatalIf(ev.kind == FaultKind::ThreadFault
                && !isFailure(ev.outcome),
            "a ThreadFault event must carry a failure outcome");
    fatalIf(ev.probability < 0.0 || ev.probability > 1.0,
            "fault event probability must be in [0,1], got ",
            ev.probability);
    fatalIf(ev.kind == FaultKind::SlimProDelay && ev.magnitude < 0.0,
            "SlimProDelay extra latency must be >= 0");
    fatalIf(ev.kind == FaultKind::SensorNoise
                && (ev.magnitude < 0.0 || ev.magnitude >= 1.0),
            "SensorNoise relative error must be in [0,1), got ",
            ev.magnitude);
}

void
sortEvents(std::vector<FaultEvent> &events)
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return std::tie(a.time, a.node, a.kind)
                             < std::tie(b.time, b.node, b.kind);
                     });
}

RunOutcome
outcomeFromName(const std::string &name)
{
    for (const RunOutcome o :
         {RunOutcome::Ok, RunOutcome::Sdc, RunOutcome::ProcessCrash,
          RunOutcome::Hang, RunOutcome::Timeout,
          RunOutcome::SystemCrash}) {
        if (name == runOutcomeName(o))
            return o;
    }
    fatal("unknown run outcome '", name, "' in injection trace");
}

FaultKind
kindFromName(const std::string &name)
{
    for (const FaultKind k :
         {FaultKind::ThreadFault, FaultKind::SystemCrash,
          FaultKind::DroopSpike, FaultKind::SensorNoise,
          FaultKind::SlimProDelay, FaultKind::NodeCrash}) {
        if (name == faultKindName(k))
            return k;
    }
    fatal("unknown fault kind '", name, "' in injection trace");
}

/// Poisson arrivals at @p per_hour over [0, duration) via
/// exponential inter-arrival gaps.
std::vector<Seconds>
poissonArrivals(Rng rng, double per_hour, Seconds duration)
{
    std::vector<Seconds> times;
    if (per_hour <= 0.0 || duration <= 0.0)
        return times;
    const Seconds mean_gap = 3600.0 / per_hour;
    Seconds t = rng.exponential(mean_gap);
    while (t < duration) {
        times.push_back(t);
        t += rng.exponential(mean_gap);
    }
    return times;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::ThreadFault: return "thread-fault";
    case FaultKind::SystemCrash: return "system-crash";
    case FaultKind::DroopSpike: return "droop-spike";
    case FaultKind::SensorNoise: return "sensor-noise";
    case FaultKind::SlimProDelay: return "slimpro-delay";
    case FaultKind::NodeCrash: return "node-crash";
    }
    ECOSCHED_PANIC("unhandled FaultKind");
}

InjectionPlan
InjectionPlan::scripted(std::vector<FaultEvent> events)
{
    for (const FaultEvent &ev : events)
        validateEvent(ev);
    sortEvents(events);
    InjectionPlan plan;
    plan.list = std::move(events);
    return plan;
}

InjectionPlan
InjectionPlan::randomCampaign(const CampaignProfile &profile,
                              std::uint64_t seed)
{
    fatalIf(profile.duration <= 0.0,
            "campaign duration must be positive");
    fatalIf(profile.nodes == 0, "campaign needs at least one node");
    fatalIf(profile.sdcFraction < 0.0 || profile.sdcFraction > 1.0,
            "sdcFraction must be in [0,1]");

    const Rng root(seed);
    std::vector<FaultEvent> events;

    auto pick_node = [&](Rng &rng) {
        return profile.nodes == 1
            ? std::uint32_t{0}
            : static_cast<std::uint32_t>(
                  rng.uniformInt(0, profile.nodes - 1));
    };

    {
        Rng rng = root.fork(StreamThreadFaults);
        for (Seconds t : poissonArrivals(root.fork(
                 StreamThreadFaults + 100), profile.threadFaultsPerHour,
                 profile.duration)) {
            FaultEvent ev;
            ev.kind = FaultKind::ThreadFault;
            ev.time = t;
            ev.node = pick_node(rng);
            ev.outcome = rng.bernoulli(profile.sdcFraction)
                ? RunOutcome::Sdc : RunOutcome::ProcessCrash;
            events.push_back(ev);
        }
    }
    {
        Rng rng = root.fork(StreamDroopSpikes);
        for (Seconds t : poissonArrivals(root.fork(
                 StreamDroopSpikes + 100), profile.droopSpikesPerHour,
                 profile.duration)) {
            FaultEvent ev;
            ev.kind = FaultKind::DroopSpike;
            ev.time = t;
            ev.node = pick_node(rng);
            ev.duration = profile.droopSpikeDuration;
            ev.magnitude = profile.droopSpikeMv;
            events.push_back(ev);
        }
    }
    {
        Rng rng = root.fork(StreamSensorNoise);
        for (Seconds t : poissonArrivals(root.fork(
                 StreamSensorNoise + 100),
                 profile.sensorNoiseWindowsPerHour,
                 profile.duration)) {
            FaultEvent ev;
            ev.kind = FaultKind::SensorNoise;
            ev.time = t;
            ev.node = pick_node(rng);
            ev.duration = profile.sensorNoiseDuration;
            ev.magnitude = profile.sensorNoise;
            events.push_back(ev);
        }
    }
    {
        Rng rng = root.fork(StreamSlimPro);
        for (Seconds t : poissonArrivals(root.fork(
                 StreamSlimPro + 100), profile.slimproWindowsPerHour,
                 profile.duration)) {
            FaultEvent ev;
            ev.kind = FaultKind::SlimProDelay;
            ev.time = t;
            ev.node = pick_node(rng);
            ev.duration = profile.slimproWindowDuration;
            ev.magnitude = profile.slimproExtraLatency;
            ev.probability = profile.slimproDropProbability;
            events.push_back(ev);
        }
    }
    {
        Rng rng = root.fork(StreamNodeCrashes);
        for (Seconds t : poissonArrivals(root.fork(
                 StreamNodeCrashes + 100), profile.nodeCrashesPerHour,
                 profile.duration)) {
            FaultEvent ev;
            ev.kind = FaultKind::NodeCrash;
            ev.time = t;
            ev.node = pick_node(rng);
            ev.duration = profile.nodeRestartDelay;
            events.push_back(ev);
        }
    }
    if (profile.rackCrashesPerHour > 0.0) {
        fatalIf(profile.nodesPerRack == 0,
                "rack-scoped crashes need a rack layout "
                "(nodesPerRack > 0)");
        const std::uint32_t racks =
            (profile.nodes + profile.nodesPerRack - 1)
            / profile.nodesPerRack;
        Rng rng = root.fork(StreamRackCrashes);
        for (Seconds t : poissonArrivals(root.fork(
                 StreamRackCrashes + 100),
                 profile.rackCrashesPerHour, profile.duration)) {
            FaultEvent ev;
            ev.kind = FaultKind::NodeCrash;
            ev.rackScoped = true;
            ev.time = t;
            ev.node = racks == 1
                ? std::uint32_t{0}
                : static_cast<std::uint32_t>(
                      rng.uniformInt(0, racks - 1));
            ev.duration = profile.rackRestartDelay;
            events.push_back(ev);
        }
    }

    sortEvents(events);
    InjectionPlan plan;
    plan.list = std::move(events);
    return plan;
}

InjectionPlan
InjectionPlan::eventsForNode(std::uint32_t node,
                             std::uint32_t nodes_per_rack) const
{
    InjectionPlan plan;
    for (const FaultEvent &ev : list) {
        if (ev.rackScoped) {
            // Rack grouping: the event's node field is a rack id.
            if (nodes_per_rack == 0
                || node / nodes_per_rack != ev.node) {
                continue;
            }
            FaultEvent mine = ev;
            mine.node = node;
            mine.rackScoped = false;
            plan.list.push_back(mine);
            continue;
        }
        if (ev.node == node)
            plan.list.push_back(ev);
    }
    return plan;
}

InjectionPlan
InjectionPlan::after(Seconds t) const
{
    InjectionPlan plan;
    for (const FaultEvent &ev : list) {
        if (ev.time < t)
            continue;
        FaultEvent shifted = ev;
        shifted.time -= t;
        plan.list.push_back(shifted);
    }
    return plan;
}

void
InjectionPlan::save(std::ostream &os) const
{
    os << traceHeader << '\n';
    os << std::setprecision(17);
    for (const FaultEvent &ev : list) {
        os << faultKindName(ev.kind) << ' ' << ev.node << ' '
           << ev.time << ' ' << ev.duration << ' '
           << runOutcomeName(ev.outcome) << ' ' << ev.magnitude
           << ' ' << ev.probability;
        // The rack keyword is written only when set, so traces
        // without rack events stay byte-identical to the v1 format.
        if (ev.rackScoped)
            os << " rack";
        os << '\n';
    }
}

InjectionPlan
InjectionPlan::load(std::istream &is)
{
    std::string header;
    fatalIf(!std::getline(is, header),
            "injection trace is empty");
    fatalIf(header != traceHeader,
            "bad injection trace header '", header, "' (expected '",
            traceHeader, "')");

    std::vector<FaultEvent> events;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string kind_name;
        std::string outcome_name;
        FaultEvent ev;
        ls >> kind_name >> ev.node >> ev.time >> ev.duration
           >> outcome_name >> ev.magnitude >> ev.probability;
        fatalIf(!ls, "malformed injection trace line: '", line, "'");
        std::string scope;
        if (ls >> scope) {
            fatalIf(scope != "rack", "unknown event scope '", scope,
                    "' in injection trace line: '", line, "'");
            ev.rackScoped = true;
        }
        ev.kind = kindFromName(kind_name);
        ev.outcome = outcomeFromName(outcome_name);
        validateEvent(ev);
        events.push_back(ev);
    }
    sortEvents(events);
    InjectionPlan plan;
    plan.list = std::move(events);
    return plan;
}

} // namespace ecosched
