/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A plan is a time-sorted list of fault events to plant into a
 * running stack: point strikes (a thread fault, a whole-machine
 * crash, a whole-node crash in a fleet) and windows (a droop spike
 * that transiently raises the required Vmin, sensor noise on the
 * daemon's counter reads, a congested/lossy SLIMpro mailbox).
 * Plans are either scripted directly or sampled from a rate profile
 * with Rng::fork streams, and round-trip through a compact text
 * trace so any campaign can be replayed exactly.
 *
 * The plan itself is passive data; MachineInjector (injector.hh)
 * arms one against a Machine/Daemon stack, and ClusterSim consumes
 * NodeCrash events directly.
 */

#ifndef ECOSCHED_INJECT_FAULT_PLAN_HH
#define ECOSCHED_INJECT_FAULT_PLAN_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/units.hh"
#include "vmin/failure_model.hh"

namespace ecosched {

/// Kinds of faults a plan can plant.
enum class FaultKind
{
    /// Point: strike one running thread with `outcome`.
    ThreadFault,
    /// Point: halt the whole machine (all threads die).
    SystemCrash,
    /// Window: the required Vmin is effectively `magnitude` mV
    /// higher; a configuration that was safe by less than that
    /// margin becomes stochastically lethal (FailureModel hazard).
    DroopSpike,
    /// Window: the daemon's counter reads are perturbed by a
    /// relative error uniform in [-magnitude, +magnitude].
    SensorNoise,
    /// Window: SLIMpro voltage/frequency commands take `magnitude`
    /// seconds longer and are dropped with `probability`.
    SlimProDelay,
    /// Cluster only: crash node `node`; it restarts after
    /// `duration` seconds (never, when duration is negative).
    NodeCrash,
};

/// Human-readable kind name (also the trace keyword).
const char *faultKindName(FaultKind kind);

/// One planned fault.
struct FaultEvent
{
    FaultKind kind = FaultKind::ThreadFault;
    /// Target node in a fleet (single-machine runs use node 0).
    /// Rack-scoped events store the *rack* id here instead.
    std::uint32_t node = 0;
    /// Correlated failure: the event targets every node of rack
    /// `node` under the fleet's rack layout (eventsForNode() expands
    /// it per member node).  Models the shared blast radius of a
    /// rack PDU/top-of-rack switch.
    bool rackScoped = false;
    /// Start time [s].
    Seconds time = 0.0;
    /// Window length [s] (point events: 0; NodeCrash: downtime).
    Seconds duration = 0.0;
    /// ThreadFault only: the outcome to inflict.
    RunOutcome outcome = RunOutcome::Sdc;
    /// Kind-specific magnitude: mV (DroopSpike), relative error
    /// (SensorNoise), extra latency in seconds (SlimProDelay).
    double magnitude = 0.0;
    /// SlimProDelay only: per-command drop probability.
    double probability = 0.0;
};

/// Rates for randomCampaign() — all per hour of simulated time.
struct CampaignProfile
{
    /// Planning horizon: events are drawn in [0, duration).
    Seconds duration = 600.0;

    /// Direct thread strikes (the Papadimitriou-style SDC/crash
    /// population observed below Vmin).
    double threadFaultsPerHour = 0.0;
    /// Fraction of thread faults that are SDCs (the rest are
    /// process crashes).
    double sdcFraction = 0.6;

    /// Transient droop spikes.
    double droopSpikesPerHour = 0.0;
    double droopSpikeMv = 25.0;
    Seconds droopSpikeDuration = 0.5;

    /// Perf-counter/sensor noise windows.
    double sensorNoiseWindowsPerHour = 0.0;
    double sensorNoise = 0.10;
    Seconds sensorNoiseDuration = 5.0;

    /// SLIMpro mailbox congestion windows.
    double slimproWindowsPerHour = 0.0;
    Seconds slimproExtraLatency = units::us(2000);
    double slimproDropProbability = 0.5;
    Seconds slimproWindowDuration = 2.0;

    /// Whole-node crashes (fleets; nodes picked uniformly).
    double nodeCrashesPerHour = 0.0;
    Seconds nodeRestartDelay = 30.0;

    /// Correlated whole-rack crashes (racks picked uniformly over
    /// the fleet's rack layout; every member node goes down
    /// together).  Requires nodesPerRack > 0.
    double rackCrashesPerHour = 0.0;
    Seconds rackRestartDelay = 60.0;

    /// Fleet size events are spread over (1: single machine).
    std::uint32_t nodes = 1;
    /// Rack layout: nodes [r*nodesPerRack, (r+1)*nodesPerRack) form
    /// rack r.  0 disables rack-scoped sampling.
    std::uint32_t nodesPerRack = 0;
};

/**
 * An immutable, time-sorted fault schedule.
 */
class InjectionPlan
{
  public:
    /// The empty (zero-fault) plan.
    InjectionPlan() = default;

    /// Build from explicit events (sorted internally; validated).
    /// @throws FatalError on negative times/durations or bad fields.
    static InjectionPlan scripted(std::vector<FaultEvent> events);

    /**
     * Sample a stochastic campaign from @p profile.  Each fault
     * category draws its Poisson arrivals from its own
     * Rng(seed).fork(category) stream, so rates can be changed
     * independently without perturbing the other categories.
     */
    static InjectionPlan randomCampaign(const CampaignProfile &profile,
                                        std::uint64_t seed);

    /// All events, ascending by (time, node, kind).
    const std::vector<FaultEvent> &events() const { return list; }

    bool empty() const { return list.empty(); }
    std::size_t size() const { return list.size(); }

    /**
     * Subset of events targeting @p node (times unchanged).  With a
     * rack layout (@p nodes_per_rack > 0), rack-scoped events whose
     * rack contains the node are included too, rewritten to plain
     * per-node events (node id set, rackScoped cleared) so the
     * receiving injector sees an ordinary schedule.  Rack-scoped
     * events are dropped when no layout is given.
     */
    InjectionPlan eventsForNode(std::uint32_t node,
                                std::uint32_t nodes_per_rack
                                = 0) const;

    /// Events starting at or after @p t, re-based to t = 0 (node
    /// restarts re-arm their injector with this).  Windows that
    /// straddle @p t are dropped with the past.
    InjectionPlan after(Seconds t) const;

    /// Write the compact replayable text trace.
    void save(std::ostream &os) const;

    /// Re-load a trace written by save().
    /// @throws FatalError on malformed input.
    static InjectionPlan load(std::istream &is);

  private:
    std::vector<FaultEvent> list;
};

} // namespace ecosched

#endif // ECOSCHED_INJECT_FAULT_PLAN_HH
