#include "inject/injector.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/error.hh"
#include "core/daemon.hh"
#include "os/perf_reader.hh"

namespace ecosched {

namespace {

/**
 * Perf-reader decorator: forwards to the wrapped access path and
 * multiplies the result by the injector's current noise factor.
 * Reports the inner reader's name and cost so instrumented runs
 * outside noise windows are indistinguishable from clean ones.
 */
class NoisySensorReader final : public PerfReader
{
  public:
    NoisySensorReader(MachineInjector &injector,
                      std::unique_ptr<PerfReader> inner_reader)
        : inj(injector), inner(std::move(inner_reader))
    {
        fatalIf(inner == nullptr,
                "NoisySensorReader needs an inner reader");
    }

    const char *name() const override { return inner->name(); }

    double readL3PerMCycles(const ThreadCounters &delta,
                            Rng &rng) const override
    {
        const double clean = inner->readL3PerMCycles(delta, rng);
        return clean * inj.sensorPerturbation(rng);
    }

    double readDramPerMCycles(const ThreadCounters &delta,
                              Rng &rng) const override
    {
        const double clean = inner->readDramPerMCycles(delta, rng);
        return clean * inj.sensorPerturbation(rng);
    }

    Seconds readCost() const override { return inner->readCost(); }

  private:
    MachineInjector &inj;
    std::unique_ptr<PerfReader> inner;
};

} // namespace

MachineInjector::MachineInjector(const InjectionPlan &plan,
                                 std::uint64_t seed)
    : rng(seed)
{
    for (const FaultEvent &ev : plan.events()) {
        switch (ev.kind) {
        case FaultKind::ThreadFault:
        case FaultKind::SystemCrash:
            points.push_back(ev);
            break;
        case FaultKind::DroopSpike:
            droops.push_back(ev);
            break;
        case FaultKind::SensorNoise:
            noise.push_back(ev);
            break;
        case FaultKind::SlimProDelay:
            slimpro.push_back(ev);
            break;
        case FaultKind::NodeCrash:
            break; // cluster-level; not ours
        }
    }
}

void
MachineInjector::attach(Machine &machine, Daemon *daemon)
{
    fatalIf(mach != nullptr,
            "MachineInjector is already attached");
    mach = &machine;
    machine.setFaultHook(this);
    machine.slimPro().setFaultModel(this);
    if (daemon != nullptr) {
        daemon->decoratePerfReader(
            [this](std::unique_ptr<PerfReader> inner) {
                return std::make_unique<NoisySensorReader>(
                    *this, std::move(inner));
            });
    }
}

const FaultEvent *
MachineInjector::activeWindow(FaultKind kind, Seconds now) const
{
    const std::vector<FaultEvent> *list = nullptr;
    std::size_t *cursor = nullptr;
    switch (kind) {
    case FaultKind::DroopSpike:
        list = &droops;
        cursor = &droopCursor;
        break;
    case FaultKind::SensorNoise:
        list = &noise;
        cursor = &noiseCursor;
        break;
    case FaultKind::SlimProDelay:
        list = &slimpro;
        cursor = &slimproCursor;
        break;
    default:
        ECOSCHED_PANIC("activeWindow wants a window kind");
    }
    while (*cursor < list->size()
           && (*list)[*cursor].time + (*list)[*cursor].duration
               <= now) {
        ++*cursor;
    }
    if (*cursor < list->size() && (*list)[*cursor].time <= now)
        return &(*list)[*cursor];
    return nullptr;
}

Seconds
MachineInjector::nextActivity(Seconds now) const
{
    Seconds next = std::numeric_limits<Seconds>::infinity();
    if (pointCursor < points.size())
        next = std::min(next, points[pointCursor].time);
    // A live droop spike must be sampled every step; outside one the
    // next window start bounds the macro horizon.  Sensor-noise and
    // SLIMpro windows act only on daemon ticks and control commands,
    // which already veto macro-stepping, so they need no bound here.
    if (activeWindow(FaultKind::DroopSpike, now) != nullptr)
        return now;
    if (droopCursor < droops.size())
        next = std::min(next, droops[droopCursor].time);
    return next;
}

void
MachineInjector::onStep(Machine &machine, Seconds dt)
{
    const Seconds now = machine.now();

    // Deliver due point strikes (midpoint rule, matching arrivals).
    while (pointCursor < points.size()
           && points[pointCursor].time <= now + dt * 0.5) {
        const FaultEvent &ev = points[pointCursor];
        ++pointCursor;
        if (ev.kind == FaultKind::SystemCrash) {
            machine.injectSystemCrash();
            ++injStats.systemCrashes;
            continue;
        }
        if (machine.injectThreadFault(ev.outcome, rng)
                != invalidSimThread) {
            ++injStats.threadFaults;
        }
    }

    // Droop spike: the effective Vmin is biased upward, so a
    // configuration running with less margin than the spike depth
    // becomes stochastically lethal for the window's duration.
    const FaultEvent *spike =
        activeWindow(FaultKind::DroopSpike, now);
    if (spike == nullptr || machine.halted())
        return;
    const Volt true_vmin = machine.currentTrueVmin();
    if (true_vmin <= 0.0)
        return; // idle machine: a droop has nothing to corrupt
    const Volt biased = true_vmin + units::mV(spike->magnitude);
    const Volt v = machine.chip().voltage();
    if (v >= biased)
        return;
    injStats.biasedUnsafeTime += dt;
    const double p_run = machine.failureModel().pfail(v, biased);
    if (p_run <= 0.0)
        return;
    const double hazard = -std::log(std::max(1e-12, 1.0 - p_run))
        / machine.config().faultReferenceRuntime;
    const double p_step = 1.0 - std::exp(-hazard * dt);
    if (!rng.bernoulli(p_step))
        return;
    const RunOutcome type =
        machine.failureModel().sampleFailureType(rng, v, biased);
    if (machine.injectThreadFault(type, rng) != invalidSimThread)
        ++injStats.droopStrikes;
}

bool
MachineInjector::intercept(Seconds now, VfEventKind kind,
                           Seconds &extra_latency)
{
    (void)kind;
    const FaultEvent *window =
        activeWindow(FaultKind::SlimProDelay, now);
    if (window == nullptr)
        return false;
    if (rng.bernoulli(window->probability)) {
        ++injStats.droppedCommands;
        return true;
    }
    extra_latency += window->magnitude;
    ++injStats.delayedCommands;
    return false;
}

double
MachineInjector::sensorPerturbation(Rng &reader_rng)
{
    if (mach == nullptr)
        return 1.0;
    const FaultEvent *window =
        activeWindow(FaultKind::SensorNoise, mach->now());
    if (window == nullptr)
        return 1.0;
    ++injStats.noisyReads;
    return 1.0 + reader_rng.uniform(-window->magnitude,
                                    window->magnitude);
}

MachineInjector::Snapshot
MachineInjector::capture() const
{
    Snapshot s;
    s.pointCursor = pointCursor;
    s.droopCursor = droopCursor;
    s.noiseCursor = noiseCursor;
    s.slimproCursor = slimproCursor;
    s.rng = rng;
    s.injStats = injStats;
    return s;
}

void
MachineInjector::restore(const Snapshot &s)
{
    pointCursor = s.pointCursor;
    droopCursor = s.droopCursor;
    noiseCursor = s.noiseCursor;
    slimproCursor = s.slimproCursor;
    rng = s.rng;
    injStats = s.injStats;
}

} // namespace ecosched
