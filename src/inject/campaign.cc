#include "inject/campaign.hh"

#include "common/error.hh"
#include "workloads/generator.hh"

namespace ecosched {

CampaignRunner::CampaignRunner(CampaignConfig config)
    : cfg(std::move(config))
{
    cfg.chip.validate();
    fatalIf(cfg.duration <= 0.0,
            "campaign duration must be positive");
    fatalIf(cfg.drainBoundFactor <= 1.0,
            "campaign drain bound factor must exceed 1");
}

CampaignResult
CampaignRunner::run() const
{
    GeneratorConfig gc;
    gc.duration = cfg.duration;
    gc.maxCores = cfg.chip.numCores;
    gc.seed = cfg.seed;
    gc.chipName = cfg.chip.name;
    gc.referenceFrequency = cfg.chip.fMax;
    const GeneratedWorkload workload =
        WorkloadGenerator(gc).generate();

    // The injector's stream is forked from the campaign seed so the
    // workload generator and injector never share draws.
    MachineInjector injector(cfg.plan,
                             Rng(cfg.seed).fork(0xfau).next());

    ScenarioConfig sc;
    sc.chip = cfg.chip;
    sc.policy = cfg.policy;
    sc.daemon = cfg.daemon;
    sc.drainBoundFactor = cfg.drainBoundFactor;
    sc.stackPool = cfg.stackPool;
    sc.instrument = [&injector](Machine &machine, System &,
                                Daemon *daemon) {
        injector.attach(machine, daemon);
    };

    CampaignResult result;
    result.scenario = ScenarioRunner(sc).run(workload);
    result.injector = injector.stats();
    result.recovery = result.scenario.recoveryStats;
    return result;
}

} // namespace ecosched
