/**
 * @file
 * Arms an InjectionPlan against one Machine/Daemon stack.
 *
 * The MachineInjector plugs into the three seams the simulator
 * exposes — the machine's per-step fault hook, the SLIMpro's fault
 * model, and the daemon's perf-reader decorator — and delivers the
 * plan's events deterministically: point strikes land on the step
 * whose midpoint covers their timestamp, and windows act only while
 * simulated time is inside them.  Outside any fault window the hook
 * reports the next activity time, so macro-stepping stays fully
 * effective and a zero-fault plan leaves every output byte-identical
 * to an uninstrumented run.
 */

#ifndef ECOSCHED_INJECT_INJECTOR_HH
#define ECOSCHED_INJECT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "inject/fault_plan.hh"
#include "platform/slimpro.hh"
#include "sim/machine.hh"

namespace ecosched {

class Daemon;

/// What an armed injector actually delivered.
struct InjectorStats
{
    std::uint64_t threadFaults = 0;   ///< scripted strikes that hit
    std::uint64_t systemCrashes = 0;  ///< whole-machine halts
    std::uint64_t droopStrikes = 0;   ///< faults caused by droop bias
    std::uint64_t droppedCommands = 0; ///< SLIMpro requests dropped
    std::uint64_t delayedCommands = 0; ///< SLIMpro requests delayed
    std::uint64_t noisyReads = 0;      ///< perturbed counter reads
    /// Time spent below the droop-biased Vmin while a spike was live.
    Seconds biasedUnsafeTime = 0.0;
};

/**
 * Delivers one plan's machine-level events (everything except
 * NodeCrash, which the cluster layer consumes) into a running stack.
 * Must outlive the Machine it is attached to, or be detached first.
 */
class MachineInjector final : public Machine::FaultHook,
                              public SlimProFaultModel
{
  public:
    /**
     * @param plan  Events to deliver (NodeCrash entries ignored).
     * @param seed  Seed of the injector's private draw stream; the
     *              injector never draws from it outside fault
     *              windows, so a zero-fault plan consumes nothing.
     */
    MachineInjector(const InjectionPlan &plan, std::uint64_t seed);

    /**
     * Wire this injector into @p machine (fault hook + SLIMpro fault
     * model) and, when @p daemon is non-null, wrap its perf reader
     * with the sensor-noise decorator.  Call once, before the run.
     */
    void attach(Machine &machine, Daemon *daemon);

    /// Delivery counters so far.
    const InjectorStats &stats() const { return injStats; }

    // --- Machine::FaultHook --------------------------------------------
    /**
     * Earliest pending activity: the next point event or droop-
     * window start, or @p now while a droop window is live (spikes
     * draw per step).  Sensor-noise and SLIMpro windows report no
     * horizon — they act on daemon ticks and control commands, which
     * already end macro windows.  Obeys the horizon contract of
     * DESIGN.md §13 (never late, non-decreasing); Machine's
     * HorizonMonitor checks it in Debug builds, and the cluster
     * frontier reuses it (rebased by the node's time base) to skip
     * idle injector-armed nodes.
     */
    Seconds nextActivity(Seconds now) const override;
    void onStep(Machine &machine, Seconds dt) override;

    // --- SlimProFaultModel ---------------------------------------------
    bool intercept(Seconds now, VfEventKind kind,
                   Seconds &extra_latency) override;

    /**
     * Multiplicative factor for one counter read (1.0 outside noise
     * windows, drawing nothing; inside, uniform in [1-m, 1+m] drawn
     * from @p reader_rng so noisy reads perturb the daemon stream
     * the same way a noisy hardware path would).
     */
    double sensorPerturbation(Rng &reader_rng);

    // --- snapshot support ----------------------------------------------
    /**
     * Mutable injector state: delivery cursors, the private draw
     * stream and the delivery counters.  The plan vectors and the
     * attachment are construction/wiring identity — a snapshot is
     * only valid for an injector built from the same plan and seed.
     */
    struct Snapshot
    {
        std::size_t pointCursor = 0;
        std::size_t droopCursor = 0;
        std::size_t noiseCursor = 0;
        std::size_t slimproCursor = 0;
        Rng rng;
        InjectorStats injStats;
    };

    /// Capture cursors, RNG position and counters.
    Snapshot capture() const;

    /// Restore state captured from an identically constructed
    /// injector.  The attachment is untouched — re-attach only when
    /// the target stack changed.
    void restore(const Snapshot &snapshot);

  private:
    /// Active window of @p kind at @p now, or nullptr.  Advances the
    /// matching cursor past expired windows.
    const FaultEvent *activeWindow(FaultKind kind, Seconds now) const;

    std::vector<FaultEvent> points;   ///< ThreadFault + SystemCrash
    std::vector<FaultEvent> droops;   ///< DroopSpike windows
    std::vector<FaultEvent> noise;    ///< SensorNoise windows
    std::vector<FaultEvent> slimpro;  ///< SlimProDelay windows
    mutable std::size_t pointCursor = 0;
    mutable std::size_t droopCursor = 0;
    mutable std::size_t noiseCursor = 0;
    mutable std::size_t slimproCursor = 0;

    Machine *mach = nullptr;
    Rng rng;
    InjectorStats injStats;
};

} // namespace ecosched

#endif // ECOSCHED_INJECT_INJECTOR_HH
