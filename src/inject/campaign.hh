/**
 * @file
 * Fault-injection campaigns over the scenario runner.
 *
 * A campaign replays one generated server workload with an
 * InjectionPlan armed against the stack and reports what the faults
 * cost: the usual scenario quantities plus the injector's delivery
 * counters and the daemon's recovery record.  Campaigns are pure
 * functions of (config, plan), so sweeping injection rates on the
 * experiment engine is bit-identical for any worker count.
 */

#ifndef ECOSCHED_INJECT_CAMPAIGN_HH
#define ECOSCHED_INJECT_CAMPAIGN_HH

#include <cstdint>

#include "core/scenario.hh"
#include "inject/fault_plan.hh"
#include "inject/injector.hh"

namespace ecosched {

/// One campaign's knobs.
struct CampaignConfig
{
    ChipSpec chip;                       ///< platform (required)
    PolicyKind policy = PolicyKind::Optimal;
    Seconds duration = 600.0;            ///< workload duration
    std::uint64_t seed = 42;             ///< workload + injector seed
    DaemonConfig daemon;                 ///< base daemon knobs
    InjectionPlan plan;                  ///< faults to deliver
    /// Abort if a run exceeds duration * this factor (recovery
    /// retries can legitimately run far past the clean drain time).
    double drainBoundFactor = 8.0;

    /// Reusable-stack pool shared across a campaign sweep (null:
    /// per-run construction).  Non-owning; forwarded to the
    /// scenario runner.
    SimStackPool *stackPool = nullptr;
};

/// Everything one campaign run produced.
struct CampaignResult
{
    ScenarioResult scenario;
    InjectorStats injector;
    RecoveryStats recovery; ///< valid when scenario.hasDaemon
};

/**
 * Runs fault-injection campaigns.  Stateless across run() calls;
 * each run builds a fresh workload, stack, and injector.
 */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignConfig config);

    /// Knobs in use.
    const CampaignConfig &config() const { return cfg; }

    /// Replay the configured workload with the plan armed.
    CampaignResult run() const;

  private:
    CampaignConfig cfg;
};

} // namespace ecosched

#endif // ECOSCHED_INJECT_CAMPAIGN_HH
