#include "sim/work_profile.hh"

#include "common/error.hh"

namespace ecosched {

void
WorkProfile::validate() const
{
    fatalIf(cpiBase <= 0.0, "cpiBase must be positive");
    fatalIf(l3Apki < 0.0, "l3Apki must be non-negative");
    fatalIf(dramApki < 0.0, "dramApki must be non-negative");
    fatalIf(dramApki > l3Apki + 1e-9,
            "dramApki cannot exceed l3Apki (every DRAM access is an "
            "L3 miss)");
    fatalIf(mlp < 1.0, "mlp must be >= 1");
    fatalIf(switchingFactor <= 0.0, "switchingFactor must be positive");
    fatalIf(l2SharingPenalty < 1.0, "l2SharingPenalty must be >= 1");
}

} // namespace ecosched
