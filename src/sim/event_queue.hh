/**
 * @file
 * Event-horizon primitives of the discrete-event hot path.
 *
 * Every time-driven component reports a *horizon* — a conservative
 * lower bound on the earliest virtual time at which it needs per-step
 * execution — through a `nextActivity(now)`-shaped query:
 *
 *  - `horizonNever` (infinity): the component never forces a step.
 *  - a value `<= now`: activity is due right now (or the component
 *    cannot predict; callers fall back to per-step probing).
 *  - a value `> now`: macro windows may run freely up to (but not
 *    into) that time.
 *
 * The contract (DESIGN.md §13) is *never late*: reporting a horizon
 * earlier than the true first-activity time only costs a plain step
 * (which is bit-identical by construction), while reporting one even
 * half a step late would skip a tick and silently change results.
 * Horizons must also be non-decreasing in `now` for a fixed component
 * state.  HorizonMonitor checks both properties in Debug builds.
 *
 * EventQueue is the shared frontier structure: a binary min-heap of
 * (time, id) entries with lazy deletion — re-keying an id simply
 * pushes a fresh entry, and consumers drop entries whose time no
 * longer matches the id's current key.  Degenerate two/three-source
 * horizons (Machine::nextActivity, System::macroAdvance) fold with
 * direct `std::min`; the per-shard cluster frontier and the scenario
 * driver use the heap.
 */

#ifndef ECOSCHED_SIM_EVENT_QUEUE_HH
#define ECOSCHED_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/units.hh"

namespace ecosched {

/// Horizon value meaning "this component never forces a step".
inline constexpr Seconds horizonNever =
    std::numeric_limits<Seconds>::infinity();

/**
 * Whether the event-driven hot path is enabled (default: yes).
 * `ECOSCHED_EVENT_PATH=0` falls back to the per-step reference loops
 * everywhere the engine is gated — the scenario driver, the governor
 * horizon in System::macroAdvance and the cluster frontier — which
 * must be bit-identical; the golden variants pin exactly that.
 */
bool eventPathEnabled();

/// Test override: force the event path on (1), off (0), or back to
/// the environment (-1).
void setEventPathOverride(int enabled);

/**
 * Binary min-heap over (time, id) entries, ordered by time with id as
 * the tie-break so pop order is deterministic.  Entries are immutable
 * once pushed: to re-key an id, push a new entry and let the consumer
 * discard stale ones (lazy deletion against its own key array).
 */
class EventQueue
{
  public:
    struct Entry
    {
        Seconds time = 0.0;
        std::uint64_t id = 0;
    };

    bool empty() const { return heap.empty(); }
    std::size_t size() const { return heap.size(); }
    void clear() { heap.clear(); }

    void push(Seconds time, std::uint64_t id)
    {
        heap.push_back({time, id});
        std::push_heap(heap.begin(), heap.end(), later);
    }

    /// Earliest entry. @pre !empty()
    const Entry &top() const
    {
        ECOSCHED_ASSERT(!heap.empty(), "top() on an empty EventQueue");
        return heap.front();
    }

    /// Remove and return the earliest entry. @pre !empty()
    Entry pop()
    {
        ECOSCHED_ASSERT(!heap.empty(), "pop() on an empty EventQueue");
        std::pop_heap(heap.begin(), heap.end(), later);
        const Entry e = heap.back();
        heap.pop_back();
        return e;
    }

  private:
    /// std::push_heap builds a max-heap; invert to order by earliest
    /// (time, id).
    static bool later(const Entry &a, const Entry &b)
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.id > b.id;
    }

    std::vector<Entry> heap;
};

/**
 * Debug-build checker of the horizon contract for one component
 * (ISSUE-8 satellite: catches the silent-macro-miss bug class).
 * check() asserts, under ECOSCHED_DEBUG_ASSERT, that the reported
 * horizon (a) never lies in the past by more than two steps — a
 * throttled component quotes `lastRun + period - dt` (one step of
 * deliberate margin), and FP accumulation in `now` can delay the
 * actual tick by one more grid step, so a pre-tick quote is
 * legitimately up to two steps stale; the check adds a further
 * half-step of slack so grid-comparison ulps cannot trip it — and
 * (b) is non-decreasing in `now` across calls.  Release builds
 * compile it away to nothing.
 */
class HorizonMonitor
{
  public:
    void check(Seconds now, Seconds horizon, Seconds dt,
               const char *component)
    {
#ifdef NDEBUG
        (void)now;
        (void)horizon;
        (void)dt;
        (void)component;
#else
        ECOSCHED_DEBUG_ASSERT(
            !(horizon < now - 2.5 * dt),
            std::string(component)
                + " nextActivity() returned a horizon more than two "
                  "steps in the past (horizon "
                + std::to_string(horizon) + " s, now "
                + std::to_string(now) + " s)");
        // A horizon at or before `now` means "right now / unknown"
        // and may repeat at any value as time advances; only future
        // promises must never move backwards.
        ECOSCHED_DEBUG_ASSERT(
            !(lastHorizon > lastNow && now >= lastNow
              && horizon < lastHorizon && horizon > now),
            std::string(component)
                + " nextActivity() went backwards (promised "
                + std::to_string(lastHorizon) + " s at now "
                + std::to_string(lastNow) + " s, then "
                + std::to_string(horizon) + " s at now "
                + std::to_string(now) + " s)");
        lastNow = now;
        lastHorizon = horizon;
#endif
    }

    /// Forget history (snapshot restore rewinds component state).
    void reset()
    {
#ifndef NDEBUG
        lastNow = -horizonNever;
        lastHorizon = -horizonNever;
#endif
    }

#ifndef NDEBUG
  private:
    Seconds lastNow = -horizonNever;
    Seconds lastHorizon = -horizonNever;
#endif
};

} // namespace ecosched

#endif // ECOSCHED_SIM_EVENT_QUEUE_HH
