/**
 * @file
 * Shared memory-system model: L3 and DRAM latencies plus DRAM
 * bandwidth contention.
 *
 * Contention is solved self-consistently each step: every running
 * thread's DRAM stall time is inflated by a common factor s >= 1
 * chosen so the aggregate bandwidth demand does not exceed the
 * chip's peak.  This produces the paper's Figure 8 behaviour: N
 * copies of a memory-intensive program slow each other down, while
 * CPU-intensive copies are unaffected.
 */

#ifndef ECOSCHED_SIM_MEMORY_SYSTEM_HH
#define ECOSCHED_SIM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/work_profile.hh"

namespace ecosched {

/// Memory-hierarchy timing/bandwidth constants.
struct MemoryParams
{
    Seconds l3Latency = units::ns(30);
    Seconds dramLatency = units::ns(120);
    BytesPerSecond peakDramBandwidth = units::GiBps(20);
    double bytesPerAccess = 64.0;

    /// Calibrated constants for a known chip (matched by name).
    static MemoryParams forChipName(const std::string &name);

    /// Sanity-check. @throws FatalError when invalid.
    void validate() const;
};

/// One running thread's inputs to the contention solve.
struct MemoryDemand
{
    const WorkProfile *profile = nullptr; ///< thread characteristics
    Hertz coreFrequency = 0.0;            ///< its core clock
    double apkiScale = 1.0; ///< L2-sharing inflation (>= 1)
};

/**
 * Stateless solver for the shared-memory model.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(MemoryParams params = MemoryParams{});

    const MemoryParams &params() const { return memParams; }

    /**
     * Seconds one instruction of @p profile takes on a core at
     * frequency @p f, with DRAM stalls inflated by contention
     * factor @p s and cache traffic inflated by @p apki_scale.
     */
    Seconds timePerInstruction(const WorkProfile &profile, Hertz f,
                               double contention,
                               double apki_scale = 1.0) const;

    /**
     * Solve the common DRAM contention factor s >= 1 for a set of
     * concurrently running threads (bisection on the aggregate
     * bandwidth demand).  Returns 1 when demand fits in the peak.
     */
    double solveContention(const std::vector<MemoryDemand> &demands)
        const;

    /**
     * Analytic L3C accesses per million cycles a profile exhibits on
     * a core at frequency @p f — the classification metric of the
     * paper's Figure 9 (threshold: 3000).
     */
    double l3PerMCycles(const WorkProfile &profile, Hertz f,
                        double contention = 1.0,
                        double apki_scale = 1.0) const;

    /**
     * Aggregate DRAM bandwidth demand [B/s] at a given contention
     * factor.
     */
    BytesPerSecond aggregateBandwidth(
        const std::vector<MemoryDemand> &demands,
        double contention) const;

  private:
    MemoryParams memParams;
};

/**
 * Memoizes MemorySystem::solveContention behind an O(1) step key
 * instead of comparing demand contents (which costs O(threads) per
 * step and dominated the steady-state step at high occupancy).
 *
 * The key is (chip state epoch, thread-set version, stalled count),
 * all sampled *before* the step's execute phase mutates anything:
 *
 *  - every core frequency a demand reads is pinned by the chip
 *    epoch (bumped only on actual V/F/gating changes);
 *  - the bound thread set, core bindings, profile phases and the
 *    L2-sharing APKI scales are pinned by the machine's thread-set
 *    version (bumped on start/stop/migrate/swap/retire and on phase
 *    switches);
 *  - the stalled subset is pinned by its *count* alone: membership
 *    is the threshold family {t : stallUntil > now + dt/2} over
 *    per-thread stall deadlines that are constant at a given
 *    version, so equal counts imply the identical subset.
 *
 * Equal keys therefore guarantee byte-identical demand sets, and
 * replaying the cached factor is bit-identical to re-solving.  The
 * Debug/sanitizer builds re-solve on every hit and verify
 * (ECOSCHED_DEBUG_ASSERT).
 */
class ContentionCache
{
  public:
    /**
     * Solve (or replay) the contention factor for @p demands.
     * @p chip_epoch / @p threads_version / @p stalled must pin the
     * demand contents as described above.
     */
    double solve(const MemorySystem &memory,
                 const std::vector<MemoryDemand> &demands,
                 std::uint64_t chip_epoch,
                 std::uint64_t threads_version, std::uint32_t stalled);

    /// Drop the cached solution.
    void invalidate() { valid = false; }

  private:
    std::uint64_t keyEpoch = 0;
    std::uint64_t keyVersion = 0;
    std::uint32_t keyStalled = 0;
    double value = 1.0;
    bool valid = false;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_MEMORY_SYSTEM_HH
