/**
 * @file
 * Shared memory-system model: L3 and DRAM latencies plus DRAM
 * bandwidth contention and the MEMBW reservation solver.
 *
 * Contention is solved self-consistently each step: every running
 * thread's DRAM stall time is inflated by a common factor s >= 1
 * chosen so the aggregate bandwidth demand does not exceed the
 * chip's peak.  This produces the paper's Figure 8 behaviour: N
 * copies of a memory-intensive program slow each other down, while
 * CPU-intensive copies are unaffected.
 *
 * On chips with a bandwidth reservation armed (ChipSpec::membw,
 * DESIGN.md §15), a memsched-style budget runs on top of the common
 * factor: each thread starts from a per-core slice of the chip
 * ceiling, unused and idle-core slices are reclaimed and
 * redistributed to unsatisfied threads (capped at a per-thread
 * share), and any thread demanding more than its grant gets an
 * *individual* throttle factor fac_i >= 1 — applied multiplicatively
 * on top of the common contention — that stretches its memory-bound
 * CPI until its achieved bandwidth fits the grant.  With no ceiling
 * configured the entire mechanism is skipped and every result stays
 * byte-identical.
 */

#ifndef ECOSCHED_SIM_MEMORY_SYSTEM_HH
#define ECOSCHED_SIM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/work_profile.hh"

namespace ecosched {

/// Memory-hierarchy timing/bandwidth constants.
struct MemoryParams
{
    Seconds l3Latency = units::ns(30);
    Seconds dramLatency = units::ns(120);
    BytesPerSecond peakDramBandwidth = units::GiBps(20);
    double bytesPerAccess = 64.0;

    /// Calibrated constants for a known chip (matched by name).
    static MemoryParams forChipName(const std::string &name);

    /// Sanity-check. @throws FatalError when invalid.
    void validate() const;
};

/// One running thread's inputs to the contention solve.
struct MemoryDemand
{
    const WorkProfile *profile = nullptr; ///< thread characteristics
    Hertz coreFrequency = 0.0;            ///< its core clock
    double apkiScale = 1.0; ///< L2-sharing inflation (>= 1)
};

/**
 * Chip-level DRAM bandwidth reservation the MEMBW solver enforces
 * (mirrors ChipSpec::membw plus the core count the per-core budget
 * divides over).  ceiling == 0 leaves the solver inert.
 */
struct MemBwPolicy
{
    BytesPerSecond ceiling = 0.0; ///< aggregate budget; 0 = inert
    double maxThreadShare = 0.5;  ///< per-thread grant cap (ceiling
                                  ///< fraction)
    std::uint32_t numCores = 1;   ///< slices the base budget divides
                                  ///< over

    bool armed() const { return ceiling > 0.0; }
};

/**
 * Whether MEMBW shadow mode is on (`ECOSCHED_MEMBW_SHADOW=1`):
 * ceiling-free chips run the full reservation path with an
 * effectively infinite ceiling, where every grant covers its demand
 * and every factor solves to exactly 1.0 — the shadow goldens pin
 * that this is byte-identical to not running the path at all.
 */
bool memBwShadowEnabled();

/// Test override: force shadow mode on (1), off (0), or back to the
/// environment (-1).
void setMemBwShadowOverride(int enabled);

/**
 * Stateless solver for the shared-memory model.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(MemoryParams params = MemoryParams{});

    const MemoryParams &params() const { return memParams; }

    /**
     * Seconds one instruction of @p profile takes on a core at
     * frequency @p f, with DRAM stalls inflated by contention
     * factor @p s and cache traffic inflated by @p apki_scale.
     */
    Seconds timePerInstruction(const WorkProfile &profile, Hertz f,
                               double contention,
                               double apki_scale = 1.0) const;

    /**
     * Solve the common DRAM contention factor s >= 1 for a set of
     * concurrently running threads (bisection on the aggregate
     * bandwidth demand).  Returns 1 when demand fits in the peak.
     */
    double solveContention(const std::vector<MemoryDemand> &demands)
        const;

    /**
     * Analytic L3C accesses per million cycles a profile exhibits on
     * a core at frequency @p f — the classification metric of the
     * paper's Figure 9 (threshold: 3000).
     */
    double l3PerMCycles(const WorkProfile &profile, Hertz f,
                        double contention = 1.0,
                        double apki_scale = 1.0) const;

    /**
     * Aggregate DRAM bandwidth demand [B/s] at a given contention
     * factor.
     */
    BytesPerSecond aggregateBandwidth(
        const std::vector<MemoryDemand> &demands,
        double contention) const;

    /**
     * One thread's DRAM bandwidth demand [B/s] at a given contention
     * factor; 0 for gated cores (coreFrequency <= 0).
     */
    BytesPerSecond threadBandwidth(const MemoryDemand &demand,
                                   double contention = 1.0) const;

    /**
     * Waterfill the reservation budget over @p demands: every
     * demanding thread starts from min(demand, ceiling/numCores),
     * then unused and idle-core slices are redistributed in
     * deterministic rounds to still-unsatisfied threads, capped at
     * maxThreadShare * ceiling each.  Guarantees sum(grants) <=
     * ceiling and grant_i > 0 whenever demand_i > 0 (reclaim never
     * starves).  Demands are evaluated at common contention
     * @p contention.  @p grants is resized to match @p demands.
     */
    void solveMemBwGrants(const std::vector<MemoryDemand> &demands,
                          const MemBwPolicy &policy, double contention,
                          std::vector<BytesPerSecond> &grants) const;

    /**
     * Per-thread throttle factors for a reservation: fac_i >= 1 such
     * that thread i's achieved bandwidth at combined contention
     * `contention * fac_i` does not exceed its waterfilled grant
     * (bisection returning the over-throttled side, so the aggregate
     * never exceeds the ceiling).  Threads whose demand already fits
     * their grant solve to exactly 1.0.  @p factors is resized to
     * match @p demands; @p grants_scratch avoids per-call allocation.
     */
    void solveMemBwFactors(const std::vector<MemoryDemand> &demands,
                           const MemBwPolicy &policy,
                           double contention,
                           std::vector<double> &factors,
                           std::vector<BytesPerSecond> &grants_scratch)
        const;

  private:
    MemoryParams memParams;
};

/**
 * Dispatcher-facing estimate of the DRAM bandwidth one thread of
 * @p profile demands on an uncontended core at frequency @p f under
 * the calibrated @p params.
 */
BytesPerSecond estimateThreadBandwidth(const WorkProfile &profile,
                                       Hertz f,
                                       const MemoryParams &params);

/**
 * Memoizes MemorySystem::solveContention behind an O(1) step key
 * instead of comparing demand contents (which costs O(threads) per
 * step and dominated the steady-state step at high occupancy).
 *
 * The key is (chip state epoch, thread-set version, stalled count),
 * all sampled *before* the step's execute phase mutates anything:
 *
 *  - every core frequency a demand reads is pinned by the chip
 *    epoch (bumped only on actual V/F/gating changes);
 *  - the bound thread set, core bindings, profile phases and the
 *    L2-sharing APKI scales are pinned by the machine's thread-set
 *    version (bumped on start/stop/migrate/swap/retire and on phase
 *    switches);
 *  - the stalled subset is pinned by its *count* alone: membership
 *    is the threshold family {t : stallUntil > now + dt/2} over
 *    per-thread stall deadlines that are constant at a given
 *    version, so equal counts imply the identical subset.
 *
 * Equal keys therefore guarantee byte-identical demand sets, and
 * replaying the cached factor is bit-identical to re-solving.  The
 * Debug/sanitizer builds re-solve on every hit and verify
 * (ECOSCHED_DEBUG_ASSERT).
 */
class ContentionCache
{
  public:
    /**
     * Solve (or replay) the contention factor for @p demands.
     * @p chip_epoch / @p threads_version / @p stalled must pin the
     * demand contents as described above.
     */
    double solve(const MemorySystem &memory,
                 const std::vector<MemoryDemand> &demands,
                 std::uint64_t chip_epoch,
                 std::uint64_t threads_version, std::uint32_t stalled);

    /// Drop the cached solution.
    void invalidate() { valid = false; }

  private:
    std::uint64_t keyEpoch = 0;
    std::uint64_t keyVersion = 0;
    std::uint32_t keyStalled = 0;
    double value = 1.0;
    bool valid = false;
};

/**
 * Memoizes MemorySystem::solveMemBwFactors behind the same
 * (chip state epoch, thread-set version, stalled count) step key as
 * ContentionCache: the factor vector is a pure function of the
 * demand set and the (fixed) reservation policy, and the key pins
 * the demand set exactly as documented there.  Debug builds re-solve
 * on every hit and verify element-wise.
 */
class MemBwCache
{
  public:
    /**
     * Solve (or replay) the per-thread throttle factors for
     * @p demands under @p policy at common contention @p contention.
     * The returned reference stays valid until the next call.
     */
    const std::vector<double> &solve(
        const MemorySystem &memory,
        const std::vector<MemoryDemand> &demands,
        const MemBwPolicy &policy, double contention,
        std::uint64_t chip_epoch, std::uint64_t threads_version,
        std::uint32_t stalled);

    /// Drop the cached solution.
    void invalidate() { valid = false; }

  private:
    std::vector<double> factors;
    std::vector<BytesPerSecond> grantsScratch;
    std::uint64_t keyEpoch = 0;
    std::uint64_t keyVersion = 0;
    std::uint32_t keyStalled = 0;
    bool valid = false;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_MEMORY_SYSTEM_HH
