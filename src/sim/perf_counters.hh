/**
 * @file
 * PMU-style performance counters.
 *
 * The paper's daemon reads one PMU register (L2-miss / L3C-access
 * count) twice, 1M cycles apart, through a custom kernel module
 * (§VI.A).  The simulator maintains the equivalent counts per thread
 * and per core; readers in src/os model the access cost of the
 * kernel-module vs Perf-style paths.
 */

#ifndef ECOSCHED_SIM_PERF_COUNTERS_HH
#define ECOSCHED_SIM_PERF_COUNTERS_HH

#include <cstdint>

#include "common/units.hh"

namespace ecosched {

/// Cumulative counters attributed to one software thread.
struct ThreadCounters
{
    Cycles cycles = 0;              ///< core cycles while running
    Instructions instructions = 0;  ///< instructions retired
    std::uint64_t l3Accesses = 0;   ///< L3 lookups (L2 misses)
    std::uint64_t dramAccesses = 0; ///< L3 misses
    Seconds busyTime = 0.0;         ///< wall time spent executing

    /// Counter difference (this - earlier snapshot).
    ThreadCounters since(const ThreadCounters &earlier) const;

    /// Fold another counter set into this one (aggregation).
    void accumulate(const ThreadCounters &other);

    /**
     * L3C accesses per million cycles over this (delta) window —
     * the paper's classification metric (threshold: 3000, Fig. 9).
     * Returns 0 when no cycles elapsed.
     */
    double l3AccessesPerMCycles() const;

    /**
     * DRAM accesses (L3 misses) per million cycles over this
     * (delta) window — the bandwidth-demand proxy the
     * bandwidth-aware placer ranks processes by.  Returns 0 when no
     * cycles elapsed.
     */
    double dramAccessesPerMCycles() const;

    /// Instructions per cycle over this (delta) window.
    double ipc() const;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_PERF_COUNTERS_HH
