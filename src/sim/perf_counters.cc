#include "sim/perf_counters.hh"

#include "common/error.hh"

namespace ecosched {

ThreadCounters
ThreadCounters::since(const ThreadCounters &earlier) const
{
    ECOSCHED_ASSERT(cycles >= earlier.cycles &&
                        instructions >= earlier.instructions &&
                        l3Accesses >= earlier.l3Accesses &&
                        dramAccesses >= earlier.dramAccesses,
                    "counter snapshot is newer than current counters");
    ThreadCounters d;
    d.cycles = cycles - earlier.cycles;
    d.instructions = instructions - earlier.instructions;
    d.l3Accesses = l3Accesses - earlier.l3Accesses;
    d.dramAccesses = dramAccesses - earlier.dramAccesses;
    d.busyTime = busyTime - earlier.busyTime;
    return d;
}

void
ThreadCounters::accumulate(const ThreadCounters &other)
{
    cycles += other.cycles;
    instructions += other.instructions;
    l3Accesses += other.l3Accesses;
    dramAccesses += other.dramAccesses;
    busyTime += other.busyTime;
}

double
ThreadCounters::l3AccessesPerMCycles() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(l3Accesses)
        / static_cast<double>(cycles) * 1e6;
}

double
ThreadCounters::dramAccessesPerMCycles() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(dramAccesses)
        / static_cast<double>(cycles) * 1e6;
}

double
ThreadCounters::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(instructions)
        / static_cast<double>(cycles);
}

} // namespace ecosched
