#include "sim/memory_system.hh"

#include <algorithm>
#include <string>

#include "common/error.hh"

namespace ecosched {

MemoryParams
MemoryParams::forChipName(const std::string &name)
{
    MemoryParams p;
    if (name == "X-Gene 2") {
        p.l3Latency = units::ns(32);
        p.dramLatency = units::ns(130);
        p.peakDramBandwidth = units::GiBps(10);
    } else if (name == "X-Gene 3") {
        p.l3Latency = units::ns(30);
        p.dramLatency = units::ns(120);
        p.peakDramBandwidth = units::GiBps(20);
    }
    p.validate();
    return p;
}

void
MemoryParams::validate() const
{
    fatalIf(l3Latency <= 0.0, "l3Latency must be positive");
    fatalIf(dramLatency <= 0.0, "dramLatency must be positive");
    fatalIf(peakDramBandwidth <= 0.0,
            "peakDramBandwidth must be positive");
    fatalIf(bytesPerAccess <= 0.0, "bytesPerAccess must be positive");
}

MemorySystem::MemorySystem(MemoryParams params)
    : memParams(params)
{
    memParams.validate();
}

Seconds
MemorySystem::timePerInstruction(const WorkProfile &profile, Hertz f,
                                 double contention,
                                 double apki_scale) const
{
    ECOSCHED_ASSERT(f > 0.0, "timePerInstruction on a gated core");
    ECOSCHED_ASSERT(contention >= 1.0, "contention factor below 1");
    const double l3 = profile.l3Apki * apki_scale * 1e-3;
    const double dram = profile.dramApki * apki_scale * 1e-3;
    const Seconds core = profile.cpiBase / f;
    const Seconds memory =
        (l3 * memParams.l3Latency
         + dram * memParams.dramLatency * contention)
        / profile.mlp;
    return core + memory;
}

double
MemorySystem::l3PerMCycles(const WorkProfile &profile, Hertz f,
                           double contention,
                           double apki_scale) const
{
    const Seconds t_instr =
        timePerInstruction(profile, f, contention, apki_scale);
    const double cycles_per_instr = t_instr * f;
    return profile.l3Apki * apki_scale * 1e-3 / cycles_per_instr
        * 1e6;
}

BytesPerSecond
MemorySystem::aggregateBandwidth(
    const std::vector<MemoryDemand> &demands, double contention) const
{
    BytesPerSecond total = 0.0;
    for (const auto &d : demands) {
        ECOSCHED_ASSERT(d.profile != nullptr,
                        "MemoryDemand without a profile");
        if (d.coreFrequency <= 0.0)
            continue;
        const Seconds t = timePerInstruction(
            *d.profile, d.coreFrequency, contention, d.apkiScale);
        const double instr_rate = 1.0 / t;
        total += d.profile->dramApki * d.apkiScale * 1e-3 * instr_rate
            * memParams.bytesPerAccess;
    }
    return total;
}

double
MemorySystem::solveContention(
    const std::vector<MemoryDemand> &demands) const
{
    if (demands.empty())
        return 1.0;
    if (aggregateBandwidth(demands, 1.0)
            <= memParams.peakDramBandwidth) {
        return 1.0;
    }

    // Demand is strictly decreasing in s; bracket then bisect.
    double lo = 1.0;
    double hi = 2.0;
    while (aggregateBandwidth(demands, hi)
               > memParams.peakDramBandwidth && hi < 1e6) {
        lo = hi;
        hi *= 2.0;
    }
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (aggregateBandwidth(demands, mid)
                > memParams.peakDramBandwidth) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return hi;
}

double
ContentionCache::solve(const MemorySystem &memory,
                       const std::vector<MemoryDemand> &demands,
                       std::uint64_t chip_epoch,
                       std::uint64_t threads_version,
                       std::uint32_t stalled)
{
    if (valid && keyEpoch == chip_epoch
            && keyVersion == threads_version
            && keyStalled == stalled) {
        ECOSCHED_DEBUG_ASSERT(
            value == memory.solveContention(demands),
            "contention step key matched a different demand set");
        return value;
    }
    value = memory.solveContention(demands);
    keyEpoch = chip_epoch;
    keyVersion = threads_version;
    keyStalled = stalled;
    valid = true;
    return value;
}

} // namespace ecosched
