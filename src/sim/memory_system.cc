#include "sim/memory_system.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/error.hh"

namespace ecosched {

namespace {

int membwShadowOverride = -1;

} // namespace

bool
memBwShadowEnabled()
{
    if (membwShadowOverride >= 0)
        return membwShadowOverride != 0;
    const char *env = std::getenv("ECOSCHED_MEMBW_SHADOW");
    return env != nullptr && *env != '\0' && *env != '0';
}

void
setMemBwShadowOverride(int enabled)
{
    membwShadowOverride = enabled;
}

MemoryParams
MemoryParams::forChipName(const std::string &name)
{
    MemoryParams p;
    if (name == "X-Gene 2") {
        p.l3Latency = units::ns(32);
        p.dramLatency = units::ns(130);
        p.peakDramBandwidth = units::GiBps(10);
    } else if (name == "X-Gene 3") {
        p.l3Latency = units::ns(30);
        p.dramLatency = units::ns(120);
        p.peakDramBandwidth = units::GiBps(20);
    }
    p.validate();
    return p;
}

void
MemoryParams::validate() const
{
    fatalIf(l3Latency <= 0.0, "l3Latency must be positive");
    fatalIf(dramLatency <= 0.0, "dramLatency must be positive");
    fatalIf(peakDramBandwidth <= 0.0,
            "peakDramBandwidth must be positive");
    fatalIf(bytesPerAccess <= 0.0, "bytesPerAccess must be positive");
}

MemorySystem::MemorySystem(MemoryParams params)
    : memParams(params)
{
    memParams.validate();
}

Seconds
MemorySystem::timePerInstruction(const WorkProfile &profile, Hertz f,
                                 double contention,
                                 double apki_scale) const
{
    ECOSCHED_ASSERT(f > 0.0, "timePerInstruction on a gated core");
    ECOSCHED_ASSERT(contention >= 1.0, "contention factor below 1");
    const double l3 = profile.l3Apki * apki_scale * 1e-3;
    const double dram = profile.dramApki * apki_scale * 1e-3;
    const Seconds core = profile.cpiBase / f;
    const Seconds memory =
        (l3 * memParams.l3Latency
         + dram * memParams.dramLatency * contention)
        / profile.mlp;
    return core + memory;
}

double
MemorySystem::l3PerMCycles(const WorkProfile &profile, Hertz f,
                           double contention,
                           double apki_scale) const
{
    const Seconds t_instr =
        timePerInstruction(profile, f, contention, apki_scale);
    const double cycles_per_instr = t_instr * f;
    return profile.l3Apki * apki_scale * 1e-3 / cycles_per_instr
        * 1e6;
}

BytesPerSecond
MemorySystem::aggregateBandwidth(
    const std::vector<MemoryDemand> &demands, double contention) const
{
    BytesPerSecond total = 0.0;
    for (const auto &d : demands) {
        ECOSCHED_ASSERT(d.profile != nullptr,
                        "MemoryDemand without a profile");
        if (d.coreFrequency <= 0.0)
            continue;
        const Seconds t = timePerInstruction(
            *d.profile, d.coreFrequency, contention, d.apkiScale);
        const double instr_rate = 1.0 / t;
        total += d.profile->dramApki * d.apkiScale * 1e-3 * instr_rate
            * memParams.bytesPerAccess;
    }
    return total;
}

double
MemorySystem::solveContention(
    const std::vector<MemoryDemand> &demands) const
{
    if (demands.empty())
        return 1.0;
    if (aggregateBandwidth(demands, 1.0)
            <= memParams.peakDramBandwidth) {
        return 1.0;
    }

    // Demand is strictly decreasing in s; bracket then bisect.
    double lo = 1.0;
    double hi = 2.0;
    while (aggregateBandwidth(demands, hi)
               > memParams.peakDramBandwidth && hi < 1e6) {
        lo = hi;
        hi *= 2.0;
    }
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (aggregateBandwidth(demands, mid)
                > memParams.peakDramBandwidth) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return hi;
}

BytesPerSecond
MemorySystem::threadBandwidth(const MemoryDemand &demand,
                              double contention) const
{
    ECOSCHED_ASSERT(demand.profile != nullptr,
                    "MemoryDemand without a profile");
    if (demand.coreFrequency <= 0.0)
        return 0.0;
    const Seconds t = timePerInstruction(
        *demand.profile, demand.coreFrequency, contention,
        demand.apkiScale);
    return demand.profile->dramApki * demand.apkiScale * 1e-3
        * (1.0 / t) * memParams.bytesPerAccess;
}

void
MemorySystem::solveMemBwGrants(
    const std::vector<MemoryDemand> &demands,
    const MemBwPolicy &policy, double contention,
    std::vector<BytesPerSecond> &grants) const
{
    ECOSCHED_ASSERT(policy.armed(),
                    "solveMemBwGrants without a ceiling");
    ECOSCHED_ASSERT(policy.numCores > 0,
                    "solveMemBwGrants needs a core count");
    grants.assign(demands.size(), 0.0);

    const BytesPerSecond slice =
        policy.ceiling / static_cast<double>(policy.numCores);
    const BytesPerSecond cap =
        policy.maxThreadShare * policy.ceiling;

    // Pass 1: every demanding thread gets its per-core slice (or its
    // full demand, whichever is smaller).  slice > 0 and cap >= slice
    // (validated), so a demanding thread is never granted zero.
    BytesPerSecond pool = policy.ceiling;
    for (std::size_t i = 0; i < demands.size(); ++i) {
        const BytesPerSecond d =
            threadBandwidth(demands[i], contention);
        if (d <= 0.0)
            continue;
        grants[i] = std::min({d, slice, cap});
        pool -= grants[i];
    }

    // Reclaim rounds: split the unused pool (idle-core slices plus
    // under-demand remainders) evenly across still-unsatisfied
    // threads.  Each round either satisfies/caps a thread or drains
    // the pool, so <= N rounds converge; the fixed thread order
    // keeps the arithmetic deterministic.
    for (std::size_t round = 0;
         round < demands.size() && pool > policy.ceiling * 1e-12;
         ++round) {
        std::size_t unsatisfied = 0;
        for (std::size_t i = 0; i < demands.size(); ++i) {
            if (grants[i] <= 0.0)
                continue;
            const BytesPerSecond want = std::min(
                threadBandwidth(demands[i], contention), cap);
            if (grants[i] < want)
                ++unsatisfied;
        }
        if (unsatisfied == 0)
            break;
        const BytesPerSecond share =
            pool / static_cast<double>(unsatisfied);
        bool moved = false;
        for (std::size_t i = 0; i < demands.size(); ++i) {
            if (grants[i] <= 0.0)
                continue;
            const BytesPerSecond want = std::min(
                threadBandwidth(demands[i], contention), cap);
            if (grants[i] >= want)
                continue;
            const BytesPerSecond add =
                std::min(share, want - grants[i]);
            if (add > 0.0) {
                grants[i] += add;
                pool -= add;
                moved = true;
            }
        }
        if (!moved)
            break;
    }
}

void
MemorySystem::solveMemBwFactors(
    const std::vector<MemoryDemand> &demands,
    const MemBwPolicy &policy, double contention,
    std::vector<double> &factors,
    std::vector<BytesPerSecond> &grants_scratch) const
{
    solveMemBwGrants(demands, policy, contention, grants_scratch);
    factors.assign(demands.size(), 1.0);
    for (std::size_t i = 0; i < demands.size(); ++i) {
        const BytesPerSecond d =
            threadBandwidth(demands[i], contention);
        const BytesPerSecond grant = grants_scratch[i];
        if (d <= grant)
            continue; // within budget: exactly no throttle
        ECOSCHED_ASSERT(grant > 0.0,
                        "a demanding thread was granted zero"
                        " bandwidth");
        // Achieved bandwidth is strictly decreasing in the factor;
        // bracket then bisect, returning the hi (over-throttled)
        // side so achieved <= grant and the aggregate never exceeds
        // the ceiling.
        double lo = 1.0;
        double hi = 2.0;
        while (threadBandwidth(demands[i], contention * hi) > grant
               && hi < 1e6) {
            lo = hi;
            hi *= 2.0;
        }
        for (int iter = 0; iter < 40; ++iter) {
            const double mid = 0.5 * (lo + hi);
            if (threadBandwidth(demands[i], contention * mid)
                    > grant) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        factors[i] = hi;
    }
}

BytesPerSecond
estimateThreadBandwidth(const WorkProfile &profile, Hertz f,
                        const MemoryParams &params)
{
    const MemorySystem memory(params);
    MemoryDemand demand;
    demand.profile = &profile;
    demand.coreFrequency = f;
    return memory.threadBandwidth(demand, 1.0);
}

double
ContentionCache::solve(const MemorySystem &memory,
                       const std::vector<MemoryDemand> &demands,
                       std::uint64_t chip_epoch,
                       std::uint64_t threads_version,
                       std::uint32_t stalled)
{
    if (valid && keyEpoch == chip_epoch
            && keyVersion == threads_version
            && keyStalled == stalled) {
        ECOSCHED_DEBUG_ASSERT(
            value == memory.solveContention(demands),
            "contention step key matched a different demand set");
        return value;
    }
    value = memory.solveContention(demands);
    keyEpoch = chip_epoch;
    keyVersion = threads_version;
    keyStalled = stalled;
    valid = true;
    return value;
}

const std::vector<double> &
MemBwCache::solve(const MemorySystem &memory,
                  const std::vector<MemoryDemand> &demands,
                  const MemBwPolicy &policy, double contention,
                  std::uint64_t chip_epoch,
                  std::uint64_t threads_version,
                  std::uint32_t stalled)
{
    if (valid && keyEpoch == chip_epoch
            && keyVersion == threads_version
            && keyStalled == stalled) {
#ifndef NDEBUG
        std::vector<double> fresh;
        std::vector<BytesPerSecond> scratch;
        memory.solveMemBwFactors(demands, policy, contention, fresh,
                                 scratch);
        ECOSCHED_DEBUG_ASSERT(
            fresh == factors,
            "membw step key matched a different demand set");
#endif
        return factors;
    }
    memory.solveMemBwFactors(demands, policy, contention, factors,
                             grantsScratch);
    keyEpoch = chip_epoch;
    keyVersion = threads_version;
    keyStalled = stalled;
    valid = true;
    return factors;
}

} // namespace ecosched
