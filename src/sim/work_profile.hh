/**
 * @file
 * Execution characteristics of a piece of work, as the simulator
 * sees them.
 *
 * The performance model is a classic stall decomposition: the time a
 * thread needs per instruction on a core clocked at f is
 *
 *   t_instr = cpiBase / f
 *           + (l3Apki/1000 * t_L3 + dramApki/1000 * t_DRAM * s) / mlp
 *
 * where s >= 1 is the DRAM-bandwidth contention factor solved by the
 * MemorySystem and mlp captures miss-level parallelism.  Core
 * frequency only divides the first term — which is exactly why
 * memory-intensive programs tolerate frequency reduction (§IV.B) and
 * what the paper's daemon exploits.
 */

#ifndef ECOSCHED_SIM_WORK_PROFILE_HH
#define ECOSCHED_SIM_WORK_PROFILE_HH

namespace ecosched {

/**
 * Per-workload microarchitectural characteristics consumed by the
 * Machine.  Produced by the workloads catalog.
 */
struct WorkProfile
{
    /// Core cycles per instruction absent L3/DRAM stalls.
    double cpiBase = 1.0;

    /// L3-cache accesses (= L2 misses) per kilo-instruction.
    double l3Apki = 1.0;

    /// DRAM accesses (= L3 misses) per kilo-instruction.
    double dramApki = 0.1;

    /// Miss-level parallelism: concurrent outstanding misses (>= 1).
    double mlp = 2.0;

    /// Core switching-activity factor (see CoreActivity).
    double switchingFactor = 1.0;

    /**
     * Multiplier applied to l3Apki and dramApki while the sibling
     * core of the same PMD is busy — contention in the shared L2
     * (>= 1; 1 means insensitive to clustering).
     */
    double l2SharingPenalty = 1.0;

    /// Validate ranges. @throws FatalError when inconsistent.
    void validate() const;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_WORK_PROFILE_HH
