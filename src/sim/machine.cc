#include "sim/machine.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hh"

namespace ecosched {

namespace {

/// Droop histogram spanning the chip's magnitude classes.
Histogram
makeDroopHistogram(const ChipSpec &spec)
{
    const double lo = spec.droopClasses.front().binLoMv;
    const double hi = spec.droopClasses.back().binHiMv;
    return Histogram(lo, hi, spec.droopClasses.size());
}

} // namespace

Machine::Machine(const ChipSpec &spec, MachineConfig config)
    : chipState(spec),
      controlPlane(chipState),
      power(spec),
      memory(MemoryParams::forChipName(spec.name)),
      vmin(spec, VminParams::forChip(spec), config.seed),
      droop(spec),
      failures(),
      thermal(ThermalParams::forChipName(spec.name)),
      cfg(config),
      rng(config.seed * 0x2545f4914f6cdd1dull + 7),
      coreOwner(spec.numCores, invalidSimThread),
      droopHist(makeDroopHistogram(spec))
{
    fatalIf(cfg.faultReferenceRuntime <= 0.0,
            "faultReferenceRuntime must be positive");
    fatalIf(cfg.migrationCost < 0.0,
            "migrationCost must be non-negative");
}

SimThreadId
Machine::startThread(const WorkProfile &profile, Instructions work,
                     CoreId core, double vmin_sensitivity)
{
    return startThreadPhased({{profile, work}}, core,
                             vmin_sensitivity);
}

SimThreadId
Machine::startThreadPhased(const std::vector<WorkPhase> &phases,
                           CoreId core, double vmin_sensitivity)
{
    fatalIf(phases.empty(), "thread needs at least one phase");
    fatalIf(core >= spec().numCores,
            "core ", core, " out of range on ", spec().name);
    fatalIf(coreOwner[core] != invalidSimThread,
            "core ", core, " already occupied by thread ",
            coreOwner[core]);
    fatalIf(vmin_sensitivity < 0.0 || vmin_sensitivity > 1.0,
            "vmin sensitivity must be in [0, 1]");

    SimThread t;
    t.id = nextThreadId++;
    t.totalWork = 0;
    for (const WorkPhase &ph : phases) {
        ph.profile.validate();
        fatalIf(ph.instructions == 0,
                "every phase needs a positive amount of work");
        t.totalWork += ph.instructions;
    }
    t.remaining = t.totalWork;
    t.profile = phases.front().profile;
    t.phaseRemaining = phases.front().instructions;
    t.pendingPhases.assign(phases.begin() + 1, phases.end());
    t.core = core;
    t.vminSensitivity = vmin_sensitivity;
    coreOwner[core] = t.id;
    threads.emplace(t.id, t);
    return t.id;
}

void
Machine::stopThread(SimThreadId tid)
{
    auto it = threads.find(tid);
    fatalIf(it == threads.end(), "unknown thread ", tid);
    if (!it->second.finished)
        coreOwner[it->second.core] = invalidSimThread;
    std::erase(finishedQueue, tid);
    threads.erase(it);
}

void
Machine::migrateThread(SimThreadId tid, CoreId core)
{
    SimThread &t = threadRef(tid);
    fatalIf(t.finished, "cannot migrate finished thread ", tid);
    fatalIf(core >= spec().numCores,
            "core ", core, " out of range on ", spec().name);
    if (t.core == core)
        return;
    fatalIf(coreOwner[core] != invalidSimThread,
            "migration target core ", core, " occupied by thread ",
            coreOwner[core]);
    coreOwner[t.core] = invalidSimThread;
    coreOwner[core] = tid;
    t.core = core;
    ++t.migrations;
    t.stallUntil = std::max(t.stallUntil, simTime + cfg.migrationCost);
}

void
Machine::swapThreads(SimThreadId a, SimThreadId b)
{
    fatalIf(a == b, "cannot swap a thread with itself");
    SimThread &ta = threadRef(a);
    SimThread &tb = threadRef(b);
    fatalIf(ta.finished || tb.finished,
            "cannot swap finished threads");
    std::swap(coreOwner[ta.core], coreOwner[tb.core]);
    std::swap(ta.core, tb.core);
    for (SimThread *t : {&ta, &tb}) {
        ++t->migrations;
        t->stallUntil =
            std::max(t->stallUntil, simTime + cfg.migrationCost);
    }
}

const SimThread &
Machine::thread(SimThreadId tid) const
{
    auto it = threads.find(tid);
    fatalIf(it == threads.end(), "unknown thread ", tid);
    return it->second;
}

SimThread &
Machine::threadRef(SimThreadId tid)
{
    auto it = threads.find(tid);
    fatalIf(it == threads.end(), "unknown thread ", tid);
    return it->second;
}

SimThreadId
Machine::threadOnCore(CoreId core) const
{
    fatalIf(core >= spec().numCores,
            "core ", core, " out of range on ", spec().name);
    return coreOwner[core];
}

bool
Machine::coreBusy(CoreId core) const
{
    return threadOnCore(core) != invalidSimThread;
}

std::vector<SimThreadId>
Machine::runningThreads() const
{
    std::vector<SimThreadId> ids;
    for (const auto &[id, t] : threads)
        if (!t.finished)
            ids.push_back(id);
    return ids;
}

std::vector<CoreId>
Machine::busyCores() const
{
    std::vector<CoreId> cores;
    for (CoreId c = 0; c < spec().numCores; ++c)
        if (coreOwner[c] != invalidSimThread)
            cores.push_back(c);
    return cores;
}

std::uint32_t
Machine::utilizedPmds() const
{
    return countUtilizedPmds(busyCores());
}

std::vector<SimThread>
Machine::collectFinished()
{
    std::vector<SimThread> done;
    done.reserve(finishedQueue.size());
    for (SimThreadId tid : finishedQueue) {
        auto it = threads.find(tid);
        ECOSCHED_ASSERT(it != threads.end(),
                        "finished queue references unknown thread");
        done.push_back(it->second);
        threads.erase(it);
    }
    finishedQueue.clear();
    return done;
}

void
Machine::applyAutoClockGating()
{
    if (!cfg.autoClockGateIdlePmds)
        return;
    for (PmdId p = 0; p < spec().numPmds(); ++p) {
        const bool busy = coreBusy(firstCoreOfPmd(p))
            || coreBusy(secondCoreOfPmd(p));
        controlPlane.requestClockGate(simTime, p, !busy);
    }
}

void
Machine::step(Seconds dt)
{
    fatalIf(dt <= 0.0, "step needs a positive dt");
    if (isHalted) {
        // The node is down: time passes, nothing executes and the
        // PCP domain draws no power.
        simTime += dt;
        lastStepPower = PowerBreakdown{};
        lastStepContention = 1.0;
        lastStepUtilization = 0.0;
        return;
    }

    applyAutoClockGating();

    // --- gather running threads and solve memory contention ---------
    struct Running
    {
        SimThread *t;
        double apkiScale;
        Hertz freq;
    };
    std::vector<Running> running;
    std::vector<MemoryDemand> demands;
    for (CoreId c = 0; c < spec().numCores; ++c) {
        const SimThreadId tid = coreOwner[c];
        if (tid == invalidSimThread)
            continue;
        SimThread &t = threadRef(tid);
        if (t.stallUntil > simTime + dt * 0.5)
            continue; // migration warm-up: no progress this step
        const Hertz f = chipState.coreFrequency(c);
        ECOSCHED_ASSERT(f > 0.0, "busy core on a gated PMD");
        const CoreId sibling = (c % coresPerPmd == 0)
            ? c + 1 : c - 1;
        const bool partner_busy = sibling < spec().numCores
            && coreOwner[sibling] != invalidSimThread;
        const double scale =
            partner_busy ? t.profile.l2SharingPenalty : 1.0;
        running.push_back({&t, scale, f});
        demands.push_back({&t.profile, f, scale});
    }
    const double contention = memory.solveContention(demands);

    // --- execute -----------------------------------------------------
    std::vector<CoreActivity> activity(spec().numCores);
    double l3_rate = 0.0;
    double dram_rate = 0.0;
    double util_sum = 0.0;

    for (auto &r : running) {
        SimThread &t = *r.t;
        const Seconds t_instr = memory.timePerInstruction(
            t.profile, r.freq, contention, r.apkiScale);
        const double rate = 1.0 / t_instr;
        const double target = rate * dt;
        // A step never crosses a phase boundary: the remainder of
        // the step idles and the next step runs the new profile.
        const double retired_d = std::min(
            {static_cast<double>(t.remaining),
             static_cast<double>(t.phaseRemaining), target});
        const auto retired =
            static_cast<Instructions>(std::llround(retired_d));
        const Seconds busy = retired_d * t_instr;
        const double util = std::clamp(busy / dt, 0.0, 1.0);

        t.counters.instructions += retired;
        t.counters.cycles += static_cast<Cycles>(
            std::llround(busy * r.freq));
        t.counters.l3Accesses += static_cast<std::uint64_t>(
            std::llround(retired_d * t.profile.l3Apki * r.apkiScale
                         * 1e-3));
        t.counters.dramAccesses += static_cast<std::uint64_t>(
            std::llround(retired_d * t.profile.dramApki * r.apkiScale
                         * 1e-3));
        t.counters.busyTime += busy;

        l3_rate += retired_d * t.profile.l3Apki * r.apkiScale * 1e-3
            / dt;
        dram_rate += retired_d * t.profile.dramApki * r.apkiScale
            * 1e-3 / dt;

        activity[t.core].utilization = util;
        activity[t.core].switchingFactor = t.profile.switchingFactor;
        util_sum += util;

        t.remaining = (retired >= t.remaining)
            ? 0 : t.remaining - retired;
        t.phaseRemaining = (retired >= t.phaseRemaining)
            ? 0 : t.phaseRemaining - retired;
        if (t.phaseRemaining == 0 && !t.pendingPhases.empty()) {
            t.profile = t.pendingPhases.front().profile;
            t.phaseRemaining = t.pendingPhases.front().instructions;
            t.pendingPhases.erase(t.pendingPhases.begin());
        }
        if (t.remaining == 0 && !t.finished) {
            t.finished = true;
            coreOwner[t.core] = invalidSimThread;
            finishedQueue.push_back(t.id);
        }
    }

    lastStepContention = contention;
    lastStepUtilization =
        running.empty() ? 0.0 : util_sum / running.size();

    // --- power integration --------------------------------------------
    lastStepPower = power.totalPower(chipState, activity,
                                     {l3_rate, dram_rate});
    if (cfg.enableThermal) {
        // Leakage responds to the die temperature reached so far;
        // the thermal state then advances under this step's power.
        lastStepPower.leakage *= thermal.leakageMultiplier();
        thermal.step(dt, lastStepPower.total());
    }
    meter.add(dt, lastStepPower);

    // --- droop sampling -------------------------------------------------
    if (cfg.sampleDroops && !running.empty()) {
        Hertz fmax_busy = 0.0;
        for (const auto &r : running)
            fmax_busy = std::max(fmax_busy, r.freq);
        const auto cycles = static_cast<Cycles>(
            std::llround(dt * fmax_busy));
        droop.sampleEvents(rng, cycles, utilizedPmds(),
                           cfg.droopRateBias, lastStepUtilization,
                           droopHist);
        droopRefCycles += cycles;
    }

    // --- undervolting fault injection -------------------------------
    if (cfg.injectFaults)
        injectFaultsForStep(dt);

    simTime += dt;
}

void
Machine::injectFaultsForStep(Seconds dt)
{
    const Volt true_vmin = currentTrueVmin();
    if (true_vmin <= 0.0)
        return; // idle machine
    const Volt v = chipState.voltage();
    if (v < true_vmin) {
        unsafeTime += dt;
        maxDeficit = std::max(maxDeficit, true_vmin - v);
    }
    const double p_run = failures.pfail(v, true_vmin);
    if (p_run <= 0.0)
        return;
    // Convert per-run pfail into a hazard over this step.
    const double hazard = -std::log(std::max(1e-12, 1.0 - p_run))
        / cfg.faultReferenceRuntime;
    const double p_step = 1.0 - std::exp(-hazard * dt);
    if (!rng.bernoulli(p_step))
        return;

    const RunOutcome type =
        failures.sampleFailureType(rng, v, true_vmin);
    if (type == RunOutcome::SystemCrash) {
        isHalted = true;
        for (auto &[id, t] : threads) {
            if (t.finished)
                continue;
            t.finished = true;
            t.outcome = RunOutcome::SystemCrash;
            coreOwner[t.core] = invalidSimThread;
            finishedQueue.push_back(id);
        }
        return;
    }

    // Strike one running thread uniformly at random.
    const auto ids = runningThreads();
    if (ids.empty())
        return;
    const SimThreadId victim = ids[rng.uniformInt(0, ids.size() - 1)];
    SimThread &t = threadRef(victim);
    if (type == RunOutcome::Sdc) {
        // Silent corruption: the run continues to completion but its
        // output is wrong.
        t.outcome = RunOutcome::Sdc;
        return;
    }
    t.finished = true;
    t.outcome = type;
    coreOwner[t.core] = invalidSimThread;
    finishedQueue.push_back(victim);
}

void
Machine::runUntil(Seconds t, Seconds dt)
{
    fatalIf(dt <= 0.0, "runUntil needs a positive dt");
    while (simTime + dt * 0.5 < t)
        step(dt);
}

Volt
Machine::currentTrueVmin() const
{
    const auto cores = busyCores();
    if (cores.empty())
        return 0.0;
    Hertz fmax_busy = 0.0;
    double sens = 0.0;
    for (CoreId c : cores) {
        fmax_busy = std::max(fmax_busy, chipState.coreFrequency(c));
        const auto it = threads.find(coreOwner[c]);
        ECOSCHED_ASSERT(it != threads.end(),
                        "core owner references unknown thread");
        sens = std::max(sens, it->second.vminSensitivity);
    }
    if (fmax_busy <= 0.0)
        return 0.0;
    return vmin.trueVmin(spec().snapToLadder(fmax_busy), cores, sens);
}

} // namespace ecosched
