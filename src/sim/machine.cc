#include "sim/machine.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hh"

namespace ecosched {

namespace {

/// Droop histogram spanning the chip's magnitude classes.
Histogram
makeDroopHistogram(const ChipSpec &spec)
{
    const double lo = spec.droopClasses.front().binLoMv;
    const double hi = spec.droopClasses.back().binHiMv;
    return Histogram(lo, hi, spec.droopClasses.size());
}

} // namespace

Machine::Machine(const ChipSpec &spec, MachineConfig config)
    : chipState(spec),
      controlPlane(chipState),
      power(spec),
      memory(MemoryParams::forChipName(spec.name)),
      vmin(spec, VminParams::forChip(spec), config.seed),
      droop(spec),
      failures(),
      thermal(ThermalParams::forChipName(spec.name)),
      cfg(config),
      rng(config.seed * 0x2545f4914f6cdd1dull + 7),
      coreOwner(spec.numCores, invalidSimThread),
      pmdBusy(spec.numPmds(), 0),
      idleState(spec),
      droopHist(makeDroopHistogram(spec))
{
    fatalIf(cfg.faultReferenceRuntime <= 0.0,
            "faultReferenceRuntime must be positive");
    fatalIf(cfg.migrationCost < 0.0,
            "migrationCost must be non-negative");
    initMemBwPolicy();
}

Machine::Machine(const Machine &prototype,
                 const MachineConfig &config)
    : chipState(prototype.spec()),
      controlPlane(chipState),
      power(prototype.power),
      memory(prototype.memory),
      vmin(prototype.vmin),
      droop(prototype.droop),
      failures(prototype.failures),
      thermal(prototype.thermal),
      cfg(config),
      rng(config.seed * 0x2545f4914f6cdd1dull + 7),
      coreOwner(prototype.spec().numCores, invalidSimThread),
      pmdBusy(prototype.spec().numPmds(), 0),
      idleState(prototype.spec()),
      droopHist(makeDroopHistogram(prototype.spec()))
{
    // Only an unstepped, thread-free prototype is a valid stamp
    // source: every copied model must still hold its as-constructed
    // state for the fresh-construction equivalence to hold.
    fatalIf(prototype.simTime != 0.0 || prototype.isHalted
                || !prototype.threadSlots.empty()
                || prototype.meter.energy() != 0.0,
            "machine stamping needs a pristine prototype");
    fatalIf(cfg.faultReferenceRuntime <= 0.0,
            "faultReferenceRuntime must be positive");
    fatalIf(cfg.migrationCost < 0.0,
            "migrationCost must be non-negative");
    vmin.reseed(cfg.seed);
    initMemBwPolicy();
}

void
Machine::initMemBwPolicy()
{
    if (spec().hasMemBw()) {
        membwPolicy.ceiling = spec().membw.ceiling;
        membwPolicy.maxThreadShare = spec().membw.maxThreadShare;
        membwPolicy.numCores = spec().numCores;
    } else if (memBwShadowEnabled()) {
        // Shadow mode: exercise the full reservation path with a
        // ceiling no demand can reach — every grant covers its
        // demand and every factor solves to exactly 1.0, so the
        // results must stay byte-identical (pinned by the *_membw_off
        // goldens).
        membwPolicy.ceiling = memory.params().peakDramBandwidth * 1e6;
        membwPolicy.maxThreadShare = 1.0;
        membwPolicy.numCores = spec().numCores;
    }
}

SimThread *
Machine::findThread(SimThreadId tid)
{
    if (tid == invalidSimThread || tid >= nextThreadId)
        return nullptr;
    const std::uint32_t slot = slotOfId[tid - 1];
    return slot == noSlot ? nullptr : &threadSlots[slot];
}

const SimThread *
Machine::findThread(SimThreadId tid) const
{
    return const_cast<Machine *>(this)->findThread(tid);
}

Seconds
Machine::occupyCore(CoreId core)
{
    ++busyCoreCount;
    if (++pmdBusy[pmdOfCore(core)] == 1)
        ++busyPmdCount;
    return idleState.occupy(core, simTime);
}

void
Machine::releaseCore(CoreId core)
{
    ECOSCHED_ASSERT(busyCoreCount > 0 && pmdBusy[pmdOfCore(core)] > 0,
                    "releasing an idle core");
    --busyCoreCount;
    if (--pmdBusy[pmdOfCore(core)] == 0)
        --busyPmdCount;
    idleState.release(core, simTime);
}

void
Machine::retireThread(SimThread &t)
{
    t.finished = true;
    coreOwner[t.core] = invalidSimThread;
    releaseCore(t.core);
    finishedQueue.push_back(t.id);
    ++threadsVersion;
}

void
Machine::eraseSlot(std::uint32_t slot)
{
    slotOfId[threadSlots[slot].id - 1] = noSlot;
    threadSlots.erase(threadSlots.begin() + slot);
    for (std::uint32_t s = slot; s < threadSlots.size(); ++s)
        slotOfId[threadSlots[s].id - 1] = s;
}

SimThreadId
Machine::startThread(const WorkProfile &profile, Instructions work,
                     CoreId core, double vmin_sensitivity)
{
    return startThreadPhased({{profile, work}}, core,
                             vmin_sensitivity);
}

SimThreadId
Machine::startThreadPhased(const std::vector<WorkPhase> &phases,
                           CoreId core, double vmin_sensitivity)
{
    fatalIf(phases.empty(), "thread needs at least one phase");
    fatalIf(core >= spec().numCores,
            "core ", core, " out of range on ", spec().name);
    fatalIf(coreOwner[core] != invalidSimThread,
            "core ", core, " already occupied by thread ",
            coreOwner[core]);
    fatalIf(vmin_sensitivity < 0.0 || vmin_sensitivity > 1.0,
            "vmin sensitivity must be in [0, 1]");

    SimThread t;
    t.id = nextThreadId++;
    t.totalWork = 0;
    for (const WorkPhase &ph : phases) {
        ph.profile.validate();
        fatalIf(ph.instructions == 0,
                "every phase needs a positive amount of work");
        t.totalWork += ph.instructions;
    }
    t.remaining = t.totalWork;
    t.profile = phases.front().profile;
    t.phaseRemaining = phases.front().instructions;
    t.pendingPhases.assign(phases.begin() + 1, phases.end());
    t.core = core;
    t.vminSensitivity = vmin_sensitivity;

    const SimThreadId tid = t.id;
    coreOwner[core] = tid;
    const Seconds wake = occupyCore(core);
    if (wake > 0.0) {
        // The core sat in a deep idle state: its first slice pays
        // the exit latency.
        t.stallUntil = std::max(t.stallUntil, simTime + wake);
    }
    ++threadsVersion;
    ECOSCHED_ASSERT(slotOfId.size() == tid - 1,
                    "thread-id index out of sync");
    slotOfId.push_back(
        static_cast<std::uint32_t>(threadSlots.size()));
    threadSlots.push_back(std::move(t));
    return tid;
}

void
Machine::stopThread(SimThreadId tid)
{
    SimThread *t = findThread(tid);
    fatalIf(t == nullptr, "unknown thread ", tid);
    if (!t->finished) {
        coreOwner[t->core] = invalidSimThread;
        releaseCore(t->core);
    }
    std::erase(finishedQueue, tid);
    ++threadsVersion;
    eraseSlot(slotOfId[tid - 1]);
}

void
Machine::migrateThread(SimThreadId tid, CoreId core)
{
    SimThread &t = threadRef(tid);
    fatalIf(t.finished, "cannot migrate finished thread ", tid);
    fatalIf(core >= spec().numCores,
            "core ", core, " out of range on ", spec().name);
    if (t.core == core)
        return;
    fatalIf(coreOwner[core] != invalidSimThread,
            "migration target core ", core, " occupied by thread ",
            coreOwner[core]);
    coreOwner[t.core] = invalidSimThread;
    releaseCore(t.core);
    coreOwner[core] = tid;
    const Seconds wake = occupyCore(core);
    ++threadsVersion;
    t.core = core;
    ++t.migrations;
    t.stallUntil = std::max(
        t.stallUntil,
        simTime + std::max(cfg.migrationCost, wake));
}

void
Machine::swapThreads(SimThreadId a, SimThreadId b)
{
    fatalIf(a == b, "cannot swap a thread with itself");
    SimThread &ta = threadRef(a);
    SimThread &tb = threadRef(b);
    fatalIf(ta.finished || tb.finished,
            "cannot swap finished threads");
    std::swap(coreOwner[ta.core], coreOwner[tb.core]);
    std::swap(ta.core, tb.core);
    ++threadsVersion; // busy set is unchanged, but stay conservative
    for (SimThread *t : {&ta, &tb}) {
        ++t->migrations;
        t->stallUntil =
            std::max(t->stallUntil, simTime + cfg.migrationCost);
    }
}

const SimThread &
Machine::thread(SimThreadId tid) const
{
    const SimThread *t = findThread(tid);
    fatalIf(t == nullptr, "unknown thread ", tid);
    return *t;
}

SimThread &
Machine::threadRef(SimThreadId tid)
{
    SimThread *t = findThread(tid);
    fatalIf(t == nullptr, "unknown thread ", tid);
    return *t;
}

SimThreadId
Machine::threadOnCore(CoreId core) const
{
    fatalIf(core >= spec().numCores,
            "core ", core, " out of range on ", spec().name);
    return coreOwner[core];
}

bool
Machine::coreBusy(CoreId core) const
{
    return threadOnCore(core) != invalidSimThread;
}

std::vector<SimThreadId>
Machine::runningThreads() const
{
    std::vector<SimThreadId> ids;
    for (const SimThread &t : threadSlots)
        if (!t.finished)
            ids.push_back(t.id);
    return ids;
}

std::vector<CoreId>
Machine::busyCores() const
{
    std::vector<CoreId> cores;
    cores.reserve(busyCoreCount);
    for (CoreId c = 0; c < spec().numCores; ++c)
        if (coreOwner[c] != invalidSimThread)
            cores.push_back(c);
    return cores;
}

std::vector<SimThread>
Machine::collectFinished()
{
    std::vector<SimThread> done;
    done.reserve(finishedQueue.size());
    for (SimThreadId tid : finishedQueue) {
        const std::uint32_t slot = slotOfId[tid - 1];
        ECOSCHED_ASSERT(slot != noSlot,
                        "finished queue references unknown thread");
        done.push_back(std::move(threadSlots[slot]));
        eraseSlot(slot);
    }
    finishedQueue.clear();
    return done;
}

void
Machine::applyAutoClockGating()
{
    if (!cfg.autoClockGateIdlePmds)
        return;
    for (PmdId p = 0; p < spec().numPmds(); ++p) {
        const bool busy = pmdBusy[p] != 0;
        // The SlimPro no-ops unchanged requests; skip the call (and
        // its gate re-read) unless this pass would flip the gate.
        if (chipState.pmdClockGated(p) == busy)
            controlPlane.requestClockGate(simTime, p, !busy);
    }
}

bool
Machine::gatingSettled() const
{
    if (!cfg.autoClockGateIdlePmds)
        return true;
    for (PmdId p = 0; p < spec().numPmds(); ++p) {
        const bool busy = pmdBusy[p] != 0;
        if (chipState.pmdClockGated(p) == busy)
            return false; // the next gating pass would flip this PMD
    }
    return true;
}

const Hertz *
Machine::coreFrequencies()
{
    if (coreFreqEpoch != chipState.stateEpoch()) {
        coreFreqCache.resize(spec().numCores);
        for (CoreId c = 0; c < spec().numCores; ++c)
            coreFreqCache[c] = chipState.coreFrequency(c);
        coreFreqEpoch = chipState.stateEpoch();
    }
    return coreFreqCache.data();
}

void
Machine::step(Seconds dt)
{
    fatalIf(dt <= 0.0, "step needs a positive dt");
    if (isHalted) {
        // The node is down: time passes, nothing executes and the
        // PCP domain draws no power.
        simTime += dt;
        lastStepPower = PowerBreakdown{};
        lastStepContention = 1.0;
        lastStepUtilization = 0.0;
        lastStepMaxThrottle = 1.0;
        busyCoreSeconds += static_cast<double>(busyCoreCount) * dt;
        return;
    }

    // Fire idle-state promotions due on this step before the step
    // key is sampled: the power evaluation below sees the updated
    // residency view (macroAdvance() clamps its horizon to
    // nextTransition(), so promotions only ever fire here).
    idleState.poll(simTime, dt);
    applyAutoClockGating();

    // --- gather running threads and solve memory contention ---------
    // The step key (chip epoch, thread-set version, stalled count)
    // is sampled here, before the execute phase mutates anything: it
    // pins the gathered demand/activity inputs for the caches below.
    const std::uint64_t step_epoch = chipState.stateEpoch();
    const std::uint64_t step_version = threadsVersion;
    std::uint32_t stalled = 0;
    const Hertz *freqs = coreFrequencies();
    runningScratch.clear();
    demandScratch.clear();
    for (CoreId c = 0; c < spec().numCores; ++c) {
        const SimThreadId tid = coreOwner[c];
        if (tid == invalidSimThread)
            continue;
        const std::uint32_t slot = slotOfId[tid - 1];
        SimThread &t = threadSlots[slot];
        if (t.stallUntil > simTime + dt * 0.5) {
            ++stalled;
            continue; // migration warm-up: no progress this step
        }
        const Hertz f = freqs[c];
        ECOSCHED_ASSERT(f > 0.0, "busy core on a gated PMD");
        const CoreId sibling = (c % coresPerPmd == 0)
            ? c + 1 : c - 1;
        const bool partner_busy = sibling < spec().numCores
            && coreOwner[sibling] != invalidSimThread;
        const double scale =
            partner_busy ? t.profile.l2SharingPenalty : 1.0;
        runningScratch.push_back({slot, scale, f});
        demandScratch.push_back({&t.profile, f, scale});
    }
    const double contention = contentionCache.solve(
        memory, demandScratch, step_epoch, step_version, stalled);

    // With a reservation armed, each thread gets an individual
    // throttle factor on top of the common contention (1.0 for
    // threads within their grant, so an unarmed/unsaturated chip
    // computes bit-identical CPI).
    const std::vector<double> *bwfac = nullptr;
    std::uint32_t throttled_count = 0;
    double max_throttle = 1.0;
    if (membwPolicy.armed()) {
        bwfac = &membwCache.solve(memory, demandScratch, membwPolicy,
                                  contention, step_epoch,
                                  step_version, stalled);
        for (const double fac : *bwfac) {
            if (fac > 1.0) {
                ++throttled_count;
                max_throttle = std::max(max_throttle, fac);
            }
        }
    }

    // --- execute -----------------------------------------------------
    activityScratch.assign(spec().numCores, CoreActivity{});
    double l3_rate = 0.0;
    double dram_rate = 0.0;
    double util_sum = 0.0;

    for (std::size_t k = 0; k < runningScratch.size(); ++k) {
        const RunningRef &r = runningScratch[k];
        SimThread &t = threadSlots[r.slot];
        const double eff_contention = bwfac != nullptr
            ? contention * (*bwfac)[k] : contention;
        const Seconds t_instr = memory.timePerInstruction(
            t.profile, r.freq, eff_contention, r.apkiScale);
        const double rate = 1.0 / t_instr;
        const double target = rate * dt;
        // A step never crosses a phase boundary: the remainder of
        // the step idles and the next step runs the new profile.
        const double retired_d = std::min(
            {static_cast<double>(t.remaining),
             static_cast<double>(t.phaseRemaining), target});
        const auto retired =
            static_cast<Instructions>(std::llround(retired_d));
        const Seconds busy = retired_d * t_instr;
        const double util = std::clamp(busy / dt, 0.0, 1.0);

        const double l3_acc =
            retired_d * t.profile.l3Apki * r.apkiScale * 1e-3;
        const double dram_acc =
            retired_d * t.profile.dramApki * r.apkiScale * 1e-3;

        t.counters.instructions += retired;
        t.counters.cycles += static_cast<Cycles>(
            std::llround(busy * r.freq));
        t.counters.l3Accesses +=
            static_cast<std::uint64_t>(std::llround(l3_acc));
        t.counters.dramAccesses +=
            static_cast<std::uint64_t>(std::llround(dram_acc));
        t.counters.busyTime += busy;

        l3_rate += l3_acc / dt;
        dram_rate += dram_acc / dt;

        activityScratch[t.core].utilization = util;
        activityScratch[t.core].switchingFactor =
            t.profile.switchingFactor;
        util_sum += util;

        t.remaining = (retired >= t.remaining)
            ? 0 : t.remaining - retired;
        t.phaseRemaining = (retired >= t.phaseRemaining)
            ? 0 : t.phaseRemaining - retired;
        if (t.phaseRemaining == 0 && !t.pendingPhases.empty()) {
            t.profile = t.pendingPhases.front().profile;
            t.phaseRemaining = t.pendingPhases.front().instructions;
            t.pendingPhases.erase(t.pendingPhases.begin());
            ++threadsVersion; // the running profile changed
        }
        if (t.remaining == 0 && !t.finished)
            retireThread(t);
    }

    lastStepContention = contention;
    lastStepUtilization = runningScratch.empty()
        ? 0.0 : util_sum / runningScratch.size();
    lastStepMaxThrottle = max_throttle;
    peakThrottleFactor = std::max(peakThrottleFactor, max_throttle);

    // --- power integration --------------------------------------------
    lastStepPower = powerCache.evaluate(power, chipState,
                                        activityScratch,
                                        {l3_rate, dram_rate},
                                        step_version, threadsVersion,
                                        stalled, dt,
                                        idleState.powerView(),
                                        idleState.epoch());
    if (cfg.enableThermal) {
        // Leakage responds to the die temperature reached so far;
        // the thermal state then advances under this step's power.
        lastStepPower.leakage *= thermal.leakageMultiplier();
        thermal.step(dt, lastStepPower.total());
    }
    meter.add(dt, lastStepPower);

    // --- droop sampling -------------------------------------------------
    if (cfg.sampleDroops && !runningScratch.empty()) {
        Hertz fmax_busy = 0.0;
        for (const RunningRef &r : runningScratch)
            fmax_busy = std::max(fmax_busy, r.freq);
        const auto cycles = static_cast<Cycles>(
            std::llround(dt * fmax_busy));
        ECOSCHED_DEBUG_ASSERT(
            busyPmdCount == countUtilizedPmds(busyCores()),
            "incremental busy-PMD count out of sync");
        droop.sampleEvents(rng, cycles, busyPmdCount,
                           cfg.droopRateBias, lastStepUtilization,
                           droopHist);
        droopRefCycles += cycles;
    }

    // --- undervolting fault injection -------------------------------
    if (cfg.injectFaults)
        injectFaultsForStep(dt);
    if (faultHook != nullptr)
        faultHook->onStep(*this, dt);

    simTime += dt;
    busyCoreSeconds += static_cast<double>(busyCoreCount) * dt;
    if (throttled_count > 0) {
        memThrottledSeconds +=
            static_cast<double>(throttled_count) * dt;
    }
}

std::uint64_t
Machine::macroAdvance(Seconds t, Seconds dt, MacroStepHooks *hooks)
{
    fatalIf(dt <= 0.0, "macroAdvance needs a positive dt");
    // Clamp the window to the unified machine horizon: the fault
    // hook's next event and pending c-state promotions are activity
    // the same way — each must land in a plain step (where onStep()
    // delivers it / poll() fires it), so a macro window never spans
    // one.  A non-eligible machine reports `simTime` and falls
    // through to the per-step path below.
    t = std::min(t, nextActivity(simTime, dt));
    if (!macroEligible() || !(simTime + dt * 0.5 < t))
        return 0;
    if (hooks != nullptr && !hooks->beforeStep())
        return 0; // the caller's next per-step work is not a no-op
    if (!gatingSettled())
        return 0; // let step()'s gating pass apply (and log) flips

    // --- plan: the window's per-step constants (mutates nothing) ----
    const std::uint64_t step_epoch = chipState.stateEpoch();
    const std::uint64_t step_version = threadsVersion;
    const Hertz *freqs = coreFrequencies();
    runningScratch.clear();
    demandScratch.clear();
    stalledScratch.clear();
    for (CoreId c = 0; c < spec().numCores; ++c) {
        const SimThreadId tid = coreOwner[c];
        if (tid == invalidSimThread)
            continue;
        const std::uint32_t slot = slotOfId[tid - 1];
        SimThread &th = threadSlots[slot];
        if (th.stallUntil > simTime + dt * 0.5) {
            stalledScratch.push_back(slot);
            continue;
        }
        const Hertz f = freqs[c];
        ECOSCHED_ASSERT(f > 0.0, "busy core on a gated PMD");
        const CoreId sibling = (c % coresPerPmd == 0)
            ? c + 1 : c - 1;
        const bool partner_busy = sibling < spec().numCores
            && coreOwner[sibling] != invalidSimThread;
        const double scale =
            partner_busy ? th.profile.l2SharingPenalty : 1.0;
        runningScratch.push_back({slot, scale, f});
        demandScratch.push_back({&th.profile, f, scale});
    }
    const std::uint32_t stalled =
        static_cast<std::uint32_t>(stalledScratch.size());
    const double contention = contentionCache.solve(
        memory, demandScratch, step_epoch, step_version, stalled);

    // MEMBW factors are a pure function of the same step key the
    // window holds constant (no finish, phase switch or stall flip
    // inside it), so one solve covers every step of the window —
    // exactly what the plain loop would replay from the cache.
    const std::vector<double> *bwfac = nullptr;
    std::uint32_t throttled_count = 0;
    double max_throttle = 1.0;
    if (membwPolicy.armed()) {
        bwfac = &membwCache.solve(memory, demandScratch, membwPolicy,
                                  contention, step_epoch,
                                  step_version, stalled);
        for (const double fac : *bwfac) {
            if (fac > 1.0) {
                ++throttled_count;
                max_throttle = std::max(max_throttle, fac);
            }
        }
    }

    activityScratch.assign(spec().numCores, CoreActivity{});
    uniformScratch.clear();
    double l3_rate = 0.0;
    double dram_rate = 0.0;
    double util_sum = 0.0;
    // Steps until the first thread gets within one step of a finish
    // or phase boundary (those must run through step()).
    std::uint64_t window = UINT64_MAX;

    for (std::size_t k = 0; k < runningScratch.size(); ++k) {
        const RunningRef &r = runningScratch[k];
        SimThread &th = threadSlots[r.slot];
        const double eff_contention = bwfac != nullptr
            ? contention * (*bwfac)[k] : contention;
        const Seconds t_instr = memory.timePerInstruction(
            th.profile, r.freq, eff_contention, r.apkiScale);
        const double rate = 1.0 / t_instr;
        const double target = rate * dt;
        if (target >= 4.5e15)
            return 0; // keep integer<->double casts exact
        const auto retired =
            static_cast<Instructions>(std::llround(target));
        const Instructions limit =
            std::min(th.remaining, th.phaseRemaining);
        // A steady step retires exactly llround(target) and leaves
        // at least one instruction: requires limit >= retired + 1
        // (retired + 1 > target always, so the double-valued min in
        // step() picks `target` for every step of the window).
        if (limit < retired + 1)
            return 0; // boundary within one step: use step()
        if (retired > 0)
            window = std::min(window, (limit - 1) / retired);

        const Seconds busy = target * t_instr;
        const double util = std::clamp(busy / dt, 0.0, 1.0);
        UniformRun u;
        u.slot = r.slot;
        u.busy = busy;
        u.retired = retired;
        u.cyclesInc = static_cast<Cycles>(
            std::llround(busy * r.freq));
        u.l3Inc = static_cast<std::uint64_t>(
            std::llround(target * th.profile.l3Apki * r.apkiScale
                         * 1e-3));
        u.dramInc = static_cast<std::uint64_t>(
            std::llround(target * th.profile.dramApki * r.apkiScale
                         * 1e-3));
        uniformScratch.push_back(u);

        l3_rate += target * th.profile.l3Apki * r.apkiScale * 1e-3
            / dt;
        dram_rate += target * th.profile.dramApki * r.apkiScale
            * 1e-3 / dt;
        activityScratch[th.core].utilization = util;
        activityScratch[th.core].switchingFactor =
            th.profile.switchingFactor;
        util_sum += util;
    }

    lastStepContention = contention;
    lastStepUtilization = runningScratch.empty()
        ? 0.0 : util_sum / runningScratch.size();
    lastStepMaxThrottle = max_throttle;
    peakThrottleFactor = std::max(peakThrottleFactor, max_throttle);
    // The plan mutates nothing, so pre- and post-execute versions
    // coincide — matching the steady (V, V) steps of the plain loop.
    const PowerBreakdown &raw = powerCache.evaluate(
        power, chipState, activityScratch, {l3_rate, dram_rate},
        step_version, step_version, stalled, dt,
        idleState.powerView(), idleState.epoch());
    const double alpha =
        cfg.enableThermal ? thermal.stepAlpha(dt) : 0.0;

    // --- replay: per-step state whose evolution is order-sensitive --
    // (FP accumulators must see the exact per-step addition sequence
    // of the plain loop; integer counters are batched afterwards.)
    // Only the leakage component of lastStepPower varies inside the
    // window (thermal feedback), so the breakdown is copied once and
    // just that field is rewritten per step.
    lastStepPower = raw;
    std::uint64_t steps = 0;
    while (steps < window) {
        if (steps > 0) {
            if (!(simTime + dt * 0.5 < t))
                break; // horizon reached
            bool stall_flip = false;
            for (std::uint32_t slot : stalledScratch) {
                if (!(threadSlots[slot].stallUntil
                      > simTime + dt * 0.5)) {
                    stall_flip = true;
                    break;
                }
            }
            if (stall_flip)
                break; // a stall expires: step() re-gathers
            if (hooks != nullptr && !hooks->beforeStep())
                break;
        }

        for (const UniformRun &u : uniformScratch)
            threadSlots[u.slot].counters.busyTime += u.busy;
        if (cfg.enableThermal) {
            lastStepPower.leakage =
                raw.leakage * thermal.leakageMultiplier();
            thermal.stepWithAlpha(alpha, lastStepPower.total());
        }
        meter.add(dt, lastStepPower);
        simTime += dt;
        busyCoreSeconds += static_cast<double>(busyCoreCount) * dt;
        if (throttled_count > 0) {
            // Same per-step FP addition sequence as the plain loop.
            memThrottledSeconds +=
                static_cast<double>(throttled_count) * dt;
        }
        ++steps;
        if (hooks != nullptr)
            hooks->afterStep();
    }

    // --- batch the associative integer counters ----------------------
    for (const UniformRun &u : uniformScratch) {
        SimThread &th = threadSlots[u.slot];
        th.counters.instructions += u.retired * steps;
        th.counters.cycles += u.cyclesInc * steps;
        th.counters.l3Accesses += u.l3Inc * steps;
        th.counters.dramAccesses += u.dramInc * steps;
        th.remaining -= u.retired * steps;
        th.phaseRemaining -= u.retired * steps;
    }
    return steps;
}

void
Machine::injectFaultsForStep(Seconds dt)
{
    const Volt true_vmin = currentTrueVmin();
    if (true_vmin <= 0.0)
        return; // idle machine
    const Volt v = chipState.voltage();
    if (v < true_vmin) {
        unsafeTime += dt;
        maxDeficit = std::max(maxDeficit, true_vmin - v);
    }
    const double p_run = failures.pfail(v, true_vmin);
    if (p_run <= 0.0)
        return;
    // Convert per-run pfail into a hazard over this step.
    const double hazard = -std::log(std::max(1e-12, 1.0 - p_run))
        / cfg.faultReferenceRuntime;
    const double p_step = 1.0 - std::exp(-hazard * dt);
    if (!rng.bernoulli(p_step))
        return;

    const RunOutcome type =
        failures.sampleFailureType(rng, v, true_vmin);
    injectThreadFault(type, rng);
}

void
Machine::injectSystemCrash()
{
    if (isHalted)
        return;
    isHalted = true;
    for (SimThread &t : threadSlots) {
        if (t.finished)
            continue;
        t.outcome = RunOutcome::SystemCrash;
        retireThread(t);
    }
}

SimThreadId
Machine::injectThreadFault(RunOutcome outcome, Rng &strike_rng)
{
    ECOSCHED_ASSERT(outcome != RunOutcome::Ok,
                    "a fault strike needs a failure outcome");
    if (outcome == RunOutcome::SystemCrash) {
        injectSystemCrash();
        return invalidSimThread;
    }

    // Strike one running thread uniformly at random.  Every
    // unfinished thread occupies exactly one core, so the busy-core
    // count is the running-thread count.
    if (isHalted || busyCoreCount == 0)
        return invalidSimThread;
    const std::size_t pick = strike_rng.uniformInt(
        0, static_cast<std::size_t>(busyCoreCount) - 1);
    SimThread *victim = nullptr;
    std::size_t i = 0;
    for (SimThread &t : threadSlots) {
        if (t.finished)
            continue;
        if (i++ == pick) {
            victim = &t;
            break;
        }
    }
    ECOSCHED_ASSERT(victim != nullptr,
                    "busy-core count out of sync with threads");
    if (outcome == RunOutcome::Sdc) {
        // Silent corruption: the run continues to completion but its
        // output is wrong.
        victim->outcome = RunOutcome::Sdc;
        return victim->id;
    }
    victim->outcome = outcome;
    retireThread(*victim);
    return victim->id;
}

MachineSnapshot
Machine::capture() const
{
    MachineSnapshot s;
    s.chipName = spec().name;
    s.config = cfg;
    s.chip = chipState.captureState();
    s.slimPro = controlPlane.captureState();
    s.temperature = thermal.temperature();
    s.meter = meter;
    s.rng = rng;
    s.simTime = simTime;
    s.isHalted = isHalted;
    s.nextThreadId = nextThreadId;
    s.threadSlots = threadSlots;
    s.slotOfId = slotOfId;
    s.coreOwner = coreOwner;
    s.finishedQueue = finishedQueue;
    s.busyCoreCount = busyCoreCount;
    s.busyPmdCount = busyPmdCount;
    s.pmdBusy = pmdBusy;
    s.threadsVersion = threadsVersion;
    s.busyCoreSeconds = busyCoreSeconds;
    s.idle = idleState.captureState();
    s.lastStepPower = lastStepPower;
    s.lastStepContention = lastStepContention;
    s.lastStepUtilization = lastStepUtilization;
    s.membwCeiling = membwPolicy.ceiling;
    s.memThrottledSeconds = memThrottledSeconds;
    s.peakMemThrottle = peakThrottleFactor;
    s.lastStepMaxThrottle = lastStepMaxThrottle;
    s.droopHist = droopHist;
    s.droopRefCycles = droopRefCycles;
    s.unsafeTime = unsafeTime;
    s.maxDeficit = maxDeficit;
    return s;
}

void
Machine::restore(const MachineSnapshot &s)
{
    // The models (power, memory, vmin, droop, failure, thermal
    // constants) are pure functions of (spec, config): a snapshot is
    // only valid on a machine with the same construction identity.
    fatalIf(s.chipName != spec().name,
            "restoring a ", s.chipName, " snapshot into a ",
            spec().name, " machine");
    fatalIf(s.config.seed != cfg.seed
                || s.config.autoClockGateIdlePmds
                       != cfg.autoClockGateIdlePmds
                || s.config.sampleDroops != cfg.sampleDroops
                || s.config.injectFaults != cfg.injectFaults
                || s.config.faultReferenceRuntime
                       != cfg.faultReferenceRuntime
                || s.config.droopRateBias != cfg.droopRateBias
                || s.config.migrationCost != cfg.migrationCost
                || s.config.enableThermal != cfg.enableThermal,
            "restoring a snapshot captured under a different "
            "MachineConfig");
    fatalIf(s.membwCeiling != membwPolicy.ceiling,
            "restoring a snapshot captured under a different "
            "bandwidth reservation");

    chipState.restoreState(s.chip);
    controlPlane.restoreState(s.slimPro);
    thermal.restoreTemperature(s.temperature);
    meter = s.meter;
    rng = s.rng;
    simTime = s.simTime;
    isHalted = s.isHalted;
    faultHook = nullptr; // hooks are wiring; callers re-arm
    // A restore may rewind time; the horizon monitors' history would
    // otherwise misread the rewind as a backwards horizon.
    hookMonitor.reset();
    idleMonitor.reset();
    nextThreadId = s.nextThreadId;
    threadSlots = s.threadSlots;
    slotOfId = s.slotOfId;
    coreOwner = s.coreOwner;
    finishedQueue = s.finishedQueue;
    busyCoreCount = s.busyCoreCount;
    busyPmdCount = s.busyPmdCount;
    pmdBusy = s.pmdBusy;
    threadsVersion = s.threadsVersion;
    busyCoreSeconds = s.busyCoreSeconds;
    idleState.restoreState(s.idle);
    lastStepPower = s.lastStepPower;
    lastStepContention = s.lastStepContention;
    lastStepUtilization = s.lastStepUtilization;
    memThrottledSeconds = s.memThrottledSeconds;
    peakThrottleFactor = s.peakMemThrottle;
    lastStepMaxThrottle = s.lastStepMaxThrottle;
    droopHist = s.droopHist;
    droopRefCycles = s.droopRefCycles;
    unsafeTime = s.unsafeTime;
    maxDeficit = s.maxDeficit;

    // The restored chip epoch and thread version can collide with
    // keys already cached on this machine: drop every stateful memo.
    // (The thermal memo slots are input-keyed pure caches and stay.)
    contentionCache.invalidate();
    powerCache.invalidate();
    membwCache.invalidate();
    coreFreqEpoch = ~std::uint64_t{0};
    vminValid = false;
}

std::unique_ptr<Machine>
Machine::clone() const
{
    auto copy = std::make_unique<Machine>(spec(), cfg);
    copy->restore(capture());
    return copy;
}

void
Machine::runUntil(Seconds t, Seconds dt)
{
    fatalIf(dt <= 0.0, "runUntil needs a positive dt");
    while (simTime + dt * 0.5 < t) {
        if (macroAdvance(t, dt) == 0)
            step(dt);
    }
}

Seconds
Machine::nextActivity(Seconds now, Seconds dt) const
{
    if (!macroEligible())
        return now; // per-step stochastic draws, or trivially halted
    // The thermal RC state needs no step of its own: its per-step
    // integration is replayed bit-exactly inside macro windows.
    Seconds next = thermal.nextActivity(now);
    const Seconds idle_next = idleState.nextTransition();
    idleMonitor.check(now, idle_next, dt, "IdleStateTracker");
    next = std::min(next, idle_next);
    if (faultHook != nullptr) {
        const Seconds hook_next = faultHook->nextActivity(now);
        hookMonitor.check(now, hook_next, dt, "FaultHook");
        next = std::min(next, hook_next);
    }
    next = std::min(next, memBwNextActivity(now, dt));
    return next;
}

Seconds
Machine::memBwNextActivity(Seconds now, Seconds dt) const
{
    // With a reservation armed, the per-thread throttle factors are
    // a pure function of the step key and shift exactly when the
    // demand set shifts; the only machine-internal shift a macro
    // window could otherwise span is a stall expiry (finishes and
    // phase boundaries already bound the window).  Quoting the
    // earliest expiry keeps the window from planning across it; the
    // value is result-neutral because the replay loop's stall-flip
    // break lands on the same step.  No HorizonMonitor here:
    // migrations legitimately create *earlier* stalls, which would
    // trip the non-decreasing check.
    if (!membwPolicy.armed())
        return horizonNever;
    Seconds next = horizonNever;
    for (const SimThread &t : threadSlots) {
        if (t.finished)
            continue;
        if (t.stallUntil > now + dt * 0.5)
            next = std::min(next, t.stallUntil);
    }
    return next;
}

Volt
Machine::currentTrueVmin() const
{
    if (vminValid && vminChipEpoch == chipState.stateEpoch()
            && vminThreadsVersion == threadsVersion) {
        return vminValue;
    }

    vminCoresScratch.clear();
    for (CoreId c = 0; c < spec().numCores; ++c)
        if (coreOwner[c] != invalidSimThread)
            vminCoresScratch.push_back(c);

    Volt result = 0.0;
    if (!vminCoresScratch.empty()) {
        Hertz fmax_busy = 0.0;
        double sens = 0.0;
        for (CoreId c : vminCoresScratch) {
            fmax_busy =
                std::max(fmax_busy, chipState.coreFrequency(c));
            const SimThread *t = findThread(coreOwner[c]);
            ECOSCHED_ASSERT(t != nullptr,
                            "core owner references unknown thread");
            sens = std::max(sens, t->vminSensitivity);
        }
        if (fmax_busy > 0.0) {
            result = vmin.trueVmin(spec().snapToLadder(fmax_busy),
                                   vminCoresScratch, sens);
        }
    }

    vminChipEpoch = chipState.stateEpoch();
    vminThreadsVersion = threadsVersion;
    vminValue = result;
    vminValid = true;
    return result;
}

} // namespace ecosched
