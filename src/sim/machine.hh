/**
 * @file
 * The Machine: a full simulated micro-server node.
 *
 * Owns the chip state, control plane (SlimPro), power/energy
 * accounting, memory system, voltage-margin and droop models, and
 * executes bound software threads in fixed time steps.  The OS layer
 * (src/os) places threads on cores and drives governors; the daemon
 * (src/core) sits on top of the OS layer.
 *
 * Hot-path design (see DESIGN.md "Simulation hot path"):
 *  - Threads live in a dense, id-ordered vector with an id->slot
 *    index; busy-core and busy-PMD counts are maintained
 *    incrementally so per-step occupancy queries never scan or
 *    allocate.
 *  - All per-step scratch (running set, memory demands, activity
 *    vector) is machine-owned and reused; steady-state stepping
 *    performs no heap allocation.
 *  - The memory-contention solve, the power-model evaluation and the
 *    true-Vmin computation are memoized behind epoch-keyed caches
 *    (chip state epoch + thread-set version + exact activity
 *    inputs), so unchanged configurations replay cached values.
 *  - runUntil() coalesces spans whose per-step state evolution is
 *    provably uniform into macro windows (macroAdvance()), replaying
 *    only the order-sensitive floating-point accumulations per step.
 *    Results are bit-identical to the plain step loop.
 */

#ifndef ECOSCHED_SIM_MACHINE_HH
#define ECOSCHED_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "idle/idle_tracker.hh"
#include "platform/chip.hh"
#include "platform/slimpro.hh"
#include "power/energy_meter.hh"
#include "power/power_model.hh"
#include "power/thermal.hh"
#include "sim/event_queue.hh"
#include "sim/memory_system.hh"
#include "sim/perf_counters.hh"
#include "sim/work_profile.hh"
#include "vmin/droop_model.hh"
#include "vmin/failure_model.hh"
#include "vmin/vmin_model.hh"

namespace ecosched {

/// Identifier of a software thread bound to the machine (1-based).
using SimThreadId = std::uint64_t;

/// Sentinel: no thread.
inline constexpr SimThreadId invalidSimThread = 0;

/// One execution phase of a thread: a profile and its share of work.
struct WorkPhase
{
    WorkProfile profile;
    Instructions instructions = 0;
};

/// Full state of one bound thread.
struct SimThread
{
    SimThreadId id = invalidSimThread;
    WorkProfile profile;          ///< current-phase characteristics
    Instructions totalWork = 0;   ///< instructions to retire
    Instructions remaining = 0;   ///< instructions left
    /// Remaining phases after the current one (front = next).
    /// Programs whose behaviour shifts between CPU- and memory-
    /// intensive regions (§VI.A case b) carry several phases.
    std::vector<WorkPhase> pendingPhases;
    Instructions phaseRemaining = 0; ///< left in the current phase
    CoreId core = 0;              ///< current core binding
    double vminSensitivity = 1.0; ///< workload Vmin sensitivity
    ThreadCounters counters;      ///< cumulative PMU counts
    bool finished = false;        ///< retired all work or failed
    RunOutcome outcome = RunOutcome::Ok; ///< how it ended
    std::uint64_t migrations = 0; ///< times migrated between cores
    Seconds stallUntil = 0.0;     ///< no progress before this time
};

/// Machine construction options.
struct MachineConfig
{
    /// Gate PMD clocks automatically when no thread runs on them.
    bool autoClockGateIdlePmds = true;

    /// Maintain the droop-magnitude histogram while stepping.
    bool sampleDroops = false;

    /**
     * Inject undervolting failures while stepping: when the supply
     * sits below the running configuration's true Vmin, failure
     * events strike threads (SDC/crash/hang) or the whole machine
     * (system crash).  Off by default — characterization uses the
     * VminCharacterizer instead.
     */
    bool injectFaults = false;

    /// Reference single-run duration used to convert per-run pfail
    /// into a failure hazard rate for fault injection.
    Seconds faultReferenceRuntime = 10.0;

    /// Droop-rate workload bias applied while sampling (Figure 6).
    double droopRateBias = 1.0;

    /// Cache-warmup stall a thread pays after each migration.
    Seconds migrationCost = units::us(200);

    /// Model die temperature and its effect on leakage power.
    bool enableThermal = true;

    /// Seed for all machine-internal randomness.
    std::uint64_t seed = 1;
};

/**
 * Deep copy of a Machine's full mutable state (snapshot-and-branch
 * sweep execution).  Everything a step can read or write is carried:
 * chip V/F state, control-plane log and counters, die temperature,
 * energy accounting, the RNG stream position, the flat thread
 * storage with its occupancy indices, and all telemetry
 * accumulators.  Construction identity — the chip spec, the
 * calibrated models (including the seed-derived Vmin offsets) and
 * the MachineConfig — is *not* state: a snapshot may only be
 * restored into a machine built with the same spec and config,
 * which restore() enforces.  Non-owning hooks (the fault hook) are
 * wiring, not state, and are cleared by restore(); callers re-arm
 * them afterwards, exactly as they do after construction.
 */
struct MachineSnapshot
{
    // Restore-target identity check.
    std::string chipName;
    MachineConfig config;

    Chip::State chip;
    SlimPro::State slimPro;
    double temperature = 0.0;
    EnergyMeter meter;
    Rng rng;

    Seconds simTime = 0.0;
    bool isHalted = false;
    SimThreadId nextThreadId = 1;
    std::vector<SimThread> threadSlots;
    std::vector<std::uint32_t> slotOfId;
    std::vector<SimThreadId> coreOwner;
    std::vector<SimThreadId> finishedQueue;
    std::uint32_t busyCoreCount = 0;
    std::uint32_t busyPmdCount = 0;
    std::vector<std::uint8_t> pmdBusy;
    std::uint64_t threadsVersion = 0;
    Seconds busyCoreSeconds = 0.0;
    IdleStateTracker::State idle;

    PowerBreakdown lastStepPower;
    double lastStepContention = 1.0;
    double lastStepUtilization = 0.0;
    // Snapshot identity: the chip name does not distinguish a
    // reservation-armed chip (withMemBw keeps the name), so the
    // ceiling is carried and checked explicitly.
    BytesPerSecond membwCeiling = 0.0;
    Seconds memThrottledSeconds = 0.0;
    double peakMemThrottle = 1.0;
    double lastStepMaxThrottle = 1.0;
    Histogram droopHist{0.0, 1.0, 1};
    Cycles droopRefCycles = 0;
    Seconds unsafeTime = 0.0;
    Volt maxDeficit = 0.0;
};

/**
 * A simulated node.  Step-based: call step(dt) (or run()) to advance
 * virtual time; all bound threads execute concurrently under the
 * shared memory system and the current V/F state.
 */
class Machine
{
  public:
    /// Build a machine with calibrated models for the given chip.
    explicit Machine(const ChipSpec &spec,
                     MachineConfig config = MachineConfig{});

    /**
     * Stamp a machine out of a pristine @p prototype: the calibrated
     * models (power, memory, Vmin surface, droop, failure, thermal)
     * are copied instead of re-derived from the spec, the per-sample
     * Vmin offsets are re-seeded from config.seed, and all mutable
     * state starts fresh.  Bit-identical to
     * Machine(prototype.spec(), config) — fleet construction stamps
     * thousands of chip samples from one calibrated prototype.  The
     * prototype must be unstepped and thread-free (enforced); its
     * chip/control-plane state is NOT inherited.
     */
    Machine(const Machine &prototype, const MachineConfig &config);

    // --- component access -------------------------------------------------
    const ChipSpec &spec() const { return chipState.spec(); }
    Chip &chip() { return chipState; }
    const Chip &chip() const { return chipState; }
    SlimPro &slimPro() { return controlPlane; }
    const SlimPro &slimPro() const { return controlPlane; }
    const PowerModel &powerModel() const { return power; }
    const MemorySystem &memorySystem() const { return memory; }
    const VminModel &vminModel() const { return vmin; }
    const DroopModel &droopModel() const { return droop; }
    const FailureModel &failureModel() const { return failures; }
    const MachineConfig &config() const { return cfg; }
    const ThermalModel &thermalModel() const { return thermal; }
    EnergyMeter &energyMeter() { return meter; }
    const EnergyMeter &energyMeter() const { return meter; }
    /// Hardware idle-state tracker (inert when the chip spec carries
    /// no c-state table).
    const IdleStateTracker &idleTracker() const { return idleState; }

    // --- thread management -------------------------------------------------
    /**
     * Bind a new thread to an idle core.
     * @throws FatalError when the core is occupied or out of range.
     */
    SimThreadId startThread(const WorkProfile &profile,
                            Instructions work, CoreId core,
                            double vmin_sensitivity = 1.0);

    /**
     * Bind a thread executing several phases in order (programs
     * that alternate CPU- and memory-intensive regions).
     * @throws FatalError when phases are empty or any has no work.
     */
    SimThreadId startThreadPhased(const std::vector<WorkPhase>
                                      &phases,
                                  CoreId core,
                                  double vmin_sensitivity = 1.0);

    /// Remove a thread (finished or not).
    void stopThread(SimThreadId tid);

    /// Move a thread to another (idle) core.
    void migrateThread(SimThreadId tid, CoreId core);

    /// Exchange the cores of two running threads atomically (both
    /// pay the migration warm-up).  Used to break placement cycles
    /// on a fully occupied chip.
    void swapThreads(SimThreadId a, SimThreadId b);

    /// Thread record. @throws FatalError for unknown ids.
    const SimThread &thread(SimThreadId tid) const;

    /// Thread occupying a core, or invalidSimThread.
    SimThreadId threadOnCore(CoreId core) const;

    /// Whether a core currently executes an unfinished thread.
    bool coreBusy(CoreId core) const;

    /// Ids of all bound, unfinished threads.
    std::vector<SimThreadId> runningThreads() const;

    /// Cores of all bound, unfinished threads.
    std::vector<CoreId> busyCores() const;

    /// Number of busy cores (incremental count; never scans).
    std::uint32_t numBusyCores() const { return busyCoreCount; }

    /// PMDs hosting at least one busy core.
    std::uint32_t utilizedPmds() const { return busyPmdCount; }

    /**
     * Remove and return all finished threads (completed or failed),
     * preserving their final counters and outcome.
     */
    std::vector<SimThread> collectFinished();

    // --- execution -----------------------------------------------------
    /// Advance virtual time by @p dt (> 0).
    void step(Seconds dt);

    /// Step repeatedly (granularity @p dt) until virtual time @p t.
    /// Uses macroAdvance() windows where legal; bit-identical to the
    /// plain step loop.
    void runUntil(Seconds t, Seconds dt);

    /**
     * Per-step callbacks a caller (the OS layer) interleaves with
     * macro-stepped execution.  beforeStep() runs before each step
     * is committed and vetoes the window (return false) when the
     * caller's own step work would not be a no-op; afterStep() runs
     * after each committed step (e.g. utilization EWMA replay).
     */
    struct MacroStepHooks
    {
        virtual ~MacroStepHooks() = default;
        virtual bool beforeStep() = 0;
        virtual void afterStep() = 0;
    };

    /**
     * External fault-injection hook (src/inject).  onStep() runs at
     * the end of every committed plain step and may strike the
     * machine through injectSystemCrash()/injectThreadFault().
     * nextActivity() reports the earliest virtual time at which the
     * hook needs per-step execution; macroAdvance() clamps its
     * horizon to it, so a plan with no pending faults leaves the
     * macro-stepped hot path (and its bit-exact results) untouched.
     * nextActivity() must be non-decreasing in @p now.
     */
    class FaultHook
    {
      public:
        virtual ~FaultHook() = default;
        /// Earliest time per-step execution is needed (infinity:
        /// never; <= now: right now).
        virtual Seconds nextActivity(Seconds now) const = 0;
        /// Called once per committed plain step, after execution and
        /// power integration, before time advances past the step.
        virtual void onStep(Machine &machine, Seconds dt) = 0;
    };

    /// Install (or clear, with nullptr) the fault-injection hook.
    /// Non-owning; the hook must outlive the machine or be cleared.
    void setFaultHook(FaultHook *hook) { faultHook = hook; }

    /**
     * Halt the whole machine, retiring every unfinished thread with
     * a SystemCrash outcome.  The primitive behind both stochastic
     * undervolting crashes and scripted injection; idempotent.
     */
    void injectSystemCrash();

    /**
     * Strike one running thread, picked uniformly via @p strike_rng,
     * with a failure @p outcome.  SDC marks the victim but lets it
     * run to completion; other outcomes retire it immediately, and
     * SystemCrash halts the whole machine.
     * @return the victim's id (invalidSimThread when nothing runs).
     */
    SimThreadId injectThreadFault(RunOutcome outcome,
                                  Rng &strike_rng);

    /// Whether macro windows are legal at all under the current
    /// config and state (droop sampling and fault injection are
    /// per-step stochastic; a halted machine takes trivial steps).
    bool macroEligible() const
    {
        return !cfg.sampleDroops && !cfg.injectFaults && !isHalted;
    }

    /**
     * Unified machine event horizon: a conservative lower bound on
     * the earliest virtual time at which per-step execution is
     * needed, folding every machine-owned activity source — the
     * fault hook's next event, pending IdleStateTracker c-state
     * promotions and the thermal RC horizon (never: temperature
     * integrates bit-exactly inside macro windows).  Returns @p now
     * when the machine is not macroEligible() — stochastic droop or
     * fault draws (and a halted machine's trivial steps) are
     * per-step activity by definition.  @p dt is the step the caller
     * advances with; Debug builds use it as the tolerance when
     * checking each source against the horizon contract
     * (event_queue.hh).  Never later than the true first activity.
     */
    Seconds nextActivity(Seconds now, Seconds dt) const;

    /**
     * Try to advance toward time @p t in one uniform macro window of
     * fixed-@p dt steps, committing bit-identical state to the
     * equivalent step(dt) sequence.  A window only covers steps
     * whose inputs are provably constant: no thread finishes,
     * crosses a phase boundary, or leaves a migration stall inside
     * it, and clock gating is already settled.  Mutates nothing when
     * it returns 0 — the caller must then take one plain step().
     *
     * @return number of steps committed (0: fall back to step()).
     */
    std::uint64_t macroAdvance(Seconds t, Seconds dt,
                               MacroStepHooks *hooks = nullptr);

    // --- snapshot / clone ----------------------------------------------
    /// Deep-copy the full mutable state (see MachineSnapshot).
    MachineSnapshot capture() const;

    /**
     * Restore a snapshot captured from a machine with the same chip
     * spec and MachineConfig (enforced; the calibrated models are
     * construction identity and are reused, not copied).  All
     * epoch-keyed hot-path caches are invalidated — the restored
     * epochs may collide with stale entries — and the fault hook is
     * cleared: hooks are wiring, re-armed by the caller.  After
     * restore() the machine is bit-identical to the captured one.
     */
    void restore(const MachineSnapshot &snapshot);

    /// Fresh machine with identical spec/config, restored to this
    /// machine's current state (the fault hook is not cloned).
    std::unique_ptr<Machine> clone() const;

    /// Current virtual time.
    Seconds now() const { return simTime; }

    /// Whether a system crash halted the machine (fault injection).
    bool halted() const { return isHalted; }

    // --- telemetry -----------------------------------------------------
    /// Instantaneous power of the last completed step.
    const PowerBreakdown &lastPower() const { return lastStepPower; }

    /// DRAM contention factor of the last completed step.
    double lastContention() const { return lastStepContention; }

    /// Mean busy-core utilization over the last completed step.
    double lastUtilization() const { return lastStepUtilization; }

    /// Current die temperature [°C] (ambient when thermal modelling
    /// is disabled).
    double temperature() const { return thermal.temperature(); }

    /// Cumulative busy-core time: the integral of numBusyCores()
    /// over all completed steps [core-seconds].
    Seconds busyCoreTime() const { return busyCoreSeconds; }

    /// Cumulative droop-magnitude histogram [mV] (when sampling).
    const Histogram &droopHistogram() const { return droopHist; }

    /// Cumulative cycles accrued at the highest active frequency
    /// (normalization basis for droop rates per million cycles).
    Cycles droopReferenceCycles() const { return droopRefCycles; }

    /// Total time executed with the supply below the running
    /// configuration's true Vmin (tracked when injecting faults).
    Seconds unsafeExposure() const { return unsafeTime; }

    /// Deepest observed supply deficit below the true Vmin.
    Volt maxUnsafeDeficit() const { return maxDeficit; }

    /**
     * Largest per-thread MEMBW throttle factor of the last completed
     * step (1 when no thread was throttled or no reservation is
     * armed).
     */
    double lastMaxMemThrottle() const { return lastStepMaxThrottle; }

    /// Cumulative throttled core-time: the integral of the number of
    /// bandwidth-throttled threads over all completed steps
    /// [core-seconds].  Always 0 without a reservation.
    Seconds memThrottledTime() const { return memThrottledSeconds; }

    /// Largest MEMBW throttle factor observed since construction.
    double peakMemThrottle() const { return peakThrottleFactor; }

    /**
     * True Vmin of the configuration currently executing (highest
     * active frequency, busy cores, most sensitive thread).  Returns
     * 0 when idle.  Memoized on (chip state epoch, thread-set
     * version).
     */
    Volt currentTrueVmin() const;

  private:
    /// One running thread's inputs for the current step/window.
    struct RunningRef
    {
        std::uint32_t slot;
        double apkiScale;
        Hertz freq;
    };

    /// Per-thread steady-state increments of one macro-window step.
    struct UniformRun
    {
        std::uint32_t slot;
        Seconds busy;              ///< busy seconds per step
        Instructions retired;      ///< instructions per step
        Cycles cyclesInc;          ///< cycles per step
        std::uint64_t l3Inc;       ///< L3 accesses per step
        std::uint64_t dramInc;     ///< DRAM accesses per step
    };

    static constexpr std::uint32_t noSlot = 0xffffffffu;

    SimThread *findThread(SimThreadId tid);
    const SimThread *findThread(SimThreadId tid) const;
    SimThread &threadRef(SimThreadId tid);
    /// Mark a core busy; returns the c-state wake stall its new
    /// thread must pay (0 without c-states).
    Seconds occupyCore(CoreId core);
    void releaseCore(CoreId core);
    /// Mark an unfinished thread finished and free its core.
    void retireThread(SimThread &t);
    /// Remove one slot, keeping the id->slot index dense.
    void eraseSlot(std::uint32_t slot);
    void applyAutoClockGating();
    /// Whether applyAutoClockGating() would change any gate.
    bool gatingSettled() const;
    void injectFaultsForStep(Seconds dt);
    /// Arm the MEMBW reservation from the spec (or shadow mode).
    void initMemBwPolicy();
    /// Earliest time the armed reservation's demand set shifts (the
    /// first stall expiry); horizonNever when unarmed or unstalled.
    Seconds memBwNextActivity(Seconds now, Seconds dt) const;
    /// Per-core frequencies, snapshotted per chip state epoch (the
    /// per-core Chip query is an out-of-line call the gather loop
    /// would otherwise pay once per busy core per step).
    const Hertz *coreFrequencies();

    Chip chipState;
    SlimPro controlPlane;
    PowerModel power;
    MemorySystem memory;
    VminModel vmin;
    DroopModel droop;
    FailureModel failures;
    ThermalModel thermal;
    EnergyMeter meter;
    MachineConfig cfg;
    Rng rng;

    Seconds simTime = 0.0;
    bool isHalted = false;
    FaultHook *faultHook = nullptr;
    /// Debug-build horizon-contract checkers (event_queue.hh); the
    /// query they observe is const, hence mutable.
    mutable HorizonMonitor hookMonitor;
    mutable HorizonMonitor idleMonitor;
    SimThreadId nextThreadId = 1;
    /// Bound threads, dense and id-ascending (ids are monotonic and
    /// appended, so insertion order is id order).
    std::vector<SimThread> threadSlots;
    /// (id - 1) -> slot in threadSlots, noSlot once removed.
    std::vector<std::uint32_t> slotOfId;
    std::vector<SimThreadId> coreOwner; ///< per core, 0 when idle
    std::vector<SimThreadId> finishedQueue;

    /// Incremental occupancy (maintained on every binding change).
    std::uint32_t busyCoreCount = 0;
    std::uint32_t busyPmdCount = 0;
    std::vector<std::uint8_t> pmdBusy; ///< busy cores per PMD
    /// Bumped whenever the thread set, a core binding, or a running
    /// profile (phase switch) changes; keys the contention, power
    /// and true-Vmin caches together with the chip state epoch.
    std::uint64_t threadsVersion = 0;
    Seconds busyCoreSeconds = 0.0;
    IdleStateTracker idleState;

    /// coreFrequencies() snapshot (sentinel epoch: first use fills).
    std::vector<Hertz> coreFreqCache;
    std::uint64_t coreFreqEpoch = ~std::uint64_t{0};

    // Reusable per-step scratch (zero steady-state allocation).
    std::vector<RunningRef> runningScratch;
    std::vector<MemoryDemand> demandScratch;
    std::vector<CoreActivity> activityScratch;
    std::vector<std::uint32_t> stalledScratch; ///< stalled slots
    std::vector<UniformRun> uniformScratch;

    ContentionCache contentionCache;
    PowerCache powerCache;
    /// Armed from ChipSpec::membw (or, on ceiling-free chips, from
    /// ECOSCHED_MEMBW_SHADOW with an effectively infinite ceiling);
    /// unarmed ⇒ the whole MEMBW path is skipped.
    MemBwPolicy membwPolicy;
    MemBwCache membwCache;

    // currentTrueVmin() memo (logically const: caching only).
    mutable std::vector<CoreId> vminCoresScratch;
    mutable std::uint64_t vminChipEpoch = 0;
    mutable std::uint64_t vminThreadsVersion = 0;
    mutable Volt vminValue = 0.0;
    mutable bool vminValid = false;

    PowerBreakdown lastStepPower;
    double lastStepContention = 1.0;
    double lastStepUtilization = 0.0;
    Seconds memThrottledSeconds = 0.0;
    double peakThrottleFactor = 1.0;
    double lastStepMaxThrottle = 1.0;
    Histogram droopHist;
    Cycles droopRefCycles = 0;
    Seconds unsafeTime = 0.0;
    Volt maxDeficit = 0.0;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_MACHINE_HH
