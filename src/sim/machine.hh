/**
 * @file
 * The Machine: a full simulated micro-server node.
 *
 * Owns the chip state, control plane (SlimPro), power/energy
 * accounting, memory system, voltage-margin and droop models, and
 * executes bound software threads in fixed time steps.  The OS layer
 * (src/os) places threads on cores and drives governors; the daemon
 * (src/core) sits on top of the OS layer.
 */

#ifndef ECOSCHED_SIM_MACHINE_HH
#define ECOSCHED_SIM_MACHINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "platform/chip.hh"
#include "platform/slimpro.hh"
#include "power/energy_meter.hh"
#include "power/power_model.hh"
#include "power/thermal.hh"
#include "sim/memory_system.hh"
#include "sim/perf_counters.hh"
#include "sim/work_profile.hh"
#include "vmin/droop_model.hh"
#include "vmin/failure_model.hh"
#include "vmin/vmin_model.hh"

namespace ecosched {

/// Identifier of a software thread bound to the machine (1-based).
using SimThreadId = std::uint64_t;

/// Sentinel: no thread.
inline constexpr SimThreadId invalidSimThread = 0;

/// One execution phase of a thread: a profile and its share of work.
struct WorkPhase
{
    WorkProfile profile;
    Instructions instructions = 0;
};

/// Full state of one bound thread.
struct SimThread
{
    SimThreadId id = invalidSimThread;
    WorkProfile profile;          ///< current-phase characteristics
    Instructions totalWork = 0;   ///< instructions to retire
    Instructions remaining = 0;   ///< instructions left
    /// Remaining phases after the current one (front = next).
    /// Programs whose behaviour shifts between CPU- and memory-
    /// intensive regions (§VI.A case b) carry several phases.
    std::vector<WorkPhase> pendingPhases;
    Instructions phaseRemaining = 0; ///< left in the current phase
    CoreId core = 0;              ///< current core binding
    double vminSensitivity = 1.0; ///< workload Vmin sensitivity
    ThreadCounters counters;      ///< cumulative PMU counts
    bool finished = false;        ///< retired all work or failed
    RunOutcome outcome = RunOutcome::Ok; ///< how it ended
    std::uint64_t migrations = 0; ///< times migrated between cores
    Seconds stallUntil = 0.0;     ///< no progress before this time
};

/// Machine construction options.
struct MachineConfig
{
    /// Gate PMD clocks automatically when no thread runs on them.
    bool autoClockGateIdlePmds = true;

    /// Maintain the droop-magnitude histogram while stepping.
    bool sampleDroops = false;

    /**
     * Inject undervolting failures while stepping: when the supply
     * sits below the running configuration's true Vmin, failure
     * events strike threads (SDC/crash/hang) or the whole machine
     * (system crash).  Off by default — characterization uses the
     * VminCharacterizer instead.
     */
    bool injectFaults = false;

    /// Reference single-run duration used to convert per-run pfail
    /// into a failure hazard rate for fault injection.
    Seconds faultReferenceRuntime = 10.0;

    /// Droop-rate workload bias applied while sampling (Figure 6).
    double droopRateBias = 1.0;

    /// Cache-warmup stall a thread pays after each migration.
    Seconds migrationCost = units::us(200);

    /// Model die temperature and its effect on leakage power.
    bool enableThermal = true;

    /// Seed for all machine-internal randomness.
    std::uint64_t seed = 1;
};

/**
 * A simulated node.  Step-based: call step(dt) (or run()) to advance
 * virtual time; all bound threads execute concurrently under the
 * shared memory system and the current V/F state.
 */
class Machine
{
  public:
    /// Build a machine with calibrated models for the given chip.
    explicit Machine(const ChipSpec &spec,
                     MachineConfig config = MachineConfig{});

    // --- component access -------------------------------------------------
    const ChipSpec &spec() const { return chipState.spec(); }
    Chip &chip() { return chipState; }
    const Chip &chip() const { return chipState; }
    SlimPro &slimPro() { return controlPlane; }
    const SlimPro &slimPro() const { return controlPlane; }
    const PowerModel &powerModel() const { return power; }
    const MemorySystem &memorySystem() const { return memory; }
    const VminModel &vminModel() const { return vmin; }
    const DroopModel &droopModel() const { return droop; }
    const FailureModel &failureModel() const { return failures; }
    const ThermalModel &thermalModel() const { return thermal; }
    EnergyMeter &energyMeter() { return meter; }
    const EnergyMeter &energyMeter() const { return meter; }

    // --- thread management -------------------------------------------------
    /**
     * Bind a new thread to an idle core.
     * @throws FatalError when the core is occupied or out of range.
     */
    SimThreadId startThread(const WorkProfile &profile,
                            Instructions work, CoreId core,
                            double vmin_sensitivity = 1.0);

    /**
     * Bind a thread executing several phases in order (programs
     * that alternate CPU- and memory-intensive regions).
     * @throws FatalError when phases are empty or any has no work.
     */
    SimThreadId startThreadPhased(const std::vector<WorkPhase>
                                      &phases,
                                  CoreId core,
                                  double vmin_sensitivity = 1.0);

    /// Remove a thread (finished or not).
    void stopThread(SimThreadId tid);

    /// Move a thread to another (idle) core.
    void migrateThread(SimThreadId tid, CoreId core);

    /// Exchange the cores of two running threads atomically (both
    /// pay the migration warm-up).  Used to break placement cycles
    /// on a fully occupied chip.
    void swapThreads(SimThreadId a, SimThreadId b);

    /// Thread record. @throws FatalError for unknown ids.
    const SimThread &thread(SimThreadId tid) const;

    /// Thread occupying a core, or invalidSimThread.
    SimThreadId threadOnCore(CoreId core) const;

    /// Whether a core currently executes an unfinished thread.
    bool coreBusy(CoreId core) const;

    /// Ids of all bound, unfinished threads.
    std::vector<SimThreadId> runningThreads() const;

    /// Cores of all bound, unfinished threads.
    std::vector<CoreId> busyCores() const;

    /// PMDs hosting at least one busy core.
    std::uint32_t utilizedPmds() const;

    /**
     * Remove and return all finished threads (completed or failed),
     * preserving their final counters and outcome.
     */
    std::vector<SimThread> collectFinished();

    // --- execution -----------------------------------------------------
    /// Advance virtual time by @p dt (> 0).
    void step(Seconds dt);

    /// Step repeatedly (granularity @p dt) until virtual time @p t.
    void runUntil(Seconds t, Seconds dt);

    /// Current virtual time.
    Seconds now() const { return simTime; }

    /// Whether a system crash halted the machine (fault injection).
    bool halted() const { return isHalted; }

    // --- telemetry -----------------------------------------------------
    /// Instantaneous power of the last completed step.
    const PowerBreakdown &lastPower() const { return lastStepPower; }

    /// DRAM contention factor of the last completed step.
    double lastContention() const { return lastStepContention; }

    /// Mean busy-core utilization over the last completed step.
    double lastUtilization() const { return lastStepUtilization; }

    /// Current die temperature [°C] (ambient when thermal modelling
    /// is disabled).
    double temperature() const { return thermal.temperature(); }

    /// Cumulative droop-magnitude histogram [mV] (when sampling).
    const Histogram &droopHistogram() const { return droopHist; }

    /// Cumulative cycles accrued at the highest active frequency
    /// (normalization basis for droop rates per million cycles).
    Cycles droopReferenceCycles() const { return droopRefCycles; }

    /// Total time executed with the supply below the running
    /// configuration's true Vmin (tracked when injecting faults).
    Seconds unsafeExposure() const { return unsafeTime; }

    /// Deepest observed supply deficit below the true Vmin.
    Volt maxUnsafeDeficit() const { return maxDeficit; }

    /**
     * True Vmin of the configuration currently executing (highest
     * active frequency, busy cores, most sensitive thread).  Returns
     * 0 when idle.
     */
    Volt currentTrueVmin() const;

  private:
    SimThread &threadRef(SimThreadId tid);
    void applyAutoClockGating();
    void injectFaultsForStep(Seconds dt);

    Chip chipState;
    SlimPro controlPlane;
    PowerModel power;
    MemorySystem memory;
    VminModel vmin;
    DroopModel droop;
    FailureModel failures;
    ThermalModel thermal;
    EnergyMeter meter;
    MachineConfig cfg;
    Rng rng;

    Seconds simTime = 0.0;
    bool isHalted = false;
    SimThreadId nextThreadId = 1;
    std::map<SimThreadId, SimThread> threads;
    std::vector<SimThreadId> coreOwner; ///< per core, 0 when idle
    std::vector<SimThreadId> finishedQueue;

    PowerBreakdown lastStepPower;
    double lastStepContention = 1.0;
    double lastStepUtilization = 0.0;
    Histogram droopHist;
    Cycles droopRefCycles = 0;
    Seconds unsafeTime = 0.0;
    Volt maxDeficit = 0.0;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_MACHINE_HH
