#include "sim/event_queue.hh"

#include <atomic>
#include <cstdlib>

namespace ecosched {

namespace {

/// -1: follow the environment; 0/1: forced by setEventPathOverride.
std::atomic<int> pathOverride{-1};

bool
envEventPath()
{
    // ECOSCHED_EVENT_PATH=0 selects the per-step reference loops;
    // unset or any other value keeps the event engine on.
    const char *env = std::getenv("ECOSCHED_EVENT_PATH");
    return env == nullptr || *env == '\0' || *env != '0';
}

} // namespace

bool
eventPathEnabled()
{
    const int forced = pathOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    // Not cached: the golden env variants flip the variable between
    // runs of the same binary image, and a getenv per run/segment is
    // nowhere near any hot path.
    return envEventPath();
}

void
setEventPathOverride(int enabled)
{
    pathOverride.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                       std::memory_order_relaxed);
}

} // namespace ecosched
