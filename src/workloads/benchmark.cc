#include "workloads/benchmark.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace ecosched {

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Npb:         return "NPB";
      case Suite::Parsec:      return "PARSEC";
      case Suite::SpecCpu2006: return "SPEC CPU2006";
    }
    return "?";
}

Instructions
BenchmarkProfile::perThreadWork(std::uint32_t threads) const
{
    fatalIf(threads == 0, name, ": thread count must be positive");
    if (!parallel || threads == 1)
        return workInstructions;
    const double n = static_cast<double>(threads);
    const double fraction =
        serialFraction + (1.0 - serialFraction) / n;
    const double w =
        static_cast<double>(workInstructions) * fraction;
    return static_cast<Instructions>(std::llround(std::max(1.0, w)));
}

std::vector<WorkPhase>
BenchmarkProfile::buildPhases(Instructions per_thread) const
{
    fatalIf(per_thread == 0, name, ": no work to phase");
    if (phases.empty())
        return {{work, per_thread}};

    std::vector<WorkPhase> out;
    Instructions assigned = 0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        Instructions slice;
        if (i + 1 == phases.size()) {
            slice = per_thread - assigned; // absorb rounding
        } else {
            slice = static_cast<Instructions>(
                std::llround(static_cast<double>(per_thread)
                             * phases[i].workFraction));
            slice = std::max<Instructions>(slice, 1);
        }
        if (slice > per_thread - assigned)
            slice = per_thread - assigned;
        if (slice == 0)
            continue;
        out.push_back({phases[i].work, slice});
        assigned += slice;
    }
    ECOSCHED_ASSERT(!out.empty() && assigned == per_thread,
                    "phase slicing lost work");
    return out;
}

std::uint64_t
BenchmarkProfile::hash() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : name) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
BenchmarkProfile::validate() const
{
    fatalIf(name.empty(), "benchmark needs a name");
    work.validate();
    fatalIf(serialFraction < 0.0 || serialFraction >= 1.0,
            name, ": serialFraction must be in [0, 1)");
    fatalIf(!parallel && serialFraction != 0.0,
            name, ": single-thread programs have no serial fraction");
    fatalIf(workInstructions == 0,
            name, ": workInstructions must be positive");
    fatalIf(vminSensitivity < 0.0 || vminSensitivity > 1.0,
            name, ": vminSensitivity must be in [0, 1]");
    if (!phases.empty()) {
        double total = 0.0;
        for (const auto &ph : phases) {
            fatalIf(ph.workFraction <= 0.0 || ph.workFraction > 1.0,
                    name, ": phase fractions must be in (0, 1]");
            ph.work.validate();
            total += ph.workFraction;
        }
        fatalIf(std::fabs(total - 1.0) > 1e-6,
                name, ": phase fractions sum to ", total,
                ", expected 1");
    }
}

} // namespace ecosched
