#include "workloads/catalog.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hh"
#include "sim/memory_system.hh"

namespace ecosched {

namespace {

/**
 * Calibration row.  Rather than hand-picking raw microarchitectural
 * numbers, each benchmark is specified by the observable targets the
 * paper reports, measured single-threaded at the X-Gene 3 reference
 * point (3 GHz, uncontended):
 *
 *  - rateTarget: L3C accesses per million cycles (Figure 9; the
 *    classification metric, threshold 3000);
 *  - coreShare:  fraction of execution time spent in the core
 *    (pipeline + L1/L2) rather than stalled on L3/DRAM.  This *is*
 *    the relative slowdown of halving the clock, so it encodes the
 *    frequency tolerance of Figures 11/12: CPU-intensive programs
 *    have coreShare near 1, the most memory-intensive near 0.1;
 *  - dramFraction: share of L3 accesses that miss to DRAM
 *    (bandwidth demand — drives the Figure 8 contention slowdowns).
 *
 * The constructor solves for l3Apki / dramApki / mlp reproducing
 * those targets under the MemorySystem timing model.
 */
struct Row
{
    const char *name;
    Suite suite;
    bool characterized;
    double cpi;           ///< core CPI (no L3/DRAM stalls)
    double rateTarget;    ///< L3C per 1M cycles @ 3 GHz
    double coreShare;     ///< core-time fraction @ 3 GHz
    double dramFraction;  ///< DRAM misses / L3 accesses (preference)
    double switching;     ///< core activity factor
    double l2Penalty;     ///< shared-L2 traffic inflation
    double serialFraction;///< Amdahl (parallel programs only)
    double singleSeconds; ///< single-thread runtime @ 3 GHz
    double vminSensitivity;
};

constexpr Suite NPB = Suite::Npb;
constexpr Suite PAR = Suite::Parsec;
constexpr Suite SPC = Suite::SpecCpu2006;

// Reference point for the calibration targets (X-Gene 3).
constexpr double refFreq = 3.0e9;
constexpr double refL3Ns = 30.0;
constexpr double refDramNs = 120.0;
constexpr double minMlp = 1.5;
constexpr double maxMlp = 8.0;

// name suite char  cpi  rate  cShare dramF  sw   l2p  serial  sec  sens
const Row rows[] = {
    // --- NPB v3.3.1 (parallel, characterized) ----------------------
    {"CG", NPB, true, 1.00, 13000, 0.10, 0.80, 0.88, 1.30, 0.020, 600, 0.95},
    {"EP", NPB, true, 0.85, 250, 0.97, 0.10, 1.20, 1.00, 0.002, 400, 0.60},
    {"FT", NPB, true, 0.95, 12000, 0.11, 0.75, 0.88, 1.30, 0.015, 550, 1.00},
    {"IS", NPB, true, 0.80, 5000, 0.22, 0.55, 0.90, 1.20, 0.030, 180, 0.70},
    {"LU", NPB, true, 0.90, 2500, 0.72, 0.30, 1.00, 1.10, 0.025, 350, 0.80},
    {"MG", NPB, true, 0.85, 5500, 0.22, 0.55, 0.90, 1.25, 0.020, 300, 0.75},
    // --- PARSEC v3.0 (parallel, characterized) ---------------------
    {"swaptions", PAR, true,
     0.80, 600, 0.96, 0.10, 1.25, 1.00, 0.004, 320, 0.65},
    {"blackscholes", PAR, true,
     0.78, 900, 0.95, 0.10, 1.20, 1.00, 0.005, 300, 0.55},
    {"fluidanimate", PAR, true,
     0.95, 2200, 0.75, 0.30, 1.00, 1.15, 0.030, 380, 0.85},
    {"canneal", PAR, true,
     1.20, 5200, 0.22, 0.45, 0.90, 1.30, 0.040, 300, 0.90},
    {"bodytrack", PAR, true,
     0.95, 1700, 0.85, 0.25, 1.10, 1.05, 0.035, 330, 0.70},
    {"dedup", PAR, true,
     1.00, 2400, 0.72, 0.35, 0.95, 1.20, 0.050, 280, 0.75},
    // --- SPEC CPU2006, characterization subset (13) ----------------
    {"perlbench", SPC, true,
     1.05, 1800, 0.84, 0.25, 1.05, 1.05, 0.0, 140, 0.70},
    {"bzip2", SPC, true,
     1.00, 2300, 0.75, 0.30, 0.95, 1.15, 0.0, 130, 0.80},
    {"gcc", SPC, true,
     1.10, 2250, 0.70, 0.30, 0.90, 1.20, 0.0, 120, 0.85},
    {"mcf", SPC, true,
     1.30, 8000, 0.16, 0.50, 0.85, 1.28, 0.0, 260, 0.90},
    {"milc", SPC, true,
     1.00, 10000, 0.14, 0.70, 0.88, 1.30, 0.0, 280, 0.95},
    {"namd", SPC, true,
     0.75, 400, 0.97, 0.10, 1.30, 1.00, 0.0, 170, 0.60},
    {"gobmk", SPC, true,
     1.15, 1400, 0.88, 0.25, 1.05, 1.05, 0.0, 150, 0.65},
    {"soplex", SPC, true,
     1.00, 4200, 0.24, 0.45, 0.90, 1.25, 0.0, 220, 0.85},
    {"povray", SPC, true,
     0.90, 450, 0.96, 0.10, 1.25, 1.00, 0.0, 160, 0.55},
    {"hmmer", SPC, true,
     0.95, 1000, 0.93, 0.20, 1.15, 1.00, 0.0, 150, 0.60},
    {"sjeng", SPC, true,
     1.10, 1200, 0.90, 0.25, 1.05, 1.05, 0.0, 155, 0.70},
    {"libquantum", SPC, true,
     0.80, 9000, 0.15, 0.70, 0.88, 1.28, 0.0, 230, 0.90},
    {"lbm", SPC, true,
     0.90, 11000, 0.12, 0.80, 0.85, 1.32, 0.0, 290, 1.00},
    // --- SPEC CPU2006, rest of the generator pool (16) -------------
    {"h264ref", SPC, false,
     0.90, 1500, 0.88, 0.20, 1.15, 1.05, 0.0, 170, 0.65},
    {"omnetpp", SPC, false,
     1.25, 4500, 0.22, 0.45, 0.88, 1.30, 0.0, 210, 0.85},
    {"astar", SPC, false,
     1.10, 2400, 0.65, 0.35, 0.90, 1.20, 0.0, 160, 0.75},
    {"xalancbmk", SPC, false,
     1.15, 3800, 0.25, 0.40, 0.90, 1.25, 0.0, 190, 0.80},
    {"bwaves", SPC, false,
     0.95, 6500, 0.20, 0.60, 0.88, 1.35, 0.0, 250, 0.90},
    {"gamess", SPC, false,
     0.85, 550, 0.96, 0.10, 1.25, 1.00, 0.0, 175, 0.55},
    {"zeusmp", SPC, false,
     1.00, 2350, 0.68, 0.35, 0.95, 1.15, 0.0, 165, 0.75},
    {"gromacs", SPC, false,
     0.80, 800, 0.94, 0.15, 1.20, 1.00, 0.0, 160, 0.60},
    {"cactusADM", SPC, false,
     1.05, 4800, 0.24, 0.50, 0.90, 1.30, 0.0, 230, 0.85},
    {"leslie3d", SPC, false,
     1.00, 7000, 0.20, 0.60, 0.88, 1.35, 0.0, 240, 0.90},
    {"dealII", SPC, false,
     0.95, 2000, 0.80, 0.25, 1.05, 1.10, 0.0, 150, 0.70},
    {"calculix", SPC, false,
     0.90, 900, 0.93, 0.15, 1.15, 1.00, 0.0, 160, 0.60},
    {"GemsFDTD", SPC, false,
     1.00, 7500, 0.18, 0.60, 0.88, 1.35, 0.0, 250, 0.95},
    {"tonto", SPC, false,
     0.95, 1300, 0.89, 0.20, 1.10, 1.05, 0.0, 165, 0.65},
    {"wrf", SPC, false,
     1.00, 2300, 0.70, 0.30, 0.95, 1.15, 0.0, 175, 0.75},
    {"sphinx3", SPC, false,
     1.05, 3600, 0.26, 0.40, 0.90, 1.20, 0.0, 210, 0.80},
};

/**
 * Solve l3Apki / dramApki / mlp so that at the reference point the
 * profile exhibits the row's rateTarget and coreShare.
 */
void
solveMemoryTraffic(const Row &r, WorkProfile &work)
{
    const double cpi_total = r.cpi / r.coreShare;
    const double l3_apki = r.rateTarget * cpi_total / 1000.0;
    const double stall_ns =
        (cpi_total - r.cpi) / refFreq * 1e9; // per instruction

    double dram_apki = l3_apki * r.dramFraction;
    double mlp;
    if (stall_ns < 1e-6) {
        mlp = 2.0;
    } else {
        mlp = (l3_apki * refL3Ns + dram_apki * refDramNs) * 1e-3
            / stall_ns;
        if (mlp < minMlp) {
            // Too little traffic for the stall budget at minimum
            // MLP: raise the DRAM share to fill it.
            mlp = minMlp;
            dram_apki =
                (stall_ns * mlp * 1e3 - l3_apki * refL3Ns)
                / refDramNs;
            dram_apki = std::clamp(dram_apki, 0.0, l3_apki);
        } else if (mlp > maxMlp) {
            mlp = maxMlp;
        }
    }
    work.l3Apki = l3_apki;
    work.dramApki = std::min(dram_apki, l3_apki);
    work.mlp = std::max(mlp, minMlp);
}

} // namespace

Catalog::Catalog()
{
    profiles.reserve(std::size(rows));
    for (const Row &r : rows) {
        BenchmarkProfile p;
        p.name = r.name;
        p.suite = r.suite;
        p.parallel = (r.suite != Suite::SpecCpu2006);
        p.characterized = r.characterized;
        p.work.cpiBase = r.cpi;
        p.work.switchingFactor = r.switching;
        p.work.l2SharingPenalty = r.l2Penalty;
        solveMemoryTraffic(r, p.work);
        p.serialFraction = r.serialFraction;
        const double t_instr = (r.cpi / r.coreShare) / refFreq;
        p.workInstructions = static_cast<Instructions>(
            std::llround(r.singleSeconds / t_instr));
        p.vminSensitivity = r.vminSensitivity;
        p.validate();
        profiles.push_back(std::move(p));
    }
}

const Catalog &
Catalog::instance()
{
    static const Catalog catalog;
    return catalog;
}

const BenchmarkProfile &
Catalog::byName(const std::string &name) const
{
    for (const auto &p : profiles)
        if (p.name == name)
            return p;
    fatal("unknown benchmark '", name, "'");
}

bool
Catalog::contains(const std::string &name) const
{
    return std::any_of(profiles.begin(), profiles.end(),
                       [&](const auto &p) { return p.name == name; });
}

std::vector<const BenchmarkProfile *>
Catalog::bySuite(Suite suite) const
{
    std::vector<const BenchmarkProfile *> out;
    for (const auto &p : profiles)
        if (p.suite == suite)
            out.push_back(&p);
    return out;
}

std::vector<const BenchmarkProfile *>
Catalog::characterizedSet() const
{
    std::vector<const BenchmarkProfile *> out;
    for (const auto &p : profiles)
        if (p.characterized)
            out.push_back(&p);
    return out;
}

std::vector<const BenchmarkProfile *>
Catalog::generatorPool() const
{
    std::vector<const BenchmarkProfile *> out;
    for (const auto &p : profiles)
        if (p.suite != Suite::Parsec)
            out.push_back(&p);
    return out;
}

std::vector<const BenchmarkProfile *>
Catalog::figureBenchmarks() const
{
    return {&byName("namd"), &byName("EP"), &byName("milc"),
            &byName("CG"), &byName("FT")};
}

} // namespace ecosched
