/**
 * @file
 * The paper's workload generator (§VI.B):
 *
 *  "a 'workload generator' which creates a typical server workload
 *   from a 'pool' of programs (... all the 29 SPEC CPU2006 and the 6
 *   NPB benchmarks; in total 35 different programs).  The generator
 *   can generate workloads of configurable duration by randomly
 *   selecting benchmarks ... and randomly defining the timeslot in
 *   which each benchmark will be invoked.  The workload includes
 *   heavy load periods, average load periods and light periods,
 *   including also a few idle periods ...  The generator is
 *   configured to guarantee that the number of active processes is
 *   never more than the available cores ...  The generated workload
 *   can be then invoked multiple times ... using different policies
 *   or configurations."
 */

#ifndef ECOSCHED_WORKLOADS_GENERATOR_HH
#define ECOSCHED_WORKLOADS_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/memory_system.hh"
#include "workloads/catalog.hh"

namespace ecosched {

/// Load regime of one generated phase.
enum class LoadPhase { Heavy, Average, Light, Idle };

/// Human-readable phase name.
const char *loadPhaseName(LoadPhase phase);

/// One program invocation of a generated workload.
struct WorkItem
{
    Seconds arrival = 0.0;      ///< issue timestamp
    std::string benchmark;      ///< catalog name
    std::uint32_t threads = 1;  ///< threads (parallel) / copies = 1
};

/// A replayable server workload.
struct GeneratedWorkload
{
    /// One load-regime span of the timeline.
    struct PhaseSpan
    {
        Seconds begin = 0.0;
        Seconds end = 0.0;
        LoadPhase phase = LoadPhase::Average;
    };

    Seconds duration = 0.0;       ///< generation window
    std::uint32_t maxCores = 0;   ///< capacity constraint
    std::vector<WorkItem> items;  ///< invocations, ascending arrival
    std::vector<PhaseSpan> phases;///< load-regime timeline

    /// Highest concurrent thread demand implied by the estimates
    /// used during generation (always <= maxCores).
    std::uint32_t peakEstimatedThreads = 0;
};

/// Generator knobs.
struct GeneratorConfig
{
    Seconds duration = 3600.0;   ///< the paper's 1-hour window
    std::uint32_t maxCores = 32; ///< 8 on X-Gene 2, 32 on X-Gene 3
    std::uint64_t seed = 42;     ///< replay seed

    /// Chip whose memory parameters anchor runtime estimation.
    std::string chipName = "X-Gene 3";
    /// Reference frequency for runtime estimation (fmax).
    Hertz referenceFrequency = units::GHz(3.0);

    /// Target core occupancy per load regime.
    double heavyOccupancy = 0.95;
    double averageOccupancy = 0.55;
    double lightOccupancy = 0.25;

    /// Phase-length bounds.
    Seconds minPhaseLength = 120.0;
    Seconds maxPhaseLength = 360.0;

    /// Probability that a phase is an idle period.
    double idleProbability = 0.08;

    /// Scheduling-decision granularity while generating.
    Seconds decisionInterval = 5.0;
};

/**
 * Deterministic workload generator over the catalog's 35-program
 * pool (SPEC CPU2006 + NPB).
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(GeneratorConfig config);

    /// Configuration in use.
    const GeneratorConfig &config() const { return cfg; }

    /// Produce the workload for the configured seed.
    GeneratedWorkload generate() const;

    /**
     * Estimated runtime of one invocation at the reference frequency
     * with no contention — the capacity-planning estimate the
     * generator uses to respect the max-cores constraint.
     */
    Seconds estimateRuntime(const BenchmarkProfile &profile,
                            std::uint32_t threads) const;

  private:
    GeneratorConfig cfg;
    MemorySystem memory;
};

} // namespace ecosched

#endif // ECOSCHED_WORKLOADS_GENERATOR_HH
