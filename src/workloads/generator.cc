#include "workloads/generator.hh"

#include <algorithm>
#include <utility>

#include "common/error.hh"
#include "common/rng.hh"

namespace ecosched {

const char *
loadPhaseName(LoadPhase phase)
{
    switch (phase) {
      case LoadPhase::Heavy:   return "heavy";
      case LoadPhase::Average: return "average";
      case LoadPhase::Light:   return "light";
      case LoadPhase::Idle:    return "idle";
    }
    return "?";
}

WorkloadGenerator::WorkloadGenerator(GeneratorConfig config)
    : cfg(std::move(config)),
      memory(MemoryParams::forChipName(cfg.chipName))
{
    fatalIf(cfg.duration <= 0.0, "workload duration must be positive");
    fatalIf(cfg.maxCores == 0, "maxCores must be positive");
    fatalIf(cfg.referenceFrequency <= 0.0,
            "referenceFrequency must be positive");
    fatalIf(cfg.minPhaseLength <= 0.0 ||
                cfg.maxPhaseLength < cfg.minPhaseLength,
            "invalid phase-length bounds");
    fatalIf(cfg.idleProbability < 0.0 || cfg.idleProbability > 1.0,
            "idleProbability must be in [0, 1]");
    fatalIf(cfg.decisionInterval <= 0.0,
            "decisionInterval must be positive");
    for (double occ : {cfg.heavyOccupancy, cfg.averageOccupancy,
                       cfg.lightOccupancy}) {
        fatalIf(occ <= 0.0 || occ > 1.0,
                "occupancy targets must be in (0, 1]");
    }
}

Seconds
WorkloadGenerator::estimateRuntime(const BenchmarkProfile &profile,
                                   std::uint32_t threads) const
{
    const Instructions per_thread = profile.perThreadWork(threads);
    const Seconds t_instr = memory.timePerInstruction(
        profile.work, cfg.referenceFrequency, 1.0);
    return static_cast<double>(per_thread) * t_instr;
}

GeneratedWorkload
WorkloadGenerator::generate() const
{
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + 3);
    const auto pool = Catalog::instance().generatorPool();
    ECOSCHED_ASSERT(!pool.empty(), "generator pool is empty");

    GeneratedWorkload wl;
    wl.duration = cfg.duration;
    wl.maxCores = cfg.maxCores;

    // --- carve the window into load phases ------------------------
    Seconds t = 0.0;
    while (t < cfg.duration) {
        LoadPhase phase;
        if (rng.bernoulli(cfg.idleProbability)) {
            phase = LoadPhase::Idle;
        } else {
            const double u = rng.uniform();
            phase = (u < 0.30)   ? LoadPhase::Heavy
                    : (u < 0.72) ? LoadPhase::Average
                                 : LoadPhase::Light;
        }
        const Seconds len = rng.uniform(cfg.minPhaseLength,
                                        cfg.maxPhaseLength);
        const Seconds end = std::min(cfg.duration, t + len);
        wl.phases.push_back({t, end, phase});
        t = end;
    }

    auto occupancy_target = [&](LoadPhase phase) -> double {
        switch (phase) {
          case LoadPhase::Heavy:   return cfg.heavyOccupancy;
          case LoadPhase::Average: return cfg.averageOccupancy;
          case LoadPhase::Light:   return cfg.lightOccupancy;
          case LoadPhase::Idle:    return 0.0;
        }
        return 0.0;
    };

    // --- issue items against the estimated-occupancy ledger --------
    // (estEnd, threads) for every issued item still presumed active.
    std::vector<std::pair<Seconds, std::uint32_t>> ledger;

    auto active_threads = [&](Seconds now) {
        std::uint32_t n = 0;
        for (const auto &[end, thr] : ledger)
            if (end > now)
                n += thr;
        return n;
    };

    std::size_t phase_idx = 0;
    for (Seconds now = 0.0; now < cfg.duration;
         now += cfg.decisionInterval) {
        while (phase_idx + 1 < wl.phases.size() &&
               wl.phases[phase_idx].end <= now) {
            ++phase_idx;
        }
        const LoadPhase phase = wl.phases[phase_idx].phase;
        const auto target = static_cast<std::uint32_t>(
            occupancy_target(phase) * cfg.maxCores + 0.5);

        std::uint32_t active = active_threads(now);
        wl.peakEstimatedThreads =
            std::max(wl.peakEstimatedThreads, active);

        // Issue at most a few items per decision point so arrivals
        // spread naturally inside the phase.
        for (int burst = 0; burst < 4 && active < target; ++burst) {
            const auto &profile =
                *pool[rng.uniformInt(0, pool.size() - 1)];

            std::uint32_t threads = 1;
            if (profile.parallel) {
                // The paper's three threading configs: max, half,
                // quarter of the cores — clamped to free capacity.
                static const double div[] = {1.0, 2.0, 4.0};
                const double d = div[rng.uniformInt(0, 2)];
                threads = std::max<std::uint32_t>(
                    1, static_cast<std::uint32_t>(cfg.maxCores / d));
            }
            const std::uint32_t room = cfg.maxCores - active;
            if (threads > room) {
                if (!profile.parallel)
                    break; // no room for even one copy? then stop
                // shrink a parallel job to the remaining capacity
                threads = room;
                if (threads == 0)
                    break;
            }

            WorkItem item;
            item.arrival =
                now + rng.uniform(0.0, cfg.decisionInterval);
            item.benchmark = profile.name;
            item.threads = threads;
            wl.items.push_back(item);

            const Seconds est =
                estimateRuntime(profile, threads) * 1.15;
            ledger.emplace_back(item.arrival + est, threads);
            active += threads;
            wl.peakEstimatedThreads =
                std::max(wl.peakEstimatedThreads, active);
        }
    }

    std::sort(wl.items.begin(), wl.items.end(),
              [](const WorkItem &a, const WorkItem &b) {
                  return a.arrival < b.arrival;
              });
    ECOSCHED_ASSERT(wl.peakEstimatedThreads <= cfg.maxCores,
                    "generator exceeded the core-capacity constraint");
    return wl;
}

} // namespace ecosched
