/**
 * @file
 * The benchmark catalog: calibrated profiles for every program the
 * paper uses.
 *
 *  - 6 NPB parallel programs (CG, EP, FT, IS, LU, MG);
 *  - 6 PARSEC parallel programs (swaptions, blackscholes,
 *    fluidanimate, canneal, bodytrack, dedup);
 *  - all 29 SPEC CPU2006 single-thread programs, 13 of which form
 *    the characterization subset of §II.B.
 *
 * Calibration targets: the L3C-accesses-per-1M-cycles spectrum of
 * Figure 9 (namd/EP lowest, CG/FT/milc highest, threshold 3000), the
 * multi-instance contention slowdowns of Figure 8, and the
 * clustered-vs-spreaded energy sensitivity of Figure 7.
 */

#ifndef ECOSCHED_WORKLOADS_CATALOG_HH
#define ECOSCHED_WORKLOADS_CATALOG_HH

#include <string>
#include <vector>

#include "workloads/benchmark.hh"

namespace ecosched {

/**
 * Immutable singleton collection of all benchmark profiles.
 */
class Catalog
{
  public:
    /// The process-global catalog.
    static const Catalog &instance();

    /// All profiles, stable order (NPB, PARSEC, SPEC).
    const std::vector<BenchmarkProfile> &all() const
    {
        return profiles;
    }

    /// Profile by name. @throws FatalError when unknown.
    const BenchmarkProfile &byName(const std::string &name) const;

    /// Whether a profile with this name exists.
    bool contains(const std::string &name) const;

    /// All profiles of one suite.
    std::vector<const BenchmarkProfile *> bySuite(Suite suite) const;

    /// The paper's 25-benchmark characterization set (§II.B).
    std::vector<const BenchmarkProfile *> characterizedSet() const;

    /**
     * The §VI.B generator pool: all 29 SPEC CPU2006 plus the 6 NPB
     * programs (35 programs).
     */
    std::vector<const BenchmarkProfile *> generatorPool() const;

    /**
     * The five benchmarks of Figures 11/12, ordered from the most
     * CPU-intensive to the most memory-intensive:
     * namd, EP, milc, CG, FT.
     */
    std::vector<const BenchmarkProfile *> figureBenchmarks() const;

  private:
    Catalog();
    std::vector<BenchmarkProfile> profiles;
};

} // namespace ecosched

#endif // ECOSCHED_WORKLOADS_CATALOG_HH
