/**
 * @file
 * Benchmark profiles: the workloads of the paper's study as the
 * simulator sees them.
 *
 * The paper uses 25 benchmarks for characterization (6 NPB, 6 PARSEC
 * parallel programs; 13 SPEC CPU2006 single-thread programs run as
 * multiple copies) and a 35-program pool (all 29 SPEC CPU2006 + 6
 * NPB) for the §VI.B workload generator.  Each profile couples the
 * simulator-facing WorkProfile (CPI, cache traffic, MLP, ...) with
 * catalog metadata: suite, parallelism, total work, Amdahl serial
 * fraction, and Vmin sensitivity.
 */

#ifndef ECOSCHED_WORKLOADS_BENCHMARK_HH
#define ECOSCHED_WORKLOADS_BENCHMARK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/machine.hh"
#include "sim/work_profile.hh"

namespace ecosched {

/// Benchmark suite of origin.
enum class Suite
{
    Npb,         ///< NAS Parallel Benchmarks v3.3.1
    Parsec,      ///< PARSEC v3.0
    SpecCpu2006, ///< SPEC CPU2006 (single-thread)
};

/// Human-readable suite name.
const char *suiteName(Suite suite);

/**
 * One execution phase of a benchmark, as a share of its total work.
 * Programs that alternate CPU- and memory-intensive regions (the
 * phase-based DVFS literature the paper contrasts itself with, and
 * the daemon's §VI.A "process changes its state" trigger) carry a
 * sequence of these.
 */
struct BenchmarkPhase
{
    double workFraction = 0.0; ///< share of the work, in (0, 1]
    WorkProfile work;          ///< characteristics of this phase
};

/**
 * One benchmark of the study.
 */
struct BenchmarkProfile
{
    std::string name;   ///< canonical lowercase-ish paper name
    Suite suite = Suite::SpecCpu2006;

    /// Parallel program (NPB/PARSEC): one process, N threads share
    /// the work.  Single-thread (SPEC): N copies repeat the work.
    bool parallel = false;

    /// Part of the paper's 25-benchmark characterization set.
    bool characterized = false;

    /// Execution characteristics consumed by the Machine (the
    /// whole-run average; also the single phase when `phases` is
    /// empty).
    WorkProfile work;

    /// Optional phase sequence; empty = homogeneous behaviour.
    /// Fractions must sum to 1.
    std::vector<BenchmarkPhase> phases;

    /// Amdahl serial fraction (parallel programs only).
    double serialFraction = 0.0;

    /// Total single-thread instruction count of one run.
    Instructions workInstructions = 0;

    /// Vmin sensitivity in [0, 1]; 1 pins the table Vmin (§III.A).
    double vminSensitivity = 1.0;

    /**
     * Instructions each of @p threads threads retires so that all
     * finish together under Amdahl scaling (threads >= 1).  For
     * single-thread programs every copy retires workInstructions.
     */
    Instructions perThreadWork(std::uint32_t threads) const;

    /**
     * Machine-facing phase list for one thread retiring
     * @p per_thread instructions (a single phase for homogeneous
     * programs).
     */
    std::vector<WorkPhase> buildPhases(Instructions per_thread)
        const;

    /// Stable FNV-1a hash of the name (droop-rate bias, seeds, ...).
    std::uint64_t hash() const;

    /// Validate all fields. @throws FatalError.
    void validate() const;
};

} // namespace ecosched

#endif // ECOSCHED_WORKLOADS_BENCHMARK_HH
