/**
 * @file
 * Safe-Vmin surface of a chip.
 *
 * The paper measures, per chip, the lowest supply voltage at which
 * 1000 consecutive runs of a workload complete correctly, as a
 * function of clock frequency, core allocation (number of utilized
 * PMDs — the droop class of Table II), the workload, and which
 * physical cores are used (static core-to-core variation).  Its key
 * finding (§III/§IV): in many-core runs the workload and core terms
 * fade away (<= 10 mV) and the *frequency class* and *droop class*
 * dominate.
 *
 * This model encodes exactly that structure:
 *
 *   trueVmin(f, cores, workload) =
 *         table[freqClass(f)][droopClass(|PMDs(cores)|)]     (Table II)
 *       - workloadSpread * (1 - sensitivity) * atten(n)      (Fig. 3/4)
 *       + maxPmdOffset(cores) * atten(n)                     (Fig. 4)
 *
 * with atten(n) = n^-attenExponent capturing the fade-out of
 * variation as active-core count n grows, and per-PMD offsets <= 0
 * (the table is the conservative, most-sensitive-PMD value).
 */

#ifndef ECOSCHED_VMIN_VMIN_MODEL_HH
#define ECOSCHED_VMIN_VMIN_MODEL_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hh"
#include "platform/chip_spec.hh"
#include "platform/topology.hh"

namespace ecosched {

/// Calibration constants of the safe-Vmin surface.
struct VminParams
{
    /**
     * Safe Vmin per frequency class and droop class, in millivolts.
     * Index i of each vector corresponds to droop class i of the
     * ChipSpec (ascending PMD count).  This is the generalised
     * Table II of the paper.
     */
    std::map<VminFreqClass, std::vector<double>> tableMv;

    /// Max workload-to-workload Vmin spread in a single-core run [mV]
    /// (40 mV on X-Gene 2, 20 mV on X-Gene 3 — §III.A).
    double workloadSpreadMv = 40.0;

    /// Max core-to-core static spread in a single-core run [mV]
    /// (30 mV on X-Gene 2, 20 mV on X-Gene 3 — §III.A).
    double staticSpreadMv = 30.0;

    /**
     * Per-PMD static Vmin offsets [mV], all <= 0, one per PMD; the
     * most sensitive PMD sits at 0 (the table is conservative).
     * Leave empty to derive deterministic offsets from the chip seed.
     */
    std::vector<double> pmdOffsetsMv;

    /// Exponent of the variation fade-out atten(n) = n^-e.
    double attenExponent = 0.75;

    /// Calibrated constants for a known chip (matched by name).
    static VminParams forChip(const ChipSpec &spec);

    /// Sanity-check against a chip spec. @throws FatalError.
    void validate(const ChipSpec &spec) const;
};

/**
 * Evaluates the safe-Vmin surface for one chip instance.
 */
class VminModel
{
  public:
    /**
     * @param spec       The chip model.
     * @param params     Calibration constants.
     * @param chip_seed  Identity of the physical chip sample; used to
     *                   derive per-PMD offsets when params leave them
     *                   empty (chip-to-chip variation).
     */
    VminModel(ChipSpec spec, VminParams params,
              std::uint64_t chip_seed = 1);

    /// Convenience: calibrated constants for the chip.
    explicit VminModel(const ChipSpec &spec)
        : VminModel(spec, VminParams::forChip(spec))
    {}

    /// The chip spec this model describes.
    const ChipSpec &spec() const { return chipSpec; }

    /// Calibration constants in use.
    const VminParams &params() const { return modelParams; }

    /**
     * Conservative multicore safe Vmin for a frequency and utilized-
     * PMD count — the value of the paper's Table II, what the
     * daemon's fail-safe policy programs.
     */
    Volt tableVmin(Hertz f, std::uint32_t utilized_pmds) const;

    /**
     * The chip's actual minimal working voltage for a concrete run:
     * frequency @p f on the given cores, executing a workload with
     * Vmin @p sensitivity in [0, 1] (1 = most sensitive workload,
     * pinning the table value).  Below this voltage failures start.
     */
    Volt trueVmin(Hertz f, const std::vector<CoreId> &cores,
                  double sensitivity) const;

    /// Static offset of one PMD (<= 0), in volts.
    Volt pmdOffset(PmdId pmd) const;

    /// Variation attenuation for an active-core count.
    double attenuation(std::uint32_t active_cores) const;

    /**
     * Re-derive the per-PMD offsets for a different chip sample —
     * the result is bit-identical to constructing a fresh model with
     * @p chip_seed.  Node-stamping uses this to turn one calibrated
     * prototype into any sample without redoing the table setup.
     * A no-op when the params pin explicit offsets (the seed never
     * mattered for those).
     */
    void reseed(std::uint64_t chip_seed);

  private:
    void deriveOffsets(std::uint64_t chip_seed);

    ChipSpec chipSpec;
    VminParams modelParams;
    std::vector<double> offsetsMv; ///< resolved per-PMD offsets
};

} // namespace ecosched

#endif // ECOSCHED_VMIN_VMIN_MODEL_HH
