/**
 * @file
 * Stochastic failure behaviour below the safe Vmin (§III.B).
 *
 * Below a run's true Vmin the paper observes, with rising cumulative
 * probability: silent data corruptions (SDCs), process crashes,
 * thread hangs, process timeouts, and finally whole-system crashes.
 * This model produces a cumulative pfail curve (Figure 5) and samples
 * failure outcomes whose mix shifts from SDC-dominated just under
 * Vmin to system-crash-dominated deep in the unsafe region.
 */

#ifndef ECOSCHED_VMIN_FAILURE_MODEL_HH
#define ECOSCHED_VMIN_FAILURE_MODEL_HH

#include "common/rng.hh"
#include "common/units.hh"

namespace ecosched {

/// Outcome of one program execution at a given supply voltage.
enum class RunOutcome
{
    Ok,           ///< completed, output correct
    Sdc,          ///< completed, output mismatched (silent corruption)
    ProcessCrash, ///< the process aborted (e.g. hardware error report)
    Hang,         ///< a thread hung; run killed
    Timeout,      ///< the process exceeded its time budget
    SystemCrash,  ///< the whole machine went down
};

/// Human-readable name of an outcome.
const char *runOutcomeName(RunOutcome outcome);

/// True for every outcome other than Ok.
bool isFailure(RunOutcome outcome);

/**
 * Severity ranking for outcome aggregation: Ok < Sdc < Timeout <
 * Hang < ProcessCrash < SystemCrash.
 */
int outcomeSeverity(RunOutcome outcome);

/// Calibration constants of the failure model.
struct FailureParams
{
    /**
     * Minimum failure probability anywhere below the true Vmin.
     * Makes "safe Vmin" crisp: 1000 trials at any unsafe level fail
     * with probability >= 1-(1-floor)^1000.
     */
    double pfailFloor = 0.01;

    /// Margin scale of the pfail ramp [mV].
    double pfailScaleMv = 18.0;

    /// Shape (steepness) of the pfail ramp.
    double pfailShape = 1.8;

    /// Margin below Vmin at which system crashes dominate [mV].
    double crashDepthMv = 45.0;
};

/**
 * Cumulative failure probability and outcome sampling as a function
 * of the margin between supply voltage and the run's true Vmin.
 */
class FailureModel
{
  public:
    explicit FailureModel(FailureParams params = FailureParams{});

    /// Constants in use.
    const FailureParams &params() const { return modelParams; }

    /**
     * Probability that one run at supply voltage @p v fails, when
     * the run's minimal working voltage is @p true_vmin.  Exactly 0
     * at or above @p true_vmin, monotonically rising to 1 below it.
     */
    double pfail(Volt v, Volt true_vmin) const;

    /**
     * Sample the outcome of one run.  Returns Ok with probability
     * 1 - pfail(v, true_vmin); otherwise draws a failure type whose
     * severity rises with the depth below Vmin.
     */
    RunOutcome sample(Rng &rng, Volt v, Volt true_vmin) const;

    /**
     * Sample the *type* of a failure that is known to have occurred
     * at supply @p v with minimal working voltage @p true_vmin
     * (never returns Ok).  Severity rises with depth below Vmin.
     */
    RunOutcome sampleFailureType(Rng &rng, Volt v,
                                 Volt true_vmin) const;

  private:
    FailureParams modelParams;
};

} // namespace ecosched

#endif // ECOSCHED_VMIN_FAILURE_MODEL_HH
