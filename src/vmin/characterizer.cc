#include "vmin/characterizer.hh"

#include "common/error.hh"

namespace ecosched {

VminCharacterizer::VminCharacterizer(const VminModel &vmin_model,
                                     const FailureModel &failure_model,
                                     CharacterizerConfig config)
    : vminModel(vmin_model), failureModel(failure_model), cfg(config)
{
    fatalIf(cfg.safeTrials == 0, "safeTrials must be positive");
    fatalIf(cfg.unsafeTrials == 0, "unsafeTrials must be positive");
    fatalIf(cfg.stepSize <= 0.0, "stepSize must be positive");
}

CharacterizationResult
VminCharacterizer::characterize(Rng &rng, Hertz f,
                                const std::vector<CoreId> &cores,
                                double sensitivity) const
{
    const ChipSpec &spec = vminModel.spec();
    const Volt true_vmin = vminModel.trueVmin(f, cores, sensitivity);

    CharacterizationResult result;
    bool in_unsafe_region = false;

    for (Volt v = spec.vNominal; v >= spec.vFloor - 1e-9;
         v -= cfg.stepSize) {
        SweepPoint point;
        point.voltage = v;
        point.trials = in_unsafe_region ? cfg.unsafeTrials
                                        : cfg.safeTrials;
        for (std::uint32_t t = 0; t < point.trials; ++t) {
            const RunOutcome outcome =
                failureModel.sample(rng, v, true_vmin);
            ++point.outcomes[static_cast<std::size_t>(outcome)];
            if (isFailure(outcome))
                ++point.failures;
        }
        result.sweep.push_back(point);

        if (!in_unsafe_region) {
            if (point.failures == 0) {
                result.safeVmin = v; // lowest all-pass level so far
            } else {
                // First failing level: switch to the 60-trial unsafe
                // protocol from here downwards.
                in_unsafe_region = true;
            }
        }
        if (point.failures == point.trials && point.trials > 0) {
            result.crashVoltage = v;
            break; // complete-failure point: stop the sweep
        }
    }

    ECOSCHED_ASSERT(result.safeVmin > 0.0,
                    "sweep never found an all-pass level — nominal "
                    "voltage below the true Vmin?");
    return result;
}

std::vector<CharacterizationResult>
VminCharacterizer::characterizeBatch(
    const ExperimentEngine &engine,
    const std::vector<CharacterizationTask> &tasks) const
{
    return engine.mapSpecs<CharacterizationResult,
                           CharacterizationTask>(
        tasks,
        [this](std::size_t, const CharacterizationTask &task,
               Rng &rng) {
            return characterize(rng, task.freq, task.cores,
                                task.sensitivity);
        });
}

} // namespace ecosched
