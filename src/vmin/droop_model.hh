/**
 * @file
 * Voltage-droop event model (§IV.A / Figure 6 / Table II).
 *
 * The paper reads the X-Gene 3 embedded oscilloscope through PMU
 * counters and finds that the *magnitude* of emergency droop events
 * is set almost entirely by the number of PMDs running at the high
 * clock — all workloads produce the same maximum droop magnitude for
 * a given core allocation — while the event *rate* varies mildly
 * across programs.  This model reproduces that observable: given a
 * configuration it yields the droop-magnitude bin and a per-program
 * event rate per million cycles, and can sample a stream of events.
 */

#ifndef ECOSCHED_VMIN_DROOP_MODEL_HH
#define ECOSCHED_VMIN_DROOP_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "platform/chip_spec.hh"

namespace ecosched {

/// Calibration constants of the droop-event generator.
struct DroopParams
{
    /// Mean emergency-droop detections per million cycles in a
    /// configuration's own magnitude bin.
    double meanRatePerMCycles = 40.0;

    /// Relative workload-to-workload spread of the rate (+-).
    double workloadRateSpread = 0.45;

    /// Rate multiplier per *lower* magnitude bin (smaller droops are
    /// more frequent).
    double lowerBinRateGain = 1.8;

    /// Activity scaling: rate at zero core activity relative to full.
    double idleRateFactor = 0.15;
};

/**
 * Per-chip droop behaviour.  Stateless except for calibration.
 */
class DroopModel
{
  public:
    DroopModel(ChipSpec spec, DroopParams params = DroopParams{});

    /// Constants in use.
    const DroopParams &params() const { return modelParams; }

    /**
     * Magnitude bin [lo, hi) in millivolts of the *largest* droops
     * produced when @p high_clock_pmds PMDs run at the high clock
     * (Table II mapping).
     */
    const DroopClass &magnitudeClass(std::uint32_t high_clock_pmds)
        const;

    /**
     * Expected droop detections per million cycles whose magnitude
     * falls in droop-class bin @p bin_index, for a configuration
     * whose own class is @p config_class_index.  Bins above the
     * configuration's class get (almost) zero; the configuration's
     * own bin gets the program's base rate; lower bins get
     * progressively more frequent, smaller droops.
     *
     * @param workload_rate_bias  Per-program rate multiplier in
     *        [1-spread, 1+spread]; use workloadRateBias().
     * @param activity            Mean core utilization in [0, 1].
     */
    double ratePerMCycles(std::size_t bin_index,
                          std::size_t config_class_index,
                          double workload_rate_bias,
                          double activity) const;

    /// Deterministic per-program rate multiplier from a name hash.
    double workloadRateBias(std::uint64_t workload_hash) const;

    /**
     * Sample the number of droop events over @p cycles cycles into
     * a magnitude histogram (one entry per droop-class bin).
     *
     * @param histogram  Histogram over droop magnitude [mV]; bins
     *        should align with the chip's droop-class bins.
     */
    void sampleEvents(Rng &rng, Cycles cycles,
                      std::uint32_t high_clock_pmds,
                      double workload_rate_bias, double activity,
                      Histogram &histogram) const;

  private:
    ChipSpec chipSpec;
    DroopParams modelParams;
};

} // namespace ecosched

#endif // ECOSCHED_VMIN_DROOP_MODEL_HH
