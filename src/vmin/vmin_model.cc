#include "vmin/vmin_model.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hh"
#include "common/rng.hh"

namespace ecosched {

VminParams
VminParams::forChip(const ChipSpec &spec)
{
    VminParams p;
    if (spec.name == "X-Gene 2") {
        // High class from the paper's Figure 3 trend; Half = -3 % of
        // Vnom (clock skipping); Deep = -15 % of Vnom below the High
        // value (clock division, §IV.C / Figure 10).
        p.tableMv[VminFreqClass::High] = {885.0, 905.0, 925.0};
        p.tableMv[VminFreqClass::Half] = {855.0, 875.0, 895.0};
        p.tableMv[VminFreqClass::Deep] = {738.0, 758.0, 778.0};
        p.workloadSpreadMv = 40.0;
        p.staticSpreadMv = 30.0;
        // Figure 4: PMD2 is the most robust module, PMD0/PMD1 the
        // most sensitive ones.
        p.pmdOffsetsMv = {0.0, -4.0, -28.0, -12.0};
    } else if (spec.name == "X-Gene 3") {
        // Table II verbatim.
        p.tableMv[VminFreqClass::High] = {780.0, 800.0, 810.0, 830.0};
        p.tableMv[VminFreqClass::Half] = {770.0, 780.0, 790.0, 820.0};
        p.workloadSpreadMv = 20.0;
        p.staticSpreadMv = 20.0;
        // Derived deterministically from the chip seed.
        p.pmdOffsetsMv = {};
    } else {
        // Generic chip: scale guardbands off the nominal voltage.
        const double vn = units::toMilliVolts(spec.vNominal);
        const std::size_t classes = spec.droopClasses.size();
        auto ladder = [&](double top) {
            std::vector<double> v(classes);
            for (std::size_t i = 0; i < classes; ++i) {
                v[i] = top
                    - 10.0 * static_cast<double>(classes - 1 - i);
            }
            return v;
        };
        p.tableMv[VminFreqClass::High] = ladder(vn * 0.93);
        p.tableMv[VminFreqClass::Half] = ladder(vn * 0.90);
        if (spec.deepClassMaxFreq > 0.0)
            p.tableMv[VminFreqClass::Deep] = ladder(vn * 0.78);
        p.workloadSpreadMv = 30.0;
        p.staticSpreadMv = 25.0;
    }
    p.validate(spec);
    return p;
}

void
VminParams::validate(const ChipSpec &spec) const
{
    const std::size_t classes = spec.droopClasses.size();
    fatalIf(!tableMv.count(VminFreqClass::High),
            spec.name, ": Vmin table needs a High frequency class");
    fatalIf(!tableMv.count(VminFreqClass::Half),
            spec.name, ": Vmin table needs a Half frequency class");
    fatalIf(spec.deepClassMaxFreq > 0.0 &&
                !tableMv.count(VminFreqClass::Deep),
            spec.name, ": chip has a Deep class but the Vmin table "
            "does not");
    for (const auto &[cls, values] : tableMv) {
        fatalIf(values.size() != classes,
                spec.name, ": Vmin table for class ",
                vminFreqClassName(cls), " has ", values.size(),
                " entries, expected ", classes);
        double prev = 0.0;
        for (double mv : values) {
            fatalIf(mv < prev,
                    spec.name, ": Vmin must not decrease with the "
                    "droop class");
            fatalIf(units::mV(mv) <= spec.vFloor,
                    spec.name, ": table Vmin ", mv,
                    " mV at or below the regulator floor");
            fatalIf(units::mV(mv) >= spec.vNominal,
                    spec.name, ": table Vmin ", mv,
                    " mV at or above nominal — no guardband left");
            prev = mv;
        }
    }
    fatalIf(workloadSpreadMv < 0.0, "workloadSpreadMv must be >= 0");
    fatalIf(staticSpreadMv < 0.0, "staticSpreadMv must be >= 0");
    fatalIf(attenExponent <= 0.0, "attenExponent must be positive");
    fatalIf(!pmdOffsetsMv.empty() &&
                pmdOffsetsMv.size() != spec.numPmds(),
            spec.name, ": expected ", spec.numPmds(),
            " PMD offsets, got ", pmdOffsetsMv.size());
    for (double off : pmdOffsetsMv)
        fatalIf(off > 0.0, "PMD offsets must be <= 0 (table is the "
                "most sensitive PMD)");
}

VminModel::VminModel(ChipSpec spec, VminParams params,
                     std::uint64_t chip_seed)
    : chipSpec(std::move(spec)), modelParams(std::move(params))
{
    chipSpec.validate();
    modelParams.validate(chipSpec);

    deriveOffsets(chip_seed);
}

void
VminModel::deriveOffsets(std::uint64_t chip_seed)
{
    if (!modelParams.pmdOffsetsMv.empty()) {
        offsetsMv = modelParams.pmdOffsetsMv;
        return;
    }
    // Deterministic chip-sample variation: |N(0, spread/3)|
    // below the table value, re-anchored so the most sensitive
    // PMD sits exactly at 0.
    Rng rng(chip_seed * 0x51ed2701u + 17);
    offsetsMv.resize(chipSpec.numPmds());
    double max_off = -1e9;
    for (auto &off : offsetsMv) {
        off = -std::fabs(rng.normal(
            0.0, modelParams.staticSpreadMv / 3.0));
        off = std::max(off, -modelParams.staticSpreadMv);
        max_off = std::max(max_off, off);
    }
    for (auto &off : offsetsMv)
        off -= max_off;
}

void
VminModel::reseed(std::uint64_t chip_seed)
{
    deriveOffsets(chip_seed);
}

Volt
VminModel::tableVmin(Hertz f, std::uint32_t utilized_pmds) const
{
    const VminFreqClass cls = chipSpec.vminFreqClass(f);
    const std::size_t idx = chipSpec.droopClassIndex(utilized_pmds);
    return units::mV(modelParams.tableMv.at(cls)[idx]);
}

Volt
VminModel::trueVmin(Hertz f, const std::vector<CoreId> &cores,
                    double sensitivity) const
{
    fatalIf(cores.empty(), "trueVmin needs at least one core");
    fatalIf(sensitivity < 0.0 || sensitivity > 1.0,
            "workload Vmin sensitivity must be in [0, 1], got ",
            sensitivity);
    const std::uint32_t pmds = countUtilizedPmds(cores);
    const double att =
        attenuation(static_cast<std::uint32_t>(cores.size()));

    const double workload_delta_mv =
        -modelParams.workloadSpreadMv * (1.0 - sensitivity) * att;

    // Robustness of a run is limited by its most sensitive PMD.
    double static_mv = -1e9;
    for (CoreId c : cores) {
        const PmdId p = pmdOfCore(c);
        fatalIf(p >= chipSpec.numPmds(),
                "core ", c, " outside ", chipSpec.name);
        static_mv = std::max(static_mv, offsetsMv[p]);
    }
    static_mv *= att;

    const Volt v = tableVmin(f, pmds)
        + units::mV(workload_delta_mv + static_mv);
    return std::max(v, chipSpec.vFloor);
}

Volt
VminModel::pmdOffset(PmdId pmd) const
{
    fatalIf(pmd >= chipSpec.numPmds(),
            "PMD ", pmd, " outside ", chipSpec.name);
    return units::mV(offsetsMv[pmd]);
}

double
VminModel::attenuation(std::uint32_t active_cores) const
{
    ECOSCHED_ASSERT(active_cores > 0, "attenuation of zero cores");
    return std::pow(static_cast<double>(active_cores),
                    -modelParams.attenExponent);
}

} // namespace ecosched
