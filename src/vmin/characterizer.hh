/**
 * @file
 * The paper's Vmin characterization protocol (§III.A):
 *
 *  "we consider a voltage level as a safe Vmin if the program passes
 *   it 1000 times ... we also study the error behavior ... operating
 *   below its safe Vmin point, but we run it 60 times for each
 *   configuration through the entire voltage range from the safe
 *   Vmin until the system crash point."
 *
 * The characterizer drives the FailureModel exactly that way: sweep
 * the supply downward in fixed steps from nominal, run N trials per
 * level, record pass/fail counts and observed outcome mix, and stop
 * at the first level where every trial fails (complete-failure /
 * system-crash point).
 */

#ifndef ECOSCHED_VMIN_CHARACTERIZER_HH
#define ECOSCHED_VMIN_CHARACTERIZER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "exp/engine.hh"
#include "vmin/failure_model.hh"
#include "vmin/vmin_model.hh"

namespace ecosched {

/// Trial statistics at one voltage level of the downward sweep.
struct SweepPoint
{
    Volt voltage = 0.0;        ///< supply level tested
    std::uint32_t trials = 0;  ///< executions performed
    std::uint32_t failures = 0;///< executions that did not pass
    /// Observed count per RunOutcome (indexed by enum value).
    std::array<std::uint32_t, 6> outcomes{};

    /// Fraction of failing trials at this level.
    double pfail() const
    {
        return trials ? static_cast<double>(failures) / trials : 0.0;
    }
};

/// Result of characterizing one configuration.
struct CharacterizationResult
{
    Volt safeVmin = 0.0;     ///< lowest level passing all safe trials
    Volt crashVoltage = 0.0; ///< first level with 100 % failures
    std::vector<SweepPoint> sweep; ///< all tested levels, descending
};

/// Protocol knobs (paper defaults).
struct CharacterizerConfig
{
    std::uint32_t safeTrials = 1000; ///< runs per level above Vmin
    std::uint32_t unsafeTrials = 60; ///< runs per level below Vmin
    Volt stepSize = units::mV(10);   ///< sweep granularity
};

/// One configuration of a characterization campaign (batch API).
struct CharacterizationTask
{
    Hertz freq = 0.0;           ///< ladder frequency of used PMDs
    std::vector<CoreId> cores;  ///< cores executing the workload
    double sensitivity = 1.0;   ///< workload Vmin sensitivity [0, 1]
};

/**
 * Executes the downward-sweep protocol against a VminModel +
 * FailureModel pair.
 */
class VminCharacterizer
{
  public:
    VminCharacterizer(const VminModel &vmin_model,
                      const FailureModel &failure_model,
                      CharacterizerConfig config = CharacterizerConfig{});

    /**
     * Characterize one configuration.
     *
     * @param rng          Trial randomness (forked per call site for
     *                     reproducibility).
     * @param f            Ladder frequency of all used PMDs.
     * @param cores        Cores executing the workload.
     * @param sensitivity  Workload Vmin sensitivity in [0, 1].
     */
    CharacterizationResult characterize(
        Rng &rng, Hertz f, const std::vector<CoreId> &cores,
        double sensitivity) const;

    /**
     * Characterize a whole campaign of configurations in parallel on
     * the engine's workers.  Task i draws its trial randomness from
     * engine.taskRng(i), so the result vector is bit-identical for
     * any job count; results are returned in task order.
     */
    std::vector<CharacterizationResult> characterizeBatch(
        const ExperimentEngine &engine,
        const std::vector<CharacterizationTask> &tasks) const;

  private:
    const VminModel &vminModel;
    const FailureModel &failureModel;
    CharacterizerConfig cfg;
};

} // namespace ecosched

#endif // ECOSCHED_VMIN_CHARACTERIZER_HH
