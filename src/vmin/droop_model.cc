#include "vmin/droop_model.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hh"

namespace ecosched {

DroopModel::DroopModel(ChipSpec spec, DroopParams params)
    : chipSpec(std::move(spec)), modelParams(params)
{
    chipSpec.validate();
    fatalIf(modelParams.meanRatePerMCycles < 0.0,
            "droop rate must be non-negative");
    fatalIf(modelParams.workloadRateSpread < 0.0 ||
                modelParams.workloadRateSpread >= 1.0,
            "workloadRateSpread must be in [0, 1)");
    fatalIf(modelParams.lowerBinRateGain < 1.0,
            "lowerBinRateGain must be >= 1");
    fatalIf(modelParams.idleRateFactor < 0.0 ||
                modelParams.idleRateFactor > 1.0,
            "idleRateFactor must be in [0, 1]");
}

const DroopClass &
DroopModel::magnitudeClass(std::uint32_t high_clock_pmds) const
{
    return chipSpec.droopClass(high_clock_pmds);
}

double
DroopModel::ratePerMCycles(std::size_t bin_index,
                           std::size_t config_class_index,
                           double workload_rate_bias,
                           double activity) const
{
    ECOSCHED_ASSERT(bin_index < chipSpec.droopClasses.size(),
                    "droop bin index out of range");
    ECOSCHED_ASSERT(config_class_index < chipSpec.droopClasses.size(),
                    "droop class index out of range");
    if (bin_index > config_class_index) {
        // A configuration (core allocation) never produces droops
        // larger than its own magnitude class — the paper's central
        // droop observation (Figure 6).
        return 0.0;
    }
    const double act = modelParams.idleRateFactor
        + (1.0 - modelParams.idleRateFactor) * activity;
    const double depth =
        static_cast<double>(config_class_index - bin_index);
    return modelParams.meanRatePerMCycles * workload_rate_bias * act
        * std::pow(modelParams.lowerBinRateGain, depth);
}

double
DroopModel::workloadRateBias(std::uint64_t workload_hash) const
{
    // Map the hash to [1-spread, 1+spread] deterministically.
    const double u = static_cast<double>(workload_hash % 10007u)
        / 10006.0;
    return 1.0
        + modelParams.workloadRateSpread * (2.0 * u - 1.0);
}

void
DroopModel::sampleEvents(Rng &rng, Cycles cycles,
                         std::uint32_t high_clock_pmds,
                         double workload_rate_bias, double activity,
                         Histogram &histogram) const
{
    const std::size_t config_class =
        chipSpec.droopClassIndex(high_clock_pmds);
    const double mcycles = static_cast<double>(cycles) * 1e-6;
    for (std::size_t bin = 0; bin < chipSpec.droopClasses.size();
         ++bin) {
        const double mean = ratePerMCycles(bin, config_class,
                                           workload_rate_bias,
                                           activity) * mcycles;
        if (mean <= 0.0)
            continue;
        // Poisson sampling via normal approximation for large means,
        // exact inversion otherwise.
        std::uint64_t events;
        if (mean > 50.0) {
            events = static_cast<std::uint64_t>(std::max(
                0.0, std::round(rng.normal(mean, std::sqrt(mean)))));
        } else {
            const double limit = std::exp(-mean);
            double p = 1.0;
            events = 0;
            do {
                p *= rng.uniform();
                if (p <= limit)
                    break;
                ++events;
            } while (events < 100000);
        }
        const auto &dc = chipSpec.droopClasses[bin];
        for (std::uint64_t e = 0; e < events; ++e)
            histogram.add(rng.uniform(dc.binLoMv, dc.binHiMv));
    }
}

} // namespace ecosched
