#include "vmin/failure_model.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace ecosched {

const char *
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Ok:           return "ok";
      case RunOutcome::Sdc:          return "sdc";
      case RunOutcome::ProcessCrash: return "process-crash";
      case RunOutcome::Hang:         return "hang";
      case RunOutcome::Timeout:      return "timeout";
      case RunOutcome::SystemCrash:  return "system-crash";
    }
    return "?";
}

bool
isFailure(RunOutcome outcome)
{
    return outcome != RunOutcome::Ok;
}

int
outcomeSeverity(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Ok:           return 0;
      case RunOutcome::Sdc:          return 1;
      case RunOutcome::Timeout:      return 2;
      case RunOutcome::Hang:         return 3;
      case RunOutcome::ProcessCrash: return 4;
      case RunOutcome::SystemCrash:  return 5;
    }
    return 0;
}

FailureModel::FailureModel(FailureParams params)
    : modelParams(params)
{
    fatalIf(modelParams.pfailFloor < 0.0 || modelParams.pfailFloor > 1.0,
            "pfailFloor must be in [0, 1]");
    fatalIf(modelParams.pfailScaleMv <= 0.0,
            "pfailScaleMv must be positive");
    fatalIf(modelParams.pfailShape <= 0.0,
            "pfailShape must be positive");
    fatalIf(modelParams.crashDepthMv <= 0.0,
            "crashDepthMv must be positive");
}

double
FailureModel::pfail(Volt v, Volt true_vmin) const
{
    const double margin_mv = units::toMilliVolts(v - true_vmin);
    if (margin_mv >= 0.0)
        return 0.0;
    const double depth = -margin_mv / modelParams.pfailScaleMv;
    const double ramp =
        1.0 - std::exp(-std::pow(depth, modelParams.pfailShape));
    return std::clamp(
        modelParams.pfailFloor + (1.0 - modelParams.pfailFloor) * ramp,
        0.0, 1.0);
}

RunOutcome
FailureModel::sample(Rng &rng, Volt v, Volt true_vmin) const
{
    if (!rng.bernoulli(pfail(v, true_vmin)))
        return RunOutcome::Ok;
    return sampleFailureType(rng, v, true_vmin);
}

RunOutcome
FailureModel::sampleFailureType(Rng &rng, Volt v,
                                Volt true_vmin) const
{
    // Severity rises with the depth below the true Vmin: just under
    // Vmin most failures are SDCs / timeouts; near crashDepth whole-
    // system crashes dominate.
    const double depth_mv =
        std::max(0.0, units::toMilliVolts(true_vmin - v));
    const double severity =
        std::clamp(depth_mv / modelParams.crashDepthMv, 0.0, 1.0);

    const double w_sdc = 0.55 * (1.0 - severity) + 0.05;
    const double w_pcrash = 0.20 + 0.15 * severity;
    const double w_hang = 0.10 + 0.10 * severity;
    const double w_timeout = 0.15 * (1.0 - severity) + 0.02;
    const double w_scrash = 0.70 * severity * severity + 0.01;
    const double total =
        w_sdc + w_pcrash + w_hang + w_timeout + w_scrash;

    double draw = rng.uniform() * total;
    if ((draw -= w_sdc) < 0.0)
        return RunOutcome::Sdc;
    if ((draw -= w_pcrash) < 0.0)
        return RunOutcome::ProcessCrash;
    if ((draw -= w_hang) < 0.0)
        return RunOutcome::Hang;
    if ((draw -= w_timeout) < 0.0)
        return RunOutcome::Timeout;
    return RunOutcome::SystemCrash;
}

} // namespace ecosched
