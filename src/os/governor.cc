#include "os/governor.hh"

#include <algorithm>

#include "common/error.hh"

namespace ecosched {

OndemandGovernor::OndemandGovernor(Config config)
    : cfg(config)
{
    fatalIf(cfg.samplingPeriod <= 0.0,
            "ondemand sampling period must be positive");
    fatalIf(cfg.upThreshold <= 0.0 || cfg.upThreshold > 1.0,
            "ondemand up-threshold must be in (0, 1]");
}

void
OndemandGovernor::tick(System &system)
{
    const Seconds now = system.now();
    if (lastRun >= 0.0 && now - lastRun < cfg.samplingPeriod)
        return;
    lastRun = now;

    Machine &machine = system.machine();
    const ChipSpec &spec = system.spec();
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        const double util = system.pmdUtilization(p);
        Hertz target;
        if (util >= cfg.upThreshold) {
            target = spec.fMax;
        } else {
            // Proportional scaling, snapped up to the ladder, with
            // the lowest step as the floor.
            const Hertz raw = spec.fMax * util / cfg.upThreshold;
            target = std::max(spec.freqStep(),
                              spec.snapToLadder(
                                  std::max(raw, spec.freqStep())));
        }
        machine.slimPro().requestPmdFrequency(now, p, target);
    }
}

bool
OndemandGovernor::wouldAct(const System &system) const
{
    return !(lastRun >= 0.0
             && system.now() - lastRun < cfg.samplingPeriod);
}

Seconds
OndemandGovernor::nextActivity(const System &system) const
{
    // `lastRun + period` is when the throttle opens; subtracting one
    // timestep guarantees the horizon is never late by a rounding
    // ulp of the `now - lastRun < period` predicate — at most one
    // extra plain step per governor period (DESIGN.md §13).
    if (lastRun < 0.0)
        return system.now(); // first tick is imminent
    return lastRun + cfg.samplingPeriod - system.timestep();
}

SchedutilGovernor::SchedutilGovernor(Config config)
    : cfg(config)
{
    fatalIf(cfg.samplingPeriod <= 0.0,
            "schedutil sampling period must be positive");
    fatalIf(cfg.headroom < 1.0, "schedutil headroom must be >= 1");
}

void
SchedutilGovernor::tick(System &system)
{
    const Seconds now = system.now();
    if (lastRun >= 0.0 && now - lastRun < cfg.samplingPeriod)
        return;
    lastRun = now;

    Machine &machine = system.machine();
    const ChipSpec &spec = system.spec();
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        const double util = system.pmdUtilization(p);
        const Hertz raw = spec.fMax * util * cfg.headroom;
        const Hertz target = std::max(
            spec.freqStep(),
            spec.snapToLadder(std::clamp(raw, spec.freqStep(),
                                         spec.fMax)));
        machine.slimPro().requestPmdFrequency(now, p, target);
    }
}

bool
SchedutilGovernor::wouldAct(const System &system) const
{
    return !(lastRun >= 0.0
             && system.now() - lastRun < cfg.samplingPeriod);
}

Seconds
SchedutilGovernor::nextActivity(const System &system) const
{
    if (lastRun < 0.0)
        return system.now();
    return lastRun + cfg.samplingPeriod - system.timestep();
}

void
PerformanceGovernor::tick(System &system)
{
    Machine &machine = system.machine();
    const ChipSpec &spec = system.spec();
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        if (machine.chip().pmdFrequency(p) != spec.fMax) {
            machine.slimPro().requestPmdFrequency(system.now(), p,
                                                  spec.fMax);
        }
    }
}

bool
PerformanceGovernor::wouldAct(const System &system) const
{
    const ChipSpec &spec = system.spec();
    for (PmdId p = 0; p < spec.numPmds(); ++p)
        if (system.machine().chip().pmdFrequency(p) != spec.fMax)
            return true;
    return false;
}

Seconds
PerformanceGovernor::nextActivity(const System &system) const
{
    return wouldAct(system) ? system.now() : horizonNever;
}

void
PowersaveGovernor::tick(System &system)
{
    Machine &machine = system.machine();
    const ChipSpec &spec = system.spec();
    for (PmdId p = 0; p < spec.numPmds(); ++p) {
        if (machine.chip().pmdFrequency(p) != spec.freqStep()) {
            machine.slimPro().requestPmdFrequency(system.now(), p,
                                                  spec.freqStep());
        }
    }
}

bool
PowersaveGovernor::wouldAct(const System &system) const
{
    const ChipSpec &spec = system.spec();
    for (PmdId p = 0; p < spec.numPmds(); ++p)
        if (system.machine().chip().pmdFrequency(p)
                != spec.freqStep()) {
            return true;
        }
    return false;
}

Seconds
PowersaveGovernor::nextActivity(const System &system) const
{
    return wouldAct(system) ? system.now() : horizonNever;
}

Seconds
UserspaceGovernor::nextActivity(const System &) const
{
    return horizonNever;
}

} // namespace ecosched
