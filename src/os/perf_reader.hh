/**
 * @file
 * Performance-counter access paths.
 *
 * The paper implements a custom kernel module to read the PMU from
 * the daemon, because "tools like Perf or PAPI impose an extra
 * overhead in measurements (±3 %), while we need very accurate
 * values to take correct decisions" (§VI.A).  Both access paths are
 * modelled here so the trade-off can be reproduced (the ablation
 * bench shows Perf-style noise flipping classifications near the
 * 3 K threshold).
 */

#ifndef ECOSCHED_OS_PERF_READER_HH
#define ECOSCHED_OS_PERF_READER_HH

#include <memory>

#include "common/rng.hh"
#include "common/units.hh"
#include "sim/perf_counters.hh"

namespace ecosched {

/**
 * Reads the L3C access rate of a thread/process over a sampling
 * window.  Implementations differ in measurement noise and cost.
 */
class PerfReader
{
  public:
    virtual ~PerfReader() = default;

    /// Access-path name for reports.
    virtual const char *name() const = 0;

    /**
     * Observed L3C accesses per million cycles for a counter delta
     * (possibly perturbed by measurement noise).
     */
    virtual double readL3PerMCycles(const ThreadCounters &delta,
                                    Rng &rng) const = 0;

    /**
     * Observed DRAM accesses per million cycles for a counter delta
     * (possibly perturbed by measurement noise).  Only read by a
     * bandwidth-aware placer — the extra register read (and noise
     * draw) does not happen otherwise.
     */
    virtual double readDramPerMCycles(const ThreadCounters &delta,
                                      Rng &rng) const = 0;

    /// CPU time consumed by one read (daemon overhead accounting).
    virtual Seconds readCost() const = 0;
};

/**
 * The paper's kernel-module path: two raw PMU register reads, exact
 * counts, near-zero overhead.
 */
class KernelModuleReader : public PerfReader
{
  public:
    const char *name() const override { return "kernel-module"; }
    double readL3PerMCycles(const ThreadCounters &delta,
                            Rng &rng) const override;
    double readDramPerMCycles(const ThreadCounters &delta,
                              Rng &rng) const override;
    Seconds readCost() const override { return units::ns(400); }
};

/**
 * Perf-tool path: syscall + multiplexing overhead, values perturbed
 * by +-3 % multiplicative noise.
 */
class PerfToolReader : public PerfReader
{
  public:
    /// @param relative_noise Half-width of the multiplicative noise.
    explicit PerfToolReader(double relative_noise = 0.03);

    const char *name() const override { return "perf-tool"; }
    double readL3PerMCycles(const ThreadCounters &delta,
                            Rng &rng) const override;
    double readDramPerMCycles(const ThreadCounters &delta,
                              Rng &rng) const override;
    Seconds readCost() const override { return units::us(40); }

  private:
    double noise;
};

} // namespace ecosched

#endif // ECOSCHED_OS_PERF_READER_HH
