/**
 * @file
 * The System: an operating-system layer over one Machine.
 *
 * Responsibilities mirror the Linux pieces the paper interacts with:
 * process submission and a FIFO run queue, thread placement through
 * a pluggable PlacementPolicy (default: CFS-like spreading), process
 * migration, a pluggable frequency Governor (default: ondemand), and
 * per-core utilization bookkeeping.  Lifecycle events are published
 * to observers — exactly the hook the paper's daemon uses ("invoked
 * only after a new process is issued ... or when a process finishes
 * its execution", §VI.A).
 */

#ifndef ECOSCHED_OS_SYSTEM_HH
#define ECOSCHED_OS_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "os/process.hh"
#include "sim/machine.hh"

namespace ecosched {

class System;

/**
 * Chooses cores for processes.  place() returns the cores for a new
 * process's threads — or an empty vector to keep it queued.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /// Human-readable policy name (for reports).
    virtual const char *name() const = 0;

    /**
     * Pick @p threads distinct idle cores for @p process, or return
     * an empty vector to defer placement.
     */
    virtual std::vector<CoreId> place(const System &system,
                                      const Process &process,
                                      std::uint32_t threads) = 0;
};

/**
 * Drives per-PMD frequencies (and possibly voltage).  tick() runs
 * once per System step.
 */
class Governor
{
  public:
    virtual ~Governor() = default;

    /// Human-readable governor name (for reports).
    virtual const char *name() const = 0;

    /// Periodic hook; inspect the system and program the SlimPro.
    virtual void tick(System &system) = 0;

    /**
     * Whether the next tick() could observe or change anything —
     * i.e. is NOT provably a no-op.  runUntil()'s macro-stepped fast
     * path coalesces steps only across spans where every governor
     * tick is quiescent; the conservative default forces a full
     * step.  Must not mutate governor state.
     */
    virtual bool wouldAct(const System &system) const
    {
        (void)system;
        return true;
    }

    /**
     * Event horizon of this governor: a conservative lower bound on
     * the first time tick() could act (observe or change anything).
     * Values <= now() mean "imminent or unknown" — the caller keeps
     * probing wouldAct() per step, which is the conservative default
     * for custom governors.  A future horizon lets macroAdvance()
     * clamp its window to it and skip the per-step probe entirely.
     * The contract is *never late* (DESIGN.md §13): under-estimating
     * costs one plain step, over-estimating would skip a tick and
     * change results — throttled governors therefore subtract one
     * timestep of safety margin from `lastRun + period`.  Must be
     * non-decreasing in now() for fixed governor state and must not
     * mutate it.
     */
    virtual Seconds nextActivity(const System &system) const;

    /**
     * Mutable governor state as an opaque flat vector (snapshot
     * support).  Stateless governors (the default) return {};
     * throttled ones carry their last-run timestamps.  Forwarding
     * governors (DaemonGovernor) stay stateless here — the daemon
     * they forward to is snapshotted by its owner.
     */
    virtual std::vector<double> captureState() const { return {}; }

    /// Restore state produced by captureState() of the same type.
    virtual void restoreState(const std::vector<double> &state)
    {
        (void)state;
    }
};

/// System construction knobs.
struct SystemConfig
{
    /// Simulation step (also the governor tick period base).
    Seconds timestep = units::ms(10);

    /// Smoothing factor of the per-core utilization EWMA.
    double utilizationAlpha = 0.2;
};

/**
 * Deep copy of a System's mutable OS state (snapshot-and-branch
 * sweep execution).  Carries the process table, the run queue,
 * finished-process records, thread ownership, the utilization EWMA
 * and the governor's opaque state.  The placement policy and the
 * governor *objects* are construction identity and stay in place; a
 * restore only rewinds the governor's state vector.  Observers are
 * wiring: the snapshot remembers how many were registered so a
 * restore can truncate later additions (per-run instrumentation)
 * while keeping the ones installed at setup time (the daemon's
 * lifecycle hook).
 */
struct SystemSnapshot
{
    SystemConfig config;
    std::string governorName;
    Pid nextPid = 1;
    std::map<Pid, Process> table;
    std::deque<Pid> runQueue;
    std::vector<Process> finished;
    std::map<SimThreadId, Pid> threadOwner;
    std::vector<double> coreUtil;
    Seconds busyCoreSeconds = 0.0;
    std::size_t observerCount = 0;
    std::vector<double> governorState;
};

/**
 * OS layer over a Machine.
 */
class System
{
  public:
    /**
     * @param machine  Node to manage (must outlive the System).
     * @param placer   Placement policy (nullptr: CFS-like spread).
     * @param governor Frequency governor (nullptr: ondemand).
     */
    System(Machine &machine,
           std::unique_ptr<PlacementPolicy> placer = nullptr,
           std::unique_ptr<Governor> governor = nullptr,
           SystemConfig config = SystemConfig{});

    // --- topology / component access ---------------------------------
    Machine &machine() { return node; }
    const Machine &machine() const { return node; }
    const ChipSpec &spec() const { return node.spec(); }
    PlacementPolicy &placementPolicy() { return *placer; }
    Governor &governor() { return *freqGovernor; }
    Seconds now() const { return node.now(); }
    /// Simulation step of this system (governor horizon margin).
    Seconds timestep() const { return cfg.timestep; }

    /// Replace the placement policy at runtime.
    void setPlacementPolicy(std::unique_ptr<PlacementPolicy> policy);

    /// Replace the governor at runtime.
    void setGovernor(std::unique_ptr<Governor> governor);

    // --- process lifecycle ---------------------------------------------
    /**
     * Submit one invocation of a benchmark with @p threads threads.
     * Placement is attempted immediately; otherwise the process
     * queues FIFO.
     */
    Pid submit(const BenchmarkProfile &profile, std::uint32_t threads);

    /// Process record. @throws FatalError for unknown pids.
    const Process &process(Pid pid) const;

    /// Pids of processes currently bound to cores.
    std::vector<Pid> runningProcesses() const;

    /// Pids of processes waiting in the run queue.
    std::vector<Pid> queuedProcesses() const;

    /// All processes that reached the Finished state so far.
    const std::vector<Process> &finishedProcesses() const
    {
        return finished;
    }

    /// Number of running + queued processes.
    std::size_t pendingCount() const;

    /// Whether nothing is running or queued.
    bool idle() const { return pendingCount() == 0; }

    /**
     * Move a running process onto a new core set (one core per live
     * thread).  Handles arbitrary permutations, using a free core to
     * break swap cycles when needed.
     */
    void migrateProcess(Pid pid, const std::vector<CoreId> &cores);

    /**
     * Atomically rearrange several running processes (the daemon's
     * placement step).  @p assignment maps each affected pid to one
     * core per live thread; cores must be globally distinct and
     * either free or vacated by another entry of the assignment.
     * Swap cycles are broken through a free core.
     */
    void applyPlacement(
        const std::map<Pid, std::vector<CoreId>> &assignment);

    /**
     * Forcibly end a queued or running process with @p outcome
     * (fault injection, fuzzing): its threads are stopped mid-
     * flight, accumulated counters are preserved, and the Completed
     * event is published.  @p outcome must not be Ok — a forced stop
     * is a failure by definition.
     */
    void terminate(Pid pid, RunOutcome outcome);

    /// Aggregated PMU counters of a process (live + retired threads).
    ThreadCounters processCounters(Pid pid) const;

    /// Process owning a core, or invalidPid.
    Pid processOnCore(CoreId core) const;

    // --- execution ------------------------------------------------------
    /// Advance by one timestep: governor, machine, completions, queue.
    void step();

    /// Step until time @p t.
    void runUntil(Seconds t);

    /**
     * Event-driven variant of runUntil() for drivers that watch for
     * state changes between events (the scenario runner, bench
     * harnesses): advances to @p t exactly like runUntil() — same
     * steps, bit-identical state — but returns early right after a
     * plain step in which the machine halts (fault injection), or,
     * when @p stop_on_idle is set, in which the system went idle.
     * Neither can happen inside a macro window, so the early-outs
     * fire on the same step the caller's own per-step loop would
     * observe.  runUntil() itself keeps advancing a halted machine
     * (time passes at zero power) — the cluster layer depends on
     * that — which is why this is a separate entry point.
     */
    void runEvents(Seconds t, bool stop_on_idle = false);

    /// Step until no process is running or queued (bounded by
    /// @p max_time). @throws FatalError when the bound is hit.
    void drain(Seconds max_time);

    // --- telemetry -------------------------------------------------------
    /// EWMA utilization of one core in [0, 1].
    double coreUtilization(CoreId core) const;

    /// EWMA utilization of a PMD (max of its cores).
    double pmdUtilization(PmdId pmd) const;

    /// Cumulative busy-core time over all completed steps,
    /// measured after end-of-step placements [core-seconds].
    Seconds busyCoreTime() const { return busyCoreSeconds; }

    /// Idle cores right now.
    std::vector<CoreId> freeCores() const;

    /// Register a lifecycle-event observer.
    void addProcessObserver(std::function<void(const ProcessEvent &)>
                                observer);

    // --- snapshot / restore ----------------------------------------------
    /// Deep-copy the OS state (see SystemSnapshot).  The underlying
    /// Machine is captured separately via Machine::capture().
    SystemSnapshot capture() const;

    /**
     * Restore previously captured OS state onto this System.  The
     * snapshot must come from a System built with the same config,
     * placer and governor types (checked by governor name).
     * Observers registered after the capture point are dropped;
     * earlier ones are kept.  The caller restores the Machine first.
     */
    void restore(const SystemSnapshot &snapshot);

    /**
     * Build a new System over @p target carrying this system's OS
     * state.  Only valid when the policy objects are the
     * construction defaults (spread placer + ondemand governor —
     * the Baseline/SafeVmin stacks); daemon-governed stacks fork
     * through SimStack, which rebuilds the daemon first.  @p target
     * must mirror this system's machine state (Machine::clone()).
     */
    std::unique_ptr<System> clone(Machine &target) const;

  private:
    void tryPlaceQueued();
    bool placeProcess(Process &proc);
    void harvestFinishedThreads();
    void publish(const ProcessEvent &event);
    /**
     * Try one machine-level macro window toward @p t, replaying the
     * utilization EWMA per step and vetoing steps where the governor
     * would act.  @p fatal_bound mirrors drain()'s time bound inside
     * the window (negative: unbounded).  Returns false when no step
     * could be coalesced — the caller takes a full step().
     */
    bool macroAdvance(Seconds t, Seconds fatal_bound);

    Machine &node;
    std::unique_ptr<PlacementPolicy> placer;
    std::unique_ptr<Governor> freqGovernor;
    SystemConfig cfg;

    Pid nextPid = 1;
    std::map<Pid, Process> table;       ///< queued + running
    std::deque<Pid> runQueue;           ///< FIFO of queued pids
    std::vector<Process> finished;      ///< completed processes
    std::map<SimThreadId, Pid> threadOwner;
    std::vector<double> coreUtil;       ///< EWMA per core
    Seconds busyCoreSeconds = 0.0;      ///< post-step busy integral
    std::vector<std::function<void(const ProcessEvent &)>> observers;
};

/**
 * CFS-like default placement: prefer idle cores on the least-loaded
 * PMDs, spreading threads across modules the way Linux load
 * balancing does on these machines.
 */
class LinuxSpreadPlacer : public PlacementPolicy
{
  public:
    const char *name() const override { return "linux-spread"; }
    std::vector<CoreId> place(const System &system,
                              const Process &process,
                              std::uint32_t threads) override;
};

} // namespace ecosched

#endif // ECOSCHED_OS_SYSTEM_HH
