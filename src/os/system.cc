#include "os/system.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/error.hh"
#include "os/governor.hh"

namespace ecosched {

Seconds
Governor::nextActivity(const System &system) const
{
    // "Unknown": the base class cannot see inside tick(), so the
    // caller falls back to probing wouldAct() per step — custom
    // governors stay correct without opting in.
    return system.now();
}

const char *
processStateName(ProcessState state)
{
    switch (state) {
      case ProcessState::Queued:   return "queued";
      case ProcessState::Running:  return "running";
      case ProcessState::Finished: return "finished";
    }
    return "?";
}

System::System(Machine &machine,
               std::unique_ptr<PlacementPolicy> placement,
               std::unique_ptr<Governor> governor,
               SystemConfig config)
    : node(machine),
      placer(placement ? std::move(placement)
                       : std::make_unique<LinuxSpreadPlacer>()),
      freqGovernor(governor ? std::move(governor)
                            : std::make_unique<OndemandGovernor>()),
      cfg(config),
      coreUtil(machine.spec().numCores, 0.0)
{
    fatalIf(cfg.timestep <= 0.0, "system timestep must be positive");
    fatalIf(cfg.utilizationAlpha <= 0.0 || cfg.utilizationAlpha > 1.0,
            "utilizationAlpha must be in (0, 1]");
}

void
System::setPlacementPolicy(std::unique_ptr<PlacementPolicy> policy)
{
    fatalIf(!policy, "placement policy must not be null");
    placer = std::move(policy);
}

void
System::setGovernor(std::unique_ptr<Governor> governor)
{
    fatalIf(!governor, "governor must not be null");
    freqGovernor = std::move(governor);
}

Pid
System::submit(const BenchmarkProfile &profile, std::uint32_t threads)
{
    fatalIf(threads == 0, "process needs at least one thread");
    fatalIf(!profile.parallel && threads != 1,
            profile.name, " is single-threaded; submit one copy per "
            "process");
    fatalIf(threads > spec().numCores,
            "process needs ", threads, " threads but ", spec().name,
            " has ", spec().numCores, " cores");

    Process proc;
    proc.pid = nextPid++;
    proc.profile = &profile;
    proc.threads = threads;
    proc.submitted = now();

    const Pid pid = proc.pid;
    auto [it, inserted] = table.emplace(pid, std::move(proc));
    ECOSCHED_ASSERT(inserted, "duplicate pid");
    if (!placeProcess(it->second))
        runQueue.push_back(pid);
    return pid;
}

bool
System::placeProcess(Process &proc)
{
    const auto cores = placer->place(*this, proc, proc.threads);
    if (cores.empty())
        return false;
    fatalIf(cores.size() != proc.threads,
            placer->name(), " returned ", cores.size(),
            " cores for a ", proc.threads, "-thread process");
    for (CoreId c : cores) {
        fatalIf(node.coreBusy(c),
                placer->name(), " picked busy core ", c);
    }

    const Instructions per_thread =
        proc.profile->perThreadWork(proc.threads);
    const auto phases = proc.profile->buildPhases(per_thread);
    for (CoreId c : cores) {
        const SimThreadId tid = node.startThreadPhased(
            phases, c, proc.profile->vminSensitivity);
        proc.liveThreads.push_back(tid);
        proc.cores.push_back(c);
        threadOwner[tid] = proc.pid;
    }
    proc.state = ProcessState::Running;
    proc.started = now();
    publish({ProcessEventKind::Started, proc.pid, now()});
    return true;
}

const Process &
System::process(Pid pid) const
{
    const auto it = table.find(pid);
    if (it != table.end())
        return it->second;
    for (const auto &p : finished)
        if (p.pid == pid)
            return p;
    fatal("unknown pid ", pid);
}

std::vector<Pid>
System::runningProcesses() const
{
    std::vector<Pid> pids;
    for (const auto &[pid, proc] : table)
        if (proc.state == ProcessState::Running)
            pids.push_back(pid);
    return pids;
}

std::vector<Pid>
System::queuedProcesses() const
{
    return {runQueue.begin(), runQueue.end()};
}

std::size_t
System::pendingCount() const
{
    return table.size();
}

void
System::migrateProcess(Pid pid, const std::vector<CoreId> &cores)
{
    applyPlacement({{pid, cores}});
}

void
System::applyPlacement(
    const std::map<Pid, std::vector<CoreId>> &assignment)
{
    // --- validate ---------------------------------------------------
    struct Move
    {
        Process *proc;
        std::size_t index; ///< thread slot within the process
        CoreId target;
    };
    std::vector<Move> pending;
    std::vector<CoreId> all_targets;

    for (const auto &[pid, cores] : assignment) {
        auto it = table.find(pid);
        fatalIf(it == table.end(), "unknown or finished pid ", pid);
        Process &proc = it->second;
        fatalIf(proc.state != ProcessState::Running,
                "cannot migrate ", processStateName(proc.state),
                " process ", pid);
        fatalIf(cores.size() != proc.liveThreads.size(),
                "placement of pid ", pid, " needs ",
                proc.liveThreads.size(), " cores, got ", cores.size());
        for (std::size_t i = 0; i < cores.size(); ++i) {
            all_targets.push_back(cores[i]);
            if (proc.cores[i] != cores[i])
                pending.push_back({&proc, i, cores[i]});
        }
    }

    std::sort(all_targets.begin(), all_targets.end());
    fatalIf(std::adjacent_find(all_targets.begin(), all_targets.end())
                != all_targets.end(),
            "placement target cores must be globally distinct");

    // Every occupied target must be vacated by this assignment.
    for (const Move &m : pending) {
        const SimThreadId occupant = node.threadOnCore(m.target);
        if (occupant == invalidSimThread)
            continue;
        const auto owner = threadOwner.find(occupant);
        ECOSCHED_ASSERT(owner != threadOwner.end(),
                        "occupied core with untracked thread");
        fatalIf(assignment.find(owner->second) == assignment.end(),
                "placement target core ", m.target,
                " occupied by a process outside the assignment");
    }

    // --- move, breaking permutation cycles through free cores ------
    std::size_t remaining = pending.size();
    std::vector<bool> placed(pending.size(), false);
    while (remaining > 0) {
        bool progress = false;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (placed[i])
                continue;
            Move &m = pending[i];
            if (m.proc->cores[m.index] == m.target) {
                placed[i] = true; // got parked on its target earlier
                --remaining;
                progress = true;
                continue;
            }
            if (node.threadOnCore(m.target) != invalidSimThread)
                continue;
            node.migrateThread(m.proc->liveThreads[m.index], m.target);
            m.proc->cores[m.index] = m.target;
            ++m.proc->migrations;
            placed[i] = true;
            --remaining;
            progress = true;
        }
        if (progress)
            continue;
        // Pure cycle.  Prefer parking one pending thread on a free
        // core; on a fully occupied chip, swap a pending thread with
        // its target's occupant (always places one pending thread).
        const auto free = freeCores();
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (placed[i])
                continue;
            Move &m = pending[i];
            if (!free.empty()) {
                node.migrateThread(m.proc->liveThreads[m.index],
                                   free.front());
                m.proc->cores[m.index] = free.front();
                ++m.proc->migrations;
            } else {
                const SimThreadId occupant =
                    node.threadOnCore(m.target);
                ECOSCHED_ASSERT(occupant != invalidSimThread,
                                "cycle without an occupant");
                const auto owner = threadOwner.find(occupant);
                ECOSCHED_ASSERT(owner != threadOwner.end(),
                                "occupant without an owner");
                auto oit = table.find(owner->second);
                ECOSCHED_ASSERT(oit != table.end(),
                                "occupant owner not in table");
                Process &oproc = oit->second;
                const CoreId vacated = m.proc->cores[m.index];
                node.swapThreads(m.proc->liveThreads[m.index],
                                 occupant);
                for (std::size_t k = 0;
                     k < oproc.liveThreads.size(); ++k) {
                    if (oproc.liveThreads[k] == occupant) {
                        oproc.cores[k] = vacated;
                        break;
                    }
                }
                ++oproc.migrations;
                m.proc->cores[m.index] = m.target;
                ++m.proc->migrations;
                placed[i] = true;
                --remaining;
            }
            break;
        }
    }
}

void
System::terminate(Pid pid, RunOutcome outcome)
{
    fatalIf(outcome == RunOutcome::Ok,
            "terminate() needs a failure outcome");
    auto it = table.find(pid);
    fatalIf(it == table.end(), "unknown or finished pid ", pid);
    Process &proc = it->second;

    if (proc.state == ProcessState::Queued)
        std::erase(runQueue, pid);
    for (std::size_t i = 0; i < proc.liveThreads.size(); ++i) {
        const SimThreadId tid = proc.liveThreads[i];
        const SimThread &t = node.thread(tid);
        proc.retiredCounters.accumulate(t.counters);
        proc.migrations += t.migrations;
        node.stopThread(tid);
        threadOwner.erase(tid);
    }
    proc.liveThreads.clear();
    proc.cores.clear();

    proc.state = ProcessState::Finished;
    if (outcomeSeverity(outcome) > outcomeSeverity(proc.outcome))
        proc.outcome = outcome;
    proc.completed = now();
    const Pid done = proc.pid;
    finished.push_back(std::move(proc));
    table.erase(it);
    publish({ProcessEventKind::Completed, done, now()});
    // The stop freed cores: the queue head may be placeable now.
    tryPlaceQueued();
}

ThreadCounters
System::processCounters(Pid pid) const
{
    const Process &proc = process(pid);
    ThreadCounters counters = proc.retiredCounters;
    for (SimThreadId tid : proc.liveThreads)
        counters.accumulate(node.thread(tid).counters);
    return counters;
}

Pid
System::processOnCore(CoreId core) const
{
    const SimThreadId tid = node.threadOnCore(core);
    if (tid == invalidSimThread)
        return invalidPid;
    const auto it = threadOwner.find(tid);
    return it == threadOwner.end() ? invalidPid : it->second;
}

void
System::step()
{
    freqGovernor->tick(*this);
    node.step(cfg.timestep);

    // Utilization bookkeeping (EWMA of core occupancy).
    for (CoreId c = 0; c < spec().numCores; ++c) {
        const double busy = node.coreBusy(c) ? 1.0 : 0.0;
        coreUtil[c] = cfg.utilizationAlpha * busy
            + (1.0 - cfg.utilizationAlpha) * coreUtil[c];
    }

    harvestFinishedThreads();
    tryPlaceQueued();
    busyCoreSeconds +=
        static_cast<double>(node.numBusyCores()) * cfg.timestep;
}

void
System::harvestFinishedThreads()
{
    // Update every process record for the whole finished batch
    // first, and only then publish completion events: observers
    // (the daemon) react by replanning placements, which must never
    // see a process record referencing a thread the machine has
    // already retired.
    std::vector<Pid> completed;
    for (const SimThread &t : node.collectFinished()) {
        const auto owner = threadOwner.find(t.id);
        ECOSCHED_ASSERT(owner != threadOwner.end(),
                        "finished thread without an owning process");
        const Pid pid = owner->second;
        threadOwner.erase(owner);

        auto it = table.find(pid);
        ECOSCHED_ASSERT(it != table.end(),
                        "finished thread of an unknown process");
        Process &proc = it->second;

        for (std::size_t i = 0; i < proc.liveThreads.size(); ++i) {
            if (proc.liveThreads[i] == t.id) {
                proc.liveThreads.erase(proc.liveThreads.begin() + i);
                proc.cores.erase(proc.cores.begin() + i);
                break;
            }
        }
        proc.retiredCounters.accumulate(t.counters);
        proc.migrations += t.migrations;
        if (outcomeSeverity(t.outcome) > outcomeSeverity(proc.outcome))
            proc.outcome = t.outcome;

        if (proc.liveThreads.empty()) {
            proc.state = ProcessState::Finished;
            proc.completed = now();
            completed.push_back(proc.pid);
            finished.push_back(proc);
            table.erase(it);
        }
    }
    for (Pid pid : completed)
        publish({ProcessEventKind::Completed, pid, now()});
}

void
System::tryPlaceQueued()
{
    while (!runQueue.empty()) {
        const Pid pid = runQueue.front();
        auto it = table.find(pid);
        ECOSCHED_ASSERT(it != table.end(),
                        "queued pid vanished from the table");
        if (!placeProcess(it->second))
            break; // FIFO: head of line blocks
        runQueue.pop_front();
    }
}

bool
System::macroAdvance(Seconds t, Seconds fatal_bound)
{
    if (!node.macroEligible() || !runQueue.empty())
        return false;

    // Governor event horizon.  A future horizon (every stock
    // governor when its throttle holds) clamps the window to it and
    // skips the per-step wouldAct() probe; a horizon at/before now
    // means "imminent or unknown" and keeps the probe — that is the
    // conservative default for custom governors.  The env-gated
    // reference path (ECOSCHED_EVENT_PATH=0) always probes, which
    // must be bit-identical — the horizon only ever *shrinks* the
    // window across spans the probe would have allowed anyway.
    bool probe = true;
    if (eventPathEnabled()) {
        const Seconds gh = freqGovernor->nextActivity(*this);
        // Two-step staleness tolerance (plus half-step ulp slack):
        // a throttled quote is `lastRun + period - dt`, and FP drift
        // in `now` can push the actual tick one grid step past the
        // nominal throttle opening.
        ECOSCHED_DEBUG_ASSERT(
            !(gh < now() - 2.5 * cfg.timestep),
            std::string(freqGovernor->name())
                + " nextActivity() returned a horizon more than two "
                  "steps in the past");
        if (gh > now()) {
            probe = false;
            t = std::min(t, gh);
        }
    }

    // No process can finish or be placed inside a macro window (the
    // machine guarantees no thread finishes and the run queue is
    // empty), so harvestFinishedThreads()/tryPlaceQueued() are
    // no-ops there; only the governor tick and the utilization EWMA
    // need interleaving.
    struct Hooks final : Machine::MacroStepHooks
    {
        System &s;
        Seconds bound;
        bool probe;

        Hooks(System &system, Seconds b, bool p)
            : s(system), bound(b), probe(p)
        {
        }

        bool beforeStep() override
        {
            if (bound >= 0.0 && s.now() > bound)
                return false; // drain()'s fatalIf must fire here
            if (probe)
                return !s.freqGovernor->wouldAct(s);
            // The clamped horizon promises the governor stays
            // quiescent for every step of this window.
            ECOSCHED_DEBUG_ASSERT(
                !s.freqGovernor->wouldAct(s),
                std::string(s.freqGovernor->name())
                    + " nextActivity() promised quiescence but "
                      "wouldAct() fired inside the window");
            return true;
        }

        void afterStep() override
        {
            for (CoreId c = 0; c < s.spec().numCores; ++c) {
                const double busy = s.node.coreBusy(c) ? 1.0 : 0.0;
                s.coreUtil[c] = s.cfg.utilizationAlpha * busy
                    + (1.0 - s.cfg.utilizationAlpha) * s.coreUtil[c];
            }
            s.busyCoreSeconds +=
                static_cast<double>(s.node.numBusyCores())
                * s.cfg.timestep;
        }
    } hooks{*this, fatal_bound, probe};

    return node.macroAdvance(t, cfg.timestep, &hooks) > 0;
}

void
System::runUntil(Seconds t)
{
    while (now() + cfg.timestep * 0.5 < t) {
        if (!macroAdvance(t, -1.0))
            step();
    }
}

void
System::runEvents(Seconds t, bool stop_on_idle)
{
    while (now() + cfg.timestep * 0.5 < t) {
        if (macroAdvance(t, -1.0))
            continue;
        step();
        // Halts (fault hooks) and completions/submissions happen
        // only in plain steps, so checking here observes them on the
        // exact step the per-step reference loop would.
        if (node.halted() || (stop_on_idle && idle()))
            return;
    }
}

void
System::drain(Seconds max_time)
{
    while (!idle()) {
        fatalIf(now() > max_time,
                "drain() exceeded its time bound of ", max_time,
                " s with ", pendingCount(), " processes pending");
        if (!macroAdvance(std::numeric_limits<Seconds>::infinity(),
                          max_time)) {
            step();
        }
    }
}

double
System::coreUtilization(CoreId core) const
{
    fatalIf(core >= spec().numCores, "core ", core, " out of range");
    return coreUtil[core];
}

double
System::pmdUtilization(PmdId pmd) const
{
    fatalIf(pmd >= spec().numPmds(), "PMD ", pmd, " out of range");
    return std::max(coreUtil[firstCoreOfPmd(pmd)],
                    coreUtil[secondCoreOfPmd(pmd)]);
}

std::vector<CoreId>
System::freeCores() const
{
    std::vector<CoreId> free;
    for (CoreId c = 0; c < spec().numCores; ++c)
        if (!node.coreBusy(c))
            free.push_back(c);
    return free;
}

void
System::addProcessObserver(
    std::function<void(const ProcessEvent &)> observer)
{
    fatalIf(!observer, "process observer must not be null");
    observers.push_back(std::move(observer));
}

void
System::publish(const ProcessEvent &event)
{
    for (const auto &obs : observers)
        obs(event);
}

SystemSnapshot
System::capture() const
{
    SystemSnapshot s;
    s.config = cfg;
    s.governorName = freqGovernor->name();
    s.nextPid = nextPid;
    s.table = table;
    s.runQueue = runQueue;
    s.finished = finished;
    s.threadOwner = threadOwner;
    s.coreUtil = coreUtil;
    s.busyCoreSeconds = busyCoreSeconds;
    s.observerCount = observers.size();
    s.governorState = freqGovernor->captureState();
    return s;
}

void
System::restore(const SystemSnapshot &s)
{
    fatalIf(s.config.timestep != cfg.timestep
                || s.config.utilizationAlpha != cfg.utilizationAlpha,
            "restoring a snapshot captured under a different "
            "SystemConfig");
    fatalIf(s.governorName != freqGovernor->name(),
            "restoring a ", s.governorName,
            " snapshot into a system governed by ",
            freqGovernor->name());
    fatalIf(s.observerCount > observers.size(),
            "snapshot expects ", s.observerCount,
            " process observers but only ", observers.size(),
            " are registered");
    nextPid = s.nextPid;
    table = s.table;
    runQueue = s.runQueue;
    finished = s.finished;
    threadOwner = s.threadOwner;
    coreUtil = s.coreUtil;
    busyCoreSeconds = s.busyCoreSeconds;
    // Observers added after the capture point (per-run
    // instrumentation) are dropped; the setup-time ones — installed
    // before the pristine capture, e.g. the daemon's lifecycle hook —
    // are kept.  This is what makes arena reuse equivalent to fresh
    // construction: the surviving prefix is exactly the set a fresh
    // setup would have installed.
    observers.resize(s.observerCount);
    freqGovernor->restoreState(s.governorState);
}

std::unique_ptr<System>
System::clone(Machine &target) const
{
    auto copy =
        std::make_unique<System>(target, nullptr, nullptr, cfg);
    copy->restore(capture());
    return copy;
}

std::vector<CoreId>
LinuxSpreadPlacer::place(const System &system, const Process &,
                         std::uint32_t threads)
{
    const auto free = system.freeCores();
    if (free.size() < threads)
        return {};

    // Count busy cores per PMD, then prefer idle cores on the least
    // loaded PMDs (CFS-domain-style spreading).
    const auto &spec = system.spec();
    std::vector<int> busy_per_pmd(spec.numPmds(), 0);
    for (CoreId c = 0; c < spec.numCores; ++c)
        if (system.machine().coreBusy(c))
            ++busy_per_pmd[pmdOfCore(c)];

    // Greedy iterative pick so the process's own threads also spread
    // across PMDs (each pick raises its module's load).
    std::vector<CoreId> chosen;
    std::vector<bool> taken(spec.numCores, false);
    for (std::uint32_t i = 0; i < threads; ++i) {
        CoreId best = spec.numCores;
        for (CoreId c : free) {
            if (taken[c])
                continue;
            if (best == spec.numCores ||
                busy_per_pmd[pmdOfCore(c)]
                    < busy_per_pmd[pmdOfCore(best)]) {
                best = c;
            }
        }
        ECOSCHED_ASSERT(best < spec.numCores,
                        "ran out of free cores mid-placement");
        taken[best] = true;
        ++busy_per_pmd[pmdOfCore(best)];
        chosen.push_back(best);
    }
    return chosen;
}

} // namespace ecosched
