#include "os/perf_reader.hh"

#include "common/error.hh"

namespace ecosched {

double
KernelModuleReader::readL3PerMCycles(const ThreadCounters &delta,
                                     Rng &) const
{
    return delta.l3AccessesPerMCycles();
}

double
KernelModuleReader::readDramPerMCycles(const ThreadCounters &delta,
                                       Rng &) const
{
    return delta.dramAccessesPerMCycles();
}

PerfToolReader::PerfToolReader(double relative_noise)
    : noise(relative_noise)
{
    fatalIf(noise < 0.0 || noise >= 1.0,
            "relative noise must be in [0, 1)");
}

double
PerfToolReader::readL3PerMCycles(const ThreadCounters &delta,
                                 Rng &rng) const
{
    const double exact = delta.l3AccessesPerMCycles();
    return exact * rng.uniform(1.0 - noise, 1.0 + noise);
}

double
PerfToolReader::readDramPerMCycles(const ThreadCounters &delta,
                                   Rng &rng) const
{
    const double exact = delta.dramAccessesPerMCycles();
    return exact * rng.uniform(1.0 - noise, 1.0 + noise);
}

} // namespace ecosched
