#include "os/perf_reader.hh"

#include "common/error.hh"

namespace ecosched {

double
KernelModuleReader::readL3PerMCycles(const ThreadCounters &delta,
                                     Rng &) const
{
    return delta.l3AccessesPerMCycles();
}

PerfToolReader::PerfToolReader(double relative_noise)
    : noise(relative_noise)
{
    fatalIf(noise < 0.0 || noise >= 1.0,
            "relative noise must be in [0, 1)");
}

double
PerfToolReader::readL3PerMCycles(const ThreadCounters &delta,
                                 Rng &rng) const
{
    const double exact = delta.l3AccessesPerMCycles();
    return exact * rng.uniform(1.0 - noise, 1.0 + noise);
}

} // namespace ecosched
