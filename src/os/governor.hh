/**
 * @file
 * CPU frequency governors, modelled after the Linux cpufreq
 * governors present on the paper's systems.
 *
 * The paper's Baseline and Safe-Vmin configurations run the
 * *ondemand* governor; the Placement and Optimal configurations
 * disable it (the daemon drives frequencies directly — equivalent to
 * the *userspace* governor).
 */

#ifndef ECOSCHED_OS_GOVERNOR_HH
#define ECOSCHED_OS_GOVERNOR_HH

#include "common/units.hh"
#include "os/system.hh"

namespace ecosched {

/**
 * Linux ondemand: when a PMD's utilization exceeds the up-threshold
 * jump to fmax; otherwise scale frequency proportionally to load.
 */
class OndemandGovernor : public Governor
{
  public:
    /// Governor knobs (Linux defaults scaled to the simulation).
    struct Config
    {
        Seconds samplingPeriod = units::ms(100);
        double upThreshold = 0.80;
    };

    OndemandGovernor() : OndemandGovernor(Config{}) {}
    explicit OndemandGovernor(Config config);

    const char *name() const override { return "ondemand"; }
    void tick(System &system) override;
    /// Quiescent while the sampling-period throttle holds.
    bool wouldAct(const System &system) const override;
    /// Next tick time, one timestep early (safety margin).
    Seconds nextActivity(const System &system) const override;
    std::vector<double> captureState() const override
    {
        return {lastRun};
    }
    void restoreState(const std::vector<double> &state) override
    {
        lastRun = state.at(0);
    }

  private:
    Config cfg;
    Seconds lastRun = -1.0;
};

/**
 * Linux performance: every PMD pinned at fmax.
 */
class PerformanceGovernor : public Governor
{
  public:
    const char *name() const override { return "performance"; }
    void tick(System &system) override;
    /// Quiescent once every PMD sits at fmax.
    bool wouldAct(const System &system) const override;
    /// Never, once every PMD sits at fmax: the chip's frequency
    /// state only changes through explicit commands, which cannot
    /// happen inside a macro window.
    Seconds nextActivity(const System &system) const override;
};

/**
 * Linux powersave: every PMD pinned at the lowest ladder frequency.
 */
class PowersaveGovernor : public Governor
{
  public:
    const char *name() const override { return "powersave"; }
    void tick(System &system) override;
    /// Quiescent once every PMD sits at the lowest ladder step.
    bool wouldAct(const System &system) const override;
    /// Never, once every PMD sits at the ladder floor (state-based,
    /// like PerformanceGovernor).
    Seconds nextActivity(const System &system) const override;
};

/**
 * schedutil-style governor: frequency proportional to utilization
 * with headroom (f = fmax * util * (1 + margin)), no up-threshold
 * jump.  A more modern Linux baseline than ondemand; provided for
 * baseline-sensitivity studies.
 */
class SchedutilGovernor : public Governor
{
  public:
    /// Governor knobs.
    struct Config
    {
        Seconds samplingPeriod = units::ms(50);
        /// Headroom factor: the "1.25" of the kernel's map_util_freq.
        double headroom = 1.25;
    };

    SchedutilGovernor() : SchedutilGovernor(Config{}) {}
    explicit SchedutilGovernor(Config config);

    const char *name() const override { return "schedutil"; }
    void tick(System &system) override;
    /// Quiescent while the sampling-period throttle holds.
    bool wouldAct(const System &system) const override;
    /// Next tick time, one timestep early (safety margin).
    Seconds nextActivity(const System &system) const override;
    std::vector<double> captureState() const override
    {
        return {lastRun};
    }
    void restoreState(const std::vector<double> &state) override
    {
        lastRun = state.at(0);
    }

  private:
    Config cfg;
    Seconds lastRun = -1.0;
};

/**
 * Linux userspace: the governor itself does nothing; an external
 * agent (the monitoring daemon) programs frequencies directly.
 */
class UserspaceGovernor : public Governor
{
  public:
    const char *name() const override { return "userspace"; }
    void tick(System &) override {}
    bool wouldAct(const System &) const override { return false; }
    /// tick() is a no-op forever.
    Seconds nextActivity(const System &) const override;
};

} // namespace ecosched

#endif // ECOSCHED_OS_GOVERNOR_HH
