/**
 * @file
 * OS-level process model.
 *
 * A process is one invocation of a benchmark: a parallel program
 * with N cooperating threads (NPB/PARSEC) or a single-thread SPEC
 * copy.  The System places its threads on cores, tracks aggregated
 * PMU counters, and records lifecycle timestamps used by the
 * evaluation (queueing delay, runtime, outcome).
 */

#ifndef ECOSCHED_OS_PROCESS_HH
#define ECOSCHED_OS_PROCESS_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "sim/machine.hh"
#include "workloads/benchmark.hh"

namespace ecosched {

/// Process identifier (1-based).
using Pid = std::uint64_t;

/// Sentinel: no process.
inline constexpr Pid invalidPid = 0;

/// Lifecycle state of a process.
enum class ProcessState
{
    Queued,   ///< submitted, waiting for cores
    Running,  ///< threads bound to cores
    Finished, ///< all threads done (or failed)
};

/// Human-readable state name.
const char *processStateName(ProcessState state);

/// One process.
struct Process
{
    Pid pid = invalidPid;
    const BenchmarkProfile *profile = nullptr;
    std::uint32_t threads = 1;    ///< requested thread count

    ProcessState state = ProcessState::Queued;
    Seconds submitted = 0.0;      ///< submit() timestamp
    Seconds started = 0.0;        ///< first placement timestamp
    Seconds completed = 0.0;      ///< completion timestamp

    /// Machine thread ids of still-bound (unfinished) threads.
    std::vector<SimThreadId> liveThreads;

    /// Cores of the live threads (parallel to liveThreads).
    std::vector<CoreId> cores;

    /// Counters accumulated by threads that already finished.
    ThreadCounters retiredCounters;

    /// Worst outcome observed across the process's threads.
    RunOutcome outcome = RunOutcome::Ok;

    /// Total times any thread of the process was migrated.
    std::uint64_t migrations = 0;

    /// Wall time from submission to completion.
    Seconds turnaround() const { return completed - submitted; }

    /// Wall time spent waiting in the queue.
    Seconds queueDelay() const { return started - submitted; }
};

/// Process lifecycle notifications (consumed by the daemon).
enum class ProcessEventKind { Started, Completed };

/// One lifecycle event.
struct ProcessEvent
{
    ProcessEventKind kind;
    Pid pid;
    Seconds time;
};

} // namespace ecosched

#endif // ECOSCHED_OS_PROCESS_HH
