/**
 * @file
 * Table I — basic parameters of X-Gene 2 and X-Gene 3.
 *
 * Prints the platform description the library models, straight from
 * the chip presets, for comparison against the paper's Table I.
 */

#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

int
main()
{
    std::cout << "=== Table I: basic parameters of X-Gene 2 and "
                 "X-Gene 3 ===\n\n";

    const ChipSpec g2 = xGene2();
    const ChipSpec g3 = xGene3();

    auto mb = [](std::uint64_t bytes) {
        return formatDouble(
                   static_cast<double>(bytes) / (1024.0 * 1024.0), 0)
            + "MB";
    };

    TextTable t({"Parameter", "X-Gene 2", "X-Gene 3"});
    t.addRow({"CPU cores", std::to_string(g2.numCores),
              std::to_string(g3.numCores)});
    t.addRow({"PMDs (core pairs)", std::to_string(g2.numPmds()),
              std::to_string(g3.numPmds())});
    t.addRow({"Core clock",
              formatDouble(units::toGHz(g2.fMax), 1) + " GHz",
              formatDouble(units::toGHz(g3.fMax), 1) + " GHz"});
    t.addRow({"Frequency step",
              formatDouble(units::toGHz(g2.freqStep()), 3) + " GHz",
              formatDouble(units::toGHz(g3.freqStep()), 3) + " GHz"});
    t.addRow({"L3 cache", mb(g2.l3Bytes), mb(g3.l3Bytes)});
    t.addRow({"Technology", std::to_string(g2.technologyNm) + " nm",
              std::to_string(g3.technologyNm) + " nm"});
    t.addRow({"TDP", formatDouble(g2.tdp, 0) + " W",
              formatDouble(g3.tdp, 0) + " W"});
    t.addRow({"Nominal voltage",
              formatDouble(units::toMilliVolts(g2.vNominal), 0)
                  + " mV",
              formatDouble(units::toMilliVolts(g3.vNominal), 0)
                  + " mV"});
    t.addRow({"Half-clock Vmin class at",
              formatDouble(units::toGHz(g2.halfClassMaxFreq), 1)
                  + " GHz",
              formatDouble(units::toGHz(g3.halfClassMaxFreq), 1)
                  + " GHz"});
    t.addRow({"Clock-division (deep) class",
              g2.deepClassMaxFreq > 0.0
                  ? formatDouble(units::toGHz(g2.deepClassMaxFreq), 1)
                      + " GHz"
                  : "-",
              g3.deepClassMaxFreq > 0.0
                  ? formatDouble(units::toGHz(g3.deepClassMaxFreq), 1)
                      + " GHz"
                  : "-"});
    t.print(std::cout);

    std::cout << "\nFrequency ladders (1/8 steps of fmax):\n";
    for (const ChipSpec &spec : {g2, g3}) {
        std::cout << "  " << spec.name << ": ";
        for (Hertz f : spec.frequencyLadder()) {
            std::cout << formatDouble(units::toGHz(f), 3) << " ("
                      << clockModeName(spec.clockMode(f)) << ") ";
        }
        std::cout << "\n";
    }
    return 0;
}
