/**
 * @file
 * Table III — X-Gene 2 results for the 4 configurations.
 *
 * Replays the same generated 1-hour server workload (constraint:
 * <= 8 active cores) under Baseline / Safe Vmin / Placement /
 * Optimal and prints the paper's table.  Paper reference: 25.2 %
 * energy savings and 3.2 % time penalty for Optimal.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    const ScenarioOptions opt = parseOptions(argc, argv);
    const ChipSpec chip = xGene2();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Table III: X-Gene 2, "
              << formatDouble(opt.duration, 0)
              << " s generated workload (" << workload.items.size()
              << " invocations, seed " << opt.seed << ") ===\n\n";

    const ExperimentEngine engine = makeEngine(opt);
    SimStackPool stacks;
    const std::vector<ScenarioResult> results = runPolicies(
        engine, chip, workload,
        {allPolicies.begin(), allPolicies.end()}, &stacks);

    printEvaluationTable(chip, results);

    std::cout << "\nPaper reference (Table III): energy savings "
                 "11.6% / 18.3% / 25.2%, time penalty 0% / 3.3% / "
                 "3.3% vs Baseline.\n";
    return 0;
}
