/**
 * @file
 * Figure 11 — energy consumption of the five spotlight benchmarks
 * (namd, EP, milc, CG, FT: most CPU-intensive to most memory-
 * intensive) across every thread-scaling and frequency
 * configuration of both chips, executed at each configuration's
 * safe Vmin.
 *
 * Expected shape (paper): X-Gene 2 at 0.9 GHz saves energy for all
 * programs (clock-division Vmin drop); between fmax and half clock,
 * CPU-intensive programs see no energy benefit from the lower
 * frequency while memory-intensive ones do.
 *
 * `--search` runs the grid through the MODELSEARCH branch-and-bound
 * executor instead of exhaustively: per benchmark it reports the
 * energy-optimal configuration plus how many points the analytic
 * bound pruned.  Under ECOSCHED_SEARCH_AUDIT=1 the executor
 * simulates everything, byte-checks the pruned optimum against the
 * exhaustive scan, and this bench prints the full table — byte-
 * identical to the non-search output (the audit golden pins this).
 */

#include <iostream>
#include <string>
#include <vector>

#include "run_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

std::vector<ConfigPoint>
gridPoints(const std::vector<const BenchmarkProfile *> &benchmarks,
           const std::vector<std::uint32_t> &thread_options,
           const std::vector<Hertz> &freq_options)
{
    std::vector<ConfigPoint> points;
    for (const auto *bench : benchmarks) {
        for (std::uint32_t threads : thread_options) {
            for (Hertz f : freq_options) {
                points.push_back({bench, threads,
                                  Allocation::Spreaded, f,
                                  /*undervolt=*/true, /*seed=*/1});
            }
        }
    }
    return points;
}

void
printEnergyTable(const ChipSpec &chip,
                 const std::vector<const BenchmarkProfile *>
                     &benchmarks,
                 const std::vector<std::uint32_t> &thread_options,
                 const std::vector<Hertz> &freq_options,
                 const std::vector<RunStats> &stats)
{
    std::vector<std::string> header{"benchmark"};
    for (std::uint32_t threads : thread_options) {
        for (Hertz f : freq_options) {
            header.push_back(std::to_string(threads) + "T@"
                             + formatDouble(units::toGHz(f), 1));
        }
    }
    TextTable t(header);

    const std::size_t grid =
        thread_options.size() * freq_options.size();
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row{benchmarks[b]->name};
        for (std::size_t g = 0; g < grid; ++g) {
            row.push_back(formatDouble(
                stats[b * grid + g].energyNormalized, 0));
        }
        t.addRow(row);
    }
    std::cout << "--- " << chip.name
              << " energy (J, per unit of work, safe Vmin) ---\n";
    t.print(std::cout);
    std::cout << "\n";
}

void
energyGrid(const ExperimentEngine &engine,
           MemoCache<RunStats> &cache, MachinePool &arenas,
           const ChipSpec &chip,
           const std::vector<std::uint32_t> &thread_options,
           const std::vector<Hertz> &freq_options)
{
    const auto benchmarks = Catalog::instance().figureBenchmarks();
    const auto points =
        gridPoints(benchmarks, thread_options, freq_options);
    const std::vector<RunStats> stats =
        runConfigurations(engine, chip, points, &cache, &arenas);
    printEnergyTable(chip, benchmarks, thread_options, freq_options,
                     stats);
}

void
searchEnergyGrid(const ExperimentEngine &engine, const ChipSpec &chip,
                 const std::vector<std::uint32_t> &thread_options,
                 const std::vector<Hertz> &freq_options, bool audit)
{
    const auto benchmarks = Catalog::instance().figureBenchmarks();
    const std::size_t grid =
        thread_options.size() * freq_options.size();

    search::SweepSearch::Config cfg;
    cfg.objective = search::Objective::Energy;
    cfg.audit = audit;
    search::SweepSearch searcher(engine, chip, cfg);

    // One group per benchmark: the optimum asked of the grid is
    // "which (threads, freq) minimises this program's energy".
    std::vector<RunStats> stats(benchmarks.size() * grid);
    std::vector<std::string> optima;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const auto points = gridPoints({benchmarks[b]},
                                       thread_options,
                                       freq_options);
        const auto result = searcher.searchGroup(points);
        const ConfigPoint &best = points[result.bestIndex];
        optima.push_back(
            benchmarks[b]->name + ": "
            + std::to_string(best.threads) + "T@"
            + formatDouble(units::toGHz(best.freq), 1) + " GHz, "
            + formatDouble(result.best.energyNormalized, 0) + " J ("
            + std::to_string(result.stats.simulatedPoints) + "/"
            + std::to_string(result.stats.totalPoints)
            + " simulated)");
        for (std::size_t g = 0; g < grid; ++g) {
            if (result.simulated[g])
                stats[b * grid + g] = result.results[g];
        }
    }

    if (audit) {
        // Audited run: everything was simulated, so the full table
        // is reconstructible — and must match the exhaustive bench
        // byte for byte.  Prune accounting goes to stderr.
        printEnergyTable(chip, benchmarks, thread_options,
                         freq_options, stats);
    } else {
        std::cout << "--- " << chip.name
                  << " energy optimum (branch-and-bound) ---\n";
        for (const std::string &line : optima)
            std::cout << "  " << line << "\n";
        std::cout << "\n";
    }
    const auto &totals = searcher.totals();
    std::cerr << "search[" << chip.name << "]: simulated "
              << totals.simulatedPoints << "/" << totals.totalPoints
              << " points (" << totals.prunedPoints << " pruned, "
              << totals.waves << " waves, audit="
              << (audit ? "on" : "off") << ")\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace units;
    const bool use_search = search::stripSearchFlag(argc, argv);
    const bool audit = search::searchAuditEnabled();

    std::cout << "=== Figure 11: energy across thread/frequency "
                 "configurations (benchmarks ordered from most "
                 "CPU- to most memory-intensive) ===\n\n";

    EngineConfig ec;
    ec.jobs = stripJobsFlag(argc, argv);
    const ExperimentEngine engine{ec};

    if (use_search) {
        searchEnergyGrid(engine, xGene2(), {8, 4, 2},
                         {GHz(2.4), GHz(1.2), GHz(0.9)}, audit);
        searchEnergyGrid(engine, xGene3(), {32, 16, 8},
                         {GHz(3.0), GHz(1.5)}, audit);
    } else {
        MemoCache<RunStats> cache;
        MachinePool arenas;
        energyGrid(engine, cache, arenas, xGene2(), {8, 4, 2},
                   {GHz(2.4), GHz(1.2), GHz(0.9)});
        energyGrid(engine, cache, arenas, xGene3(), {32, 16, 8},
                   {GHz(3.0), GHz(1.5)});
    }

    std::cout << "Paper reference: 0.9 GHz is cheapest for every "
                 "program on X-Gene 2; at 1.2/1.5 GHz only the "
                 "memory-intensive programs (milc, CG, FT) beat "
                 "fmax.\n";
    return 0;
}
