/**
 * @file
 * Figure 11 — energy consumption of the five spotlight benchmarks
 * (namd, EP, milc, CG, FT: most CPU-intensive to most memory-
 * intensive) across every thread-scaling and frequency
 * configuration of both chips, executed at each configuration's
 * safe Vmin.
 *
 * Expected shape (paper): X-Gene 2 at 0.9 GHz saves energy for all
 * programs (clock-division Vmin drop); between fmax and half clock,
 * CPU-intensive programs see no energy benefit from the lower
 * frequency while memory-intensive ones do.
 */

#include <iostream>
#include <string>
#include <vector>

#include "run_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

void
energyGrid(const ExperimentEngine &engine,
           MemoCache<RunStats> &cache, MachinePool &arenas,
           const ChipSpec &chip,
           const std::vector<std::uint32_t> &thread_options,
           const std::vector<Hertz> &freq_options)
{
    const auto benchmarks = Catalog::instance().figureBenchmarks();

    std::vector<std::string> header{"benchmark"};
    for (std::uint32_t threads : thread_options) {
        for (Hertz f : freq_options) {
            header.push_back(std::to_string(threads) + "T@"
                             + formatDouble(units::toGHz(f), 1));
        }
    }
    TextTable t(header);

    std::vector<ConfigPoint> points;
    for (const auto *bench : benchmarks) {
        for (std::uint32_t threads : thread_options) {
            for (Hertz f : freq_options) {
                points.push_back({bench, threads,
                                  Allocation::Spreaded, f,
                                  /*undervolt=*/true, /*seed=*/1});
            }
        }
    }
    const std::vector<RunStats> stats =
        runConfigurations(engine, chip, points, &cache, &arenas);

    const std::size_t grid =
        thread_options.size() * freq_options.size();
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row{benchmarks[b]->name};
        for (std::size_t g = 0; g < grid; ++g) {
            row.push_back(formatDouble(
                stats[b * grid + g].energyNormalized, 0));
        }
        t.addRow(row);
    }
    std::cout << "--- " << chip.name
              << " energy (J, per unit of work, safe Vmin) ---\n";
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace units;
    std::cout << "=== Figure 11: energy across thread/frequency "
                 "configurations (benchmarks ordered from most "
                 "CPU- to most memory-intensive) ===\n\n";

    EngineConfig ec;
    ec.jobs = stripJobsFlag(argc, argv);
    const ExperimentEngine engine{ec};
    MemoCache<RunStats> cache;
    MachinePool arenas;

    energyGrid(engine, cache, arenas, xGene2(), {8, 4, 2},
               {GHz(2.4), GHz(1.2), GHz(0.9)});
    energyGrid(engine, cache, arenas, xGene3(), {32, 16, 8},
               {GHz(3.0), GHz(1.5)});

    std::cout << "Paper reference: 0.9 GHz is cheapest for every "
                 "program on X-Gene 2; at 1.2/1.5 GHz only the "
                 "memory-intensive programs (milc, CG, FT) beat "
                 "fmax.\n";
    return 0;
}
