/**
 * @file
 * Extension — core idle states and the COREIDLE consolidation
 * governor (src/idle), beyond the paper's four configurations.
 *
 * Replays the §VI.B server workload plus a light-load diurnal
 * scenario (≤ ~30% mean occupancy with long troughs — the regime
 * where consolidation pays) on both chips, each extended with the
 * c-state table (withCStates: a c1 clock-stop analog per core and a
 * c6 power-gate analog per PMD), under four placements:
 *
 *  - linux-spread:  Baseline — stock spread placer + ondemand.
 *  - clustered:     Placement — the paper's daemon packs by class.
 *  - coreidle-pack: CoreIdle — mask-aware spread placer + hysteresis
 *                   governor parking whole PMDs behind the mask.
 *  - race-to-idle:  RaceToIdle — same mask, active PMDs pinned at
 *                   fmax so idle residency starts sooner.
 *
 * Reports energy, p95 sojourn latency, and c1/c6 residency per
 * configuration.  The headline claim this bench pins: at light load
 * coreidle-pack beats linux-spread on energy while keeping p95
 * sojourn within 10%.  Emits machine-readable JSON (schema
 * `ecosched.coreidle/1`, documented in EXPERIMENTS.md) so CI can
 * compare a quick run against the committed BENCH_coreidle.json.
 *
 * Usage: ext_coreidle [duration_s] [seed] [--jobs N] [--quick]
 *                     [--out FILE]
 *
 * --quick shortens the workloads to 900 s (CI smoke); the default is
 * the paper's 3600 s window.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

/// The four placements under comparison, bench-facing names.
struct Config
{
    PolicyKind policy;
    const char *label;
};

constexpr Config kConfigs[] = {
    {PolicyKind::Baseline, "linux-spread"},
    {PolicyKind::Placement, "clustered"},
    {PolicyKind::CoreIdle, "coreidle-pack"},
    {PolicyKind::RaceToIdle, "race-to-idle"},
};

/// One measured (chip, scenario, placement) point.
struct Point
{
    std::string chip;
    std::string scenario;
    std::string config;
    ScenarioResult r;
};

/// The standard §VI.B server workload for a chip.
GeneratedWorkload
serverWorkload(const ChipSpec &chip, Seconds duration,
               std::uint64_t seed)
{
    GeneratorConfig gc;
    gc.duration = duration;
    gc.maxCores = chip.numCores;
    gc.seed = seed;
    gc.chipName = chip.name;
    gc.referenceFrequency = chip.fMax;
    return WorkloadGenerator(gc).generate();
}

/// Light-load diurnal variant: every regime's occupancy is scaled
/// down so the mean load stays at or below ~30% of the cores, and
/// idle troughs are frequent and long — the consolidation regime.
GeneratedWorkload
lightWorkload(const ChipSpec &chip, Seconds duration,
              std::uint64_t seed)
{
    GeneratorConfig gc;
    gc.duration = duration;
    gc.maxCores = chip.numCores;
    gc.seed = seed + 1;
    gc.chipName = chip.name;
    gc.referenceFrequency = chip.fMax;
    gc.heavyOccupancy = 0.30;
    gc.averageOccupancy = 0.18;
    gc.lightOccupancy = 0.08;
    gc.idleProbability = 0.25;
    return WorkloadGenerator(gc).generate();
}

std::string
toJson(const std::vector<Point> &points, Seconds duration,
       std::uint64_t seed)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"ecosched.coreidle/1\",\n"
       << "  \"duration_sec\": " << duration << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const ScenarioResult &r = p.r;
        os << "    {\"chip\": \"" << p.chip << "\", \"scenario\": \""
           << p.scenario << "\", \"config\": \"" << p.config
           << "\", \"completion_s\": " << r.completionTime
           << ", \"energy_j\": " << r.energy
           << ", \"avg_power_w\": " << r.averagePower
           << ", \"ed2p\": " << r.ed2p
           << ", \"processes\": " << r.processesCompleted
           << ", \"latency_p50_s\": " << r.latencyP50
           << ", \"latency_p95_s\": " << r.latencyP95
           << ", \"migrations\": " << r.migrations
           << ", \"c1_core_s\": " << r.idleC1Seconds
           << ", \"c6_pmd_s\": " << r.idleC6Seconds
           << ", \"c1_entries\": " << r.idleC1Entries
           << ", \"c6_entries\": " << r.idleC6Entries
           << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = stripJobsFlag(argc, argv);
    bool quick = false;
    std::string out = "BENCH_coreidle.json";
    std::vector<char *> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            positional.push_back(argv[i]);
        }
    }
    Seconds duration =
        !positional.empty() ? std::atof(positional[0]) : 3600.0;
    if (duration <= 0.0)
        duration = 3600.0;
    if (quick)
        duration = std::min(duration, 900.0);
    const std::uint64_t seed = positional.size() > 1
        ? static_cast<std::uint64_t>(std::atoll(positional[1]))
        : 42;

    std::cout << "=== Extension: core idle states + COREIDLE "
                 "consolidation (c-state chips; "
              << formatDouble(duration, 0) << " s workloads, seed "
              << seed << ") ===\n\n";

    EngineConfig ec;
    ec.jobs = jobs;
    ec.baseSeed = seed;
    const ExperimentEngine engine{ec};

    const std::vector<PolicyKind> policies = {
        PolicyKind::Baseline, PolicyKind::Placement,
        PolicyKind::CoreIdle, PolicyKind::RaceToIdle};

    std::vector<Point> points;
    for (const ChipSpec &chip :
         {withCStates(xGene2()), withCStates(xGene3())}) {
        struct Scenario
        {
            const char *name;
            GeneratedWorkload workload;
        };
        const Scenario scenarios[] = {
            {"server", serverWorkload(chip, duration, seed)},
            {"light-diurnal", lightWorkload(chip, duration, seed)},
        };
        for (const Scenario &sc : scenarios) {
            // Process sojourns are hundreds of seconds regardless of
            // the trace length, and packed placement stretches them
            // further, so short runs need more drain headroom than
            // the stock 3x-duration bound.  The factor only arms the
            // runaway assertion; results are unaffected.
            const std::vector<ScenarioResult> results =
                engine.mapSpecs<ScenarioResult, PolicyKind>(
                    policies,
                    [&](std::size_t, PolicyKind policy, Rng &) {
                        ScenarioConfig scen;
                        scen.chip = chip;
                        scen.policy = policy;
                        scen.drainBoundFactor = 10.0;
                        return ScenarioRunner(scen).run(sc.workload);
                    });
            for (std::size_t i = 0; i < results.size(); ++i) {
                points.push_back({chip.name, sc.name,
                                  kConfigs[i].label, results[i]});
            }
        }
    }

    TextTable t({"chip", "scenario", "config", "energy [J]",
                 "vs spread", "p95 [s]", "c1 [core-s]", "c6 [PMD-s]",
                 "migr"});
    const Point *base = nullptr;
    for (const Point &p : points) {
        if (p.config == kConfigs[0].label)
            base = &p;
        const bool is_base = base == &p;
        t.addRow({p.chip, p.scenario, p.config,
                  formatDouble(p.r.energy, 1),
                  is_base || base == nullptr || base->r.energy <= 0.0
                      ? std::string("-")
                      : formatPercent(1.0
                                      - p.r.energy / base->r.energy),
                  formatDouble(p.r.latencyP95, 2),
                  formatDouble(p.r.idleC1Seconds, 1),
                  formatDouble(p.r.idleC6Seconds, 1),
                  std::to_string(p.r.migrations)});
    }
    t.print(std::cout);
    std::cout << "\nAll placements run on c-state-enabled chips; "
                 "\"vs spread\" is the energy saving against the "
                 "linux-spread row\nof the same (chip, scenario).  "
                 "The consolidation payoff concentrates in the "
                 "light-diurnal rows,\nwhere packed PMDs reach c6 "
                 "and gate their leakage share.\n";

    const std::string json = toJson(points, duration, seed);
    std::ofstream file(out);
    file << json;
    if (!file) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    std::cerr << "wrote " << out << "\n";
    return 0;
}
