/**
 * @file
 * Extension — MODELSEARCH trajectory: fig11/fig12-class
 * characterization through the analytic-model branch-and-bound
 * executor (DESIGN.md §16) on the *dense* configuration grid of both
 * chips: every thread count (1..numCores) at every ladder frequency
 * for the five spotlight benchmarks, for both objectives (energy,
 * ED2P), grouped per benchmark.
 *
 * The headline this bench pins (gated by tools/check_modelsearch.py
 * in the perf-smoke lane): the pruned pass simulates <10% of the
 * exhaustive point count on both chips, and the audit pass — which
 * simulates everything through the same memoised layer — proves the
 * pruned run reports a bit-identical optimum to the exhaustive scan
 * (the executor fatally asserts on any mismatch, so a completed
 * audited run *is* the proof; audit_match records it in the JSON).
 *
 * Emits machine-readable JSON (schema `ecosched.modelsearch/1`,
 * documented in EXPERIMENTS.md) for comparison against the committed
 * BENCH_modelsearch.json.  The search is deterministic — same grid,
 * same counts, any job count — so the checker demands exact count
 * equality, not a drift window.
 *
 * Usage: ext_modelsearch [--jobs N] [--quick] [--out FILE]
 *
 * --quick skips the audit pass (CI smoke: the pruned-pass counts
 * still reproduce the committed ones exactly); the default audits
 * every (chip, objective) sweep.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "run_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

struct BestEntry
{
    std::string benchmark;
    std::uint32_t threads = 0;
    Hertz freq = 0.0;
    double value = 0.0;
};

struct SweepRow
{
    std::string chip;
    search::Objective objective = search::Objective::Energy;
    search::SearchStats totals;
    std::vector<BestEntry> best;
};

SweepRow
runSweep(const ExperimentEngine &engine, const ChipSpec &chip,
         search::Objective objective, bool audit)
{
    const auto benchmarks = Catalog::instance().figureBenchmarks();
    const auto freqs = chip.frequencyLadder();

    search::SweepSearch::Config cfg;
    cfg.objective = objective;
    cfg.audit = audit;
    search::SweepSearch searcher(engine, chip, cfg);

    SweepRow row;
    row.chip = chip.name;
    row.objective = objective;
    for (const auto *bench : benchmarks) {
        std::vector<ConfigPoint> points;
        for (std::uint32_t t = 1; t <= chip.numCores; ++t) {
            for (Hertz f : freqs) {
                points.push_back({bench, t, Allocation::Spreaded, f,
                                  /*undervolt=*/true, /*seed=*/1});
            }
        }
        const auto result = searcher.searchGroup(points);
        const ConfigPoint &best = points[result.bestIndex];
        row.best.push_back({bench->name, best.threads, best.freq,
                            search::objectiveValue(objective,
                                                   result.best)});
    }
    row.totals = searcher.totals();
    return row;
}

double
simulatedFraction(const search::SearchStats &s)
{
    return s.totalPoints > 0
        ? static_cast<double>(s.simulatedPoints)
              / static_cast<double>(s.totalPoints)
        : 0.0;
}

std::string
toJson(const std::vector<SweepRow> &rows, bool audit)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"ecosched.modelsearch/1\",\n"
       << "  \"audit\": " << (audit ? "true" : "false") << ",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        const search::SearchStats &s = r.totals;
        os << "    {\"chip\": \"" << r.chip
           << "\", \"objective\": \""
           << search::objectiveName(r.objective)
           << "\", \"total_points\": " << s.totalPoints
           << ", \"simulated_points\": " << s.simulatedPoints
           << ", \"pruned_points\": " << s.prunedPoints
           << ", \"seed_points\": " << s.seedPoints
           << ", \"waves\": " << s.waves
           << ", \"simulated_fraction\": " << simulatedFraction(s)
           << ", \"audit_match\": "
           << (s.audited && s.auditMatched ? "true" : "false")
           << ",\n     \"best\": [";
        for (std::size_t b = 0; b < r.best.size(); ++b) {
            const BestEntry &e = r.best[b];
            os << (b > 0 ? ", " : "") << "{\"benchmark\": \""
               << e.benchmark << "\", \"threads\": " << e.threads
               << ", \"freq_ghz\": " << units::toGHz(e.freq)
               << ", \"value\": " << e.value << "}";
        }
        os << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    EngineConfig ec;
    ec.jobs = stripJobsFlag(argc, argv);
    bool quick = false;
    std::string out = "BENCH_modelsearch.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out" && i + 1 < argc)
            out = argv[++i];
    }
    const bool audit = !quick;
    const ExperimentEngine engine{ec};

    std::cout << "=== Extension: MODELSEARCH dense-grid "
                 "characterization (branch-and-bound, audit="
              << (audit ? "on" : "off") << ") ===\n\n";

    std::vector<SweepRow> rows;
    TextTable t({"chip", "objective", "points", "simulated",
                 "fraction", "waves", "audit"});
    for (const ChipSpec &chip : {xGene2(), xGene3()}) {
        for (const search::Objective objective :
             {search::Objective::Energy, search::Objective::Ed2p}) {
            SweepRow row = runSweep(engine, chip, objective, audit);
            t.addRow({row.chip,
                      search::objectiveName(row.objective),
                      std::to_string(row.totals.totalPoints),
                      std::to_string(row.totals.simulatedPoints),
                      formatDouble(
                          simulatedFraction(row.totals) * 100.0, 1)
                          + "%",
                      std::to_string(row.totals.waves),
                      row.totals.audited
                          ? (row.totals.auditMatched ? "match"
                                                     : "MISMATCH")
                          : "off"});
            rows.push_back(std::move(row));
        }
    }
    t.print(std::cout);
    std::cout << "\nGroups are per benchmark: the argmin asked of "
                 "each dense (threads x freq) grid.  The audit\n"
                 "pass simulates every point through the same memo "
                 "cache and byte-checks the pruned optimum.\n";

    const std::string json = toJson(rows, audit);
    std::ofstream file(out);
    file << json;
    if (!file) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    std::cerr << "wrote " << out << "\n";
    return 0;
}
