/**
 * @file
 * Extension — phase-changing programs and the value of continuous
 * monitoring.
 *
 * The paper's daemon reacts not only to process arrivals but to a
 * process "changing its state (from CPU-intensive to memory-
 * intensive and vice versa)" (§VI.A case b).  This bench builds a
 * workload of synthetic phase-alternating programs (compute ->
 * stream -> compute), plus static ones, and compares:
 *
 *   - Baseline (ondemand, nominal voltage);
 *   - the paper's daemon with continuous 400 ms monitoring.
 *
 * The reclassification count shows the monitor tracking every
 * program's phase changes; the energy gap is what that tracking
 * buys on phase-heavy workloads.
 */

#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

/// A compute->stream alternator derived from catalog extremes.
BenchmarkProfile
makeAlternator(int variant)
{
    BenchmarkProfile p = Catalog::instance().byName("namd");
    p.name = "alternator-" + std::to_string(variant);
    WorkProfile mem = p.work;
    mem.l3Apki = 55.0 + 5.0 * variant;
    mem.dramApki = 28.0 + 3.0 * variant;
    mem.mlp = 4.0;
    mem.switchingFactor = 0.9;
    WorkProfile cpu = p.work;
    if (variant % 2 == 0) {
        p.phases = {{0.30, cpu}, {0.40, mem}, {0.30, cpu}};
    } else {
        p.phases = {{0.25, mem}, {0.50, cpu}, {0.25, mem}};
    }
    p.workInstructions = 200'000'000'000ull;
    p.validate();
    return p;
}

struct Outcome
{
    Seconds time = 0.0;
    Joule energy = 0.0;
    std::uint64_t reclassifications = 0;
    std::uint64_t migrations = 0;
};

Outcome
runVariant(bool with_daemon)
{
    const ChipSpec chip = xGene3();
    Machine machine(chip);
    System system(machine);
    std::unique_ptr<Daemon> daemon;
    if (with_daemon)
        daemon = std::make_unique<Daemon>(system);

    // Fixed arrival plan: alternators plus static fillers.
    struct Arrival
    {
        Seconds at;
        int alternator; ///< -1: static benchmark
        const char *name;
        std::uint32_t threads;
    };
    const Arrival plan[] = {
        {0.0, 0, nullptr, 1},   {0.0, 1, nullptr, 1},
        {5.0, 2, nullptr, 1},   {5.0, -1, "EP", 8},
        {10.0, -1, "milc", 1},  {15.0, 3, nullptr, 1},
        {20.0, -1, "namd", 1},  {30.0, 4, nullptr, 1},
    };

    const Catalog &catalog = Catalog::instance();
    std::vector<BenchmarkProfile> alternators;
    for (int v = 0; v < 5; ++v)
        alternators.push_back(makeAlternator(v));

    std::size_t next = 0;
    Seconds last_completion = 0.0;
    while (next < std::size(plan) || !system.idle()) {
        while (next < std::size(plan) &&
               plan[next].at <= system.now() + 0.005) {
            const Arrival &a = plan[next];
            if (a.alternator >= 0)
                system.submit(alternators[a.alternator], a.threads);
            else
                system.submit(catalog.byName(a.name), a.threads);
            ++next;
        }
        system.step();
        if (system.now() > 4000.0)
            break;
    }
    for (const Process &proc : system.finishedProcesses())
        last_completion = std::max(last_completion, proc.completed);

    Outcome out;
    out.time = last_completion;
    out.energy = machine.energyMeter().energy();
    if (daemon) {
        out.reclassifications =
            daemon->stats().classificationChanges;
    }
    for (const Process &proc : system.finishedProcesses())
        out.migrations += proc.migrations;
    return out;
}

} // namespace

int
main()
{
    std::cout << "=== Extension: phase-alternating programs under "
                 "the daemon (X-Gene 3) ===\n\n";

    TextTable t({"policy", "time (s)", "energy (J)",
                 "reclassifications", "migrations"});
    const Outcome base = runVariant(false);
    const Outcome daemon_run = runVariant(true);
    t.addRow({"Baseline (ondemand)", formatDouble(base.time, 0),
              formatDouble(base.energy, 0),
              std::to_string(base.reclassifications),
              std::to_string(base.migrations)});
    t.addRow({"daemon, continuous monitoring",
              formatDouble(daemon_run.time, 0),
              formatDouble(daemon_run.energy, 0),
              std::to_string(daemon_run.reclassifications),
              std::to_string(daemon_run.migrations)});
    t.print(std::cout);

    std::cout << "\ndaemon vs baseline: "
              << formatPercent(1.0 - daemon_run.energy / base.energy,
                               1)
              << " energy at "
              << formatPercent(daemon_run.time / base.time - 1.0, 1)
              << " time; the reclassification count shows the "
                 "monitor tracking each program's phases (§VI.A "
                 "case b).\n";
    return 0;
}
