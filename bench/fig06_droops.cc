/**
 * @file
 * Figure 6 — voltage-droop detections per million cycles, per
 * benchmark, in two magnitude windows ([55 mV, 65 mV) and
 * [45 mV, 55 mV)) on X-Gene 3 at 3 GHz.
 *
 * Expected shape (paper): 32T and 16T-spreaded (16 PMDs at the high
 * clock) populate [55, 65); 16T-clustered and 8T-spreaded (8 PMDs)
 * populate [45, 55); one allocation class lower is near zero in
 * each window — the droop magnitude tracks utilized PMDs, not the
 * program.
 */

#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

struct Config
{
    std::string label;
    std::uint32_t threads;
    Allocation alloc;
};

double
measuredRate(const ChipSpec &chip, const BenchmarkProfile &bench,
             const Config &config, double bin_lo, double bin_hi,
             std::uint64_t seed)
{
    // Drive a short real execution with droop sampling on.
    MachineConfig mc;
    mc.sampleDroops = true;
    mc.droopRateBias =
        DroopModel(chip).workloadRateBias(bench.hash());
    mc.seed = seed;
    Machine machine(chip, mc);

    const auto cores = allocateCores(chip.numCores, config.threads,
                                     config.alloc);
    for (CoreId c : cores) {
        machine.startThread(bench.work, bench.workInstructions, c,
                            bench.vminSensitivity);
    }
    machine.runUntil(0.25, units::ms(10)); // quarter second suffices

    const auto events =
        machine.droopHistogram().countInRange(bin_lo, bin_hi);
    const double mcycles =
        static_cast<double>(machine.droopReferenceCycles()) * 1e-6;
    return mcycles > 0.0 ? static_cast<double>(events) / mcycles
                         : 0.0;
}

} // namespace

int
main()
{
    const ChipSpec chip = xGene3();
    const auto benchmarks = Catalog::instance().characterizedSet();
    const std::vector<Config> configs = {
        {"32T", 32, Allocation::Spreaded},
        {"16T(spread)", 16, Allocation::Spreaded},
        {"16T(clust)", 16, Allocation::Clustered},
        {"8T(spread)", 8, Allocation::Spreaded},
        {"8T(clust)", 8, Allocation::Clustered},
    };

    std::cout << "=== Figure 6: droop detections per 1M cycles, "
              << chip.name << " @ 3 GHz ===\n\n";

    for (const auto &window :
         {std::pair<double, double>{55.0, 65.0},
          std::pair<double, double>{45.0, 55.0}}) {
        std::vector<std::string> header{"benchmark"};
        for (const auto &c : configs)
            header.push_back(c.label);
        TextTable t(header);
        std::uint64_t seed = 1;
        for (const auto *bench : benchmarks) {
            std::vector<std::string> row{bench->name};
            for (const auto &c : configs) {
                row.push_back(formatDouble(
                    measuredRate(chip, *bench, c, window.first,
                                 window.second, seed++),
                    1));
            }
            t.addRow(row);
        }
        std::cout << "droop magnitude in [" << window.first << " mV, "
                  << window.second << " mV):\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Paper reference: [55,65) is populated only by 32T "
                 "and 16T-spreaded (16 PMDs); [45,55) only by "
                 "16T-clustered and 8T-spreaded (8 PMDs); the rate "
                 "varies mildly per program, the magnitude does "
                 "not.\n";
    return 0;
}
