/**
 * @file
 * Extension — MEMBW co-location: DRAM bandwidth reservation plus the
 * bandwidth-aware dispatcher (DESIGN.md §15), beyond the paper's
 * single-node policies.
 *
 * Serves the two MEMBW evaluation mixes on small reservation-armed
 * fleets of each chip (ceiling = 1/4 of the DRAM peak, where
 * stacking memory-bound work throttles hard):
 *
 *  - colocation:   latency-critical compute (namd, EP) co-arriving
 *                  with memory-bound batch (milc, CG, FT) — the mix
 *                  where the L3C-rate split alone under-describes a
 *                  job (two memory-classified programs can differ
 *                  severalfold in DRAM bandwidth);
 *  - memory-flood: only milc/CG/FT, saturating any one node's
 *                  ceiling.
 *
 * Each (chip, scenario) pair runs under least_loaded, energy_aware
 * and bandwidth_aware dispatch on the identical arrival stream.
 * Reports job accounting, energy per job, p99 sojourn, and the
 * fleet's throttle telemetry.  The headline claim this bench pins:
 * on at least one chip's colocation rows, bandwidth_aware beats
 * least_loaded on energy per job at equal-or-better p99.  Emits
 * machine-readable JSON (schema `ecosched.membw/1`, documented in
 * EXPERIMENTS.md) so CI can compare a quick run against the
 * committed BENCH_membw.json.
 *
 * Usage: ext_membw_colocation [duration_s] [seed] [--jobs N]
 *                             [--quick] [--out FILE]
 *
 * --quick shortens the arrival window to 120 s (CI smoke); the
 * default is 240 s.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

constexpr std::size_t kFleetSize = 4;
/// Reservation at a quarter of the DRAM peak: far enough below the
/// common contention cap that stacked memory-bound jobs throttle.
constexpr double kCeilingFraction = 0.25;

/// Homogeneous reservation-armed fleet of one chip model.
std::vector<NodeConfig>
reservedFleet(const ChipSpec &chip, std::uint64_t seed)
{
    const BytesPerSecond ceiling =
        MemoryParams::forChipName(chip.name).peakDramBandwidth
        * kCeilingFraction;
    const Rng root(seed);
    std::vector<NodeConfig> nodes(kFleetSize);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        nodes[i].chip = withMemBw(chip, ceiling);
        nodes[i].machineSeed = root.fork(i).next();
    }
    return nodes;
}

/// Arrival rate offering `occupancy` of the fleet's capacity.
double
plannedRate(const std::vector<NodeConfig> &nodes,
            const TrafficModel &planner, double occupancy)
{
    double rate = 0.0;
    for (const NodeConfig &nc : nodes) {
        rate += occupancy
            * static_cast<double>(nc.chip.numCores)
            / planner.meanCoreSecondsPerJob(nc.chip.numCores);
    }
    return rate;
}

struct Scenario
{
    const char *name;
    TrafficMix mix;
    double occupancy;
};

constexpr Scenario kScenarios[] = {
    {"colocation", TrafficMix::Colocation, 0.5},
    {"memory-flood", TrafficMix::MemoryFlood, 0.25},
};

/// One measured (chip, scenario, dispatch) point.
struct Point
{
    std::string chip;
    std::string scenario;
    std::string dispatch;
    ClusterResult r;
};

Point
runPoint(const ChipSpec &chip, const Scenario &sc,
         DispatchPolicy policy, Seconds duration, std::uint64_t seed,
         unsigned jobs)
{
    ClusterConfig cc;
    cc.nodes = reservedFleet(chip, seed);
    cc.dispatch = policy;
    cc.traffic.duration = duration;
    cc.traffic.seed = seed;
    cc.traffic.mix = sc.mix;
    cc.traffic.chipName = chip.name;
    cc.traffic.referenceFrequency = chip.fMax;
    cc.traffic.arrivalsPerSecond = plannedRate(
        cc.nodes, TrafficModel(cc.traffic), sc.occupancy);
    // Heavily throttled floods drain slowly; the bound only arms the
    // runaway assertion, and sojourns run far past the default
    // histogram top (a pinned p99 would mask the dispatch effect).
    cc.drainBoundFactor = 60.0;
    cc.latencyHistogramMax = 3600.0;
    cc.latencyHistogramBins = 36000;
    cc.jobs = jobs;

    Point p;
    p.chip = chip.name;
    p.scenario = sc.name;
    p.dispatch = dispatchPolicyName(policy);
    p.r = ClusterSim(std::move(cc)).run();
    return p;
}

std::string
toJson(const std::vector<Point> &points, Seconds duration,
       std::uint64_t seed)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"ecosched.membw/1\",\n"
       << "  \"duration_sec\": " << duration << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"ceiling_fraction\": " << kCeilingFraction << ",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const ClusterResult &r = p.r;
        os << "    {\"chip\": \"" << p.chip << "\", \"scenario\": \""
           << p.scenario << "\", \"dispatch\": \"" << p.dispatch
           << "\", \"jobs_submitted\": " << r.jobsSubmitted
           << ", \"jobs_completed\": " << r.jobsCompleted
           << ", \"total_energy_j\": " << r.totalEnergy
           << ", \"energy_per_job_j\": " << r.energyPerJob()
           << ", \"avg_power_w\": " << r.averagePower
           << ", \"latency_p99_s\": " << r.latencyP99
           << ", \"latency_mean_s\": " << r.latencyMean
           << ", \"slo_violations\": " << r.sloViolations
           << ", \"makespan_s\": " << r.makespan
           << ", \"mem_throttled_s\": " << r.memThrottledSeconds
           << ", \"peak_mem_throttle\": " << r.peakMemThrottle
           << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = stripJobsFlag(argc, argv);
    bool quick = false;
    std::string out = "BENCH_membw.json";
    std::vector<char *> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            positional.push_back(argv[i]);
        }
    }
    Seconds duration =
        !positional.empty() ? std::atof(positional[0]) : 240.0;
    if (duration <= 0.0)
        duration = 240.0;
    if (quick)
        duration = std::min(duration, 120.0);
    const std::uint64_t seed = positional.size() > 1
        ? static_cast<std::uint64_t>(std::atoll(positional[1]))
        : 7;

    std::cout << "=== Extension: MEMBW co-location (DRAM reservation"
                 " at " << formatDouble(kCeilingFraction * 100, 0)
              << "% of peak, " << kFleetSize << "-node fleets; "
              << formatDouble(duration, 0) << " s of arrivals, seed "
              << seed << ") ===\n\n";

    const std::vector<DispatchPolicy> policies = {
        DispatchPolicy::LeastLoaded, DispatchPolicy::EnergyAware,
        DispatchPolicy::BandwidthAware};

    std::vector<Point> points;
    TextTable t({"chip", "scenario", "dispatch", "jobs", "J/job",
                 "p99 [s]", "SLO viol", "throttled [th-s]",
                 "peak fac"});
    for (const ChipSpec &chip : {xGene2(), xGene3()}) {
        for (const Scenario &sc : kScenarios) {
            for (DispatchPolicy policy : policies) {
                Point p = runPoint(chip, sc, policy, duration, seed,
                                   jobs);
                t.addRow({p.chip, p.scenario, p.dispatch,
                          std::to_string(p.r.jobsCompleted),
                          formatDouble(p.r.energyPerJob(), 1),
                          formatDouble(p.r.latencyP99, 2),
                          std::to_string(p.r.sloViolations),
                          formatDouble(p.r.memThrottledSeconds, 1),
                          formatDouble(p.r.peakMemThrottle, 3)});
                points.push_back(std::move(p));
            }
        }
    }
    t.print(std::cout);
    std::cout << "\nIdentical arrival streams per (chip, scenario); "
                 "only the dispatcher differs.  least_loaded\n"
                 "balances thread counts and stacks memory-bound "
                 "jobs into the reservation; bandwidth_aware\n"
                 "routes each job to the node with the lowest "
                 "post-placement oversubscription.\n";

    const std::string json = toJson(points, duration, seed);
    std::ofstream file(out);
    file << json;
    if (!file) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    std::cerr << "wrote " << out << "\n";
    return 0;
}
