/**
 * @file
 * Ablation — why the fail-safe voltage ordering matters (§VI.A).
 *
 * Runs the Optimal configuration with undervolting fault injection
 * enabled, comparing the paper's raise-voltage-first ordering
 * against a naive daemon that applies the voltage only *after*
 * reconfiguring placement/frequency.  The naive ordering exposes
 * transient windows where the supply sits below the new
 * configuration's safe Vmin, and failures (SDCs, crashes, hangs)
 * strike; the fail-safe ordering completes the same workload with
 * zero failures.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    ScenarioOptions opt = parseOptions(argc, argv);
    if (argc <= 1)
        opt.duration = 2400.0; // default shortened: 3 runs
    const ChipSpec chip = xGene2();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Ablation: fail-safe voltage ordering "
                 "(fault injection enabled, " << chip.name
              << ", " << formatDouble(opt.duration, 0)
              << " s workload) ===\n\n";

    TextTable t({"configuration", "completed", "failed",
                 "worst outcome", "unsafe exposure",
                 "max deficit", "energy (J)"});

    for (int mode = 0; mode < 3; ++mode) {
        ScenarioConfig sc;
        sc.chip = chip;
        sc.policy = mode == 0 ? PolicyKind::Baseline
                              : PolicyKind::Optimal;
        sc.injectFaults = true;
        sc.daemon.failSafeOrdering = (mode != 2);
        const ScenarioResult r = ScenarioRunner(sc).run(workload);

        const char *label = mode == 0 ? "Baseline (nominal V)"
            : mode == 1 ? "Optimal, fail-safe ordering"
                        : "Optimal, naive ordering (V last)";
        t.addRow({label, std::to_string(r.processesCompleted),
                  std::to_string(r.processesFailed),
                  runOutcomeName(r.worstOutcome),
                  formatDouble(r.unsafeExposure, 2) + " s",
                  formatDouble(
                      units::toMilliVolts(r.maxUnsafeDeficit), 0)
                      + " mV",
                  formatDouble(r.energy, 0)});
    }
    t.print(std::cout);

    std::cout << "\nThe fail-safe ordering (raise voltage before "
                 "any frequency increase or placement that grows "
                 "the utilized-PMD set) keeps every transition "
                 "inside the characterized safe region.\n";
    return 0;
}
