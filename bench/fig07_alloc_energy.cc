/**
 * @file
 * Figure 7 — energy of all 25 benchmarks with 4 threads on X-Gene 2
 * at 2.4 GHz, clustered vs spreaded core allocation.
 *
 * Expected shape (paper): the difference spans roughly -10 % to
 * +14 %.  CPU-intensive programs favour the clustered allocation
 * (fewer clocked PMDs, no shared-L2 pressure to speak of); the most
 * memory-intensive favour the spreaded allocation (no shared-L2
 * contention outweighs the extra module power).
 */

#include <algorithm>
#include <iostream>

#include "run_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main()
{
    const ChipSpec chip = xGene2();
    auto benchmarks = Catalog::instance().characterizedSet();

    // Sort from the most CPU-intensive to the most memory-intensive
    // (ascending analytic L3C rate), like the figure's x-axis.
    const MemorySystem memory(MemoryParams::forChipName(chip.name));
    std::sort(benchmarks.begin(), benchmarks.end(),
              [&](const BenchmarkProfile *a,
                  const BenchmarkProfile *b) {
                  return memory.l3PerMCycles(a->work, chip.fMax)
                      < memory.l3PerMCycles(b->work, chip.fMax);
              });

    std::cout << "=== Figure 7: 4T clustered vs spreaded energy, "
              << chip.name << " @ 2.4 GHz ===\n\n";

    TextTable t({"benchmark", "L3C/Mcyc", "E clustered (J)",
                 "E spreaded (J)", "diff (spread vs clust)"});
    double min_diff = 1e9;
    double max_diff = -1e9;
    for (const auto *bench : benchmarks) {
        const RunStats clustered = runConfiguration(
            chip, *bench, 4, Allocation::Clustered, chip.fMax,
            false);
        const RunStats spreaded = runConfiguration(
            chip, *bench, 4, Allocation::Spreaded, chip.fMax,
            false);
        // Positive: spreaded is cheaper (paper's sign convention:
        // the benchmarks right of the dashed line are more energy
        // efficient when spreaded).
        const double diff = 1.0
            - spreaded.energyNormalized / clustered.energyNormalized;
        min_diff = std::min(min_diff, diff);
        max_diff = std::max(max_diff, diff);
        t.addRow({bench->name,
                  formatDouble(
                      memory.l3PerMCycles(bench->work, chip.fMax), 0),
                  formatDouble(clustered.energyNormalized, 1),
                  formatDouble(spreaded.energyNormalized, 1),
                  formatPercent(diff, 1)});
    }
    t.print(std::cout);

    std::cout << "\nobserved range: " << formatPercent(min_diff, 1)
              << " .. " << formatPercent(max_diff, 1)
              << "   (paper: -9.6% .. +14.2%)\n";
    return 0;
}
