/**
 * @file
 * Figure 12 — energy-delay-squared product (ED2P) for the same
 * configuration grid as Figure 11.
 *
 * Expected shape (paper): for the CPU-intensive programs (namd, EP)
 * the highest frequency always wins on ED2P; for the memory-
 * intensive ones (milc, CG, FT) frequency is inversely proportional
 * to ED2P efficiency — identifying the program class at runtime is
 * what lets the daemon pick the right configuration.
 *
 * `--search` routes each (benchmark, threads) row through the
 * MODELSEARCH branch-and-bound executor: the best frequency is found
 * by simulating only the points the analytic bound cannot exclude.
 * Under ECOSCHED_SEARCH_AUDIT=1 everything is simulated, the pruned
 * optimum is byte-checked, and the full table is printed —
 * byte-identical to the exhaustive output.
 */

#include <iostream>
#include <string>
#include <vector>

#include "run_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

std::vector<ConfigPoint>
rowPoints(const BenchmarkProfile &bench, std::uint32_t threads,
          const std::vector<Hertz> &freq_options)
{
    std::vector<ConfigPoint> points;
    for (Hertz f : freq_options) {
        points.push_back({&bench, threads, Allocation::Spreaded, f,
                          /*undervolt=*/true, /*seed=*/1});
    }
    return points;
}

std::vector<std::string>
tableHeader(const std::vector<Hertz> &freq_options)
{
    std::vector<std::string> header{"benchmark", "threads"};
    for (Hertz f : freq_options)
        header.push_back(formatDouble(units::toGHz(f), 1) + " GHz");
    header.push_back("best");
    return header;
}

/// One printed row: the per-frequency ED2P values and the winner by
/// the strict scan-order argmin.
std::vector<std::string>
tableRow(const BenchmarkProfile &bench, std::uint32_t threads,
         const std::vector<Hertz> &freq_options,
         const std::vector<RunStats> &row_stats)
{
    std::vector<std::string> row{bench.name,
                                 std::to_string(threads)};
    double best = 1e300;
    std::size_t best_idx = 0;
    for (std::size_t f = 0; f < freq_options.size(); ++f) {
        const RunStats &r = row_stats[f];
        row.push_back(formatSi(r.ed2p, 2));
        if (r.ed2p < best) {
            best = r.ed2p;
            best_idx = f;
        }
    }
    row.push_back(
        formatDouble(units::toGHz(freq_options[best_idx]), 1)
        + " GHz");
    return row;
}

void
ed2pGrid(const ExperimentEngine &engine, MemoCache<RunStats> &cache,
         MachinePool &arenas, const ChipSpec &chip,
         const std::vector<std::uint32_t> &thread_options,
         const std::vector<Hertz> &freq_options)
{
    const auto benchmarks = Catalog::instance().figureBenchmarks();
    TextTable t(tableHeader(freq_options));

    std::vector<ConfigPoint> points;
    for (const auto *bench : benchmarks) {
        for (std::uint32_t threads : thread_options) {
            const auto row = rowPoints(*bench, threads,
                                       freq_options);
            points.insert(points.end(), row.begin(), row.end());
        }
    }
    const std::vector<RunStats> stats =
        runConfigurations(engine, chip, points, &cache, &arenas);

    std::size_t idx = 0;
    for (const auto *bench : benchmarks) {
        for (std::uint32_t threads : thread_options) {
            const std::vector<RunStats> row_stats(
                stats.begin() + idx,
                stats.begin() + idx + freq_options.size());
            idx += freq_options.size();
            t.addRow(tableRow(*bench, threads, freq_options,
                              row_stats));
        }
    }
    std::cout << "--- " << chip.name << " ED2P (safe Vmin) ---\n";
    t.print(std::cout);
    std::cout << "\n";
}

void
searchEd2pGrid(const ExperimentEngine &engine, const ChipSpec &chip,
               const std::vector<std::uint32_t> &thread_options,
               const std::vector<Hertz> &freq_options, bool audit)
{
    const auto benchmarks = Catalog::instance().figureBenchmarks();

    search::SweepSearch::Config cfg;
    cfg.objective = search::Objective::Ed2p;
    cfg.audit = audit;
    search::SweepSearch searcher(engine, chip, cfg);

    TextTable full(tableHeader(freq_options));
    TextTable optima({"benchmark", "threads", "best", "ed2p",
                      "simulated"});
    for (const auto *bench : benchmarks) {
        for (std::uint32_t threads : thread_options) {
            const auto points =
                rowPoints(*bench, threads, freq_options);
            const auto result = searcher.searchGroup(points);
            if (audit) {
                full.addRow(tableRow(*bench, threads, freq_options,
                                     result.results));
            } else {
                optima.addRow(
                    {bench->name, std::to_string(threads),
                     formatDouble(
                         units::toGHz(
                             points[result.bestIndex].freq), 1)
                         + " GHz",
                     formatSi(result.best.ed2p, 2),
                     std::to_string(result.stats.simulatedPoints)
                         + "/"
                         + std::to_string(
                               result.stats.totalPoints)});
            }
        }
    }

    if (audit) {
        std::cout << "--- " << chip.name
                  << " ED2P (safe Vmin) ---\n";
        full.print(std::cout);
    } else {
        std::cout << "--- " << chip.name
                  << " ED2P optimum (branch-and-bound) ---\n";
        optima.print(std::cout);
    }
    std::cout << "\n";

    const auto &totals = searcher.totals();
    std::cerr << "search[" << chip.name << "]: simulated "
              << totals.simulatedPoints << "/" << totals.totalPoints
              << " points (" << totals.prunedPoints << " pruned, "
              << totals.waves << " waves, audit="
              << (audit ? "on" : "off") << ")\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace units;
    const bool use_search = search::stripSearchFlag(argc, argv);
    const bool audit = search::searchAuditEnabled();

    std::cout << "=== Figure 12: ED2P across thread/frequency "
                 "configurations ===\n\n";

    EngineConfig ec;
    ec.jobs = stripJobsFlag(argc, argv);
    const ExperimentEngine engine{ec};

    if (use_search) {
        searchEd2pGrid(engine, xGene2(), {8, 4, 2},
                       {GHz(2.4), GHz(1.2), GHz(0.9)}, audit);
        searchEd2pGrid(engine, xGene3(), {32, 16, 8},
                       {GHz(3.0), GHz(1.5)}, audit);
    } else {
        MemoCache<RunStats> cache;
        MachinePool arenas;
        ed2pGrid(engine, cache, arenas, xGene2(), {8, 4, 2},
                 {GHz(2.4), GHz(1.2), GHz(0.9)});
        ed2pGrid(engine, cache, arenas, xGene3(), {32, 16, 8},
                 {GHz(3.0), GHz(1.5)});
    }

    std::cout << "Paper reference: namd/EP prefer the highest "
                 "frequency; milc/CG/FT prefer the reduced "
                 "frequency for ED2P.\n";
    return 0;
}
