/**
 * @file
 * Figure 12 — energy-delay-squared product (ED2P) for the same
 * configuration grid as Figure 11.
 *
 * Expected shape (paper): for the CPU-intensive programs (namd, EP)
 * the highest frequency always wins on ED2P; for the memory-
 * intensive ones (milc, CG, FT) frequency is inversely proportional
 * to ED2P efficiency — identifying the program class at runtime is
 * what lets the daemon pick the right configuration.
 */

#include <iostream>
#include <string>
#include <vector>

#include "run_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

void
ed2pGrid(const ExperimentEngine &engine, MemoCache<RunStats> &cache,
         MachinePool &arenas, const ChipSpec &chip,
         const std::vector<std::uint32_t> &thread_options,
         const std::vector<Hertz> &freq_options)
{
    const auto benchmarks = Catalog::instance().figureBenchmarks();

    std::vector<std::string> header{"benchmark", "threads"};
    for (Hertz f : freq_options)
        header.push_back(formatDouble(units::toGHz(f), 1) + " GHz");
    header.push_back("best");
    TextTable t(header);

    std::vector<ConfigPoint> points;
    for (const auto *bench : benchmarks) {
        for (std::uint32_t threads : thread_options) {
            for (Hertz f : freq_options) {
                points.push_back({bench, threads,
                                  Allocation::Spreaded, f,
                                  /*undervolt=*/true, /*seed=*/1});
            }
        }
    }
    const std::vector<RunStats> stats =
        runConfigurations(engine, chip, points, &cache, &arenas);

    std::size_t idx = 0;
    for (const auto *bench : benchmarks) {
        for (std::uint32_t threads : thread_options) {
            std::vector<std::string> row{bench->name,
                                         std::to_string(threads)};
            double best = 1e300;
            std::size_t best_idx = 0;
            std::vector<double> vals;
            for (std::size_t f = 0; f < freq_options.size(); ++f) {
                const RunStats &r = stats[idx++];
                vals.push_back(r.ed2p);
                if (r.ed2p < best) {
                    best = r.ed2p;
                    best_idx = vals.size() - 1;
                }
            }
            for (double v : vals)
                row.push_back(formatSi(v, 2));
            row.push_back(
                formatDouble(units::toGHz(freq_options[best_idx]), 1)
                + " GHz");
            t.addRow(row);
        }
    }
    std::cout << "--- " << chip.name << " ED2P (safe Vmin) ---\n";
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace units;
    std::cout << "=== Figure 12: ED2P across thread/frequency "
                 "configurations ===\n\n";

    EngineConfig ec;
    ec.jobs = stripJobsFlag(argc, argv);
    const ExperimentEngine engine{ec};
    MemoCache<RunStats> cache;
    MachinePool arenas;

    ed2pGrid(engine, cache, arenas, xGene2(), {8, 4, 2},
             {GHz(2.4), GHz(1.2), GHz(0.9)});
    ed2pGrid(engine, cache, arenas, xGene3(), {32, 16, 8},
             {GHz(3.0), GHz(1.5)});

    std::cout << "Paper reference: namd/EP prefer the highest "
                 "frequency; milc/CG/FT prefer the reduced "
                 "frequency for ED2P.\n";
    return 0;
}
