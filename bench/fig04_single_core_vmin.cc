/**
 * @file
 * Figure 4 — single-core and two-core executions on X-Gene 2 at
 * 2.4 GHz: the safe region per physical core / PMD.
 *
 * In few-core runs the core-to-core static variation and the
 * workload variation are fully visible (up to ~30 mV and ~40 mV on
 * X-Gene 2).  The paper's Figure 4 shows PMD2 (cores 4, 5) as the
 * most robust module and PMD0/PMD1 as the most sensitive ones.
 */

#include <iostream>
#include <string>
#include <vector>

#include "ecosched/ecosched.hh"

using namespace ecosched;

int
main(int argc, char **argv)
{
    const ChipSpec chip = xGene2();
    const VminModel model(chip);
    const FailureModel failures;
    const VminCharacterizer characterizer(model, failures);
    EngineConfig ec;
    ec.jobs = stripJobsFlag(argc, argv);
    ec.baseSeed = 7;
    const ExperimentEngine engine{ec};

    // A spread of workloads from most to least Vmin-sensitive.
    const auto &catalog = Catalog::instance();
    const std::vector<const BenchmarkProfile *> workloads = {
        &catalog.byName("FT"), &catalog.byName("milc"),
        &catalog.byName("gcc"), &catalog.byName("namd"),
        &catalog.byName("povray")};

    std::cout << "=== Figure 4: single-core (top) and two-core "
                 "(bottom) safe Vmin on X-Gene 2 @ 2.4 GHz ===\n\n";

    // Both sections as one engine batch: (bench x core) single-core
    // sweeps first, then (bench x PMD) two-core sweeps.
    std::vector<CharacterizationTask> tasks;
    for (const auto *bench : workloads) {
        for (CoreId c = 0; c < chip.numCores; ++c)
            tasks.push_back({chip.fMax, {c}, bench->vminSensitivity});
    }
    const std::size_t pmd_base = tasks.size();
    for (const auto *bench : workloads) {
        for (PmdId p = 0; p < chip.numPmds(); ++p) {
            tasks.push_back({chip.fMax,
                             {firstCoreOfPmd(p), secondCoreOfPmd(p)},
                             bench->vminSensitivity});
        }
    }
    const auto results = characterizer.characterizeBatch(engine,
                                                         tasks);

    {
        std::vector<std::string> header{"benchmark"};
        for (CoreId c = 0; c < chip.numCores; ++c)
            header.push_back("core" + std::to_string(c));
        TextTable t(header);
        for (std::size_t b = 0; b < workloads.size(); ++b) {
            std::vector<std::string> row{workloads[b]->name};
            for (CoreId c = 0; c < chip.numCores; ++c) {
                row.push_back(formatDouble(
                    units::toMilliVolts(
                        results[b * chip.numCores + c].safeVmin),
                    0));
            }
            t.addRow(row);
        }
        std::cout << "single-core safe Vmin (mV):\n";
        t.print(std::cout);
    }

    {
        std::vector<std::string> header{"benchmark"};
        for (PmdId p = 0; p < chip.numPmds(); ++p)
            header.push_back("PMD" + std::to_string(p));
        TextTable t(header);
        for (std::size_t b = 0; b < workloads.size(); ++b) {
            std::vector<std::string> row{workloads[b]->name};
            for (PmdId p = 0; p < chip.numPmds(); ++p) {
                row.push_back(formatDouble(
                    units::toMilliVolts(
                        results[pmd_base + b * chip.numPmds() + p]
                            .safeVmin),
                    0));
            }
            t.addRow(row);
        }
        std::cout << "\ntwo-core (one PMD) safe Vmin (mV):\n";
        t.print(std::cout);
    }

    std::cout << "\nstatic per-PMD offsets of this chip sample "
                 "(mV, relative to the most sensitive PMD):\n  ";
    for (PmdId p = 0; p < chip.numPmds(); ++p) {
        std::cout << "PMD" << p << ": "
                  << formatDouble(
                         units::toMilliVolts(model.pmdOffset(p)), 0)
                  << "  ";
    }
    std::cout << "\n\nPaper reference: PMD2 is the most robust "
                 "module; up to 40 mV workload and 30 mV "
                 "core-to-core variation in few-core runs.\n";
    return 0;
}
