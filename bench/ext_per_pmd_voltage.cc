/**
 * @file
 * Extension — what would per-PMD voltage domains buy?
 *
 * On the X-Gene chips "all the CPU cores operate at the same
 * voltage" (§II.A), so whenever CPU- and memory-intensive work
 * coexist the chip-wide supply must satisfy the *highest* frequency
 * class: the memory-intensive PMDs at the reduced clock are
 * overvolted.  Related work the paper discusses (Isci et al.,
 * Teodorescu & Torrellas) assumes per-core voltage domains instead.
 *
 * This bench computes an *idealized* steady-state bound: for mixed
 * CPU+memory configurations it bills each PMD's switching power at
 * its own class Vmin (as if it had a private regulator) and
 * compares against the single-domain daemon voltage.  Shared
 * components (uncore, leakage) stay at the single-domain voltage —
 * a conservative estimate of the upper bound.
 */

#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

struct Mix
{
    std::uint32_t cpuThreads;
    std::uint32_t memThreads;
};

/// Switching power of a group of cores at a given V/f.
Watt
groupDynamicPower(const PowerModel &model, const ChipSpec &spec,
                  std::uint32_t threads, Allocation alloc, Hertz f,
                  Volt v, double switching)
{
    Chip chip(spec);
    chip.setAllFrequencies(f);
    chip.setVoltage(v);
    Watt total = 0.0;
    const auto cores = allocateCores(spec.numCores, threads, alloc);
    for (CoreId c : cores)
        total += model.corePower(chip, c, {1.0, switching});
    for (PmdId p : [&] {
             std::vector<PmdId> pmds;
             for (CoreId c : cores) {
                 if (pmds.empty() || pmds.back() != pmdOfCore(c))
                     pmds.push_back(pmdOfCore(c));
             }
             return pmds;
         }()) {
        total += model.pmdOverheadPower(chip, p);
    }
    return total;
}

} // namespace

int
main()
{
    const ChipSpec chip = xGene3();
    const PowerModel model(chip);
    const VminModel vmin(chip);
    const DroopClassTable table(vmin);
    const PlacementEngine engine(chip);
    const Hertz f_cpu = engine.cpuFrequency();
    const Hertz f_mem = engine.memFrequency();

    std::cout << "=== Extension: single vs (idealized) per-PMD "
                 "voltage domains, " << chip.name
              << " steady state ===\n\n";

    TextTable t({"mix (cpu+mem threads)", "utilized PMDs",
                 "single-domain V", "per-PMD V (cpu/mem)",
                 "core power single", "core power per-PMD",
                 "reduction"});

    for (const Mix &mix : {Mix{4, 4}, Mix{8, 8}, Mix{16, 8},
                           Mix{8, 16}, Mix{2, 14}}) {
        const std::uint32_t cpu_pmds =
            (mix.cpuThreads + 1) / coresPerPmd;
        const std::uint32_t mem_pmds = mix.memThreads; // spreaded
        const std::uint32_t utilized = cpu_pmds + mem_pmds;
        if (utilized > chip.numPmds())
            continue;

        // Single domain: everything at the high-class voltage for
        // the total utilized-PMD count (what the daemon programs).
        const Volt v_single = table.safeVoltage(f_cpu, utilized);
        // Idealized per-PMD domains: each group at its own class
        // voltage (same utilized-PMD droop class — the droops are a
        // chip-wide phenomenon — but its own frequency class).
        const Volt v_cpu = table.safeVoltage(f_cpu, utilized);
        const Volt v_mem = table.safeVoltage(f_mem, utilized);

        const double sw_cpu = 1.2;
        const double sw_mem = 0.88;
        const Watt single =
            groupDynamicPower(model, chip, mix.cpuThreads,
                              Allocation::Clustered, f_cpu,
                              v_single, sw_cpu)
            + groupDynamicPower(model, chip, mix.memThreads,
                                Allocation::Spreaded, f_mem,
                                v_single, sw_mem);
        const Watt split =
            groupDynamicPower(model, chip, mix.cpuThreads,
                              Allocation::Clustered, f_cpu, v_cpu,
                              sw_cpu)
            + groupDynamicPower(model, chip, mix.memThreads,
                                Allocation::Spreaded, f_mem, v_mem,
                                sw_mem);

        t.addRow({std::to_string(mix.cpuThreads) + "+"
                      + std::to_string(mix.memThreads),
                  std::to_string(utilized),
                  formatDouble(units::toMilliVolts(v_single), 0)
                      + " mV",
                  formatDouble(units::toMilliVolts(v_cpu), 0) + "/"
                      + formatDouble(units::toMilliVolts(v_mem), 0)
                      + " mV",
                  formatDouble(single, 2) + " W",
                  formatDouble(split, 2) + " W",
                  formatPercent(1.0 - split / single, 1)});
    }
    t.print(std::cout);

    std::cout
        << "\nIdealized bound: memory-class PMDs billed at the "
           "Half-class Vmin instead of the chip-wide High-class "
           "value.  The gap is the cost of the single PCP voltage "
           "domain the paper's daemon has to live with — a few "
           "percent of switching power, which explains why the "
           "authors' allocation+frequency levers matter more than "
           "finer voltage domains on this platform.\n";
    return 0;
}
