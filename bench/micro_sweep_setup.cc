/**
 * @file
 * Sweep-setup microbenchmark: end-to-end cost of a Figure 11 style
 * characterization grid on the two execution paths.
 *
 *  - legacy: one fresh Machine per grid point, plain 10 ms step loop
 *    (`runConfiguration`) — what every characterization bench did
 *    before the snapshot/prototype layer;
 *  - arena:  the pooled path (`runConfigurations`) — points sharing
 *    a chip sample fork off one prototype machine rewound to its
 *    pristine snapshot, macro-stepped to completion.
 *
 * Both paths produce bit-identical RunStats (pinned here and by the
 * sweep-equality tests); what the arena path buys is setup time: the
 * Vmin characterization, droop tables and placement engine are built
 * once per (chip, seed) instead of once per point.
 *
 * Emits machine-readable JSON (schema `ecosched.sweep_setup/1`,
 * documented in EXPERIMENTS.md) to BENCH_sweep_setup.json and to
 * stdout, so CI can compare runs against a committed baseline with
 * tools/check_sweep_setup.py.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "run_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

using Clock = std::chrono::steady_clock;

/// One chip's measured sweep.
struct Result
{
    std::string chip;
    std::size_t points = 0;
    double legacyWallSec = 0.0;
    double arenaWallSec = 0.0;
    std::uint64_t arenaBuilds = 0;
    std::uint64_t arenaReuses = 0;

    double speedup() const
    {
        return arenaWallSec > 0.0 ? legacyWallSec / arenaWallSec
                                  : 0.0;
    }
};

/// The Figure 11 grid for one chip (every spotlight benchmark at
/// every thread/frequency configuration, safe Vmin).
std::vector<ConfigPoint>
fig11Grid(const std::vector<std::uint32_t> &thread_options,
          const std::vector<Hertz> &freq_options)
{
    std::vector<ConfigPoint> points;
    for (const auto *bench : Catalog::instance().figureBenchmarks()) {
        for (std::uint32_t threads : thread_options) {
            for (Hertz f : freq_options) {
                points.push_back({bench, threads,
                                  Allocation::Spreaded, f,
                                  /*undervolt=*/true, /*seed=*/1});
            }
        }
    }
    return points;
}

/// Bitwise equality of two RunStats (every field is a double).
bool
identical(const RunStats &a, const RunStats &b)
{
    return std::memcmp(&a, &b, sizeof(RunStats)) == 0;
}

Result
measureChip(const ExperimentEngine &engine, const ChipSpec &chip,
            const std::vector<ConfigPoint> &points, int repeats)
{
    Result r;
    r.chip = chip.name;
    r.points = points.size();

    std::vector<RunStats> legacy;
    std::vector<RunStats> arena;
    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = Clock::now();
        legacy = engine.mapSpecs<RunStats, ConfigPoint>(
            points, [&chip](std::size_t, const ConfigPoint &p, Rng &) {
                return runConfiguration(chip, *p.bench, p.threads,
                                        p.alloc, p.freq, p.undervolt,
                                        p.seed);
            });
        const auto t1 = Clock::now();
        MachinePool pool;
        arena = runConfigurations(engine, chip, points,
                                  /*cache=*/nullptr, &pool);
        const auto t2 = Clock::now();
        r.legacyWallSec +=
            std::chrono::duration<double>(t1 - t0).count();
        r.arenaWallSec +=
            std::chrono::duration<double>(t2 - t1).count();
        r.arenaBuilds += pool.stats().builds;
        r.arenaReuses += pool.stats().reuses;
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!identical(legacy[i], arena[i])) {
            std::cerr << "FATAL: legacy/arena divergence on "
                      << chip.name << " point " << i << "\n";
            std::exit(1);
        }
    }
    return r;
}

std::string
toJson(const std::vector<Result> &results, unsigned jobs)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"ecosched.sweep_setup/1\",\n"
       << "  \"jobs\": " << jobs << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        os << "    {\"chip\": \"" << r.chip << "\", \"points\": "
           << r.points << ", \"legacy_wall_sec\": " << r.legacyWallSec
           << ", \"arena_wall_sec\": " << r.arenaWallSec
           << ", \"speedup\": " << r.speedup()
           << ", \"arena_builds\": " << r.arenaBuilds
           << ", \"arena_reuses\": " << r.arenaReuses << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_sweep_setup.json";
    int repeats = 3;
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            repeats = 1;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--quick] [--jobs N] [--out FILE]\n";
            return 2;
        }
    }

    using namespace units;
    EngineConfig ec;
    ec.jobs = jobs == 0 ? 1 : jobs;
    const ExperimentEngine engine{ec};

    std::vector<Result> results;
    results.push_back(measureChip(
        engine, xGene2(),
        fig11Grid({8, 4, 2}, {GHz(2.4), GHz(1.2), GHz(0.9)}),
        repeats));
    results.push_back(measureChip(
        engine, xGene3(),
        fig11Grid({32, 16, 8}, {GHz(3.0), GHz(1.5)}), repeats));

    const std::string json = toJson(results, ec.jobs);
    std::cout << json;
    std::ofstream file(out);
    file << json;
    if (!file) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    return 0;
}
