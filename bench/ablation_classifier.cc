/**
 * @file
 * Ablation — classifier threshold and hysteresis.
 *
 * Sweeps the L3C-per-1M-cycles classification threshold around the
 * paper's 3000 and the hysteresis band, reporting energy savings
 * and time penalty of the Optimal configuration.  Too low a
 * threshold slows CPU-bound work (time balloons); too high a
 * threshold leaves memory-bound work at fmax (savings shrink);
 * zero hysteresis invites reclassification thrashing (migrations).
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    ScenarioOptions opt = parseOptions(argc, argv);
    if (argc <= 1)
        opt.duration = 1200.0;
    const ChipSpec chip = xGene3();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Ablation: classification threshold & "
                 "hysteresis (" << chip.name << ", "
              << formatDouble(opt.duration, 0)
              << " s workload, Optimal) ===\n\n";

    ScenarioConfig base_cfg;
    base_cfg.chip = chip;
    base_cfg.policy = PolicyKind::Baseline;
    const ScenarioResult base =
        ScenarioRunner(base_cfg).run(workload);

    TextTable t({"threshold", "hysteresis", "energy savings",
                 "time penalty", "migrations", "reclassifications"});
    for (double threshold : {1000.0, 2000.0, 3000.0, 5000.0,
                             8000.0}) {
        ScenarioConfig sc;
        sc.chip = chip;
        sc.policy = PolicyKind::Optimal;
        sc.daemon.classifier.thresholdPerMCycles = threshold;
        const ScenarioResult r = ScenarioRunner(sc).run(workload);
        t.addRow({formatDouble(threshold, 0), "10%",
                  formatPercent(1.0 - r.energy / base.energy, 1),
                  formatPercent(
                      r.completionTime / base.completionTime - 1.0,
                      1),
                  std::to_string(r.migrations),
                  std::to_string(
                      r.daemonStats.classificationChanges)});
    }
    for (double hysteresis : {0.0, 0.25}) {
        ScenarioConfig sc;
        sc.chip = chip;
        sc.policy = PolicyKind::Optimal;
        sc.daemon.classifier.hysteresis = hysteresis;
        const ScenarioResult r = ScenarioRunner(sc).run(workload);
        t.addRow({"3000", formatPercent(hysteresis, 0),
                  formatPercent(1.0 - r.energy / base.energy, 1),
                  formatPercent(
                      r.completionTime / base.completionTime - 1.0,
                      1),
                  std::to_string(r.migrations),
                  std::to_string(
                      r.daemonStats.classificationChanges)});
    }
    t.print(std::cout);

    std::cout << "\nPaper setting: threshold 3000 (Figure 9) with "
                 "the kernel-module counter path.\n";
    return 0;
}
