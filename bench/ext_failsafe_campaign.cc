/**
 * @file
 * Extension — energy/performance cost of the fail-safe recovery
 * protocol under fault-injection campaigns.
 *
 * The paper argues the aggressive undervolting is viable because the
 * fail-safe path (raise to nominal, quarantine the optimistic V/F
 * point, re-run the victim) makes failures cheap.  This bench
 * quantifies that claim: it sweeps the below-Vmin strike rate on
 * both chips under the Optimal configuration and reports what each
 * injection level costs in energy, completion time and jobs, next
 * to the injector's delivery and the daemon's recovery counters.
 *
 * Arguments: [duration] [seed] [--jobs N] as in the other scenario
 * benches.  The (chip x rate) grid fans out on the experiment
 * engine and is bit-identical at any --jobs value.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    ScenarioOptions opt = parseOptions(argc, argv);
    if (opt.duration == 3600.0 && argc <= 1)
        opt.duration = 600.0; // campaigns re-run victims: keep short
    const std::vector<double> rates{0.0, 10.0, 30.0, 60.0, 120.0};
    const std::vector<ChipSpec> chips{xGene2(), xGene3()};

    std::cout << "=== Extension: fail-safe recovery cost vs. "
                 "injection rate ("
              << formatDouble(opt.duration, 0) << " s, seed "
              << opt.seed << ") ===\n\n";

    struct Cell
    {
        std::size_t chip;
        double rate; ///< thread strikes per hour
    };
    std::vector<Cell> cells;
    for (std::size_t c = 0; c < chips.size(); ++c) {
        for (double rate : rates)
            cells.push_back({c, rate});
    }

    const ExperimentEngine engine = makeEngine(opt);
    // Campaign cells on one chip share a stack identity; the pool
    // rewinds a parked stack to its pristine snapshot per cell.
    SimStackPool stacks;
    const std::vector<CampaignResult> grid =
        engine.mapSpecs<CampaignResult, Cell>(
            cells, [&](std::size_t, const Cell &cell, Rng &) {
                CampaignProfile profile;
                profile.duration = opt.duration;
                profile.threadFaultsPerHour = cell.rate;
                profile.droopSpikesPerHour = cell.rate / 3.0;
                CampaignConfig cc;
                cc.chip = chips[cell.chip];
                cc.duration = opt.duration;
                cc.seed = opt.seed;
                cc.plan =
                    InjectionPlan::randomCampaign(profile, opt.seed);
                cc.stackPool = &stacks;
                return CampaignRunner(cc).run();
            });

    for (std::size_t c = 0; c < chips.size(); ++c) {
        const CampaignResult &clean = grid[c * rates.size()];
        TextTable t({"faults/h", "detect", "recover", "retry",
                     "quarant", "lost", "energy (J)", "time (s)",
                     "energy cost", "time cost"});
        for (std::size_t r = 0; r < rates.size(); ++r) {
            const CampaignResult &cell = grid[c * rates.size() + r];
            const ScenarioResult &s = cell.scenario;
            t.addRow({formatDouble(rates[r], 0),
                      std::to_string(cell.recovery.detections),
                      std::to_string(cell.recovery.recoveries),
                      std::to_string(cell.recovery.retries),
                      std::to_string(cell.recovery.quarantinedPoints),
                      std::to_string(cell.recovery.jobsLost),
                      formatDouble(s.energy, 1),
                      formatDouble(s.completionTime, 1),
                      r == 0 ? std::string("-")
                             : formatPercent(s.energy
                                                 / clean.scenario.energy
                                             - 1.0),
                      r == 0
                          ? std::string("-")
                          : formatPercent(
                                s.completionTime
                                    / clean.scenario.completionTime
                                - 1.0)});
        }
        std::cout << chips[c].name
                  << " (Optimal configuration):\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "A zero-fault campaign is byte-identical to the "
                 "plain scenario run; recovery cost should grow "
                 "smoothly with the strike rate.\n";
    return 0;
}
