/**
 * @file
 * Extension — fleet scaling to 10k nodes under diurnal traffic.
 *
 * Scales a heterogeneous fleet (alternating X-Gene 3 / X-Gene 2
 * nodes) across {10, 100, 1000, 10000} nodes and serves the *same
 * offered load per unit of fleet capacity* — a day-shaped diurnal
 * arrival curve at 10% mean occupancy — under round_robin,
 * least_loaded and energy_aware dispatch.  Every run exercises the
 * full production feature set of the cluster layer:
 *
 *  - the sharded, window-pipelined epoch engine (nodes stamped from
 *    per-shape prototype stacks, stepped across the thread pool);
 *  - the SLO autoscaler parking the idle bulk of the fleet through
 *    the diurnal trough and re-opening it for the peak;
 *  - a rack-scoped correlated-failure campaign (32-node racks, one
 *    expected whole-rack outage per run) for fleets large enough to
 *    have racks.
 *
 * Reports per point: job accounting, energy, p99 sojourn latency,
 * autoscaler activity, crash/restart counts, and the engine's wall
 * throughput in node-epochs/s (the scaling figure of merit).  Emits
 * machine-readable JSON (schema `ecosched.cluster_scaling/1`,
 * documented in EXPERIMENTS.md) so CI can compare a quick run
 * against the committed BENCH_cluster_scaling.json trajectory.
 *
 * Usage: ext_cluster_scaling [duration_s] [seed] [--jobs N]
 *                            [--quick] [--out FILE]
 *
 * --quick caps the sweep at 1000 nodes (CI smoke); the default runs
 * to 10000.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

using Clock = std::chrono::steady_clock;

/// Arrival rate that offers `occupancy` of the fleet's capacity.
double
plannedRate(const std::vector<NodeConfig> &nodes,
            const TrafficModel &planner, double occupancy)
{
    double rate = 0.0;
    for (const NodeConfig &nc : nodes) {
        rate += occupancy
            * static_cast<double>(nc.chip.numCores)
            / planner.meanCoreSecondsPerJob(nc.chip.numCores);
    }
    return rate;
}

/// One measured (fleet size, dispatch policy) point.
struct Point
{
    std::size_t nodes = 0;
    std::string dispatch;
    ClusterResult r;
    Seconds parked = 0.0;
    double wallSec = 0.0;

    /// Engine throughput: fleet-size × simulated epochs per wall
    /// second (dispatchInterval = 1 s, so epochs = makespan).
    double nodeEpochsPerSec() const
    {
        return wallSec > 0.0
            ? static_cast<double>(nodes) * r.makespan / wallSec
            : 0.0;
    }
};

constexpr double kOccupancy = 0.10;
constexpr std::uint32_t kNodesPerRack = 32;

Point
runPoint(std::size_t n, DispatchPolicy policy, Seconds duration,
         std::uint64_t seed, unsigned jobs)
{
    ClusterConfig cc;
    cc.nodes = mixedFleet(n, seed);
    cc.dispatch = policy;
    cc.traffic.process = ArrivalProcess::Diurnal;
    cc.traffic.duration = duration;
    cc.traffic.diurnalAmplitude = 0.8;
    cc.traffic.seed = seed;
    cc.drainBoundFactor = 20.0;
    cc.jobs = jobs;
    cc.traffic.arrivalsPerSecond =
        plannedRate(cc.nodes, TrafficModel(cc.traffic), kOccupancy);

    // SLO autoscaler: park the idle bulk through the trough, re-open
    // capacity when the peak pushes the p99 sojourn past target.
    cc.autoscale.enabled = true;
    cc.autoscale.targetP99 = 420.0;
    cc.autoscale.lowWatermark = 0.7;
    cc.autoscale.evalInterval = 20.0;
    cc.autoscale.window = 200.0;
    cc.autoscale.minLiveNodes = std::max<std::size_t>(1, n / 16);

    // Correlated whole-rack outages for fleets with rack structure
    // (two expected rack crashes per run, restart after 60 s).
    if (n >= kNodesPerRack) {
        cc.nodesPerRack = kNodesPerRack;
        CampaignProfile faults;
        faults.duration = duration;
        faults.nodes = static_cast<std::uint32_t>(n);
        faults.nodesPerRack = kNodesPerRack;
        faults.rackCrashesPerHour = 2.0 * 3600.0 / duration;
        faults.rackRestartDelay = 60.0;
        cc.injection = InjectionPlan::randomCampaign(faults, seed);
    }

    Point p;
    p.nodes = n;
    p.dispatch = dispatchPolicyName(policy);
    const auto begin = Clock::now();
    p.r = ClusterSim(std::move(cc)).run();
    const auto end = Clock::now();
    p.wallSec = std::chrono::duration<double>(end - begin).count();
    for (const NodeSummary &s : p.r.nodes)
        p.parked += s.parkedTime;
    return p;
}

std::string
toJson(const std::vector<Point> &points, Seconds duration,
       std::uint64_t seed)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"ecosched.cluster_scaling/1\",\n"
       << "  \"duration_sec\": " << duration << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"occupancy\": " << kOccupancy << ",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const ClusterResult &r = p.r;
        os << "    {\"nodes\": " << p.nodes << ", \"dispatch\": \""
           << p.dispatch << "\", \"jobs_submitted\": "
           << r.jobsSubmitted << ", \"jobs_completed\": "
           << r.jobsCompleted << ", \"jobs_dropped\": "
           << r.jobsDropped << ", \"jobs_lost\": " << r.jobsLost
           << ", \"node_crashes\": " << r.nodeCrashes
           << ", \"node_restarts\": " << r.nodeRestarts
           << ", \"autoscale_parks\": " << r.autoscaleParks
           << ", \"autoscale_unparks\": " << r.autoscaleUnparks
           << ", \"total_energy_j\": " << r.totalEnergy
           << ", \"energy_per_job_j\": " << r.energyPerJob()
           << ", \"avg_power_w\": " << r.averagePower
           << ", \"latency_p99_s\": " << r.latencyP99
           << ", \"makespan_s\": " << r.makespan
           << ", \"parked_s\": " << p.parked
           << ", \"wall_sec\": " << p.wallSec
           << ", \"node_epochs_per_sec\": " << p.nodeEpochsPerSec()
           << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = stripJobsFlag(argc, argv);
    bool quick = false;
    std::string out = "BENCH_cluster_scaling.json";
    std::vector<char *> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            positional.push_back(argv[i]);
        }
    }
    const Seconds duration =
        !positional.empty() ? std::atof(positional[0]) : 120.0;
    const std::uint64_t seed = positional.size() > 1
        ? static_cast<std::uint64_t>(std::atoll(positional[1]))
        : 7;

    std::cout << "=== Extension: fleet scaling to 10k nodes "
                 "(diurnal traffic, SLO autoscaler, rack faults; "
              << formatDouble(duration, 0) << " s of arrivals, seed "
              << seed << ") ===\n\n";

    const std::vector<DispatchPolicy> policies = {
        DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded,
        DispatchPolicy::EnergyAware};
    std::vector<std::size_t> sizes = {10, 100, 1000};
    if (!quick)
        sizes.push_back(10000);

    std::vector<Point> points;
    TextTable t({"nodes", "dispatch", "jobs", "energy [J]", "J/job",
                 "p99 [s]", "parks", "unparks", "crashes",
                 "restarts", "wall [s]", "node-epochs/s"});
    for (std::size_t n : sizes) {
        for (DispatchPolicy policy : policies) {
            Point p = runPoint(n, policy, duration, seed, jobs);
            t.addRow({std::to_string(p.nodes), p.dispatch,
                      std::to_string(p.r.jobsCompleted),
                      formatDouble(p.r.totalEnergy, 1),
                      formatDouble(p.r.energyPerJob(), 1),
                      formatDouble(p.r.latencyP99, 2),
                      std::to_string(p.r.autoscaleParks),
                      std::to_string(p.r.autoscaleUnparks),
                      std::to_string(p.r.nodeCrashes),
                      std::to_string(p.r.nodeRestarts),
                      formatDouble(p.wallSec, 2),
                      formatDouble(p.nodeEpochsPerSec(), 0)});
            points.push_back(std::move(p));
        }
    }
    t.print(std::cout);
    std::cout << "\nEqual offered load per unit capacity at every "
                 "fleet size (10% mean occupancy, 0.8 diurnal "
                 "swing);\nthe autoscaler parks the trough, "
                 "energy_aware additionally consolidates the awake "
                 "set;\nfleets of >= " << kNodesPerRack
              << " nodes absorb one expected whole-rack outage.\n";

    const std::string json = toJson(points, duration, seed);
    std::ofstream file(out);
    file << json;
    if (!file) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    std::cerr << "wrote " << out << "\n";
    return 0;
}
