/**
 * @file
 * Extension — fleet scaling under the three dispatch policies.
 *
 * Scales a heterogeneous fleet (alternating X-Gene 3 / X-Gene 2
 * nodes) across {1, 2, 4, 8, 16} nodes and serves the *same offered
 * load per unit of fleet capacity* under round_robin, least_loaded
 * and energy_aware dispatch.  Reports total energy, energy per job,
 * p99 sojourn latency and fleet utilization for each point.
 *
 * The expected picture: round_robin keeps every node warm and pays
 * awake-idle power fleet-wide; energy_aware consolidates onto the
 * deepest safe-Vmin chips and parks the rest, cutting total energy
 * at equal load without giving up tail latency.
 *
 * Usage: ext_cluster_scaling [duration_s] [seed] [--jobs N]
 */

#include <cstdlib>
#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

/// Arrival rate that offers `occupancy` of the fleet's capacity.
double
plannedRate(const std::vector<NodeConfig> &nodes,
            const TrafficModel &planner, double occupancy)
{
    double rate = 0.0;
    for (const NodeConfig &nc : nodes) {
        rate += occupancy
            * static_cast<double>(nc.chip.numCores)
            / planner.meanCoreSecondsPerJob(nc.chip.numCores);
    }
    return rate;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = stripJobsFlag(argc, argv);
    const Seconds duration = argc > 1 ? std::atof(argv[1]) : 300.0;
    const std::uint64_t seed = argc > 2
        ? static_cast<std::uint64_t>(std::atoll(argv[2]))
        : 7;

    std::cout << "=== Extension: fleet scaling vs dispatch policy "
                 "(mixed X-Gene 3/2 fleet, "
              << formatDouble(duration, 0) << " s of arrivals, seed "
              << seed << ") ===\n\n";

    const std::vector<DispatchPolicy> policies = {
        DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded,
        DispatchPolicy::EnergyAware};

    TextTable t({"nodes", "dispatch", "jobs", "energy [J]",
                 "J/job", "p99 [s]", "avg power [W]", "parked [s]",
                 "crashes"});
    for (std::size_t n : {1, 2, 4, 8, 16}) {
        for (DispatchPolicy policy : policies) {
            ClusterConfig cc;
            cc.nodes = mixedFleet(n, seed);
            cc.dispatch = policy;
            cc.traffic.duration = duration;
            cc.traffic.seed = seed;
            cc.jobs = jobs;
            cc.traffic.arrivalsPerSecond =
                plannedRate(cc.nodes, TrafficModel(cc.traffic), 0.4);

            const ClusterResult r = ClusterSim(std::move(cc)).run();
            Seconds parked = 0.0;
            for (const NodeSummary &s : r.nodes)
                parked += s.parkedTime;
            t.addRow({std::to_string(n),
                      dispatchPolicyName(policy),
                      std::to_string(r.jobsCompleted),
                      formatDouble(r.totalEnergy, 1),
                      formatDouble(r.energyPerJob(), 1),
                      formatDouble(r.latencyP99, 2),
                      formatDouble(r.averagePower, 2),
                      formatDouble(parked, 1),
                      std::to_string(r.nodeCrashes)});
        }
    }
    t.print(std::cout);
    std::cout << "\nEqual offered load per unit capacity at every "
                 "fleet size (40% planned occupancy);\nenergy_aware "
                 "parks idle nodes into standby, round_robin keeps "
                 "the whole fleet warm.\n";
    return 0;
}
