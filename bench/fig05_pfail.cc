/**
 * @file
 * Figure 5 — cumulative probability of failure (pfail) below the
 * safe Vmin for different frequency / core-allocation / thread-
 * scaling options, averaged over the 25 benchmarks.
 *
 * Expected shape (paper): max-threads and spreaded half-threads at
 * the same frequency are virtually identical (same droop class);
 * clustered half-threads sit at visibly lower voltages; lower
 * frequencies shift every curve further down.
 */

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

struct Config
{
    std::string label;
    std::uint32_t threads;
    Allocation alloc;
    Hertz freq;
};

void
pfailCurves(const ExperimentEngine &engine, const ChipSpec &chip,
            const std::vector<Config> &configs)
{
    const VminModel model(chip);
    const FailureModel failures;
    CharacterizerConfig cc;
    cc.safeTrials = 200; // curve resolution, not Vmin certification
    cc.unsafeTrials = 60;
    const VminCharacterizer characterizer(model, failures, cc);
    const auto benchmarks = Catalog::instance().characterizedSet();

    // One task per (config, benchmark) cell, fanned across the
    // engine's workers; task order (and thus the per-task seed tree)
    // is fixed, so the curves are bit-identical at any --jobs value.
    std::vector<CharacterizationTask> tasks;
    for (const auto &c : configs) {
        for (const auto *bench : benchmarks) {
            tasks.push_back({c.freq,
                             allocateCores(chip.numCores, c.threads,
                                           c.alloc),
                             bench->vminSensitivity});
        }
    }
    const auto results = characterizer.characterizeBatch(engine,
                                                         tasks);

    // voltage [mV] -> per-config mean pfail
    std::map<double, std::vector<double>,
             std::greater<double>> curves;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        std::map<double, RunningStats> acc;
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            const auto &result =
                results[i * benchmarks.size() + b];
            for (const auto &pt : result.sweep)
                acc[units::toMilliVolts(pt.voltage)].add(pt.pfail());
        }
        for (const auto &[mv, stats] : acc) {
            auto &row = curves[mv];
            row.resize(configs.size(), -1.0);
            row[i] = stats.mean();
        }
    }

    std::vector<std::string> header{"voltage (mV)"};
    for (const auto &c : configs)
        header.push_back(c.label);
    TextTable t(header);
    for (const auto &[mv, row] : curves) {
        std::vector<std::string> cells{formatDouble(mv, 0)};
        bool interesting = false;
        for (double v : row) {
            if (v < 0.0) {
                // Sweep already hit this config's complete-failure
                // point above this level.
                cells.push_back("(below crash)");
            } else {
                cells.push_back(formatPercent(v, 1));
                interesting |= v > 0.0;
            }
        }
        // Skip the all-zero top of the sweep to keep output compact.
        if (interesting || mv <= 940.0)
            t.addRow(cells);
    }
    std::cout << "--- " << chip.name
              << ": mean pfail over the 25 benchmarks ---\n";
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace units;
    std::cout << "=== Figure 5: probability of failure below the "
                 "safe Vmin ===\n\n";

    const unsigned jobs = stripJobsFlag(argc, argv);
    EngineConfig ec;
    ec.jobs = jobs;
    ec.baseSeed = 555;
    const ExperimentEngine engine{ec};
    EngineConfig ec3 = ec;
    ec3.baseSeed = 556; // independent seed tree for the second chip
    const ExperimentEngine engine3{ec3};

    pfailCurves(engine, xGene2(),
                {{"8T@2.4", 8, Allocation::Spreaded, GHz(2.4)},
                 {"4T(spread)@2.4", 4, Allocation::Spreaded, GHz(2.4)},
                 {"4T(clust)@2.4", 4, Allocation::Clustered, GHz(2.4)},
                 {"8T@1.2", 8, Allocation::Spreaded, GHz(1.2)},
                 {"8T@0.9", 8, Allocation::Spreaded, GHz(0.9)}});

    pfailCurves(engine3, xGene3(),
                {{"32T@3.0", 32, Allocation::Spreaded, GHz(3.0)},
                 {"16T(spread)@3.0", 16, Allocation::Spreaded,
                  GHz(3.0)},
                 {"16T(clust)@3.0", 16, Allocation::Clustered,
                  GHz(3.0)},
                 {"32T@1.5", 32, Allocation::Spreaded, GHz(1.5)}});

    std::cout << "Paper reference: max-threads and spreaded "
                 "half-threads are virtually identical; clustered "
                 "half-threads have lower safe Vmin and pfail.\n";
    return 0;
}
