/**
 * @file
 * Table IV — X-Gene 3 results for the 4 configurations.
 *
 * Replays the same generated 1-hour server workload (constraint:
 * <= 32 active cores) under Baseline / Safe Vmin / Placement /
 * Optimal and prints the paper's table.  Paper reference: 22.3 %
 * energy savings and 2.5 % time penalty for Optimal.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    const ScenarioOptions opt = parseOptions(argc, argv);
    const ChipSpec chip = xGene3();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Table IV: X-Gene 3, "
              << formatDouble(opt.duration, 0)
              << " s generated workload (" << workload.items.size()
              << " invocations, seed " << opt.seed << ") ===\n\n";

    const ExperimentEngine engine = makeEngine(opt);
    SimStackPool stacks;
    const std::vector<ScenarioResult> results = runPolicies(
        engine, chip, workload,
        {allPolicies.begin(), allPolicies.end()}, &stacks);

    printEvaluationTable(chip, results);

    std::cout << "\nPaper reference (Table IV): energy savings "
                 "10.9% / 13.4% / 22.3%, time penalty 0% / 2.6% / "
                 "2.6% vs Baseline.\n";
    return 0;
}
