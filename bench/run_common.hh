/**
 * @file
 * Shared single-machine benchmark runner for the characterization
 * figures (7, 8, 9, 11, 12).
 *
 * The machinery moved into the library as src/search/config_space.hh
 * so the MODELSEARCH subsystem (analytic model + branch-and-bound
 * sweep executor) can share it; this header re-exports it under the
 * historical ecosched::bench names for the figure benches.
 */

#ifndef ECOSCHED_BENCH_RUN_COMMON_HH
#define ECOSCHED_BENCH_RUN_COMMON_HH

#include "ecosched/ecosched.hh"

namespace ecosched {
namespace bench {

using search::ConfigPoint;
using search::configPointKey;
using search::MachineArena;
using search::machineArenaKey;
using search::MachinePool;
using search::runConfiguration;
using search::runConfigurationOn;
using search::runConfigurations;
using search::RunStats;

} // namespace bench
} // namespace ecosched

#endif // ECOSCHED_BENCH_RUN_COMMON_HH
