/**
 * @file
 * Extension — statistical robustness of the headline result.
 *
 * Tables III/IV report one random 1-hour workload per chip.  This
 * bench repeats the X-Gene 3 evaluation over several generator
 * seeds and reports mean +- stddev of the savings, showing the
 * result is a property of the policy rather than of one lucky
 * workload.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    const unsigned jobs = stripJobsFlag(argc, argv);
    Seconds duration = 1200.0;
    int seeds = 6;
    if (argc > 1)
        duration = std::atof(argv[1]);
    if (argc > 2)
        seeds = std::atoi(argv[2]);
    const ChipSpec chip = xGene3();

    std::cout << "=== Extension: savings across " << seeds
              << " random workloads (" << chip.name << ", "
              << formatDouble(duration, 0) << " s each) ===\n\n";

    // Fan the full (seed x policy) grid across the engine's workers;
    // each cell is a pure function of its spec, so the grid is
    // bit-identical at any --jobs value.
    struct Cell
    {
        std::uint64_t seed;
        PolicyKind policy;
    };
    std::vector<Cell> cells;
    for (int s = 1; s <= seeds; ++s) {
        for (PolicyKind policy : allPolicies) {
            cells.push_back(
                {static_cast<std::uint64_t>(s * 101 + 7), policy});
        }
    }
    EngineConfig ec;
    ec.jobs = jobs;
    const ExperimentEngine engine{ec};
    // One stack identity per policy: every seed replays through a
    // stack rewound to its pristine snapshot instead of a fresh
    // construction per cell (4 builds for seeds x 4 cells).
    SimStackPool stacks;
    const std::vector<ScenarioResult> grid =
        engine.mapSpecs<ScenarioResult, Cell>(
            cells, [&](std::size_t, const Cell &cell, Rng &) {
                ScenarioOptions opt;
                opt.duration = duration;
                opt.seed = cell.seed;
                return runPolicy(chip, makeWorkload(chip, opt),
                                 cell.policy, &stacks);
            });

    RunningStats safe_savings;
    RunningStats place_savings;
    RunningStats optimal_savings;
    RunningStats time_penalty;

    TextTable t({"seed", "Safe Vmin", "Placement", "Optimal",
                 "time penalty"});
    for (int s = 0; s < seeds; ++s) {
        const ScenarioResult &base = grid[s * 4 + 0];
        const ScenarioResult &safe = grid[s * 4 + 1];
        const ScenarioResult &place = grid[s * 4 + 2];
        const ScenarioResult &optimal = grid[s * 4 + 3];

        const double sv = 1.0 - safe.energy / base.energy;
        const double pv = 1.0 - place.energy / base.energy;
        const double ov = 1.0 - optimal.energy / base.energy;
        const double tp =
            optimal.completionTime / base.completionTime - 1.0;
        safe_savings.add(sv);
        place_savings.add(pv);
        optimal_savings.add(ov);
        time_penalty.add(tp);
        t.addRow({std::to_string(cells[s * 4].seed),
                  formatPercent(sv, 1), formatPercent(pv, 1),
                  formatPercent(ov, 1), formatPercent(tp, 1)});
    }
    t.print(std::cout);

    auto summary = [](const RunningStats &s) {
        return formatPercent(s.mean(), 1) + " +- "
            + formatPercent(s.stddev(), 1);
    };
    std::cout << "\nmean +- stddev:  Safe Vmin "
              << summary(safe_savings) << ", Placement "
              << summary(place_savings) << ", Optimal "
              << summary(optimal_savings) << ", time penalty "
              << summary(time_penalty) << "\n";
    std::cout << "Paper (single workload): 10.9% / 13.4% / 22.3%, "
                 "penalty 2.6%.\n";
    return 0;
}
