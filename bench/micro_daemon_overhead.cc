/**
 * @file
 * Microbenchmarks (google-benchmark) — cost of the daemon's hot
 * paths, supporting the paper's "minimally intrusive / negligible
 * performance overhead" claim (§VI.A), plus simulator throughput.
 */

#include <benchmark/benchmark.h>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

/// Machine + system + daemon with a representative mixed load.
struct LoadedSystem
{
    Machine machine;
    System system;
    Daemon daemon;

    LoadedSystem()
        : machine(xGene3()),
          system(machine),
          daemon(system, DaemonConfig{})
    {
        const auto &catalog = Catalog::instance();
        system.submit(catalog.byName("CG"), 8);
        system.submit(catalog.byName("namd"), 1);
        system.submit(catalog.byName("milc"), 1);
        system.submit(catalog.byName("EP"), 4);
        system.submit(catalog.byName("gcc"), 1);
        // Warm the counters so monitor samples have cycles.
        for (int i = 0; i < 100; ++i)
            system.step();
    }
};

void
BM_DaemonTick(benchmark::State &state)
{
    LoadedSystem ls;
    for (auto _ : state) {
        ls.daemon.tick();
        benchmark::DoNotOptimize(ls.daemon.stats().samplesTaken);
    }
}
BENCHMARK(BM_DaemonTick);

void
BM_PlacementPlan(benchmark::State &state)
{
    const ChipSpec chip = xGene3();
    const PlacementEngine engine(chip);
    PlacementRequest req;
    const auto procs = static_cast<std::uint32_t>(state.range(0));
    CoreId core = 0;
    for (std::uint32_t i = 0; i < procs; ++i) {
        PlacementProc p;
        p.pid = i + 1;
        p.threads = 2;
        p.cls = (i % 2) ? WorkloadClass::MemoryIntensive
                        : WorkloadClass::CpuIntensive;
        p.currentCores = {core, core + 1};
        core += 2;
        req.procs.push_back(p);
    }
    for (auto _ : state) {
        const PlacementPlan plan = engine.plan(req);
        benchmark::DoNotOptimize(plan.utilizedPmds);
    }
}
BENCHMARK(BM_PlacementPlan)->Arg(2)->Arg(8)->Arg(16);

void
BM_MachineStepFullChip(benchmark::State &state)
{
    Machine machine(xGene3());
    const auto &bench = Catalog::instance().byName("CG");
    for (CoreId c = 0; c < machine.spec().numCores; ++c) {
        machine.startThread(bench.work, bench.workInstructions, c,
                            bench.vminSensitivity);
    }
    for (auto _ : state) {
        machine.step(units::ms(10));
        benchmark::DoNotOptimize(machine.lastContention());
    }
}
BENCHMARK(BM_MachineStepFullChip);

void
BM_SystemStepLoaded(benchmark::State &state)
{
    LoadedSystem ls;
    for (auto _ : state) {
        ls.system.step();
        benchmark::DoNotOptimize(ls.system.now());
    }
}
BENCHMARK(BM_SystemStepLoaded);

void
BM_PerfReader(benchmark::State &state)
{
    const KernelModuleReader kernel;
    const PerfToolReader perf;
    const PerfReader &reader =
        state.range(0) ? static_cast<const PerfReader &>(perf)
                       : kernel;
    ThreadCounters delta;
    delta.cycles = 1500000;
    delta.l3Accesses = 5200;
    delta.instructions = 900000;
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            reader.readL3PerMCycles(delta, rng));
    }
}
BENCHMARK(BM_PerfReader)->Arg(0)->Arg(1);

void
BM_VminCharacterization(benchmark::State &state)
{
    const ChipSpec chip = xGene3();
    const VminModel model(chip);
    const FailureModel failures;
    const VminCharacterizer characterizer(model, failures);
    const auto cores =
        allocateCores(chip.numCores, 16, Allocation::Spreaded);
    Rng rng(11);
    for (auto _ : state) {
        const auto result =
            characterizer.characterize(rng, chip.fMax, cores, 0.9);
        benchmark::DoNotOptimize(result.safeVmin);
    }
}
BENCHMARK(BM_VminCharacterization);

void
BM_ContentionSolve(benchmark::State &state)
{
    const MemorySystem memory(MemoryParams::forChipName("X-Gene 3"));
    const auto &bench = Catalog::instance().byName("CG");
    std::vector<MemoryDemand> demands(
        static_cast<std::size_t>(state.range(0)),
        MemoryDemand{&bench.work, units::GHz(3.0), 1.0});
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory.solveContention(demands));
    }
}
BENCHMARK(BM_ContentionSolve)->Arg(4)->Arg(32);

} // namespace

BENCHMARK_MAIN();
