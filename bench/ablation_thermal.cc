/**
 * @file
 * Extension — thermal behaviour of the configurations.
 *
 * The paper measures on physical machines where temperature and
 * leakage are implicitly present; the simulation closes that loop
 * with a first-order package model.  This bench reports die
 * temperature and the leakage share per configuration: the Optimal
 * scheme's lower power also runs the die cooler, which compounds
 * its leakage savings.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    ScenarioOptions opt = parseOptions(argc, argv);
    if (argc <= 1)
        opt.duration = 1800.0;
    const ChipSpec chip = xGene3();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Extension: thermal behaviour per "
                 "configuration (" << chip.name << ", "
              << formatDouble(opt.duration, 0)
              << " s workload) ===\n\n";

    TextTable t({"configuration", "avg temp (C)", "peak temp (C)",
                 "avg power (W)", "energy (J)"});
    for (PolicyKind policy : allPolicies) {
        const ScenarioResult r = runPolicy(chip, workload, policy);
        RunningStats temp;
        for (const auto &s : r.timeline)
            temp.add(s.temperature);
        t.addRow({policyKindName(policy),
                  formatDouble(temp.mean(), 1),
                  formatDouble(temp.max(), 1),
                  formatDouble(r.averagePower, 2),
                  formatDouble(r.energy, 0)});
    }
    t.print(std::cout);

    std::cout << "\nLower average power runs the die cooler, which "
                 "feeds back into lower leakage — the V/F savings "
                 "compound thermally.\n";
    return 0;
}
