/**
 * @file
 * Table II — correlation of voltage-droop magnitude with utilized
 * PMDs, thread scaling, and the safe Vmin per frequency (X-Gene 3),
 * as materialised by the daemon's DroopClassTable.
 */

#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

std::string
threadExamples(const ChipSpec &chip, std::uint32_t lo_pmds,
               std::uint32_t hi_pmds)
{
    // Thread-scaling options that utilize [lo, hi] PMDs: clustered
    // uses ceil(T/2) PMDs, spreaded uses min(T, numPmds).
    std::string out;
    for (std::uint32_t t = 1; t <= chip.numCores; t *= 2) {
        const std::uint32_t clustered = (t + 1) / 2;
        const std::uint32_t spreaded =
            std::min(t, chip.numPmds());
        if (clustered >= lo_pmds && clustered <= hi_pmds) {
            if (!out.empty())
                out += ", ";
            out += std::to_string(t) + "T";
            out += (spreaded == clustered) ? "" : "(clustered)";
        } else if (spreaded >= lo_pmds && spreaded <= hi_pmds &&
                   t > 1) {
            if (!out.empty())
                out += ", ";
            out += std::to_string(t) + "T(spreaded)";
        }
    }
    return out;
}

void
printTable(const ChipSpec &chip)
{
    const VminModel model(chip);
    const DroopClassTable table(model);

    TextTable t({"Droop magnitude", "Utilized PMDs",
                 "Thread scaling",
                 "Vmin @ " + formatDouble(units::toGHz(chip.fMax), 1)
                     + " GHz",
                 "Vmin @ "
                     + formatDouble(
                           units::toGHz(chip.halfClassMaxFreq), 1)
                     + " GHz"});

    std::uint32_t prev_max = 0;
    for (const auto &row : table.rows()) {
        const std::string bin = "[" + formatDouble(row.binLoMv, 0)
            + "mV, " + formatDouble(row.binHiMv, 0) + "mV)";
        const std::string pmds = prev_max + 1 == row.maxPmds
            ? std::to_string(row.maxPmds)
            : std::to_string(prev_max + 1) + "-"
                + std::to_string(row.maxPmds);
        t.addRow({bin, pmds + " PMDs",
                  threadExamples(chip, prev_max + 1, row.maxPmds),
                  formatDouble(units::toMilliVolts(
                                   row.safeVmin.at(
                                       VminFreqClass::High)),
                               0) + " mV",
                  formatDouble(
                      units::toMilliVolts(row.safeVmin.at(
                          VminFreqClass::Half)),
                      0) + " mV"});
        prev_max = row.maxPmds;
    }
    std::cout << "--- " << chip.name << " ---\n";
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Table II: droop magnitude vs utilized PMDs "
                 "and safe Vmin ===\n\n";
    printTable(xGene3());
    printTable(xGene2());
    std::cout << "Paper reference (X-Gene 3): 780/800/810/830 mV @ "
                 "3 GHz and 770/780/790/820 mV @ 1.5 GHz for the "
                 "1-2 / 4 / 8 / 16 PMD classes.\n";
    return 0;
}
