/**
 * @file
 * Extension — chip-to-chip variation.
 *
 * The paper characterizes one sample of each chip and notes that
 * static variation is manufacturing-dependent ("the minimum safe
 * operating voltage of a microprocessor depends on the technology
 * node, static variation ...").  The simulation exposes the sample
 * identity through the machine seed: this bench Monte-Carlos over
 * chip samples, characterizes each one's per-PMD offsets, and shows
 * that the *daemon's guarantees hold on every sample* because its
 * table is anchored at the most sensitive PMD.
 */

#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

int
main(int argc, char **argv)
{
    const int samples = argc > 1 ? std::atoi(argv[1]) : 12;
    const ChipSpec chip = xGene3(); // derives offsets from the seed

    std::cout << "=== Extension: chip-to-chip variation ("
              << samples << " simulated " << chip.name
              << " samples) ===\n\n";

    VminParams params = VminParams::forChip(chip);
    params.pmdOffsetsMv.clear(); // force per-sample derivation

    RunningStats spread;
    RunningStats worst_margin;
    TextTable t({"sample", "per-PMD offset spread (mV)",
                 "single-core Vmin range (mV)",
                 "table still safe"});
    for (int s = 1; s <= samples; ++s) {
        const VminModel model(chip, params,
                              static_cast<std::uint64_t>(s));
        double min_off = 0.0;
        for (PmdId p = 0; p < chip.numPmds(); ++p) {
            min_off = std::min(
                min_off, units::toMilliVolts(model.pmdOffset(p)));
        }
        spread.add(-min_off);

        // Single-core true Vmin across cores for a mid workload.
        RunningStats vmin_range;
        bool safe = true;
        for (CoreId c = 0; c < chip.numCores; ++c) {
            const Volt v = model.trueVmin(chip.fMax, {c}, 0.7);
            vmin_range.add(units::toMilliVolts(v));
            safe &= v <= model.tableVmin(chip.fMax, 1) + 1e-12;
        }
        worst_margin.add(vmin_range.max());
        t.addRow({std::to_string(s), formatDouble(-min_off, 1),
                  formatDouble(vmin_range.min(), 0) + " - "
                      + formatDouble(vmin_range.max(), 0),
                  safe ? "yes" : "NO"});
    }
    t.print(std::cout);

    std::cout << "\nmean per-sample offset spread: "
              << formatDouble(spread.mean(), 1) << " mV (max "
              << formatDouble(spread.max(), 1)
              << " mV; paper: up to ~20 mV core-to-core on "
                 "X-Gene 3)\n";
    std::cout << "The characterized table is anchored at the most "
                 "sensitive PMD of each sample, so it remains safe "
                 "on every sample — the paper's per-chip "
                 "characterization requirement.\n";
    return 0;
}
