/**
 * @file
 * Figure 15 — average system load (1-minute moving average of busy
 * cores, sampled at 1 Hz) and the number of running CPU-intensive
 * vs memory-intensive processes over the 1-hour workload on
 * X-Gene 3 (Optimal configuration), printed per minute.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    const ScenarioOptions opt = parseOptions(argc, argv);
    const ChipSpec chip = xGene3();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Figure 15: system load and running process "
                 "mix, " << chip.name << " (Optimal) ===\n\n";

    const ScenarioResult r =
        runPolicy(chip, workload, PolicyKind::Optimal);

    const int minutes =
        static_cast<int>(r.completionTime / 60.0) + 1;
    struct Bucket
    {
        RunningStats load;
        RunningStats procs;
        RunningStats cpu;
        RunningStats mem;
    };
    std::vector<Bucket> buckets(minutes);
    std::uint32_t peak_procs = 0;
    for (const auto &s : r.timeline) {
        const int m = static_cast<int>(s.time / 60.0);
        if (m >= minutes)
            continue;
        buckets[m].load.add(s.loadAverage);
        buckets[m].procs.add(s.runningProcs);
        buckets[m].cpu.add(s.cpuProcs);
        buckets[m].mem.add(s.memProcs);
        peak_procs = std::max(peak_procs, s.runningProcs);
    }

    TextTable t({"minute", "load avg (busy cores)", "processes",
                 "cpu-intensive", "memory-intensive"});
    for (int m = 0; m < minutes; ++m) {
        t.addRow({std::to_string(m),
                  formatDouble(buckets[m].load.mean(), 1),
                  formatDouble(buckets[m].procs.mean(), 1),
                  formatDouble(buckets[m].cpu.mean(), 1),
                  formatDouble(buckets[m].mem.mean(), 1)});
    }
    t.print(std::cout);

    std::cout << "\npeak concurrent processes: " << peak_procs
              << " (chip capacity: " << chip.numCores
              << " cores)\n";
    std::cout << "Paper reference: phases of high and low "
                 "utilization with occasional peaks reaching the "
                 "system's limits.\n";
    return 0;
}
