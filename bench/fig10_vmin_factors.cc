/**
 * @file
 * Figure 10 — the magnitude of the safe-Vmin dependence on each
 * factor, on X-Gene 2 (relative to the nominal voltage):
 *
 *   workload variability   ~1 %   (many-core runs)
 *   core allocation        ~4 %
 *   frequency (skipping)   ~3 %
 *   clock division        ~12 %
 *
 * Derived from the characterized Vmin surface, exactly as the paper
 * derives it from its measurements.
 */

#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

void
factorTable(const ChipSpec &chip)
{
    const VminModel model(chip);
    const double vnom_mv = units::toMilliVolts(chip.vNominal);
    const auto &table = model.params().tableMv;

    const auto &high = table.at(VminFreqClass::High);
    const auto &half = table.at(VminFreqClass::Half);

    // Workload variability in a max-threads run.
    const double workload_mv = model.params().workloadSpreadMv
        * model.attenuation(chip.numCores);
    // Core allocation: droop-class span at the high clock.
    const double alloc_mv = high.back() - high.front();
    // One frequency step into the half class (clock skipping).
    const double skip_mv = high.back() - half.back();
    // Clock division (Deep class), where the chip supports it.
    double division_mv = 0.0;
    if (table.count(VminFreqClass::Deep)) {
        division_mv =
            half.back() - table.at(VminFreqClass::Deep).back();
    }

    TextTable t({"factor", "Vmin reduction (mV)", "% of nominal"});
    auto row = [&](const char *label, double mv) {
        t.addRow({label, formatDouble(mv, 0),
                  formatPercent(mv / vnom_mv, 1)});
    };
    row("workload (max threads)", workload_mv);
    row("core allocation", alloc_mv);
    row("frequency: clock skipping", skip_mv);
    if (division_mv > 0.0)
        row("frequency: clock division", division_mv);

    std::cout << "--- " << chip.name << " (nominal "
              << formatDouble(vnom_mv, 0) << " mV) ---\n";
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Figure 10: magnitude of the Vmin dependence "
                 "per factor ===\n\n";
    factorTable(xGene2());
    factorTable(xGene3());
    std::cout << "Paper reference (X-Gene 2): workload <= ~1%, core "
                 "allocation ~4%, clock skipping ~3%, clock "
                 "division ~12%.\n";
    return 0;
}
