/**
 * @file
 * Ablation — why the paper rejects Vmin *prediction* (§VI.A).
 *
 * Compares the paper's characterized-table daemon against a daemon
 * that additionally trusts a counter-feature predictor to undervolt
 * below Table II, at increasing aggressiveness, with undervolting
 * fault injection enabled.  The predictor's proxy (L3C rate ->
 * Vmin sensitivity) is only statistically correct, so aggressive
 * settings buy a little extra energy and pay with SDCs, crashed
 * processes and unsafe exposure — the paper's argument, quantified.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    ScenarioOptions opt = parseOptions(argc, argv);
    if (argc <= 1) {
        opt.duration = 1800.0;
        opt.seed = 7;
    }
    const ChipSpec chip = xGene2();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Ablation: table-based vs predictive Vmin "
                 "selection (" << chip.name << ", "
              << formatDouble(opt.duration, 0)
              << " s workload, fault injection on) ===\n\n";

    ScenarioConfig base_cfg;
    base_cfg.chip = chip;
    base_cfg.policy = PolicyKind::Baseline;
    const ScenarioResult base =
        ScenarioRunner(base_cfg).run(workload);

    TextTable t({"voltage selection", "energy savings",
                 "completed", "failed", "worst outcome",
                 "unsafe exposure", "max deficit"});

    auto run_variant = [&](const std::string &label,
                           bool use_predictor,
                           double aggressiveness) {
        ScenarioConfig sc;
        sc.chip = chip;
        sc.policy = PolicyKind::Optimal;
        sc.injectFaults = true;
        sc.daemon.useVminPredictor = use_predictor;
        sc.daemon.predictor.aggressiveness = aggressiveness;
        // Train the predictor against this chip's actual dynamic
        // range (40 mV single-core spread on X-Gene 2).
        sc.daemon.predictor.assumedSpreadMv = 40.0;
        const ScenarioResult r = ScenarioRunner(sc).run(workload);
        t.addRow({label,
                  formatPercent(1.0 - r.energy / base.energy, 1),
                  std::to_string(r.processesCompleted),
                  std::to_string(r.processesFailed),
                  runOutcomeName(r.worstOutcome),
                  formatDouble(r.unsafeExposure, 2) + " s",
                  formatDouble(
                      units::toMilliVolts(r.maxUnsafeDeficit), 1)
                      + " mV"});
    };

    run_variant("Table II (paper)", false, 0.0);
    run_variant("predictor, aggressiveness 0.5", true, 0.5);
    run_variant("predictor, aggressiveness 0.8", true, 0.8);
    run_variant("predictor, aggressiveness 1.0", true, 1.0);
    t.print(std::cout);

    std::cout << "\nNote: a crashed run reports fewer completed "
                 "processes; its 'savings' include work never "
                 "done.\n";
    std::cout << "\"The prediction schemes for Vmin ... are "
                 "error-prone and can lead to system failures in "
                 "real microprocessors\" — the marginal energy gain "
                 "does not cover the reliability loss.\n";
    return 0;
}
