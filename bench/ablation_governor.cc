/**
 * @file
 * Extension — baseline-governor sensitivity.
 *
 * The paper's Baseline uses the ondemand governor (the default on
 * its CentOS 7.3 systems).  This bench asks how the headline
 * savings change against other Linux baselines: performance
 * (always fmax), schedutil (proportional with headroom) and
 * powersave (always the floor — a pathological baseline that makes
 * any comparison look bad on completion time).
 */

#include "scenario_common.hh"

#include "os/governor.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

ScenarioResult
runWithGovernor(const ChipSpec &chip,
                const GeneratedWorkload &workload,
                std::unique_ptr<Governor> governor)
{
    // Mirror ScenarioRunner's Baseline, with a custom governor.
    Machine machine(chip);
    System system(machine, std::make_unique<LinuxSpreadPlacer>(),
                  std::move(governor), SystemConfig{0.01, 0.2});
    const Catalog &catalog = Catalog::instance();

    std::size_t next = 0;
    Seconds last_completion = 0.0;
    while (next < workload.items.size() || !system.idle()) {
        while (next < workload.items.size() &&
               workload.items[next].arrival
                   <= system.now() + 0.005) {
            system.submit(
                catalog.byName(workload.items[next].benchmark),
                workload.items[next].threads);
            ++next;
        }
        system.step();
    }
    for (const Process &proc : system.finishedProcesses())
        last_completion = std::max(last_completion, proc.completed);

    ScenarioResult r;
    r.completionTime = last_completion;
    r.energy = machine.energyMeter().energy();
    r.averagePower = r.energy / r.completionTime;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioOptions opt = parseOptions(argc, argv);
    if (argc <= 1)
        opt.duration = 1200.0;
    const ChipSpec chip = xGene3();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Extension: baseline-governor sensitivity ("
              << chip.name << ", " << formatDouble(opt.duration, 0)
              << " s workload) ===\n\n";

    const ScenarioResult daemon_run =
        runPolicy(chip, workload, PolicyKind::Optimal);

    TextTable t({"baseline governor", "time (s)", "energy (J)",
                 "daemon savings vs it", "daemon time vs it"});
    auto row = [&](const char *label, const ScenarioResult &r) {
        t.addRow({label, formatDouble(r.completionTime, 0),
                  formatDouble(r.energy, 0),
                  formatPercent(1.0 - daemon_run.energy / r.energy,
                                1),
                  formatPercent(daemon_run.completionTime
                                        / r.completionTime
                                    - 1.0,
                                1)});
    };

    row("ondemand (paper)",
        runWithGovernor(chip, workload,
                        std::make_unique<OndemandGovernor>()));
    row("performance",
        runWithGovernor(chip, workload,
                        std::make_unique<PerformanceGovernor>()));
    row("schedutil",
        runWithGovernor(chip, workload,
                        std::make_unique<SchedutilGovernor>()));
    row("powersave",
        runWithGovernor(chip, workload,
                        std::make_unique<PowersaveGovernor>()));
    t.print(std::cout);

    std::cout << "\nOptimal daemon for reference: "
              << formatDouble(daemon_run.completionTime, 0)
              << " s, " << formatDouble(daemon_run.energy, 0)
              << " J.\n";
    return 0;
}
