/**
 * @file
 * Step-throughput microbenchmark of the simulation kernel.
 *
 * Measures virtual steps per wall-clock second of the simulation hot
 * path for both chip presets at idle / half / full occupancy plus a
 * mixed fault-window case, on three stepping paths:
 *
 *  - fixed: back-to-back Machine::step(dt) calls — the per-step
 *    reference every other path must reproduce bit-identically;
 *  - macro: Machine::runUntil(t, dt) — adaptive macro-stepping,
 *    which collapses uniform stretches of steps into a cheap scalar
 *    replay;
 *  - event: System::runUntil(t) over a full OS stack with the
 *    default ondemand governor — the event-driven path, where every
 *    time-driven component reports its nextActivity() horizon and
 *    the engine advances event-to-event even at full occupancy
 *    (with per-step paths the governor tick bounds every window to
 *    one step; with horizons the window runs to the next tick).
 *
 * The `fault` occupancy runs full occupancy with a scripted plan of
 * droop-spike windows armed (MachineInjector): inside a window the
 * fault hook's horizon is "now" and all paths degrade to per-step
 * stepping, outside it the macro/event paths coalesce again — the
 * case the unified event horizon exists for.
 *
 * Emits machine-readable JSON (schema `ecosched.step_throughput/2`,
 * documented in EXPERIMENTS.md) to BENCH_step_throughput.json and to
 * stdout, so CI can compare runs against a committed baseline.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

using Clock = std::chrono::steady_clock;

/// One measured configuration.
struct Result
{
    std::string chip;
    std::string occupancy;
    std::uint32_t threads = 0;
    std::string path; ///< "fixed", "macro" or "event"
    std::uint64_t virtualSteps = 0;
    double wallSec = 0.0;

    double stepsPerSec() const
    {
        return wallSec > 0.0
            ? static_cast<double>(virtualSteps) / wallSec
            : 0.0;
    }

    double nsPerStep() const
    {
        return virtualSteps > 0
            ? wallSec * 1e9 / static_cast<double>(virtualSteps)
            : 0.0;
    }
};

/// Mixed compute/memory profile so the contention solver and the
/// full power decomposition are exercised each step.
WorkProfile
benchProfile()
{
    WorkProfile p;
    p.cpiBase = 1.0;
    p.l3Apki = 10.0;
    p.dramApki = 2.0;
    p.mlp = 2.0;
    return p;
}

Machine
makeMachine(const ChipSpec &chip, std::uint32_t threads)
{
    Machine machine(chip);
    // Enough work that no thread retires during the measurement.
    const Instructions work = 1'000'000'000'000'000ull;
    for (CoreId c :
         threads == 0
             ? std::vector<CoreId>{}
             : allocateCores(chip.numCores, threads,
                             Allocation::Spreaded)) {
        machine.startThread(benchProfile(), work, c);
    }
    return machine;
}

/**
 * Scripted droop-spike schedule for the `fault` occupancy: eight
 * short windows spread evenly across the measured span, magnitude
 * well inside the guardband so nothing actually fails — the cost
 * being measured is the horizon collapse, not crash handling.
 */
InjectionPlan
faultPlan(Seconds span, Seconds dt)
{
    std::vector<FaultEvent> events;
    const int windows = 8;
    for (int w = 0; w < windows; ++w) {
        FaultEvent ev;
        ev.kind = FaultKind::DroopSpike;
        ev.time = span * (0.5 + static_cast<double>(w))
            / static_cast<double>(windows);
        ev.duration = 20.0 * dt;
        ev.magnitude = 10.0; // mV; far from any Vmin boundary
        events.push_back(ev);
    }
    return InjectionPlan::scripted(std::move(events));
}

/// Wall seconds for @p steps virtual steps on the fixed/macro path.
double
measureMachine(const ChipSpec &chip, std::uint32_t threads,
               bool macro, Seconds dt, std::uint64_t steps,
               const InjectionPlan *plan)
{
    Machine machine = makeMachine(chip, threads);
    std::unique_ptr<MachineInjector> injector;
    if (plan != nullptr) {
        injector = std::make_unique<MachineInjector>(*plan, 42);
        injector->attach(machine, nullptr);
    }
    machine.runUntil(100.0 * dt, dt); // warm caches and thermal
    const auto begin = Clock::now();
    if (macro) {
        machine.runUntil(machine.now()
                             + static_cast<double>(steps) * dt,
                         dt);
    } else {
        for (std::uint64_t i = 0; i < steps; ++i)
            machine.step(dt);
    }
    const auto end = Clock::now();
    return std::chrono::duration<double>(end - begin).count();
}

/**
 * Wall seconds for @p steps virtual steps on the event path: the
 * full System stack (default ondemand governor) driven through
 * System::runUntil, so governor horizons gate the macro windows.
 * The bench threads are bound directly on the Machine and never
 * finish, so the OS completion/queue machinery stays quiescent and
 * the comparison against the Machine-level paths is step-for-step.
 */
double
measureEvent(const ChipSpec &chip, std::uint32_t threads, Seconds dt,
             std::uint64_t steps, const InjectionPlan *plan)
{
    Machine machine = makeMachine(chip, threads);
    std::unique_ptr<MachineInjector> injector;
    if (plan != nullptr) {
        injector = std::make_unique<MachineInjector>(*plan, 42);
        injector->attach(machine, nullptr);
    }
    SystemConfig scfg;
    scfg.timestep = dt;
    System system(machine, nullptr, nullptr, scfg);
    system.runUntil(100.0 * dt); // warm caches and thermal
    const auto begin = Clock::now();
    system.runUntil(system.now()
                    + static_cast<double>(steps) * dt);
    const auto end = Clock::now();
    return std::chrono::duration<double>(end - begin).count();
}

/// Pick a step count targeting ~@p budget wall seconds per case.
std::uint64_t
calibrate(const ChipSpec &chip, std::uint32_t threads, Seconds dt,
          double budget)
{
    const std::uint64_t probe = 2000;
    const double t = measureMachine(chip, threads, /*macro=*/false,
                                    dt, probe, nullptr);
    if (t <= 0.0)
        return probe * 100;
    const auto steps = static_cast<std::uint64_t>(
        budget / t * static_cast<double>(probe));
    return std::clamp<std::uint64_t>(steps, probe, 50'000'000);
}

std::string
toJson(const std::vector<Result> &results, Seconds dt)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"ecosched.step_throughput/2\",\n"
       << "  \"dt_sec\": " << dt << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        os << "    {\"chip\": \"" << r.chip << "\", \"occupancy\": \""
           << r.occupancy << "\", \"threads\": " << r.threads
           << ", \"path\": \"" << r.path << "\", \"virtual_steps\": "
           << r.virtualSteps << ", \"wall_sec\": " << r.wallSec
           << ", \"steps_per_sec\": " << r.stepsPerSec()
           << ", \"ns_per_step\": " << r.nsPerStep() << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_step_throughput.json";
    double budget = 0.3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            budget = 0.05;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--quick] [--out FILE]\n";
            return 2;
        }
    }

    const Seconds dt = units::ms(1);
    const std::vector<ChipSpec> chips{xGene2(), xGene3()};
    std::vector<Result> results;
    for (const ChipSpec &chip : chips) {
        const std::vector<std::pair<std::string, std::uint32_t>>
            occupancies{{"idle", 0},
                        {"half", chip.numCores / 2},
                        {"full", chip.numCores},
                        {"fault", chip.numCores}};
        for (const auto &[name, threads] : occupancies) {
            const std::uint64_t steps =
                calibrate(chip, threads, dt, budget);
            InjectionPlan plan;
            const bool faulted = name == "fault";
            if (faulted) {
                plan = faultPlan(
                    (100.0 + static_cast<double>(steps)) * dt, dt);
            }
            const InjectionPlan *armed = faulted ? &plan : nullptr;
            for (const char *path : {"fixed", "macro", "event"}) {
                Result r;
                r.chip = chip.name;
                r.occupancy = name;
                r.threads = threads;
                r.path = path;
                r.virtualSteps = steps;
                r.wallSec = r.path == "event"
                    ? measureEvent(chip, threads, dt, steps, armed)
                    : measureMachine(chip, threads,
                                     r.path == "macro", dt, steps,
                                     armed);
                results.push_back(r);
            }
        }
    }

    const std::string json = toJson(results, dt);
    std::cout << json;
    std::ofstream file(out);
    file << json;
    if (!file) {
        std::cerr << "failed to write " << out << "\n";
        return 1;
    }
    return 0;
}
