/**
 * @file
 * Figure 9 — L3 cache access rate per million cycles for the 25
 * benchmarks at 32, 16 and 8 threads (X-Gene 3 @ 3 GHz), measured
 * through the PMU counters exactly like the daemon samples them.
 *
 * The 3000-accesses-per-1M-cycles threshold separates the memory-
 * intensive from the CPU-intensive programs; it is the daemon's
 * classification boundary (§IV.B).
 */

#include <algorithm>
#include <iostream>

#include "run_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main()
{
    const ChipSpec chip = xGene3();
    auto benchmarks = Catalog::instance().characterizedSet();
    const MemorySystem memory(MemoryParams::forChipName(chip.name));
    std::sort(benchmarks.begin(), benchmarks.end(),
              [&](const BenchmarkProfile *a,
                  const BenchmarkProfile *b) {
                  return memory.l3PerMCycles(a->work, chip.fMax)
                      < memory.l3PerMCycles(b->work, chip.fMax);
              });

    std::cout << "=== Figure 9: L3C accesses per 1M cycles, "
              << chip.name << " @ 3 GHz ===\n\n";

    TextTable t({"benchmark", "32T", "16T", "8T",
                 "class (threshold 3000)"});
    for (const auto *bench : benchmarks) {
        std::vector<std::string> row{bench->name};
        double rate32 = 0.0;
        for (std::uint32_t threads : {32u, 16u, 8u}) {
            const RunStats r = runConfiguration(
                chip, *bench, threads, Allocation::Spreaded,
                chip.fMax, false);
            if (threads == 32)
                rate32 = r.meanL3PerMCycles;
            row.push_back(formatDouble(r.meanL3PerMCycles, 0));
        }
        row.push_back(rate32 > 3000.0 ? "memory-intensive"
                                      : "cpu-intensive");
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: executions above 3000 are the "
                 "most memory-intensive (CG, FT, milc, ...); namd "
                 "and EP sit at the bottom.\n";
    return 0;
}
