/**
 * @file
 * Shared driver for the §VI.B evaluation benches (Tables III/IV,
 * Figures 14/15): generate the 1-hour random server workload for a
 * chip and replay it under the four configurations.
 *
 * Every scenario bench accepts two optional positional arguments
 * plus the engine's parallelism knob:
 *   argv[1]   workload duration in seconds  (default 3600)
 *   argv[2]   generator seed                (default 42)
 *   --jobs N  worker threads (also ECOSCHED_JOBS; default: hardware
 *             concurrency; 1 reproduces the serial behaviour, and
 *             results are bit-identical for every N)
 */

#ifndef ECOSCHED_BENCH_SCENARIO_COMMON_HH
#define ECOSCHED_BENCH_SCENARIO_COMMON_HH

#include <array>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ecosched/ecosched.hh"

namespace ecosched {
namespace bench {

/// Parsed command-line options of a scenario bench.
struct ScenarioOptions
{
    Seconds duration = 3600.0;
    std::uint64_t seed = 42;
    unsigned jobs = 0; ///< 0: ECOSCHED_JOBS, else hardware
};

inline ScenarioOptions
parseOptions(int argc, char **argv)
{
    ScenarioOptions opt;
    opt.jobs = stripJobsFlag(argc, argv);
    if (argc > 1)
        opt.duration = std::atof(argv[1]);
    if (argc > 2)
        opt.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    if (opt.duration <= 0.0)
        opt.duration = 3600.0;
    return opt;
}

/// Engine configured from the bench options.
inline ExperimentEngine
makeEngine(const ScenarioOptions &opt)
{
    EngineConfig ec;
    ec.jobs = opt.jobs;
    ec.baseSeed = opt.seed;
    return ExperimentEngine(ec);
}

/// Generate the chip's random server workload (§VI.B).
inline GeneratedWorkload
makeWorkload(const ChipSpec &chip, const ScenarioOptions &opt)
{
    GeneratorConfig gc;
    gc.duration = opt.duration;
    gc.maxCores = chip.numCores;
    gc.seed = opt.seed;
    gc.chipName = chip.name;
    gc.referenceFrequency = chip.fMax;
    return WorkloadGenerator(gc).generate();
}

/// Run one configuration over a workload.  @p pool (optional) lets
/// repeated replays of the same policy reuse a leased stack instead
/// of constructing one per run — bit-identical either way.
inline ScenarioResult
runPolicy(const ChipSpec &chip, const GeneratedWorkload &workload,
          PolicyKind policy, SimStackPool *pool = nullptr)
{
    ScenarioConfig sc;
    sc.chip = chip;
    sc.policy = policy;
    sc.stackPool = pool;
    return ScenarioRunner(sc).run(workload);
}

/// All four configurations, in the paper's column order.
inline constexpr std::array<PolicyKind, 4> allPolicies = {
    PolicyKind::Baseline, PolicyKind::SafeVmin,
    PolicyKind::Placement, PolicyKind::Optimal};

/**
 * Replay one workload under several configurations on the engine's
 * workers (one task per policy), results in policy order.  Each
 * replay is a pure function of (chip, workload, policy), so the
 * vector is bit-identical for any job count.
 */
inline std::vector<ScenarioResult>
runPolicies(const ExperimentEngine &engine, const ChipSpec &chip,
            const GeneratedWorkload &workload,
            const std::vector<PolicyKind> &policies,
            SimStackPool *pool = nullptr)
{
    return engine.mapSpecs<ScenarioResult, PolicyKind>(
        policies,
        [&, pool](std::size_t, PolicyKind policy, Rng &) {
            return runPolicy(chip, workload, policy, pool);
        });
}

/// Print the paper's Tables III/IV layout for one chip.
inline void
printEvaluationTable(const ChipSpec &chip,
                     const std::vector<ScenarioResult> &results)
{
    const ScenarioResult &base = results.front();
    TextTable t({"", "Baseline", "Safe Vmin", "Placement", "Optimal"});

    auto row = [&](const std::string &label, auto &&fmt) {
        std::vector<std::string> cells{label};
        for (const auto &r : results)
            cells.push_back(fmt(r));
        t.addRow(cells);
    };

    row("Time (s)", [](const ScenarioResult &r) {
        return formatDouble(r.completionTime, 0);
    });
    row("Avg. Power (W)", [](const ScenarioResult &r) {
        return formatDouble(r.averagePower, 2);
    });
    row("Energy (J)", [](const ScenarioResult &r) {
        return formatDouble(r.energy, 2);
    });
    row("Energy Savings", [&](const ScenarioResult &r) {
        if (&r == &base)
            return std::string("-");
        return formatPercent(1.0 - r.energy / base.energy);
    });
    row("ED2P (workload)", [](const ScenarioResult &r) {
        return formatSi(r.ed2p, 1);
    });
    row("ED2P Savings", [&](const ScenarioResult &r) {
        if (&r == &base)
            return std::string("-");
        return formatPercent(1.0 - r.ed2p / base.ed2p);
    });
    row("Time penalty", [&](const ScenarioResult &r) {
        if (&r == &base)
            return std::string("-");
        return formatPercent(
            r.completionTime / base.completionTime - 1.0);
    });
    row("Migrations", [](const ScenarioResult &r) {
        return std::to_string(r.migrations);
    });
    row("V transitions", [](const ScenarioResult &r) {
        return std::to_string(r.voltageTransitions);
    });

    std::cout << chip.name << " results for the 4 configurations:\n";
    t.print(std::cout);
}

} // namespace bench
} // namespace ecosched

#endif // ECOSCHED_BENCH_SCENARIO_COMMON_HH
