/**
 * @file
 * Figure 3 — complete safe-Vmin characterization.
 *
 * Runs the paper's 1000-runs-per-level downward sweep for all 25
 * characterized benchmarks on both chips:
 *   X-Gene 2: 8 and 4 threads at 2.4 / 1.2 / 0.9 GHz;
 *   X-Gene 3: 32, 16 and 8 threads at 3.0 / 1.5 GHz.
 *
 * Expected shape (paper): for the same thread count and frequency
 * all benchmarks land within ~10 mV of each other; lower frequency
 * classes and fewer utilized PMDs give lower safe Vmin; X-Gene 2 at
 * 0.9 GHz shows the large clock-division drop.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

struct Config
{
    std::uint32_t threads;
    Hertz freq;
};

void
characterizeChip(const ExperimentEngine &engine, const ChipSpec &chip,
                 const std::vector<Config> &configs)
{
    const VminModel model(chip);
    const FailureModel failures;
    const VminCharacterizer characterizer(model, failures);
    const auto benchmarks = Catalog::instance().characterizedSet();

    std::vector<std::string> header{"benchmark"};
    for (const auto &c : configs) {
        header.push_back(std::to_string(c.threads) + "T@"
                         + formatDouble(units::toGHz(c.freq), 1)
                         + "GHz");
    }
    TextTable table(header);

    // The full (benchmark x config) campaign as one engine batch.
    std::vector<CharacterizationTask> tasks;
    for (const auto *bench : benchmarks) {
        for (const auto &c : configs) {
            tasks.push_back({c.freq,
                             allocateCores(chip.numCores, c.threads,
                                           Allocation::Spreaded),
                             bench->vminSensitivity});
        }
    }
    const auto results = characterizer.characterizeBatch(engine,
                                                         tasks);

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row{benchmarks[b]->name};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            row.push_back(formatDouble(
                units::toMilliVolts(
                    results[b * configs.size() + c].safeVmin),
                0));
        }
        table.addRow(row);
    }
    std::cout << "--- " << chip.name << " (safe Vmin, mV) ---\n";
    table.print(std::cout);

    // Workload spread per configuration (paper: <= ~10 mV),
    // computed from the same campaign results.
    std::cout << "\nper-configuration workload spread:\n";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        RunningStats stats;
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            stats.add(units::toMilliVolts(
                results[b * configs.size() + c].safeVmin));
        }
        std::cout << "  " << configs[c].threads << "T@"
                  << formatDouble(units::toGHz(configs[c].freq), 1)
                  << "GHz: "
                  << formatDouble(stats.max() - stats.min(), 0)
                  << " mV (min " << formatDouble(stats.min(), 0)
                  << ", max " << formatDouble(stats.max(), 0)
                  << ")\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Figure 3: safe Vmin characterization (1000 "
                 "runs per voltage level) ===\n\n";

    const unsigned jobs = stripJobsFlag(argc, argv);
    EngineConfig ec;
    ec.jobs = jobs;
    ec.baseSeed = 2024;

    {
        const ChipSpec chip = xGene2();
        using namespace units;
        characterizeChip(ExperimentEngine{ec}, chip,
                         {{8, GHz(2.4)}, {4, GHz(2.4)},
                          {8, GHz(1.2)}, {4, GHz(1.2)},
                          {8, GHz(0.9)}, {4, GHz(0.9)}});
    }
    {
        const ChipSpec chip = xGene3();
        using namespace units;
        ec.baseSeed = 2025; // independent seed tree per chip
        characterizeChip(ExperimentEngine{ec}, chip,
                         {{32, GHz(3.0)}, {16, GHz(3.0)},
                          {8, GHz(3.0)}, {32, GHz(1.5)},
                          {16, GHz(1.5)}, {8, GHz(1.5)}});
    }

    std::cout << "Paper reference: same-configuration spread <= "
                 "~10 mV in many-core runs; frequency class and "
                 "utilized PMDs dominate.\n";
    return 0;
}
