/**
 * @file
 * Figure 8 — relative performance under shared-resource contention:
 * execution time of one single-thread instance divided by the
 * execution time of N simultaneous instances on all cores
 * (X-Gene 3, N = 32).
 *
 * Expected shape (paper): CG and FT lowest (most memory-intensive —
 * heavy DRAM bandwidth contention); namd and EP near 1.0 (pure CPU
 * work is unaffected by co-runners).
 */

#include <algorithm>
#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

Seconds
runCopies(const ChipSpec &chip, const BenchmarkProfile &bench,
          std::uint32_t copies)
{
    Machine machine(chip);
    const auto cores = allocateCores(chip.numCores, copies,
                                     Allocation::Clustered);
    for (CoreId c : cores) {
        // Every instance executes the full single-thread work.
        machine.startThread(bench.work, bench.workInstructions, c,
                            bench.vminSensitivity);
    }
    while (!machine.runningThreads().empty())
        machine.step(units::ms(10));
    return machine.now();
}

} // namespace

int
main()
{
    const ChipSpec chip = xGene3();
    auto benchmarks = Catalog::instance().characterizedSet();
    const MemorySystem memory(MemoryParams::forChipName(chip.name));
    std::sort(benchmarks.begin(), benchmarks.end(),
              [&](const BenchmarkProfile *a,
                  const BenchmarkProfile *b) {
                  return memory.l3PerMCycles(a->work, chip.fMax)
                      < memory.l3PerMCycles(b->work, chip.fMax);
              });

    std::cout << "=== Figure 8: relative performance of one "
                 "instance vs 32 instances on all cores ("
              << chip.name << " @ 3 GHz) ===\n\n";

    TextTable t({"benchmark", "T(1) (s)", "T(32) (s)",
                 "ratio T1/T32"});
    for (const auto *bench : benchmarks) {
        const Seconds t1 = runCopies(chip, *bench, 1);
        const Seconds tn = runCopies(chip, *bench, chip.numCores);
        t.addRow({bench->name, formatDouble(t1, 1),
                  formatDouble(tn, 1), formatDouble(t1 / tn, 2)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: CG/FT have the smallest ratio "
                 "(heavy memory contention); namd/EP are close to "
                 "1.0.\n";
    return 0;
}
