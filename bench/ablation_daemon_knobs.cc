/**
 * @file
 * Ablation — daemon engineering knobs the paper discusses in §VI.A:
 *
 *  - counter access path: the custom kernel module (exact, ~zero
 *    overhead) vs a Perf-style reader (±3 % measurement noise);
 *  - monitoring period (the 1M-cycle window takes 300-500 ms);
 *  - extra voltage guardband on top of the characterized table;
 *  - thread-migration cost.
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

int
main(int argc, char **argv)
{
    ScenarioOptions opt = parseOptions(argc, argv);
    if (argc <= 1)
        opt.duration = 1200.0;
    const ChipSpec chip = xGene3();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Ablation: daemon engineering knobs ("
              << chip.name << ", " << formatDouble(opt.duration, 0)
              << " s workload, Optimal) ===\n\n";

    ScenarioConfig base_cfg;
    base_cfg.chip = chip;
    base_cfg.policy = PolicyKind::Baseline;
    const ScenarioResult base =
        ScenarioRunner(base_cfg).run(workload);

    TextTable t({"variant", "energy savings", "time penalty",
                 "reclassifications", "monitor CPU (ms)"});
    auto run_variant = [&](const std::string &label,
                           auto &&mutate) {
        ScenarioConfig sc;
        sc.chip = chip;
        sc.policy = PolicyKind::Optimal;
        mutate(sc);
        const ScenarioResult r = ScenarioRunner(sc).run(workload);
        t.addRow({label,
                  formatPercent(1.0 - r.energy / base.energy, 1),
                  formatPercent(
                      r.completionTime / base.completionTime - 1.0,
                      1),
                  std::to_string(
                      r.daemonStats.classificationChanges),
                  formatDouble(
                      r.daemonStats.monitorCpuTime * 1e3, 2)});
    };

    run_variant("kernel-module reader (paper)",
                [](ScenarioConfig &) {});
    run_variant("perf-tool reader (+-3% noise)",
                [](ScenarioConfig &sc) {
                    sc.daemon.usePerfToolReader = true;
                });
    run_variant("sampling every 100 ms", [](ScenarioConfig &sc) {
        sc.daemon.samplingInterval = 0.1;
    });
    run_variant("sampling every 2 s", [](ScenarioConfig &sc) {
        sc.daemon.samplingInterval = 2.0;
    });
    run_variant("guardband +20 mV", [](ScenarioConfig &sc) {
        sc.daemon.guardband = units::mV(20);
    });
    run_variant("guardband +50 mV", [](ScenarioConfig &sc) {
        sc.daemon.guardband = units::mV(50);
    });
    run_variant("migration cost 0", [](ScenarioConfig &sc) {
        sc.migrationCost = 0.0;
    });
    run_variant("migration cost 10 ms", [](ScenarioConfig &sc) {
        sc.migrationCost = units::ms(10);
    });
    run_variant("migration cost 100 ms", [](ScenarioConfig &sc) {
        sc.migrationCost = units::ms(100);
    });
    t.print(std::cout);

    std::cout << "\nPaper rationale: Perf/PAPI impose ~+-3% "
                 "measurement error near the 3K threshold, so the "
                 "daemon uses a dedicated kernel module with "
                 "near-zero overhead.\n";
    return 0;
}
