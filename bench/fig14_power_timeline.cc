/**
 * @file
 * Figure 14 — average power of the Baseline and Optimal
 * configurations on X-Gene 3 during the 1-hour randomly generated
 * workload, printed as a per-minute series (the paper plots the
 * full 1 Hz trace).
 */

#include "scenario_common.hh"

using namespace ecosched;
using namespace ecosched::bench;

namespace {

/// Bucket a 1 Hz timeline into per-minute averages.
std::vector<double>
perMinutePower(const ScenarioResult &result, Seconds horizon)
{
    const int minutes = static_cast<int>(horizon / 60.0) + 1;
    std::vector<RunningStats> buckets(minutes);
    for (const auto &s : result.timeline) {
        const int m = static_cast<int>(s.time / 60.0);
        if (m < minutes)
            buckets[m].add(s.power);
    }
    std::vector<double> out;
    for (const auto &b : buckets)
        out.push_back(b.mean());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const ScenarioOptions opt = parseOptions(argc, argv);
    const ChipSpec chip = xGene3();
    const GeneratedWorkload workload = makeWorkload(chip, opt);

    std::cout << "=== Figure 14: average power, Baseline vs "
                 "Optimal, " << chip.name << " ===\n\n";

    const ExperimentEngine engine = makeEngine(opt);
    const std::vector<ScenarioResult> results = runPolicies(
        engine, chip, workload,
        {PolicyKind::Baseline, PolicyKind::Optimal});
    const ScenarioResult &base = results[0];
    const ScenarioResult &optimal = results[1];

    const Seconds horizon =
        std::max(base.completionTime, optimal.completionTime);
    const auto pb = perMinutePower(base, horizon);
    const auto po = perMinutePower(optimal, horizon);

    TextTable t({"minute", "Baseline (W)", "Optimal (W)",
                 "reduction"});
    for (std::size_t m = 0; m < pb.size() && m < po.size(); ++m) {
        const double reduction =
            pb[m] > 0.0 ? 1.0 - po[m] / pb[m] : 0.0;
        t.addRow({std::to_string(m), formatDouble(pb[m], 1),
                  formatDouble(po[m], 1),
                  formatPercent(reduction, 0)});
    }
    t.print(std::cout);

    std::cout << "\nwhole-run average: Baseline "
              << formatDouble(base.averagePower, 2) << " W, Optimal "
              << formatDouble(optimal.averagePower, 2)
              << " W (paper: 36.49 W vs 27.63 W)\n";
    return 0;
}
