/**
 * @file
 * Vmin explorer — run the paper's §III characterization protocol
 * for one benchmark and configuration and visualise the safe /
 * unsafe regions (an ASCII version of Figure 4's shading).
 *
 * Usage:
 *   vmin_explorer [benchmark] [threads] [clustered|spreaded] \
 *                 [freq_ghz] [xgene2|xgene3]
 * Defaults: CG, 8 threads, spreaded, fmax, X-Gene 3.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

int
main(int argc, char **argv)
{
    std::string bench_name = argc > 1 ? argv[1] : "CG";
    const std::uint32_t threads =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                 : 8u;
    const Allocation alloc =
        (argc > 3 && std::strcmp(argv[3], "clustered") == 0)
            ? Allocation::Clustered
            : Allocation::Spreaded;
    const bool use_xgene3 =
        !(argc > 5 && std::strcmp(argv[5], "xgene2") == 0);
    const ChipSpec chip = use_xgene3 ? xGene3() : xGene2();
    const Hertz freq = argc > 4
        ? chip.snapToLadder(units::GHz(std::atof(argv[4])))
        : chip.fMax;

    const Catalog &catalog = Catalog::instance();
    if (!catalog.contains(bench_name)) {
        std::cerr << "unknown benchmark '" << bench_name
                  << "'; available:\n";
        for (const auto &p : catalog.all())
            std::cerr << "  " << p.name << "\n";
        return 1;
    }
    const BenchmarkProfile &bench = catalog.byName(bench_name);

    const VminModel model(chip);
    const FailureModel failures;
    const VminCharacterizer characterizer(model, failures);
    Rng rng(2026);

    const auto cores = allocateCores(chip.numCores, threads, alloc);
    const auto result = characterizer.characterize(
        rng, freq, cores, bench.vminSensitivity);

    std::cout << "Vmin characterization: " << bench.name << ", "
              << threads << " threads (" << allocationName(alloc)
              << ", " << countUtilizedPmds(cores) << " PMDs) @ "
              << formatDouble(units::toGHz(freq), 2) << " GHz on "
              << chip.name << "\n";
    std::cout << "clock mode: "
              << clockModeName(chip.clockMode(freq))
              << ", Vmin frequency class: "
              << vminFreqClassName(chip.vminFreqClass(freq))
              << "\n\n";

    std::cout << "voltage  pfail   region\n";
    std::cout << "------------------------------------------"
                 "--------------------\n";
    for (const auto &pt : result.sweep) {
        const double pfail = pt.pfail();
        const int bars = static_cast<int>(pfail * 40.0 + 0.5);
        std::string bar(static_cast<std::size_t>(bars), '#');
        std::cout << formatDouble(
                         units::toMilliVolts(pt.voltage), 0)
                  << " mV   " << formatPercent(pfail, 1);
        for (std::size_t pad = formatPercent(pfail, 1).size();
             pad < 7; ++pad) {
            std::cout << ' ';
        }
        std::cout << (pfail == 0.0 ? "safe   " : "unsafe ") << bar
                  << "\n";
    }

    std::cout << "\nsafe Vmin:    "
              << formatDouble(
                     units::toMilliVolts(result.safeVmin), 0)
              << " mV  (guardband below nominal: "
              << formatDouble(
                     units::toMilliVolts(chip.vNominal
                                         - result.safeVmin),
                     0)
              << " mV, "
              << formatPercent(1.0 - result.safeVmin / chip.vNominal,
                               1)
              << ")\n";
    std::cout << "crash point:  "
              << formatDouble(
                     units::toMilliVolts(result.crashVoltage), 0)
              << " mV\n";
    std::cout << "daemon table: "
              << formatDouble(
                     units::toMilliVolts(model.tableVmin(
                         freq, countUtilizedPmds(cores))),
                     0)
              << " mV (conservative Table II entry)\n";
    return 0;
}
