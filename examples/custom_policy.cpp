/**
 * @file
 * Extending EcoSched: a user-defined placement policy and governor.
 *
 * The System accepts any PlacementPolicy / Governor implementation,
 * so policies beyond the paper's can be prototyped in a few dozen
 * lines.  This example implements a naive "race-to-idle" strategy —
 * pack everything clustered at fmax, undervolt statically to the
 * all-PMD table value — and compares it against the paper's daemon
 * on the same workload.
 */

#include <iostream>
#include <memory>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

/// Pack threads onto the lowest-numbered free cores (clustered).
class PackedPlacer : public PlacementPolicy
{
  public:
    const char *name() const override { return "race-to-idle"; }

    std::vector<CoreId>
    place(const System &system, const Process &,
          std::uint32_t threads) override
    {
        auto free = system.freeCores(); // ascending core ids
        if (free.size() < threads)
            return {};
        free.resize(threads);
        return free;
    }
};

/// fmax everywhere, one static undervolt at attach time.
class RaceToIdleGovernor : public Governor
{
  public:
    const char *name() const override { return "race-to-idle"; }

    void
    tick(System &system) override
    {
        Machine &machine = system.machine();
        if (!undervolted) {
            const DroopClassTable table(machine.vminModel());
            machine.slimPro().requestVoltage(
                system.now(),
                table.safeVoltage(machine.spec().fMax,
                                  machine.spec().numPmds()));
            undervolted = true;
        }
        for (PmdId p = 0; p < machine.spec().numPmds(); ++p) {
            if (machine.chip().pmdFrequency(p)
                    != machine.spec().fMax) {
                machine.slimPro().requestPmdFrequency(
                    system.now(), p, machine.spec().fMax);
            }
        }
    }

  private:
    bool undervolted = false;
};

ScenarioResult
runCustom(const ChipSpec &chip, const GeneratedWorkload &workload)
{
    // A custom policy is just a System wired by hand; the scenario
    // loop below mirrors ScenarioRunner::run.
    Machine machine(chip);
    System system(machine, std::make_unique<PackedPlacer>(),
                  std::make_unique<RaceToIdleGovernor>(),
                  SystemConfig{0.01, 0.2});
    const Catalog &catalog = Catalog::instance();

    std::size_t next = 0;
    Seconds last_completion = 0.0;
    while (next < workload.items.size() || !system.idle()) {
        while (next < workload.items.size() &&
               workload.items[next].arrival
                   <= system.now() + 0.005) {
            system.submit(
                catalog.byName(workload.items[next].benchmark),
                workload.items[next].threads);
            ++next;
        }
        system.step();
    }
    for (const Process &proc : system.finishedProcesses())
        last_completion = std::max(last_completion, proc.completed);

    ScenarioResult r;
    r.completionTime = last_completion;
    r.energy = machine.energyMeter().energy();
    r.averagePower = r.energy / r.completionTime;
    r.ed2p = r.energy * r.completionTime * r.completionTime;
    r.processesCompleted = static_cast<std::uint32_t>(
        system.finishedProcesses().size());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const Seconds duration = argc > 1 ? std::atof(argv[1]) : 1200.0;
    const ChipSpec chip = xGene3();

    GeneratorConfig gen_cfg;
    gen_cfg.duration = duration;
    gen_cfg.maxCores = chip.numCores;
    gen_cfg.seed = 42;
    gen_cfg.chipName = chip.name;
    gen_cfg.referenceFrequency = chip.fMax;
    const GeneratedWorkload workload =
        WorkloadGenerator(gen_cfg).generate();

    std::cout << "Custom-policy comparison on " << chip.name
              << " (" << workload.items.size()
              << " invocations over " << formatDouble(duration, 0)
              << " s)\n\n";

    TextTable table({"policy", "time (s)", "avg power (W)",
                     "energy (J)", "ED2P"});

    auto add = [&](const char *label, const ScenarioResult &r) {
        table.addRow({label, formatDouble(r.completionTime, 0),
                      formatDouble(r.averagePower, 2),
                      formatDouble(r.energy, 0),
                      formatSi(r.ed2p, 1)});
    };

    ScenarioConfig sc;
    sc.chip = chip;
    sc.policy = PolicyKind::Baseline;
    add("Baseline (ondemand)", ScenarioRunner(sc).run(workload));
    add("race-to-idle (custom)", runCustom(chip, workload));
    sc.policy = PolicyKind::Optimal;
    add("EcoSched daemon (Optimal)",
        ScenarioRunner(sc).run(workload));

    table.print(std::cout);

    std::cout << "\nRace-to-idle finishes fast but burns fmax "
                 "power on memory-stalled cores; the daemon's "
                 "class-aware V/F + allocation wins clearly on "
                 "energy, trading a few percent of completion "
                 "time.\n";
    return 0;
}
