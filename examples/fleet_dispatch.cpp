/**
 * @file
 * Fleet dispatch — the cluster layer as a library user would drive
 * it.
 *
 * Builds a small heterogeneous fleet (X-Gene 3 + X-Gene 2 nodes,
 * each a distinct chip sample with its own Vmin variation), offers
 * it a diurnal open-arrival job stream, and serves the *same*
 * stream under the three dispatch policies to compare fleet-level
 * energy and tail latency.
 *
 * Usage:
 *   fleet_dispatch [nodes] [duration_seconds] [seed] [--jobs N]
 */

#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "ecosched/ecosched.hh"

using namespace ecosched;

int
main(int argc, char **argv)
{
    const unsigned jobs = stripJobsFlag(argc, argv);
    std::size_t num_nodes = 4;
    Seconds duration = 300.0;
    std::uint64_t seed = 7;
    if (argc > 1)
        num_nodes = static_cast<std::size_t>(std::atol(argv[1]));
    if (argc > 2)
        duration = std::atof(argv[2]);
    if (argc > 3)
        seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
    if (num_nodes == 0)
        num_nodes = 4;
    if (duration <= 0.0)
        duration = 300.0;

    // 1. A heterogeneous fleet: each node runs the paper's full
    //    daemon (Optimal) locally; the dispatcher works above it.
    const std::vector<NodeConfig> fleet = mixedFleet(num_nodes, seed);

    // 2. A day-shaped open request stream, sized to offer ~25% of
    //    the fleet's capacity at the mean — the diurnal peak then
    //    reaches ~45%, leaving headroom for the long SPEC tail.
    TrafficConfig traffic;
    traffic.process = ArrivalProcess::Diurnal;
    traffic.duration = duration;
    traffic.seed = seed;
    const TrafficModel planner(traffic);
    double rate = 0.0;
    for (const NodeConfig &nc : fleet) {
        rate += 0.25 * static_cast<double>(nc.chip.numCores)
            / planner.meanCoreSecondsPerJob(nc.chip.numCores);
    }
    traffic.arrivalsPerSecond = rate;

    std::cout << "Fleet dispatch: " << num_nodes
              << " nodes, diurnal arrivals over "
              << formatDouble(duration, 0) << " s (seed " << seed
              << ")\n\n";

    // 3. Serve the identical stream under each dispatch policy.
    TextTable table({"dispatch", "jobs", "energy (J)", "J/job",
                     "p50 (s)", "p99 (s)", "SLO viol", "parked (s)"});
    for (DispatchPolicy policy :
         {DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded,
          DispatchPolicy::EnergyAware}) {
        ClusterConfig cc;
        cc.nodes = fleet;
        cc.dispatch = policy;
        cc.traffic = traffic;
        cc.jobs = jobs;
        // Long-tailed SPEC jobs on a small fleet: allow a generous
        // drain window past the arrival cutoff.
        cc.drainBoundFactor = 10.0;
        const ClusterResult r = ClusterSim(std::move(cc)).run();
        Seconds parked = 0.0;
        for (const NodeSummary &s : r.nodes)
            parked += s.parkedTime;
        table.addRow({dispatchPolicyName(policy),
                      std::to_string(r.jobsCompleted),
                      formatDouble(r.totalEnergy, 1),
                      formatDouble(r.energyPerJob(), 1),
                      formatDouble(r.latencyP50, 2),
                      formatDouble(r.latencyP99, 2),
                      std::to_string(r.sloViolations),
                      formatDouble(parked, 1)});
    }
    table.print(std::cout);
    std::cout << "\nenergy_aware packs the deepest safe-Vmin chips "
                 "first and parks idle nodes;\nround_robin keeps "
                 "every node warm and pays for it.\n";
    return 0;
}
