/**
 * @file
 * Quickstart: the smallest useful EcoSched program.
 *
 * Builds a simulated X-Gene 3, runs the memory-intensive NPB CG with
 * 8 threads in the two canonical core allocations (clustered vs
 * spreaded, Figure 2), at nominal settings and at the configuration's
 * safe Vmin, and prints runtime / energy / ED2P for each — the basic
 * trade-off the paper's daemon automates.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

namespace {

struct RunResult
{
    Seconds runtime;
    Joule energy;
    double ed2p;
};

RunResult
runOnce(const ChipSpec &spec, const BenchmarkProfile &bench,
        std::uint32_t threads, Allocation alloc, Hertz freq,
        bool undervolt)
{
    Machine machine(spec);
    const auto cores = allocateCores(spec.numCores, threads, alloc);

    // Program the control plane the way the daemon would.
    machine.slimPro().requestAllFrequencies(0.0, freq);
    if (undervolt) {
        const Volt v = machine.vminModel().tableVmin(
            freq, countUtilizedPmds(cores));
        machine.slimPro().requestVoltage(0.0, v);
    }

    const Instructions work = bench.perThreadWork(threads);
    for (CoreId c : cores) {
        machine.startThread(bench.work, work, c,
                            bench.vminSensitivity);
    }
    while (!machine.runningThreads().empty())
        machine.step(units::ms(10));

    const auto &meter = machine.energyMeter();
    return {machine.now(), meter.energy(), meter.ed2p()};
}

} // namespace

int
main()
{
    const ChipSpec chip = xGene3();
    const auto &bench = Catalog::instance().byName("CG");
    const std::uint32_t threads = 8;

    std::cout << "EcoSched quickstart: " << bench.name << " ("
              << suiteName(bench.suite) << ") with " << threads
              << " threads on " << chip.name << "\n\n";

    TextTable table({"allocation", "freq (GHz)", "voltage",
                     "runtime (s)", "energy (J)", "ED2P"});
    for (Allocation alloc :
         {Allocation::Clustered, Allocation::Spreaded}) {
        for (bool undervolt : {false, true}) {
            for (Hertz f : {chip.fMax, chip.halfClassMaxFreq}) {
                const RunResult r =
                    runOnce(chip, bench, threads, alloc, f,
                            undervolt);
                table.addRow({
                    allocationName(alloc),
                    formatDouble(units::toGHz(f), 3),
                    undervolt ? "safe Vmin" : "nominal",
                    formatDouble(r.runtime, 1),
                    formatDouble(r.energy, 1),
                    formatSi(r.ed2p, 2),
                });
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nMemory-intensive work tolerates the reduced "
                 "clock; combining it with the allocation-aware safe "
                 "Vmin is what the daemon automates.\n";
    return 0;
}
