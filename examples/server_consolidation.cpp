/**
 * @file
 * Server-consolidation scenario — the paper's §VI evaluation as a
 * library user would run it.
 *
 * Generates a random server workload (heavy / average / light /
 * idle phases, the 35-program SPEC+NPB pool), replays it under the
 * four configurations (Baseline, Safe Vmin, Placement, Optimal) and
 * reports energy, power, completion time, ED2P and daemon activity.
 *
 * Usage:
 *   server_consolidation [duration_seconds] [seed] [xgene2|xgene3]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "ecosched/ecosched.hh"

using namespace ecosched;

int
main(int argc, char **argv)
{
    Seconds duration = 1800.0;
    std::uint64_t seed = 42;
    bool use_xgene3 = true;
    if (argc > 1)
        duration = std::atof(argv[1]);
    if (argc > 2)
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    if (argc > 3)
        use_xgene3 = std::strcmp(argv[3], "xgene2") != 0;
    if (duration <= 0.0)
        duration = 1800.0;

    const ChipSpec chip = use_xgene3 ? xGene3() : xGene2();

    // 1. Generate a replayable workload for this chip.
    GeneratorConfig gen_cfg;
    gen_cfg.duration = duration;
    gen_cfg.maxCores = chip.numCores;
    gen_cfg.seed = seed;
    gen_cfg.chipName = chip.name;
    gen_cfg.referenceFrequency = chip.fMax;
    const GeneratedWorkload workload =
        WorkloadGenerator(gen_cfg).generate();

    std::cout << "Server consolidation on " << chip.name << ": "
              << workload.items.size() << " invocations over "
              << formatDouble(duration, 0) << " s (seed " << seed
              << ")\n\n";

    // 2. Replay it under each configuration.
    TextTable table({"configuration", "time (s)", "avg power (W)",
                     "energy (J)", "savings", "ED2P",
                     "migrations", "V changes"});
    double base_energy = 0.0;
    for (PolicyKind policy :
         {PolicyKind::Baseline, PolicyKind::SafeVmin,
          PolicyKind::Placement, PolicyKind::Optimal}) {
        ScenarioConfig sc;
        sc.chip = chip;
        sc.policy = policy;
        const ScenarioResult r = ScenarioRunner(sc).run(workload);
        if (policy == PolicyKind::Baseline)
            base_energy = r.energy;
        table.addRow({policyKindName(policy),
                      formatDouble(r.completionTime, 0),
                      formatDouble(r.averagePower, 2),
                      formatDouble(r.energy, 0),
                      policy == PolicyKind::Baseline
                          ? "-"
                          : formatPercent(
                                1.0 - r.energy / base_energy, 1),
                      formatSi(r.ed2p, 1),
                      std::to_string(r.migrations),
                      std::to_string(r.voltageTransitions)});
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (1-hour workloads): 25.2% "
                 "energy savings on X-Gene 2, 22.3% on X-Gene 3, "
                 "with ~3% longer completion.\n";
    return 0;
}
