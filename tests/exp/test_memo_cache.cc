/**
 * @file
 * MemoCache bounding and ConfigKey framing: the LRU cap (explicit,
 * from ECOSCHED_MEMO_CAP, or the built-in default), the hit/miss/
 * eviction counters, and the regression pinning that adjacent mixed
 * fields can no longer collide across their boundary.
 *
 * Suite names contain "MemoCache" so the TSan CI filter picks them
 * up.
 */

#include <cstdint>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "exp/memo_cache.hh"

namespace ecosched {
namespace {

TEST(MemoCache, HitsMissesAndSizeAreCounted)
{
    MemoCache<int> cache(8);
    int computed = 0;
    auto compute = [&] { return ++computed; };

    EXPECT_EQ(cache.getOrCompute(1, compute), 1);
    EXPECT_EQ(cache.getOrCompute(2, compute), 2);
    EXPECT_EQ(cache.getOrCompute(1, compute), 1); // hit: not recomputed
    EXPECT_EQ(computed, 2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(MemoCache, LruCapEvictsTheColdestEntry)
{
    MemoCache<int> cache(3);
    EXPECT_EQ(cache.capacity(), 3u);
    int computed = 0;
    auto compute = [&] { return ++computed; };

    cache.getOrCompute(1, compute);
    cache.getOrCompute(2, compute);
    cache.getOrCompute(3, compute);
    cache.getOrCompute(1, compute); // refresh 1: 2 is now coldest
    cache.getOrCompute(4, compute); // evicts 2
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 1u);

    // 1, 3 and 4 survived; 2 must be recomputed.
    const std::size_t misses_before = cache.misses();
    EXPECT_EQ(cache.getOrCompute(1, compute), 1);
    EXPECT_EQ(cache.getOrCompute(3, compute), 3);
    EXPECT_EQ(cache.getOrCompute(4, compute), 4);
    EXPECT_EQ(cache.misses(), misses_before);
    cache.getOrCompute(2, compute);
    EXPECT_EQ(cache.misses(), misses_before + 1);
    EXPECT_EQ(cache.evictions(), 2u); // 2's re-insert evicted again
}

TEST(MemoCache, CapacityComesFromTheEnvironment)
{
    ASSERT_EQ(setenv("ECOSCHED_MEMO_CAP", "17", /*overwrite=*/1), 0);
    EXPECT_EQ(MemoCache<int>().capacity(), 17u);
    // Explicit argument beats the environment.
    EXPECT_EQ(MemoCache<int>(5).capacity(), 5u);
    // Malformed values fall back to the built-in default.
    ASSERT_EQ(setenv("ECOSCHED_MEMO_CAP", "banana", 1), 0);
    EXPECT_EQ(MemoCache<int>().capacity(), 4096u);
    ASSERT_EQ(unsetenv("ECOSCHED_MEMO_CAP"), 0);
    EXPECT_EQ(MemoCache<int>().capacity(), 4096u);
}

/**
 * Regression: the pre-framing ConfigKey hashed a string as its bytes
 * followed by its length, with no field tags, so the spec pair
 * mix("A").mix(uint64 9) fed the hash exactly the same byte stream as
 * the single 9-byte string "A\x01\0\0\0\0\0\0\0" — two different
 * experiment specs shared one memo key.  Reimplement the old scheme
 * here to prove the collision existed, then pin that the framed
 * ConfigKey separates the two.
 */
class LegacyKey
{
  public:
    LegacyKey &mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<unsigned char>((v >> (8 * i)) & 0xffu));
        return *this;
    }

    LegacyKey &mix(const std::string &s)
    {
        for (const char c : s)
            byte(static_cast<unsigned char>(c));
        return mix(static_cast<std::uint64_t>(s.size()));
    }

    std::uint64_t value() const { return h; }

  private:
    void byte(unsigned char b)
    {
        h ^= b;
        h *= 0x100000001b3ull;
    }

    std::uint64_t h = 0xcbf29ce484222325ull;
};

TEST(MemoCacheConfigKey, FramingSeparatesFieldsTheOldSchemeMerged)
{
    const std::string colliding("A\x01\0\0\0\0\0\0\0", 9);

    // The old scheme really collided on these two specs.
    EXPECT_EQ(LegacyKey().mix("A").mix(std::uint64_t{9}).value(),
              LegacyKey().mix(colliding).value());

    // The framed key tells them apart.
    EXPECT_NE(ConfigKey().mix("A").mix(std::uint64_t{9}).value(),
              ConfigKey().mix(colliding).value());
}

TEST(MemoCacheConfigKey, TypeTagsSeparateEqualBitPatterns)
{
    // A u64 and the double sharing its bit pattern are distinct
    // fields; so are "" + "ab" and "a" + "b".
    const double d = 2.5;
    std::uint64_t bits;
    __builtin_memcpy(&bits, &d, sizeof bits);
    EXPECT_NE(ConfigKey().mix(bits).value(),
              ConfigKey().mix(d).value());
    EXPECT_NE(ConfigKey().mix("").mix("ab").value(),
              ConfigKey().mix("a").mix("b").value());
}

TEST(MemoCacheConfigKey, OrderAndValueSensitivity)
{
    EXPECT_NE(ConfigKey().mix(std::uint64_t{1}).mix(std::uint64_t{2})
                  .value(),
              ConfigKey().mix(std::uint64_t{2}).mix(std::uint64_t{1})
                  .value());
    EXPECT_EQ(ConfigKey().mix("chip").mix(3.0).value(),
              ConfigKey().mix("chip").mix(3.0).value());
}

} // namespace
} // namespace ecosched
