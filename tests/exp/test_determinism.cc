/**
 * @file
 * End-to-end determinism of the parallel experiment engine: the
 * domain-level results (ScenarioResult, RunStats,
 * CharacterizationResult) must be bit-identical no matter how many
 * workers execute the fan-out.
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "bench/run_common.hh"
#include "bench/scenario_common.hh"
#include "common/units.hh"
#include "ecosched/ecosched.hh"

namespace ecosched {
namespace {

using namespace units;
using bench::ConfigPoint;
using bench::RunStats;

ExperimentEngine
engineWith(unsigned jobs, std::uint64_t seed)
{
    EngineConfig ec;
    ec.jobs = jobs;
    ec.baseSeed = seed;
    return ExperimentEngine(ec);
}

void
expectSameResult(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.completionTime, b.completionTime);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.averagePower, b.averagePower);
    EXPECT_EQ(a.ed2p, b.ed2p);
    EXPECT_EQ(a.processesCompleted, b.processesCompleted);
    EXPECT_EQ(a.processesFailed, b.processesFailed);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.voltageTransitions, b.voltageTransitions);
    EXPECT_EQ(a.frequencyTransitions, b.frequencyTransitions);
    EXPECT_EQ(a.worstOutcome, b.worstOutcome);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].time, b.timeline[i].time);
        EXPECT_EQ(a.timeline[i].power, b.timeline[i].power);
        EXPECT_EQ(a.timeline[i].voltage, b.timeline[i].voltage);
    }
}

TEST(Determinism, ScenarioReplayIdenticalAcrossJobCounts)
{
    const ChipSpec chip = xGene2();
    GeneratorConfig gc;
    gc.duration = 300.0;
    gc.maxCores = chip.numCores;
    gc.seed = 42;
    gc.chipName = chip.name;
    gc.referenceFrequency = chip.fMax;
    const GeneratedWorkload workload = WorkloadGenerator(gc).generate();

    const std::vector<PolicyKind> policies(
        bench::allPolicies.begin(), bench::allPolicies.end());
    auto runAll = [&](unsigned jobs) {
        return bench::runPolicies(engineWith(jobs, 42), chip, workload,
                                  policies);
    };

    const auto serial = runAll(1);
    const auto par4 = runAll(4);
    const auto par16 = runAll(16);
    ASSERT_EQ(serial.size(), policies.size());
    ASSERT_EQ(par4.size(), policies.size());
    ASSERT_EQ(par16.size(), policies.size());
    for (std::size_t i = 0; i < policies.size(); ++i) {
        EXPECT_EQ(serial[i].policy, policies[i]);
        expectSameResult(serial[i], par4[i]);
        expectSameResult(serial[i], par16[i]);
    }
}

void
expectSameStats(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.energyNormalized, b.energyNormalized);
    EXPECT_EQ(a.ed2p, b.ed2p);
    EXPECT_EQ(a.meanL3PerMCycles, b.meanL3PerMCycles);
    EXPECT_EQ(a.meanIpc, b.meanIpc);
}

TEST(Determinism, ConfigurationGridIdenticalAcrossJobCounts)
{
    const ChipSpec chip = xGene2();
    const auto benchmarks = Catalog::instance().figureBenchmarks();

    std::vector<ConfigPoint> points;
    for (const auto *bench : benchmarks) {
        for (std::uint32_t threads : {8u, 2u}) {
            points.push_back({bench, threads, Allocation::Spreaded,
                              chip.fMax, /*undervolt=*/true,
                              /*seed=*/1});
        }
    }

    auto runGrid = [&](unsigned jobs, MemoCache<RunStats> *cache) {
        return bench::runConfigurations(engineWith(jobs, 1), chip,
                                        points, cache);
    };

    const auto serial = runGrid(1, nullptr);
    const auto par = runGrid(4, nullptr);
    MemoCache<RunStats> cache;
    const auto cached = runGrid(4, &cache);
    const auto replay = runGrid(16, &cache); // all hits
    ASSERT_EQ(serial.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        expectSameStats(serial[i], par[i]);
        expectSameStats(serial[i], cached[i]);
        expectSameStats(serial[i], replay[i]);
    }
    EXPECT_EQ(cache.size(), points.size());
    EXPECT_EQ(cache.hits(), points.size()); // replay fully memoized
}

TEST(Determinism, PrototypeCacheGridIdenticalAcrossJobCounts)
{
    // The pooled (snapshot-and-branch) sweep path: points fork off a
    // prototype machine rewound to its pristine snapshot.  Results
    // must match the fresh-machine path bit-exactly at any worker
    // count, with workers contending for the same shared pool.
    const ChipSpec chip = xGene2();
    std::vector<ConfigPoint> points;
    for (const auto *bench : Catalog::instance().figureBenchmarks()) {
        for (Hertz f : {GHz(2.4), GHz(0.9)}) {
            points.push_back({bench, 4u, Allocation::Spreaded, f,
                              /*undervolt=*/true, /*seed=*/1});
        }
    }

    // Reference: the legacy one-fresh-machine-per-point runner.
    std::vector<RunStats> reference;
    for (const ConfigPoint &p : points) {
        reference.push_back(bench::runConfiguration(
            chip, *p.bench, p.threads, p.alloc, p.freq, p.undervolt,
            p.seed));
    }

    for (unsigned jobs : {1u, 4u}) {
        bench::MachinePool pool;
        const auto pooled = bench::runConfigurations(
            engineWith(jobs, 1), chip, points, nullptr, &pool);
        ASSERT_EQ(pooled.size(), points.size());
        for (std::size_t i = 0; i < points.size(); ++i)
            expectSameStats(pooled[i], reference[i]);
        EXPECT_EQ(pool.stats().builds + pool.stats().reuses,
                  points.size());
        EXPECT_GT(pool.stats().reuses, 0u);
    }
}

TEST(Determinism, PooledScenarioReplayIdenticalAcrossJobCounts)
{
    // Same workload as ScenarioReplayIdenticalAcrossJobCounts, but
    // replayed through a shared SimStackPool: leased stacks rewound
    // to pristine must match per-run construction bit-exactly.
    const ChipSpec chip = xGene2();
    GeneratorConfig gc;
    gc.duration = 300.0;
    gc.maxCores = chip.numCores;
    gc.seed = 42;
    gc.chipName = chip.name;
    gc.referenceFrequency = chip.fMax;
    const GeneratedWorkload workload =
        WorkloadGenerator(gc).generate();

    const std::vector<PolicyKind> policies(
        bench::allPolicies.begin(), bench::allPolicies.end());
    const auto unpooled = bench::runPolicies(
        engineWith(1, 42), chip, workload, policies);

    SimStackPool pool;
    // Two passes: the second drains entirely from parked stacks.
    bench::runPolicies(engineWith(4, 42), chip, workload, policies,
                       &pool);
    const auto pooled = bench::runPolicies(
        engineWith(4, 42), chip, workload, policies, &pool);
    ASSERT_EQ(pooled.size(), policies.size());
    for (std::size_t i = 0; i < policies.size(); ++i)
        expectSameResult(pooled[i], unpooled[i]);
    EXPECT_EQ(pool.stats().builds, policies.size());
    EXPECT_EQ(pool.stats().reuses, policies.size());
}

TEST(Determinism, CharacterizationBatchIdenticalAcrossJobCounts)
{
    const ChipSpec spec = xGene2();
    const VminModel model(spec);
    const FailureModel failures;
    CharacterizerConfig cc;
    cc.safeTrials = 100; // keep the test quick; protocol unchanged
    cc.unsafeTrials = 30;
    const VminCharacterizer characterizer(model, failures, cc);

    std::vector<CharacterizationTask> tasks;
    for (std::uint32_t threads : {8u, 4u, 2u, 1u}) {
        tasks.push_back(
            {spec.fMax,
             allocateCores(spec.numCores, threads,
                           Allocation::Spreaded),
             0.9});
    }

    auto runBatch = [&](unsigned jobs) {
        return characterizer.characterizeBatch(engineWith(jobs, 99),
                                               tasks);
    };
    const auto serial = runBatch(1);
    const auto par4 = runBatch(4);
    const auto par16 = runBatch(16);
    ASSERT_EQ(serial.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        for (const auto *other : {&par4[i], &par16[i]}) {
            EXPECT_EQ(serial[i].safeVmin, other->safeVmin);
            EXPECT_EQ(serial[i].crashVoltage, other->crashVoltage);
            ASSERT_EQ(serial[i].sweep.size(), other->sweep.size());
            for (std::size_t p = 0; p < serial[i].sweep.size(); ++p) {
                EXPECT_EQ(serial[i].sweep[p].voltage,
                          other->sweep[p].voltage);
                EXPECT_EQ(serial[i].sweep[p].failures,
                          other->sweep[p].failures);
                EXPECT_EQ(serial[i].sweep[p].outcomes,
                          other->sweep[p].outcomes);
            }
        }
    }
}

} // namespace
} // namespace ecosched
