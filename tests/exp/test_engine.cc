/**
 * @file
 * Unit tests for the experiment engine: deterministic seed fan-out,
 * ordered collection, job-count resolution and the memo cache.
 */

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "exp/engine.hh"
#include "exp/memo_cache.hh"

namespace ecosched {
namespace {

ExperimentEngine
engineWith(unsigned jobs, std::uint64_t seed = 1234)
{
    EngineConfig ec;
    ec.jobs = jobs;
    ec.baseSeed = seed;
    return ExperimentEngine(ec);
}

TEST(Engine, ResultsAreInTaskOrder)
{
    const auto out = engineWith(8).map<std::size_t>(
        100, [](std::size_t i, Rng &) { return i * 3; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * 3);
}

TEST(Engine, TaskRngIsForkOfBaseSeed)
{
    const auto engine = engineWith(4, 77);
    for (std::uint64_t i : {0ull, 1ull, 42ull}) {
        Rng expected = Rng(77).fork(i);
        Rng got = engine.taskRng(i);
        for (int d = 0; d < 16; ++d)
            EXPECT_EQ(got.next(), expected.next());
    }
}

TEST(Engine, MapIsBitIdenticalForAnyJobCount)
{
    // Each task mixes 1000 draws from its private stream; any
    // cross-task leakage or order dependence changes the digest.
    auto digest = [](unsigned jobs) {
        return engineWith(jobs).map<std::uint64_t>(
            64, [](std::size_t, Rng &rng) {
                std::uint64_t h = 0;
                for (int d = 0; d < 1000; ++d)
                    h = h * 31 + rng.next();
                return h;
            });
    };
    const auto serial = digest(1);
    EXPECT_EQ(serial, digest(4));
    EXPECT_EQ(serial, digest(16));
}

TEST(Engine, DifferentBaseSeedsGiveDifferentStreams)
{
    auto first = [](std::uint64_t seed) {
        return engineWith(1, seed).map<std::uint64_t>(
            4, [](std::size_t, Rng &rng) { return rng.next(); });
    };
    EXPECT_NE(first(1), first(2));
}

TEST(Engine, ExceptionsPropagateFromWorkers)
{
    const auto engine = engineWith(4);
    EXPECT_THROW(
        engine.map<int>(32,
                        [](std::size_t i, Rng &) {
                            if (i == 17)
                                throw std::runtime_error("boom");
                            return 0;
                        }),
        std::runtime_error);
}

TEST(Engine, MapSpecsPassesSpecAndIndex)
{
    const std::vector<int> specs = {5, 7, 9};
    const auto out = engineWith(2).mapSpecs<int, int>(
        specs, [](std::size_t i, const int &spec, Rng &) {
            return static_cast<int>(i) * 100 + spec;
        });
    EXPECT_EQ(out, (std::vector<int>{5, 107, 209}));
}

TEST(Engine, EmptyMapReturnsEmpty)
{
    const auto out = engineWith(4).map<int>(
        0, [](std::size_t, Rng &) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(Engine, ResolveJobsPrefersExplicitCount)
{
    EXPECT_EQ(resolveJobs(5), 5u);
}

TEST(Engine, ResolveJobsReadsEnvironment)
{
    ::setenv("ECOSCHED_JOBS", "3", 1);
    EXPECT_EQ(resolveJobs(0), 3u);
    ::setenv("ECOSCHED_JOBS", "0", 1);
    EXPECT_GE(resolveJobs(0), 1u); // invalid env falls through
    ::unsetenv("ECOSCHED_JOBS");
    EXPECT_GE(resolveJobs(0), 1u);
}

TEST(Engine, StripJobsFlagBothForms)
{
    {
        const char *raw[] = {"bench", "120", "--jobs", "6", "42"};
        char *argv[5];
        for (int i = 0; i < 5; ++i)
            argv[i] = const_cast<char *>(raw[i]);
        int argc = 5;
        EXPECT_EQ(stripJobsFlag(argc, argv), 6u);
        ASSERT_EQ(argc, 3);
        EXPECT_STREQ(argv[1], "120");
        EXPECT_STREQ(argv[2], "42");
    }
    {
        const char *raw[] = {"bench", "--jobs=8", "7"};
        char *argv[3];
        for (int i = 0; i < 3; ++i)
            argv[i] = const_cast<char *>(raw[i]);
        int argc = 3;
        EXPECT_EQ(stripJobsFlag(argc, argv), 8u);
        ASSERT_EQ(argc, 2);
        EXPECT_STREQ(argv[1], "7");
    }
    {
        char prog[] = "bench";
        char *argv[] = {prog};
        int argc = 1;
        EXPECT_EQ(stripJobsFlag(argc, argv), 0u);
        EXPECT_EQ(argc, 1);
    }
}

TEST(MemoCacheTest, ComputesOncePerKey)
{
    MemoCache<int> cache;
    int computed = 0;
    auto fn = [&computed] { return ++computed; };
    EXPECT_EQ(cache.getOrCompute(11, fn), 1);
    EXPECT_EQ(cache.getOrCompute(11, fn), 1); // cached
    EXPECT_EQ(cache.getOrCompute(22, fn), 2);
    EXPECT_EQ(computed, 2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(MemoCacheTest, SharedAcrossEngineWorkers)
{
    MemoCache<std::uint64_t> cache;
    // 64 tasks over 8 distinct keys: every key's value must be the
    // same for all tasks that asked for it.
    const auto out = engineWith(8).map<std::uint64_t>(
        64, [&cache](std::size_t i, Rng &) {
            const std::uint64_t key = i % 8;
            return cache.getOrCompute(key, [key] {
                Rng rng(key); // deterministic "experiment"
                return rng.next();
            });
        });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], out[i % 8]);
    EXPECT_EQ(cache.size(), 8u);
}

TEST(ConfigKeyTest, SensitiveToEveryField)
{
    const auto base =
        ConfigKey{}.mix(std::uint64_t{1}).mix(2.5).mix("milc");
    EXPECT_NE(base.value(),
              ConfigKey{}.mix(std::uint64_t{2}).mix(2.5).mix("milc")
                  .value());
    EXPECT_NE(base.value(),
              ConfigKey{}.mix(std::uint64_t{1}).mix(2.6).mix("milc")
                  .value());
    EXPECT_NE(base.value(),
              ConfigKey{}.mix(std::uint64_t{1}).mix(2.5).mix("CG")
                  .value());
    const auto again =
        ConfigKey{}.mix(std::uint64_t{1}).mix(2.5).mix("milc");
    EXPECT_EQ(base.value(), again.value());
}

} // namespace
} // namespace ecosched
