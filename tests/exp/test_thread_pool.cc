/**
 * @file
 * Unit tests for the fixed-size worker pool.
 */

#include <atomic>
#include <cstddef>

#include <gtest/gtest.h>

#include "exp/thread_pool.hh"

namespace ecosched {
namespace {

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, AtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    ThreadPool pool4(4);
    EXPECT_EQ(pool4.size(), 4u);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), 50 * (round + 1));
    }
}

TEST(ThreadPool, WaitWithoutTasksReturns)
{
    ThreadPool pool(3);
    pool.wait(); // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&counter] { ++counter; });
        // no wait(): the destructor must finish the queue
    }
    EXPECT_EQ(counter.load(), 200);
}

} // namespace
} // namespace ecosched
