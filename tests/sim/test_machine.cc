/**
 * @file
 * Unit and integration tests for the Machine: thread lifecycle,
 * execution/counter accuracy, clock gating, migration, droop
 * sampling, fault injection.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/units.hh"
#include "sim/machine.hh"

namespace ecosched {
namespace {

using namespace units;

WorkProfile
simpleProfile()
{
    WorkProfile p;
    p.cpiBase = 1.0;
    p.l3Apki = 10.0;
    p.dramApki = 2.0;
    p.mlp = 2.0;
    return p;
}

TEST(Machine, ThreadLifecycle)
{
    Machine machine(xGene3());
    const SimThreadId tid =
        machine.startThread(simpleProfile(), 1'000'000, 5);
    EXPECT_TRUE(machine.coreBusy(5));
    EXPECT_EQ(machine.threadOnCore(5), tid);
    EXPECT_EQ(machine.runningThreads().size(), 1u);
    EXPECT_EQ(machine.utilizedPmds(), 1u);

    while (machine.runningThreads().size() == 1)
        machine.step(ms(1));
    EXPECT_FALSE(machine.coreBusy(5));

    const auto done = machine.collectFinished();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].id, tid);
    EXPECT_TRUE(done[0].finished);
    EXPECT_EQ(done[0].outcome, RunOutcome::Ok);
    EXPECT_EQ(done[0].counters.instructions, 1'000'000u);
}

TEST(Machine, RejectsDoubleOccupancy)
{
    Machine machine(xGene3());
    machine.startThread(simpleProfile(), 1000, 3);
    EXPECT_THROW(machine.startThread(simpleProfile(), 1000, 3),
                 FatalError);
    EXPECT_THROW(machine.startThread(simpleProfile(), 1000, 99),
                 FatalError);
    EXPECT_THROW(machine.startThread(simpleProfile(), 0, 4),
                 FatalError);
}

TEST(Machine, CountersMatchExecutionModel)
{
    Machine machine(xGene3());
    const WorkProfile p = simpleProfile();
    const SimThreadId tid = machine.startThread(p, 100'000'000, 0);
    machine.step(ms(10));
    const SimThread &t = machine.thread(tid);
    // Cycles ~= busyTime * f; L3 accesses ~= instr * apki/1000.
    EXPECT_NEAR(static_cast<double>(t.counters.cycles),
                t.counters.busyTime * GHz(3.0), GHz(3.0) * 1e-5);
    EXPECT_NEAR(static_cast<double>(t.counters.l3Accesses),
                static_cast<double>(t.counters.instructions) * 0.01,
                static_cast<double>(t.counters.instructions)
                    * 0.0005);
    EXPECT_GT(t.counters.instructions, 0u);
}

TEST(Machine, FrequencyScalesCpuBoundThroughput)
{
    WorkProfile cpu;
    cpu.cpiBase = 1.0;
    cpu.l3Apki = 0.1;
    cpu.dramApki = 0.01;

    Machine fast(xGene3());
    Machine slow(xGene3());
    slow.slimPro().requestAllFrequencies(0.0, GHz(1.5));
    const SimThreadId tf = fast.startThread(cpu, 1'000'000'000, 0);
    const SimThreadId ts = slow.startThread(cpu, 1'000'000'000, 0);
    fast.step(ms(50));
    slow.step(ms(50));
    const double ratio =
        static_cast<double>(
            fast.thread(tf).counters.instructions)
        / static_cast<double>(
            slow.thread(ts).counters.instructions);
    EXPECT_NEAR(ratio, 2.0, 0.05);
}

TEST(Machine, SharedL2PenaltyAppliesWhenSiblingBusy)
{
    WorkProfile p = simpleProfile();
    p.l2SharingPenalty = 1.5;

    Machine alone(xGene3());
    const SimThreadId ta = alone.startThread(p, 1'000'000'000, 0);
    alone.step(ms(20));

    Machine paired(xGene3());
    const SimThreadId tp = paired.startThread(p, 1'000'000'000, 0);
    paired.startThread(p, 1'000'000'000, 1); // same PMD
    paired.step(ms(20));

    EXPECT_GT(alone.thread(ta).counters.instructions,
              paired.thread(tp).counters.instructions);
}

TEST(Machine, AutoClockGatingFollowsOccupancy)
{
    Machine machine(xGene3());
    machine.startThread(simpleProfile(), 1'000'000'000, 0);
    machine.step(ms(1));
    EXPECT_FALSE(machine.chip().pmdClockGated(0));
    for (PmdId pmd = 1; pmd < 16; ++pmd)
        EXPECT_TRUE(machine.chip().pmdClockGated(pmd));
}

TEST(Machine, MigrationMovesAndStalls)
{
    MachineConfig cfg;
    cfg.migrationCost = ms(5);
    Machine machine(xGene3(), cfg);
    const SimThreadId tid =
        machine.startThread(simpleProfile(), 1'000'000'000, 0);
    machine.step(ms(1));
    const Instructions before =
        machine.thread(tid).counters.instructions;

    machine.migrateThread(tid, 10);
    EXPECT_EQ(machine.threadOnCore(10), tid);
    EXPECT_FALSE(machine.coreBusy(0));
    EXPECT_EQ(machine.thread(tid).migrations, 1u);

    // During the warm-up stall no instructions retire.
    machine.step(ms(2));
    EXPECT_EQ(machine.thread(tid).counters.instructions, before);
    machine.step(ms(10));
    EXPECT_GT(machine.thread(tid).counters.instructions, before);
}

TEST(Machine, MigrationToBusyCoreFails)
{
    Machine machine(xGene3());
    const SimThreadId a =
        machine.startThread(simpleProfile(), 1000000, 0);
    machine.startThread(simpleProfile(), 1000000, 1);
    EXPECT_THROW(machine.migrateThread(a, 1), FatalError);
}

TEST(Machine, SwapThreadsExchangesCores)
{
    Machine machine(xGene3());
    const SimThreadId a =
        machine.startThread(simpleProfile(), 1'000'000'000, 0);
    const SimThreadId b =
        machine.startThread(simpleProfile(), 1'000'000'000, 7);
    machine.swapThreads(a, b);
    EXPECT_EQ(machine.thread(a).core, 7u);
    EXPECT_EQ(machine.thread(b).core, 0u);
    EXPECT_EQ(machine.threadOnCore(0), b);
    EXPECT_EQ(machine.threadOnCore(7), a);
    EXPECT_THROW(machine.swapThreads(a, a), FatalError);
}

TEST(Machine, StopThreadFreesCore)
{
    Machine machine(xGene3());
    const SimThreadId tid =
        machine.startThread(simpleProfile(), 1'000'000'000, 2);
    machine.stopThread(tid);
    EXPECT_FALSE(machine.coreBusy(2));
    EXPECT_THROW(machine.thread(tid), FatalError);
}

TEST(Machine, EnergyAccumulatesWhileStepping)
{
    Machine machine(xGene3());
    machine.startThread(simpleProfile(), 1'000'000'000, 0);
    machine.runUntil(0.1, ms(10));
    EXPECT_GT(machine.energyMeter().energy(), 0.0);
    EXPECT_NEAR(machine.energyMeter().elapsed(), 0.1, 1e-9);
    EXPECT_GT(machine.lastPower().total(), 0.0);
    EXPECT_NEAR(machine.now(), 0.1, 1e-9);
}

TEST(Machine, IdleMachineStillLeaks)
{
    Machine machine(xGene3());
    machine.step(ms(10));
    EXPECT_GT(machine.lastPower().leakage, 0.0);
    EXPECT_DOUBLE_EQ(machine.lastPower().coreDynamic, 0.0);
}

TEST(Machine, ContentionReportedForMemoryHogs)
{
    Machine machine(xGene3());
    WorkProfile mem;
    mem.cpiBase = 1.0;
    mem.l3Apki = 100.0;
    mem.dramApki = 60.0;
    mem.mlp = 4.0;
    for (CoreId c = 0; c < 32; ++c)
        machine.startThread(mem, 1'000'000'000, c);
    machine.step(ms(10));
    EXPECT_GT(machine.lastContention(), 1.5);
    EXPECT_GT(machine.lastUtilization(), 0.99);
}

TEST(Machine, DroopSamplingFillsOnlyTheConfigClass)
{
    MachineConfig cfg;
    cfg.sampleDroops = true;
    Machine machine(xGene3(), cfg);
    // 8 threads spreaded: 8 PMDs -> class 2 -> no [55, 65) events.
    for (CoreId c : allocateCores(32, 8, Allocation::Spreaded))
        machine.startThread(simpleProfile(), 4'000'000'000ull, c);
    machine.runUntil(0.3, ms(10));
    EXPECT_GT(machine.droopHistogram().total(), 0u);
    EXPECT_EQ(machine.droopHistogram().countInRange(55.0, 65.0), 0u);
    EXPECT_GT(machine.droopReferenceCycles(), 0u);
}

TEST(Machine, FaultInjectionBelowVminKillsWork)
{
    MachineConfig cfg;
    cfg.injectFaults = true;
    cfg.seed = 5;
    Machine machine(xGene3(), cfg);
    // Run deep below the true Vmin of a full-chip config.
    machine.chip().setVoltage(mV(700));
    for (CoreId c = 0; c < 32; ++c)
        machine.startThread(simpleProfile(), 10'000'000'000ull, c,
                            1.0);
    for (int i = 0; i < 2000 && !machine.halted(); ++i)
        machine.step(ms(10));
    EXPECT_GT(machine.unsafeExposure(), 0.0);
    EXPECT_GT(units::toMilliVolts(machine.maxUnsafeDeficit()), 50.0);
    // Deep undervolting must have produced failures (whp a crash).
    bool any_failure = machine.halted();
    for (const auto &t : machine.collectFinished())
        any_failure |= isFailure(t.outcome);
    EXPECT_TRUE(any_failure);
}

TEST(Machine, NoFaultsAtSafeVoltage)
{
    MachineConfig cfg;
    cfg.injectFaults = true;
    Machine machine(xGene3(), cfg);
    for (CoreId c = 0; c < 8; ++c)
        machine.startThread(simpleProfile(), 50'000'000, c, 1.0);
    while (!machine.runningThreads().empty())
        machine.step(ms(10));
    EXPECT_FALSE(machine.halted());
    EXPECT_DOUBLE_EQ(machine.unsafeExposure(), 0.0);
    for (const auto &t : machine.collectFinished())
        EXPECT_EQ(t.outcome, RunOutcome::Ok);
}

TEST(Machine, HaltedMachineDrawsNothing)
{
    MachineConfig cfg;
    cfg.injectFaults = true;
    cfg.seed = 11;
    Machine machine(xGene3(), cfg);
    machine.chip().setVoltage(mV(660));
    for (CoreId c = 0; c < 32; ++c)
        machine.startThread(simpleProfile(), 10'000'000'000ull, c,
                            1.0);
    for (int i = 0; i < 5000 && !machine.halted(); ++i)
        machine.step(ms(10));
    ASSERT_TRUE(machine.halted());
    const Seconds before = machine.now();
    machine.step(ms(10));
    EXPECT_DOUBLE_EQ(machine.lastPower().total(), 0.0);
    EXPECT_NEAR(machine.now(), before + 0.01, 1e-9);
}

TEST(Machine, CurrentTrueVminTracksConfiguration)
{
    Machine machine(xGene3());
    EXPECT_DOUBLE_EQ(machine.currentTrueVmin(), 0.0); // idle
    machine.startThread(simpleProfile(), 1'000'000'000, 0, 1.0);
    machine.step(ms(1));
    const Volt few = machine.currentTrueVmin();
    for (CoreId c : allocateCores(32, 16, Allocation::Spreaded)) {
        if (c != 0)
            machine.startThread(simpleProfile(), 1'000'000'000, c,
                                1.0);
    }
    machine.step(ms(1));
    EXPECT_GT(machine.currentTrueVmin(), few);
}

TEST(Machine, PhasedThreadSwitchesProfiles)
{
    Machine machine(xGene3());
    WorkProfile cpu;
    cpu.cpiBase = 1.0;
    cpu.l3Apki = 0.2;
    cpu.dramApki = 0.02;
    WorkProfile mem;
    mem.cpiBase = 1.0;
    mem.l3Apki = 60.0;
    mem.dramApki = 30.0;
    mem.mlp = 4.0;

    const SimThreadId tid = machine.startThreadPhased(
        {{cpu, 300'000'000}, {mem, 100'000'000}}, 0);

    // Phase 1: low L3 traffic.
    machine.step(units::ms(50));
    const auto after_p1 = machine.thread(tid).counters;
    EXPECT_LT(after_p1.l3AccessesPerMCycles(), 1000.0);
    EXPECT_GT(after_p1.instructions, 0u);

    // Run into phase 2 and sample its window.
    while (machine.thread(tid).counters.instructions
           < 320'000'000) {
        machine.step(units::ms(10));
        ASSERT_FALSE(machine.thread(tid).finished);
    }
    const auto snap = machine.thread(tid).counters;
    machine.step(units::ms(50));
    const auto delta = machine.thread(tid).counters.since(snap);
    EXPECT_GT(delta.l3AccessesPerMCycles(), 3000.0);

    // Completes with the full work retired.
    while (!machine.thread(tid).finished)
        machine.step(units::ms(10));
    EXPECT_EQ(machine.thread(tid).counters.instructions,
              400'000'000u);
}

TEST(Machine, PhasedThreadValidation)
{
    Machine machine(xGene3());
    EXPECT_THROW(machine.startThreadPhased({}, 0), FatalError);
    WorkProfile p;
    EXPECT_THROW(machine.startThreadPhased({{p, 0}}, 0),
                 FatalError);
}

TEST(Machine, SinglePhaseEquivalentToPlainStart)
{
    Machine a(xGene3());
    Machine b(xGene3());
    WorkProfile p;
    p.cpiBase = 1.0;
    p.l3Apki = 5.0;
    p.dramApki = 1.0;
    const SimThreadId ta = a.startThread(p, 50'000'000, 0);
    const SimThreadId tb =
        b.startThreadPhased({{p, 50'000'000}}, 0);
    for (int i = 0; i < 10; ++i) {
        a.step(units::ms(10));
        b.step(units::ms(10));
    }
    EXPECT_EQ(a.thread(ta).counters.instructions,
              b.thread(tb).counters.instructions);
    EXPECT_EQ(a.thread(ta).counters.l3Accesses,
              b.thread(tb).counters.l3Accesses);
}

TEST(Machine, StepValidation)
{
    Machine machine(xGene3());
    EXPECT_THROW(machine.step(0.0), FatalError);
    EXPECT_THROW(machine.step(-1.0), FatalError);
}

} // namespace
} // namespace ecosched
