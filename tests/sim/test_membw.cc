/**
 * @file
 * MEMBW reservation battery (DESIGN.md §15): unit tests for the
 * waterfill/throttle solver, a property fuzz sweep over random
 * thread mixes and ceilings, shadow-mode unity, and the determinism
 * contract — fixed-vs-macro-vs-event bit-identity with a ceiling
 * armed plus a mid-throttle snapshot/clone round trip.
 *
 * Suite names contain "MemBw" (and the determinism/snapshot suites
 * additionally "Determinism"/"Snapshot") so the TSan and
 * debug-asserts CI filters pick them up.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "os/governor.hh"
#include "os/system.hh"
#include "platform/chip_spec.hh"
#include "sim/event_queue.hh"
#include "sim/machine.hh"
#include "support/membw_invariants.hh"
#include "workloads/catalog.hh"

namespace ecosched {
namespace {

using namespace units;

WorkProfile
cpuProfile()
{
    WorkProfile p;
    p.cpiBase = 1.0;
    p.l3Apki = 0.5;
    p.dramApki = 0.05;
    p.mlp = 2.0;
    return p;
}

WorkProfile
memProfile()
{
    WorkProfile p;
    p.cpiBase = 1.2;
    p.l3Apki = 25.0;
    p.dramApki = 8.0;
    p.mlp = 4.0;
    return p;
}

// --- solver units -----------------------------------------------------

TEST(MemBwReservation, GrantsConserveBudgetUnderOversubscription)
{
    const MemorySystem memory(MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile mem = memProfile();
    std::vector<MemoryDemand> demands(
        8, MemoryDemand{&mem, GHz(3.0), 1.0});

    MemBwPolicy policy;
    policy.ceiling = GiBps(1); // far below the aggregate demand
    policy.maxThreadShare = 0.5;
    policy.numCores = 8;

    testsupport::checkMemBwInvariants(memory, demands, policy, 1.0);
}

TEST(MemBwReservation, ReclaimRedistributesIdleSlices)
{
    // One heavy thread among idle cores: the per-core base slice is
    // ceiling/32, but reclaim must hand the unused slices to the
    // demanding thread up to the share cap.
    const MemorySystem memory(MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile mem = memProfile();
    std::vector<MemoryDemand> demands(
        1, MemoryDemand{&mem, GHz(3.0), 1.0});

    MemBwPolicy policy;
    policy.ceiling = GiBps(4);
    policy.maxThreadShare = 0.25;
    policy.numCores = 32;

    std::vector<BytesPerSecond> grants;
    memory.solveMemBwGrants(demands, policy, 1.0, grants);
    ASSERT_EQ(grants.size(), 1u);
    const BytesPerSecond slice =
        policy.ceiling / static_cast<double>(policy.numCores);
    const BytesPerSecond demand =
        memory.threadBandwidth(demands[0], 1.0);
    // Reclaim grew the grant past the base slice, up to demand or
    // the cap (whichever binds first).
    EXPECT_GT(grants[0], slice);
    EXPECT_LE(grants[0],
              std::min(demand, policy.maxThreadShare * policy.ceiling)
                  * (1.0 + 1e-9));
    testsupport::checkMemBwInvariants(memory, demands, policy, 1.0);
}

TEST(MemBwReservation, ShareCapBindsOneHog)
{
    // A hog plus light threads: the hog's grant must stop at
    // maxThreadShare * ceiling even with budget left over.
    const MemorySystem memory(MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile hog = memProfile();
    const WorkProfile light = cpuProfile();
    std::vector<MemoryDemand> demands;
    demands.push_back({&hog, GHz(3.0), 1.0});
    for (int i = 0; i < 3; ++i)
        demands.push_back({&light, GHz(3.0), 1.0});

    MemBwPolicy policy;
    policy.ceiling = GiBps(1);
    policy.maxThreadShare = 0.2;
    policy.numCores = 8;

    std::vector<BytesPerSecond> grants;
    memory.solveMemBwGrants(demands, policy, 1.0, grants);
    EXPECT_NEAR(grants[0], policy.maxThreadShare * policy.ceiling,
                policy.ceiling * 1e-9);
    testsupport::checkMemBwInvariants(memory, demands, policy, 1.0);
}

TEST(MemBwReservation, FactorsThrottleOnlyConstrainedThreads)
{
    const MemorySystem memory(MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile mem = memProfile();
    const WorkProfile cpu = cpuProfile();
    std::vector<MemoryDemand> demands;
    for (int i = 0; i < 4; ++i)
        demands.push_back({&mem, GHz(3.0), 1.0});
    demands.push_back({&cpu, GHz(3.0), 1.0});
    demands.push_back({&cpu, 0.0, 1.0}); // gated core

    MemBwPolicy policy;
    policy.ceiling = GiBps(1);
    policy.maxThreadShare = 0.5;
    policy.numCores = 8;

    std::vector<double> factors;
    std::vector<BytesPerSecond> scratch;
    memory.solveMemBwFactors(demands, policy, 1.0, factors, scratch);
    ASSERT_EQ(factors.size(), demands.size());
    for (int i = 0; i < 4; ++i)
        EXPECT_GT(factors[i], 1.0) << "mem thread " << i;
    EXPECT_EQ(factors[4], 1.0); // CPU-bound fits its grant
    EXPECT_EQ(factors[5], 1.0); // gated: no demand, no throttle
    testsupport::checkMemBwInvariants(memory, demands, policy, 1.0);
}

TEST(MemBwReservation, GenerousCeilingIsExactUnity)
{
    // When every demand fits its grant the factor vector must be all
    // exactly 1.0 — the bitwise no-op the shadow goldens rely on.
    const MemorySystem memory(MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile mem = memProfile();
    std::vector<MemoryDemand> demands(
        4, MemoryDemand{&mem, GHz(3.0), 1.0});

    MemBwPolicy policy;
    policy.ceiling = GiBps(20) * 1e6; // effectively infinite
    policy.maxThreadShare = 0.5;
    policy.numCores = 32;

    std::vector<double> factors;
    std::vector<BytesPerSecond> scratch;
    memory.solveMemBwFactors(demands, policy, 1.0, factors, scratch);
    for (double f : factors)
        EXPECT_EQ(f, 1.0);
}

TEST(MemBwReservation, WithMemBwCalibratedDefaults)
{
    const ChipSpec g2 = withMemBw(xGene2());
    const ChipSpec g3 = withMemBw(xGene3());
    EXPECT_TRUE(g2.hasMemBw());
    EXPECT_TRUE(g3.hasMemBw());
    EXPECT_EQ(g2.membw.ceiling, GiBps(10));
    EXPECT_EQ(g3.membw.ceiling, GiBps(20));
    EXPECT_EQ(g2.name, xGene2().name); // models still match by name
    EXPECT_FALSE(xGene3().hasMemBw()); // presets stay ceiling-free
    g2.validate();
    g3.validate();
}

TEST(MemBwReservation, SpecValidationRejectsBadTables)
{
    ChipSpec spec = withMemBw(xGene3());
    spec.membw.maxThreadShare = 0.0;
    EXPECT_THROW(spec.validate(), FatalError);
    spec = withMemBw(xGene3());
    // A cap below one fair slice would make the budget unusable.
    spec.membw.maxThreadShare =
        0.5 / static_cast<double>(spec.numCores);
    EXPECT_THROW(spec.validate(), FatalError);
    spec = withMemBw(xGene3());
    spec.membw.ceiling = -1.0;
    EXPECT_THROW(spec.validate(), FatalError);
}

// --- property fuzz ----------------------------------------------------

/// Iterations per property sweep (env-overridable, as in
/// tests/integration/test_fuzz.cc, so the debug-asserts CI lane can
/// sweep deeper).
int
propertyIters()
{
    if (const char *env = std::getenv("ECOSCHED_FUZZ_ITERS")) {
        const int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    return 200;
}

TEST(MemBwProperty, RandomMixesNeverBreakTheContract)
{
    const MemorySystem memory(MemoryParams::forChipName("X-Gene 3"));
    Rng rng(20260809);

    const int iters = propertyIters();
    for (int iter = 0; iter < iters; ++iter) {
        // Random mix: up to 32 threads with random (valid) profiles,
        // some on gated cores.
        const std::size_t n = 1 + rng.uniformInt(0, 31);
        std::vector<WorkProfile> profiles(n);
        std::vector<MemoryDemand> demands(n);
        for (std::size_t i = 0; i < n; ++i) {
            WorkProfile &p = profiles[i];
            p.cpiBase = rng.uniform(0.5, 2.5);
            p.l3Apki = rng.uniform(0.0, 120.0);
            p.dramApki = rng.uniform(0.0, p.l3Apki);
            p.mlp = rng.uniform(1.0, 8.0);
            p.validate();
            demands[i].profile = &profiles[i];
            demands[i].coreFrequency =
                rng.bernoulli(0.1) ? 0.0 : GHz(rng.uniform(0.3, 3.3));
            demands[i].apkiScale = rng.uniform(1.0, 1.6);
        }

        MemBwPolicy policy;
        policy.numCores = static_cast<std::uint32_t>(
            n + rng.uniformInt(0, 8));
        policy.maxThreadShare = rng.uniform(
            std::max(0.05, 1.0 / policy.numCores), 1.0);
        // Ceiling anywhere from deeply oversubscribed to generous.
        const BytesPerSecond aggregate =
            memory.aggregateBandwidth(demands, 1.0);
        policy.ceiling = std::max(
            aggregate * rng.uniform(0.05, 1.5), GiBps(1) / 16.0);

        const double contention = rng.uniform(1.0, 4.0);
        testsupport::checkMemBwInvariants(memory, demands, policy,
                                          contention);
        if (HasFatalFailure())
            FAIL() << "iteration " << iter;
    }
}

// --- machine-level determinism ---------------------------------------

/// A chip whose reservation binds hard for the mixes below (a few
/// hundred MB/s per memory-bound thread against a 2 GiB/s ceiling).
ChipSpec
throttledChip()
{
    return withMemBw(xGene3(), GiBps(2));
}

/// Memory-heavy mix on distinct PMDs: enough aggregate DRAM demand
/// that the reservation throttles several threads at once, plus a
/// CPU thread that must stay untouched and a phased thread that
/// flips demand mid-run.
std::vector<SimThreadId>
populateThrottled(Machine &m)
{
    std::vector<SimThreadId> ids;
    for (CoreId c = 0; c < 6; ++c) {
        ids.push_back(
            m.startThread(memProfile(), 300'000'000, c * 2));
    }
    ids.push_back(m.startThread(cpuProfile(), 600'000'000, 13));
    ids.push_back(m.startThreadPhased(
        {{cpuProfile(), 150'000'000}, {memProfile(), 150'000'000}},
        15));
    return ids;
}

/// Bit-exact comparison including the MEMBW telemetry.
void
expectIdentical(const Machine &a, const Machine &b,
                const std::vector<SimThreadId> &ids)
{
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.temperature(), b.temperature());
    EXPECT_EQ(a.busyCoreTime(), b.busyCoreTime());
    EXPECT_EQ(a.lastContention(), b.lastContention());
    EXPECT_EQ(a.energyMeter().energy(), b.energyMeter().energy());
    EXPECT_EQ(a.energyMeter().peakPower(),
              b.energyMeter().peakPower());
    EXPECT_EQ(a.memThrottledTime(), b.memThrottledTime());
    EXPECT_EQ(a.peakMemThrottle(), b.peakMemThrottle());
    EXPECT_EQ(a.lastMaxMemThrottle(), b.lastMaxMemThrottle());
    for (SimThreadId tid : ids) {
        const SimThread &ta = a.thread(tid);
        const SimThread &tb = b.thread(tid);
        EXPECT_EQ(ta.counters.instructions, tb.counters.instructions);
        EXPECT_EQ(ta.counters.cycles, tb.counters.cycles);
        EXPECT_EQ(ta.counters.dramAccesses, tb.counters.dramAccesses);
        EXPECT_EQ(ta.finished, tb.finished);
        EXPECT_EQ(ta.remaining, tb.remaining);
        EXPECT_EQ(ta.stallUntil, tb.stallUntil);
    }
}

TEST(MemBwDeterminism, MacroMatchesFixedStepWithCeilingArmed)
{
    Machine fixed(throttledChip());
    Machine macro(throttledChip());
    const auto ids = populateThrottled(fixed);
    ASSERT_EQ(populateThrottled(macro), ids);

    const Seconds dt = ms(1);
    for (int i = 0; i < 600; ++i)
        fixed.step(dt);
    macro.runUntil(fixed.now(), dt);

    expectIdentical(fixed, macro, ids);
    // The scenario actually throttled — otherwise this suite pins
    // nothing beyond the reservation-free paths.
    EXPECT_GT(fixed.memThrottledTime(), 0.0);
    EXPECT_GT(fixed.peakMemThrottle(), 1.0);
}

TEST(MemBwDeterminism, DvfsAndMigrationSegmentsStayIdentical)
{
    Machine fixed(throttledChip());
    Machine macro(throttledChip());
    const auto ids = populateThrottled(fixed);
    ASSERT_EQ(populateThrottled(macro), ids);

    const Seconds dt = ms(1);
    auto advance = [&](Seconds until) {
        while (fixed.now() < until - dt * 0.5)
            fixed.step(dt);
        macro.runUntil(fixed.now(), dt);
    };
    advance(ms(120));
    // Frequency drop shifts every thread's demand (memory-bound ones
    // barely, CPU-bound proportionally) — the throttle factors must
    // re-solve on the same step in both paths.
    fixed.chip().setAllFrequencies(GHz(1.5));
    macro.chip().setAllFrequencies(GHz(1.5));
    fixed.chip().setVoltage(mV(820));
    macro.chip().setVoltage(mV(820));
    advance(ms(300));
    // Stack two demanders on one PMD: the L2-sharing APKI inflation
    // raises their demand mid-run.
    fixed.migrateThread(ids[1], 1);
    macro.migrateThread(ids[1], 1);
    advance(ms(550));

    expectIdentical(fixed, macro, ids);
    EXPECT_GT(fixed.memThrottledTime(), 0.0);
}

// --- snapshot round trip ---------------------------------------------

TEST(MemBwSnapshot, MidThrottleCloneAndWarmRestoreIdentical)
{
    Machine original(throttledChip());
    const auto ids = populateThrottled(original);

    const Seconds dt = ms(1);
    while (original.memThrottledTime() <= 0.0) {
        original.step(dt);
        ASSERT_LT(original.now(), 2.0) << "reservation never bound";
    }
    for (int i = 0; i < 50; ++i)
        original.step(dt); // accumulate telemetry past the first hit

    const MachineSnapshot mid = original.capture();
    EXPECT_GT(mid.memThrottledSeconds, 0.0);
    std::unique_ptr<Machine> cold = original.clone();
    expectIdentical(original, *cold, ids);

    // Both continuations replay the same throttled steps.
    for (int i = 0; i < 300; ++i) {
        original.step(dt);
        cold->step(dt);
    }
    expectIdentical(original, *cold, ids);

    // Warm restore: rewind the original (its MEMBW cache is primed
    // past `mid`) and replay — must land exactly on the clone.
    original.restore(mid);
    for (int i = 0; i < 300; ++i)
        original.step(dt);
    expectIdentical(original, *cold, ids);
}

TEST(MemBwSnapshot, RestoreRejectsCeilingMismatch)
{
    Machine armed(throttledChip());
    Machine stock(xGene3());
    // The ceiling is solver identity, not replayable state: crossing
    // snapshots between a reserved and a stock machine must throw.
    EXPECT_THROW(armed.restore(stock.capture()), FatalError);
    EXPECT_THROW(stock.restore(armed.capture()), FatalError);
}

// --- event path -------------------------------------------------------

/// Restores the process-wide event-path override on scope exit.
struct EventPathGuard
{
    ~EventPathGuard() { setEventPathOverride(-1); }
};

void
submitMemMix(System &s)
{
    const Catalog &catalog = Catalog::instance();
    s.submit(catalog.byName("milc"), 1);
    s.submit(catalog.byName("CG"), 8);
    s.submit(catalog.byName("EP"), 4);
    s.submit(catalog.byName("namd"), 1);
}

void
expectSystemsIdentical(System &a, System &b)
{
    expectIdentical(a.machine(), b.machine(), {});
    ASSERT_EQ(a.finishedProcesses().size(),
              b.finishedProcesses().size());
    for (std::size_t i = 0; i < a.finishedProcesses().size(); ++i) {
        const Process &pa = a.finishedProcesses()[i];
        const Process &pb = b.finishedProcesses()[i];
        EXPECT_EQ(pa.pid, pb.pid);
        EXPECT_EQ(pa.completed, pb.completed);
        EXPECT_EQ(pa.retiredCounters.instructions,
                  pb.retiredCounters.instructions);
    }
}

TEST(MemBwDeterminism, EventPathMatchesWithCeilingArmed)
{
    // Per-step loop vs probing runUntil vs horizon runUntil on a
    // reserved chip: the memBwNextActivity() horizon must never let
    // a macro window coalesce across a throttle-state change.
    EventPathGuard guard;
    auto make = [] {
        auto machine = std::make_unique<Machine>(throttledChip());
        auto system = std::make_unique<System>(
            *machine, nullptr, std::make_unique<OndemandGovernor>());
        submitMemMix(*system);
        return std::make_pair(std::move(machine), std::move(system));
    };
    auto step_rig = make();
    auto probe_rig = make();
    auto event_rig = make();

    const Seconds horizon = 15.0;
    setEventPathOverride(0);
    while (step_rig.second->now() < horizon - 1e-9)
        step_rig.second->step();
    probe_rig.second->runUntil(horizon);
    setEventPathOverride(1);
    event_rig.second->runUntil(horizon);

    EXPECT_EQ(step_rig.second->now(), probe_rig.second->now());
    EXPECT_EQ(step_rig.second->now(), event_rig.second->now());
    expectSystemsIdentical(*step_rig.second, *probe_rig.second);
    expectSystemsIdentical(*step_rig.second, *event_rig.second);
    EXPECT_GT(step_rig.first->memThrottledTime(), 0.0);
}

// --- shadow mode ------------------------------------------------------

/// Restores the shadow override on scope exit.
struct ShadowGuard
{
    ~ShadowGuard() { setMemBwShadowOverride(-1); }
};

TEST(MemBwDeterminism, ShadowModeIsBitwiseInert)
{
    // Shadow mode runs the full reservation path on a ceiling-free
    // chip with an unreachable ceiling: every factor solves to
    // exactly 1.0, so results must be byte-identical to the stock
    // machine that skipped the path entirely.
    ShadowGuard guard;
    setMemBwShadowOverride(0);
    Machine stock(xGene3());
    const auto ids = populateThrottled(stock);
    setMemBwShadowOverride(1);
    Machine shadow(xGene3());
    ASSERT_EQ(populateThrottled(shadow), ids);

    const Seconds dt = ms(1);
    for (int i = 0; i < 400; ++i) {
        stock.step(dt);
        shadow.step(dt);
    }
    expectIdentical(stock, shadow, ids);
    EXPECT_EQ(shadow.memThrottledTime(), 0.0);
    EXPECT_EQ(shadow.peakMemThrottle(), 1.0);
}

} // namespace
} // namespace ecosched
