/**
 * @file
 * Unit tests for the shared memory-system model: the stall
 * decomposition and the DRAM bandwidth contention solver.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/units.hh"
#include "sim/memory_system.hh"

namespace ecosched {
namespace {

using namespace units;

WorkProfile
cpuBound()
{
    WorkProfile p;
    p.cpiBase = 1.0;
    p.l3Apki = 0.3;
    p.dramApki = 0.03;
    p.mlp = 2.0;
    return p;
}

WorkProfile
memBound()
{
    WorkProfile p;
    p.cpiBase = 1.0;
    p.l3Apki = 100.0;
    p.dramApki = 60.0;
    p.mlp = 4.0;
    return p;
}

TEST(MemorySystem, TimePerInstructionFormula)
{
    MemoryParams params;
    params.l3Latency = ns(30);
    params.dramLatency = ns(120);
    const MemorySystem memory(params);
    WorkProfile p = memBound();
    const Seconds t = memory.timePerInstruction(p, GHz(2.0), 1.0);
    const Seconds expected = 0.5e-9
        + (0.1 * 30e-9 + 0.06 * 120e-9) / 4.0;
    EXPECT_NEAR(t, expected, 1e-15);
}

TEST(MemorySystem, FrequencyOnlyAffectsCoreTime)
{
    const MemorySystem memory;
    const WorkProfile cpu = cpuBound();
    const WorkProfile mem = memBound();
    const double cpu_slow =
        memory.timePerInstruction(cpu, GHz(1.5), 1.0)
        / memory.timePerInstruction(cpu, GHz(3.0), 1.0);
    const double mem_slow =
        memory.timePerInstruction(mem, GHz(1.5), 1.0)
        / memory.timePerInstruction(mem, GHz(3.0), 1.0);
    EXPECT_NEAR(cpu_slow, 2.0, 0.1); // CPU-bound: ~proportional
    EXPECT_LT(mem_slow, 1.25);       // memory-bound: barely moves
}

TEST(MemorySystem, ApkiScaleInflatesMemoryTime)
{
    const MemorySystem memory;
    const WorkProfile mem = memBound();
    EXPECT_GT(memory.timePerInstruction(mem, GHz(3.0), 1.0, 1.4),
              memory.timePerInstruction(mem, GHz(3.0), 1.0, 1.0));
}

TEST(MemorySystem, NoContentionUnderLightDemand)
{
    const MemorySystem memory(
        MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile cpu = cpuBound();
    std::vector<MemoryDemand> demands(
        32, MemoryDemand{&cpu, GHz(3.0), 1.0});
    EXPECT_DOUBLE_EQ(memory.solveContention(demands), 1.0);
}

TEST(MemorySystem, ContentionCapsAggregateBandwidth)
{
    const MemoryParams params =
        MemoryParams::forChipName("X-Gene 3");
    const MemorySystem memory(params);
    const WorkProfile mem = memBound();
    std::vector<MemoryDemand> demands(
        32, MemoryDemand{&mem, GHz(3.0), 1.0});
    const double s = memory.solveContention(demands);
    EXPECT_GT(s, 1.5);
    EXPECT_NEAR(memory.aggregateBandwidth(demands, s),
                params.peakDramBandwidth,
                params.peakDramBandwidth * 0.001);
}

TEST(MemorySystem, ContentionGrowsWithCoRunners)
{
    const MemorySystem memory(
        MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile mem = memBound();
    double prev = 1.0;
    for (std::size_t n : {8u, 16u, 32u}) {
        std::vector<MemoryDemand> demands(
            n, MemoryDemand{&mem, GHz(3.0), 1.0});
        const double s = memory.solveContention(demands);
        EXPECT_GE(s, prev);
        prev = s;
    }
    EXPECT_GT(prev, 2.0);
}

TEST(MemorySystem, GatedCoresContributeNothing)
{
    const MemorySystem memory(
        MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile mem = memBound();
    std::vector<MemoryDemand> demands(
        32, MemoryDemand{&mem, 0.0, 1.0}); // all gated
    EXPECT_DOUBLE_EQ(memory.aggregateBandwidth(demands, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(memory.solveContention(demands), 1.0);
}

TEST(MemorySystem, L3RateMetric)
{
    const MemorySystem memory(
        MemoryParams::forChipName("X-Gene 3"));
    const WorkProfile cpu = cpuBound();
    const WorkProfile mem = memBound();
    EXPECT_LT(memory.l3PerMCycles(cpu, GHz(3.0)), 3000.0);
    EXPECT_GT(memory.l3PerMCycles(mem, GHz(3.0)), 3000.0);
    // Contention lowers the per-cycle rate (stall cycles grow).
    EXPECT_LT(memory.l3PerMCycles(mem, GHz(3.0), 3.0),
              memory.l3PerMCycles(mem, GHz(3.0), 1.0));
}

TEST(MemorySystem, ChipPresetsDiffer)
{
    const MemoryParams g2 = MemoryParams::forChipName("X-Gene 2");
    const MemoryParams g3 = MemoryParams::forChipName("X-Gene 3");
    EXPECT_LT(g2.peakDramBandwidth, g3.peakDramBandwidth);
}

TEST(MemorySystem, ParamValidation)
{
    MemoryParams p;
    p.l3Latency = 0.0;
    EXPECT_THROW(MemorySystem{p}, FatalError);
    p = MemoryParams{};
    p.peakDramBandwidth = -1.0;
    EXPECT_THROW(MemorySystem{p}, FatalError);
}

TEST(WorkProfile, Validation)
{
    WorkProfile p = cpuBound();
    p.validate();
    p.dramApki = p.l3Apki + 1.0; // DRAM accesses exceed L3 accesses
    EXPECT_THROW(p.validate(), FatalError);
    p = cpuBound();
    p.mlp = 0.5;
    EXPECT_THROW(p.validate(), FatalError);
    p = cpuBound();
    p.cpiBase = 0.0;
    EXPECT_THROW(p.validate(), FatalError);
    p = cpuBound();
    p.l2SharingPenalty = 0.9;
    EXPECT_THROW(p.validate(), FatalError);
}

} // namespace
} // namespace ecosched
