/**
 * @file
 * Determinism tests for adaptive macro-stepping: runUntil()'s
 * coalesced fast path must commit *bit-identical* state to the plain
 * fixed-dt step loop — energies, counters, temperatures, finish
 * times, everything.  Exact floating-point equality is intentional;
 * any tolerance here would let the macro path drift from the
 * semantics the rest of the suite pins.
 *
 * Suite names contain "Determinism" so the TSan CI filter picks
 * them up.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hh"
#include "idle/coreidle.hh"
#include "inject/fault_plan.hh"
#include "inject/injector.hh"
#include "os/governor.hh"
#include "os/system.hh"
#include "platform/topology.hh"
#include "sim/event_queue.hh"
#include "sim/machine.hh"
#include "workloads/catalog.hh"

namespace ecosched {
namespace {

using namespace units;

WorkProfile
cpuProfile()
{
    WorkProfile p;
    p.cpiBase = 1.0;
    p.l3Apki = 0.5;
    p.dramApki = 0.05;
    p.mlp = 2.0;
    return p;
}

WorkProfile
memProfile()
{
    WorkProfile p;
    p.cpiBase = 1.2;
    p.l3Apki = 25.0;
    p.dramApki = 8.0;
    p.mlp = 4.0;
    return p;
}

/// Bind a representative mixed workload: a long CPU-bound thread, a
/// memory-bound sibling sharing its PMD, a short thread that finishes
/// mid-run, and a phased thread that flips behaviour mid-run.
std::vector<SimThreadId>
populate(Machine &m)
{
    std::vector<SimThreadId> ids;
    ids.push_back(m.startThread(cpuProfile(), 900'000'000, 0));
    ids.push_back(m.startThread(memProfile(), 400'000'000, 1, 0.8));
    ids.push_back(m.startThread(cpuProfile(), 40'000'000, 4));
    ids.push_back(m.startThreadPhased(
        {{cpuProfile(), 200'000'000}, {memProfile(), 200'000'000}},
        6));
    return ids;
}

/// Compare every observable the step loop commits, bit-exactly.
/// EXPECT_EQ on doubles is operator== — no ULP tolerance.
void
expectIdentical(const Machine &a, const Machine &b,
                const std::vector<SimThreadId> &ids)
{
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.temperature(), b.temperature());
    EXPECT_EQ(a.busyCoreTime(), b.busyCoreTime());
    EXPECT_EQ(a.numBusyCores(), b.numBusyCores());
    EXPECT_EQ(a.utilizedPmds(), b.utilizedPmds());
    EXPECT_EQ(a.currentTrueVmin(), b.currentTrueVmin());
    EXPECT_EQ(a.lastContention(), b.lastContention());
    EXPECT_EQ(a.lastUtilization(), b.lastUtilization());

    EXPECT_EQ(a.lastPower().coreDynamic, b.lastPower().coreDynamic);
    EXPECT_EQ(a.lastPower().pmdOverhead, b.lastPower().pmdOverhead);
    EXPECT_EQ(a.lastPower().uncoreDynamic,
              b.lastPower().uncoreDynamic);
    EXPECT_EQ(a.lastPower().leakage, b.lastPower().leakage);

    const EnergyMeter &ma = a.energyMeter();
    const EnergyMeter &mb = b.energyMeter();
    EXPECT_EQ(ma.energy(), mb.energy());
    EXPECT_EQ(ma.coreDynamicEnergy(), mb.coreDynamicEnergy());
    EXPECT_EQ(ma.pmdOverheadEnergy(), mb.pmdOverheadEnergy());
    EXPECT_EQ(ma.uncoreEnergy(), mb.uncoreEnergy());
    EXPECT_EQ(ma.leakageEnergy(), mb.leakageEnergy());
    EXPECT_EQ(ma.elapsed(), mb.elapsed());
    EXPECT_EQ(ma.peakPower(), mb.peakPower());

    for (SimThreadId tid : ids) {
        const SimThread &ta = a.thread(tid);
        const SimThread &tb = b.thread(tid);
        EXPECT_EQ(ta.counters.instructions, tb.counters.instructions);
        EXPECT_EQ(ta.counters.cycles, tb.counters.cycles);
        EXPECT_EQ(ta.counters.l3Accesses, tb.counters.l3Accesses);
        EXPECT_EQ(ta.counters.dramAccesses, tb.counters.dramAccesses);
        EXPECT_EQ(ta.counters.busyTime, tb.counters.busyTime);
        EXPECT_EQ(ta.finished, tb.finished);
        EXPECT_EQ(ta.remaining, tb.remaining);
        EXPECT_EQ(ta.phaseRemaining, tb.phaseRemaining);
        EXPECT_EQ(ta.stallUntil, tb.stallUntil);
        EXPECT_EQ(ta.core, tb.core);
    }
}

TEST(MacroStepDeterminism, RunUntilMatchesFixedStepLoop)
{
    Machine fixed(xGene3());
    Machine macro(xGene3());
    const auto ids_f = populate(fixed);
    const auto ids_m = populate(macro);
    ASSERT_EQ(ids_f, ids_m);

    // Thread finishes, a phase switch, and steady spans all occur
    // inside this horizon; the step count is large enough that the
    // macro path must engage to pass within test time budgets.
    const Seconds dt = ms(1);
    for (int i = 0; i < 800; ++i)
        fixed.step(dt);
    macro.runUntil(fixed.now(), dt);

    expectIdentical(fixed, macro, ids_f);
}

TEST(MacroStepDeterminism, SegmentedRunWithMigrationsAndDvfs)
{
    Machine fixed(xGene3());
    Machine macro(xGene3());
    const auto ids = populate(fixed);
    ASSERT_EQ(populate(macro), ids);

    const Seconds dt = ms(1);
    auto advance = [&](Seconds until) {
        while (fixed.now() < until - dt * 0.5)
            fixed.step(dt);
        macro.runUntil(fixed.now(), dt);
    };

    // Segment 1: plain execution.
    advance(ms(150));
    // Mid-run reconfiguration: migrate across PMDs (warm-up stall
    // expires inside the next segment) and drop V/F like a governor.
    fixed.migrateThread(ids[1], 9);
    macro.migrateThread(ids[1], 9);
    fixed.chip().setAllFrequencies(GHz(1.5));
    macro.chip().setAllFrequencies(GHz(1.5));
    fixed.chip().setVoltage(mV(820));
    macro.chip().setVoltage(mV(820));
    advance(ms(400));
    // Segment 3: back to nominal; short thread already finished.
    fixed.chip().setAllFrequencies(GHz(3.0));
    macro.chip().setAllFrequencies(GHz(3.0));
    fixed.chip().setVoltage(mV(870));
    macro.chip().setVoltage(mV(870));
    advance(ms(700));

    expectIdentical(fixed, macro, ids);
    EXPECT_GT(fixed.thread(ids[1]).migrations, 0u);
}

TEST(MacroStepDeterminism, ThermalDisabledStillIdentical)
{
    MachineConfig cfg;
    cfg.enableThermal = false;
    Machine fixed(xGene2(), cfg);
    Machine macro(xGene2(), cfg);
    const SimThreadId tf =
        fixed.startThread(memProfile(), 300'000'000, 2);
    const SimThreadId tm =
        macro.startThread(memProfile(), 300'000'000, 2);
    ASSERT_EQ(tf, tm);

    const Seconds dt = ms(2);
    for (int i = 0; i < 400; ++i)
        fixed.step(dt);
    macro.runUntil(fixed.now(), dt);

    expectIdentical(fixed, macro, {tf});
    EXPECT_EQ(fixed.temperature(), 28.0); // ambient: thermal off
}

TEST(MacroStepDeterminism, IdleMachineFastForwardIdentical)
{
    Machine fixed(xGene3());
    Machine macro(xGene3());
    const Seconds dt = ms(5);
    for (int i = 0; i < 200; ++i)
        fixed.step(dt);
    macro.runUntil(fixed.now(), dt);
    expectIdentical(fixed, macro, {});
    // simTime accumulates step-by-step in both paths (200 additions,
    // not one multiply), so only near-equality with the product.
    EXPECT_NEAR(macro.now(), 200 * dt, 1e-12);
    EXPECT_GT(macro.energyMeter().energy(), 0.0); // leakage accrues
}

TEST(MacroStepDeterminism, DroopSamplingDisablesMacroButStillRuns)
{
    MachineConfig cfg;
    cfg.sampleDroops = true;
    Machine fixed(xGene3(), cfg);
    Machine macro(xGene3(), cfg);
    EXPECT_FALSE(macro.macroEligible());
    // Enough work that the thread outlives the horizon: the droop
    // branch requires a non-empty running set on every sampled step.
    const SimThreadId tf =
        fixed.startThread(cpuProfile(), 1'000'000'000, 0);
    const SimThreadId tm =
        macro.startThread(cpuProfile(), 1'000'000'000, 0);
    ASSERT_EQ(tf, tm);

    // Droop sampling draws per-step randomness: runUntil must take
    // the per-step path and stay identical to the loop (same RNG
    // consumption order).
    const Seconds dt = ms(1);
    for (int i = 0; i < 50; ++i)
        fixed.step(dt);
    macro.runUntil(fixed.now(), dt);
    expectIdentical(fixed, macro, {tf});
    EXPECT_EQ(fixed.droopReferenceCycles(),
              macro.droopReferenceCycles());
}

// --- System level -----------------------------------------------------

const BenchmarkProfile &
bench(const char *name)
{
    return Catalog::instance().byName(name);
}

void
expectSystemsIdentical(System &a, System &b)
{
    expectIdentical(a.machine(), b.machine(), {});
    EXPECT_EQ(a.busyCoreTime(), b.busyCoreTime());
    for (CoreId c = 0; c < a.spec().numCores; ++c)
        EXPECT_EQ(a.coreUtilization(c), b.coreUtilization(c));
    ASSERT_EQ(a.finishedProcesses().size(),
              b.finishedProcesses().size());
    for (std::size_t i = 0; i < a.finishedProcesses().size(); ++i) {
        const Process &pa = a.finishedProcesses()[i];
        const Process &pb = b.finishedProcesses()[i];
        EXPECT_EQ(pa.pid, pb.pid);
        EXPECT_EQ(pa.completed, pb.completed);
        EXPECT_EQ(pa.retiredCounters.instructions,
                  pb.retiredCounters.instructions);
        EXPECT_EQ(pa.retiredCounters.cycles,
                  pb.retiredCounters.cycles);
    }
}

void
submitMix(System &s)
{
    s.submit(bench("EP"), 8);
    s.submit(bench("milc"), 1);
    s.submit(bench("namd"), 1);
}

TEST(SystemMacroDeterminism, RunUntilMatchesStepLoop)
{
    // Ondemand governor: quiescent while utilization is stable, so
    // macro windows open between its actions.
    Machine m1(xGene3());
    Machine m2(xGene3());
    System fixed(m1);
    System macro(m2);
    submitMix(fixed);
    submitMix(macro);

    const Seconds horizon = 20.0;
    while (fixed.now() < horizon - 1e-9)
        fixed.step();
    macro.runUntil(horizon);

    EXPECT_EQ(fixed.now(), macro.now());
    expectSystemsIdentical(fixed, macro);
}

TEST(SystemMacroDeterminism, DrainMatchesStepLoop)
{
    Machine m1(xGene3());
    Machine m2(xGene3());
    System fixed(m1);
    System macro(m2);
    submitMix(fixed);
    submitMix(macro);

    while (!fixed.idle())
        fixed.step();
    macro.drain(3600.0);

    EXPECT_EQ(fixed.now(), macro.now());
    EXPECT_TRUE(macro.idle());
    expectSystemsIdentical(fixed, macro);
}

// --- event path -------------------------------------------------------
//
// The event engine (DESIGN.md §13) lets System::runUntil clamp macro
// windows to the governor's nextActivity() horizon instead of probing
// wouldAct() per step.  These suites pin the whole contract: for
// every governor, with fault windows armed and with c-states enabled,
// the per-step loop, the probing path (ECOSCHED_EVENT_PATH=0) and the
// horizon path (=1) must commit bit-identical state.

/// Restores the process-wide event-path override on scope exit.
struct EventPathGuard
{
    ~EventPathGuard() { setEventPathOverride(-1); }
};

/// A Machine + System pair with an optional injector, constructed
/// identically for the three stepping modes under comparison.
struct EventRig
{
    Machine machine;
    std::unique_ptr<MachineInjector> injector;
    System system;

    EventRig(const ChipSpec &spec, std::unique_ptr<Governor> gov,
             std::unique_ptr<PlacementPolicy> placer = nullptr,
             const InjectionPlan *plan = nullptr)
        : machine(spec),
          system(machine, std::move(placer), std::move(gov))
    {
        if (plan != nullptr) {
            injector = std::make_unique<MachineInjector>(*plan, 99);
            injector->attach(machine, nullptr);
        }
    }
};

using RigFactory = std::unique_ptr<EventRig> (*)();

/// Drive three identically built systems to @p horizon — per-step,
/// probing runUntil, horizon runUntil — and require bit-identity.
void
expectEventPathIdentical(const RigFactory &make, Seconds horizon)
{
    EventPathGuard guard;
    auto step_rig = make();
    auto probe_rig = make();
    auto event_rig = make();

    setEventPathOverride(0);
    while (step_rig->system.now() < horizon - 1e-9)
        step_rig->system.step();
    probe_rig->system.runUntil(horizon);
    setEventPathOverride(1);
    event_rig->system.runUntil(horizon);

    EXPECT_EQ(step_rig->system.now(), probe_rig->system.now());
    EXPECT_EQ(step_rig->system.now(), event_rig->system.now());
    expectSystemsIdentical(step_rig->system, probe_rig->system);
    expectSystemsIdentical(step_rig->system, event_rig->system);
}

TEST(EventPathDeterminism, OndemandGovernorMatches)
{
    expectEventPathIdentical([] {
        auto rig = std::make_unique<EventRig>(
            xGene3(), std::make_unique<OndemandGovernor>());
        submitMix(rig->system);
        return rig;
    }, 15.0);
}

TEST(EventPathDeterminism, SchedutilGovernorMatches)
{
    expectEventPathIdentical([] {
        auto rig = std::make_unique<EventRig>(
            xGene3(), std::make_unique<SchedutilGovernor>());
        submitMix(rig->system);
        return rig;
    }, 15.0);
}

TEST(EventPathDeterminism, PerformanceGovernorMatches)
{
    expectEventPathIdentical([] {
        auto rig = std::make_unique<EventRig>(
            xGene3(), std::make_unique<PerformanceGovernor>());
        submitMix(rig->system);
        return rig;
    }, 15.0);
}

TEST(EventPathDeterminism, PowersaveGovernorMatches)
{
    expectEventPathIdentical([] {
        auto rig = std::make_unique<EventRig>(
            xGene3(), std::make_unique<PowersaveGovernor>());
        submitMix(rig->system);
        return rig;
    }, 15.0);
}

TEST(EventPathDeterminism, UserspaceGovernorMatches)
{
    expectEventPathIdentical([] {
        auto rig = std::make_unique<EventRig>(
            xGene3(), std::make_unique<UserspaceGovernor>());
        submitMix(rig->system);
        return rig;
    }, 15.0);
}

TEST(EventPathDeterminism, CoreIdleGovernorMatches)
{
    expectEventPathIdentical([] {
        auto placer = std::make_unique<CoreIdleMaskPlacer>();
        auto gov = std::make_unique<CoreIdleGovernor>(
            CoreIdleGovernor::Config{}, placer.get());
        auto rig = std::make_unique<EventRig>(
            xGene3(), std::move(gov), std::move(placer));
        submitMix(rig->system);
        return rig;
    }, 15.0);
}

/// Droop windows, a SLIMpro congestion window and a point thread
/// strike: the fault hook's horizon must bound every macro window so
/// strikes land on the very same step on all three paths.
const InjectionPlan &
faultPlanForEventTests()
{
    static const InjectionPlan plan = [] {
        std::vector<FaultEvent> events;
        FaultEvent droop;
        droop.kind = FaultKind::DroopSpike;
        droop.time = 2.0;
        droop.duration = 0.5;
        droop.magnitude = 15.0;
        events.push_back(droop);
        droop.time = 9.0;
        droop.duration = 0.3;
        events.push_back(droop);
        FaultEvent slim;
        slim.kind = FaultKind::SlimProDelay;
        slim.time = 4.0;
        slim.duration = 1.0;
        slim.magnitude = units::us(1500);
        slim.probability = 0.5;
        events.push_back(slim);
        FaultEvent strike;
        strike.kind = FaultKind::ThreadFault;
        strike.time = 6.0;
        strike.outcome = RunOutcome::Sdc;
        events.push_back(strike);
        return InjectionPlan::scripted(std::move(events));
    }();
    return plan;
}

TEST(EventPathDeterminism, FaultWindowsMatchAcrossPaths)
{
    expectEventPathIdentical([] {
        auto rig = std::make_unique<EventRig>(
            xGene3(), std::make_unique<OndemandGovernor>(), nullptr,
            &faultPlanForEventTests());
        submitMix(rig->system);
        return rig;
    }, 15.0);
}

TEST(EventPathDeterminism, CStateChipMatchesAcrossPaths)
{
    // Calibrated c-state tables: cores promote into c1/c6 while the
    // mix drains, so IdleStateTracker transitions land inside what
    // would otherwise be one long macro window.
    expectEventPathIdentical([] {
        auto rig = std::make_unique<EventRig>(
            withCStates(xGene3()),
            std::make_unique<OndemandGovernor>());
        rig->system.submit(bench("EP"), 4);
        rig->system.submit(bench("milc"), 1);
        return rig;
    }, 25.0);
}

TEST(EventPathDeterminism, ComposedCStateFaultCoreIdleEpoch)
{
    // The satellite-3 composition: a c-state chip under the CoreIdle
    // governor with an active droop window — c-state transitions,
    // fault-hook activity and governor ticks all land inside the
    // same coalescing horizon, and the three paths must still agree
    // to the last bit.
    expectEventPathIdentical([] {
        auto placer = std::make_unique<CoreIdleMaskPlacer>();
        auto gov = std::make_unique<CoreIdleGovernor>(
            CoreIdleGovernor::Config{}, placer.get());
        auto rig = std::make_unique<EventRig>(
            withCStates(xGene2()), std::move(gov),
            std::move(placer), &faultPlanForEventTests());
        rig->system.submit(bench("EP"), 4);
        rig->system.submit(bench("namd"), 1);
        return rig;
    }, 25.0);
}

} // namespace
} // namespace ecosched
