/**
 * @file
 * Unit tests for the PMU-style thread counters.
 */

#include <gtest/gtest.h>

#include "sim/perf_counters.hh"

namespace ecosched {
namespace {

TEST(ThreadCounters, SinceComputesDelta)
{
    ThreadCounters now;
    now.cycles = 5'000'000;
    now.instructions = 2'000'000;
    now.l3Accesses = 15'000;
    now.dramAccesses = 4'000;
    now.busyTime = 2.0;

    ThreadCounters snap;
    snap.cycles = 1'000'000;
    snap.instructions = 400'000;
    snap.l3Accesses = 3'000;
    snap.dramAccesses = 1'000;
    snap.busyTime = 0.5;

    const ThreadCounters d = now.since(snap);
    EXPECT_EQ(d.cycles, 4'000'000u);
    EXPECT_EQ(d.instructions, 1'600'000u);
    EXPECT_EQ(d.l3Accesses, 12'000u);
    EXPECT_EQ(d.dramAccesses, 3'000u);
    EXPECT_DOUBLE_EQ(d.busyTime, 1.5);
}

TEST(ThreadCounters, AccumulateAddsFields)
{
    ThreadCounters a;
    a.cycles = 10;
    a.instructions = 20;
    ThreadCounters b;
    b.cycles = 5;
    b.instructions = 7;
    b.l3Accesses = 3;
    a.accumulate(b);
    EXPECT_EQ(a.cycles, 15u);
    EXPECT_EQ(a.instructions, 27u);
    EXPECT_EQ(a.l3Accesses, 3u);
}

TEST(ThreadCounters, L3RateMetric)
{
    ThreadCounters c;
    c.cycles = 2'000'000;
    c.l3Accesses = 9'000;
    EXPECT_DOUBLE_EQ(c.l3AccessesPerMCycles(), 4500.0);
}

TEST(ThreadCounters, RatesOnEmptyWindowAreZero)
{
    const ThreadCounters c;
    EXPECT_DOUBLE_EQ(c.l3AccessesPerMCycles(), 0.0);
    EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
}

TEST(ThreadCounters, Ipc)
{
    ThreadCounters c;
    c.cycles = 1'000'000;
    c.instructions = 750'000;
    EXPECT_DOUBLE_EQ(c.ipc(), 0.75);
}

} // namespace
} // namespace ecosched
